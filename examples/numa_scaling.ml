(* NUMA scaling: why node replication is the right substrate for a PUC.

   Runs the same 90%-read hashmap workload through the global-lock UC and
   through PREP (volatile / buffered / durable) at increasing thread
   counts, filling socket 0 before socket 1 — the paper's Figure 1/2
   storyline in one table. Then re-runs each system at one thread count
   with telemetry enabled and prints the simulated-time phase breakdown,
   so you can see *why*: the persistent variants spend their extra
   simulated time in the persist phase (log write-backs and WBINVD
   checkpoints), not in combine.

     dune exec examples/numa_scaling.exe *)

open Harness

let () =
  let scale =
    {
      Figures.quick with
      Figures.threads = [ 1; 2; 4; 6; 8; 12; 16; 20; 23 ];
      key_range = 4096;
      duration_ns = 1_500_000;
      warmup_ns = 300_000;
    }
  in
  let module Hm = Experiment.Systems (Seqds.Hashmap) in
  let workload =
    Workload.map_workload ~read_pct:90 ~key_range:scale.Figures.key_range
      ~prefill_n:(scale.Figures.key_range / 2)
  in
  let systems =
    [
      Hm.global_lock;
      Hm.prep ~log_size:scale.Figures.log_size ~mode:Prep.Config.Volatile
        ~epsilon:1 ();
      Hm.prep ~log_size:scale.Figures.log_size ~mode:Prep.Config.Buffered
        ~epsilon:1024 ();
      Hm.prep ~log_size:scale.Figures.log_size ~mode:Prep.Config.Durable
        ~epsilon:1024 ();
    ]
  in
  Printf.printf
    "hashmap, 90%% reads, %d keys; socket 0 fills first (12 cores/socket)\n\n"
    scale.Figures.key_range;
  Printf.printf "%8s %16s %12s\n" "threads" "system" "ops/sec";
  List.iter
    (fun threads ->
      List.iter
        (fun system ->
          match
            Experiment.run ~topology:scale.Figures.topology
              ~duration_ns:scale.Figures.duration_ns
              ~warmup_ns:scale.Figures.warmup_ns ~system ~workload
              ~workers:threads ()
          with
          | r ->
            Printf.printf "%8d %16s %12.0f\n%!" threads r.Experiment.system
              r.Experiment.throughput
          | exception Failure msg -> Printf.printf "%8d failed: %s\n" threads msg)
        systems;
      print_newline ())
    scale.Figures.threads;
  (* the *why*: the phase breakdown at one contended thread count *)
  let profile_threads = 16 in
  Printf.printf
    "simulated-time phase breakdown at %d threads (self%% of covered time):\n\n"
    profile_threads;
  List.iter
    (fun system ->
      let reg = Telemetry.Registry.create () in
      match
        Experiment.run ~telemetry:reg ~topology:scale.Figures.topology
          ~duration_ns:scale.Figures.duration_ns
          ~warmup_ns:scale.Figures.warmup_ns ~system ~workload
          ~workers:profile_threads ()
      with
      | r ->
        Printf.printf "-- %s --\n%s\n%!" r.Experiment.system
          (Profile.render_phase_table r.Experiment.telemetry)
      | exception Failure msg -> Printf.printf "profile failed: %s\n" msg)
    systems
