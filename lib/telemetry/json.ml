(** A tiny JSON parser and two artifact validators.

    The repo emits two kinds of machine-readable artifacts — bench result
    JSON ([bench smoke]/[bench readscale]) and Chrome trace-event JSON
    ([--trace]). CI gates on both being well-formed, so the writers
    self-validate before exiting and the [validate] CLI subcommand lets
    the workflow re-check the files on disk. No external JSON dependency
    is available in the container, hence this ~100-line recursive-descent
    parser; it handles exactly the subset our writers produce (plus
    escapes and nesting a human editor might add). *)

type v =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of v list
  | Obj of (string * v) list

exception Parse_error of string

(** Bump this when a writer changes a key's meaning or removes a key.
    Additive changes do not require a bump; validators only check the
    keys they know.

    v2: loadcurve points grew required [shed]/[shed_rate] keys (drop-tail
    admission accounting — a consumer summing [arrivals] as offered load
    would silently under-count on shedding runs, hence the bump rather
    than an additive change), and [bench shardscale] emits result objects
    whose [system] names carry a [/xN] shard suffix. *)
let schema_version = 2

(* ---- parser ---- *)

type st = { s : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at byte %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && (match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  skip_ws st;
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> error st (Printf.sprintf "expected '%c'" c)

let lit st word value =
  if
    st.pos + String.length word <= String.length st.s
    && String.sub st.s st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    value
  end
  else error st (Printf.sprintf "expected '%s'" word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then error st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents b
    | '\\' ->
      (if st.pos >= String.length st.s then error st "unterminated escape";
       let e = st.s.[st.pos] in
       st.pos <- st.pos + 1;
       match e with
       | '"' -> Buffer.add_char b '"'
       | '\\' -> Buffer.add_char b '\\'
       | '/' -> Buffer.add_char b '/'
       | 'n' -> Buffer.add_char b '\n'
       | 't' -> Buffer.add_char b '\t'
       | 'r' -> Buffer.add_char b '\r'
       | 'b' -> Buffer.add_char b '\b'
       | 'f' -> Buffer.add_char b '\012'
       | 'u' ->
         if st.pos + 4 > String.length st.s then error st "bad \\u escape";
         let hex = String.sub st.s st.pos 4 in
         st.pos <- st.pos + 4;
         let code =
           try int_of_string ("0x" ^ hex)
           with _ -> error st "bad \\u escape"
         in
         (* BMP only; sufficient for our ASCII-producing writers *)
         if code < 0x80 then Buffer.add_char b (Char.chr code)
         else Buffer.add_string b (Printf.sprintf "\\u%s" hex)
       | _ -> error st "bad escape");
      go ()
    | c ->
      Buffer.add_char b c;
      go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.s && is_num_char st.s.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then error st "expected number";
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> error st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let k = parse_string st in
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          members ((k, v) :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> error st "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          items (v :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          List.rev (v :: acc)
        | _ -> error st "expected ',' or ']'"
      in
      List (items [])
    end
  | Some 't' -> lit st "true" (Bool true)
  | Some 'f' -> lit st "false" (Bool false)
  | Some 'n' -> lit st "null" Null
  | Some _ -> parse_number st

let parse s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing garbage";
  v

let parse_result s =
  match parse s with v -> Ok v | exception Parse_error m -> Error m

(* ---- accessors ---- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let mem_num k o = match member k o with Some (Num _) -> true | _ -> false
let mem_str k o = match member k o with Some (Str _) -> true | _ -> false

(* ---- validators ---- *)

(* A validator returns the list of violations; [] means valid. *)

let check cond msg errs = if cond then errs else msg :: errs

let check_schema_version o errs =
  match member "schema_version" o with
  | Some (Num f) when int_of_float f = schema_version -> errs
  | Some (Num f) ->
    Printf.sprintf "schema_version is %d, expected %d" (int_of_float f)
      schema_version
    :: errs
  | _ -> "missing numeric schema_version" :: errs

(** Chrome trace-event JSON as written by {!Trace_export}:
    a top-level object with [schema_version], [traceEvents] array; each
    event has [ph] of "X" (needs name/ts/dur/pid/tid), "i" (name/ts/tid)
    or "M" (name/args). *)
let validate_trace v =
  match v with
  | Obj _ as o ->
    let errs = check_schema_version o [] in
    (match member "traceEvents" o with
     | Some (List evs) ->
       let errs =
         check (evs <> []) "traceEvents is empty" errs
       in
       let bad = ref [] in
       List.iteri
         (fun i ev ->
           let fail msg =
             if List.length !bad < 5 then
               bad := Printf.sprintf "event %d: %s" i msg :: !bad
           in
           match ev with
           | Obj _ as e -> (
             match member "ph" e with
             | Some (Str "X") ->
               if
                 not
                   (mem_str "name" e && mem_num "ts" e && mem_num "dur" e
                    && mem_num "pid" e && mem_num "tid" e)
               then fail "X event missing name/ts/dur/pid/tid"
             | Some (Str "i") ->
               if not (mem_str "name" e && mem_num "ts" e && mem_num "tid" e)
               then fail "i event missing name/ts/tid"
             | Some (Str "M") ->
               if not (mem_str "name" e) then fail "M event missing name"
             | Some (Str ph) -> fail (Printf.sprintf "unknown ph %S" ph)
             | _ -> fail "missing ph")
           | _ -> fail "event is not an object")
         evs;
       List.rev_append !bad errs
     | _ -> "missing traceEvents array" :: errs)
  | _ -> [ "top level is not an object" ]

let result_keys =
  [ "system"; "workload"; "workers"; "ops"; "duration_ns"; "throughput";
    "wbinvd"; "clwb"; "clwb_elided"; "clwb_coalesced"; "clflush";
    "clflush_elided"; "sfence"; "sfence_elided"; "bg_flushes" ]

(* Per-point keys of a loadcurve curve object ([bench loadcurve] /
   [prep_cli serve-sim]); all numeric. *)
let curve_point_keys =
  [ "offered_ops_per_s"; "arrivals"; "completed"; "backlogged"; "shed";
    "shed_rate"; "queue_peak"; "throughput_ops_per_s"; "sojourn_p50_ns";
    "sojourn_p95_ns"; "sojourn_p99_ns"; "sojourn_mean_ns" ]

(** Bench JSON as written by [bench smoke]/[bench readscale]: a top-level
    object with [schema_version]; every nested object that has a
    ["system"] key is an experiment result and must carry the full result
    key set plus a [counters] object. Objects with a ["curve_system"] key
    are open-loop load curves: a non-empty [points] array whose entries
    carry the offered/completed counts and sojourn percentiles (with
    p50 <= p95 <= p99), plus a [knee_ops_per_s] number or null. *)
let validate_bench v =
  match v with
  | Obj _ as o ->
    let errs = ref (check_schema_version o []) in
    let fail msg = if List.length !errs < 10 then errs := msg :: !errs in
    let check_curve path v =
      if not (mem_str "workload" v) then
        fail (Printf.sprintf "%s: curve missing workload string" path);
      if not (mem_num "workers" v) then
        fail (Printf.sprintf "%s: curve missing numeric workers" path);
      (match member "knee_ops_per_s" v with
       | Some (Num _) | Some Null -> ()
       | _ ->
         fail
           (Printf.sprintf "%s: curve missing knee_ops_per_s (number or null)"
              path));
      match member "points" v with
      | Some (List []) -> fail (Printf.sprintf "%s: curve has no points" path)
      | Some (List pts) ->
        List.iteri
          (fun i p ->
            let ppath = Printf.sprintf "%s.points[%d]" path i in
            match p with
            | Obj _ ->
              List.iter
                (fun k ->
                  if not (mem_num k p) then
                    fail
                      (Printf.sprintf "%s: point missing numeric %S" ppath k))
                curve_point_keys;
              (match
                 ( member "sojourn_p50_ns" p,
                   member "sojourn_p95_ns" p,
                   member "sojourn_p99_ns" p )
               with
               | Some (Num p50), Some (Num p95), Some (Num p99) ->
                 if not (p50 <= p95 && p95 <= p99) then
                   fail
                     (Printf.sprintf
                        "%s: sojourn percentiles not ordered (p50 %.0f, p95 \
                         %.0f, p99 %.0f)"
                        ppath p50 p95 p99)
               | _ -> ())
            | _ -> fail (Printf.sprintf "%s: point is not an object" ppath))
          pts
      | _ -> fail (Printf.sprintf "%s: curve missing points array" path)
    in
    let rec walk path v =
      match v with
      | Obj kvs ->
        if mem_str "system" v then begin
          List.iter
            (fun k ->
              if member k v = None then
                fail (Printf.sprintf "%s: result missing key %S" path k))
            result_keys;
          match member "counters" v with
          | Some (Obj _) -> ()
          | _ -> fail (Printf.sprintf "%s: result missing counters object" path)
        end;
        if mem_str "curve_system" v then check_curve path v;
        List.iter (fun (k, v) -> walk (path ^ "." ^ k) v) kvs
      | List items ->
        List.iteri (fun i v -> walk (Printf.sprintf "%s[%d]" path i) v) items
      | _ -> ()
    in
    walk "$" o;
    List.rev !errs
  | _ -> [ "top level is not an object" ]

(** Parse [s] and run [validator]; [Ok ()] or a human-readable error. *)
let validate_string validator s =
  match parse_result s with
  | Error m -> Error [ "parse error: " ^ m ]
  | Ok v -> ( match validator v with [] -> Ok () | errs -> Error errs)
