(** Chrome trace-event export.

    Writes the registry's event buffer in the JSON trace-event format
    consumed by Perfetto (ui.perfetto.dev) and chrome://tracing: one
    thread track per fiber, "X" complete events for spans, "i" instant
    events for crashes/flushes, "M" metadata naming the tracks.

    Timestamps in the format are microseconds; the simulator counts
    nanoseconds, so we emit fractional µs with ns resolution
    ([%.3f]). [displayTimeUnit] is set to "ns" so Perfetto's cursor
    readout matches the simulator's clock. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us ns = float_of_int ns /. 1000.0

(** Render registry [t]'s events as a trace-event JSON string. *)
let to_string t =
  let b = Buffer.create 65536 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema_version\":%d,\"displayTimeUnit\":\"ns\",\n"
       Json.schema_version);
  Buffer.add_string b "\"traceEvents\":[\n";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b s
  in
  (* track-name metadata first: one process, one thread per fiber *)
  emit
    "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"sim\"}}";
  List.iter
    (fun tid ->
      match Registry.track_name t tid with
      | Some name ->
        emit
          (Printf.sprintf
             "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
             tid (escape name))
      | None -> ())
    (Registry.track_ids t);
  List.iter
    (fun ev ->
      match ev with
      | Registry.Complete { ev_name; ev_track; ev_t0; ev_dur } ->
        emit
          (Printf.sprintf
             "{\"ph\":\"X\",\"name\":\"%s\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}"
             (escape ev_name) ev_track (us ev_t0) (us ev_dur))
      | Registry.Instant { ev_name; ev_track; ev_t } ->
        emit
          (Printf.sprintf
             "{\"ph\":\"i\",\"name\":\"%s\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"s\":\"t\"}"
             (escape ev_name) ev_track (us ev_t)))
    (Registry.events t);
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

(** Write the trace to [path], self-validating against the trace schema
    first. Returns [Error _] (and writes nothing) if the rendered JSON
    fails its own validator — a writer bug, caught before CI does. *)
let write t path =
  let s = to_string t in
  match Json.validate_string Json.validate_trace s with
  | Error errs -> Error errs
  | Ok () ->
    let oc = open_out path in
    output_string oc s;
    close_out oc;
    Ok ()
