(** Typed telemetry: metric registry, simulated-time phase spans, latency
    histograms, and a Chrome-trace event buffer.

    One [Telemetry.t] registry holds every metric of one measured run:

    - {e counters} — monotonically increasing ints (flush counts per call
      site, scheduler events, ported optimisation counters);
    - {e gauges} — last-written ints (configuration echoes, watermarks);
    - {e histograms} — distributions of simulated-ns values in log2
      buckets, with approximate p50/p95/p99;
    - {e spans} — named phases ("combine", "persist", ...) timed on the
      {e simulated} clock, nested per track (= fiber). Each span kind
      keeps an inclusive-latency histogram plus an exclusive (self-time)
      total, so a profile can attribute every simulated nanosecond to
      exactly one phase.

    Everything here is harness-side: recording charges no simulated time,
    consumes no simulated randomness, and therefore cannot perturb a run.
    A run with a registry installed is step-for-step identical to the same
    run without one — the differential fuzz harness checks exactly that.

    The library is deliberately below [Sim] in the dependency order; it
    learns about simulated time and the current fiber through the
    [set_clock]/[set_track] callbacks, which [Sim] installs at link time.
    When no simulation is running both default to 0.

    Cost when disabled: instrumentation sites are guarded either by an
    [option] captured at subsystem creation ([Nvm.Memory], [Prep_uc]) or
    by the one-word [current ()] check, so the default path pays a load
    and a branch, nothing more. *)

(* ---- ambient callbacks (installed by Sim) ---- *)

let clock_fn : (unit -> int) ref = ref (fun () -> 0)
let track_fn : (unit -> int) ref = ref (fun () -> 0)

let set_clock f = clock_fn := f
let set_track f = track_fn := f
let now () = !clock_fn ()
let track () = !track_fn ()

(* ---- metrics ---- *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : int }

let hist_buckets = 63
(* bucket [b] holds values v with [bits v = b], i.e. v in [2^(b-1), 2^b);
   bucket 0 holds 0 (and any negative value, clamped) *)

type histogram = {
  h_name : string;
  mutable h_n : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_counts : int array; (* hist_buckets entries *)
}

type span = {
  sp_name : string;
  sp_hist : histogram; (* inclusive duration per occurrence *)
  mutable sp_self : int; (* exclusive total: inclusive minus child spans *)
}

(* ---- trace events (Chrome trace-event format source data) ---- *)

type event =
  | Complete of { ev_name : string; ev_track : int; ev_t0 : int; ev_dur : int }
  | Instant of { ev_name : string; ev_track : int; ev_t : int }

(* ---- per-track span stack ---- *)

type frame = {
  fr_span : span;
  fr_t0 : int;
  mutable fr_child : int; (* simulated ns spent in nested spans *)
}

type track_info = {
  mutable tk_first : int; (* t0 of the first depth-0 span *)
  mutable tk_last : int; (* end of the last depth-0 span *)
  mutable tk_covered : int; (* total ns inside depth-0 spans *)
}

type t = {
  mutable enabled : bool;
  mutable tracing : bool; (* collect Chrome-trace events *)
  sample_events : int; (* emit every Nth complete event per span kind *)
  max_events : int;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  spans : (string, span) Hashtbl.t;
  stacks : (int, frame list) Hashtbl.t; (* track -> open spans, innermost first *)
  tracks : (int, track_info) Hashtbl.t;
  track_names : (int, string) Hashtbl.t;
  mutable events : event list; (* newest first *)
  mutable n_events : int;
  mutable dropped_events : int;
}

let create ?(enabled = true) ?(tracing = false) ?(sample_events = 1)
    ?(max_events = 4_000_000) () =
  {
    enabled;
    tracing;
    sample_events = max 1 sample_events;
    max_events;
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 32;
    spans = Hashtbl.create 16;
    stacks = Hashtbl.create 16;
    tracks = Hashtbl.create 16;
    track_names = Hashtbl.create 16;
    events = [];
    n_events = 0;
    dropped_events = 0;
  }

let enabled t = t.enabled
let tracing t = t.tracing && t.enabled
let set_enabled t on = t.enabled <- on

(* ---- the ambient registry ---- *)

(* Domain-local, not global: independent sim instances running on separate
   domains (Harness.Campaign) each get their own ambient slot, so one
   domain's registry never observes another domain's recordings. *)
type cur_slot = { mutable cur : t option }

let cur_key : cur_slot Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { cur = None })

let cur () = (Domain.DLS.get cur_key).cur

let current () = cur ()
let set_current r = (Domain.DLS.get cur_key).cur <- r

let with_current r f =
  let slot = Domain.DLS.get cur_key in
  let saved = slot.cur in
  slot.cur <- Some r;
  match f () with
  | v ->
    slot.cur <- saved;
    v
  | exception e ->
    slot.cur <- saved;
    raise e

(* ---- find-or-create ---- *)

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.replace t.counters name c;
    c

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_value = 0 } in
    Hashtbl.replace t.gauges name g;
    g

let new_hist name =
  {
    h_name = name;
    h_n = 0;
    h_sum = 0;
    h_min = max_int;
    h_max = 0;
    h_counts = Array.make hist_buckets 0;
  }

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    let h = new_hist name in
    Hashtbl.replace t.histograms name h;
    h

let span t name =
  match Hashtbl.find_opt t.spans name with
  | Some s -> s
  | None ->
    let s = { sp_name = name; sp_hist = new_hist name; sp_self = 0 } in
    Hashtbl.replace t.spans name s;
    s

(* ---- recording ---- *)

let add c by = c.c_value <- c.c_value + by
let incr c = add c 1
let value (c : counter) = c.c_value
let set (g : gauge) v = g.g_value <- v

(* bucket index = number of significant bits of v; 0 maps to bucket 0 *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 0 do
      Stdlib.incr b;
      x := !x lsr 1
    done;
    min !b (hist_buckets - 1)
  end

let observe h v =
  let v = max 0 v in
  h.h_n <- h.h_n + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  h.h_counts.(b) <- h.h_counts.(b) + 1

(** Add [by] to counter [name] of registry [t] (find-or-create). *)
let add_to t name by = if t.enabled then add (counter t name) by

(** Convenience: bump a counter on the ambient registry, if any. *)
let cur_add name by =
  match cur () with
  | None -> ()
  | Some t -> if t.enabled then add (counter t name) by

let push_event t ev =
  if t.n_events >= t.max_events then t.dropped_events <- t.dropped_events + 1
  else begin
    t.events <- ev :: t.events;
    t.n_events <- t.n_events + 1
  end

(** Record an instant event (crash, flush, fence) on the current track. *)
let instant t name =
  if tracing t then
    push_event t (Instant { ev_name = name; ev_track = track (); ev_t = now () })

let cur_instant name =
  match cur () with None -> () | Some t -> instant t name

(** Name a track (fiber) for the trace export. *)
let name_track t tid name = Hashtbl.replace t.track_names tid name

let cur_name_track tid name =
  match cur () with None -> () | Some t -> name_track t tid name

(* ---- spans ---- *)

let track_info t tid =
  match Hashtbl.find_opt t.tracks tid with
  | Some i -> i
  | None ->
    let i = { tk_first = max_int; tk_last = 0; tk_covered = 0 } in
    Hashtbl.replace t.tracks tid i;
    i

let span_enter t sp =
  if t.enabled then begin
    let tid = track () in
    let stack =
      match Hashtbl.find_opt t.stacks tid with Some s -> s | None -> []
    in
    Hashtbl.replace t.stacks tid
      ({ fr_span = sp; fr_t0 = now (); fr_child = 0 } :: stack)
  end

let span_exit t sp =
  if t.enabled then begin
    let tid = track () in
    match Hashtbl.find_opt t.stacks tid with
    | None | Some [] -> () (* unbalanced exit: ignore *)
    | Some (fr :: rest) ->
      if fr.fr_span != sp then begin
        (* unbalanced (an exception unwound past an enter): pop down to the
           matching frame, discarding orphans rather than mis-attributing
           their time; if [sp] isn't open on this track at all, ignore *)
        if List.exists (fun f -> f.fr_span == sp) rest then begin
          let rec drop = function
            | f :: tl when f.fr_span != sp -> drop tl
            | _ :: tl -> tl
            | [] -> []
          in
          Hashtbl.replace t.stacks tid (drop rest)
        end
      end
      else begin
        Hashtbl.replace t.stacks tid rest;
        let t1 = now () in
        let dur = t1 - fr.fr_t0 in
        observe sp.sp_hist dur;
        sp.sp_self <- sp.sp_self + dur - fr.fr_child;
        (match rest with
         | parent :: _ -> parent.fr_child <- parent.fr_child + dur
         | [] ->
           let info = track_info t tid in
           if fr.fr_t0 < info.tk_first then info.tk_first <- fr.fr_t0;
           if t1 > info.tk_last then info.tk_last <- t1;
           info.tk_covered <- info.tk_covered + dur);
        if t.tracing && sp.sp_hist.h_n mod t.sample_events = 0 then
          push_event t
            (Complete
               { ev_name = sp.sp_name; ev_track = tid; ev_t0 = fr.fr_t0;
                 ev_dur = dur })
      end
  end

(** Run [f] inside span [sp]. Exception-safe: the span is closed (and its
    time recorded) even if [f] raises — the crash fuzzer aborts fibers by
    raising from a memory-access hook, and an unwound span must not
    corrupt the nesting of later spans on the same track. *)
let with_span t sp f =
  if not t.enabled then f ()
  else begin
    span_enter t sp;
    match f () with
    | v ->
      span_exit t sp;
      v
    | exception e ->
      span_exit t sp;
      raise e
  end

(** Drop any open span frames (e.g. fibers abandoned by a simulated power
    failure mid-span). Call between runs that share a registry. *)
let reset_stacks t = Hashtbl.reset t.stacks

(* ---- snapshots ---- *)

type hist_stats = {
  hs_n : int;
  hs_sum : int;
  hs_min : int;
  hs_max : int;
  hs_p50 : int;
  hs_p95 : int;
  hs_p99 : int;
}

type span_stats = { ss_stats : hist_stats; ss_self : int }

type snapshot = {
  sn_counters : (string * int) list; (* sorted by name *)
  sn_gauges : (string * int) list;
  sn_hists : (string * hist_stats) list;
  sn_spans : (string * span_stats) list;
  sn_wall : int; (* latest depth-0 span end across tracks *)
  sn_tracks : int; (* tracks that recorded at least one span *)
  sn_covered : int; (* total ns inside depth-0 spans *)
  sn_track_extent : int; (* sum over tracks of (last - first) *)
}

let empty_snapshot =
  {
    sn_counters = [];
    sn_gauges = [];
    sn_hists = [];
    sn_spans = [];
    sn_wall = 0;
    sn_tracks = 0;
    sn_covered = 0;
    sn_track_extent = 0;
  }

(* representative value of bucket [b]: the geometric midpoint of
   [2^(b-1), 2^b) — percentiles are bucket-resolution approximations *)
let bucket_rep b = if b = 0 then 0 else (1 lsl (b - 1)) + (1 lsl (b - 1) / 2)

let percentile h q =
  if h.h_n = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.h_n))) in
    let seen = ref 0 and res = ref h.h_max in
    (try
       for b = 0 to hist_buckets - 1 do
         seen := !seen + h.h_counts.(b);
         if !seen >= rank then begin
           res := min (bucket_rep b) h.h_max;
           raise Exit
         end
       done
     with Exit -> ());
    max !res h.h_min |> min h.h_max
  end

let hist_stats h =
  {
    hs_n = h.h_n;
    hs_sum = h.h_sum;
    hs_min = (if h.h_n = 0 then 0 else h.h_min);
    hs_max = h.h_max;
    hs_p50 = percentile h 0.50;
    hs_p95 = percentile h 0.95;
    hs_p99 = percentile h 0.99;
  }

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot t =
  let wall = ref 0 and covered = ref 0 and extent = ref 0 and ntracks = ref 0 in
  Hashtbl.iter
    (fun _ info ->
      if info.tk_last > 0 then begin
        Stdlib.incr ntracks;
        if info.tk_last > !wall then wall := info.tk_last;
        covered := !covered + info.tk_covered;
        extent := !extent + (info.tk_last - info.tk_first)
      end)
    t.tracks;
  {
    sn_counters = sorted_bindings t.counters (fun c -> c.c_value);
    sn_gauges = sorted_bindings t.gauges (fun g -> g.g_value);
    sn_hists = sorted_bindings t.histograms hist_stats;
    sn_spans =
      sorted_bindings t.spans (fun s ->
          { ss_stats = hist_stats s.sp_hist; ss_self = s.sp_self });
    sn_wall = !wall;
    sn_tracks = !ntracks;
    sn_covered = !covered;
    sn_track_extent = !extent;
  }

let find_counter snap name =
  match List.assoc_opt name snap.sn_counters with Some v -> v | None -> 0

(* ---- cross-registry merge ---- *)

let merge_hist dst src =
  dst.h_n <- dst.h_n + src.h_n;
  dst.h_sum <- dst.h_sum + src.h_sum;
  if src.h_n > 0 && src.h_min < dst.h_min then dst.h_min <- src.h_min;
  if src.h_max > dst.h_max then dst.h_max <- src.h_max;
  Array.iteri
    (fun i c -> dst.h_counts.(i) <- dst.h_counts.(i) + c)
    src.h_counts

(** Merge every metric of [src] into [into] (Harness.Campaign's
    order-independent result merge): counters and histogram buckets sum,
    gauges take [src]'s last-written value, spans merge their histograms
    and add their self-time totals. All of it is commutative except
    gauges, so absorbing per-task registries in task order yields the same
    registry regardless of which domain ran which task. Track extents and
    trace events are single-run artifacts and are not merged. *)
let absorb ~into src =
  Hashtbl.iter (fun name c -> add (counter into name) c.c_value) src.counters;
  Hashtbl.iter (fun name g -> set (gauge into name) g.g_value) src.gauges;
  Hashtbl.iter (fun name h -> merge_hist (histogram into name) h) src.histograms;
  Hashtbl.iter
    (fun name s ->
      let d = span into name in
      merge_hist d.sp_hist s.sp_hist;
      d.sp_self <- d.sp_self + s.sp_self)
    src.spans

(* ---- event access (trace export) ---- *)

(** Collected trace events, oldest first. *)
let events t = List.rev t.events

let n_events t = t.n_events
let dropped_events t = t.dropped_events
let track_name t tid = Hashtbl.find_opt t.track_names tid

let track_ids t =
  Hashtbl.fold (fun tid _ acc -> tid :: acc) t.track_names []
  |> List.sort_uniq compare
