(** Crash–restart–continue sessions: the end-to-end exactly-once harness.

    A session gives every client thread a fixed script of update operations
    and runs it to completion across [crashes] full-system power failures.
    Each epoch is one simulated incarnation: the first builds the UC, every
    later one recovers it from NVM media and lets the clients resume.

    How a client resumes is the point of the harness:

    - with [detect] on, the client consults [Prep_uc.resolve] — and nothing
      else — to learn where its script stands: [Completed s] resumes at
      [s + 1], [Lost s] re-submits [s] (same seqno, so the system can
      deduplicate), [Unannounced] restarts the script. The session's
      cumulative history must then contain every scripted op exactly once;
    - with [detect] off, the client cannot distinguish "my in-flight op
      applied" from "it was lost", so the honest client never re-submits
      and skips past it. The harness counts those ghost-truth losses —
      the baseline the detectability layer exists to eliminate.

    Every crash is additionally judged by [Durable_lin.check] (loss bound 0
    — sessions run PREP-Durable) and, under [detect], by
    [Durable_lin.check_resolutions] against the cumulative tagged history.
    The final state is judged by [Durable_lin.check_exactly_once].

    Crashes are injected at calibrated memory-operation indexes, with the
    crash hook armed only *after* create/recover returns: a restart epoch
    must never lose power mid-recovery (recovery replay is not idempotent
    and crash-during-recovery is outside the paper's model). *)

open Nvm

type config = {
  seed : int;  (** seeds scripts, schedules and crash points *)
  threads : int;  (** client threads (≤ total cores − 1) *)
  ops_per_client : int;  (** scripted update ops per client *)
  epsilon : int;
  log_size : int;
  crashes : int;  (** crash epochs to inject (best effort: a session that
                      finishes early injects fewer) *)
  detect : bool;  (** detectable execution: resume via [resolve] *)
  bg_period : int;  (** mean ops between background cache write-backs *)
  preempt_prob : float;
}

let default_config =
  {
    seed = 1;
    threads = 4;
    ops_per_client = 40;
    epsilon = 8;
    log_size = 1024;
    crashes = 3;
    detect = true;
    bg_period = 2_000;
    preempt_prob = 0.02;
  }

type epoch_info = {
  epoch : int;
  crashed : bool;  (** this epoch ended in a power failure *)
  resubmitted : int;  (** ops re-submitted during this epoch (post-restart) *)
}

type outcome = {
  epochs : epoch_info list;
  crashes_injected : int;
  submitted : int;  (** execute calls issued, resubmissions included *)
  resubmitted : int;  (** execute calls that repeated an earlier seqno *)
  completed : int;  (** scripted ops present in the final state *)
  lost : int;  (** scripted ops that never took effect *)
  duplicated : int;  (** scripted ops that took effect more than once *)
  violations : Check.Durable_lin.violation list;
  history_len : int;  (** ops applied across all epochs (survivors) *)
  runtime_ops : int;  (** memory operations issued outside construction *)
  duration_ns : int;  (** simulated ns summed over completed epochs *)
  mem_stats : Memory.stats;
}

module Make (Ds : Seqds.Ds_intf.S) = struct
  module Uc = Prep.Prep_uc.Make (Ds)
  module Dl = Check.Durable_lin.Make (Ds.Model)

  (* Same fixed machine as the fuzzer: 2 sockets × 4 cores, last core
     reserved for the persistence thread. *)
  let topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 }
  let beta = topology.Sim.Topology.cores_per_socket
  let max_threads = Sim.Topology.total_cores topology - 1

  let tid_of w =
    let socket, core = Sim.Topology.place topology w in
    (socket * beta) + core

  (** Run one session. [gen_op] draws candidate ops; read-only draws are
      re-drawn (scripts are updates — only updates are announced, and the
      exactly-once contract is about effects). The session is a
      deterministic function of [cfg]. *)
  let rec run (cfg : config) ~gen_op =
    if cfg.threads < 1 || cfg.threads > max_threads then
      invalid_arg "Session: thread count out of range";
    if cfg.crashes < 0 then invalid_arg "Session: negative crash count";
    (* calibration: the same session without crashes sizes the
       crash-point space (memory ops per full run) *)
    let calib =
      if cfg.crashes = 0 then None else Some (run { cfg with crashes = 0 } ~gen_op)
    in
    let crash_rng =
      Sim.Rng.create (Int64.of_int ((cfg.seed * 1_000_003) + 41))
    in
    let pick_crash () =
      match calib with
      | None -> assert false
      | Some c ->
        (* one slice of the full run per crash, so epochs make progress *)
        let slice = max 1 (c.runtime_ops / (cfg.crashes + 1)) in
        Check.Fuzz.At_op (1 + Sim.Rng.int crash_rng slice)
    in
    (* per-client scripts, drawn once outside the simulation *)
    let script_rng =
      Sim.Rng.create (Int64.of_int ((cfg.seed * 1_000_003) + 29))
    in
    let draw_update rng =
      let rec go budget =
        if budget = 0 then invalid_arg "Session: gen_op never yields updates";
        let op, args = gen_op rng in
        if Ds.is_readonly ~op then go (budget - 1) else (op, args)
      in
      go 1_000
    in
    let scripts =
      Array.init cfg.threads (fun _ ->
          Array.init cfg.ops_per_client (fun _ -> draw_update script_rng))
    in
    let mem =
      Memory.make
        ~seed:(Int64.of_int (cfg.seed + 7919))
        ~sockets:topology.Sim.Topology.sockets ~bg_period:cfg.bg_period ()
    in
    let uc_cfg =
      Prep.Config.make ~mode:Prep.Config.Durable ~log_size:cfg.log_size
        ~epsilon:cfg.epsilon ~detect:cfg.detect ~workers:cfg.threads ()
    in
    (* client ghost state; [next] is rebuilt from [resolve] on restart when
       detectability is on, so it is client knowledge, not an oracle *)
    let next = Array.make cfg.threads 1 in
    let submitted = Array.make cfg.threads 0 in
    let submit_total = ref 0 in
    let resubmit_total = ref 0 in
    let history = ref [] in
    let violations = ref [] in
    let epoch_infos = ref [] in
    let uc_ref = ref None in
    let crashes_done = ref 0 in
    let duration = ref 0 in
    let runtime_ops = ref 0 in
    let applied_seqno_cum tid =
      List.fold_left
        (fun acc (t, s, _, _) -> if t = tid && s > acc then s else acc)
        0 !history
    in

    let run_epoch ~plan =
      let epoch = List.length !epoch_infos in
      let resub_here = ref 0 in
      let sim =
        Sim.create
          ~seed:(Int64.of_int (cfg.seed + (31 * epoch)))
          ~preempt_prob:cfg.preempt_prob topology
      in
      let setup_ops = ref 0 in
      let end_time = ref 0 in
      let done_count = ref 0 in
      ignore
        (Sim.spawn sim ~socket:0 (fun () ->
             let uc =
               match !uc_ref with
               | None ->
                 let roots = Roots.make mem in
                 Uc.create mem roots uc_cfg
               | Some old_uc ->
                 (* restart epoch: recover, judge the crash, append the
                    survivors to the cumulative history, resume clients *)
                 let old_trace = Uc.trace old_uc in
                 let uc', report = Uc.recover old_uc in
                 let completed = Prep.Trace.completed_indexes old_trace in
                 violations :=
                   !violations
                   @ Dl.check ~trace:old_trace
                       ~prefill:(Uc.prefill_ops old_uc)
                       ~applied:report.Prep.Prep_uc.applied ~completed
                       ~recovered_snapshot:(Uc.snapshot uc') ~loss_bound:0 ();
                 List.iter
                   (fun i ->
                     let e = Prep.Trace.get old_trace i in
                     history :=
                       ( e.Prep.Trace.tid,
                         e.Prep.Trace.seqno,
                         e.Prep.Trace.op,
                         e.Prep.Trace.args )
                       :: !history)
                   report.Prep.Prep_uc.applied;
                 if cfg.detect then begin
                   let resolutions =
                     List.init cfg.threads (fun w ->
                         (tid_of w, Uc.resolve uc' ~tid:(tid_of w)))
                   in
                   violations :=
                     !violations
                     @ Check.Durable_lin.check_resolutions ~resolutions
                         ~applied_seqno:applied_seqno_cum;
                   List.iteri
                     (fun w (_, r) ->
                       let resume =
                         match (r : Prep.Prep_uc.resolution) with
                         | Prep.Prep_uc.Completed { seqno; _ } -> seqno + 1
                         | Prep.Prep_uc.Lost { seqno } -> seqno
                         | Prep.Prep_uc.Unannounced -> 1
                       in
                       next.(w) <- min resume (cfg.ops_per_client + 1))
                     resolutions
                 end
                 else
                   (* no detectability: skip past the uncertain in-flight
                      op rather than risk a duplicate *)
                   Array.iteri
                     (fun w s -> next.(w) <- max next.(w) (s + 1))
                     submitted;
                 uc'
             in
             uc_ref := Some uc;
             setup_ops := Memory.op_index mem;
             (* arm the crash strictly after construction/recovery *)
             (match plan with
              | Some n ->
                let base = !setup_ops in
                Memory.set_crash_hook mem (fun i ->
                    if i - base >= n then raise Check.Fuzz.Crash_injected)
              | None -> ());
             Uc.start_persistence uc;
             for w = 0 to cfg.threads - 1 do
               let socket, core = Sim.Topology.place topology w in
               Sim.spawn_here ~socket ~core (fun () ->
                   Uc.register_worker uc;
                   while next.(w) <= cfg.ops_per_client do
                     let s = next.(w) in
                     let op, args = scripts.(w).(s - 1) in
                     if s <= submitted.(w) then begin
                       incr resubmit_total;
                       incr resub_here;
                       Telemetry.Registry.cur_add "detect.resubmit" 1
                     end;
                     if s > submitted.(w) then submitted.(w) <- s;
                     incr submit_total;
                     ignore (Uc.execute uc ~seqno:s ~op ~args);
                     next.(w) <- s + 1
                   done;
                   incr done_count)
             done;
             while !done_count < cfg.threads do
               Sim.tick 10_000
             done;
             Uc.stop uc;
             Uc.sync uc;
             end_time := Sim.now ()));
      let crashed =
        match plan with
        | None -> (
          match Sim.run sim () with `Done -> false | `Cut _ -> assert false)
        | Some _ -> (
          try
            ignore (Sim.run sim ());
            false
          with Check.Fuzz.Crash_injected -> true)
      in
      Memory.clear_crash_hook mem;
      runtime_ops := !runtime_ops + (Memory.op_index mem - !setup_ops);
      if not crashed then duration := !duration + !end_time;
      epoch_infos :=
        { epoch; crashed; resubmitted = !resub_here } :: !epoch_infos;
      crashed
    in

    let continue_ = ref true in
    while !continue_ do
      let plan =
        if !crashes_done < cfg.crashes then
          match pick_crash () with Check.Fuzz.At_op n -> Some n | _ -> None
        else None
      in
      if run_epoch ~plan then begin
        incr crashes_done;
        Memory.crash mem;
        Context.reset ()
      end
      else continue_ := false
    done;

    (* final epoch ran to quiescence: its whole trace applied *)
    let uc = Option.get !uc_ref in
    let trace = Uc.trace uc in
    for i = 0 to Prep.Trace.length trace - 1 do
      let e = Prep.Trace.get trace i in
      history :=
        (e.Prep.Trace.tid, e.Prep.Trace.seqno, e.Prep.Trace.op, e.Prep.Trace.args)
        :: !history
    done;
    let history = List.rev !history in
    let scripted =
      if not cfg.detect then []
      else
        List.concat
          (List.init cfg.threads (fun w ->
               List.init cfg.ops_per_client (fun i -> (tid_of w, i + 1))))
    in
    violations :=
      !violations
      @ Dl.check_exactly_once ~history ~scripted
          ~recovered_snapshot:(Uc.snapshot uc) ();
    (* lost/duplicated accounting: exact per-(tid, seqno) under [detect];
       per-thread totals otherwise (seqno tags are only written under
       [detect]) — sound because without resubmission each scripted op is
       submitted, hence applied, at most once *)
    let total_scripted = cfg.threads * cfg.ops_per_client in
    let lost, duplicated =
      if cfg.detect then begin
        let counts = Hashtbl.create 256 in
        List.iter
          (fun (t, s, _, _) ->
            if s > 0 then
              Hashtbl.replace counts (t, s)
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts (t, s))))
          history;
        let lost = ref 0 and dup = ref 0 in
        for w = 0 to cfg.threads - 1 do
          for s = 1 to cfg.ops_per_client do
            match Hashtbl.find_opt counts (tid_of w, s) with
            | None -> incr lost
            | Some 1 -> ()
            | Some _ -> incr dup
          done
        done;
        (!lost, !dup)
      end
      else begin
        let per_tid = Hashtbl.create 16 in
        List.iter
          (fun (t, _, _, _) ->
            Hashtbl.replace per_tid t
              (1 + Option.value ~default:0 (Hashtbl.find_opt per_tid t)))
          history;
        let lost = ref 0 in
        for w = 0 to cfg.threads - 1 do
          let n = Option.value ~default:0 (Hashtbl.find_opt per_tid (tid_of w)) in
          lost := !lost + max 0 (cfg.ops_per_client - n)
        done;
        (!lost, 0)
      end
    in
    {
      epochs = List.rev !epoch_infos;
      crashes_injected = !crashes_done;
      submitted = !submit_total;
      resubmitted = !resubmit_total;
      completed = total_scripted - lost;
      lost;
      duplicated;
      violations = !violations;
      history_len = List.length history;
      runtime_ops = !runtime_ops;
      duration_ns = max 1 !duration;
      mem_stats = Memory.stats mem;
    }

  (** [sessions] independent sessions on consecutive seeds, evaluated by
      [Campaign.run ~j] (each session is a self-contained sim, so the
      outcome list is identical at any [j]). *)
  let campaign ?(j = 1) (cfg : config) ~gen_op ~sessions =
    Array.to_list
      (Campaign.run ~j
         (Array.init sessions (fun i () ->
              run { cfg with seed = cfg.seed + i } ~gen_op)))
end
