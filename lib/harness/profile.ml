(** Render a telemetry snapshot as a simulated-time profile.

    The phase table attributes simulated nanoseconds to named spans:
    [total] is inclusive time (the span and everything nested in it),
    [self] is exclusive time (what remains after subtracting nested
    spans), so the self column sums to exactly the time covered by
    top-level spans — every covered nanosecond is attributed to exactly
    one phase. The four core phases are always shown, even when a system
    never enters one (their zeros are informative: CX-PUC has no combine).

    The coverage line compares that phase total against the wall fiber
    time (the sum over tracks of last-span-end minus first-span-start):
    a healthy instrumented run covers ~100% — anything else means an
    uninstrumented code path is eating simulated time. *)

open Telemetry

let pct num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

(* self-times of the spans a snapshot holds, canonical phases first *)
let span_rows (snap : Registry.snapshot) =
  let canonical = Prep.Phases.phase_names in
  let all = snap.Registry.sn_spans in
  let named =
    List.filter_map
      (fun name ->
        match List.assoc_opt name all with
        | Some ss -> Some (name, ss)
        | None ->
          (* a snapshot without spans (counters-only run): show zeros *)
          Some
            ( name,
              Registry.
                {
                  ss_stats =
                    { hs_n = 0; hs_sum = 0; hs_min = 0; hs_max = 0;
                      hs_p50 = 0; hs_p95 = 0; hs_p99 = 0 };
                  ss_self = 0;
                } ))
      canonical
  in
  let rest =
    List.filter (fun (n, _) -> not (List.mem n canonical)) all
  in
  named @ rest

(** The simulated-ns phase total: the self-times of every span, which by
    construction equals the time covered by top-level spans. *)
let phase_total (snap : Registry.snapshot) =
  List.fold_left
    (fun acc (_, ss) -> acc + ss.Registry.ss_self)
    0 (span_rows snap)

let render_phase_table (snap : Registry.snapshot) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-12s %10s %14s %14s %6s %10s %10s %10s\n" "phase"
       "count" "total-ns" "self-ns" "self%" "p50-ns" "p95-ns" "p99-ns");
  let rows = span_rows snap in
  let total_self = phase_total snap in
  List.iter
    (fun (name, ss) ->
      let st = ss.Registry.ss_stats in
      Buffer.add_string b
        (Printf.sprintf "%-12s %10d %14d %14d %5.1f%% %10d %10d %10d\n" name
           st.Registry.hs_n st.Registry.hs_sum ss.Registry.ss_self
           (pct ss.Registry.ss_self total_self)
           st.Registry.hs_p50 st.Registry.hs_p95 st.Registry.hs_p99))
    rows;
  let wall = snap.Registry.sn_track_extent in
  Buffer.add_string b
    (Printf.sprintf
       "phase total: %d ns across %d tracks = %.1f%% of %d ns wall fiber time\n"
       total_self snap.Registry.sn_tracks
       (pct total_self wall)
       wall);
  Buffer.contents b

(* ---- per-site flush/fence table ----

   [Nvm.Memory] attributes every persistence primitive to a typed call
   site ([Nvm.Persist.site]) through counters named "nvm.<metric>@<site>".
   This folds them into one row per (site, primitive): instructions
   actually emitted (with their simulated-ns share), instructions elided
   by the persistency policy (including clflush->clwb downgrades and
   deferred fences), and instructions elided by the FliT clean-line
   tracking. *)

type site_row = {
  mutable sr_emitted : int;
  mutable sr_ns : int;
  mutable sr_policy : int;  (* policy-elided + downgraded + deferred *)
  mutable sr_flit : int;
}

let strip_suffix s suf =
  let n = String.length s and m = String.length suf in
  if n > m && String.sub s (n - m) m = suf then Some (String.sub s 0 (n - m))
  else None

let site_rows (snap : Registry.snapshot) =
  let tbl = Hashtbl.create 32 in
  let row site prim =
    let key = (Nvm.Persist.to_string site, prim) in
    match Hashtbl.find_opt tbl key with
    | Some r -> r
    | None ->
      let r = { sr_emitted = 0; sr_ns = 0; sr_policy = 0; sr_flit = 0 } in
      Hashtbl.replace tbl key r;
      r
  in
  List.iter
    (fun (name, v) ->
      match Nvm.Persist.split_counter name with
      | None -> ()
      | Some (metric, site) -> (
        match strip_suffix metric "_ns" with
        | Some prim -> (row site prim).sr_ns <- v
        | None -> (
          match strip_suffix metric "_flit_elided" with
          | Some prim -> (row site prim).sr_flit <- v
          | None -> (
            match strip_suffix metric "_policy_elided" with
            | Some prim ->
              let r = row site prim in
              r.sr_policy <- r.sr_policy + v
            | None ->
              if metric = "clflush_downgraded" then begin
                let r = row site "clflush" in
                r.sr_policy <- r.sr_policy + v
              end
              else if metric = "sfence_deferred" then begin
                let r = row site "sfence" in
                r.sr_policy <- r.sr_policy + v
              end
              else (row site metric).sr_emitted <- v))))
    snap.Registry.sn_counters;
  Hashtbl.fold (fun k r acc -> (k, r) :: acc) tbl []
  |> List.sort (fun ((s1, p1), r1) ((s2, p2), r2) ->
         if r1.sr_ns <> r2.sr_ns then compare r2.sr_ns r1.sr_ns
         else compare (s1, p1) (s2, p2))

let render_site_table (snap : Registry.snapshot) =
  let rows = site_rows snap in
  if rows = [] then ""
  else begin
    let total_ns =
      List.fold_left (fun acc (_, r) -> acc + r.sr_ns) 0 rows
    in
    let b = Buffer.create 1024 in
    Buffer.add_string b "\nflush/fence sites:\n";
    Buffer.add_string b
      (Printf.sprintf "  %-22s %-12s %10s %12s %6s %12s %12s\n" "site" "prim"
         "emitted" "ns" "ns%" "pol-elided" "flit-elided");
    List.iter
      (fun ((site, prim), r) ->
        Buffer.add_string b
          (Printf.sprintf "  %-22s %-12s %10d %12d %5.1f%% %12d %12d\n" site
             prim r.sr_emitted r.sr_ns (pct r.sr_ns total_ns) r.sr_policy
             r.sr_flit))
      rows;
    Buffer.contents b
  end

let render_counters (snap : Registry.snapshot) =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      (* per-site nvm counters are folded into the site table above *)
      if v <> 0 && Nvm.Persist.split_counter name = None then
        Buffer.add_string b (Printf.sprintf "  %-40s %12d\n" name v))
    snap.Registry.sn_counters;
  Buffer.contents b

(** The full profile: phase table, per-site flush/fence table, then the
    remaining nonzero counters. *)
let render (snap : Registry.snapshot) =
  render_phase_table snap ^ render_site_table snap ^ "\ncounters:\n"
  ^ render_counters snap
