(** Render a telemetry snapshot as a simulated-time profile.

    The phase table attributes simulated nanoseconds to named spans:
    [total] is inclusive time (the span and everything nested in it),
    [self] is exclusive time (what remains after subtracting nested
    spans), so the self column sums to exactly the time covered by
    top-level spans — every covered nanosecond is attributed to exactly
    one phase. The four core phases are always shown, even when a system
    never enters one (their zeros are informative: CX-PUC has no combine).

    The coverage line compares that phase total against the wall fiber
    time (the sum over tracks of last-span-end minus first-span-start):
    a healthy instrumented run covers ~100% — anything else means an
    uninstrumented code path is eating simulated time. *)

open Telemetry

let pct num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

(* self-times of the spans a snapshot holds, canonical phases first *)
let span_rows (snap : Registry.snapshot) =
  let canonical = Prep.Phases.phase_names in
  let all = snap.Registry.sn_spans in
  let named =
    List.filter_map
      (fun name ->
        match List.assoc_opt name all with
        | Some ss -> Some (name, ss)
        | None ->
          (* a snapshot without spans (counters-only run): show zeros *)
          Some
            ( name,
              Registry.
                {
                  ss_stats =
                    { hs_n = 0; hs_sum = 0; hs_min = 0; hs_max = 0;
                      hs_p50 = 0; hs_p95 = 0; hs_p99 = 0 };
                  ss_self = 0;
                } ))
      canonical
  in
  let rest =
    List.filter (fun (n, _) -> not (List.mem n canonical)) all
  in
  named @ rest

(** The simulated-ns phase total: the self-times of every span, which by
    construction equals the time covered by top-level spans. *)
let phase_total (snap : Registry.snapshot) =
  List.fold_left
    (fun acc (_, ss) -> acc + ss.Registry.ss_self)
    0 (span_rows snap)

let render_phase_table (snap : Registry.snapshot) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-12s %10s %14s %14s %6s %10s %10s %10s\n" "phase"
       "count" "total-ns" "self-ns" "self%" "p50-ns" "p95-ns" "p99-ns");
  let rows = span_rows snap in
  let total_self = phase_total snap in
  List.iter
    (fun (name, ss) ->
      let st = ss.Registry.ss_stats in
      Buffer.add_string b
        (Printf.sprintf "%-12s %10d %14d %14d %5.1f%% %10d %10d %10d\n" name
           st.Registry.hs_n st.Registry.hs_sum ss.Registry.ss_self
           (pct ss.Registry.ss_self total_self)
           st.Registry.hs_p50 st.Registry.hs_p95 st.Registry.hs_p99))
    rows;
  let wall = snap.Registry.sn_track_extent in
  Buffer.add_string b
    (Printf.sprintf
       "phase total: %d ns across %d tracks = %.1f%% of %d ns wall fiber time\n"
       total_self snap.Registry.sn_tracks
       (pct total_self wall)
       wall);
  Buffer.contents b

let render_counters (snap : Registry.snapshot) =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      if v <> 0 then Buffer.add_string b (Printf.sprintf "  %-40s %12d\n" name v))
    snap.Registry.sn_counters;
  Buffer.contents b

(** The full profile: phase table, then nonzero counters. *)
let render (snap : Registry.snapshot) =
  render_phase_table snap ^ "\ncounters:\n" ^ render_counters snap
