(** Open-loop throughput/latency experiment runner.

    Where [Experiment] reproduces the paper's closed loop (each worker
    issues its next operation the moment the previous one returns, so
    offered load always equals capacity), this runner decouples arrival
    from service in the style of FliT's load sweeps: a generator fiber
    samples an arrival process ([Workload.Arrival]) on the simulated
    clock and appends operations to an *admission queue* in front of the
    construction's flat-combining publication slots. Service workers
    drain the queue; when arrivals outpace the combiner the queue grows
    without ever blocking the generator, which is exactly what lets the
    sweep walk past saturation and expose the knee.

    Per-operation *sojourn time* — admission-queue wait plus service,
    arrival to response on the sim clock — is recorded into a log2-bucket
    telemetry histogram. Operations still queued when the measurement
    window closes contribute a *censored* sojourn (deadline minus
    arrival, a lower bound): past the knee most operations never
    complete, and dropping them would make the tail look better the more
    saturated the system is. *)

open Nvm

type point = {
  ol_system : string;
  ol_workload : string;
  ol_workers : int;
  ol_offered : float; (* mean offered load, simulated ops/s *)
  ol_arrivals : int; (* admitted during the measure window *)
  ol_completed : int; (* completed during the measure window *)
  ol_backlogged : int; (* admitted in-window, still queued at the deadline *)
  ol_shed : int; (* arrivals dropped in-window by the admission policy *)
  ol_qmax : int; (* peak admission-queue depth in-window *)
  ol_sojourn : Telemetry.Registry.hist_stats;
      (* arrival->response, completed plus censored backlog *)
  ol_duration_ns : int;
  ol_throughput : float; (* completed / s over the measure window *)
}

(** Goodput fraction: completions per admitted arrival in the window. *)
let goodput p =
  if p.ol_arrivals = 0 then 1.0
  else float_of_int p.ol_completed /. float_of_int p.ol_arrivals

(** Run one open-loop point. [poll_ns] is how long an idle service worker
    waits before re-checking the admission queue. [shed] is a drop-tail
    admission policy: an arrival that finds the queue already [shed] deep
    is refused instead of enqueued (and counted, not censored — a shed
    operation never entered the system, so it has no sojourn). Without it
    the queue is unbounded, which is what lets a sweep expose the knee;
    with it the queue — and therefore the sojourn tail — is capped, at
    the price of goodput. *)
let run ?(seed = 7L) ?(topology = Sim.Topology.default)
    ?(duration_ns = 4_000_000) ?(warmup_ns = 800_000) ?(bg_period = 50_000)
    ?(poll_ns = 400) ?shed ~(system : Experiment.system)
    ~(workload : Workload.t) ~(arrival : Workload.Arrival.proc) ~workers ()
    =
  if workers >= Sim.Topology.total_cores topology then
    invalid_arg "Openloop.run: last core is reserved";
  let duration_ns = duration_ns * system.Experiment.duration_factor in
  let warmup_ns = warmup_ns * system.Experiment.duration_factor in
  let reg = Telemetry.Registry.create () in
  let sojourn = Telemetry.Registry.histogram reg "openloop.sojourn_ns" in
  let sim = Sim.create ~seed topology in
  let mem = Memory.make ~bg_period ~sockets:topology.Sim.Topology.sockets () in
  let queue : (int * int array * int) Queue.t = Queue.create () in
  (match shed with
   | Some d when d < 1 -> invalid_arg "Openloop.run: shed depth < 1"
   | _ -> ());
  let arrivals = ref 0
  and completed = ref 0
  and shed_count = ref 0
  and qmax = ref 0
  and done_count = ref 0 in
  let gen_done = ref false in
  let measure_start = ref 0 and deadline = ref 0 in
  ignore
    (Sim.spawn sim ~socket:0 (fun () ->
         let roots = Roots.make mem in
         let inst =
           system.Experiment.make mem roots ~workers
             ~prefill:workload.Workload.prefill
         in
         let t0 = Sim.now () in
         measure_start := t0 + warmup_ns;
         deadline := !measure_start + duration_ns;
         let in_window t = t > !measure_start && t <= !deadline in
         (* the generator: samples the arrival process and admits
            operations; never blocks on the system under test *)
         Sim.spawn_here ~socket:0 (fun () ->
             let rng = Sim.fiber_rng () in
             let arr = Workload.Arrival.make arrival in
             let phase = ref 0 in
             while Sim.now () < !deadline do
               let gap =
                 Workload.Arrival.next_gap arr rng ~now:(Sim.now ())
               in
               Sim.sleep_until (Sim.now () + gap);
               if Sim.now () < !deadline then begin
                 let op, args = workload.Workload.next rng ~phase:!phase in
                 incr phase;
                 match shed with
                 | Some d when Queue.length queue >= d ->
                   if in_window (Sim.now ()) then incr shed_count
                 | _ ->
                   Queue.push (op, args, Sim.now ()) queue;
                   if in_window (Sim.now ()) then begin
                     incr arrivals;
                     let depth = Queue.length queue in
                     if depth > !qmax then qmax := depth
                   end
               end
             done;
             gen_done := true);
         (* service workers: drain the admission queue *)
         for w = 0 to workers - 1 do
           let socket, core = Sim.Topology.place topology w in
           Sim.spawn_here ~socket ~core (fun () ->
               inst.Experiment.register ();
               while Sim.now () < !deadline do
                 match Queue.take_opt queue with
                 | Some (op, args, arrived) ->
                   ignore (inst.Experiment.exec ~op ~args);
                   let finished = Sim.now () in
                   if in_window finished then begin
                     incr completed;
                     Telemetry.Registry.observe sojourn (finished - arrived)
                   end
                 | None -> Sim.tick poll_ns
               done;
               incr done_count)
         done;
         (* supervisor: wait for the drain, then censor the backlog *)
         while (not !gen_done) || !done_count < workers do
           Sim.tick 50_000
         done;
         Queue.iter
           (fun (_, _, arrived) ->
             if in_window arrived then
               Telemetry.Registry.observe sojourn (!deadline - arrived))
           queue;
         inst.Experiment.teardown ();
         inst.Experiment.sample reg));
  (match Sim.run ~until:(1_000 * (duration_ns + warmup_ns)) sim () with
   | `Done -> ()
   | `Cut _ ->
     failwith ("Openloop.run: system wedged: " ^ system.Experiment.sys_name));
  let backlogged =
    Queue.fold
      (fun acc (_, _, arrived) ->
        if arrived > !measure_start && arrived <= !deadline then acc + 1
        else acc)
      0 queue
  in
  {
    ol_system = system.Experiment.sys_name;
    ol_workload = workload.Workload.name;
    ol_workers = workers;
    ol_offered =
      Workload.Arrival.mean_rate (Workload.Arrival.make arrival);
    ol_arrivals = !arrivals;
    ol_completed = !completed;
    ol_backlogged = backlogged;
    ol_shed = !shed_count;
    ol_qmax = !qmax;
    ol_sojourn = Telemetry.Registry.hist_stats sojourn;
    ol_duration_ns = duration_ns;
    ol_throughput =
      float_of_int !completed *. 1e9 /. float_of_int duration_ns;
  }

(* ---- load curves ---- *)

(** The saturation knee of a curve (points in increasing offered-load
    order): the first offered rate whose tail latency has left the
    service-time regime — p99 sojourn above [blowup] times the
    lowest-rate p99 — or whose goodput has collapsed (completions below
    [min_goodput] of admissions, i.e. the queue is growing without
    bound). [None] if the swept range never saturates. *)
let knee ?(blowup = 8.0) ?(min_goodput = 0.95) (points : point list) =
  match points with
  | [] -> None
  | base :: _ ->
    let base_p99 =
      float_of_int
        (max 1 base.ol_sojourn.Telemetry.Registry.hs_p99)
    in
    List.find_map
      (fun p ->
        let p99 = float_of_int p.ol_sojourn.Telemetry.Registry.hs_p99 in
        if p99 > blowup *. base_p99 || goodput p < min_goodput then
          Some p.ol_offered
        else None)
      points

(** One system's curve as a bench-schema JSON object (string). The
    [curve_system] key marks the object for [Telemetry.Json]'s loadcurve
    validation: every point must carry the offered/completed counts and
    ordered p50/p95/p99 sojourn percentiles. Pure — the golden test feeds
    canned points through it. *)
let curve_to_json ~indent (points : point list) =
  match points with
  | [] -> invalid_arg "Openloop.curve_to_json: empty curve"
  | first :: _ ->
    let pad = String.make indent ' ' in
    let b = Buffer.create 1024 in
    let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    bpf "%s{\n" pad;
    bpf "%s  \"curve_system\": %S,\n" pad first.ol_system;
    bpf "%s  \"workload\": %S,\n" pad first.ol_workload;
    bpf "%s  \"workers\": %d,\n" pad first.ol_workers;
    bpf "%s  \"points\": [\n" pad;
    List.iteri
      (fun i p ->
        let s = p.ol_sojourn in
        bpf "%s    {\n" pad;
        bpf "%s      \"offered_ops_per_s\": %.1f,\n" pad p.ol_offered;
        bpf "%s      \"arrivals\": %d,\n" pad p.ol_arrivals;
        bpf "%s      \"completed\": %d,\n" pad p.ol_completed;
        bpf "%s      \"backlogged\": %d,\n" pad p.ol_backlogged;
        bpf "%s      \"shed\": %d,\n" pad p.ol_shed;
        bpf "%s      \"shed_rate\": %.4f,\n" pad
          (let offered_n = p.ol_arrivals + p.ol_shed in
           if offered_n = 0 then 0.0
           else float_of_int p.ol_shed /. float_of_int offered_n);
        bpf "%s      \"queue_peak\": %d,\n" pad p.ol_qmax;
        bpf "%s      \"throughput_ops_per_s\": %.1f,\n" pad p.ol_throughput;
        bpf "%s      \"sojourn_p50_ns\": %d,\n" pad
          s.Telemetry.Registry.hs_p50;
        bpf "%s      \"sojourn_p95_ns\": %d,\n" pad
          s.Telemetry.Registry.hs_p95;
        bpf "%s      \"sojourn_p99_ns\": %d,\n" pad
          s.Telemetry.Registry.hs_p99;
        bpf "%s      \"sojourn_mean_ns\": %.1f\n" pad
          (if s.Telemetry.Registry.hs_n = 0 then 0.0
           else
             float_of_int s.Telemetry.Registry.hs_sum
             /. float_of_int s.Telemetry.Registry.hs_n);
        bpf "%s    }%s\n" pad
          (if i = List.length points - 1 then "" else ","))
      points;
    bpf "%s  ],\n" pad;
    (match knee points with
     | Some k -> bpf "%s  \"knee_ops_per_s\": %.1f\n" pad k
     | None -> bpf "%s  \"knee_ops_per_s\": null\n" pad);
    bpf "%s}" pad;
    Buffer.contents b
