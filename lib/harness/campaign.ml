(** Domain-parallel campaign runner.

    Every campaign in this repo — fuzz episodes, explorer shards, sweep
    points, session scripts — is an array of *independent, deterministic*
    sim instances: each task derives everything from its own seed and
    touches only domain-local ambient state (Sim, Telemetry.Registry and
    Nvm.Context are all [Domain.DLS]-backed). That makes the parallelism
    trivial and, more importantly, *auditable*: a task computes the same
    value whichever domain runs it, results land in the task's own slot,
    and merging happens afterwards in task order — so the merged output of
    a campaign is byte-identical at any [-j]. A run that is *not*
    identical at [-j 1] and [-j 4] has leaked shared state somewhere, and
    CI treats that as a bug.

    The scheduler is a plain work queue: one atomic counter hands out task
    indices; [min j n] domains (counting the calling one) loop on it until
    the queue drains. Tasks must not print — collect output in the result
    value and render it after [run] returns, otherwise interleaved writes
    break the byte-identity contract. *)

type 'r outcome = Pending | Done of 'r | Failed of exn

(** What [Domain.recommended_domain_count] says this machine can usefully
    run; the CLI maps [-j 0] to this. *)
let default_jobs () = Domain.recommended_domain_count ()

(** [run ~j tasks] evaluates every task and returns their results in task
    order. [j <= 1] (or a single task) runs inline with zero overhead —
    the serial path is the parallel path with the work queue degenerated,
    not a separate code path that could drift. If any task raised, the
    exception of the lowest-indexed failed task is re-raised after the
    whole queue has drained (every other task still runs: a campaign's
    remaining results must not depend on where an unrelated task failed).
*)
let run ?(j = 1) (tasks : (unit -> 'r) array) : 'r array =
  let n = Array.length tasks in
  if j <= 1 || n <= 1 then Array.map (fun task -> task ()) tasks
  else begin
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             (match tasks.(i) () with
              | v -> Done v
              | exception e -> Failed e));
          loop ()
        end
      in
      loop ()
    in
    let helpers =
      Array.init (min j n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join helpers;
    Array.map
      (function
        | Done v -> v
        | Failed e -> raise e
        | Pending -> assert false)
      results
  end

(** [map ~j f items]: [run] over [f item] tasks, in item order. *)
let map ?j f items = run ?j (Array.map (fun x () -> f x) items)
