(** One runner per table/figure of the paper's evaluation (§6).

    Each figure function sweeps the same parameter grid as the paper
    (thread counts, read/update mixes, ε values, structure sizes) at a
    container-friendly scale and prints throughput rows. Setting FULL=1 in
    the environment switches to paper-scale parameters (2×48 hardware
    threads, 1M-key structures, 1M-entry log) — the shapes are the same,
    the runs just take much longer.

    Throughput is *simulated* ops/sec: absolute values are products of the
    cost model (lib/sim/costs.ml), only relative comparisons are
    meaningful. *)

type scale = {
  label : string;
  topology : Sim.Topology.t;
  threads : int list;
  key_range : int;
  log_size : int;
  eps_small : int;
  eps_large : int;
  eps_sweep : int list;
  pq_small : int;
  pq_large : int;
  stack_small : int;
  stack_large : int;
  duration_ns : int;
  warmup_ns : int;
}

let quick =
  {
    label = "quick (set FULL=1 for paper scale)";
    topology = { Sim.Topology.sockets = 2; cores_per_socket = 12 };
    threads = [ 1; 2; 4; 8; 12; 16; 20; 23 ];
    key_range = 4096;
    log_size = 16384;
    eps_small = 100;
    eps_large = 4096;
    eps_sweep = [ 50; 100; 400; 1600; 6400; 12000 ];
    pq_small = 2500;
    pq_large = 25000;
    stack_small = 500;
    stack_large = 5000;
    duration_ns = 2_000_000;
    warmup_ns = 400_000;
  }

let full =
  {
    label = "full (paper scale)";
    topology = { Sim.Topology.sockets = 2; cores_per_socket = 48 };
    threads = [ 1; 2; 4; 8; 16; 24; 32; 48; 64; 80; 95 ];
    key_range = 1_000_000;
    log_size = 1_000_000;
    eps_small = 100;
    eps_large = 10_000;
    eps_sweep = [ 100; 1000; 10_000; 100_000 ];
    pq_small = 50_000;
    pq_large = 500_000;
    stack_small = 500;
    stack_large = 50_000;
    duration_ns = 10_000_000;
    warmup_ns = 2_000_000;
  }

let scale_of_env () =
  if Sys.getenv_opt "FULL" = Some "1" then full else quick

(* ---- output ---- *)

let heading title =
  Printf.printf "\n===== %s =====\n%!" title

let subheading s = Printf.printf "\n--- %s ---\n%!" s

(* Pure renderers, separated from the experiment loops so the table shapes
   can be golden-tested from canned results (test/test_figures.ml) without
   running a single experiment. The sweep functions still print row by row
   (a figure takes minutes at full scale; partial output matters). *)

let render_header systems =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "%8s" "threads");
  List.iter (fun s -> Buffer.add_string b (Printf.sprintf "  %16s" s)) systems;
  Buffer.add_char b '\n';
  Buffer.contents b

let render_row threads cells =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "%8d" threads);
  List.iter
    (function
      | Some tput -> Buffer.add_string b (Printf.sprintf "  %16.0f" tput)
      | None -> Buffer.add_string b (Printf.sprintf "  %16s" "-"))
    cells;
  Buffer.add_char b '\n';
  Buffer.contents b

(** A whole sweep table from canned [rows : (threads * cells) list]. *)
let render_sweep ~systems rows =
  String.concat ""
    (render_header systems
     :: List.map (fun (threads, cells) -> render_row threads cells) rows)

let render_table1 () =
  String.concat ""
    (List.map
       (fun (i, s, m) -> Printf.sprintf "%-15s %-12s %s\n" i s m)
       [
         ("Index", "Scope", "Meaning");
         ("localTail", "Per Replica", "Last update applied to the local replica");
         ("completedTail", "Global", "Last update applied to any replica");
         ("logTail", "Global", "Last log entry");
       ])

let render_eps_header () =
  Printf.sprintf "%8s  %16s  %16s\n" "epsilon" "PREP-Buffered" "PREP-Durable"

let render_eps_row eps b d =
  let cell = function Some v -> Printf.sprintf "%.0f" v | None -> "-" in
  Printf.sprintf "%8d  %16s  %16s\n" eps (cell b) (cell d)

(** The Figure-3 table from canned [rows : (eps * buffered * durable) list]. *)
let render_eps_table rows =
  String.concat ""
    (render_eps_header ()
     :: List.map (fun (eps, b, d) -> render_eps_row eps b d) rows)

let print_header systems = print_string (render_header systems)

let print_row threads cells =
  print_string (render_row threads cells);
  flush stdout

(* Run one (system, workload, threads) point, tolerating failures. *)
let point ?seed scale ~system ~workload ~threads =
  try
    let r =
      Experiment.run ?seed ~topology:scale.topology
        ~duration_ns:scale.duration_ns ~warmup_ns:scale.warmup_ns ~system
        ~workload ~workers:threads ()
    in
    Some r.Experiment.throughput
  with Failure msg ->
    Printf.eprintf "[point failed: %s]\n%!" msg;
    None

let sweep_threads scale ~systems ~workload =
  print_header (List.map (fun (s : Experiment.system) -> s.Experiment.sys_name) systems);
  List.iter
    (fun threads ->
      let cells =
        List.map (fun system -> point scale ~system ~workload ~threads) systems
      in
      print_row threads cells)
    scale.threads

(* ---- system sets ---- *)

module Hm = Experiment.Systems (Seqds.Hashmap)
module Rb = Experiment.Systems (Seqds.Rbtree)
module Qu = Experiment.Systems (Seqds.Queue_ds)
module Pq = Experiment.Systems (Seqds.Pqueue)
module St = Experiment.Systems (Seqds.Stack_ds)

let prep_v prep ~log_size =
  prep ?log_size:(Some log_size) ?flush:None ?flit:None ?dist_rw:None
    ?log_mirror:None ?slot_bitmap:None ?detect:None ?lsm_ckpt:None
    ?lsm_fanout:None ?lsm_compact:None ?persist_policy:None ?name:None
    ~mode:Prep.Config.Volatile ~epsilon:1 ()

(* ---- Table 1 ---- *)

let table1 () =
  heading "Table 1: indexes used in NR-UC / PREP-UC";
  print_string (render_table1 ());
  flush stdout

(* ---- Figure 1: volatile UCs (PREP-V vs GL) ---- *)

let fig1 scale =
  heading "Figure 1: volatile UCs (ops/sec vs threads)";
  let ls = scale.log_size in
  let prefill_n = scale.key_range / 2 in
  subheading "(a) hashmap, 90% read-only, uniform keys";
  sweep_threads scale
    ~systems:[ prep_v Hm.prep ~log_size:ls; Hm.global_lock ]
    ~workload:(Workload.map_workload ~read_pct:90 ~key_range:scale.key_range ~prefill_n);
  subheading "(b) red-black tree, 90% read-only, uniform keys";
  sweep_threads scale
    ~systems:[ prep_v Rb.prep ~log_size:ls; Rb.global_lock ]
    ~workload:(Workload.map_workload ~read_pct:90 ~key_range:scale.key_range ~prefill_n);
  subheading "(c) queue, 100% update, enqueue/dequeue pairs";
  sweep_threads scale
    ~systems:[ prep_v Qu.prep ~log_size:ls; Qu.global_lock ]
    ~workload:(Workload.queue_pairs ~prefill_n:(scale.key_range / 8))

(* ---- Figure 2: PUCs on hashmap and red-black tree ---- *)

let fig2_panel scale ~title ~systems ~read_pct =
  subheading title;
  sweep_threads scale ~systems
    ~workload:
      (Workload.map_workload ~read_pct ~key_range:scale.key_range
         ~prefill_n:(scale.key_range / 2))

let fig2 scale =
  heading "Figure 2: PUC throughput, hashmap and red-black tree";
  let ls = scale.log_size in
  let panels sys_of =
    List.iter
      (fun (read_pct, eps) ->
        fig2_panel scale
          ~title:(Printf.sprintf "%d%% read-only, epsilon = %d" read_pct eps)
          ~systems:(sys_of eps) ~read_pct)
      [
        (90, scale.eps_small);
        (90, scale.eps_large);
        (50, scale.eps_small);
        (50, scale.eps_large);
      ]
  in
  subheading "(a) resizable hashmap";
  panels (fun eps ->
      [
        Hm.prep ~log_size:ls ~mode:Prep.Config.Buffered ~epsilon:eps ();
        Hm.prep ~log_size:ls ~mode:Prep.Config.Durable ~epsilon:eps ();
        Hm.cx ();
      ]);
  subheading "(b) red-black tree";
  panels (fun eps ->
      [
        Rb.prep ~log_size:ls ~mode:Prep.Config.Buffered ~epsilon:eps ();
        Rb.prep ~log_size:ls ~mode:Prep.Config.Durable ~epsilon:eps ();
        Rb.cx ();
      ])

(* ---- Figure 3: effect of epsilon ---- *)

let fig3 scale =
  heading "Figure 3: PREP-UC hashmap throughput vs epsilon (90% read)";
  let threads = List.fold_left max 1 scale.threads in
  let workload =
    Workload.map_workload ~read_pct:90 ~key_range:scale.key_range
      ~prefill_n:(scale.key_range / 2)
  in
  print_string (render_eps_header ());
  List.iter
    (fun eps ->
      let b =
        point scale
          ~system:(Hm.prep ~log_size:scale.log_size ~mode:Prep.Config.Buffered ~epsilon:eps ())
          ~workload ~threads
      in
      let d =
        point scale
          ~system:(Hm.prep ~log_size:scale.log_size ~mode:Prep.Config.Durable ~epsilon:eps ())
          ~workload ~threads
      in
      print_string (render_eps_row eps b d);
      flush stdout)
    scale.eps_sweep

(* ---- Figure 4: priority queue ---- *)

let fig4 scale =
  heading "Figure 4: priority queue, 100% update (enqueue/dequeue pairs)";
  let run ~title ~prefill_n ~eps =
    subheading title;
    sweep_threads scale
      ~systems:
        [
          Pq.prep ~log_size:scale.log_size ~mode:Prep.Config.Buffered ~epsilon:eps ();
          Pq.prep ~log_size:scale.log_size ~mode:Prep.Config.Durable ~epsilon:eps ();
          Pq.cx ();
        ]
      ~workload:(Workload.pqueue_pairs ~prefill_n)
  in
  run
    ~title:(Printf.sprintf "(a) ~%d items, epsilon = %d" scale.pq_small (scale.eps_large / 10))
    ~prefill_n:scale.pq_small ~eps:(max 1 (scale.eps_large / 10));
  run
    ~title:(Printf.sprintf "(b) ~%d items, epsilon = %d" scale.pq_large scale.eps_large)
    ~prefill_n:scale.pq_large ~eps:scale.eps_large

(* ---- Figure 5: stack ---- *)

let fig5 scale =
  heading "Figure 5: stack, 100% update (push/pop pairs)";
  let run ~title ~prefill_n ~eps =
    subheading title;
    sweep_threads scale
      ~systems:
        [
          St.prep ~log_size:scale.log_size ~mode:Prep.Config.Buffered ~epsilon:eps ();
          St.prep ~log_size:scale.log_size ~mode:Prep.Config.Durable ~epsilon:eps ();
          St.cx ();
        ]
      ~workload:(Workload.stack_pairs ~prefill_n)
  in
  run
    ~title:(Printf.sprintf "(a) ~%d items, epsilon = %d" scale.stack_small scale.eps_large)
    ~prefill_n:scale.stack_small ~eps:scale.eps_large;
  run
    ~title:(Printf.sprintf "(b) ~%d items, epsilon = %d" scale.stack_large scale.eps_large)
    ~prefill_n:scale.stack_large ~eps:scale.eps_large

(* ---- Figure 6: PREP-UC vs the hand-crafted SOFT hashtable ---- *)

let fig6 scale =
  heading "Figure 6: PREP-UC hashmap vs SOFT hashtable";
  let run ~read_pct =
    subheading (Printf.sprintf "%d%% read-only" read_pct);
    sweep_threads scale
      ~systems:
        [
          Hm.prep ~log_size:scale.log_size ~mode:Prep.Config.Buffered
            ~epsilon:scale.eps_large ();
          Hm.prep ~log_size:scale.log_size ~mode:Prep.Config.Durable
            ~epsilon:scale.eps_large ();
          Experiment.soft ~nbuckets:1000;
          Experiment.soft ~nbuckets:10_000;
        ]
      ~workload:
        (Workload.map_workload ~read_pct ~key_range:scale.key_range
           ~prefill_n:(scale.key_range / 2))
  in
  run ~read_pct:90;
  run ~read_pct:50

(* ---- Ablation: WBINVD vs heap-walk flush of the persistent replica ---- *)

let ablation scale =
  heading
    "Ablation: checkpoint strategy (WBINVD vs per-line heap flush), \
     PREP-Buffered";
  let run ~title ~systems ~workload =
    subheading title;
    sweep_threads scale ~systems ~workload
  in
  (* a small epsilon so checkpoints fire many times inside the window and
     the flush strategy dominates *)
  let eps = 256 in
  let stack_sys flush name =
    St.prep ~log_size:scale.log_size ~flush ~name ~mode:Prep.Config.Buffered
      ~epsilon:eps ()
  in
  let hm_sys flush name =
    Hm.prep ~log_size:scale.log_size ~flush ~name ~mode:Prep.Config.Buffered
      ~epsilon:eps ()
  in
  run
    ~title:
      (Printf.sprintf "tiny stack (~%d items): heap flush should win"
         scale.stack_small)
    ~systems:
      [
        stack_sys Prep.Config.Wbinvd "PREP-B/wbinvd";
        stack_sys Prep.Config.Flush_heap "PREP-B/heapflush";
      ]
    ~workload:(Workload.stack_pairs ~prefill_n:scale.stack_small);
  run
    ~title:
      (Printf.sprintf "large hashmap (%d keys): WBINVD should win"
         scale.key_range)
    ~systems:
      [
        hm_sys Prep.Config.Wbinvd "PREP-B/wbinvd";
        hm_sys Prep.Config.Flush_heap "PREP-B/heapflush";
      ]
    ~workload:
      (Workload.map_workload ~read_pct:50 ~key_range:scale.key_range
         ~prefill_n:(scale.key_range / 2))

(* ---- Flush traffic: PREP-Durable baseline vs FliT elimination ---- *)

(* Like [point] but keeping the whole result, for the counter columns. *)
let point_result ?seed scale ~system ~workload ~threads =
  try
    Some
      (Experiment.run ?seed ~topology:scale.topology
         ~duration_ns:scale.duration_ns ~warmup_ns:scale.warmup_ns ~system
         ~workload ~workers:threads ())
  with Failure msg ->
    Printf.eprintf "[point failed: %s]\n%!" msg;
    None

let flushstats scale =
  heading
    "Flush traffic: PREP-Durable, baseline vs FliT flush elimination \
     (50% read hashmap)";
  let workload =
    Workload.map_workload ~read_pct:50 ~key_range:scale.key_range
      ~prefill_n:(scale.key_range / 2)
  in
  let tmax = List.fold_left max 1 scale.threads in
  let threads_list = List.sort_uniq compare [ 1; tmax / 2; tmax ] in
  Printf.printf "%-18s %7s %12s %9s %9s %9s %9s %9s %8s %8s\n%!" "system"
    "threads" "ops/sec" "clwb" "coalesce" "wb-elide" "clflush" "cf-elide"
    "sfence" "sf-elide";
  List.iter
    (fun threads ->
      List.iter
        (fun flit ->
          let system =
            Hm.prep ~log_size:scale.log_size ~flit ~mode:Prep.Config.Durable
              ~epsilon:scale.eps_large ()
          in
          match point_result scale ~system ~workload ~threads with
          | Some r ->
            Printf.printf "%-18s %7d %12.0f %9d %9d %9d %9d %9d %8d %8d\n%!"
              r.Experiment.system threads r.Experiment.throughput
              r.Experiment.clwb r.Experiment.clwb_coalesced
              r.Experiment.clwb_elided r.Experiment.clflush
              r.Experiment.clflush_elided r.Experiment.sfence
              r.Experiment.sfence_elided
          | None ->
            Printf.printf "%-18s %7d %12s\n%!"
              (if flit then "PREP-Durable/flit" else "PREP-Durable")
              threads "-")
        [ false; true ])
    threads_list

let all scale =
  Printf.printf "PREP-UC reproduction benchmarks — scale: %s\n" scale.label;
  Printf.printf "topology: %s; key range %d; log %d entries\n%!"
    (Format.asprintf "%a" Sim.Topology.pp scale.topology)
    scale.key_range scale.log_size;
  table1 ();
  fig1 scale;
  fig2 scale;
  fig3 scale;
  fig4 scale;
  fig5 scale;
  fig6 scale;
  ablation scale;
  flushstats scale
