(** Workload generators matching the paper's evaluation (§6).

    Map workloads draw keys uniformly from a key range and split the
    operation mix between reads (get) and updates (half insert, half
    remove), e.g. "90% read-only". Queue/stack/priority-queue workloads are
    100% update, with each worker executing operation *pairs*
    (enqueue+dequeue / push+pop) so the structure's size stays stable. *)

type op = int * int array

(** A workload is (prefill ops, per-worker op generator). The generator
    returns the next operation for a worker given its RNG; pair workloads
    alternate internally. *)
type t = {
  name : string;
  prefill : op list;
  next : Sim.Rng.t -> phase:int -> op;
      (** [phase] is a per-worker op counter, used to alternate pairs *)
}

(* ---- key popularity ---- *)

(** Zipfian key popularity (YCSB's closed-form generator, after Gray et
    al.): rank [i] is drawn with probability proportional to
    [1 / (i+1)^theta], rank 0 being the most popular key. The harmonic
    normaliser [zetan] is computed once at construction (O(n)); every draw
    after that is O(1). Keys are emitted in rank order (no scrambling):
    the structures under test hash keys anyway, and the statistical tests
    want the rank<->key identity. *)
module Zipf = struct
  type t = {
    n : int;
    theta : float;
    alpha : float;
    zetan : float;
    eta : float;
  }

  let zeta n theta =
    let s = ref 0.0 in
    for i = 1 to n do
      s := !s +. (1.0 /. Float.pow (float_of_int i) theta)
    done;
    !s

  let make ~n ~theta =
    if n < 1 then invalid_arg "Zipf.make: n < 1";
    if theta <= 0.0 || theta >= 1.0 then
      invalid_arg "Zipf.make: theta must be in (0,1)";
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    let eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan))
    in
    { n; theta; alpha = 1.0 /. (1.0 -. theta); zetan; eta }

  let next t rng =
    let u = Sim.Rng.float rng in
    let uz = u *. t.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. Float.pow 0.5 t.theta then 1
    else
      let r =
        float_of_int t.n
        *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
      in
      min (t.n - 1) (int_of_float r)
end

(* ---- map workloads (hashmap / rbtree share op codes) ---- *)

(** Pure classifier for the map operation mix, driven by a 200-sided die
    (exactness: the non-read share [100 - read_pct] splits into
    [100 - read_pct] insert faces and [100 - read_pct] remove faces out of
    200, so insert and remove each get exactly half the update probability
    for *every* [read_pct], odd or even — the old 100-sided die gave the
    odd leftover point to remove). *)
type op_class = Read | Insert | Remove

let map_op_class ~read_pct ~die =
  if die < 2 * read_pct then Read
  else if die < read_pct + 100 then Insert
  else Remove

let map_workload_keyed ~theta ~read_pct ~key_range ~prefill_n =
  let module H = Seqds.Hashmap in
  if read_pct < 0 || read_pct > 100 then
    invalid_arg "map_workload: read_pct out of range";
  let prefill =
    (* 50% capacity as in the paper: prefill_n distinct keys *)
    List.init prefill_n (fun i ->
        let k = i * (key_range / max 1 prefill_n) in
        (H.op_insert, [| k; k |]))
  in
  let draw_key =
    match theta with
    | None -> fun rng -> Sim.Rng.int rng key_range
    | Some theta ->
      let z = Zipf.make ~n:key_range ~theta in
      fun rng -> Zipf.next z rng
  in
  let next rng ~phase =
    ignore phase;
    let k = draw_key rng in
    match map_op_class ~read_pct ~die:(Sim.Rng.int rng 200) with
    | Read -> (H.op_get, [| k |])
    | Insert -> (H.op_insert, [| k; Sim.Rng.int rng 1_000_000 |])
    | Remove -> (H.op_remove, [| k |])
  in
  let pop =
    match theta with
    | None -> "uniform"
    | Some t -> Printf.sprintf "zipf(%.2f)" t
  in
  {
    name =
      Printf.sprintf "map %d%% read, %d keys, %s" read_pct key_range pop;
    prefill;
    next;
  }

(** Uniform key popularity — the paper's §6 setup. *)
let map_workload ~read_pct ~key_range ~prefill_n =
  map_workload_keyed ~theta:None ~read_pct ~key_range ~prefill_n

(** Zipfian key popularity with exponent [theta] (YCSB default 0.99). *)
let map_workload_zipf ~theta ~read_pct ~key_range ~prefill_n =
  map_workload_keyed ~theta:(Some theta) ~read_pct ~key_range ~prefill_n

(** Map workload for the sharded construction ([Prep.Sharded_uc]):
    [multi_pct]% of operations are multi-key transactions (half
    [op_multi_put], half [op_transfer]), of which [cross_pct]% pick their
    second key from a *different* shard than the first (the rest stay
    same-shard — still transactional, but no cross-shard commit). The
    remaining [100 - multi_pct]% are the usual single-key read/insert/
    remove mix. Key pairs are steered by rejection against the router's
    own hash, so the cross-shard fraction holds for any shard count. *)
let map_workload_sharded ~read_pct ~multi_pct ~cross_pct ~nshards ~key_range
    ~prefill_n =
  let module H = Seqds.Hashmap in
  if multi_pct < 0 || multi_pct > 100 then
    invalid_arg "map_workload_sharded: multi_pct out of range";
  if cross_pct < 0 || cross_pct > 100 then
    invalid_arg "map_workload_sharded: cross_pct out of range";
  let base = map_workload_keyed ~theta:None ~read_pct ~key_range ~prefill_n in
  let route k = Prep.Sharded_uc.route_key ~nshards k in
  let next rng ~phase =
    if Sim.Rng.int rng 100 < multi_pct then begin
      let k1 = Sim.Rng.int rng key_range in
      let want_cross = nshards > 1 && Sim.Rng.int rng 100 < cross_pct in
      let s1 = route k1 in
      let rec draw tries =
        let k2 = Sim.Rng.int rng key_range in
        if tries = 0 || (route k2 <> s1) = want_cross then k2
        else draw (tries - 1)
      in
      let k2 = draw 64 in
      if Sim.Rng.bool rng then
        (Prep.Sharded_uc.op_multi_put, [| k1; k2; Sim.Rng.int rng 1_000_000 |])
      else (Prep.Sharded_uc.op_transfer, [| k1; k2; 1 + Sim.Rng.int rng 100 |])
    end
    else base.next rng ~phase
  in
  {
    name =
      Printf.sprintf "sharded map %d%% read, %d%% multi (%d%% cross), %d keys"
        read_pct multi_pct cross_pct key_range;
    prefill = base.prefill;
    next;
  }

(* ---- pair workloads ---- *)

let queue_pairs ~prefill_n =
  let module Q = Seqds.Queue_ds in
  {
    name = Printf.sprintf "queue enq/deq pairs, %d items" prefill_n;
    prefill = List.init prefill_n (fun i -> (Q.op_enqueue, [| i |]));
    next =
      (fun rng ~phase ->
        if phase land 1 = 0 then (Q.op_enqueue, [| Sim.Rng.int rng 1_000_000 |])
        else (Q.op_dequeue, [||]));
  }

let pqueue_pairs ~prefill_n =
  let module P = Seqds.Pqueue in
  {
    name = Printf.sprintf "pqueue enq/deq pairs, %d items" prefill_n;
    prefill = List.init prefill_n (fun i -> (P.op_enqueue, [| (i * 7919) mod 1_000_003 |]));
    next =
      (fun rng ~phase ->
        if phase land 1 = 0 then (P.op_enqueue, [| Sim.Rng.int rng 1_000_000 |])
        else (P.op_dequeue, [||]));
  }

let stack_pairs ~prefill_n =
  let module S = Seqds.Stack_ds in
  {
    name = Printf.sprintf "stack push/pop pairs, %d items" prefill_n;
    prefill = List.init prefill_n (fun i -> (S.op_push, [| i |]));
    next =
      (fun rng ~phase ->
        if phase land 1 = 0 then (S.op_push, [| Sim.Rng.int rng 1_000_000 |])
        else (S.op_pop, [||]));
  }

(* ---- arrival processes (open-loop generators) ---- *)

(** Arrival processes for open-loop load generation (Harness.Openloop).
    Rates are offered load in operations per *simulated* second; gaps are
    returned in simulated nanoseconds. All randomness comes from the
    caller's RNG, so an arrival stream is a deterministic function of its
    seed. *)
module Arrival = struct
  type proc =
    | Poisson of { rate : float }
        (** homogeneous Poisson: i.i.d. exponential inter-arrivals *)
    | Bursty of { rate_low : float; rate_high : float; dwell_ns : float }
        (** 2-phase Markov-modulated Poisson process: the rate alternates
            between [rate_low] and [rate_high], staying in each phase for
            an exponential dwell with mean [dwell_ns]. Long-run mean rate
            is the plain average of the two (equal mean dwells). *)
    | Diurnal of { rate_peak : float; period_ns : float }
        (** nonhomogeneous Poisson whose rate ramps sinusoidally between
            10% and 100% of [rate_peak] over one period (a day compressed
            onto the sim clock), sampled by Lewis-Shedler thinning *)

  type t = {
    proc : proc;
    mutable phase_high : bool; (* Bursty only *)
    mutable phase_until : int; (* Bursty only; -1 = not yet entered *)
  }

  let make proc = { proc; phase_high = false; phase_until = -1 }

  let mean_rate t =
    match t.proc with
    | Poisson { rate } -> rate
    | Bursty { rate_low; rate_high; _ } -> 0.5 *. (rate_low +. rate_high)
    | Diurnal { rate_peak; _ } -> 0.55 *. rate_peak

  (* exponential gap in ns at [rate] ops/s; 1-u keeps log's argument in
     (0,1] (Rng.float is [0,1)) *)
  let exp_gap rng ~rate =
    let u = Sim.Rng.float rng in
    int_of_float (-.Float.log (1.0 -. u) /. rate *. 1e9)

  let exp_dwell rng ~mean =
    let u = Sim.Rng.float rng in
    int_of_float (-.Float.log (1.0 -. u) *. mean)

  (* 0.1..1.0 of peak, sinusoidal over one period *)
  let diurnal_rate ~rate_peak ~period_ns t =
    let x = 2.0 *. Float.pi *. (float_of_int t /. period_ns) in
    rate_peak *. (0.55 -. (0.45 *. Float.cos x))

  (** Draw the gap from simulated time [now] to the next arrival. *)
  let next_gap t rng ~now =
    match t.proc with
    | Poisson { rate } -> exp_gap rng ~rate
    | Bursty { rate_low; rate_high; dwell_ns } ->
      if t.phase_until < 0 then
        t.phase_until <- now + exp_dwell rng ~mean:dwell_ns;
      (* walk phase boundaries; within a phase arrivals are Poisson, and
         memorylessness lets us resample from each boundary we cross *)
      let rec go from =
        let rate = if t.phase_high then rate_high else rate_low in
        let g = exp_gap rng ~rate in
        if from + g <= t.phase_until then from + g - now
        else begin
          let b = t.phase_until in
          t.phase_high <- not t.phase_high;
          t.phase_until <- b + exp_dwell rng ~mean:dwell_ns;
          go b
        end
      in
      go now
    | Diurnal { rate_peak; period_ns } ->
      (* thinning: propose at the peak rate, accept with rate(t)/peak *)
      let rec thin at =
        let cand = at + exp_gap rng ~rate:rate_peak in
        let accept =
          diurnal_rate ~rate_peak ~period_ns cand /. rate_peak
        in
        if Sim.Rng.float rng < accept then cand - now else thin cand
      in
      thin now
end
