(** Throughput experiment runner.

    Reproduces the paper's measurement methodology (§6): prefill the
    structure, spawn worker fibers pinned to cores (socket 0 first), run
    the workload for a fixed *simulated* duration after a warmup, and
    report throughput in simulated operations per second. The persistence
    thread (when the system has one) runs on the last core, which is never
    given to a worker. *)

open Nvm

(** A live universal-construction instance, as seen by workers. *)
type instance = {
  register : unit -> unit; (* bind the calling worker fiber *)
  exec : op:int -> args:int array -> int;
  exec_batch : ((int * int array) array -> int array) option;
      (* pipelined batch execution, for systems that can overlap several
         of one worker's ops (the sharded router keeps one update in
         flight per shard); [None] means ops only run one at a time *)
  teardown : unit -> unit; (* stop helper threads so the run can drain *)
  sample : Telemetry.Registry.t -> unit;
      (* port the instance's counters onto a registry, *adding* to values
         already there — sampling several instances into one registry sums
         across instances instead of last-writer-wins *)
}

(** A system under test: builds an instance inside the setup fiber.
    [duration_factor] stretches the measurement window for systems whose
    steady state takes longer to reach (CX-PUC's per-update whole-replica
    flushes would otherwise complete no operation in a short window). *)
type system = {
  sys_name : string;
  duration_factor : int;
  make :
    Memory.t -> Roots.t -> workers:int -> prefill:Workload.op list -> instance;
}

type result = {
  system : string;
  workload : string;
  workers : int;
  ops : int;
  duration_ns : int;
  throughput : float; (* simulated ops/sec *)
  wbinvd : int;
  clwb : int;
  clflush : int;
  sfence : int;
  bg_flushes : int;
  (* flush-elimination accounting (nonzero only for FliT-enabled systems) *)
  clwb_elided : int;
  clwb_coalesced : int;
  clflush_elided : int;
  sfence_elided : int;
  telemetry : Telemetry.Registry.snapshot;
      (** typed snapshot of the run's registry: system-specific counters
          (distributed-lock acquisitions, log mirror reads/stores,
          slot-bitmap scans, ...) summed across instances, plus — when the
          run was given a live registry — phase spans, histograms and
          per-primitive NVM accounting *)
}

(* The system-specific counter keys that predate the telemetry layer, in
   their original bench-JSON order. [counters] keeps the old
   [result.extra] contract: exactly these keys, with identical values for
   a fixed seed — consumers (CLI, bench JSON) must not notice the
   refactor. *)
let legacy_counter_keys =
  [ "rw_read_acquires"; "rw_writer_sweeps"; "log_primary_reads";
    "log_mirror_reads"; "log_mirror_stores"; "bitmap_empty_exits";
    "bitmap_slots_skipped"; "detect_announces"; "detect_responses";
    "detect_reconciled"; "ckpt_count"; "ckpt_cost_total"; "ckpt_cost_last";
    "lsm_seals"; "lsm_segments_built"; "lsm_keys_sealed"; "lsm_compactions";
    "lsm_segments_live"; "lsm_bloom_skips"; "lsm_range_skips";
    "lsm_seg_finds"; "lsm_materialized" ]

(** The system-specific counters of [r], in the pre-telemetry key order.
    Keys a system never sampled (GL, CX, SOFT) are absent, exactly as
    they were absent from the old stringly [extra] list. *)
let counters r =
  List.filter_map
    (fun k ->
      match List.assoc_opt k r.telemetry.Telemetry.Registry.sn_counters with
      | Some v -> Some (k, v)
      | None -> None)
    legacy_counter_keys

(** Run one throughput experiment.

    [instances] (default 1) builds that many independent instances of the
    system and assigns worker [w] to instance [w mod instances]; all
    instances' counters are summed into the result's registry snapshot.

    [op_batch] (default 1) makes each worker draw that many operations
    from the workload at once and submit them through the instance's
    [exec_batch] (when it has one — systems without it run the batch
    sequentially, so the workload stream and count accounting stay
    comparable). Closed-loop runs of the sharded construction need this
    to express any parallelism beyond the per-shard combiner batch.

    [telemetry] installs a live registry as the run's ambient registry:
    the memory model, simulator and constructions record per-primitive
    costs, scheduler events and phase spans into it, each worker's
    operations are wrapped in an ["op"] root span, and worker tracks get
    stable names for the trace export. Without it only the instances'
    counters are sampled (into a private registry), so the default path
    stays as cheap and exactly as deterministic as before. *)
let run ?(seed = 7L) ?(topology = Sim.Topology.default)
    ?(duration_ns = 4_000_000) ?(warmup_ns = 800_000) ?(bg_period = 50_000)
    ?(instances = 1) ?(op_batch = 1) ?telemetry ~system
    ~(workload : Workload.t) ~workers () =
  if workers >= Sim.Topology.total_cores topology then
    invalid_arg "Experiment.run: last core is reserved";
  if instances < 1 then invalid_arg "Experiment.run: instances < 1";
  if op_batch < 1 then invalid_arg "Experiment.run: op_batch < 1";
  let duration_ns = duration_ns * system.duration_factor in
  let warmup_ns = warmup_ns * system.duration_factor in
  (* the accumulator registry: the caller's live one, or a private
     harness-side one that only ever receives the counter samples *)
  let acc =
    match telemetry with
    | Some r -> r
    | None -> Telemetry.Registry.create ()
  in
  let saved_reg = Telemetry.Registry.current () in
  (match telemetry with
   | Some r -> Telemetry.Registry.set_current (Some r)
   | None -> ());
  Fun.protect ~finally:(fun () -> Telemetry.Registry.set_current saved_reg)
  @@ fun () ->
  let op_span =
    match telemetry with
    | Some reg -> Some (reg, Telemetry.Registry.span reg "op")
    | None -> None
  in
  let exec_in_op_span inst ~op ~args =
    match op_span with
    | Some (reg, sp) ->
      Telemetry.Registry.with_span reg sp (fun () -> inst.exec ~op ~args)
    | None -> inst.exec ~op ~args
  in
  (* a pipelined batch is one "op" span: its wall time covers op_batch
     operations, which the trace reader must divide out *)
  let batch_in_op_span f ops =
    match op_span with
    | Some (reg, sp) -> Telemetry.Registry.with_span reg sp (fun () -> f ops)
    | None -> f ops
  in
  let sim = Sim.create ~seed topology in
  let mem = Memory.make ~bg_period ~sockets:topology.Sim.Topology.sockets () in
  let counts = Array.make workers 0 in
  let done_count = ref 0 in
  ignore
    (Sim.spawn sim ~socket:0 (fun () ->
         (* one root directory (it must be arena 0), shared by every
            instance; a throughput run never recovers, so instances
            overwriting each other's root slots is harmless *)
         let roots = Roots.make mem in
         let insts =
           Array.init instances (fun _ ->
               system.make mem roots ~workers
                 ~prefill:workload.Workload.prefill)
         in
         let t0 = Sim.now () in
         let measure_start = t0 + warmup_ns in
         let deadline = measure_start + duration_ns in
         for w = 0 to workers - 1 do
           let socket, core = Sim.Topology.place topology w in
           let inst = insts.(w mod instances) in
           ignore
             (Sim.spawn sim ~socket ~core (fun () ->
                  (match telemetry with
                   | Some reg ->
                     Telemetry.Registry.name_track reg (Sim.self ()).Sim.fid
                       (Printf.sprintf "worker-%d" w)
                   | None -> ());
                  inst.register ();
                  let rng = Sim.fiber_rng () in
                  let phase = ref 0 in
                  (if op_batch = 1 then
                     while Sim.now () < deadline do
                       let op, args =
                         workload.Workload.next rng ~phase:!phase
                       in
                       incr phase;
                       ignore (exec_in_op_span inst ~op ~args);
                       if Sim.now () > measure_start && Sim.now () <= deadline
                       then counts.(w) <- counts.(w) + 1
                     done
                   else
                     while Sim.now () < deadline do
                       let ops =
                         Array.init op_batch (fun _ ->
                             let o =
                               workload.Workload.next rng ~phase:!phase
                             in
                             incr phase;
                             o)
                       in
                       let started = Sim.now () in
                       (match inst.exec_batch with
                        | Some f -> ignore (batch_in_op_span f ops)
                        | None ->
                          Array.iter
                            (fun (op, args) ->
                              ignore (exec_in_op_span inst ~op ~args))
                            ops);
                       (* a batch only counts when it ran entirely inside
                          the window — undercounting the two edge batches
                          beats crediting up to op_batch warmup ops *)
                       if started > measure_start && Sim.now () <= deadline
                       then counts.(w) <- counts.(w) + op_batch
                     done);
                  incr done_count))
         done;
         (* supervisor: tear down once every worker has drained *)
         while !done_count < workers do
           Sim.tick 50_000
         done;
         Array.iter (fun inst -> inst.teardown ()) insts;
         (* sample at the same point the old code read its counters, so
            values stay bit-identical for a fixed seed; [sample] adds, so
            several instances sum instead of overwriting each other *)
         Array.iter (fun inst -> inst.sample acc) insts));
  (* The horizon is a safety net: a correct run always finishes by itself. *)
  (match Sim.run ~until:(1_000 * (duration_ns + warmup_ns)) sim () with
   | `Done -> ()
   | `Cut _ -> failwith ("Experiment.run: system wedged: " ^ system.sys_name));
  let ops = Array.fold_left ( + ) 0 counts in
  let stats = Memory.stats mem in
  {
    system = system.sys_name;
    workload = workload.Workload.name;
    workers;
    ops;
    duration_ns;
    throughput = float_of_int ops *. 1e9 /. float_of_int duration_ns;
    wbinvd = stats.Memory.wbinvd;
    clwb = stats.Memory.clwb;
    clflush = stats.Memory.clflush;
    sfence = stats.Memory.sfence;
    bg_flushes = stats.Memory.bg_flushes;
    clwb_elided = stats.Memory.clwb_elided;
    clwb_coalesced = stats.Memory.clwb_coalesced;
    clflush_elided = stats.Memory.clflush_elided;
    sfence_elided = stats.Memory.sfence_elided;
    telemetry = Telemetry.Registry.snapshot acc;
  }

(* ---- system constructors ---- *)

module Systems (Ds : Seqds.Ds_intf.S) = struct
  module P = Prep.Prep_uc.Make (Ds)
  module G = Prep.Gl_uc.Make (Ds)
  module C = Prep.Cx_puc.Make (Ds)
  module Sh = Prep.Sharded_uc.Make (Ds)

  let prep ?(log_size = 65536) ?(flush = Prep.Config.Wbinvd) ?(flit = false)
      ?(dist_rw = false) ?(log_mirror = false) ?(slot_bitmap = false)
      ?(detect = false) ?(lsm_ckpt = false) ?(lsm_fanout = 4)
      ?(lsm_compact = true) ?persist_policy ?name ~mode ~epsilon () =
    let name =
      match name with
      | Some n -> n
      | None ->
        let base =
          match mode with
          | Prep.Config.Volatile -> "PREP-V"
          | Prep.Config.Buffered -> "PREP-Buffered"
          | Prep.Config.Durable -> "PREP-Durable"
        in
        let tags =
          List.filter_map
            (fun (on, tag) -> if on then Some tag else None)
            [ (flit, "flit"); (dist_rw, "dist"); (log_mirror, "mir");
              (slot_bitmap, "bmp"); (detect, "det"); (lsm_ckpt, "lsm");
              (persist_policy <> None, "pol") ]
        in
        if tags = [] then base else base ^ "/" ^ String.concat "+" tags
    in
    {
      sys_name = name;
      duration_factor = 1;
      make =
        (fun mem roots ~workers ~prefill ->
          let cfg =
            Prep.Config.make ~mode ~log_size ~epsilon ~flush ~flit ~dist_rw
              ~log_mirror ~slot_bitmap ~detect ~lsm_ckpt ~lsm_fanout
              ~lsm_compact ?persist_policy ~workers ()
          in
          let uc = P.create ~prefill mem roots cfg in
          P.start_persistence uc;
          {
            register = (fun () -> P.register_worker uc);
            exec = (fun ~op ~args -> P.execute uc ~op ~args);
            exec_batch = None;
            teardown = (fun () -> P.stop uc);
            sample = (fun reg -> P.sample uc reg);
          });
    }

  (* Hash-routed shards, durable-only. [sample] adds per-shard
     [shard<i>/...] keys alongside the summed classic counters, so a
     telemetry registry shows both the total and the balance. *)
  let prep_sharded ?(log_size = 65536) ?(flush = Prep.Config.Wbinvd)
      ?(flit = false) ?(slot_bitmap = false) ?(lsm_ckpt = false)
      ?(lsm_fanout = 4) ?(lsm_compact = true) ?persist_policy ?name ~shards
      ~epsilon () =
    let name =
      match name with
      | Some n -> n
      | None ->
        Printf.sprintf "PREP-Durable/x%d%s" shards
          (if lsm_ckpt then "+lsm" else "")
    in
    {
      sys_name = name;
      duration_factor = 1;
      make =
        (fun mem roots ~workers ~prefill ->
          let cfg =
            Prep.Config.make ~mode:Prep.Config.Durable ~log_size ~epsilon
              ~flush ~flit ~slot_bitmap ~shards ~lsm_ckpt ~lsm_fanout
              ~lsm_compact ?persist_policy ~workers ()
          in
          let uc = Sh.create ~prefill mem roots cfg in
          Sh.start_persistence uc;
          {
            register = (fun () -> Sh.register_worker uc);
            exec = (fun ~op ~args -> Sh.execute uc ~op ~args);
            exec_batch = Some (fun ops -> Sh.execute_batch uc ops);
            teardown = (fun () -> Sh.stop uc);
            sample = (fun reg -> Sh.sample uc reg);
          });
    }

  let global_lock =
    {
      sys_name = "GL";
      duration_factor = 1;
      make =
        (fun mem _roots ~workers ~prefill ->
          ignore workers;
          let gl = G.create ~prefill mem in
          {
            register = (fun () -> G.register_worker gl);
            exec = (fun ~op ~args -> G.execute gl ~op ~args);
            exec_batch = None;
            teardown = ignore;
            sample = (fun _ -> ());
          });
    }

  let cx ?(queue_capacity = 1 lsl 18) () =
    {
      sys_name = "CX-PUC";
      duration_factor = 10;
      make =
        (fun mem roots ~workers ~prefill ->
          let cx = C.create ~prefill ~queue_capacity mem roots ~workers in
          {
            register = (fun () -> C.register_worker cx);
            exec = (fun ~op ~args -> C.execute cx ~op ~args);
            exec_batch = None;
            teardown = ignore;
            sample = (fun _ -> ());
          });
    }
end

(** SOFT hashtable as a system (hashmap op codes). *)
let soft ~nbuckets =
  {
    sys_name = Printf.sprintf "SOFT-%dB" nbuckets;
    duration_factor = 1;
    make =
      (fun mem _roots ~workers ~prefill ->
        ignore workers;
        let s = Prep.Soft_hash.create ~nbuckets mem in
        List.iter
          (fun (op, args) -> ignore (Prep.Soft_hash.execute s ~op ~args))
          prefill;
        {
          register = (fun () -> Prep.Soft_hash.register_worker s);
          exec = (fun ~op ~args -> Prep.Soft_hash.execute s ~op ~args);
            exec_batch = None;
          teardown = ignore;
          sample = (fun _ -> ());
        });
  }
