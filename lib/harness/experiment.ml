(** Throughput experiment runner.

    Reproduces the paper's measurement methodology (§6): prefill the
    structure, spawn worker fibers pinned to cores (socket 0 first), run
    the workload for a fixed *simulated* duration after a warmup, and
    report throughput in simulated operations per second. The persistence
    thread (when the system has one) runs on the last core, which is never
    given to a worker. *)

open Nvm

(** A live universal-construction instance, as seen by workers. *)
type instance = {
  register : unit -> unit; (* bind the calling worker fiber *)
  exec : op:int -> args:int array -> int;
  teardown : unit -> unit; (* stop helper threads so the run can drain *)
  counters : unit -> (string * int) list;
      (* system-specific optimisation counters, sampled after the run *)
}

(** A system under test: builds an instance inside the setup fiber.
    [duration_factor] stretches the measurement window for systems whose
    steady state takes longer to reach (CX-PUC's per-update whole-replica
    flushes would otherwise complete no operation in a short window). *)
type system = {
  sys_name : string;
  duration_factor : int;
  make :
    Memory.t -> Roots.t -> workers:int -> prefill:Workload.op list -> instance;
}

type result = {
  system : string;
  workload : string;
  workers : int;
  ops : int;
  duration_ns : int;
  throughput : float; (* simulated ops/sec *)
  wbinvd : int;
  clwb : int;
  clflush : int;
  sfence : int;
  bg_flushes : int;
  (* flush-elimination accounting (nonzero only for FliT-enabled systems) *)
  clwb_elided : int;
  clwb_coalesced : int;
  clflush_elided : int;
  sfence_elided : int;
  extra : (string * int) list;
      (** system-specific counters (distributed-lock acquisitions, log
          mirror reads/stores, slot-bitmap scans, ...) *)
}

let run ?(seed = 7L) ?(topology = Sim.Topology.default)
    ?(duration_ns = 4_000_000) ?(warmup_ns = 800_000) ?(bg_period = 50_000)
    ~system ~(workload : Workload.t) ~workers () =
  if workers >= Sim.Topology.total_cores topology then
    invalid_arg "Experiment.run: last core is reserved";
  let duration_ns = duration_ns * system.duration_factor in
  let warmup_ns = warmup_ns * system.duration_factor in
  let sim = Sim.create ~seed topology in
  let mem = Memory.make ~bg_period ~sockets:topology.Sim.Topology.sockets () in
  let counts = Array.make workers 0 in
  let done_count = ref 0 in
  let extra = ref [] in
  ignore
    (Sim.spawn sim ~socket:0 (fun () ->
         let roots = Roots.make mem in
         let inst =
           system.make mem roots ~workers ~prefill:workload.Workload.prefill
         in
         let t0 = Sim.now () in
         let measure_start = t0 + warmup_ns in
         let deadline = measure_start + duration_ns in
         for w = 0 to workers - 1 do
           let socket, core = Sim.Topology.place topology w in
           ignore
             (Sim.spawn sim ~socket ~core (fun () ->
                  inst.register ();
                  let rng = Sim.fiber_rng () in
                  let phase = ref 0 in
                  while Sim.now () < deadline do
                    let op, args = workload.Workload.next rng ~phase:!phase in
                    incr phase;
                    ignore (inst.exec ~op ~args);
                    if Sim.now () > measure_start && Sim.now () <= deadline
                    then counts.(w) <- counts.(w) + 1
                  done;
                  incr done_count))
         done;
         (* supervisor: tear down once every worker has drained *)
         while !done_count < workers do
           Sim.tick 50_000
         done;
         inst.teardown ();
         extra := inst.counters ()));
  (* The horizon is a safety net: a correct run always finishes by itself. *)
  (match Sim.run ~until:(1_000 * (duration_ns + warmup_ns)) sim () with
   | `Done -> ()
   | `Cut _ -> failwith ("Experiment.run: system wedged: " ^ system.sys_name));
  let ops = Array.fold_left ( + ) 0 counts in
  let stats = Memory.stats mem in
  {
    system = system.sys_name;
    workload = workload.Workload.name;
    workers;
    ops;
    duration_ns;
    throughput = float_of_int ops *. 1e9 /. float_of_int duration_ns;
    wbinvd = stats.Memory.wbinvd;
    clwb = stats.Memory.clwb;
    clflush = stats.Memory.clflush;
    sfence = stats.Memory.sfence;
    bg_flushes = stats.Memory.bg_flushes;
    clwb_elided = stats.Memory.clwb_elided;
    clwb_coalesced = stats.Memory.clwb_coalesced;
    clflush_elided = stats.Memory.clflush_elided;
    sfence_elided = stats.Memory.sfence_elided;
    extra = !extra;
  }

(* ---- system constructors ---- *)

module Systems (Ds : Seqds.Ds_intf.S) = struct
  module P = Prep.Prep_uc.Make (Ds)
  module G = Prep.Gl_uc.Make (Ds)
  module C = Prep.Cx_puc.Make (Ds)

  let prep ?(log_size = 65536) ?(flush = Prep.Config.Wbinvd) ?(flit = false)
      ?(dist_rw = false) ?(log_mirror = false) ?(slot_bitmap = false)
      ?name ~mode ~epsilon () =
    let name =
      match name with
      | Some n -> n
      | None ->
        let base =
          match mode with
          | Prep.Config.Volatile -> "PREP-V"
          | Prep.Config.Buffered -> "PREP-Buffered"
          | Prep.Config.Durable -> "PREP-Durable"
        in
        let tags =
          List.filter_map
            (fun (on, tag) -> if on then Some tag else None)
            [ (flit, "flit"); (dist_rw, "dist"); (log_mirror, "mir");
              (slot_bitmap, "bmp") ]
        in
        if tags = [] then base else base ^ "/" ^ String.concat "+" tags
    in
    {
      sys_name = name;
      duration_factor = 1;
      make =
        (fun mem roots ~workers ~prefill ->
          let cfg =
            Prep.Config.make ~mode ~log_size ~epsilon ~flush ~flit ~dist_rw
              ~log_mirror ~slot_bitmap ~workers ()
          in
          let uc = P.create ~prefill mem roots cfg in
          P.start_persistence uc;
          {
            register = (fun () -> P.register_worker uc);
            exec = (fun ~op ~args -> P.execute uc ~op ~args);
            teardown = (fun () -> P.stop uc);
            counters = (fun () -> P.counters uc);
          });
    }

  let global_lock =
    {
      sys_name = "GL";
      duration_factor = 1;
      make =
        (fun mem _roots ~workers ~prefill ->
          ignore workers;
          let gl = G.create ~prefill mem in
          {
            register = (fun () -> G.register_worker gl);
            exec = (fun ~op ~args -> G.execute gl ~op ~args);
            teardown = ignore;
            counters = (fun () -> []);
          });
    }

  let cx ?(queue_capacity = 1 lsl 18) () =
    {
      sys_name = "CX-PUC";
      duration_factor = 10;
      make =
        (fun mem roots ~workers ~prefill ->
          let cx = C.create ~prefill ~queue_capacity mem roots ~workers in
          {
            register = (fun () -> C.register_worker cx);
            exec = (fun ~op ~args -> C.execute cx ~op ~args);
            teardown = ignore;
            counters = (fun () -> []);
          });
    }
end

(** SOFT hashtable as a system (hashmap op codes). *)
let soft ~nbuckets =
  {
    sys_name = Printf.sprintf "SOFT-%dB" nbuckets;
    duration_factor = 1;
    make =
      (fun mem _roots ~workers ~prefill ->
        ignore workers;
        let s = Prep.Soft_hash.create ~nbuckets mem in
        List.iter
          (fun (op, args) -> ignore (Prep.Soft_hash.execute s ~op ~args))
          prefill;
        {
          register = (fun () -> Prep.Soft_hash.register_worker s);
          exec = (fun ~op ~args -> Prep.Soft_hash.execute s ~op ~args);
          teardown = ignore;
          counters = (fun () -> []);
        });
  }
