(** Discrete-event simulator with effects-based fibers.

    Simulated threads run in direct style. Every simulated memory access
    charges nanoseconds to the running fiber's clock ([tick]); fibers hand
    control back to the scheduler at synchronization points and whenever
    they exhaust their time quantum. The scheduler always resumes the fiber
    with the smallest clock, so simulated time is globally consistent and a
    run is a deterministic function of its seed.

    The simulator is single-OS-thread by construction: [current ()] style
    accessors are safe. *)

module Rng = Rng
module Topology = Topology
module Costs = Costs

type fiber = {
  fid : int;                  (** unique fiber id *)
  socket : int;               (** NUMA node this fiber is pinned to *)
  core : int;                 (** core within the socket *)
  frng : Rng.t;               (** fiber-private random stream *)
  mutable clock : int;        (** fiber-local simulated time, ns *)
  mutable slice : int;        (** time consumed since the last yield *)
  mutable palloc : bool;      (** allocator-swap flag (paper §5.1): when set,
                                  allocations go to the persistent allocator *)
}

type entry = { time : int; seq : int; resume : unit -> unit }

type t = {
  topology : Topology.t;
  costs : Costs.t;
  rng : Rng.t;                    (** scheduler stream (background flushes etc.) *)
  quantum : int;
  preempt_prob : float;           (** chance per [tick] of a forced, jittered
                                      preemption (schedule fuzzing) *)
  mutable heap : entry option array;
  mutable heap_len : int;
  mutable seq : int;
  mutable live : int;
  mutable next_fid : int;
  mutable running : bool;
  mutable chooser : (int array -> int) option;
      (** controlled-scheduler mode (model checking): when set, fibers are
          not dispatched by simulated time but by this callback, which is
          handed the sorted fids of every runnable fiber and returns the
          one to run next. Clocks still advance (costs stay meaningful)
          but impose no ordering: the explorer drives *every* interleaving
          through here, including ones timed dispatch would never emit. *)
  mutable spin_hook : (int -> unit) option;
      (** controlled mode only: called with the executing fid each time it
          enters a [spin] wait iteration, so a model checker can park the
          fiber until a write makes re-checking its condition worthwhile *)
  runnable : (int, unit -> unit) Hashtbl.t;
      (** controlled mode only: fid -> continuation of each runnable fiber *)
  fibers : (int, fiber) Hashtbl.t;
      (** registry of every spawned fiber, for harness inspection *)
}

type _ Effect.t += Yield : unit Effect.t

(* The ambient simulation state is domain-local, not global: a simulation
   is single-OS-thread by construction, but *independent* simulations may
   run concurrently on separate domains (Harness.Campaign). Each domain
   sees only its own "current sim / current fiber" slot, so the
   [current ()]-style accessors stay safe without any locking. *)
type ambient = { mutable amb_sim : t option; mutable amb_fiber : fiber option }

let ambient_key : ambient Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { amb_sim = None; amb_fiber = None })

let ambient () = Domain.DLS.get ambient_key

(* Teach the telemetry layer (which sits below us in the dependency order)
   how to read simulated time and identify the current track. Outside a
   fiber both report 0, matching Registry's defaults. Recording telemetry
   never ticks the clock or consumes simulated randomness, so an installed
   registry cannot perturb a run. *)
let () =
  Telemetry.Registry.set_clock (fun () ->
      match (ambient ()).amb_fiber with Some f -> f.clock | None -> 0);
  Telemetry.Registry.set_track (fun () ->
      match (ambient ()).amb_fiber with Some f -> f.fid | None -> 0)

let instance () =
  match (ambient ()).amb_sim with
  | Some s -> s
  | None -> failwith "Sim: no simulation running"

let self () =
  match (ambient ()).amb_fiber with
  | Some f -> f
  | None -> failwith "Sim: not inside a fiber"

(** [preempt_prob] randomizes preemption: on each [tick], with that
    probability, the fiber is charged up to one extra quantum of jitter and
    forced to yield. This perturbs which fiber is globally earliest at
    synchronization points, so different seeds explore different
    interleavings — deterministic schedule fuzzing for the crash harness.
    The default 0.0 keeps the exact seed behaviour. *)
let create ?(seed = 1L) ?(costs = Costs.default) ?(quantum = 150)
    ?(preempt_prob = 0.0) topology =
  {
    topology;
    costs;
    rng = Rng.create seed;
    quantum;
    preempt_prob;
    heap = Array.make 1024 None;
    heap_len = 0;
    seq = 0;
    live = 0;
    next_fid = 0;
    running = false;
    chooser = None;
    spin_hook = None;
    runnable = Hashtbl.create 64;
    fibers = Hashtbl.create 64;
  }

(** Switch the simulation into controlled-scheduler mode (see [t.chooser]).
    Must be called before [run]. *)
let set_chooser t f = t.chooser <- Some f

(** Install the controlled-mode spin notification (see [t.spin_hook]). *)
let set_spin_hook t h = t.spin_hook <- Some h

(** Whether the *current* simulation runs under a controlled scheduler.
    False when no simulation is running (e.g. a nested recovery sim created
    without a chooser), so instrumented code can consult it unconditionally. *)
let controlled () =
  match (ambient ()).amb_sim with Some s -> s.chooser <> None | None -> false

(** Look up a spawned fiber by fid (harness inspection). *)
let find_fiber t fid = Hashtbl.find_opt t.fibers fid

(* ---- binary min-heap ordered by (time, seq) ---- *)

let entry_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let heap_push t e =
  if t.heap_len = Array.length t.heap then begin
    let bigger = Array.make (2 * Array.length t.heap) None in
    Array.blit t.heap 0 bigger 0 t.heap_len;
    t.heap <- bigger
  end;
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      match t.heap.(parent) with
      | Some p when entry_lt e p ->
        t.heap.(i) <- t.heap.(parent);
        up parent
      | _ -> t.heap.(i) <- Some e
    end
    else t.heap.(i) <- Some e
  in
  t.heap.(t.heap_len) <- Some e;
  t.heap_len <- t.heap_len + 1;
  up (t.heap_len - 1)

let heap_pop t =
  match t.heap.(0) with
  | None -> None
  | Some top ->
    t.heap_len <- t.heap_len - 1;
    let last = t.heap.(t.heap_len) in
    t.heap.(t.heap_len) <- None;
    if t.heap_len > 0 then begin
      let last = Option.get last in
      let rec down i =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let smallest = ref i and cur = ref last in
        (match t.heap.(l) with
         | Some e when l < t.heap_len && entry_lt e !cur -> smallest := l; cur := e
         | _ -> ());
        (match t.heap.(r) with
         | Some e when r < t.heap_len && entry_lt e !cur -> smallest := r; cur := e
         | _ -> ());
        if !smallest <> i then begin
          t.heap.(i) <- t.heap.(!smallest);
          down !smallest
        end
        else t.heap.(i) <- Some last
      in
      down 0
    end;
    Some top

let heap_peek t = t.heap.(0)

let schedule t ~fid ~time resume =
  match t.chooser with
  | Some _ -> Hashtbl.replace t.runnable fid resume
  | None ->
    heap_push t { time; seq = t.seq; resume };
    t.seq <- t.seq + 1

(* ---- fiber lifecycle ---- *)

let run_under_handler t fiber f =
  let open Effect.Deep in
  match_with
    (fun () -> f ())
    ()
    {
      retc = (fun () -> t.live <- t.live - 1);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                schedule t ~fid:fiber.fid ~time:fiber.clock (fun () ->
                    (ambient ()).amb_fiber <- Some fiber;
                    continue k ()))
          | _ -> None);
    }

(** [spawn t ~socket ?core f] registers a fiber pinned to [socket]/[core].
    If called from inside a running fiber, the child starts at the parent's
    current clock; otherwise at time 0. *)
let spawn t ~socket ?(core = 0) ?(at = -1) f =
  if socket < 0 || socket >= t.topology.Topology.sockets then
    invalid_arg "Sim.spawn: bad socket";
  let start_time =
    if at >= 0 then at
    else
      match (ambient ()).amb_fiber with
      | Some parent -> parent.clock
      | None -> 0
  in
  let fiber =
    {
      fid = t.next_fid;
      socket;
      core;
      frng = Rng.split t.rng;
      clock = start_time;
      slice = 0;
      palloc = false;
    }
  in
  t.next_fid <- t.next_fid + 1;
  t.live <- t.live + 1;
  Hashtbl.replace t.fibers fiber.fid fiber;
  Telemetry.Registry.cur_add "sim.fibers_spawned" 1;
  Telemetry.Registry.cur_name_track fiber.fid
    (Printf.sprintf "fiber-%d (s%d.c%d)" fiber.fid socket core);
  schedule t ~fid:fiber.fid ~time:start_time (fun () ->
      (ambient ()).amb_fiber <- Some fiber;
      run_under_handler t fiber f);
  fiber

(** [run t ~until ()] dispatches fibers in simulated-time order. Returns
    [`Done] when every fiber has finished, or [`Cut t] when the next
    runnable fiber's clock exceeds [until] — which models a full-system
    power failure at time [until]: in-flight fibers are simply abandoned,
    exactly as a crash abandons in-flight threads. *)
let run ?(until = max_int) t () =
  if t.running then failwith "Sim.run: reentrant run";
  (* Save the caller's simulation (if any) instead of clearing the globals:
     the explorer runs a whole recovery simulation from inside a scheduler
     callback of an outer controlled run, and must find the outer sim intact
     afterwards. *)
  let amb = ambient () in
  let saved_sim = amb.amb_sim and saved_fiber = amb.amb_fiber in
  t.running <- true;
  amb.amb_sim <- Some t;
  let cleanup () =
    t.running <- false;
    amb.amb_sim <- saved_sim;
    amb.amb_fiber <- saved_fiber
  in
  let rec timed_loop () =
    match heap_peek t with
    | None -> `Done
    | Some e when e.time > until -> `Cut e.time
    | Some _ ->
      let e = Option.get (heap_pop t) in
      e.resume ();
      timed_loop ()
  in
  (* Controlled dispatch: every runnable fiber is a candidate at every step;
     the chooser (the explorer) picks. It is called even with a single
     candidate — that call doubles as the explorer's per-step hook (state
     dedup, crash-frontier enumeration). [until] does not apply: there is
     no global time order to cut. *)
  let rec controlled_loop choose =
    let n = Hashtbl.length t.runnable in
    if n = 0 then `Done
    else begin
      let fids = Array.make n 0 in
      let i = ref 0 in
      Hashtbl.iter (fun fid _ -> fids.(!i) <- fid; incr i) t.runnable;
      Array.sort compare fids;
      let fid = choose fids in
      let resume =
        match Hashtbl.find_opt t.runnable fid with
        | Some r -> r
        | None -> failwith "Sim.run: chooser picked a non-runnable fid"
      in
      Hashtbl.remove t.runnable fid;
      resume ();
      controlled_loop choose
    end
  in
  let loop () =
    match t.chooser with
    | Some choose -> controlled_loop choose
    | None -> timed_loop ()
  in
  (* An exception escaping a fiber (e.g. a crash hook firing mid-access)
     abandons the whole run, like a power failure; reset the globals so a
     fresh simulation can be started for recovery. *)
  match loop () with
  | result -> cleanup (); result
  | exception e -> cleanup (); raise e

(* ---- fiber-facing API ---- *)

let now () = (self ()).clock

let costs () = (instance ()).costs

(** Charge [cost] ns to the running fiber.

    Causality rule: a fiber may keep executing only while it is the
    globally earliest runnable fiber. As soon as its clock passes another
    fiber's wake time it yields, so every memory operation executes in
    simulated-time order — which is what makes locks and CAS exclusion
    sound in simulated time (a fiber can never observe a "future" write
    of a logically-later fiber). *)
let tick cost =
  let f = self () in
  f.clock <- f.clock + cost;
  let t = instance () in
  match t.chooser with
  | Some _ ->
    (* Controlled mode: scheduling points live at operation *starts*
       ([Nvm.Memory.op_point] yields there), so the whole operation —
       charge plus effect — executes as one indivisible step once chosen.
       Yielding here too would split an operation across two steps and
       misattribute its memory footprint. *)
    ()
  | None ->
    if t.preempt_prob > 0.0 && Rng.float t.rng < t.preempt_prob then begin
      f.clock <- f.clock + Rng.int t.rng t.quantum;
      Telemetry.Registry.cur_add "sim.preemptions" 1;
      Effect.perform Yield
    end
    else
      match heap_peek t with
      | Some e when e.time < f.clock ->
        Telemetry.Registry.cur_add "sim.switches" 1;
        Effect.perform Yield
      | Some _ | None -> ()

(** Force a scheduling point without advancing time. *)
let yield () = Effect.perform Yield

(** One iteration of a spin-wait loop: charge the spin cost and give the
    scheduler a chance to run whoever we are waiting for. *)
let spin () =
  let f = self () in
  let s = instance () in
  f.clock <- f.clock + s.costs.Costs.spin;
  Telemetry.Registry.cur_add "sim.spins" 1;
  (match s.spin_hook with Some h -> h f.fid | None -> ());
  Effect.perform Yield

(** Advance the fiber's clock to [time] (no-op if already past). *)
let sleep_until time =
  let f = self () in
  if time > f.clock then f.clock <- time;
  Effect.perform Yield

let fiber_rng () = (self ()).frng
let socket () = (self ()).socket
let sim_rng () = (instance ()).rng
let topology () = (instance ()).topology

(** Spawn a sibling fiber from inside a running fiber. *)
let spawn_here ~socket ?core f =
  ignore (spawn (instance ()) ~socket ?core f)

(** Run [f] as a single fiber on socket 0 of a fresh default simulation and
    return its result. Convenience for tests and sequential examples. *)
let run_one ?(seed = 1L) ?(topology = Topology.default) f =
  let sim = create ~seed topology in
  let result = ref None in
  ignore (spawn sim ~socket:0 (fun () -> result := Some (f ())));
  (match run sim () with
   | `Done -> ()
   | `Cut _ -> failwith "Sim.run_one: unexpected cut");
  match !result with
  | Some r -> r
  | None -> failwith "Sim.run_one: fiber did not complete"
