(** Simulated-time cost model, in nanoseconds.

    Values are loosely calibrated to published Optane DC / Cascade Lake
    measurements. Absolute numbers do not matter for the reproduction; the
    *asymmetries* do: NVM media writes are much slower than DRAM, remote
    socket accesses are slower than local ones, and WBINVD is vastly more
    expensive than flushing a single line. *)

type t = {
  cache_access : int;     (** load/store hitting the local cache *)
  dram_access : int;      (** load/store served by local DRAM *)
  nvm_read : int;         (** load served by NVM media *)
  remote_penalty : int;   (** extra cost when the line is homed on another socket *)
  cas : int;              (** atomic compare-and-swap (cache-hot) *)
  clwb_line : int;        (** asynchronous write-back of one line to NVM media *)
  clflush_line : int;     (** blocking flush of one line to NVM media *)
  sfence : int;           (** persistent fence draining pending write-backs *)
  wbinvd_base : int;      (** fixed stall of a whole-cache write-back-and-invalidate *)
  wbinvd_per_line : int;  (** additional WBINVD cost per dirty line written back *)
  spin : int;             (** one iteration of a spin-wait loop *)
  flush_tag_check : int;  (** consulting a per-line persistence tag (FliT) and
                              finding the flush redundant — an L1-resident
                              counter read, so priced like a cache hit *)
  clwb_merge : int;       (** a CLWB whose line already sits in the write-pending
                              queue: the WPQ entry is updated in place instead of
                              a new media write-back being queued *)
  mirror_write : int;     (** duplicating a log-entry store into the DRAM log
                              mirror: a second store to a line the writer just
                              touched, so it is priced like a cache hit *)
}

let default = {
  cache_access = 15;
  dram_access = 70;
  nvm_read = 170;
  remote_penalty = 110;
  cas = 35;
  clwb_line = 220;
  clflush_line = 320;
  sfence = 120;
  wbinvd_base = 450_000;
  wbinvd_per_line = 90;
  spin = 40;
  flush_tag_check = 15;
  clwb_merge = 40;
  mirror_write = 15;
}
