(** Dynamic memory allocators over simulated memory.

    Two flavours, mirroring the paper's setup (§5.1, §6):

    - a *volatile* allocator (the stand-in for jemalloc) serving DRAM
      arenas homed on a given socket, and
    - a *persistent* allocator (the stand-in for the simple free-list
      allocator of Correia et al.) serving NVM arenas.

    Crash-safety policy of the persistent allocator: arena contents are
    media-backed, so allocated objects keep their addresses across a crash
    (requirement 2 of §5.1). Allocator bookkeeping itself is volatile and is
    *rebuilt fresh* on recovery — a recovered heap never reuses pre-crash
    addresses, so a crash can leak but can never corrupt a live object
    (requirement 1). Within a run, freed blocks are recycled through
    per-size free lists. *)

type t = {
  mem : Memory.t;
  kind : Memory.kind;
  home : int;
  mutable arenas : int list; (* aids owned by this allocator, newest first *)
  mutable bump_aid : int;
  mutable bump_off : int;
  free_lists : (int, int list ref) Hashtbl.t; (* size -> reusable addrs *)
  mutable live_words : int;
}

let alloc_cost = 90 (* fixed simulated cost of one malloc/free call *)

let create mem ~kind ~home =
  let aid = Memory.new_arena mem ~kind ~home in
  {
    mem;
    kind;
    home;
    arenas = [ aid ];
    bump_aid = aid;
    (* never hand out offset 0 of any arena: address 0 is the null pointer
       and keeping offset 0 reserved everywhere makes bugs loud *)
    bump_off = Memory.line_words;
    free_lists = Hashtbl.create 16;
    live_words = 0;
  }

let create_volatile mem ~home = create mem ~kind:Memory.Dram ~home
let create_persistent mem ~home = create mem ~kind:Memory.Nvm ~home

let mem t = t.mem
let arenas t = t.arenas
let live_words t = t.live_words

(** Allocate [size] words, zero-initialised. *)
let alloc t size =
  if size <= 0 || size > Memory.arena_words / 2 then
    invalid_arg "Alloc.alloc: bad size";
  Sim.tick alloc_cost;
  t.live_words <- t.live_words + size;
  match Hashtbl.find_opt t.free_lists size with
  | Some ({ contents = addr :: rest } as cell) ->
    cell := rest;
    (* recycled block: scrub it so stale words cannot leak between users;
       the scrub dirties the lines so the zeros are re-persistable *)
    Memory.scrub t.mem addr size;
    addr
  | Some _ | None ->
    if t.bump_off + size > Memory.arena_words then begin
      let aid = Memory.new_arena t.mem ~kind:t.kind ~home:t.home in
      t.arenas <- aid :: t.arenas;
      t.bump_aid <- aid;
      t.bump_off <- Memory.line_words
    end;
    let addr = Memory.addr_of ~aid:t.bump_aid ~offset:t.bump_off in
    t.bump_off <- t.bump_off + size;
    addr

(** Allocate [lines] whole cache lines, zero-initialised and line-aligned.
    Over-allocates by one line and rounds the returned address up to a line
    boundary, so structures whose crash atomicity depends on line layout
    (announce/response records, open-coded locks) never straddle lines. The
    padding is never reclaimed — line-aligned blocks are not [free]d. *)
let alloc_lines t lines =
  if lines <= 0 then invalid_arg "Alloc.alloc_lines: bad count";
  let lw = Memory.line_words in
  let raw = alloc t ((lines + 1) * lw) in
  (raw + lw - 1) / lw * lw

(** Return a block of [size] words to the allocator's free list. *)
let free t addr size =
  Sim.tick alloc_cost;
  t.live_words <- t.live_words - size;
  match Hashtbl.find_opt t.free_lists size with
  | Some cell -> cell := addr :: !cell
  | None -> Hashtbl.replace t.free_lists size (ref [ addr ])

(** Persist the allocator's entire heap (every owned arena). This is the
    CX-PUC persistence strategy: write back whatever is dirty in the
    replica's address range, then fence. *)
let persist_heap t =
  if t.kind <> Memory.Nvm then invalid_arg "Alloc.persist_heap: volatile heap";
  List.iter
    (fun aid -> Memory.flush_arena ~site:Persist.Alloc_persist_heap t.mem aid)
    t.arenas;
  Memory.sfence ~site:Persist.Alloc_persist_heap t.mem
