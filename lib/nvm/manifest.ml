(** The fenced manifest: the single NVM root of the incremental-checkpoint
    backend.

    One manifest record names the live segment set (newest first), the log
    index up to which those segments capture every effect ([sealed_lt]),
    and a monotone epoch. Publishing alternates between two checksummed
    slots: a writer never touches the slot holding the current maximum
    epoch, so a crash mid-publish can only tear the *new* record — the
    reader detects the torn checksum and falls back to the previous epoch,
    which is exactly the pre-publish state. Publish order is
    write → CLWB → SFENCE, so once [publish] returns the record is media
    truth (recovery roots are reachable the instant the fence drains).

    Capacity is fixed: [max_segments] addresses per record. The sealing
    path compacts or refuses before overflowing — a manifest that cannot
    name a segment must never silently drop it. *)

let max_segments = 256

(* slot layout: epoch, sealed_lt, nseg, addrs[max_segments], checksum *)
let slot_words = 3 + max_segments + 1
let ck_off = 3 + max_segments

let slot_stride =
  (slot_words + Memory.line_words - 1) / Memory.line_words * Memory.line_words

let region_lines = 2 * slot_stride / Memory.line_words

type t = { mem : Memory.t; base : int }

type record = {
  epoch : int;
  sealed_lt : int;  (** log entries [0, sealed_lt) are covered by [segs] *)
  segs : int list;  (** segment base addresses, newest first *)
}

let checksum ~epoch ~sealed_lt ~nseg addrs =
  let h = ref (Memory.mix epoch) in
  h := Memory.h2 !h sealed_lt;
  h := Memory.h2 !h nseg;
  List.iter (fun a -> h := Memory.h2 !h a) addrs;
  if !h = 0 then 1 else !h

(** Allocate the two-slot region (zeroed: both slots invalid, epoch 0). *)
let create alloc =
  let base = Alloc.alloc_lines alloc region_lines in
  { mem = Alloc.mem alloc; base }

let attach mem ~base = { mem; base }
let base t = t.base
let slot_addr t i = t.base + (i * slot_stride)

(** Publish a new record with [epoch] into the slot the current maximum
    epoch does *not* occupy. Epochs must be handed out monotonically by
    the single writer (the persistence thread). Fully fenced on return. *)
let publish t ~epoch ~sealed_lt ~segs =
  let nseg = List.length segs in
  if nseg > max_segments then invalid_arg "Manifest.publish: too many segments";
  if epoch <= 0 then invalid_arg "Manifest.publish: bad epoch";
  let s = slot_addr t (epoch land 1) in
  Memory.write t.mem s epoch;
  Memory.write t.mem (s + 1) sealed_lt;
  Memory.write t.mem (s + 2) nseg;
  List.iteri (fun i a -> Memory.write t.mem (s + 3 + i) a) segs;
  Memory.write t.mem (s + ck_off) (checksum ~epoch ~sealed_lt ~nseg segs);
  let lw = Memory.line_words in
  let first = s / lw and last = (s + ck_off) / lw in
  for line = first to last do
    Memory.clwb ~site:Persist.Manifest_publish t.mem (line * lw)
  done;
  Memory.sfence ~site:Persist.Manifest_publish t.mem

let read_slot read t i =
  let s = slot_addr t i in
  let epoch = read t.mem s in
  if epoch <= 0 then None
  else
    let sealed_lt = read t.mem (s + 1) in
    let nseg = read t.mem (s + 2) in
    if nseg < 0 || nseg > max_segments then None
    else
      let segs = List.init nseg (fun i -> read t.mem (s + 3 + i)) in
      if read t.mem (s + ck_off) <> checksum ~epoch ~sealed_lt ~nseg segs
      then None
      else Some { epoch; sealed_lt; segs }

let best a b =
  match (a, b) with
  | None, r | r, None -> r
  | Some ra, Some rb -> if ra.epoch >= rb.epoch then a else b

(** Read back the newest valid record (charged reads); [None] only if no
    publish ever completed. A record torn by a crash mid-publish fails its
    checksum and the previous epoch wins — the torn-manifest fallback. *)
let load t = best (read_slot Memory.read t 0) (read_slot Memory.read t 1)

(** Cost-free [load] (checkers only). *)
let peek_load t = best (read_slot Memory.peek t 0) (read_slot Memory.peek t 1)
