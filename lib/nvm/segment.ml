(** Immutable sorted NVM segments — the sealed units of the incremental
    (LSM-flavoured) checkpoint backend.

    A segment is a line-aligned NVM block holding a Bloom filter and a
    sorted run of [(key, value)] records, sealed by a header written and
    fenced strictly *after* the body is durable. The seal discipline is the
    crash contract: a header whose magic is on media implies every body
    word below it is on media too, so recovery validates a segment with an
    O(1) header read instead of an O(records) scan. (The planted
    manifest-before-segment-seal fault breaks exactly this ordering.)

    Layout (word offsets from the line-aligned base):

      0  magic (sealed marker + format version)
      1  record count
      2  level (LSM tier; seals start at 0, compaction outputs level+1)
      3  min key   (occupancy filter: exact key range)
      4  max key
      5  Bloom filter word count
      6  reserved (0)
      7  checksum over header fields + body (for audits; not on hot paths)
      8 ..                 Bloom filter words
      8 + bloom_words ..   records, 2 words each, sorted ascending by key

    Keys and values are plain integers — the module is agnostic of the
    sequential structure above it. Deleted keys are recorded with the
    [tombstone] sentinel value, which clients must never store. *)

let header_words = 8

let magic = 0x5E6_C0DE (* "segment, sealed" *)

(** Sentinel value recording a deletion. Client values are non-negative in
    every workload this repo generates; the guard in [Memtable.put] keeps
    the sentinel from ever colliding with a real value. *)
let tombstone = min_int / 2

module Bloom = struct
  (** Per-segment Bloom filter over the record keys. Sized at
      [bits_per_key] bits per record with [probes] probe positions, giving
      an analytic false-positive rate of (1 - e^{-k/c})^k ≈ 1.2% for
      c = 10, k = 4. Probes short-circuit on the first clear bit, so a
      cold-segment miss usually costs one or two word reads. *)

  let bits_per_key = 10
  let probes = 4

  (* bits packed per word; < 62 so (1 lsl bit) stays positive *)
  let bits_per_word = 60

  let nbits ~count = max bits_per_word (count * bits_per_key)
  let words_for ~count = (nbits ~count + bits_per_word - 1) / bits_per_word

  (* double hashing: position i = h1 + i*h2 (mod nbits) *)
  let h1 key = Memory.mix (key + 0x1E3779B97F4A7C15)
  let h2_of key = Memory.mix (key lxor 0x2A09E667F3BCC908)

  let position key ~nbits i =
    let a = h1 key and b = h2_of key in
    let p = (a + (i * b)) mod nbits in
    if p < 0 then p + nbits else p

  (** Set [key]'s probe bits in the volatile build buffer [buf]. *)
  let add buf key ~nbits =
    for i = 0 to probes - 1 do
      let p = position key ~nbits i in
      let w = p / bits_per_word and b = p mod bits_per_word in
      buf.(w) <- buf.(w) lor (1 lsl b)
    done

  (** Probe the filter at NVM address [base] (charged reads). *)
  let mem_costed mem ~base ~nbits key =
    let rec probe i =
      if i >= probes then true
      else
        let p = position key ~nbits i in
        let w = p / bits_per_word and b = p mod bits_per_word in
        if Memory.read mem (base + w) land (1 lsl b) = 0 then false
        else probe (i + 1)
    in
    probe 0

  (** Cost-free probe (checkers and snapshots only). *)
  let mem_peek mem ~base ~nbits key =
    let rec probe i =
      if i >= probes then true
      else
        let p = position key ~nbits i in
        let w = p / bits_per_word and b = p mod bits_per_word in
        if Memory.peek mem (base + w) land (1 lsl b) = 0 then false
        else probe (i + 1)
    in
    probe 0
end

(** Volatile mount record of one sealed segment. Rebuilt from the header
    on recovery; never trusted across a crash. *)
type meta = {
  addr : int;
  count : int;
  level : int;
  min_key : int;
  max_key : int;
  bloom_words : int;
}

let nbits m = Bloom.nbits ~count:m.count
let bloom_base m = m.addr + header_words
let rec_base m = m.addr + header_words + m.bloom_words

let words_needed ~count =
  header_words + Bloom.words_for ~count + (2 * count)

let lines_needed ~count =
  (words_needed ~count + Memory.line_words - 1) / Memory.line_words

(** Largest record count a single segment may hold: one allocator call
    caps at half an arena, and sealing splits bigger drains into several
    segments. *)
let max_records =
  (* solve words_needed(count) <= arena_words / 2 - slack conservatively *)
  let budget = (Memory.arena_words / 2) - (2 * Memory.line_words) in
  (budget - header_words) * Bloom.bits_per_word
  / ((2 * Bloom.bits_per_word) + Bloom.bits_per_key)

let checksum ~count ~level ~min_key ~max_key ~bloom_words body =
  let h = ref (Memory.mix count) in
  h := Memory.h2 !h level;
  h := Memory.h2 !h min_key;
  h := Memory.h2 !h max_key;
  h := Memory.h2 !h bloom_words;
  List.iter (fun w -> h := Memory.h2 !h w) body;
  if !h = 0 then 1 else !h

let clwb_range ~site mem ~base ~words =
  let lw = Memory.line_words in
  let first = base / lw and last = (base + words - 1) / lw in
  for line = first to last do
    Memory.clwb ~site mem (line * lw)
  done

(** Write and seal a segment at [addr] (from [Alloc.alloc_lines
    (lines_needed ~count)]). [recs] is sorted ascending by key, values may
    be [tombstone]. Performs the full two-fence discipline: body words +
    write-backs, fence, then the sealing header, write-back, fence. On
    return the segment is durable and self-describing. *)
let build mem ~addr ~level recs =
  let count = Array.length recs in
  if count = 0 then invalid_arg "Segment.build: empty";
  if count > max_records then invalid_arg "Segment.build: too many records";
  let bloom_words = Bloom.words_for ~count in
  let nbits = Bloom.nbits ~count in
  let bloom = Array.make bloom_words 0 in
  Array.iter (fun (k, _) -> Bloom.add bloom k ~nbits) recs;
  let min_key = fst recs.(0) and max_key = fst recs.(count - 1) in
  (* body: bloom then records *)
  Array.iteri
    (fun i w -> Memory.write mem (addr + header_words + i) w)
    bloom;
  let rb = addr + header_words + bloom_words in
  Array.iteri
    (fun i (k, v) ->
      Memory.write mem (rb + (2 * i)) k;
      Memory.write mem (rb + (2 * i) + 1) v)
    recs;
  clwb_range ~site:Persist.Segment_body mem ~base:(addr + header_words)
    ~words:(bloom_words + (2 * count));
  Memory.sfence ~site:Persist.Segment_body mem;
  (* seal: the header goes durable only after the body fence above *)
  let body =
    Array.to_list bloom
    @ List.concat_map (fun (k, v) -> [ k; v ]) (Array.to_list recs)
  in
  let ck = checksum ~count ~level ~min_key ~max_key ~bloom_words body in
  Memory.write mem (addr + 1) count;
  Memory.write mem (addr + 2) level;
  Memory.write mem (addr + 3) min_key;
  Memory.write mem (addr + 4) max_key;
  Memory.write mem (addr + 5) bloom_words;
  Memory.write mem (addr + 6) 0;
  Memory.write mem (addr + 7) ck;
  Memory.write mem addr magic;
  Memory.clwb ~site:Persist.Segment_seal mem addr;
  Memory.sfence ~site:Persist.Segment_seal mem;
  { addr; count; level; min_key; max_key; bloom_words }

(** Mount a segment from its header (charged reads, O(1)). Returns [None]
    if the header is not a sane sealed segment — a torn build left by a
    crash (possible only under the planted fault, since the proper seal
    discipline fences the body first). *)
let mount mem addr =
  if Memory.read mem addr <> magic then None
  else
    let count = Memory.read mem (addr + 1) in
    let level = Memory.read mem (addr + 2) in
    let min_key = Memory.read mem (addr + 3) in
    let max_key = Memory.read mem (addr + 4) in
    let bloom_words = Memory.read mem (addr + 5) in
    if
      count <= 0 || count > max_records
      || bloom_words <> Bloom.words_for ~count
      || min_key > max_key || level < 0
    then None
    else Some { addr; count; level; min_key; max_key; bloom_words }

(** Full O(records) checksum audit (tests and recovery diagnostics; never
    on the mount or lookup hot paths). *)
let verify mem m =
  let body = ref [] in
  for i = rec_base m + (2 * m.count) - 1 downto bloom_base m do
    body := Memory.peek mem i :: !body
  done;
  Memory.peek mem (m.addr + 7)
  = checksum ~count:m.count ~level:m.level ~min_key:m.min_key
      ~max_key:m.max_key ~bloom_words:m.bloom_words !body

(* ---- reads ---- *)

(** Exact occupancy filter: pure range check against the mount record. *)
let range_hit m key = key >= m.min_key && key <= m.max_key

let bloom_hit mem m key =
  Bloom.mem_costed mem ~base:(bloom_base m) ~nbits:(nbits m) key

(** Binary search for [key] (charged reads, O(log count)). The returned
    value may be [tombstone]. Call behind [range_hit]/[bloom_hit]. *)
let find mem m key =
  let rb = rec_base m in
  let rec go lo hi =
    if lo > hi then None
    else
      let mid = (lo + hi) / 2 in
      let k = Memory.read mem (rb + (2 * mid)) in
      if k = key then Some (Memory.read mem (rb + (2 * mid) + 1))
      else if k < key then go (mid + 1) hi
      else go lo (mid - 1)
  in
  go 0 (m.count - 1)

(** Filtered lookup: range check, Bloom probe, then binary search. *)
let lookup mem m key =
  if not (range_hit m key) then None
  else if not (bloom_hit mem m key) then None
  else find mem m key

(** All records, oldest-format order (ascending keys), charged reads. *)
let to_array mem m =
  let rb = rec_base m in
  Array.init m.count (fun i ->
      (Memory.read mem (rb + (2 * i)), Memory.read mem (rb + (2 * i) + 1)))

(** Cost-free record dump (checkers and snapshots only). *)
let peek_array mem m =
  let rb = rec_base m in
  Array.init m.count (fun i ->
      (Memory.peek mem (rb + (2 * i)), Memory.peek mem (rb + (2 * i) + 1)))

(** Cost-free single-key probe through bloom + binary search. *)
let peek_find mem m key =
  if not (range_hit m key) then None
  else if not (Bloom.mem_peek mem ~base:(bloom_base m) ~nbits:(nbits m) key)
  then None
  else
    let rb = rec_base m in
    let rec go lo hi =
      if lo > hi then None
      else
        let mid = (lo + hi) / 2 in
        let k = Memory.peek mem (rb + (2 * mid)) in
        if k = key then Some (Memory.peek mem (rb + (2 * mid) + 1))
        else if k < key then go (mid + 1) hi
        else go lo (mid - 1)
    in
    go 0 (m.count - 1)

module Memtable = struct
  (** The volatile accumulation buffer between seals: latest effect per
      key, deletions as [tombstone]. Strictly DRAM-side OCaml state — its
      contents are exactly reproducible from the log suffix past the last
      sealed index, which is why losing it in a crash is safe. *)

  type t = (int, int) Hashtbl.t

  let create () : t = Hashtbl.create 64
  let size (t : t) = Hashtbl.length t

  let put (t : t) key value =
    if value < 0 then invalid_arg "Memtable.put: negative value";
    Hashtbl.replace t key value

  let del (t : t) key = Hashtbl.replace t key tombstone

  (** Drain to a sorted record array and clear. *)
  let drain_sorted (t : t) =
    let n = Hashtbl.length t in
    let a = Array.make n (0, 0) in
    let i = ref 0 in
    Hashtbl.iter
      (fun k v ->
        a.(!i) <- (k, v);
        incr i)
      t;
    Hashtbl.reset t;
    Array.sort (fun (a, _) (b, _) -> compare a b) a;
    a

  (** Order-independent content hash (explorer ghost state). *)
  let hash (t : t) =
    Hashtbl.fold (fun k v acc -> acc lxor Memory.h2 k v) t 0
end
