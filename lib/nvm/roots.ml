(** Named persistent roots.

    Real persistent-memory programs reach recovered data through a
    well-known root object in the persistent memory file. Here the root
    directory is the first cache lines of NVM arena 0 (which the [make]
    below creates eagerly so it always exists and always has arena id 0).
    Slot 0 is never used: address 0 is the null pointer. *)

let max_slots = 64

type t = { mem : Memory.t }

(** Create the root directory. Must be called before any other arena is
    created so the directory lands at addresses [1 .. max_slots-1]. *)
let make mem =
  let aid = Memory.new_arena mem ~kind:Memory.Nvm ~home:0 in
  if aid <> 0 then failwith "Roots.make: root arena must be the first arena";
  { mem }

let addr _t slot =
  if slot < 1 || slot >= max_slots then invalid_arg "Roots.addr: bad slot";
  slot

(** Read root [slot] (charges a simulated NVM access). *)
let get t slot = Memory.read t.mem (addr t slot)

(** Write root [slot] and persist it immediately (CLFLUSH), so the root is
    recoverable as soon as the call returns. *)
let set t slot v =
  Memory.write t.mem (addr t slot) v;
  Memory.clflush ~site:Persist.Roots_set t.mem (addr t slot)

(** Write root [slot] without persisting (caller flushes). *)
let set_unflushed t slot v = Memory.write t.mem (addr t slot) v
