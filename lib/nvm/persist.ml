(** The persistency-policy layer: every flush/fence call site in the
    codebase, as a closed variant, with a per-site policy deciding what
    the simulated hardware primitive actually does.

    The FliT layer ([Memory.set_flit]) elides flushes *dynamically* — a
    CLWB on a line whose media is already current costs only a tag check.
    The line of work this module follows (Guo et al., "Automated Insertion
    of Flushes and Fences for Persistency") argues for the stronger
    *static* form: compute a minimal per-site flush/fence set that still
    satisfies durable linearizability, and drop the rest at the call site,
    tag checks and all. That requires persistency to be a first-class,
    switchable *policy* rather than hard-coded instructions, which is what
    this module provides:

    - [site]: one constructor per flush/fence call site. The memory
      primitives take a site as a mandatory argument, so an unlabelled
      flush cannot exist (the compiler surfaces any new site), and every
      site gets per-site emitted/elided telemetry for free.
    - [action]: what the policy does at a site — emit the instruction as
      written, elide it entirely, downgrade a blocking CLFLUSH to an
      asynchronous CLWB, or defer an SFENCE to the next emitted fence.
    - [policy]: a site-indexed action table, serializable to/from JSON so
      an inferred set can flow between [optimize-persist], the fuzzer, the
      explorer and the benchmarks ([--persist-policy]).

    The inference pass that searches this space lives in
    [Check.Persist_infer]; this module is mechanism only. *)

type site =
  (* shared circular log (lib/core/log.ml) *)
  | Log_persist_entry  (** per-entry CLWB of a just-written log line *)
  | Log_persist_range  (** batched line sweep of a reserved window *)
  | Log_fence_payload  (** combine phase 1: fence after payload write-backs *)
  | Log_fence_publish  (** combine phase 2: fence after emptyBit write-backs *)
  | Log_fence  (** other log fences (lsm seal sweep, tests) *)
  (* core construction (lib/core/prep_uc.ml) *)
  | Prep_init  (** completedTail word flushed at construction *)
  | Prep_completed_tail  (** §5.2 CLFLUSH after advancing completedTail *)
  | Prep_checkpoint  (** WBINVD / heap walk + fence of the checkpoint *)
  (* detectability layer (lib/nvm/announce.ml) *)
  | Detect_announce_init  (** zeroed announce/response table at create *)
  | Detect_announce  (** announce record CLFLUSH before slot publish *)
  | Detect_response  (** response-line CLWBs + per-round fence *)
  (* incremental checkpoint (lib/nvm/segment.ml, manifest.ml) *)
  | Manifest_publish  (** manifest record write-backs + fence *)
  | Segment_body  (** sealed segment body sweep + fence *)
  | Segment_seal  (** segment seal-word write-back + fence *)
  (* allocator and roots (lib/nvm/alloc.ml, roots.ml) *)
  | Alloc_persist_heap  (** whole-heap arena walk + fence *)
  | Roots_set  (** root-directory slot CLFLUSH *)
  (* cross-shard transactions (lib/core/sharded_uc.ml) *)
  | Txn_decision  (** commit-decision slot CLFLUSH + fence (commit point) *)
  | Txn_gate  (** decision write-back queued before the checkpoint fence *)
  (* CX-PUC baseline (lib/core/cx_puc.ml) *)
  | Cx_dir_init  (** replica directory flushed at construction *)
  | Cx_replica_dir  (** lazily instantiated replica's directory entry *)
  | Cx_publish  (** published-count root CLFLUSH (CX commit point) *)
  | Cx_dirty_flag  (** mid-update marker CLFLUSH around the heap persist *)
  (* SOFT hash set (lib/core/soft_hash.ml) *)
  | Soft_insert  (** new pnode persisted before volatile link-in *)
  | Soft_update  (** value-node line persisted on update *)
  | Soft_delete  (** deleted-mark persisted before unlink *)
  (* harness-only *)
  | Test  (** unit tests exercising the primitives directly *)

let all =
  [|
    Log_persist_entry; Log_persist_range; Log_fence_payload;
    Log_fence_publish; Log_fence; Prep_init; Prep_completed_tail;
    Prep_checkpoint; Detect_announce_init; Detect_announce; Detect_response;
    Manifest_publish; Segment_body; Segment_seal; Alloc_persist_heap;
    Roots_set; Txn_decision; Txn_gate; Cx_dir_init; Cx_replica_dir;
    Cx_publish; Cx_dirty_flag; Soft_insert; Soft_update; Soft_delete; Test;
  |]

let n_sites = Array.length all

let index = function
  | Log_persist_entry -> 0
  | Log_persist_range -> 1
  | Log_fence_payload -> 2
  | Log_fence_publish -> 3
  | Log_fence -> 4
  | Prep_init -> 5
  | Prep_completed_tail -> 6
  | Prep_checkpoint -> 7
  | Detect_announce_init -> 8
  | Detect_announce -> 9
  | Detect_response -> 10
  | Manifest_publish -> 11
  | Segment_body -> 12
  | Segment_seal -> 13
  | Alloc_persist_heap -> 14
  | Roots_set -> 15
  | Txn_decision -> 16
  | Txn_gate -> 17
  | Cx_dir_init -> 18
  | Cx_replica_dir -> 19
  | Cx_publish -> 20
  | Cx_dirty_flag -> 21
  | Soft_insert -> 22
  | Soft_update -> 23
  | Soft_delete -> 24
  | Test -> 25

let to_string = function
  | Log_persist_entry -> "log.persist_entry"
  | Log_persist_range -> "log.persist_range"
  | Log_fence_payload -> "log.fence_payload"
  | Log_fence_publish -> "log.fence_publish"
  | Log_fence -> "log.fence"
  | Prep_init -> "prep.init"
  | Prep_completed_tail -> "prep.completed_tail"
  | Prep_checkpoint -> "prep.checkpoint"
  | Detect_announce_init -> "detect.announce_init"
  | Detect_announce -> "detect.announce"
  | Detect_response -> "detect.response"
  | Manifest_publish -> "manifest.publish"
  | Segment_body -> "segment.body"
  | Segment_seal -> "segment.seal"
  | Alloc_persist_heap -> "alloc.persist_heap"
  | Roots_set -> "roots.set"
  | Txn_decision -> "txn.decision"
  | Txn_gate -> "txn.gate"
  | Cx_dir_init -> "cx.dir_init"
  | Cx_replica_dir -> "cx.replica_dir"
  | Cx_publish -> "cx.publish"
  | Cx_dirty_flag -> "cx.dirty_flag"
  | Soft_insert -> "soft.insert"
  | Soft_update -> "soft.update"
  | Soft_delete -> "soft.delete"
  | Test -> "test"

let of_string s = Array.find_opt (fun site -> to_string site = s) all

(** What the policy does with the instruction at a site. Semantics are
    per primitive; a combination that makes no sense (e.g. downgrading a
    CLWB, which is already asynchronous) falls back to [Emit]:

    - CLWB: [Elide] removes the instruction; everything else emits.
    - CLFLUSH: [Elide] removes it; [Downgrade_to_clwb] and
      [Defer_to_next_fence] both replace the blocking line write with an
      asynchronous CLWB whose capture reaches media at the next emitted
      fence.
    - SFENCE: [Elide] and [Defer_to_next_fence] both skip the fence; the
      write-pending queue survives and drains at the next emitted fence
      (or is lost to a crash — exactly the window the oracle must clear).
    - WBINVD / arena walk: [Elide] removes it; everything else emits. *)
type action = Emit | Elide | Downgrade_to_clwb | Defer_to_next_fence

let action_to_string = function
  | Emit -> "emit"
  | Elide -> "elide"
  | Downgrade_to_clwb -> "downgrade-to-clwb"
  | Defer_to_next_fence -> "defer-to-next-fence"

let action_of_string = function
  | "emit" -> Some Emit
  | "elide" -> Some Elide
  | "downgrade-to-clwb" -> Some Downgrade_to_clwb
  | "defer-to-next-fence" -> Some Defer_to_next_fence
  | _ -> None

(** A policy is a site-indexed action table. Treat installed policies as
    immutable; derive variants with [copy] + [set]. *)
type policy = action array

let default () : policy = Array.make n_sites Emit
let copy (p : policy) : policy = Array.copy p
let get (p : policy) site = p.(index site)
let set (p : policy) site a = p.(index site) <- a
let equal (a : policy) (b : policy) = a = b

(** Sites whose action differs from [Emit], in [all] order. *)
let weakenings (p : policy) =
  Array.to_list all
  |> List.filter_map (fun s ->
         match get p s with Emit -> None | a -> Some (s, a))

let is_default p = weakenings p = []

(* ---- serialization ----

   The on-disk format names only the weakened sites:

     {"schema": "prep.persist-policy/1",
      "sites": {"log.fence_payload": "defer-to-next-fence", ...}}

   The inline spec form (CLI convenience, also what repro commands embed)
   is "site=action[,site=action...]"; "none" is the empty policy. *)

let schema = "prep.persist-policy/1"

let to_spec p =
  match weakenings p with
  | [] -> "none"
  | ws ->
    String.concat ","
      (List.map (fun (s, a) -> to_string s ^ "=" ^ action_to_string a) ws)

let of_spec spec =
  let p = default () in
  let spec = String.trim spec in
  if spec = "" || spec = "none" then Ok p
  else
    let rec go = function
      | [] -> Ok p
      | kv :: rest -> (
        match String.index_opt kv '=' with
        | None -> Error (Printf.sprintf "persist-policy: expected site=action, got %S" kv)
        | Some i -> (
          let sname = String.trim (String.sub kv 0 i) in
          let aname =
            String.trim (String.sub kv (i + 1) (String.length kv - i - 1))
          in
          match (of_string sname, action_of_string aname) with
          | None, _ ->
            Error (Printf.sprintf "persist-policy: unknown site %S" sname)
          | _, None ->
            Error (Printf.sprintf "persist-policy: unknown action %S" aname)
          | Some s, Some a ->
            set p s a;
            go rest))
    in
    go (String.split_on_char ',' spec)

let to_json p =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"schema\": %S,\n" schema);
  Buffer.add_string b "  \"sites\": {";
  let ws = weakenings p in
  List.iteri
    (fun i (s, a) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n    %S: %S" (to_string s) (action_to_string a)))
    ws;
  if ws <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "}\n}\n";
  Buffer.contents b

let of_json s =
  match Telemetry.Json.parse_result s with
  | Error m -> Error ("persist-policy: " ^ m)
  | Ok v -> (
    match Telemetry.Json.member "schema" v with
    | Some (Telemetry.Json.Str sc) when sc = schema -> (
      match Telemetry.Json.member "sites" v with
      | Some (Telemetry.Json.Obj kvs) ->
        let p = default () in
        let rec go = function
          | [] -> Ok p
          | (k, Telemetry.Json.Str a) :: rest -> (
            match (of_string k, action_of_string a) with
            | Some s, Some act ->
              set p s act;
              go rest
            | None, _ ->
              Error (Printf.sprintf "persist-policy: unknown site %S" k)
            | _, None ->
              Error (Printf.sprintf "persist-policy: unknown action %S" a))
          | (k, _) :: _ ->
            Error (Printf.sprintf "persist-policy: site %S action must be a string" k)
        in
        go kvs
      | _ -> Error "persist-policy: missing \"sites\" object")
    | Some _ | None ->
      Error
        (Printf.sprintf "persist-policy: missing or wrong \"schema\" (want %S)"
           schema))

(** Parse either an inline spec ("site=action,...", or "none") or, when
    the string names a readable file, that file's JSON. The CLI accepts
    both so repro commands need no temp files. *)
let load arg =
  if Sys.file_exists arg && not (String.contains arg '=') then begin
    let ic = open_in_bin arg in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    of_json s
  end
  else of_spec arg

(* ---- per-site telemetry naming ----

   [Memory] attributes every flush/fence to its site through the ambient
   telemetry registry using counter names of the form

     nvm.<metric>@<site-string>

   where <metric> is the primitive name ("clwb", "sfence", ...) for
   emitted instructions, "<prim>_ns" for their simulated-ns share, and
   "<prim>_flit_elided" / "<prim>_policy_elided" / "clflush_downgraded" /
   "sfence_deferred" for the elision classes. [split_counter] is the
   shared parser the profile table and the inference ranking use. *)

let split_counter name =
  if String.length name > 4 && String.sub name 0 4 = "nvm." then
    match String.index_opt name '@' with
    | None -> None
    | Some i ->
      let metric = String.sub name 4 (i - 4) in
      let sname = String.sub name (i + 1) (String.length name - i - 1) in
      (match of_string sname with
       | Some site -> Some (metric, site)
       | None -> None)
  else None
