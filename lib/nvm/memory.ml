(** Simulated byte-addressable memory with an explicit cache model.

    The address space is divided into fixed-size arenas, each homed on a
    NUMA socket and backed by either DRAM (volatile) or NVM. All stores
    first take effect in the coherent view ([values]) and dirty their cache
    line; NVM arenas additionally carry a [media] array holding the last
    *persisted* value of every word. A line's contents reach media only via
    [clwb]+[sfence], [clflush], [wbinvd], or a random seeded *background
    flush* — the cache-coherence-induced write-backs the paper warns about
    (§2.2, §4.1). [crash] discards everything except media.

    Addresses are plain ints: [addr = arena_id * arena_words + offset].
    Address 0 is reserved and plays the role of the null pointer. *)

let arena_shift = 16
let arena_words = 1 lsl arena_shift (* 65536 words per arena *)
let line_words = 8
let lines_per_arena = arena_words / line_words

let null = 0

type kind = Dram | Nvm

type arena = {
  aid : int;
  kind : kind;
  home : int; (* socket the arena is homed on *)
  values : int array; (* coherent view, what loads observe *)
  media : int array; (* persisted view; length 0 for DRAM arenas *)
  dirty : Bytes.t; (* per line: 0 = clean, 1 + socket = dirty in that socket's cache *)
}

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable cas_ops : int;
  mutable clwb : int;          (** CLWBs that queued a real media write-back *)
  mutable clflush : int;       (** CLFLUSHes that performed a real media write *)
  mutable sfence : int;        (** SFENCEs that drained a non-empty WPQ *)
  mutable wbinvd : int;
  mutable wbinvd_lines : int;
  mutable bg_flushes : int;
  (* FliT flush-elimination accounting (all 0 unless [set_flit m true]): *)
  mutable clwb_elided : int;    (** CLWB on a clean, already-persisted line *)
  mutable clwb_coalesced : int; (** CLWB merged into an existing WPQ entry *)
  mutable clflush_elided : int; (** CLFLUSH on a clean line with current media *)
  mutable sfence_elided : int;  (** SFENCE with an empty write-pending queue *)
}

let new_stats () =
  { reads = 0; writes = 0; cas_ops = 0; clwb = 0; clflush = 0; sfence = 0;
    wbinvd = 0; wbinvd_lines = 0; bg_flushes = 0;
    clwb_elided = 0; clwb_coalesced = 0; clflush_elided = 0; sfence_elided = 0 }

type pending = { p_arena : int; p_line : int; p_words : int array }

let dirty_key aid line = (aid * lines_per_arena) + line

let dummy_arena =
  { aid = -1; kind = Dram; home = 0; values = [||]; media = [||];
    dirty = Bytes.create 0 }

type t = {
  mutable m_arenas : arena array;
  mutable m_count : int;
  m_dirty_by_socket : (int, unit) Hashtbl.t array;
  mutable m_pending : pending list;
  mutable m_flit : bool;
  m_pending_tbl : (int, int array) Hashtbl.t;
      (* flit-mode WPQ: dirty_key -> captured line words (newest capture wins) *)
  m_rng : Sim.Rng.t;
  m_bg_period : int;
  mutable m_countdown : int;
  m_stats : stats;
  mutable m_op_index : int;
  mutable m_crash_hook : (int -> unit) option;
}

let make ?(seed = 42L) ?(sockets = 2) ?(bg_period = 50_000) ?(flit = false) () =
  let m =
    {
      m_arenas = Array.make 64 dummy_arena;
      m_count = 0;
      m_dirty_by_socket = Array.init sockets (fun _ -> Hashtbl.create 4096);
      m_pending = [];
      m_flit = flit;
      m_pending_tbl = Hashtbl.create 256;
      m_rng = Sim.Rng.create seed;
      m_bg_period = bg_period;
      m_countdown = (if bg_period = 0 then max_int else bg_period);
      m_stats = new_stats ();
      m_op_index = 0;
      m_crash_hook = None;
    }
  in
  m

let stats m = m.m_stats

(** Whether FliT-style flush elimination is active. *)
let flit_enabled m = m.m_flit

(** Enable/disable FliT-style flush tracking. In flit mode the write-pending
    queue is keyed by cache line, so a CLWB on a line that is already queued
    coalesces into the existing WPQ entry, a CLWB/CLFLUSH on a clean line
    whose media is current is a counted no-op, and an SFENCE with an empty
    WPQ charges no drain cost. Any in-flight pending write-backs survive the
    switch in either direction. *)
let set_flit m on =
  if on && not m.m_flit then begin
    (* list -> table, oldest first so the newest capture of a line wins *)
    List.iter
      (fun p -> Hashtbl.replace m.m_pending_tbl (dirty_key p.p_arena p.p_line) p.p_words)
      (List.rev m.m_pending);
    m.m_pending <- []
  end
  else if (not on) && m.m_flit then begin
    Hashtbl.iter
      (fun key words ->
        let aid = key / lines_per_arena and line = key mod lines_per_arena in
        m.m_pending <- { p_arena = aid; p_line = line; p_words = words } :: m.m_pending)
      m.m_pending_tbl;
    Hashtbl.reset m.m_pending_tbl
  end;
  m.m_flit <- on

(* ---- crash-hook API (fuzzing instrumentation) ---- *)

(** Number of fiber-facing memory operations issued so far. Every load,
    store, CAS, FAA, scrub, flush and fence counts as one operation, so an
    operation index names one precise point in the global (simulated-time-
    ordered) sequence of memory events. *)
let op_index m = m.m_op_index

(** Install [hook], called with the operation index at the *start* of every
    fiber-facing operation — before the operation takes any effect. A hook
    that raises aborts the executing fiber mid-access, which models a
    full-system power failure immediately before that operation: the crash
    fuzzer uses this to cut a run at an exact memory-operation index rather
    than at a simulated time. *)
let set_crash_hook m hook = m.m_crash_hook <- Some hook

let clear_crash_hook m = m.m_crash_hook <- None

let op_point m =
  let i = m.m_op_index in
  m.m_op_index <- i + 1;
  match m.m_crash_hook with None -> () | Some hook -> hook i

(** Allocate a fresh arena homed on [home]. Returns the arena id. *)
let new_arena m ~kind ~home =
  if m.m_count = Array.length m.m_arenas then begin
    let bigger = Array.make (2 * Array.length m.m_arenas) dummy_arena in
    Array.blit m.m_arenas 0 bigger 0 m.m_count;
    m.m_arenas <- bigger
  end;
  let aid = m.m_count in
  let arena =
    {
      aid;
      kind;
      home;
      values = Array.make arena_words 0;
      media = (match kind with Nvm -> Array.make arena_words 0 | Dram -> [||]);
      dirty = Bytes.make lines_per_arena '\000';
    }
  in
  m.m_arenas.(aid) <- arena;
  m.m_count <- m.m_count + 1;
  aid

let arena_of_addr m addr =
  let aid = addr lsr arena_shift in
  if aid >= m.m_count then invalid_arg "Memory: address beyond allocated arenas";
  m.m_arenas.(aid)

let offset_of_addr addr = addr land (arena_words - 1)
let line_of_offset off = off / line_words
let addr_of ~aid ~offset = (aid lsl arena_shift) lor offset

let is_nvm m addr = (arena_of_addr m addr).kind = Nvm

(* ---- cost accounting ---- *)

let access_cost m arena ~line_dirty =
  let c = Sim.costs () in
  let base =
    if line_dirty then c.Sim.Costs.cache_access
    else
      match arena.kind with
      | Dram -> c.Sim.Costs.dram_access
      | Nvm -> c.Sim.Costs.nvm_read
  in
  let remote =
    if arena.home <> Sim.socket () then c.Sim.Costs.remote_penalty else 0
  in
  ignore m;
  base + remote

(* ---- line persistence ---- *)

let commit_line_to_media arena line =
  if arena.kind = Nvm then begin
    let base = line * line_words in
    Array.blit arena.values base arena.media base line_words
  end

let clear_dirty m arena line =
  let d = Bytes.get_uint8 arena.dirty line in
  if d <> 0 then begin
    Bytes.set_uint8 arena.dirty line 0;
    Hashtbl.remove m.m_dirty_by_socket.(d - 1) (dirty_key arena.aid line)
  end

let mark_dirty m arena line socket =
  let d = Bytes.get_uint8 arena.dirty line in
  if d <> socket + 1 then begin
    if d <> 0 then
      Hashtbl.remove m.m_dirty_by_socket.(d - 1) (dirty_key arena.aid line);
    Bytes.set_uint8 arena.dirty line (socket + 1);
    Hashtbl.replace m.m_dirty_by_socket.(socket) (dirty_key arena.aid line) ()
  end

(* In flit mode a committed line's WPQ entry is dropped: its capture is now
   stale-or-equal, and replaying it at the next fence could regress media
   behind a newer write-back (the stale-WPQ artifact FliT tracking avoids). *)
let flit_prune m arena line =
  if m.m_flit then Hashtbl.remove m.m_pending_tbl (dirty_key arena.aid line)

let background_flush m arena line =
  m.m_stats.bg_flushes <- m.m_stats.bg_flushes + 1;
  commit_line_to_media arena line;
  flit_prune m arena line;
  clear_dirty m arena line

let maybe_background_flush m arena line =
  if arena.kind = Nvm && m.m_bg_period > 0 then begin
    m.m_countdown <- m.m_countdown - 1;
    if m.m_countdown <= 0 then begin
      m.m_countdown <- 1 + Sim.Rng.int m.m_rng (2 * m.m_bg_period);
      background_flush m arena line
    end
  end

(* ---- fiber-facing operations (charge simulated time) ---- *)

let read m addr =
  op_point m;
  let arena = arena_of_addr m addr in
  let off = offset_of_addr addr in
  let line = line_of_offset off in
  let line_dirty = Bytes.get_uint8 arena.dirty line <> 0 in
  Sim.tick (access_cost m arena ~line_dirty);
  m.m_stats.reads <- m.m_stats.reads + 1;
  arena.values.(off)

let write m addr v =
  op_point m;
  let arena = arena_of_addr m addr in
  let off = offset_of_addr addr in
  let line = line_of_offset off in
  Sim.tick (access_cost m arena ~line_dirty:true);
  m.m_stats.writes <- m.m_stats.writes + 1;
  arena.values.(off) <- v;
  mark_dirty m arena line (Sim.socket ());
  maybe_background_flush m arena line

(** Store that duplicates a just-issued write into a DRAM shadow (the log
    mirror): the writer's cache already holds both lines, so the copy is
    charged the flat [mirror_write] cost instead of a full [access_cost]
    (in particular, no remote penalty — the mirror line rides along in the
    writer's store buffer). Semantically identical to [write]. *)
let mirror_write m addr v =
  op_point m;
  let arena = arena_of_addr m addr in
  let off = offset_of_addr addr in
  let line = line_of_offset off in
  Sim.tick (Sim.costs ()).Sim.Costs.mirror_write;
  m.m_stats.writes <- m.m_stats.writes + 1;
  arena.values.(off) <- v;
  mark_dirty m arena line (Sim.socket ());
  maybe_background_flush m arena line

(** Zero [size] words starting at [addr], as a memset would: the stores
    dirty their cache lines (so a later flush re-persists the zeros) but
    cost is charged per line rather than per word. Used by the allocator
    when recycling blocks. *)
let scrub m addr size =
  op_point m;
  let arena = arena_of_addr m addr in
  let off = offset_of_addr addr in
  let first_line = line_of_offset off in
  let last_line = line_of_offset (off + size - 1) in
  Sim.tick ((last_line - first_line + 1) * (Sim.costs ()).Sim.Costs.cache_access);
  let socket = Sim.socket () in
  Array.fill arena.values off size 0;
  for line = first_line to last_line do
    mark_dirty m arena line socket
  done

(** Atomic compare-and-swap. The cost is charged (and a scheduling point
    taken) *before* the read-modify-write, which is then indivisible. *)
let cas m addr ~expected ~desired =
  op_point m;
  let arena = arena_of_addr m addr in
  let off = offset_of_addr addr in
  let line = line_of_offset off in
  let c = Sim.costs () in
  Sim.tick (c.Sim.Costs.cas + access_cost m arena ~line_dirty:true);
  m.m_stats.cas_ops <- m.m_stats.cas_ops + 1;
  if arena.values.(off) = expected then begin
    arena.values.(off) <- desired;
    mark_dirty m arena line (Sim.socket ());
    maybe_background_flush m arena line;
    true
  end
  else false

(** Atomic fetch-and-add, used by reader counts in the reader-writer lock. *)
let faa m addr delta =
  op_point m;
  let arena = arena_of_addr m addr in
  let off = offset_of_addr addr in
  let line = line_of_offset off in
  let c = Sim.costs () in
  Sim.tick (c.Sim.Costs.cas + access_cost m arena ~line_dirty:true);
  let old = arena.values.(off) in
  arena.values.(off) <- old + delta;
  mark_dirty m arena line (Sim.socket ());
  old

(** Asynchronous write-back of the line containing [addr]. The captured
    line contents only reach media at the next [sfence] (or clflush /
    background flush), so a crash in between loses them. *)
let clwb m addr =
  op_point m;
  let arena = arena_of_addr m addr in
  if arena.kind <> Nvm then invalid_arg "Memory.clwb: not an NVM address";
  let line = line_of_offset (offset_of_addr addr) in
  let base = line * line_words in
  if not m.m_flit then begin
    Sim.tick (Sim.costs ()).Sim.Costs.clwb_line;
    m.m_stats.clwb <- m.m_stats.clwb + 1;
    let words = Array.sub arena.values base line_words in
    m.m_pending <- { p_arena = arena.aid; p_line = line; p_words = words } :: m.m_pending;
    clear_dirty m arena line
  end
  else begin
    let c = Sim.costs () in
    if Bytes.get_uint8 arena.dirty line = 0 then begin
      (* clean line: media or the WPQ already holds the current contents —
         the flush tag says there is nothing to write back *)
      Sim.tick c.Sim.Costs.flush_tag_check;
      m.m_stats.clwb_elided <- m.m_stats.clwb_elided + 1
    end
    else begin
      let key = dirty_key arena.aid line in
      if Hashtbl.mem m.m_pending_tbl key then begin
        (* same line already queued: update the WPQ entry in place *)
        Sim.tick c.Sim.Costs.clwb_merge;
        m.m_stats.clwb_coalesced <- m.m_stats.clwb_coalesced + 1
      end
      else begin
        Sim.tick c.Sim.Costs.clwb_line;
        m.m_stats.clwb <- m.m_stats.clwb + 1
      end;
      (* capture after the tick (a yield point): a concurrent fence may have
         drained and pruned the looked-up entry meanwhile, so always
         (re-)queue the line's current contents rather than mutating a
         possibly-orphaned capture *)
      Hashtbl.replace m.m_pending_tbl key (Array.sub arena.values base line_words);
      clear_dirty m arena line
    end
  end

(** Blocking flush: the line is persisted before the call returns. *)
let clflush m addr =
  op_point m;
  let arena = arena_of_addr m addr in
  if arena.kind <> Nvm then invalid_arg "Memory.clflush: not an NVM address";
  let line = line_of_offset (offset_of_addr addr) in
  if m.m_flit
     && Bytes.get_uint8 arena.dirty line = 0
     && not (Hashtbl.mem m.m_pending_tbl (dirty_key arena.aid line))
  then begin
    (* clean and nothing queued: media already holds the line *)
    Sim.tick (Sim.costs ()).Sim.Costs.flush_tag_check;
    m.m_stats.clflush_elided <- m.m_stats.clflush_elided + 1
  end
  else begin
    Sim.tick (Sim.costs ()).Sim.Costs.clflush_line;
    m.m_stats.clflush <- m.m_stats.clflush + 1;
    commit_line_to_media arena line;
    flit_prune m arena line;
    clear_dirty m arena line
  end

(** Persistent fence: drains every pending [clwb]. *)
let sfence m =
  op_point m;
  if m.m_flit then begin
    if Hashtbl.length m.m_pending_tbl = 0 then
      (* empty WPQ: the fence retires immediately, no drain cost *)
      m.m_stats.sfence_elided <- m.m_stats.sfence_elided + 1
    else begin
      Sim.tick (Sim.costs ()).Sim.Costs.sfence;
      m.m_stats.sfence <- m.m_stats.sfence + 1;
      Hashtbl.iter
        (fun key words ->
          let aid = key / lines_per_arena and line = key mod lines_per_arena in
          let arena = m.m_arenas.(aid) in
          if arena.kind = Nvm then begin
            let base = line * line_words in
            Array.blit words 0 arena.media base line_words
          end)
        m.m_pending_tbl;
      Hashtbl.reset m.m_pending_tbl
    end
  end
  else begin
    Sim.tick (Sim.costs ()).Sim.Costs.sfence;
    m.m_stats.sfence <- m.m_stats.sfence + 1;
    List.iter
      (fun p ->
        let arena = m.m_arenas.(p.p_arena) in
        if arena.kind = Nvm then begin
          let base = p.p_line * line_words in
          Array.blit p.p_words 0 arena.media base line_words
        end)
      (List.rev m.m_pending);
    m.m_pending <- []
  end

(** Write back and invalidate the executing socket's entire cache: every
    line dirtied by this socket is persisted (NVM) or merely cleaned
    (DRAM). Cost scales with the number of dirty lines, making this the
    expensive hammer the paper says it is. *)
let wbinvd m =
  op_point m;
  let socket = Sim.socket () in
  let table = m.m_dirty_by_socket.(socket) in
  let keys = Hashtbl.fold (fun k () acc -> k :: acc) table [] in
  let flushed = List.length keys in
  let c = Sim.costs () in
  Sim.tick (c.Sim.Costs.wbinvd_base + (flushed * c.Sim.Costs.wbinvd_per_line));
  m.m_stats.wbinvd <- m.m_stats.wbinvd + 1;
  m.m_stats.wbinvd_lines <- m.m_stats.wbinvd_lines + flushed;
  List.iter
    (fun key ->
      let aid = key / lines_per_arena and line = key mod lines_per_arena in
      let arena = m.m_arenas.(aid) in
      commit_line_to_media arena line;
      flit_prune m arena line;
      Bytes.set_uint8 arena.dirty line 0;
      Hashtbl.remove table key)
    keys

(** Write back every dirty line of arena [aid] to media (blocking).
    Used by CX-PUC's persist-the-whole-replica step: clean lines cost
    nothing, dirty lines cost one [clwb] each, plus one trailing fence. *)
let clean_line_flush_cost = 12
(* issuing CLWB for a line that turns out to be clean still costs the
   instruction; this is what makes walking a huge address range more
   expensive than WBINVD for large structures *)

let flush_arena m aid =
  op_point m;
  let arena = m.m_arenas.(aid) in
  if arena.kind <> Nvm then invalid_arg "Memory.flush_arena: not an NVM arena";
  let c = Sim.costs () in
  Sim.tick (lines_per_arena * clean_line_flush_cost);
  for line = 0 to lines_per_arena - 1 do
    if Bytes.get_uint8 arena.dirty line <> 0 then begin
      Sim.tick c.Sim.Costs.clwb_line;
      m.m_stats.clwb <- m.m_stats.clwb + 1;
      commit_line_to_media arena line;
      flit_prune m arena line;
      clear_dirty m arena line
    end
  done

(* ---- crash and inspection (no simulated cost: harness-side) ---- *)

(** Full-system power failure: caches and DRAM vanish; only NVM media
    survives. The coherent view of every NVM arena is rebuilt from media;
    DRAM arenas are zeroed. *)
let crash m =
  for aid = 0 to m.m_count - 1 do
    let arena = m.m_arenas.(aid) in
    (match arena.kind with
     | Nvm -> Array.blit arena.media 0 arena.values 0 arena_words
     | Dram -> Array.fill arena.values 0 arena_words 0);
    Bytes.fill arena.dirty 0 (Bytes.length arena.dirty) '\000'
  done;
  Array.iter Hashtbl.reset m.m_dirty_by_socket;
  m.m_pending <- [];
  Hashtbl.reset m.m_pending_tbl

(** Read a word without charging simulated time (test/assertion helper). *)
let peek m addr = (arena_of_addr m addr).values.(offset_of_addr addr)

(** Read a word as it would be recovered after a crash right now. *)
let peek_media m addr =
  let arena = arena_of_addr m addr in
  match arena.kind with
  | Nvm -> arena.media.(offset_of_addr addr)
  | Dram -> 0

(** Write a word without charging simulated time (test setup helper). *)
let poke m addr v = (arena_of_addr m addr).values.(offset_of_addr addr) <- v

let arena_kind m aid = m.m_arenas.(aid).kind
let arena_count m = m.m_count

(** Number of write-backs currently queued in the write-pending queue. *)
let pending_write_backs m =
  if m.m_flit then Hashtbl.length m.m_pending_tbl else List.length m.m_pending

(** Count of currently dirty (unpersisted) lines across all NVM arenas. *)
let dirty_nvm_lines m =
  let n = ref 0 in
  Array.iter
    (fun tbl -> Hashtbl.iter (fun key () ->
         let aid = key / lines_per_arena in
         if m.m_arenas.(aid).kind = Nvm then incr n) tbl)
    m.m_dirty_by_socket;
  !n
