(** Simulated byte-addressable memory with an explicit cache model.

    The address space is divided into fixed-size arenas, each homed on a
    NUMA socket and backed by either DRAM (volatile) or NVM. All stores
    first take effect in the coherent view ([values]) and dirty their cache
    line; NVM arenas additionally carry a [media] array holding the last
    *persisted* value of every word. A line's contents reach media only via
    [clwb]+[sfence], [clflush], [wbinvd], or a random seeded *background
    flush* — the cache-coherence-induced write-backs the paper warns about
    (§2.2, §4.1). [crash] discards everything except media.

    Addresses are plain ints: [addr = arena_id * arena_words + offset].
    Address 0 is reserved and plays the role of the null pointer. *)

let arena_shift = 16
let arena_words = 1 lsl arena_shift (* 65536 words per arena *)
let line_words = 8
let lines_per_arena = arena_words / line_words

let null = 0

type kind = Dram | Nvm

type arena = {
  aid : int;
  kind : kind;
  home : int; (* socket the arena is homed on *)
  values : int array; (* coherent view, what loads observe *)
  media : int array; (* persisted view; length 0 for DRAM arenas *)
  dirty : Bytes.t; (* per line: 0 = clean, 1 + socket = dirty in that socket's cache *)
}

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable cas_ops : int;
  mutable clwb : int;          (** CLWBs that queued a real media write-back *)
  mutable clflush : int;       (** CLFLUSHes that performed a real media write *)
  mutable sfence : int;        (** SFENCEs that drained a non-empty WPQ *)
  mutable wbinvd : int;
  mutable wbinvd_lines : int;
  mutable bg_flushes : int;
  (* FliT flush-elimination accounting (all 0 unless [set_flit m true]): *)
  mutable clwb_elided : int;    (** CLWB on a clean, already-persisted line *)
  mutable clwb_coalesced : int; (** CLWB merged into an existing WPQ entry *)
  mutable clflush_elided : int; (** CLFLUSH on a clean line with current media *)
  mutable sfence_elided : int;  (** SFENCE with an empty write-pending queue *)
  (* static per-site policy accounting ([set_policy]; all 0 by default): *)
  mutable policy_elided : int;     (** instructions removed by [Persist.Elide] *)
  mutable policy_downgraded : int; (** CLFLUSHes rewritten to CLWB *)
  mutable policy_deferred : int;   (** SFENCEs left to the next emitted fence *)
}

let new_stats () =
  { reads = 0; writes = 0; cas_ops = 0; clwb = 0; clflush = 0; sfence = 0;
    wbinvd = 0; wbinvd_lines = 0; bg_flushes = 0;
    clwb_elided = 0; clwb_coalesced = 0; clflush_elided = 0; sfence_elided = 0;
    policy_elided = 0; policy_downgraded = 0; policy_deferred = 0 }

type pending = { p_arena : int; p_line : int; p_words : int array }

let dirty_key aid line = (aid * lines_per_arena) + line

(* ---- incremental state hashing (model-checking support) ----

   The explorer (lib/check/explore.ml) deduplicates global states by a
   fingerprint of (coherent values, media, dirty map, write-pending queue).
   Recomputing those over every arena at every scheduling point would be
   quadratic, so each component is maintained *incrementally*: the value and
   media hashes are XORs of a per-word hash (zero words contribute nothing,
   so a fresh arena costs nothing), the dirty hash an XOR of per-line
   contributions, and the WPQ hash either a fold over the ordered list
   (non-flit: drain order matters) or an XOR over the keyed table (flit). *)

let mix x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x1B03738712FAD5C9 in
  let x = x lxor (x lsr 27) in
  let x = x * 0x2545F4914F6CDD1D in
  x lxor (x lsr 31)

let h2 a b = mix (a + (mix b * 0x27D4EB2F165667C5))
let word_h addr v = if v = 0 then 0 else h2 addr v
let words_h key words = Array.fold_left h2 (mix key) words
let pending_entry_h key words = h2 key (words_h key words)

let dummy_arena =
  { aid = -1; kind = Dram; home = 0; values = [||]; media = [||];
    dirty = Bytes.create 0 }

type t = {
  mutable m_arenas : arena array;
  mutable m_count : int;
  m_dirty_by_socket : (int, unit) Hashtbl.t array;
  mutable m_pending : pending list;
  mutable m_flit : bool;
  m_pending_tbl : (int, int array) Hashtbl.t;
      (* flit-mode WPQ: dirty_key -> captured line words (newest capture wins) *)
  m_rng : Sim.Rng.t;
  m_bg_period : int;
  mutable m_countdown : int;
  m_stats : stats;
  mutable m_op_index : int;
  mutable m_crash_hook : (int -> unit) option;
  (* incremental state fingerprints, see the comment at [mix] *)
  mutable m_value_hash : int;
  mutable m_media_hash : int;
  mutable m_dirty_hash : int;
  mutable m_wpq_hash : int;
  mutable m_access_hook : (int -> int -> bool -> int -> unit) option;
      (* called at the *effect* of every fiber-facing operation with
         (dirty_key | -1 for whole-cache ops, word address | -1, is_write,
         value involved); the explorer derives per-step cache-line
         footprints and fine-grained state hashes from it *)
  m_tel : Telemetry.Registry.t option;
      (* telemetry registry captured at [make]; [None] costs one branch per
         operation and nothing else. Recording never ticks simulated time,
         so an attached registry cannot change a run's behaviour. *)
  mutable m_policy : Persist.policy;
      (* per-site persistency policy consulted by every flush/fence
         primitive before it emits; the all-[Emit] default reproduces the
         hardware instruction stream exactly as written *)
}

let make ?(seed = 42L) ?(sockets = 2) ?(bg_period = 50_000) ?(flit = false) () =
  let m =
    {
      m_arenas = Array.make 64 dummy_arena;
      m_count = 0;
      m_dirty_by_socket = Array.init sockets (fun _ -> Hashtbl.create 4096);
      m_pending = [];
      m_flit = flit;
      m_pending_tbl = Hashtbl.create 256;
      m_rng = Sim.Rng.create seed;
      m_bg_period = bg_period;
      m_countdown = (if bg_period = 0 then max_int else bg_period);
      m_stats = new_stats ();
      m_op_index = 0;
      m_crash_hook = None;
      m_value_hash = 0;
      m_media_hash = 0;
      m_dirty_hash = 0;
      m_wpq_hash = 0;
      m_access_hook = None;
      m_tel = Telemetry.Registry.current ();
      m_policy = Persist.default ();
    }
  in
  m

(* Per-primitive telemetry: a count and a simulated-ns total per operation
   kind, e.g. [nvm.clwb] / [nvm.clwb_ns]. *)
let tel_op m name cost =
  match m.m_tel with
  | None -> ()
  | Some r ->
    if Telemetry.Registry.enabled r then begin
      Telemetry.Registry.add_to r ("nvm." ^ name) 1;
      Telemetry.Registry.add_to r ("nvm." ^ name ^ "_ns") cost
    end

(* Per-site flush/fence telemetry ([Persist.split_counter] is the reader).
   An *emitted* instruction records its count and its simulated-ns share
   ([nvm.clwb@log.persist_entry] / [nvm.clwb_ns@log.persist_entry]); the
   elision classes record a count under a metric naming the class
   ([nvm.clwb_flit_elided@...], [nvm.clflush_policy_elided@...], ...), so
   the profile table and the inference ranking can separate what actually
   reached the bus from what a layer removed. *)
let tel_emit m prim site cost =
  match m.m_tel with
  | None -> ()
  | Some r ->
    if Telemetry.Registry.enabled r then begin
      let s = Persist.to_string site in
      Telemetry.Registry.add_to r ("nvm." ^ prim ^ "@" ^ s) 1;
      Telemetry.Registry.add_to r ("nvm." ^ prim ^ "_ns@" ^ s) cost
    end

let tel_site_count m metric site =
  match m.m_tel with
  | None -> ()
  | Some r ->
    if Telemetry.Registry.enabled r then
      Telemetry.Registry.add_to r
        ("nvm." ^ metric ^ "@" ^ Persist.to_string site) 1

let tel_instant m name =
  match m.m_tel with
  | None -> ()
  | Some r -> Telemetry.Registry.instant r name

let stats m = m.m_stats

(** Whether FliT-style flush elimination is active. *)
let flit_enabled m = m.m_flit

(** The installed per-site persistency policy (all-[Emit] by default). *)
let policy m = m.m_policy

(** Install a per-site persistency policy. Every flush/fence primitive
    consults it before emitting: a policy-removed instruction charges no
    simulated time, takes no scheduling point and has no effect — it is
    gone from the instruction stream, which is exactly the static claim
    the [optimize-persist] oracle must then prove safe. Orthogonal to
    [set_flit]: FliT elides dynamically whatever the policy still emits. *)
let set_policy m p = m.m_policy <- p

let policy_action m site = Persist.get m.m_policy site

(** Enable/disable FliT-style flush tracking. In flit mode the write-pending
    queue is keyed by cache line, so a CLWB on a line that is already queued
    coalesces into the existing WPQ entry, a CLWB/CLFLUSH on a clean line
    whose media is current is a counted no-op, and an SFENCE with an empty
    WPQ charges no drain cost. Any in-flight pending write-backs survive the
    switch in either direction. *)
let wpq_hash_of_list pending =
  (* ordered: drain order decides which capture of a line reaches media last *)
  List.fold_right
    (fun p acc -> h2 (pending_entry_h (dirty_key p.p_arena p.p_line) p.p_words) acc)
    pending 0

let wpq_hash_of_tbl tbl =
  Hashtbl.fold (fun key words acc -> acc lxor pending_entry_h key words) tbl 0

let set_flit m on =
  if on && not m.m_flit then begin
    (* list -> table, oldest first so the newest capture of a line wins *)
    List.iter
      (fun p -> Hashtbl.replace m.m_pending_tbl (dirty_key p.p_arena p.p_line) p.p_words)
      (List.rev m.m_pending);
    m.m_pending <- [];
    m.m_wpq_hash <- wpq_hash_of_tbl m.m_pending_tbl
  end
  else if (not on) && m.m_flit then begin
    Hashtbl.iter
      (fun key words ->
        let aid = key / lines_per_arena and line = key mod lines_per_arena in
        m.m_pending <- { p_arena = aid; p_line = line; p_words = words } :: m.m_pending)
      m.m_pending_tbl;
    Hashtbl.reset m.m_pending_tbl;
    m.m_wpq_hash <- wpq_hash_of_list m.m_pending
  end;
  m.m_flit <- on

(* ---- crash-hook API (fuzzing instrumentation) ---- *)

(** Number of fiber-facing memory operations issued so far. Every load,
    store, CAS, FAA, scrub, flush and fence counts as one operation, so an
    operation index names one precise point in the global (simulated-time-
    ordered) sequence of memory events. *)
let op_index m = m.m_op_index

(** Install [hook], called with the operation index at the *start* of every
    fiber-facing operation — before the operation takes any effect. A hook
    that raises aborts the executing fiber mid-access, which models a
    full-system power failure immediately before that operation: the crash
    fuzzer uses this to cut a run at an exact memory-operation index rather
    than at a simulated time. *)
let set_crash_hook m hook = m.m_crash_hook <- Some hook

let clear_crash_hook m = m.m_crash_hook <- None

let op_point m =
  let i = m.m_op_index in
  m.m_op_index <- i + 1;
  (match m.m_crash_hook with None -> () | Some hook -> hook i);
  (* Controlled-scheduler mode: every fiber-facing memory operation is a
     scheduling choice point, taken *before* the operation has any effect
     so the explorer observes a consistent between-operations state. *)
  if Sim.controlled () then Sim.yield ()

(* ---- access-footprint hook (model-checking instrumentation) ---- *)

(** Install [hook], called at the effect point of every fiber-facing
    operation with [(key, addr, is_write, value)]: [key] is the
    [dirty_key] of the touched cache line (or [-1] for operations with a
    whole-cache footprint: SFENCE, WBINVD, arena flushes), [addr] the
    word address involved ([-1] when the operation touches a whole line
    or cache rather than a word), [is_write] whether the operation can
    change persistent-visible state, and [value] the word read or written
    (0 for flush/fence ops). The explorer derives per-step footprints for
    DPOR-style sleep sets (line granularity, via [key]) and last-access
    state hashes (word granularity, via [addr]) from this. *)
let set_access_hook m hook = m.m_access_hook <- Some hook

let clear_access_hook m = m.m_access_hook <- None

let access_point m key ~addr ~write v =
  match m.m_access_hook with None -> () | Some hook -> hook key addr write v

(* ---- state fingerprints (explorer) ---- *)

let value_hash m = m.m_value_hash
let media_hash m = m.m_media_hash
let dirty_hash m = m.m_dirty_hash
let wpq_hash m = m.m_wpq_hash

(** Allocate a fresh arena homed on [home]. Returns the arena id. *)
let new_arena m ~kind ~home =
  if m.m_count = Array.length m.m_arenas then begin
    let bigger = Array.make (2 * Array.length m.m_arenas) dummy_arena in
    Array.blit m.m_arenas 0 bigger 0 m.m_count;
    m.m_arenas <- bigger
  end;
  let aid = m.m_count in
  let arena =
    {
      aid;
      kind;
      home;
      values = Array.make arena_words 0;
      media = (match kind with Nvm -> Array.make arena_words 0 | Dram -> [||]);
      dirty = Bytes.make lines_per_arena '\000';
    }
  in
  m.m_arenas.(aid) <- arena;
  m.m_count <- m.m_count + 1;
  aid

let arena_of_addr m addr =
  let aid = addr lsr arena_shift in
  if aid >= m.m_count then invalid_arg "Memory: address beyond allocated arenas";
  m.m_arenas.(aid)

let offset_of_addr addr = addr land (arena_words - 1)
let line_of_offset off = off / line_words
let addr_of ~aid ~offset = (aid lsl arena_shift) lor offset

let is_nvm m addr = (arena_of_addr m addr).kind = Nvm

(* Every mutation of [values]/[media] funnels through these two setters so
   the incremental fingerprints can never drift from the arrays. *)

let set_value m arena off v =
  let old = arena.values.(off) in
  if old <> v then begin
    let addr = addr_of ~aid:arena.aid ~offset:off in
    m.m_value_hash <-
      m.m_value_hash lxor word_h addr old lxor word_h addr v;
    arena.values.(off) <- v
  end

let set_media_word m arena off v =
  let old = arena.media.(off) in
  if old <> v then begin
    let addr = addr_of ~aid:arena.aid ~offset:off in
    m.m_media_hash <-
      m.m_media_hash lxor word_h addr old lxor word_h addr v;
    arena.media.(off) <- v
  end

(* ---- cost accounting ---- *)

let access_cost m arena ~line_dirty =
  let c = Sim.costs () in
  let base =
    if line_dirty then c.Sim.Costs.cache_access
    else
      match arena.kind with
      | Dram -> c.Sim.Costs.dram_access
      | Nvm -> c.Sim.Costs.nvm_read
  in
  let remote =
    if arena.home <> Sim.socket () then c.Sim.Costs.remote_penalty else 0
  in
  ignore m;
  base + remote

(* ---- line persistence ---- *)

let commit_line_to_media m arena line =
  if arena.kind = Nvm then begin
    let base = line * line_words in
    for i = 0 to line_words - 1 do
      set_media_word m arena (base + i) arena.values.(base + i)
    done
  end

let clear_dirty m arena line =
  let d = Bytes.get_uint8 arena.dirty line in
  if d <> 0 then begin
    let key = dirty_key arena.aid line in
    m.m_dirty_hash <- m.m_dirty_hash lxor h2 key d;
    Bytes.set_uint8 arena.dirty line 0;
    Hashtbl.remove m.m_dirty_by_socket.(d - 1) key
  end

let mark_dirty m arena line socket =
  let d = Bytes.get_uint8 arena.dirty line in
  if d <> socket + 1 then begin
    let key = dirty_key arena.aid line in
    if d <> 0 then begin
      m.m_dirty_hash <- m.m_dirty_hash lxor h2 key d;
      Hashtbl.remove m.m_dirty_by_socket.(d - 1) key
    end;
    m.m_dirty_hash <- m.m_dirty_hash lxor h2 key (socket + 1);
    Bytes.set_uint8 arena.dirty line (socket + 1);
    Hashtbl.replace m.m_dirty_by_socket.(socket) key ()
  end

(* In flit mode a committed line's WPQ entry is dropped: its capture is now
   stale-or-equal, and replaying it at the next fence could regress media
   behind a newer write-back (the stale-WPQ artifact FliT tracking avoids). *)
let flit_prune m arena line =
  if m.m_flit then begin
    let key = dirty_key arena.aid line in
    match Hashtbl.find_opt m.m_pending_tbl key with
    | None -> ()
    | Some words ->
      m.m_wpq_hash <- m.m_wpq_hash lxor pending_entry_h key words;
      Hashtbl.remove m.m_pending_tbl key
  end

let background_flush m arena line =
  m.m_stats.bg_flushes <- m.m_stats.bg_flushes + 1;
  commit_line_to_media m arena line;
  flit_prune m arena line;
  clear_dirty m arena line

let maybe_background_flush m arena line =
  if arena.kind = Nvm && m.m_bg_period > 0 then begin
    m.m_countdown <- m.m_countdown - 1;
    if m.m_countdown <= 0 then begin
      m.m_countdown <- 1 + Sim.Rng.int m.m_rng (2 * m.m_bg_period);
      background_flush m arena line
    end
  end

(* ---- fiber-facing operations (charge simulated time) ---- *)

let read m addr =
  op_point m;
  let arena = arena_of_addr m addr in
  let off = offset_of_addr addr in
  let line = line_of_offset off in
  let line_dirty = Bytes.get_uint8 arena.dirty line <> 0 in
  let cost = access_cost m arena ~line_dirty in
  Sim.tick cost;
  tel_op m "read" cost;
  m.m_stats.reads <- m.m_stats.reads + 1;
  let v = arena.values.(off) in
  access_point m (dirty_key arena.aid line) ~addr ~write:false v;
  v

let write m addr v =
  op_point m;
  let arena = arena_of_addr m addr in
  let off = offset_of_addr addr in
  let line = line_of_offset off in
  let cost = access_cost m arena ~line_dirty:true in
  Sim.tick cost;
  tel_op m "write" cost;
  m.m_stats.writes <- m.m_stats.writes + 1;
  set_value m arena off v;
  mark_dirty m arena line (Sim.socket ());
  access_point m (dirty_key arena.aid line) ~addr ~write:true v;
  maybe_background_flush m arena line

(** Store that duplicates a just-issued write into a DRAM shadow (the log
    mirror): the writer's cache already holds both lines, so the copy is
    charged the flat [mirror_write] cost instead of a full [access_cost]
    (in particular, no remote penalty — the mirror line rides along in the
    writer's store buffer). Semantically identical to [write]. *)
let mirror_write m addr v =
  op_point m;
  let arena = arena_of_addr m addr in
  let off = offset_of_addr addr in
  let line = line_of_offset off in
  let cost = (Sim.costs ()).Sim.Costs.mirror_write in
  Sim.tick cost;
  tel_op m "mirror_write" cost;
  m.m_stats.writes <- m.m_stats.writes + 1;
  set_value m arena off v;
  mark_dirty m arena line (Sim.socket ());
  access_point m (dirty_key arena.aid line) ~addr ~write:true v;
  maybe_background_flush m arena line

(** Zero [size] words starting at [addr], as a memset would: the stores
    dirty their cache lines (so a later flush re-persists the zeros) but
    cost is charged per line rather than per word. Used by the allocator
    when recycling blocks. *)
let scrub m addr size =
  op_point m;
  let arena = arena_of_addr m addr in
  let off = offset_of_addr addr in
  let first_line = line_of_offset off in
  let last_line = line_of_offset (off + size - 1) in
  let cost = (last_line - first_line + 1) * (Sim.costs ()).Sim.Costs.cache_access in
  Sim.tick cost;
  tel_op m "scrub" cost;
  let socket = Sim.socket () in
  for i = off to off + size - 1 do
    set_value m arena i 0
  done;
  for line = first_line to last_line do
    mark_dirty m arena line socket;
    access_point m (dirty_key arena.aid line) ~addr:(addr - off + (line * line_words)) ~write:true 0
  done

(** Atomic compare-and-swap. The cost is charged (and a scheduling point
    taken) *before* the read-modify-write, which is then indivisible. *)
let cas m addr ~expected ~desired =
  op_point m;
  let arena = arena_of_addr m addr in
  let off = offset_of_addr addr in
  let line = line_of_offset off in
  let c = Sim.costs () in
  let cost = c.Sim.Costs.cas + access_cost m arena ~line_dirty:true in
  Sim.tick cost;
  tel_op m "cas" cost;
  m.m_stats.cas_ops <- m.m_stats.cas_ops + 1;
  (* the hook fires after the compare so a failed CAS registers as a plain
     read: it changes nothing, so treating it as a write would spuriously
     wake every parked fiber in the explorer's await machinery (two CAS
     spinners would then wake each other forever). Read-vs-write conflicts
     still give the sleep sets the dependency they need. *)
  if arena.values.(off) = expected then begin
    access_point m (dirty_key arena.aid line) ~addr ~write:true expected;
    set_value m arena off desired;
    mark_dirty m arena line (Sim.socket ());
    maybe_background_flush m arena line;
    true
  end
  else begin
    access_point m (dirty_key arena.aid line) ~addr ~write:false
      arena.values.(off);
    false
  end

(** Atomic fetch-and-add, used by reader counts in the reader-writer lock. *)
let faa m addr delta =
  op_point m;
  let arena = arena_of_addr m addr in
  let off = offset_of_addr addr in
  let line = line_of_offset off in
  let c = Sim.costs () in
  let cost = c.Sim.Costs.cas + access_cost m arena ~line_dirty:true in
  Sim.tick cost;
  tel_op m "faa" cost;
  let old = arena.values.(off) in
  set_value m arena off (old + delta);
  mark_dirty m arena line (Sim.socket ());
  access_point m (dirty_key arena.aid line) ~addr ~write:true old;
  old

(** Asynchronous write-back of the line containing [addr]. The captured
    line contents only reach media at the next [sfence] (or clflush /
    background flush), so a crash in between loses them. [site] is
    mandatory: every write-back belongs to exactly one [Persist.site],
    whose policy is consulted first — [Elide] removes the instruction
    entirely (no cost, no scheduling point, no effect). *)
let clwb ~site m addr =
  match policy_action m site with
  | Persist.Elide ->
    m.m_stats.policy_elided <- m.m_stats.policy_elided + 1;
    tel_site_count m "clwb_policy_elided" site
  | Persist.Emit | Persist.Downgrade_to_clwb | Persist.Defer_to_next_fence ->
  op_point m;
  let arena = arena_of_addr m addr in
  if arena.kind <> Nvm then invalid_arg "Memory.clwb: not an NVM address";
  let line = line_of_offset (offset_of_addr addr) in
  let base = line * line_words in
  let key = dirty_key arena.aid line in
  if not m.m_flit then begin
    Sim.tick (Sim.costs ()).Sim.Costs.clwb_line;
    tel_op m "clwb" (Sim.costs ()).Sim.Costs.clwb_line;
    tel_emit m "clwb" site (Sim.costs ()).Sim.Costs.clwb_line;
    m.m_stats.clwb <- m.m_stats.clwb + 1;
    let words = Array.sub arena.values base line_words in
    m.m_pending <- { p_arena = arena.aid; p_line = line; p_words = words } :: m.m_pending;
    m.m_wpq_hash <- h2 (pending_entry_h key words) m.m_wpq_hash;
    clear_dirty m arena line;
    access_point m key ~addr:(-1) ~write:true 0
  end
  else begin
    let c = Sim.costs () in
    if Bytes.get_uint8 arena.dirty line = 0 then begin
      (* clean line: media or the WPQ already holds the current contents —
         the flush tag says there is nothing to write back *)
      Sim.tick c.Sim.Costs.flush_tag_check;
      tel_op m "clwb_elided" c.Sim.Costs.flush_tag_check;
      tel_site_count m "clwb_flit_elided" site;
      m.m_stats.clwb_elided <- m.m_stats.clwb_elided + 1;
      access_point m key ~addr:(-1) ~write:false 0
    end
    else begin
      if Hashtbl.mem m.m_pending_tbl key then begin
        (* same line already queued: update the WPQ entry in place *)
        Sim.tick c.Sim.Costs.clwb_merge;
        tel_op m "clwb_coalesced" c.Sim.Costs.clwb_merge;
        tel_emit m "clwb" site c.Sim.Costs.clwb_merge;
        m.m_stats.clwb_coalesced <- m.m_stats.clwb_coalesced + 1
      end
      else begin
        Sim.tick c.Sim.Costs.clwb_line;
        tel_op m "clwb" c.Sim.Costs.clwb_line;
        tel_emit m "clwb" site c.Sim.Costs.clwb_line;
        m.m_stats.clwb <- m.m_stats.clwb + 1
      end;
      (* capture after the tick (a yield point): a concurrent fence may have
         drained and pruned the looked-up entry meanwhile, so always
         (re-)queue the line's current contents rather than mutating a
         possibly-orphaned capture *)
      (match Hashtbl.find_opt m.m_pending_tbl key with
       | Some old -> m.m_wpq_hash <- m.m_wpq_hash lxor pending_entry_h key old
       | None -> ());
      let words = Array.sub arena.values base line_words in
      Hashtbl.replace m.m_pending_tbl key words;
      m.m_wpq_hash <- m.m_wpq_hash lxor pending_entry_h key words;
      clear_dirty m arena line;
      access_point m key ~addr:(-1) ~write:true 0
    end
  end

(** Blocking flush: the line is persisted before the call returns.
    Policy: [Elide] removes the instruction; [Downgrade_to_clwb] (and
    [Defer_to_next_fence], which means the same thing for a blocking
    flush) replaces it with an asynchronous [clwb] of the same line, so
    the contents reach media only at the next emitted fence. Both the
    FliT clean-line elision and the policy classes are surfaced per site
    — the unified accounting [clwb] always had. *)
let clflush ~site m addr =
  match policy_action m site with
  | Persist.Elide ->
    m.m_stats.policy_elided <- m.m_stats.policy_elided + 1;
    tel_site_count m "clflush_policy_elided" site
  | Persist.Downgrade_to_clwb | Persist.Defer_to_next_fence ->
    m.m_stats.policy_downgraded <- m.m_stats.policy_downgraded + 1;
    tel_site_count m "clflush_downgraded" site;
    clwb ~site m addr
  | Persist.Emit ->
  op_point m;
  let arena = arena_of_addr m addr in
  if arena.kind <> Nvm then invalid_arg "Memory.clflush: not an NVM address";
  let line = line_of_offset (offset_of_addr addr) in
  if m.m_flit
     && Bytes.get_uint8 arena.dirty line = 0
     && not (Hashtbl.mem m.m_pending_tbl (dirty_key arena.aid line))
  then begin
    (* clean and nothing queued: media already holds the line *)
    Sim.tick (Sim.costs ()).Sim.Costs.flush_tag_check;
    tel_op m "clflush_elided" (Sim.costs ()).Sim.Costs.flush_tag_check;
    tel_site_count m "clflush_flit_elided" site;
    m.m_stats.clflush_elided <- m.m_stats.clflush_elided + 1;
    access_point m (dirty_key arena.aid line) ~addr:(-1) ~write:false 0
  end
  else begin
    Sim.tick (Sim.costs ()).Sim.Costs.clflush_line;
    tel_op m "clflush" (Sim.costs ()).Sim.Costs.clflush_line;
    tel_emit m "clflush" site (Sim.costs ()).Sim.Costs.clflush_line;
    m.m_stats.clflush <- m.m_stats.clflush + 1;
    commit_line_to_media m arena line;
    flit_prune m arena line;
    clear_dirty m arena line;
    access_point m (dirty_key arena.aid line) ~addr:(-1) ~write:true 0
  end

(** Persistent fence: drains every pending [clwb]. *)
let drain_pending_words m aid line words =
  let arena = m.m_arenas.(aid) in
  if arena.kind = Nvm then begin
    let base = line * line_words in
    for i = 0 to line_words - 1 do
      set_media_word m arena (base + i) words.(i)
    done
  end

let sfence ~site m =
  match policy_action m site with
  | Persist.Elide ->
    (* the fence is gone; any queued write-backs stay pending and drain at
       the next emitted fence — or are lost to a crash, which is exactly
       the window the admission oracle has to clear *)
    m.m_stats.policy_elided <- m.m_stats.policy_elided + 1;
    tel_site_count m "sfence_policy_elided" site
  | Persist.Defer_to_next_fence ->
    m.m_stats.policy_deferred <- m.m_stats.policy_deferred + 1;
    tel_site_count m "sfence_deferred" site
  | Persist.Emit | Persist.Downgrade_to_clwb ->
  op_point m;
  if m.m_flit then begin
    if Hashtbl.length m.m_pending_tbl = 0 then begin
      (* empty WPQ: the fence retires immediately, no drain cost *)
      tel_op m "sfence_elided" 0;
      tel_site_count m "sfence_flit_elided" site;
      m.m_stats.sfence_elided <- m.m_stats.sfence_elided + 1;
      access_point m (-1) ~addr:(-1) ~write:false 0
    end
    else begin
      Sim.tick (Sim.costs ()).Sim.Costs.sfence;
      tel_op m "sfence" (Sim.costs ()).Sim.Costs.sfence;
      tel_emit m "sfence" site (Sim.costs ()).Sim.Costs.sfence;
      tel_instant m "sfence";
      m.m_stats.sfence <- m.m_stats.sfence + 1;
      Hashtbl.iter
        (fun key words ->
          drain_pending_words m (key / lines_per_arena) (key mod lines_per_arena)
            words)
        m.m_pending_tbl;
      Hashtbl.reset m.m_pending_tbl;
      m.m_wpq_hash <- 0;
      access_point m (-1) ~addr:(-1) ~write:true 0
    end
  end
  else begin
    Sim.tick (Sim.costs ()).Sim.Costs.sfence;
    tel_op m "sfence" (Sim.costs ()).Sim.Costs.sfence;
    tel_emit m "sfence" site (Sim.costs ()).Sim.Costs.sfence;
    tel_instant m "sfence";
    m.m_stats.sfence <- m.m_stats.sfence + 1;
    List.iter
      (fun p -> drain_pending_words m p.p_arena p.p_line p.p_words)
      (List.rev m.m_pending);
    m.m_pending <- [];
    m.m_wpq_hash <- 0;
    access_point m (-1) ~addr:(-1) ~write:true 0
  end

(** Write back and invalidate the executing socket's entire cache: every
    line dirtied by this socket is persisted (NVM) or merely cleaned
    (DRAM). Cost scales with the number of dirty lines, making this the
    expensive hammer the paper says it is. *)
let wbinvd ~site m =
  match policy_action m site with
  | Persist.Elide ->
    m.m_stats.policy_elided <- m.m_stats.policy_elided + 1;
    tel_site_count m "wbinvd_policy_elided" site
  | Persist.Emit | Persist.Downgrade_to_clwb | Persist.Defer_to_next_fence ->
  op_point m;
  let socket = Sim.socket () in
  let table = m.m_dirty_by_socket.(socket) in
  let keys = Hashtbl.fold (fun k () acc -> k :: acc) table [] in
  let flushed = List.length keys in
  let c = Sim.costs () in
  let cost = c.Sim.Costs.wbinvd_base + (flushed * c.Sim.Costs.wbinvd_per_line) in
  Sim.tick cost;
  tel_op m "wbinvd" cost;
  tel_emit m "wbinvd" site cost;
  tel_instant m "wbinvd";
  m.m_stats.wbinvd <- m.m_stats.wbinvd + 1;
  m.m_stats.wbinvd_lines <- m.m_stats.wbinvd_lines + flushed;
  List.iter
    (fun key ->
      let aid = key / lines_per_arena and line = key mod lines_per_arena in
      let arena = m.m_arenas.(aid) in
      commit_line_to_media m arena line;
      flit_prune m arena line;
      clear_dirty m arena line)
    keys;
  access_point m (-1) ~addr:(-1) ~write:true 0

(** Write back every dirty line of arena [aid] to media (blocking).
    Used by CX-PUC's persist-the-whole-replica step: clean lines cost
    nothing, dirty lines cost one [clwb] each, plus one trailing fence. *)
let clean_line_flush_cost = 12
(* issuing CLWB for a line that turns out to be clean still costs the
   instruction; this is what makes walking a huge address range more
   expensive than WBINVD for large structures *)

let flush_arena ~site m aid =
  match policy_action m site with
  | Persist.Elide ->
    m.m_stats.policy_elided <- m.m_stats.policy_elided + 1;
    tel_site_count m "flush_arena_policy_elided" site
  | Persist.Emit | Persist.Downgrade_to_clwb | Persist.Defer_to_next_fence ->
  op_point m;
  let arena = m.m_arenas.(aid) in
  if arena.kind <> Nvm then invalid_arg "Memory.flush_arena: not an NVM arena";
  let c = Sim.costs () in
  let total = ref (lines_per_arena * clean_line_flush_cost) in
  Sim.tick (lines_per_arena * clean_line_flush_cost);
  for line = 0 to lines_per_arena - 1 do
    if Bytes.get_uint8 arena.dirty line <> 0 then begin
      Sim.tick c.Sim.Costs.clwb_line;
      total := !total + c.Sim.Costs.clwb_line;
      m.m_stats.clwb <- m.m_stats.clwb + 1;
      commit_line_to_media m arena line;
      flit_prune m arena line;
      clear_dirty m arena line
    end
  done;
  tel_op m "flush_arena" !total;
  tel_emit m "flush_arena" site !total;
  access_point m (-1) ~addr:(-1) ~write:true 0

(* ---- crash and inspection (no simulated cost: harness-side) ---- *)

(** Full-system power failure: caches and DRAM vanish; only NVM media
    survives. The coherent view of every NVM arena is rebuilt from media;
    DRAM arenas are zeroed. *)
let crash m =
  tel_instant m "crash";
  for aid = 0 to m.m_count - 1 do
    let arena = m.m_arenas.(aid) in
    (match arena.kind with
     | Nvm -> Array.blit arena.media 0 arena.values 0 arena_words
     | Dram -> Array.fill arena.values 0 arena_words 0);
    Bytes.fill arena.dirty 0 (Bytes.length arena.dirty) '\000'
  done;
  Array.iter Hashtbl.reset m.m_dirty_by_socket;
  m.m_pending <- [];
  Hashtbl.reset m.m_pending_tbl;
  (* post-crash the coherent view of NVM equals media and DRAM is all
     zeroes, so the value fingerprint collapses to the media fingerprint
     and the dirty/WPQ fingerprints to empty — no rescan needed *)
  m.m_value_hash <- m.m_media_hash;
  m.m_dirty_hash <- 0;
  m.m_wpq_hash <- 0

(** Read a word without charging simulated time (test/assertion helper). *)
let peek m addr = (arena_of_addr m addr).values.(offset_of_addr addr)

(** Read a word as it would be recovered after a crash right now. *)
let peek_media m addr =
  let arena = arena_of_addr m addr in
  match arena.kind with
  | Nvm -> arena.media.(offset_of_addr addr)
  | Dram -> 0

(** Write a word without charging simulated time (test setup helper). *)
let poke m addr v = set_value m (arena_of_addr m addr) (offset_of_addr addr) v

let arena_kind m aid = m.m_arenas.(aid).kind
let arena_count m = m.m_count

(** Number of write-backs currently queued in the write-pending queue. *)
let pending_write_backs m =
  if m.m_flit then Hashtbl.length m.m_pending_tbl else List.length m.m_pending

(** Count of currently dirty (unpersisted) lines across all NVM arenas. *)
let dirty_nvm_lines m =
  let n = ref 0 in
  Array.iter
    (fun tbl -> Hashtbl.iter (fun key () ->
         let aid = key / lines_per_arena in
         if m.m_arenas.(aid).kind = Nvm then incr n) tbl)
    m.m_dirty_by_socket;
  !n

(* ---- enumerable crash-set API (model checking) ----

   The random crash hook above cuts a run at *one* point with whatever the
   background flusher happened to persist. The explorer instead asks, at a
   chosen point: which media images are reachable by a crash *right now*?
   Answer: current media plus any subset of the dirty NVM lines that the
   cache could have written back first (the WPQ is volatile, exactly as in
   [crash]). These helpers enumerate that frontier: a sorted dirty-line
   list, an O(line) XOR delta per line for incremental dedup of subset
   images, a cost-free [commit_line] to realise a subset, and
   [snapshot]/[restore] so one run can branch into many crash checks and
   resume unharmed. *)

(** Sorted [dirty_key]s of every dirty NVM line. The order is the subset-
    mask convention shared by the explorer and its replay mode: bit [i] of
    a frontier mask refers to element [i] of this list. *)
let dirty_nvm_line_keys m =
  let acc = ref [] in
  Array.iter
    (fun tbl -> Hashtbl.iter (fun key () ->
         let aid = key / lines_per_arena in
         if m.m_arenas.(aid).kind = Nvm then acc := key :: !acc) tbl)
    m.m_dirty_by_socket;
  List.sort compare !acc

(** XOR delta that committing line [key]'s coherent contents to media would
    apply to [media_hash]. Lets the explorer fingerprint all 2^k subset
    images of k dirty lines in O(2^k) word-hashes via Gray-code order
    instead of O(2^k · k). *)
let line_commit_delta m key =
  let aid = key / lines_per_arena and line = key mod lines_per_arena in
  let arena = m.m_arenas.(aid) in
  let base = line * line_words in
  let d = ref 0 in
  for i = 0 to line_words - 1 do
    let off = base + i in
    if arena.values.(off) <> arena.media.(off) then begin
      let addr = addr_of ~aid ~offset:off in
      d := !d lxor word_h addr arena.values.(off)
           lxor word_h addr arena.media.(off)
    end
  done;
  !d

(** Commit line [key] to media without simulated cost: models the
    background flusher having persisted that line just before a crash.
    Leaves the dirty map alone — [crash] wipes it anyway. *)
let commit_line m key =
  commit_line_to_media m m.m_arenas.(key / lines_per_arena)
    (key mod lines_per_arena)

type snap = {
  s_count : int;
  s_values : int array array;
  s_media : int array array;
  s_dirty : Bytes.t array;
  s_dirty_tbls : (int, unit) Hashtbl.t array;
  s_pending : pending list;
  s_pending_tbl : (int, int array) Hashtbl.t;
  s_flit : bool;
  s_value_hash : int;
  s_media_hash : int;
  s_dirty_hash : int;
  s_wpq_hash : int;
  s_op_index : int;
  s_countdown : int;
}

(** Capture the complete simulated-memory state. Pending-line captures are
    immutable once queued, so they are shared, not copied. *)
let snapshot m =
  {
    s_count = m.m_count;
    s_values = Array.init m.m_count (fun i -> Array.copy m.m_arenas.(i).values);
    s_media = Array.init m.m_count (fun i -> Array.copy m.m_arenas.(i).media);
    s_dirty = Array.init m.m_count (fun i -> Bytes.copy m.m_arenas.(i).dirty);
    s_dirty_tbls = Array.map Hashtbl.copy m.m_dirty_by_socket;
    s_pending = m.m_pending;
    s_pending_tbl = Hashtbl.copy m.m_pending_tbl;
    s_flit = m.m_flit;
    s_value_hash = m.m_value_hash;
    s_media_hash = m.m_media_hash;
    s_dirty_hash = m.m_dirty_hash;
    s_wpq_hash = m.m_wpq_hash;
    s_op_index = m.m_op_index;
    s_countdown = m.m_countdown;
  }

(** Restore a snapshot taken on this memory. Arenas allocated after the
    snapshot become unreachable again (the arena counter rewinds), exactly
    as if the interlude never happened. A snapshot may be restored any
    number of times. *)
let restore m s =
  m.m_count <- s.s_count;
  for aid = 0 to s.s_count - 1 do
    let a = m.m_arenas.(aid) in
    Array.blit s.s_values.(aid) 0 a.values 0 arena_words;
    if Array.length a.media > 0 then
      Array.blit s.s_media.(aid) 0 a.media 0 arena_words;
    Bytes.blit s.s_dirty.(aid) 0 a.dirty 0 (Bytes.length a.dirty)
  done;
  Array.iteri
    (fun i tbl ->
      let dst = m.m_dirty_by_socket.(i) in
      Hashtbl.reset dst;
      Hashtbl.iter (fun k () -> Hashtbl.replace dst k ()) tbl)
    s.s_dirty_tbls;
  m.m_pending <- s.s_pending;
  Hashtbl.reset m.m_pending_tbl;
  Hashtbl.iter (fun k v -> Hashtbl.replace m.m_pending_tbl k v) s.s_pending_tbl;
  m.m_flit <- s.s_flit;
  m.m_value_hash <- s.s_value_hash;
  m.m_media_hash <- s.s_media_hash;
  m.m_dirty_hash <- s.s_dirty_hash;
  m.m_wpq_hash <- s.s_wpq_hash;
  m.m_op_index <- s.s_op_index;
  m.m_countdown <- s.s_countdown
