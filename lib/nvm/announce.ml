(** Persistent per-thread announce and response records — the detectability
    layer of Ben-David et al. ("Delay-Free Concurrency on Faulty Persistent
    Memory") adapted to PREP-UC's flat-combining front end.

    Each thread owns two dedicated cache lines in NVM:

    - an *announce* line, written and CLFLUSHed by the thread itself before
      it publishes its flat-combining slot. It carries the full op
      descriptor plus a monotonically increasing client sequence number,
      so after a crash the thread's last *intent* is always recoverable;
    - a *response* line, written by whichever combiner executes the op and
      made durable before the completedTail may advance past the op's log
      entry. It carries the result plus the same seqno, so after a crash
      the last *effect* the system promised is also recoverable.

    [resolve]-style queries compare the two: announce ahead of response
    means the op was lost in the crash and must be re-submitted; response
    at (or beyond) the announce means it took effect exactly once.

    Crash atomicity: a line commits to media atomically, but a background
    flush may capture the line *between* word writes. Both records therefore
    end in a commit word that repeats the seqno and is written last; any
    media state whose first and commit words disagree is a torn record and
    is reported as such rather than trusted. *)

let words_per_record = Memory.line_words
let words_per_thread = 2 * words_per_record

(* announce line layout *)
let an_seq = 0 (* client seqno, written after the payload *)
let an_op = 1
let an_argc = 2
let an_args = 3 (* 3 words *)
let an_commit = 6 (* seqno again, written last *)
let max_args = 3

(* response line layout *)
let rs_seq = 0
let rs_result = 1
let rs_commit = 2 (* seqno again, written last *)

type t = { mem : Memory.t; base : int; threads : int }

type record =
  | Valid of { seqno : int; payload : int; args : int array }
      (** [payload] is the op code for announces, the result for
          responses; [args] is empty for responses *)
  | Torn of { seqno : int; commit : int }
      (** first word and commit word disagree: a background flush caught
          the record mid-write and the crash landed before the final
          drain. Never trusted — the payload may be any interleaving. *)
  | Empty  (** never written (both words still zero) *)

let base t = t.base
let threads t = t.threads

let check_tid t tid =
  if tid < 0 || tid >= t.threads then invalid_arg "Announce: bad thread id"

let announce_addr t tid =
  check_tid t tid;
  t.base + (tid * words_per_thread)

let response_addr t tid = announce_addr t tid + words_per_record

(** Allocate and persist a zeroed table for [threads] threads. The fresh
    table is flushed before use so a crash prior to the first announce
    recovers a well-formed [Empty] record for every thread. *)
let create alloc ~threads =
  if threads < 1 then invalid_arg "Announce.create: bad thread count";
  let mem = Alloc.mem alloc in
  let base = Alloc.alloc_lines alloc (2 * threads) in
  let t = { mem; base; threads } in
  for tid = 0 to threads - 1 do
    Memory.clwb ~site:Persist.Detect_announce_init mem (announce_addr t tid);
    Memory.clwb ~site:Persist.Detect_announce_init mem (response_addr t tid)
  done;
  Memory.sfence ~site:Persist.Detect_announce_init mem;
  t

(** Attach to a table recovered through a persistent root. *)
let attach mem ~base ~threads =
  if threads < 1 then invalid_arg "Announce.attach: bad thread count";
  { mem; base; threads }

(** Last announced seqno for [tid], read without simulated cost (ghost).
    Used to seed volatile per-thread seqno counters on build/recover. *)
let peek_seqno t tid = Memory.peek t.mem (announce_addr t tid + an_seq)

(** Persist the op descriptor for [tid] before submission. Writes the
    payload, then the seqno, then the commit marker, then CLFLUSHes the
    line — blocking, so on return the announce is on media. Seqnos must be
    non-decreasing per thread: strictly greater for a fresh op, equal only
    when a client re-submits the op a crash lost (the announce already
    carries that seqno). *)
let announce t ~tid ~seqno ~op ~args =
  let a = announce_addr t tid in
  let argc = Array.length args in
  if argc > max_args then invalid_arg "Announce.announce: too many args";
  if seqno <= 0 then invalid_arg "Announce.announce: seqno must be positive";
  let prev = Memory.read t.mem (a + an_seq) in
  if seqno < prev then
    invalid_arg "Announce.announce: seqno regressed";
  (* retract the commit marker first: any intermediate media state of this
     rewrite must read as torn, never as a valid mix of old and new *)
  Memory.write t.mem (a + an_commit) 0;
  Memory.write t.mem (a + an_op) op;
  Memory.write t.mem (a + an_argc) argc;
  for i = 0 to max_args - 1 do
    Memory.write t.mem (a + an_args + i) (if i < argc then args.(i) else 0)
  done;
  Memory.write t.mem (a + an_seq) seqno;
  Memory.write t.mem (a + an_commit) seqno;
  Memory.clflush ~site:Persist.Detect_announce t.mem a

(** Record the result for [tid]'s op [seqno]. Persistence is the caller's
    job ([persist_response] / [flush_response]): the combiner batches CLWBs
    and fences once per combine round. *)
let write_response t ~tid ~seqno ~result =
  let a = response_addr t tid in
  Memory.write t.mem (a + rs_commit) 0;
  Memory.write t.mem (a + rs_result) result;
  Memory.write t.mem (a + rs_seq) seqno;
  Memory.write t.mem (a + rs_commit) seqno

(** Queue the response line for write-back (CLWB; caller fences). *)
let persist_response t ~tid =
  Memory.clwb ~site:Persist.Detect_response t.mem (response_addr t tid)

(** Write the response line straight to media (CLFLUSH, blocking). *)
let flush_response t ~tid =
  Memory.clflush ~site:Persist.Detect_response t.mem (response_addr t tid)

let read_record mem a ~payload_word ~commit_word ~with_args =
  let seq = Memory.read mem (a + 0) in
  let commit = Memory.read mem (a + commit_word) in
  if seq = 0 && commit = 0 then Empty
  else if seq <> commit then Torn { seqno = seq; commit }
  else
    let payload = Memory.read mem (a + payload_word) in
    let args =
      if not with_args then [||]
      else
        let argc = Memory.read mem (a + an_argc) in
        let argc = if argc < 0 || argc > max_args then 0 else argc in
        Array.init argc (fun i -> Memory.read mem (a + an_args + i))
    in
    Valid { seqno = seq; payload; args }

(** Read [tid]'s announce record (coherent view; equals media after a
    crash). *)
let announced t ~tid =
  read_record t.mem (announce_addr t tid) ~payload_word:an_op
    ~commit_word:an_commit ~with_args:true

(** Read [tid]'s response record. *)
let response t ~tid =
  read_record t.mem (response_addr t tid) ~payload_word:rs_result
    ~commit_word:rs_commit ~with_args:false

(** Seqno of [tid]'s response if it is valid, else 0. Used by recovery's
    replay reconciliation to advance response slots monotonically. *)
let response_seqno t ~tid =
  match response t ~tid with Valid { seqno; _ } -> seqno | Torn _ | Empty -> 0
