(** The paper's allocator-swap mechanism (§5.1).

    A persistent universal construction cannot hand the sequential data
    structure a persistent allocator (that would mean modifying the
    sequential code), and it cannot override the system allocator globally.
    The paper's solution: wrap malloc/free so that a *thread-local flag*
    redirects allocations to the persistent allocator; the persistence
    thread sets the flag around its calls into the sequential object and
    clears it afterwards.

    Here the thread-local flag is the fiber's [palloc] field, and
    [alloc]/[free] below are the wrapped entry points the sequential data
    structures call. *)

type binding = {
  mutable default : Alloc.t; (* the "system allocator" for this fiber *)
  mutable persistent : Alloc.t option;
}

(* Domain-local: the fid -> binding table belongs to the simulation running
   on this domain; independent sims on other domains (Harness.Campaign)
   keep their own tables. *)
let table_key : (int, binding) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let table () = Domain.DLS.get table_key

(** Bind the current fiber's allocators. Every fiber that executes
    sequential-object code must be bound first. *)
let bind ~default ?persistent () =
  let fid = (Sim.self ()).Sim.fid in
  Hashtbl.replace (table ()) fid { default; persistent }

(** Rebind only the default (volatile) allocator of the current fiber;
    combiners do this when applying a batch to their local replica. *)
let set_default alloc =
  let fid = (Sim.self ()).Sim.fid in
  match Hashtbl.find_opt (table ()) fid with
  | Some b -> b.default <- alloc
  | None -> Hashtbl.replace (table ()) fid { default = alloc; persistent = None }

let set_persistent alloc =
  let fid = (Sim.self ()).Sim.fid in
  match Hashtbl.find_opt (table ()) fid with
  | Some b -> b.persistent <- Some alloc
  | None ->
    Hashtbl.replace (table ()) fid { default = alloc; persistent = Some alloc }

let binding () =
  let fid = (Sim.self ()).Sim.fid in
  match Hashtbl.find_opt (table ()) fid with
  | Some b -> b
  | None -> failwith "Context: fiber has no allocator binding"

(** The allocator the wrapped malloc would use right now. *)
let current () =
  let b = binding () in
  if (Sim.self ()).Sim.palloc then
    match b.persistent with
    | Some p -> p
    | None -> failwith "Context: persistent allocator enabled but not bound"
  else b.default

(** Run [f] with the persistent allocator enabled, restoring the flag
    afterwards. This is exactly the persistence thread's wrapper. *)
let with_persistent f =
  let fiber = Sim.self () in
  let saved = fiber.Sim.palloc in
  fiber.Sim.palloc <- true;
  Fun.protect ~finally:(fun () -> fiber.Sim.palloc <- saved) f

(** Run [f] with [alloc] as the fiber's default allocator, restoring the
    previous binding afterwards. Used by systems (e.g. CX-PUC) that route a
    sequential-object call to a specific per-replica heap. *)
let with_allocator alloc f =
  let b = binding () in
  let saved = b.default in
  b.default <- alloc;
  Fun.protect ~finally:(fun () -> b.default <- saved) f

(* Wrapped allocation entry points used by the black-box sequential code. *)

let alloc size = Alloc.alloc (current ()) size
let free addr size = Alloc.free (current ()) addr size

(** Drop all bindings (between experiment runs / after a crash). *)
let reset () = Hashtbl.reset (table ())

(** Snapshot of this domain's bindings; the explorer saves them around a
    nested recovery simulation and puts them back afterwards. *)
type saved = (int, binding) Hashtbl.t

let save () : saved = Hashtbl.copy (table ())

let restore (s : saved) =
  let t = table () in
  Hashtbl.reset t;
  Hashtbl.iter (fun k v -> Hashtbl.replace t k v) s
