(** PREP-UC: the replicated persistent universal construction (paper §4–5).

    One functor implements all three variants of the paper:

    - [Config.Volatile] — PREP-V, the node-replication UC of Calciu et al.
      with all persistence code removed (used as the volatile baseline in
      Fig. 1);
    - [Config.Buffered] — PREP-Buffered (§5.1): the log and completedTail
      stay in DRAM; two dedicated persistent replicas in NVM are maintained
      by a persistence thread and checkpointed every ε operations with
      WBINVD; at most ε+β−1 completed operations are lost per crash;
    - [Config.Durable] — PREP-Durable (§5.2): additionally places the log
      and completedTail in NVM and persists log entries (CLWB+SFENCE) and
      the completedTail (CLFLUSH after CAS) before operations complete.

    Worker threads are fibers pinned one per simulated core; the replica a
    worker uses is its socket's, and its flat-combining slot is its core's.
    The persistence thread runs on the last core of the last socket, which
    the harness never assigns to a worker (the paper similarly uses at most
    95 of 96 hardware threads).

    Deviations from the paper's pseudocode, both liveness fixes:
    - the persistence thread evaluates the flush condition on every loop
      iteration, not only after applying new operations; otherwise a
      combiner that lowers the flushBoundary (Algorithm 3's helping path)
      after the persistence thread caught up would deadlock it;
    - the active/stable swap and its CLFLUSH happen *before* advancing the
      flushBoundary, so the ε+β−1 loss bound holds without assuming the
      two steps are atomic. *)

open Nvm

(* Root directory slots, relative to the instance's [Config.root_base]
   (shard [i] of a sharded construction registers its roots at [i * 8], so
   several instances share one root directory; the classic layout is
   base 0). *)
let slot_active = 1 (* p_activePReplica *)
let slot_meta0 = 2 (* address of persistent replica 0's metadata block *)
let slot_meta1 = 3 (* address of persistent replica 1's metadata block *)
let slot_ct = 4 (* address of d_completedTail (durable only) *)
let slot_log = 5 (* log base address (durable only) *)
let slot_announce = 6 (* announce/response table base (detect only) *)

(* Control-arena word offsets (one cache line apart). *)
let off_log_tail = 8
let off_log_min = 16
let off_flush_boundary = 24
let off_update_now = 32 (* one word per volatile replica *)

let slot_words = 16 (* flat-combining slot: 2 cache lines per core *)

(* The incremental-checkpoint manifest registers one absolute root slot
   per instance, above every shard stride and the decision table: shard
   strides are [i*8 + 1 .. i*8 + 6] for i <= 6 plus absolute slot 7, so
   slots 56..63 are free — slot [56 + i] belongs to the instance whose
   [root_base] is [i * 8]. *)
let lsm_manifest_slot root_base = 56 + (root_base / 8)

(** Shared (ds-independent) state of the incremental log-structured
    checkpoint backend ([Config.lsm_ckpt]). The durable truth is the
    manifest plus the sealed segments; everything in here is a volatile
    mount of it plus the memtable, reproducible from NVM media and the
    log suffix past [sealed_lt]. *)
module Lsm = struct
  type pending_merge = {
    replaced : Segment.meta list;
        (* a contiguous same-level run of [segs], newest first *)
    merged : Segment.meta list;
        (* already built and sealed by the compaction fiber *)
  }

  type t = {
    mem : Memory.t;
    manifest : Manifest.t;
    fanout : int;
    memtable : Segment.Memtable.t;
        (* latest value per key written since the last seal *)
    mutable segs : Segment.meta list; (* mounted segment set, newest first *)
    mutable epoch : int; (* last published manifest epoch *)
    mutable sealed_lt : int;
        (* log entries [0, sealed_lt) of the current log epoch are covered
           by the sealed segments *)
    mutable pending : pending_merge option;
        (* handoff from the compaction fiber to the manifest's single
           writer (the persistence thread) *)
    (* harness-side counters (no simulated cost) *)
    mutable seals : int;
    mutable segments_built : int;
    mutable keys_sealed : int;
    mutable compactions : int;
    mutable bloom_skips : int;
    mutable range_skips : int;
    mutable seg_finds : int;
    mutable materialized : int;
  }

  let make mem manifest ~fanout ~segs ~epoch =
    {
      mem;
      manifest;
      fanout;
      memtable = Segment.Memtable.create ();
      segs;
      epoch;
      sealed_lt = 0;
      pending = None;
      seals = 0;
      segments_built = 0;
      keys_sealed = 0;
      compactions = 0;
      bloom_skips = 0;
      range_skips = 0;
      seg_finds = 0;
      materialized = 0;
    }

  (** Newest-first store lookup (charged reads). [Some v] may carry the
      tombstone; [None] means no segment knows the key. *)
  let store_find l key =
    let rec go = function
      | [] -> None
      | m :: rest ->
        if not (Segment.range_hit m key) then begin
          l.range_skips <- l.range_skips + 1;
          go rest
        end
        else if not (Segment.bloom_hit l.mem m key) then begin
          l.bloom_skips <- l.bloom_skips + 1;
          go rest
        end
        else (
          match Segment.find l.mem m key with
          | Some v ->
            l.seg_finds <- l.seg_finds + 1;
            Some v
          | None -> go rest)
    in
    go l.segs

  (** Cost-free live view of the whole store (checkers/snapshots):
      newest-first shadowing, tombstones dropped. *)
  let peek_live l =
    let seen = Hashtbl.create 64 and acc = ref [] in
    List.iter
      (fun m ->
        Array.iter
          (fun (k, v) ->
            if not (Hashtbl.mem seen k) then begin
              Hashtbl.replace seen k ();
              if v <> Segment.tombstone then acc := (k, v) :: !acc
            end)
          (Segment.peek_array l.mem m))
      l.segs;
    List.sort (fun (a, _) (b, _) -> compare a b) !acc

  (** Publish the current segment list under a fresh epoch (persistence
      thread only — the manifest has a single writer). *)
  let publish l ~sealed_lt =
    l.epoch <- l.epoch + 1;
    Manifest.publish l.manifest ~epoch:l.epoch ~sealed_lt
      ~segs:(List.map (fun m -> m.Segment.addr) l.segs);
    l.sealed_lt <- sealed_lt

  (** Split sorted records into segment-sized chunks and allocate NVM for
      each; returns [(addr, chunk, meta)] newest-position-first metas. *)
  let plan_segments pa ~level recs =
    let n = Array.length recs in
    let rec chunks i =
      if i >= n then []
      else
        let len = min Segment.max_records (n - i) in
        Array.sub recs i len :: chunks (i + len)
    in
    List.map
      (fun chunk ->
        let count = Array.length chunk in
        let addr = Alloc.alloc_lines pa (Segment.lines_needed ~count) in
        let meta =
          {
            Segment.addr;
            count;
            level;
            min_key = fst chunk.(0);
            max_key = fst chunk.(count - 1);
            bloom_words = Segment.Bloom.words_for ~count;
          }
        in
        (addr, chunk, meta))
      (chunks 0)

  let build_planned l ~level planned =
    List.iter
      (fun (addr, chunk, _) -> ignore (Segment.build l.mem ~addr ~level chunk))
      planned;
    l.segments_built <- l.segments_built + List.length planned

  (** Fold a finished background merge into the mounted set and republish
      the manifest (persistence thread only). *)
  let apply_pending l =
    match l.pending with
    | None -> ()
    | Some { replaced; merged } ->
      let rec splice = function
        | [] -> failwith "Lsm.apply_pending: replaced run not found"
        | m :: rest when m == List.hd replaced ->
          let rest' =
            List.fold_left (fun acc _ -> List.tl acc) (m :: rest) replaced
          in
          merged @ rest'
        | m :: rest -> m :: splice rest
      in
      l.segs <- splice l.segs;
      l.compactions <- l.compactions + 1;
      publish l ~sealed_lt:l.sealed_lt;
      l.pending <- None

  (** Pick the oldest contiguous run of [fanout] same-level segments, if
      any (compaction fiber; only when no merge is outstanding). *)
  let pick_merge l =
    if l.pending <> None then None
    else
      let rec runs acc cur = function
        | [] -> if List.length cur >= l.fanout then cur :: acc else acc
        | m :: rest -> (
          match cur with
          | c :: _ when c.Segment.level = m.Segment.level ->
            runs acc (m :: cur) rest
          | _ ->
            runs (if List.length cur >= l.fanout then cur :: acc else acc)
              [ m ] rest)
      in
      (* [runs] walks newest→oldest accumulating reversed runs, so each
         completed run is oldest-first; the first completed run pushed
         last is the newest — take the head of [acc] as the oldest. *)
      match runs [] [] l.segs with
      | [] -> None
      | run :: _ ->
        (* restore newest-first order and trim to exactly [fanout] oldest *)
        let run = List.rev run in
        let len = List.length run in
        let run =
          if len > l.fanout then
            List.filteri (fun i _ -> i >= len - l.fanout) run
          else run
        in
        Some run

  (** Order-independent hash of every volatile bit of lsm state the
      memory fingerprints cannot see (explorer state dedup). *)
  let ghost l =
    let h = ref (Memory.h2 l.epoch l.sealed_lt) in
    h := Memory.h2 !h (Segment.Memtable.hash l.memtable);
    List.iter
      (fun m -> h := Memory.h2 !h (Memory.h2 m.Segment.addr m.Segment.level))
      l.segs;
    (match l.pending with
     | None -> ()
     | Some { replaced; merged } ->
       List.iter (fun m -> h := Memory.h2 !h (m.Segment.addr lxor 0x5a5a)) replaced;
       List.iter (fun m -> h := Memory.h2 !h (m.Segment.addr lxor 0xa5a5)) merged);
    !h

  (** What recovery carries from the pre-crash media into the rebuilt
      instance: the manifest handle, the mounted (valid) segment set with
      the recovery segments prepended, the published epoch, and the key
      set the replay already rematerialised into the master. *)
  type carry = {
    c_manifest : Manifest.t;
    c_segs : Segment.meta list;
    c_epoch : int;
    c_resolved : (int, unit) Hashtbl.t;
  }
end

(* slot field offsets *)
let sl_full = 0
let sl_op = 1
let sl_argc = 2
let sl_args = 3 (* 3 words *)
let sl_resp = 6
let sl_ready = 7
let sl_ghost = 8
let sl_seq = 9 (* client seqno of the published op (detect only) *)

type recovery_report = {
  applied : int list;
      (** trace indexes recovered, in linearization order *)
  lost_completed : int;
      (** completed operations not present in the recovered state *)
  skipped_completed : int;
      (** completed operations skipped as log holes — must always be 0 *)
  contiguous_prefix : bool;
      (** whether [applied] is a gap-free prefix of the linearization *)
  reconciled : int;
      (** response slots rewritten by replay reconciliation (detect only) *)
}

(** Verdict of the recovery-side detectability query ([resolve]): what a
    client should conclude about its last announced operation. *)
type resolution =
  | Completed of { seqno : int; result : int }
      (** the op with this seqno took effect and its result is durable;
          anything the client submitted after it was never announced *)
  | Lost of { seqno : int }
      (** the announce for [seqno] is durable but no response covers it:
          the op did not survive the crash and must be re-submitted *)
  | Unannounced
      (** no trustworthy announce or response exists for this thread —
          it never submitted anything (or tore its very first announce,
          which is the same thing: nothing can have taken effect) *)

module Make (Ds : Seqds.Ds_intf.S) = struct
  (** Per-handle hydration state under [Config.lsm_ckpt]. A handle rebuilt
      after a crash starts as the replayed suffix only; keys below the
      sealed horizon are rematerialised from the segment store on first
      touch. Invariant: every key present in the ds is in [resolved] (so a
      resolved key's ds binding — or absence — is the truth, and an
      unresolved key's truth lives in the segments). [hydrated] means
      every live store key has been resolved, after which all checks
      short-circuit — the steady state, and the only state outside
      recovery. *)
  type view = {
    resolved : (int, unit) Hashtbl.t;
    mutable hydrated : bool;
  }

  let fresh_view ~hydrated = { resolved = Hashtbl.create 16; hydrated }

  type replica = {
    rid : int;
    socket : int;
    ds : Ds.handle;
    view : view;
    alloc : Alloc.t;
    lt_addr : int; (* localTail *)
    combiner : Locks.Trylock.t;
    rw : Locks.Rw.t;
    slots : int; (* base address of beta slots *)
    occ : int;
        (* slot-occupancy summary word ([Config.slot_bitmap]): bit [core]
           is raised after the core's slot is published, so the combiner
           collects only set bits instead of sweeping all beta slots *)
  }

  type preplica = {
    meta : int; (* NVM block: [0] localTail, [1] ds root address *)
    mutable pds : Ds.handle;
  }

  type t = {
    mem : Memory.t;
    roots : Roots.t;
    cfg : Config.t;
    beta : int;
    n_replicas : int;
    replicas : replica array;
    log : Log.t;
    ctrl : int; (* control arena base address *)
    ct_addr : int; (* completedTail (NVM in durable mode) *)
    p_alloc : Alloc.t option;
    p_reps : preplica array; (* 2 entries, or empty when volatile *)
    p_socket : int;
    trace : Trace.t;
    prefill : (int * int array) list;
        (* ops establishing the initial state, for the checkers *)
    ann : Announce.t option;
        (* persistent announce/response table ([Config.detect] only) *)
    next_seq : int array;
        (* ghost per-thread auto-seqno counters, seeded from the announce
           table at build time so recovered clients continue their own
           sequence; empty unless detect *)
    mutable stop_flag : bool;
    mutable p_thread_running : bool;
    (* harness-side optimisation counters (no simulated cost) *)
    mutable bmp_empty_exits : int;
    mutable bmp_slots_skipped : int;
    (* detectability counters (no simulated cost) *)
    mutable detect_announces : int;
    mutable detect_responses : int;
    mutable detect_reconciled : int;
    mutable txn_gate : (op:int -> args:int array -> bool) option;
        (* Sharded-transaction hook ([Sharded_uc]): called by the
           persistence thread before applying a log entry to the active
           persistent replica. [false] means the entry is a cross-shard
           prepare whose commit decision is still pending — the catch-up
           stops in front of it (progress so far is kept) and retries on
           the next cycle, so a checkpoint can never bake in an effect
           that recovery might have to roll back. The gate must make the
           decision it approves durable before returning [true]. *)
    mutable replay_keep : (op:int -> args:int array -> bool) option;
        (* Sharded-transaction hook: recovery replay applies an entry only
           if this returns [true]. The sharded layer answers from the
           post-crash decision-table media: committed prepares roll
           forward, unprepared/aborted ones are skipped like log holes. *)
    tel : Phases.t option;
        (* phase spans, captured from the ambient telemetry registry at
           construction; [None] on uninstrumented runs *)
    lsm : Lsm.t option;
        (* incremental-checkpoint backend ([Config.lsm_ckpt]); [None] runs
           the paper's whole-replica checkpoint *)
    shadow_view : view;
        (* hydration state of the persistence thread's shadow replica
           (trivially hydrated when lsm is off) *)
    (* checkpoint cost accounting, comparable across both strategies
       (simulated time inside flush_and_swap / lsm_seal) *)
    mutable ckpt_count : int;
    mutable ckpt_cost_total : int;
    mutable ckpt_cost_last : int;
  }

  let durable t = t.cfg.Config.mode = Config.Durable
  let has_persistence t = t.cfg.Config.mode <> Config.Volatile

  (* this instance's absolute root slot for relative slot [s] *)
  let rslot t s = t.cfg.Config.root_base + s

  (* ---- control-word helpers ---- *)

  let read_log_tail t = Memory.read t.mem (t.ctrl + off_log_tail)
  let read_log_min t = Memory.read t.mem (t.ctrl + off_log_min)
  let write_log_min t v = Memory.write t.mem (t.ctrl + off_log_min) v
  let read_flush_boundary t = Memory.read t.mem (t.ctrl + off_flush_boundary)

  let write_flush_boundary t v =
    Memory.write t.mem (t.ctrl + off_flush_boundary) v

  let update_now_addr t rid = t.ctrl + off_update_now + rid
  let read_ct t = Memory.read t.mem t.ct_addr
  let read_local_tail t r = Memory.read t.mem r.lt_addr

  let read_p_local_tail t p = Memory.read t.mem t.p_reps.(p).meta

  (* ---- construction ---- *)

  let apply_ops ds ops =
    List.iter (fun (op, args) -> ignore (Ds.execute ds ~op ~args)) ops

  (* Build a full UC instance around [master]'s current contents. Runs
     inside a fiber; the caller's allocator binding is replaced.
     [lsm_carry] is recovery's handoff under [Config.lsm_ckpt]: the
     pre-crash manifest/segments and the key set the replay already
     rematerialised into [master] — its presence means [master] (and every
     copy of it) is a partial view to be hydrated lazily. *)
  let build ?lsm_carry mem roots cfg ~prefill ~master =
    let topo = Sim.topology () in
    let beta = topo.Sim.Topology.cores_per_socket in
    Config.validate cfg ~beta;
    if cfg.Config.flit then Memory.set_flit mem true;
    (match cfg.Config.persist_policy with
     | Some p -> Memory.set_policy mem p
     | None -> ());
    let workers = min cfg.Config.workers (Sim.Topology.total_cores topo - 1) in
    let n_replicas =
      min topo.Sim.Topology.sockets ((workers + beta - 1) / beta)
    in
    let p_socket = topo.Sim.Topology.sockets - 1 in
    let ctrl_aid = Memory.new_arena mem ~kind:Memory.Dram ~home:0 in
    let ctrl = Memory.addr_of ~aid:ctrl_aid ~offset:0 in
    let mode = cfg.Config.mode in
    let log =
      Log.create mem ~mirror:cfg.Config.log_mirror ~size:cfg.Config.log_size
        ~durable:(mode = Config.Durable)
    in
    Memory.write mem (ctrl + off_log_tail) 0;
    Memory.write mem (ctrl + off_log_min) (cfg.Config.log_size - 1);
    Memory.write mem (ctrl + off_flush_boundary)
      (if mode = Config.Volatile then max_int / 2 else cfg.Config.epsilon);
    (* volatile replicas, one per occupied socket *)
    let master_ds =
      match master with
      | Some ds -> ds
      | None ->
        (* an empty master, built in a scratch volatile heap *)
        let scratch = Alloc.create_volatile mem ~home:0 in
        Context.set_default scratch;
        let ds = Ds.create mem in
        apply_ops ds prefill;
        ds
    in
    (* a copy of the master sees exactly the keys the master has resolved;
       each copy materialises independently from there *)
    let view_of_copy () =
      match lsm_carry with
      | None -> fresh_view ~hydrated:true
      | Some c ->
        { resolved = Hashtbl.copy c.Lsm.c_resolved; hydrated = false }
    in
    let make_replica rid =
      let alloc = Alloc.create_volatile mem ~home:rid in
      Context.set_default alloc;
      let ds = Ds.copy master_ds in
      let view = view_of_copy () in
      let lt_addr = Alloc.alloc alloc 8 in
      let combiner = Locks.Trylock.make mem (Alloc.alloc alloc 8) in
      let dist = cfg.Config.dist_rw in
      let rw_words = max Memory.line_words (Locks.Rw.size_words ~dist ~ncores:beta) in
      (* over-allocate one line and round up: the distributed lock's
         per-core padding only isolates lines if its base is line-aligned,
         and the preceding Ds.copy allocations need not leave the bump
         pointer on a line boundary *)
      let rw_raw = Alloc.alloc alloc (rw_words + Memory.line_words) in
      let rw_base =
        (rw_raw + Memory.line_words - 1) / Memory.line_words * Memory.line_words
      in
      let rw = Locks.Rw.make ~dist ~ncores:beta mem rw_base in
      let slots = Alloc.alloc alloc (beta * slot_words) in
      let occ = Alloc.alloc alloc 8 in
      Memory.write mem occ 0;
      Memory.write mem lt_addr 0;
      Memory.write mem (ctrl + off_update_now + rid) 0;
      { rid; socket = rid; ds; view; alloc; lt_addr; combiner; rw; slots;
        occ }
    in
    let replicas = Array.init n_replicas make_replica in
    (* persistent side *)
    let p_alloc, p_reps, ct_addr, lsm, shadow_view =
      if mode = Config.Volatile then begin
        let ct = ctrl + 40 in
        Memory.write mem ct 0;
        (None, [||], ct, None, fresh_view ~hydrated:true)
      end
      else begin
        let pa = Alloc.create_persistent mem ~home:p_socket in
        Context.set_persistent pa;
        let ct_addr =
          if mode = Config.Durable then begin
            let a = Alloc.alloc pa 8 in
            Memory.write mem a 0;
            Memory.clflush ~site:Persist.Prep_init mem a;
            a
          end
          else begin
            let ct = ctrl + 40 in
            Memory.write mem ct 0;
            ct
          end
        in
        let rb = cfg.Config.root_base in
        let p_reps, lsm, shadow_view =
          if not cfg.Config.lsm_ckpt then begin
            let make_prep () =
              Context.with_persistent (fun () ->
                  let pds = Ds.copy master_ds in
                  let meta = Alloc.alloc pa 8 in
                  Memory.write mem meta 0;
                  Memory.write mem (meta + 1) (Ds.root_addr pds);
                  { meta; pds })
            in
            let p0 = make_prep () and p1 = make_prep () in
            (* checkpoint zero: both replicas durable before any op *)
            Alloc.persist_heap pa;
            Roots.set roots (rb + slot_active) 0;
            Roots.set roots (rb + slot_meta0) p0.meta;
            Roots.set roots (rb + slot_meta1) p1.meta;
            ([| p0; p1 |], None, fresh_view ~hydrated:true)
          end
          else begin
            (* Incremental backend: no NVM replica copies. The persistence
               thread runs one volatile *shadow* of the object (its
               catch-up feeds the memtable with post-image values); the
               durable truth is the manifest + sealed segments. Both
               p-replica metadata slots are DRAM words pointing at the one
               shadow — they advance together, which keeps the laggard
               machinery of Algorithm 3 working unchanged. *)
            let shadow =
              Context.with_allocator
                (Alloc.create_volatile mem ~home:p_socket)
                (fun () -> Ds.copy master_ds)
            in
            let m0 = ctrl + 48 and m1 = ctrl + 56 in
            Memory.write mem m0 0;
            Memory.write mem m1 0;
            Roots.set roots (rb + slot_active) 0;
            let lsm =
              match lsm_carry with
              | Some c ->
                let l =
                  Lsm.make mem c.Lsm.c_manifest ~fanout:cfg.Config.lsm_fanout
                    ~segs:c.Lsm.c_segs ~epoch:c.Lsm.c_epoch
                in
                l
              | None ->
                (* checkpoint zero: seal the initial state (if any) and
                   publish epoch 1, so recovery always finds a manifest *)
                let manifest = Manifest.create pa in
                Roots.set roots (lsm_manifest_slot rb) (Manifest.base manifest);
                let l =
                  Lsm.make mem manifest ~fanout:cfg.Config.lsm_fanout
                    ~segs:[] ~epoch:0
                in
                let rec pairs = function
                  | k :: v :: rest -> (k, v) :: pairs rest
                  | _ -> []
                in
                let recs = Array.of_list (pairs (Ds.snapshot master_ds)) in
                if Array.length recs > 0 then begin
                  let planned = Lsm.plan_segments pa ~level:0 recs in
                  Lsm.build_planned l ~level:0 planned;
                  l.Lsm.segs <- List.map (fun (_, _, m) -> m) planned
                end;
                Lsm.publish l ~sealed_lt:0;
                l
            in
            let p0 = { meta = m0; pds = shadow }
            and p1 = { meta = m1; pds = shadow } in
            ([| p0; p1 |], Some lsm, view_of_copy ())
          end
        in
        if mode = Config.Durable then begin
          Roots.set roots (rb + slot_ct) ct_addr;
          Roots.set roots (rb + slot_log) log.Log.base
        end;
        (Some pa, p_reps, ct_addr, lsm, shadow_view)
      end
    in
    (* announce/response table: reattach the pre-crash one through its root
       (recovery must keep the records a crash left behind), create and
       register a fresh one on first build *)
    let n_threads = Sim.Topology.total_cores topo in
    let ann =
      if not cfg.Config.detect then None
      else begin
        let rb = cfg.Config.root_base in
        let existing = Roots.get roots (rb + slot_announce) in
        if existing <> Memory.null then
          Some (Announce.attach mem ~base:existing ~threads:n_threads)
        else begin
          let a = Announce.create (Option.get p_alloc) ~threads:n_threads in
          Roots.set roots (rb + slot_announce) (Announce.base a);
          Some a
        end
      end
    in
    let next_seq =
      match ann with
      | None -> [||]
      | Some a -> Array.init n_threads (Announce.peek_seqno a)
    in
    {
      mem;
      roots;
      cfg;
      beta;
      n_replicas;
      replicas;
      log;
      ctrl;
      ct_addr;
      p_alloc;
      p_reps;
      p_socket;
      trace = Trace.create ();
      prefill;
      ann;
      next_seq;
      stop_flag = false;
      p_thread_running = false;
      bmp_empty_exits = 0;
      bmp_slots_skipped = 0;
      detect_announces = 0;
      detect_responses = 0;
      detect_reconciled = 0;
      txn_gate = None;
      replay_keep = None;
      tel = Phases.make ~tag:cfg.Config.tag ();
      lsm;
      shadow_view;
      ckpt_count = 0;
      ckpt_cost_total = 0;
      ckpt_cost_last = 0;
    }

  (** Create a UC whose initial object state is [prefill] applied to an
      empty object. Must be called from inside a fiber. *)
  let create ?(prefill = []) mem roots cfg =
    (* give the creating fiber a binding so Context.alloc works *)
    Context.bind ~default:(Alloc.create_volatile mem ~home:0) ();
    build mem roots cfg ~prefill ~master:None

  (* ---- worker-side machinery ---- *)

  (** Bind the calling fiber to its socket's replica. Must be called once
      at the start of every worker fiber. *)
  let register_worker t =
    let socket = Sim.socket () in
    if socket >= t.n_replicas then
      invalid_arg "Prep_uc: worker on a socket with no replica";
    Context.bind ~default:t.replicas.(socket).alloc ()

  let my_replica t = t.replicas.(Sim.socket ())

  (* ---- lazy rematerialisation ([Config.lsm_ckpt]) ---- *)

  let lsm_of t =
    match t.lsm with Some l -> l | None -> assert false

  (** Ensure [key]'s truth is in [ds]: if [view] hasn't resolved it yet,
      look it up in the segment store and [key_put] a live hit. Charged
      reads/writes; the caller holds write access to the structure. *)
  let materialize t view ds key =
    if (not view.hydrated) && not (Hashtbl.mem view.resolved key) then begin
      let l = lsm_of t in
      (match Lsm.store_find l key with
       | Some v when v <> Segment.tombstone ->
         Ds.key_put ds key v;
         l.Lsm.materialized <- l.Lsm.materialized + 1
       | Some _ (* tombstone *) | None -> ());
      Hashtbl.replace view.resolved key ()
    end

  (** Full hydration, for [Read_all] ops (aggregates like size must see
      every live key): resolve every key of every segment, newest first.
      One-time cost after a recovery; a no-op forever after. *)
  let hydrate t view ds =
    if not view.hydrated then begin
      let l = lsm_of t in
      List.iter
        (fun m ->
          Array.iter
            (fun (k, _) -> materialize t view ds k)
            (Segment.to_array l.Lsm.mem m))
        l.Lsm.segs;
      view.hydrated <- true
    end

  (** Resolve the key footprint of [op]/[args] so it may run on a possibly
      partially-hydrated handle. *)
  let lsm_prepare t view ds ~op ~args =
    if t.lsm <> None && not view.hydrated then
      match Ds.classify ~op ~args with
      | Seqds.Ds_intf.Keyed { written; read } ->
        Array.iter (materialize t view ds) written;
        Array.iter (materialize t view ds) read
      | Seqds.Ds_intf.Read_all -> hydrate t view ds
      | Seqds.Ds_intf.Opaque ->
        invalid_arg "Prep_uc: --lsm-ckpt requires keyed-map operations"

  (* cost-free check: would [lsm_prepare] have any work to do? (readers use
     it to decide whether they need the write lock) *)
  let lsm_needs t view ~op ~args =
    t.lsm <> None
    && (not view.hydrated)
    && (match Ds.classify ~op ~args with
       | Seqds.Ds_intf.Keyed { written; read } ->
         let unresolved k = not (Hashtbl.mem view.resolved k) in
         Array.exists unresolved written || Array.exists unresolved read
       | Seqds.Ds_intf.Read_all | Seqds.Ds_intf.Opaque -> true)

  (** Apply published log entries [localTail, upto) to replica [r]. Caller
      holds the replica's write lock and has the right allocator bound. *)
  let update_from_log t r ~upto =
    let lt = read_local_tail t r in
    if upto > lt then
      Phases.in_span t.tel (fun pt -> pt.Phases.catchup) (fun () ->
          for idx = lt to upto - 1 do
            let op, args = Log.wait_and_read t.log idx in
            lsm_prepare t r.view r.ds ~op ~args;
            ignore (Ds.execute r.ds ~op ~args)
          done;
          Memory.write t.mem r.lt_addr upto)

  (** Algorithm 3's helping mechanism, worker side: while waiting, a
      combiner checks whether someone asked its replica to catch up. *)
  let help_if_asked t r =
    if Memory.read t.mem (update_now_addr t r.rid) = 1 then begin
      Locks.Rw.write_acquire r.rw;
      update_from_log t r ~upto:(read_ct t);
      Locks.Rw.write_release r.rw;
      Memory.write t.mem (update_now_addr t r.rid) 0
    end

  (** Algorithm 3: advance (or wait on) logMin so the entries we are about
      to write are safe to reuse. [old_tail, new_tail) is our reservation. *)
  let update_or_wait_on_log_min t r ~old_tail ~new_tail =
    let log_size = t.cfg.Config.log_size in
    let low_mark () = read_log_min t - t.beta in
    if new_tail <= low_mark () then ()
    else if old_tail <= low_mark () then begin
      (* we reserved the lowMark entry: we advance logMin *)
      let lm = ref (low_mark ()) in
      while !lm < new_tail do
        (* find the least up-to-date replica *)
        let lowest = ref max_int and low_rid = ref 0 in
        for rid = 0 to t.n_replicas - 1 do
          let lt = read_local_tail t t.replicas.(rid) in
          if lt < !lowest then begin
            lowest := lt;
            low_rid := rid
          end
        done;
        if has_persistence t then
          for p = 0 to 1 do
            let lt = read_p_local_tail t p in
            if lt < !lowest then begin
              lowest := lt;
              low_rid := t.n_replicas + p
            end
          done;
        if !lowest + log_size - 1 = read_log_min t then begin
          (* logMin is pinned by a laggard: ask it to catch up *)
          if !low_rid >= t.n_replicas then begin
            let p = !low_rid - t.n_replicas in
            let active = Roots.get t.roots (rslot t slot_active) in
            if active <> p && read_flush_boundary t >= !lm then
              (* the stable persistent replica is the laggard: force the
                 persistence thread to checkpoint and swap early *)
              write_flush_boundary t (!lm - 1)
          end
          else Memory.write t.mem (update_now_addr t !low_rid) 1;
          let laggard_tail () =
            if !low_rid >= t.n_replicas then
              read_p_local_tail t (!low_rid - t.n_replicas)
            else read_local_tail t t.replicas.(!low_rid)
          in
          while laggard_tail () = !lowest do
            help_if_asked t r;
            (* If the laggard is a volatile replica whose own threads have
               gone quiet (e.g. they finished their work), nobody will ever
               service updateReplicaNow — so help it directly through its
               combiner lock. Without this, a replica with no active
               workers pins logMin and wedges log reuse forever. *)
            if !low_rid < t.n_replicas && !low_rid <> r.rid then begin
              let lag = t.replicas.(!low_rid) in
              if Locks.Trylock.try_acquire lag.combiner then begin
                Locks.Rw.write_acquire lag.rw;
                Context.with_allocator lag.alloc (fun () ->
                    update_from_log t lag ~upto:(read_ct t));
                Locks.Rw.write_release lag.rw;
                Locks.Trylock.release lag.combiner
              end
            end;
            Sim.spin ()
          done;
          if !low_rid < t.n_replicas then
            Memory.write t.mem (update_now_addr t !low_rid) 0
        end
        else write_log_min t (!lowest + log_size - 1);
        lm := low_mark ()
      done
    end
    else
      (* someone else owns the lowMark entry: wait for logMin to advance *)
      while low_mark () < new_tail do
        help_if_asked t r;
        Sim.spin ()
      done

  (** Algorithm 4: reserve [n] log entries, blocking while the persistence
      thread is behind the flush boundary. Returns the start index.

      The gate must be strict: a batch reserved at [tail = boundary] would
      put completed entries at indexes [boundary .. boundary + n - 1],
      i.e. up to ε+β completed ops past the last durable checkpoint — one
      more than the ε+β−1 loss bound PREP-Buffered promises. Reserving
      only while [tail < boundary] caps the straddle at β−1 entries.
      (Found by differential crash-point fuzzing of the flush-elimination
      layer: the faster variant reached a schedule where a full batch
      landed exactly on the boundary.) *)
  let reserve_log_entries t r n =
    let rec attempt () =
      let tail = read_log_tail t in
      if has_persistence t && read_flush_boundary t <= tail then begin
        (* the log has outrun the checkpoint: block until the persistence
           thread swaps, helping our own replica if asked *)
        help_if_asked t r;
        Sim.spin ();
        attempt ()
      end
      else begin
        let new_tail = tail + n in
        if Memory.cas t.mem (t.ctrl + off_log_tail) ~expected:tail ~desired:new_tail
        then begin
          update_or_wait_on_log_min t r ~old_tail:tail ~new_tail;
          tail
        end
        else attempt ()
      end
    in
    attempt ()

  (** CAS completedTail forward to at least [target]; in durable mode the
      CAS (ours or a racing combiner's that overtook [target]) is followed
      by a CLFLUSH (§5.2). The flush is issued even when another combiner
      already advanced past [target]: that combiner's own CLFLUSH may not
      have executed yet, and responding to clients on the strength of a
      completedTail that is only coherently — not durably — advanced would
      lose those completions on a crash. With FliT tracking the extra flush
      is elided whenever the completedTail line is in fact already
      persisted, which is the common case. [Elide_ct_flush] deliberately
      skips the flush altogether so the fuzzer can prove it notices. *)
  let advance_completed_tail t target =
    let rec loop () =
      let ct = read_ct t in
      if ct >= target then ()
      else if Memory.cas t.mem t.ct_addr ~expected:ct ~desired:target then ()
      else loop ()
    in
    loop ();
    if durable t && t.cfg.Config.fault <> Config.Elide_ct_flush then
      Phases.in_span t.tel (fun pt -> pt.Phases.persist) (fun () ->
          Memory.clflush ~site:Persist.Prep_completed_tail t.mem t.ct_addr)

  let slot_addr r core = r.slots + (core * slot_words)

  let collect_slot t r core batch =
    let s = slot_addr r core in
    if Memory.read t.mem (s + sl_full) = 1 then begin
      Memory.write t.mem (s + sl_full) 0;
      let op = Memory.read t.mem (s + sl_op) in
      let argc = Memory.read t.mem (s + sl_argc) in
      let args = Array.init argc (fun i -> Memory.read t.mem (s + sl_args + i)) in
      let seq =
        if t.cfg.Config.detect then Memory.read t.mem (s + sl_seq) else 0
      in
      batch := (core, op, args, seq) :: !batch
    end

  (* The combiner: collect the local batch, append it to the log, bring the
     replica up to date, and apply + answer the batch (paper §3). *)
  let combine t r =
    Phases.in_span t.tel (fun pt -> pt.Phases.combine) @@ fun () ->
    (* collect and claim full slots *)
    let batch = ref [] in
    if t.cfg.Config.slot_bitmap then begin
      (* claim the currently-raised bits with one atomic subtraction, then
         visit only those slots. Claiming before collecting is safe: a bit
         is raised strictly after its slot's [sl_full] store, so every
         claimed bit has a full slot, and the subtraction cannot erase a
         concurrently-raised bit of another core. A publisher whose bit
         lands just after the read is picked up by the next combine round
         (its worker is still spinning, and spinners retry the combiner
         lock). *)
      let bits = Memory.read t.mem r.occ in
      if bits = 0 then t.bmp_empty_exits <- t.bmp_empty_exits + 1
      else begin
        ignore (Memory.faa t.mem r.occ (-bits));
        for core = t.beta - 1 downto 0 do
          if bits land (1 lsl core) <> 0 then collect_slot t r core batch
          else t.bmp_slots_skipped <- t.bmp_slots_skipped + 1
        done
      end
    end
    else
      for core = t.beta - 1 downto 0 do
        collect_slot t r core batch
      done;
    let batch = !batch in
    let n = List.length batch in
    if n > 0 then begin
      let detect = t.cfg.Config.detect in
      (* the planted fence-hoisting fault: leave the log entries' write-backs
         queued (no fence) while responses go straight to media below *)
      let hoist_fences =
        detect && t.cfg.Config.fault = Config.Response_before_log_persist
      in
      let tid_of core = (r.socket * t.beta) + core in
      let tail = reserve_log_entries t r n in
      let new_tail = tail + n in
      let publish_span f = Phases.in_span t.tel (fun pt -> pt.Phases.publish) f
      and persist_span f = Phases.in_span t.tel (fun pt -> pt.Phases.persist) f in
      let log_fence site =
        if not hoist_fences then
          persist_span (fun () -> Log.fence ~site t.log)
      in
      if not t.cfg.Config.flit then begin
        (* phase 1: payloads (arguments then op), write-backs, one fence *)
        List.iteri
          (fun i (core, op, args, seq) ->
            publish_span (fun () ->
                Log.write_payload t.log (tail + i) ~op ~args;
                if detect then
                  Log.write_tag t.log (tail + i) ~tid:(tid_of core) ~seqno:seq);
            persist_span (fun () -> Log.persist_entry t.log (tail + i));
            Trace.logged ~tid:(tid_of core) ~seqno:seq t.trace (tail + i) ~op
              ~args)
          batch;
        log_fence Persist.Log_fence_payload;
        (* phase 2: publish emptyBits, write-backs, one fence *)
        List.iteri
          (fun i _ ->
            publish_span (fun () -> Log.publish t.log (tail + i));
            persist_span (fun () -> Log.persist_entry t.log (tail + i)))
          batch;
        log_fence Persist.Log_fence_publish
      end
      else begin
        (* Batched persistence: write every payload, sweep the batch's lines
           once, publish every emptyBit, re-sweep (each CLWB coalesces into
           the write-back queued by the first sweep), then a single fence.
           Dropping the intermediate fence is safe in this model because an
           entry is exactly one cache line: a write-back reaching media
           carries payload and emptyBit together, so media can never hold a
           published emptyBit with a torn payload — the invariant the
           two-fence protocol exists to protect. Unfenced publish-then-crash
           only produces holes, which recovery already skips as uncompleted
           operations (§5.2). *)
        publish_span (fun () ->
            List.iteri
              (fun i (core, op, args, seq) ->
                Log.write_payload t.log (tail + i) ~op ~args;
                if detect then
                  Log.write_tag t.log (tail + i) ~tid:(tid_of core) ~seqno:seq;
                Trace.logged ~tid:(tid_of core) ~seqno:seq t.trace (tail + i)
                  ~op ~args)
              batch);
        persist_span (fun () -> Log.persist_range t.log ~first:tail ~n);
        publish_span (fun () ->
            List.iteri (fun i _ -> Log.publish t.log (tail + i)) batch);
        persist_span (fun () ->
            Log.persist_range t.log ~first:tail ~n;
            if not hoist_fences then
              Log.fence ~site:Persist.Log_fence_publish t.log)
      end;
      Locks.Rw.write_acquire r.rw;
      update_from_log t r ~upto:tail;
      Memory.write t.mem r.lt_addr new_tail;
      if not detect then begin
        advance_completed_tail t new_tail;
        (* apply own batch from the collected copies and answer *)
        List.iteri
          (fun i (core, op, args, _) ->
            lsm_prepare t r.view r.ds ~op ~args;
            let resp = Ds.execute r.ds ~op ~args in
            let s = slot_addr r core in
            Memory.write t.mem (s + sl_resp) resp;
            Memory.write t.mem (s + sl_ghost) (tail + i);
            Memory.write t.mem (s + sl_ready) 1)
          batch
      end
      else begin
        (* Detectable execution reorders completion: every response must be
           durable *before* the completedTail may advance past its entry
           (exactly-once R2 — an op the checkpoint or replay recovers must
           have a recoverable response, else the client re-submits it), and
           the log fence above already made every entry durable before any
           response is written (R1 — a durable response must never outrun
           its entry). Only then are the flat-combining slots answered. *)
        let resps =
          List.map
            (fun (core, op, args, seq) ->
              lsm_prepare t r.view r.ds ~op ~args;
              let resp = Ds.execute r.ds ~op ~args in
              (match t.ann with
               | Some ann ->
                 Phases.in_span t.tel (fun pt -> pt.Phases.detect) (fun () ->
                     let tid = tid_of core in
                     Announce.write_response ann ~tid ~seqno:seq ~result:resp;
                     if hoist_fences then Announce.flush_response ann ~tid
                     else Announce.persist_response ann ~tid);
                 t.detect_responses <- t.detect_responses + 1
               | None -> ());
              (core, resp))
            batch
        in
        if not hoist_fences then
          Phases.in_span t.tel (fun pt -> pt.Phases.detect) (fun () ->
              Memory.sfence ~site:Persist.Detect_response t.mem);
        advance_completed_tail t new_tail;
        List.iteri
          (fun i (core, resp) ->
            let s = slot_addr r core in
            Memory.write t.mem (s + sl_resp) resp;
            Memory.write t.mem (s + sl_ghost) (tail + i);
            Memory.write t.mem (s + sl_ready) 1)
          resps
      end;
      Locks.Rw.write_release r.rw
    end

  (** Publish an update into the calling core's flat-combining slot and
      return without waiting for a response. The caller owns exactly one
      slot per replica, so at most one update may be outstanding per
      construction; collect it with [try_collect] (or spin via
      [collect_update]) before submitting the next. Split out of
      [execute_update] so a multi-shard router can keep one update in
      flight per shard from a single worker fiber. *)
  let submit_update t r ~seq ~op ~args =
    let core = (Sim.self ()).Sim.core in
    let s = slot_addr r core in
    Memory.write t.mem (s + sl_op) op;
    Memory.write t.mem (s + sl_argc) (Array.length args);
    Array.iteri (fun i v -> Memory.write t.mem (s + sl_args + i) v) args;
    if t.cfg.Config.detect then Memory.write t.mem (s + sl_seq) seq;
    Memory.write t.mem (s + sl_ready) 0;
    Memory.write t.mem (s + sl_full) 1;
    (* raise the occupancy bit strictly after [sl_full]: the combiner
       claims bits first and then expects every claimed slot to be full *)
    if t.cfg.Config.slot_bitmap then ignore (Memory.faa t.mem r.occ (1 lsl core))

  (** One non-blocking attempt to collect the outstanding update: the
      slot's response if it is ready, otherwise — after lending a hand as
      combiner if the lock is free, exactly like the spinning path of
      [execute_update] — [None]. Never sleeps; the caller decides whether
      to spin or to make progress elsewhere first. *)
  let try_collect t r =
    let core = (Sim.self ()).Sim.core in
    let s = slot_addr r core in
    if Memory.read t.mem (s + sl_ready) = 1 then begin
      let resp = Memory.read t.mem (s + sl_resp) in
      Memory.write t.mem (s + sl_ready) 0;
      Trace.completed t.trace (Memory.read t.mem (s + sl_ghost));
      Some resp
    end
    else if Locks.Trylock.try_acquire r.combiner then begin
      combine t r;
      Locks.Trylock.release r.combiner;
      if Memory.read t.mem (s + sl_ready) = 1 then begin
        let resp = Memory.read t.mem (s + sl_resp) in
        Memory.write t.mem (s + sl_ready) 0;
        Trace.completed t.trace (Memory.read t.mem (s + sl_ghost));
        Some resp
      end
      else None
    end
    else begin
      help_if_asked t r;
      None
    end

  let collect_update t r =
    let rec wait () =
      match try_collect t r with
      | Some resp -> resp
      | None ->
        Sim.spin ();
        wait ()
    in
    wait ()

  let execute_update t r ~seq ~op ~args =
    submit_update t r ~seq ~op ~args;
    collect_update t r

  let execute_readonly t r ~op ~args =
    let rec loop () =
      let ct = read_ct t in
      if read_local_tail t r >= ct then
        if lsm_needs t r.view ~op ~args then begin
          (* rematerialisation mutates the replica, so a reader that still
             has unresolved keys in its footprint runs under the write
             lock for this one operation *)
          Locks.Rw.write_acquire r.rw;
          lsm_prepare t r.view r.ds ~op ~args;
          let resp = Ds.execute r.ds ~op ~args in
          Locks.Rw.write_release r.rw;
          resp
        end
        else begin
          Locks.Rw.read_acquire r.rw;
          let resp = Ds.execute r.ds ~op ~args in
          Locks.Rw.read_release r.rw;
          resp
        end
      else if Locks.Trylock.try_acquire r.combiner then begin
        (* bring the replica up to date ourselves *)
        Locks.Rw.write_acquire r.rw;
        update_from_log t r ~upto:(read_ct t);
        Locks.Rw.write_release r.rw;
        Locks.Trylock.release r.combiner;
        loop ()
      end
      else begin
        (* Same obligation as [execute_update]'s spin path: while waiting
           for the combiner, service Algorithm 3's updateReplicaNow. A
           reader that only spins here can deadlock the system — if the
           current combiner is stuck in [update_or_wait_on_log_min]
           waiting for *this* replica to catch up, nobody else on the
           socket will ever service the request. *)
        help_if_asked t r;
        Sim.spin ();
        loop ()
      end
    in
    loop ()

  (** The stable global thread id of the calling worker fiber: its socket
      times β plus its core — the index into the announce/response table
      and the tag recovery reconciles against. *)
  let thread_id t =
    let f = Sim.self () in
    (f.Sim.socket * t.beta) + f.Sim.core

  (** ExecuteConcurrent (paper §3/§4.1): run [op] with [args] on the
      concurrent object and return its response. [readonly] defaults to
      the sequential object's own classification.

      Under detectable execution every update is first announced: the op
      descriptor and a client seqno are written to the calling thread's
      persistent announce record and CLFLUSHed before the flat-combining
      slot is published, so the intent is on media before the system can
      act on it. [seqno] must be strictly increasing per thread; when
      omitted, an internal per-thread counter (seeded from the announce
      table itself on recovery) assigns the next one. *)
  let execute ?readonly ?seqno t ~op ~args =
    let r = my_replica t in
    let ro = match readonly with Some b -> b | None -> Ds.is_readonly ~op in
    if ro then execute_readonly t r ~op ~args
    else
      match t.ann with
      | None -> execute_update t r ~seq:0 ~op ~args
      | Some ann ->
        let tid = thread_id t in
        let seq =
          match seqno with Some s -> s | None -> t.next_seq.(tid) + 1
        in
        Phases.in_span t.tel (fun pt -> pt.Phases.detect) (fun () ->
            Announce.announce ann ~tid ~seqno:seq ~op ~args);
        t.next_seq.(tid) <- seq;
        t.detect_announces <- t.detect_announces + 1;
        (match t.tel with
         | Some pt -> Telemetry.Registry.add_to pt.Phases.reg "detect.announce" 1
         | None -> ());
        execute_update t r ~seq ~op ~args

  (* ---- persistence thread (Algorithm 2) ---- *)

  let record_ckpt_cost t t0 =
    t.ckpt_count <- t.ckpt_count + 1;
    t.ckpt_cost_last <- Sim.now () - t0;
    t.ckpt_cost_total <- t.ckpt_cost_total + t.ckpt_cost_last

  let flush_and_swap t =
    Phases.in_span t.tel (fun pt -> pt.Phases.persist) @@ fun () ->
    let t0 = Sim.now () in
    (* injected fault: opening the next window before the checkpoint is
       durable lets completed ops race two windows ahead of the stable
       replica, so a crash mid-flush loses up to ~2ε ops *)
    if t.cfg.Config.fault = Config.Early_boundary_advance then
      write_flush_boundary t (read_flush_boundary t + t.cfg.Config.epsilon);
    (match t.cfg.Config.flush with
     | Config.Wbinvd -> Memory.wbinvd ~site:Persist.Prep_checkpoint t.mem
     | Config.Flush_heap ->
       (* walk the persistent heap and write back whatever is dirty; pays
          per line instead of the WBINVD stall — the small-structure
          alternative of §6 *)
       List.iter
         (fun aid -> Memory.flush_arena ~site:Persist.Prep_checkpoint t.mem aid)
         (Alloc.arenas (Option.get t.p_alloc)));
    Memory.sfence ~site:Persist.Prep_checkpoint t.mem;
    (* swap active/stable and persist the switch before opening the next
       window (see module comment on ordering) *)
    let active = Roots.get t.roots (rslot t slot_active) in
    Roots.set t.roots (rslot t slot_active) (1 - active);
    record_ckpt_cost t t0;
    if t.cfg.Config.fault <> Config.Early_boundary_advance then
      write_flush_boundary t (read_flush_boundary t + t.cfg.Config.epsilon)

  (** The incremental checkpoint ([Config.lsm_ckpt]'s replacement for
      [flush_and_swap]): drain the memtable — exactly the keys written
      since the last seal — into fresh level-0 segments, then publish a
      manifest naming them with [sealed_lt] advanced to the shadow's
      tail. O(dirty) instead of O(replica); there is no active/stable
      swap — the manifest epoch *is* the swap. The planted
      [Manifest_before_segment_seal] fault inverts the publish/build
      order, leaving a crash window where the durable manifest names torn
      segments whose effects [sealed_lt] claims are covered. *)
  let lsm_seal t l =
    Phases.in_span t.tel (fun pt -> pt.Phases.seal) @@ fun () ->
    let t0 = Sim.now () in
    if t.cfg.Config.fault = Config.Early_boundary_advance then
      write_flush_boundary t (read_flush_boundary t + t.cfg.Config.epsilon);
    let reached = Memory.read t.mem t.p_reps.(0).meta in
    let recs = Segment.Memtable.drain_sorted l.Lsm.memtable in
    if Array.length recs > 0 || reached > l.Lsm.sealed_lt then begin
      (* Advancing [sealed_lt] to [reached] asserts that recovery may skip
         replaying entries below it — so every entry the segments cover
         must be durable in the log *before* the manifest naming them is.
         The classic checkpoint gets this for free (WBINVD/heap walk
         flushes the log arenas too); the incremental one must sweep the
         sealed window explicitly or a crash could keep a sealed effect
         whose log entry never reached media. No-op in buffered mode
         (DRAM log), whose recovery never replays. *)
      Log.persist_range t.log ~first:l.Lsm.sealed_lt
        ~n:(reached - l.Lsm.sealed_lt);
      Log.fence t.log;
      let pa = Option.get t.p_alloc in
      let planned =
        if Array.length recs = 0 then []
        else Lsm.plan_segments pa ~level:0 recs
      in
      let metas = List.map (fun (_, _, m) -> m) planned in
      if t.cfg.Config.fault = Config.Manifest_before_segment_seal then begin
        l.Lsm.segs <- metas @ l.Lsm.segs;
        Lsm.publish l ~sealed_lt:reached;
        Lsm.build_planned l ~level:0 planned
      end
      else begin
        (* Build before the metas become visible in [l.segs]: the
           compaction fiber shares this core and yields interleave with
           [Segment.build]'s stores, so publishing an unbuilt segment to
           the mounted set would let a concurrent merge read its
           still-zero records and splice the real ones out of the store
           (silent loss that only a post-crash recovery can see). *)
        Lsm.build_planned l ~level:0 planned;
        l.Lsm.segs <- metas @ l.Lsm.segs;
        Lsm.publish l ~sealed_lt:reached
      end;
      l.Lsm.seals <- l.Lsm.seals + 1;
      l.Lsm.keys_sealed <- l.Lsm.keys_sealed + Array.length recs;
      (* release the log window the seal just covered: the stable tail is
         the seal watermark (see the catch-up path), and advancing it only
         now — after the manifest publish — keeps the replayable suffix
         pinned against reuse until its effects are durable in segments *)
      Memory.write t.mem t.p_reps.(1).meta reached
    end;
    record_ckpt_cost t t0;
    if t.cfg.Config.fault <> Config.Early_boundary_advance then
      write_flush_boundary t (read_flush_boundary t + t.cfg.Config.epsilon)

  let persistence_loop t =
    Context.bind
      ~default:(Alloc.create_volatile t.mem ~home:t.p_socket)
      ?persistent:t.p_alloc ();
    t.p_thread_running <- true;
    let span_name = "persistence" ^ t.cfg.Config.tag in
    (* the whole loop is one root span, so a profile attributes the
       persistence thread's entire lifetime (its self-time is the
       poll/spin overhead left after the catch-up and persist children);
       the [Config.tag] suffix gives each shard's persistence fiber its
       own span and trace track *)
    (match t.tel with
     | Some pt ->
       if t.cfg.Config.tag <> "" then
         Telemetry.Registry.cur_name_track (Sim.self ()).Sim.fid span_name;
       Telemetry.Registry.span_enter pt.Phases.reg
         (Telemetry.Registry.span pt.Phases.reg span_name)
     | None -> ());
    while not t.stop_flag do
      let active = Roots.get t.roots (rslot t slot_active) in
      let rep = t.p_reps.(active) in
      let tail = read_ct t in
      let lt = Memory.read t.mem rep.meta in
      if tail > lt then begin
        (* Bring the active persistent replica up to date. With a
           [txn_gate] installed, stop in front of the first entry whose
           cross-shard commit decision is still pending — keeping the
           progress made so far — and re-poll next cycle; the checkpoint
           below must never contain an effect recovery could roll back. *)
        Phases.in_span t.tel (fun pt -> pt.Phases.catchup) (fun () ->
            let reached = ref lt in
            (match t.lsm with
             | None ->
               Context.with_persistent (fun () ->
                   try
                     for idx = lt to tail - 1 do
                       let op, args = Log.wait_and_read t.log idx in
                       (match t.txn_gate with
                        | Some gate when not (gate ~op ~args) -> raise Exit
                        | _ -> ());
                       ignore (Ds.execute rep.pds ~op ~args);
                       reached := idx + 1
                     done
                   with Exit -> ())
             | Some l ->
               (* The shadow is volatile (default allocator), so no
                  [with_persistent]. After each op the dirty tracker reads
                  the post-image of every written key off the shadow and
                  folds it into the memtable — the value a future segment
                  will carry. *)
               (try
                  for idx = lt to tail - 1 do
                    let op, args = Log.wait_and_read t.log idx in
                    (match t.txn_gate with
                     | Some gate when not (gate ~op ~args) -> raise Exit
                     | _ -> ());
                    lsm_prepare t t.shadow_view rep.pds ~op ~args;
                    ignore (Ds.execute rep.pds ~op ~args);
                    (match Ds.classify ~op ~args with
                     | Seqds.Ds_intf.Keyed { written; _ } ->
                       Array.iter
                         (fun k ->
                           match Ds.key_get rep.pds k with
                           | Some v -> Segment.Memtable.put l.Lsm.memtable k v
                           | None -> Segment.Memtable.del l.Lsm.memtable k)
                         written
                     | Seqds.Ds_intf.Read_all -> ()
                     | Seqds.Ds_intf.Opaque ->
                       invalid_arg
                         "Prep_uc: --lsm-ckpt requires keyed-map operations");
                    reached := idx + 1
                  done
                with Exit -> ()));
            if !reached > lt then
              match t.lsm with
              | None -> Memory.write t.mem rep.meta !reached
              | Some _ ->
                (* Only the active tail follows the shadow. The stable
                   tail is repurposed as the seal watermark: it stays at
                   [sealed_lt] so Algorithm 3's reuse guard keeps every
                   unsealed entry in [sealed_lt, reached) pinned in the
                   log — recovery replays exactly that suffix, and a
                   writer lapping it would overwrite entries the durable
                   state still depends on. When it pins logMin, the
                   laggard-force path lowers the flush boundary, which
                   triggers an early seal instead of an early swap. *)
                Memory.write t.mem t.p_reps.(0).meta !reached)
      end;
      (match t.lsm with
       | Some l -> Lsm.apply_pending l (* fold in a finished merge *)
       | None -> ());
      if read_flush_boundary t <= Memory.read t.mem rep.meta then (
        match t.lsm with
        | Some l -> lsm_seal t l
        | None -> flush_and_swap t)
      else Sim.spin ()
    done;
    (match t.tel with
     | Some pt ->
       Telemetry.Registry.span_exit pt.Phases.reg
         (Telemetry.Registry.span pt.Phases.reg span_name)
     | None -> ());
    t.p_thread_running <- false

  (** Background size-tiered compaction ([Config.lsm_compact]): whenever a
      level accumulates [lsm_fanout] adjacent segments, merge them
      (newest-wins, tombstones dropped only when the run reaches the
      store's oldest segment) into one sealed segment at the next level.
      The fiber builds and seals the merged segments itself but never
      touches the manifest: the finished merge is handed to the
      persistence thread through [l.pending], keeping the manifest
      single-writer. Runs on the persistence core (fibers share cores). *)
  let compaction_loop t l =
    Context.bind
      ~default:(Alloc.create_volatile t.mem ~home:t.p_socket)
      ?persistent:t.p_alloc ();
    while not t.stop_flag do
      match Lsm.pick_merge l with
      | None -> Sim.spin ()
      | Some run ->
        Phases.in_span t.tel (fun pt -> pt.Phases.compact) (fun () ->
            (* a tombstone may only be dropped when nothing older could
               still hold the key it shadows *)
            let oldest_included =
              match List.rev l.Lsm.segs with
              | [] -> false
              | oldest :: _ -> List.memq oldest run
            in
            let seen = Hashtbl.create 256 and acc = ref [] in
            List.iter
              (fun m ->
                Array.iter
                  (fun (k, v) ->
                    if not (Hashtbl.mem seen k) then begin
                      Hashtbl.replace seen k ();
                      if not (oldest_included && v = Segment.tombstone) then
                        acc := (k, v) :: !acc
                    end)
                  (Segment.to_array t.mem m))
              run;
            let recs =
              Array.of_list
                (List.sort (fun (a, _) (b, _) -> compare a b) !acc)
            in
            let level = (List.hd run).Segment.level + 1 in
            let merged =
              if Array.length recs = 0 then []
              else begin
                let pa = Option.get t.p_alloc in
                let planned = Lsm.plan_segments pa ~level recs in
                Lsm.build_planned l ~level planned;
                List.map (fun (_, _, m) -> m) planned
              end
            in
            l.Lsm.pending <- Some { Lsm.replaced = run; merged });
        (* wait for the persistence thread to fold the merge into the
           manifest before scanning for the next one *)
        while l.Lsm.pending <> None && not t.stop_flag do
          Sim.spin ()
        done
    done

  (** Spawn the persistence thread on its dedicated core — plus, under
      [--lsm-ckpt] with compaction enabled, the compaction fiber sharing
      that core. No-op for the volatile variant. *)
  let start_persistence t =
    if has_persistence t then begin
      Sim.spawn_here ~socket:t.p_socket ~core:(t.beta - 1) (fun () ->
          persistence_loop t);
      match t.lsm with
      | Some l when t.cfg.Config.lsm_compact ->
        Sim.spawn_here ~socket:t.p_socket ~core:(t.beta - 1) (fun () ->
            compaction_loop t l)
      | _ -> ()
    end

  let stop t = t.stop_flag <- true

  (* ---- observation ---- *)

  let trace t = t.trace
  let prefill_ops t = t.prefill

  (** Harness-side counters for the gated hot-path optimisations (all zero
      when the corresponding flag is off), keyed for the bench JSON. *)
  let lsm_counter t f = match t.lsm with Some l -> f l | None -> 0

  let counters t =
    let read_acquires = ref 0 and writer_sweeps = ref 0 in
    Array.iter
      (fun r ->
        read_acquires := !read_acquires + Locks.Rw.read_acquires r.rw;
        writer_sweeps := !writer_sweeps + Locks.Rw.writer_sweeps r.rw)
      t.replicas;
    [
      ("rw_read_acquires", !read_acquires);
      ("rw_writer_sweeps", !writer_sweeps);
      ("log_primary_reads", t.log.Log.primary_reads);
      ("log_mirror_reads", t.log.Log.mirror_reads);
      ("log_mirror_stores", t.log.Log.mirror_stores);
      ("bitmap_empty_exits", t.bmp_empty_exits);
      ("bitmap_slots_skipped", t.bmp_slots_skipped);
      ("detect_announces", t.detect_announces);
      ("detect_responses", t.detect_responses);
      ("detect_reconciled", t.detect_reconciled);
      ("ckpt_count", t.ckpt_count);
      ("ckpt_cost_total", t.ckpt_cost_total);
      ("ckpt_cost_last", t.ckpt_cost_last);
      ("lsm_seals", lsm_counter t (fun l -> l.Lsm.seals));
      ("lsm_segments_built", lsm_counter t (fun l -> l.Lsm.segments_built));
      ("lsm_keys_sealed", lsm_counter t (fun l -> l.Lsm.keys_sealed));
      ("lsm_compactions", lsm_counter t (fun l -> l.Lsm.compactions));
      ("lsm_segments_live", lsm_counter t (fun l -> List.length l.Lsm.segs));
      ("lsm_bloom_skips", lsm_counter t (fun l -> l.Lsm.bloom_skips));
      ("lsm_range_skips", lsm_counter t (fun l -> l.Lsm.range_skips));
      ("lsm_seg_finds", lsm_counter t (fun l -> l.Lsm.seg_finds));
      ("lsm_materialized", lsm_counter t (fun l -> l.Lsm.materialized));
    ]

  (** Port the instance's counters onto registry [reg], *adding* to any
      values already there — so sampling several instances into one
      registry sums them. Keys are unchanged from the pre-telemetry bench
      JSON (the counter-key compatibility guarantee). *)
  let sample t reg =
    List.iter
      (fun (k, v) -> Telemetry.Registry.add_to reg k v)
      (counters t)

  (** Bring every volatile replica up to date with the completedTail.
      Convenience for quiescent observation (tests, examples); not part of
      the paper's interface. Must run inside a bound fiber. *)
  let sync t =
    Array.iter
      (fun r ->
        Locks.Rw.write_acquire r.rw;
        Context.with_allocator r.alloc (fun () ->
            update_from_log t r ~upto:(read_ct t));
        Locks.Rw.write_release r.rw)
      t.replicas

  (** Cost-free snapshot of the abstract state (replica 0's view). Under
      [--lsm-ckpt] a partially-hydrated replica's snapshot is the merge of
      its ds (truth for every resolved key) over the segment store's live
      view (truth for the rest) — the flattened sorted-pair convention of
      the keyed maps. *)
  let snapshot t =
    let r = t.replicas.(0) in
    match t.lsm with
    | Some l when not r.view.hydrated ->
      let rec pairs = function
        | k :: v :: rest -> (k, v) :: pairs rest
        | _ -> []
      in
      let own = pairs (Ds.snapshot r.ds) in
      let store =
        List.filter
          (fun (k, _) -> not (Hashtbl.mem r.view.resolved k))
          (Lsm.peek_live l)
      in
      List.concat_map
        (fun (k, v) -> [ k; v ])
        (List.sort compare (own @ store))
    | _ -> Ds.snapshot r.ds

  (** Cost-free snapshot of the stable persistent state: the stable
      replica's current (coherent) view, or — under [--lsm-ckpt] — the
      live merge of the sealed segment set (what a crash right now is
      guaranteed to recover without any log replay). *)
  let stable_snapshot t =
    match t.lsm with
    | Some l ->
      List.concat_map (fun (k, v) -> [ k; v ]) (Lsm.peek_live l)
    | None ->
      let active =
        Memory.peek t.mem (Roots.addr t.roots (rslot t slot_active))
      in
      Ds.snapshot t.p_reps.(1 - active).pds

  (** Order-independent hash of every bit of volatile [--lsm-ckpt] state
      the memory fingerprints cannot see — memtable, mounted segment set,
      pending merges, per-replica hydration — for the explorer's state
      dedup. Zero when the backend is off. *)
  let lsm_ghost t =
    match t.lsm with
    | None -> 0
    | Some l ->
      let view_hash v =
        Hashtbl.fold
          (fun k () acc -> acc lxor Memory.mix k)
          v.resolved
          (if v.hydrated then 1 else 2)
      in
      let h = ref (Lsm.ghost l) in
      Array.iter (fun r -> h := Memory.h2 !h (view_hash r.view)) t.replicas;
      h := Memory.h2 !h (view_hash t.shadow_view);
      !h

  (* ---- recovery (paper §5.1 / §5.2) ---- *)

  (* Classic (whole-replica checkpoint) recovery: attach the stable NVM
     replica and replay the durable log suffix past its tail. *)
  let recover_classic old_t =
    let mem = old_t.mem and roots = old_t.roots and cfg = old_t.cfg in
    Context.bind ~default:(Alloc.create_volatile mem ~home:0) ();
    let rb = cfg.Config.root_base in
    let active = Roots.get roots (rb + slot_active) in
    let stable = 1 - active in
    let stable_meta =
      Roots.get roots (rb + if stable = 0 then slot_meta0 else slot_meta1)
    in
    let stable_lt = Memory.read mem stable_meta in
    let stable_root = Memory.read mem (stable_meta + 1) in
    let stable_ds = Ds.attach mem stable_root in
    (* a fresh persistent allocator: pre-crash NVM arenas are left alone,
       so a crash can leak recovered-heap space but never corrupt it *)
    let p_home = (Sim.topology ()).Sim.Topology.sockets - 1 in
    Context.set_persistent (Alloc.create_persistent mem ~home:p_home);
    (* decide which trace indexes the recovered state contains *)
    let applied_prefix = List.init stable_lt (fun i -> i) in
    let reconciled = ref 0 in
    let replayed =
      if cfg.Config.mode = Config.Durable then begin
        (* replay the recovered log from the stable replica's tail to the
           recovered completedTail, skipping holes (unpersisted entries) *)
        let ct_addr = Roots.get roots (rb + slot_ct) in
        let ct = Memory.read mem ct_addr in
        let log_base = Roots.get roots (rb + slot_log) in
        (* replay must read the NVM media truth, never the (volatile) DRAM
           mirror — the planted [Mirror_read_on_recovery] fault does
           exactly that wrong thing so the fuzzer can prove it notices *)
        let mirror =
          if cfg.Config.fault = Config.Mirror_read_on_recovery then
            Log.mirror_base old_t.log
          else None
        in
        let log =
          Log.attach mem ~base:log_base ~size:cfg.Config.log_size
            ~durable:true ~mirror
        in
        let ann =
          if cfg.Config.detect then
            let base = Roots.get roots (rb + slot_announce) in
            if base <> Memory.null then
              Some
                (Announce.attach mem ~base
                   ~threads:(Sim.Topology.total_cores (Sim.topology ())))
            else None
          else None
        in
        (* Under detectable execution the scan continues past the recovered
           completedTail: a combiner's responses are fenced *before* its
           completedTail CLFLUSH, so a crash in between leaves durable
           responses whose entries sit beyond the media completedTail —
           skipping them would break R1 (resolve would say Completed for an
           op the recovered state lost). One log lap bounds the scan: no
           live entry can sit further ahead, and stale-lap slots read as
           holes (or, for never-reserved slots on odd laps, carry no seqno
           tag and are rejected below). Holes anywhere are uncompleted ops,
           which durable linearizability already permits dropping. *)
        let scan_to =
          if cfg.Config.detect then ct + cfg.Config.log_size else ct
        in
        let replayed = ref [] in
        Context.with_persistent (fun () ->
            for idx = stable_lt to scan_to - 1 do
              if
                Log.is_full log idx
                && (idx < ct || snd (Log.read_tag log idx) > 0)
                && (match old_t.replay_keep with
                    | None -> true
                    | Some keep ->
                      (* sharded transactions: an entry whose cross-shard
                         commit decision is absent from the post-crash
                         media is rolled back — skipped like a log hole *)
                      let op, args = Log.read_payload log idx in
                      keep ~op ~args)
              then begin
                let op, args = Log.read_payload log idx in
                let resp = Ds.execute stable_ds ~op ~args in
                replayed := idx :: !replayed;
                (* replay reconciliation: rewrite the submitting thread's
                   response slot with the replay-computed result so resolve
                   reflects every op the recovered state actually contains
                   (R2 for replayed entries). Monotone: never regress a slot
                   that already covers a later seqno. *)
                match ann with
                | Some a ->
                  let tid, seqno = Log.read_tag log idx in
                  if seqno > 0 && Announce.response_seqno a ~tid < seqno
                  then begin
                    Announce.write_response a ~tid ~seqno ~result:resp;
                    Announce.flush_response a ~tid;
                    incr reconciled
                  end
                | None -> ()
              end
            done);
        List.rev !replayed
      end
      else []
    in
    let applied = applied_prefix @ replayed in
    (* durability accounting against the ghost trace *)
    let applied_set = Hashtbl.create 256 in
    List.iter (fun i -> Hashtbl.replace applied_set i ()) applied;
    let completed = Trace.completed_indexes old_t.trace in
    let lost_completed =
      List.length (List.filter (fun i -> not (Hashtbl.mem applied_set i)) completed)
    in
    let skipped_completed =
      match replayed with
      | [] ->
        List.length
          (List.filter (fun i -> i < stable_lt && not (Hashtbl.mem applied_set i)) completed)
      | _ ->
        (* holes are indexes in [stable_lt, ct) missing from [replayed] *)
        let ct_addr = Roots.get roots (rb + slot_ct) in
        let ct = Memory.read mem ct_addr in
        List.length
          (List.filter
             (fun i -> i >= stable_lt && i < ct && not (Hashtbl.mem applied_set i))
             completed)
    in
    let contiguous_prefix =
      let rec check expect = function
        | [] -> true
        | i :: rest -> i = expect && check (expect + 1) rest
      in
      check 0 applied
    in
    let report =
      { applied; lost_completed; skipped_completed; contiguous_prefix;
        reconciled = !reconciled }
    in
    (* fold the recovered ops into the new instance's prefill so that
       checkers after a subsequent crash keep working *)
    let recovered_ops =
      List.map
        (fun i ->
          let e = Trace.get old_t.trace i in
          (e.Trace.op, e.Trace.args))
        applied
    in
    let prefill = old_t.prefill @ recovered_ops in
    let t = build mem roots cfg ~prefill ~master:(Some stable_ds) in
    t.detect_reconciled <- !reconciled;
    (t, report)

  (* Incremental-checkpoint recovery ([Config.lsm_ckpt]): mount the
     manifest (torn newest record falls back to the previous epoch inside
     [Manifest.load]) and the segment set it names — dropping torn
     segments, which only the planted fault can produce — then replay just
     the durable log suffix past [sealed_lt] against an empty volatile
     master, rematerialising exactly the keys the replay touches. Time to
     first operation is O(suffix), independent of the object's size. The
     replay's dirty set is sealed into fresh segments and a new manifest
     epoch is published with [sealed_lt] reset, because the rebuilt
     instance starts a fresh log. *)
  let recover_lsm old_t =
    let mem = old_t.mem and roots = old_t.roots and cfg = old_t.cfg in
    Context.bind ~default:(Alloc.create_volatile mem ~home:0) ();
    let rb = cfg.Config.root_base in
    let manifest =
      Manifest.attach mem ~base:(Roots.get roots (lsm_manifest_slot rb))
    in
    let mrec =
      match Manifest.load manifest with
      | Some r -> r
      | None ->
        (* the initial publish is fenced before any op can complete *)
        failwith "Prep_uc.recover: no valid manifest record on media"
    in
    let segs = List.filter_map (Segment.mount mem) mrec.Manifest.segs in
    let sealed_lt = mrec.Manifest.sealed_lt in
    let p_home = (Sim.topology ()).Sim.Topology.sockets - 1 in
    let pa = Alloc.create_persistent mem ~home:p_home in
    Context.set_persistent pa;
    (* the recovered master: an empty volatile structure, hydrated from
       the mounted segments only where the replay needs it *)
    let master = Ds.create mem in
    let resolved = Hashtbl.create 256 in
    let dirty = Hashtbl.create 64 in
    let touch key =
      if not (Hashtbl.mem resolved key) then begin
        let rec go = function
          | [] -> ()
          | m :: rest -> (
            match Segment.lookup mem m key with
            | Some v ->
              if v <> Segment.tombstone then Ds.key_put master key v
            | None -> go rest)
        in
        go segs;
        Hashtbl.replace resolved key ()
      end
    in
    let prepare_replay ~op ~args =
      match Ds.classify ~op ~args with
      | Seqds.Ds_intf.Keyed { written; read } ->
        Array.iter touch written;
        Array.iter touch read;
        Array.iter (fun k -> Hashtbl.replace dirty k ()) written
      | Seqds.Ds_intf.Read_all ->
        List.iter
          (fun m ->
            Array.iter (fun (k, _) -> touch k) (Segment.to_array mem m))
          segs
      | Seqds.Ds_intf.Opaque ->
        invalid_arg "Prep_uc: --lsm-ckpt requires keyed-map operations"
    in
    let applied_prefix = List.init sealed_lt (fun i -> i) in
    let reconciled = ref 0 in
    let replayed, ct =
      if cfg.Config.mode = Config.Durable then begin
        let ct = Memory.read mem (Roots.get roots (rb + slot_ct)) in
        (* same media-truth rule (and planted mirror fault) as classic *)
        let mirror =
          if cfg.Config.fault = Config.Mirror_read_on_recovery then
            Log.mirror_base old_t.log
          else None
        in
        let log =
          Log.attach mem ~base:(Roots.get roots (rb + slot_log))
            ~size:cfg.Config.log_size ~durable:true ~mirror
        in
        let ann =
          if cfg.Config.detect then
            let base = Roots.get roots (rb + slot_announce) in
            if base <> Memory.null then
              Some
                (Announce.attach mem ~base
                   ~threads:(Sim.Topology.total_cores (Sim.topology ())))
            else None
          else None
        in
        let scan_to =
          if cfg.Config.detect then ct + cfg.Config.log_size else ct
        in
        let replayed = ref [] in
        for idx = sealed_lt to scan_to - 1 do
          if
            Log.is_full log idx
            && (idx < ct || snd (Log.read_tag log idx) > 0)
            && (match old_t.replay_keep with
               | None -> true
               | Some keep ->
                 let op, args = Log.read_payload log idx in
                 keep ~op ~args)
          then begin
            let op, args = Log.read_payload log idx in
            prepare_replay ~op ~args;
            let resp = Ds.execute master ~op ~args in
            replayed := idx :: !replayed;
            match ann with
            | Some a ->
              let tid, seqno = Log.read_tag log idx in
              if seqno > 0 && Announce.response_seqno a ~tid < seqno
              then begin
                Announce.write_response a ~tid ~seqno ~result:resp;
                Announce.flush_response a ~tid;
                incr reconciled
              end
            | None -> ()
          end
        done;
        (List.rev !replayed, ct)
      end
      else ([], sealed_lt)
    in
    (* seal the replay's effects: anything dirty that stayed only in the
       volatile master would be lost by the *next* crash once [sealed_lt]
       resets below *)
    let new_metas =
      let recs =
        Hashtbl.fold
          (fun k () acc ->
            match Ds.key_get master k with
            | Some v -> (k, v) :: acc
            | None -> (k, Segment.tombstone) :: acc)
          dirty []
      in
      let recs =
        Array.of_list (List.sort (fun (a, _) (b, _) -> compare a b) recs)
      in
      if Array.length recs = 0 then []
      else begin
        let planned = Lsm.plan_segments pa ~level:0 recs in
        List.iter
          (fun (addr, chunk, _) ->
            ignore (Segment.build mem ~addr ~level:0 chunk))
          planned;
        List.map (fun (_, _, m) -> m) planned
      end
    in
    let all_segs = new_metas @ segs in
    Manifest.publish manifest ~epoch:(mrec.Manifest.epoch + 1) ~sealed_lt:0
      ~segs:(List.map (fun m -> m.Segment.addr) all_segs);
    (* durability accounting against the ghost trace *)
    let applied = applied_prefix @ replayed in
    let applied_set = Hashtbl.create 256 in
    List.iter (fun i -> Hashtbl.replace applied_set i ()) applied;
    let completed = Trace.completed_indexes old_t.trace in
    let lost_completed =
      List.length
        (List.filter (fun i -> not (Hashtbl.mem applied_set i)) completed)
    in
    let skipped_completed =
      match replayed with
      | [] ->
        List.length
          (List.filter
             (fun i -> i < sealed_lt && not (Hashtbl.mem applied_set i))
             completed)
      | _ ->
        List.length
          (List.filter
             (fun i ->
               i >= sealed_lt && i < ct && not (Hashtbl.mem applied_set i))
             completed)
    in
    let contiguous_prefix =
      let rec check expect = function
        | [] -> true
        | i :: rest -> i = expect && check (expect + 1) rest
      in
      check 0 applied
    in
    let report =
      { applied; lost_completed; skipped_completed; contiguous_prefix;
        reconciled = !reconciled }
    in
    let recovered_ops =
      List.map
        (fun i ->
          let e = Trace.get old_t.trace i in
          (e.Trace.op, e.Trace.args))
        applied
    in
    let prefill = old_t.prefill @ recovered_ops in
    let carry =
      { Lsm.c_manifest = manifest; c_segs = all_segs;
        c_epoch = mrec.Manifest.epoch + 1; c_resolved = resolved }
    in
    let t =
      build ~lsm_carry:carry mem roots cfg ~prefill ~master:(Some master)
    in
    t.detect_reconciled <- !reconciled;
    (t, report)

  (** Recover after [Memory.crash]. [old_t] supplies configuration and the
      ghost trace; all simulated-memory state is read back from NVM media
      through the root directory. Returns the rebuilt UC and a report for
      the durability checkers. Must run inside a fiber. *)
  let recover old_t =
    if not (has_persistence old_t) then
      invalid_arg "Prep_uc.recover: volatile variant cannot recover";
    if old_t.lsm <> None then recover_lsm old_t else recover_classic old_t

  (* ---- detectability queries ---- *)

  let require_ann t =
    match t.ann with
    | Some a -> a
    | None -> invalid_arg "Prep_uc: detectable execution is not enabled"

  (** Raw view of thread [tid]'s announce and response records. Charged
      simulated reads; coherent view (equals media right after a crash). *)
  let detect_state t ~tid =
    let a = require_ann t in
    (Announce.announced a ~tid, Announce.response a ~tid)

  (** The recovery-side detectability query (run it on the *recovered*
      instance, after [recover] has reconciled response slots from the
      log): what should thread [tid] conclude about its last announced
      operation? Clients re-submit exactly when the verdict is [Lost] —
      or [Unannounced] while they know they had something in flight,
      which can only happen if the very first announce tore before its
      flush returned, i.e. before the op could have been submitted. *)
  let resolve t ~tid =
    let a = require_ann t in
    match (Announce.response a ~tid, Announce.announced a ~tid) with
    | ( Announce.Valid { seqno; payload = result; _ },
        Announce.Valid { seqno = announced; _ } ) ->
      if announced > seqno then
        (* announced a later op than any response covers: it is lost *)
        Lost { seqno = announced }
      else Completed { seqno; result }
    | Announce.Valid { seqno; payload = result; _ },
      (Announce.Torn _ | Announce.Empty) ->
      (* the response is the latest trustworthy word: a torn announce's op
         was never submitted (its flush never returned), so the response
         still names the last op that took effect *)
      Completed { seqno; result }
    | (Announce.Torn _ | Announce.Empty), Announce.Valid { seqno; _ } ->
      (* a durable intent with no durable effect. A torn response slot
         cannot hide a completed op: responses are fenced before the
         completedTail advances and rewritten by replay reconciliation, so
         anything recovered has a valid response *)
      Lost { seqno }
    | (Announce.Torn _ | Announce.Empty), (Announce.Torn _ | Announce.Empty)
      ->
      Unannounced
end
