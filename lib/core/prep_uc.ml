(** PREP-UC: the replicated persistent universal construction (paper §4–5).

    One functor implements all three variants of the paper:

    - [Config.Volatile] — PREP-V, the node-replication UC of Calciu et al.
      with all persistence code removed (used as the volatile baseline in
      Fig. 1);
    - [Config.Buffered] — PREP-Buffered (§5.1): the log and completedTail
      stay in DRAM; two dedicated persistent replicas in NVM are maintained
      by a persistence thread and checkpointed every ε operations with
      WBINVD; at most ε+β−1 completed operations are lost per crash;
    - [Config.Durable] — PREP-Durable (§5.2): additionally places the log
      and completedTail in NVM and persists log entries (CLWB+SFENCE) and
      the completedTail (CLFLUSH after CAS) before operations complete.

    Worker threads are fibers pinned one per simulated core; the replica a
    worker uses is its socket's, and its flat-combining slot is its core's.
    The persistence thread runs on the last core of the last socket, which
    the harness never assigns to a worker (the paper similarly uses at most
    95 of 96 hardware threads).

    Deviations from the paper's pseudocode, both liveness fixes:
    - the persistence thread evaluates the flush condition on every loop
      iteration, not only after applying new operations; otherwise a
      combiner that lowers the flushBoundary (Algorithm 3's helping path)
      after the persistence thread caught up would deadlock it;
    - the active/stable swap and its CLFLUSH happen *before* advancing the
      flushBoundary, so the ε+β−1 loss bound holds without assuming the
      two steps are atomic. *)

open Nvm

(* Root directory slots, relative to the instance's [Config.root_base]
   (shard [i] of a sharded construction registers its roots at [i * 8], so
   several instances share one root directory; the classic layout is
   base 0). *)
let slot_active = 1 (* p_activePReplica *)
let slot_meta0 = 2 (* address of persistent replica 0's metadata block *)
let slot_meta1 = 3 (* address of persistent replica 1's metadata block *)
let slot_ct = 4 (* address of d_completedTail (durable only) *)
let slot_log = 5 (* log base address (durable only) *)
let slot_announce = 6 (* announce/response table base (detect only) *)

(* Control-arena word offsets (one cache line apart). *)
let off_log_tail = 8
let off_log_min = 16
let off_flush_boundary = 24
let off_update_now = 32 (* one word per volatile replica *)

let slot_words = 16 (* flat-combining slot: 2 cache lines per core *)

(* slot field offsets *)
let sl_full = 0
let sl_op = 1
let sl_argc = 2
let sl_args = 3 (* 3 words *)
let sl_resp = 6
let sl_ready = 7
let sl_ghost = 8
let sl_seq = 9 (* client seqno of the published op (detect only) *)

type recovery_report = {
  applied : int list;
      (** trace indexes recovered, in linearization order *)
  lost_completed : int;
      (** completed operations not present in the recovered state *)
  skipped_completed : int;
      (** completed operations skipped as log holes — must always be 0 *)
  contiguous_prefix : bool;
      (** whether [applied] is a gap-free prefix of the linearization *)
  reconciled : int;
      (** response slots rewritten by replay reconciliation (detect only) *)
}

(** Verdict of the recovery-side detectability query ([resolve]): what a
    client should conclude about its last announced operation. *)
type resolution =
  | Completed of { seqno : int; result : int }
      (** the op with this seqno took effect and its result is durable;
          anything the client submitted after it was never announced *)
  | Lost of { seqno : int }
      (** the announce for [seqno] is durable but no response covers it:
          the op did not survive the crash and must be re-submitted *)
  | Unannounced
      (** no trustworthy announce or response exists for this thread —
          it never submitted anything (or tore its very first announce,
          which is the same thing: nothing can have taken effect) *)

module Make (Ds : Seqds.Ds_intf.S) = struct
  type replica = {
    rid : int;
    socket : int;
    ds : Ds.handle;
    alloc : Alloc.t;
    lt_addr : int; (* localTail *)
    combiner : Locks.Trylock.t;
    rw : Locks.Rw.t;
    slots : int; (* base address of beta slots *)
    occ : int;
        (* slot-occupancy summary word ([Config.slot_bitmap]): bit [core]
           is raised after the core's slot is published, so the combiner
           collects only set bits instead of sweeping all beta slots *)
  }

  type preplica = {
    meta : int; (* NVM block: [0] localTail, [1] ds root address *)
    mutable pds : Ds.handle;
  }

  type t = {
    mem : Memory.t;
    roots : Roots.t;
    cfg : Config.t;
    beta : int;
    n_replicas : int;
    replicas : replica array;
    log : Log.t;
    ctrl : int; (* control arena base address *)
    ct_addr : int; (* completedTail (NVM in durable mode) *)
    p_alloc : Alloc.t option;
    p_reps : preplica array; (* 2 entries, or empty when volatile *)
    p_socket : int;
    trace : Trace.t;
    prefill : (int * int array) list;
        (* ops establishing the initial state, for the checkers *)
    ann : Announce.t option;
        (* persistent announce/response table ([Config.detect] only) *)
    next_seq : int array;
        (* ghost per-thread auto-seqno counters, seeded from the announce
           table at build time so recovered clients continue their own
           sequence; empty unless detect *)
    mutable stop_flag : bool;
    mutable p_thread_running : bool;
    (* harness-side optimisation counters (no simulated cost) *)
    mutable bmp_empty_exits : int;
    mutable bmp_slots_skipped : int;
    (* detectability counters (no simulated cost) *)
    mutable detect_announces : int;
    mutable detect_responses : int;
    mutable detect_reconciled : int;
    mutable txn_gate : (op:int -> args:int array -> bool) option;
        (* Sharded-transaction hook ([Sharded_uc]): called by the
           persistence thread before applying a log entry to the active
           persistent replica. [false] means the entry is a cross-shard
           prepare whose commit decision is still pending — the catch-up
           stops in front of it (progress so far is kept) and retries on
           the next cycle, so a checkpoint can never bake in an effect
           that recovery might have to roll back. The gate must make the
           decision it approves durable before returning [true]. *)
    mutable replay_keep : (op:int -> args:int array -> bool) option;
        (* Sharded-transaction hook: recovery replay applies an entry only
           if this returns [true]. The sharded layer answers from the
           post-crash decision-table media: committed prepares roll
           forward, unprepared/aborted ones are skipped like log holes. *)
    tel : Phases.t option;
        (* phase spans, captured from the ambient telemetry registry at
           construction; [None] on uninstrumented runs *)
  }

  let durable t = t.cfg.Config.mode = Config.Durable
  let has_persistence t = t.cfg.Config.mode <> Config.Volatile

  (* this instance's absolute root slot for relative slot [s] *)
  let rslot t s = t.cfg.Config.root_base + s

  (* ---- control-word helpers ---- *)

  let read_log_tail t = Memory.read t.mem (t.ctrl + off_log_tail)
  let read_log_min t = Memory.read t.mem (t.ctrl + off_log_min)
  let write_log_min t v = Memory.write t.mem (t.ctrl + off_log_min) v
  let read_flush_boundary t = Memory.read t.mem (t.ctrl + off_flush_boundary)

  let write_flush_boundary t v =
    Memory.write t.mem (t.ctrl + off_flush_boundary) v

  let update_now_addr t rid = t.ctrl + off_update_now + rid
  let read_ct t = Memory.read t.mem t.ct_addr
  let read_local_tail t r = Memory.read t.mem r.lt_addr

  let read_p_local_tail t p = Memory.read t.mem t.p_reps.(p).meta

  (* ---- construction ---- *)

  let apply_ops ds ops =
    List.iter (fun (op, args) -> ignore (Ds.execute ds ~op ~args)) ops

  (* Build a full UC instance around [master]'s current contents. Runs
     inside a fiber; the caller's allocator binding is replaced. *)
  let build mem roots cfg ~prefill ~master =
    let topo = Sim.topology () in
    let beta = topo.Sim.Topology.cores_per_socket in
    Config.validate cfg ~beta;
    if cfg.Config.flit then Memory.set_flit mem true;
    let workers = min cfg.Config.workers (Sim.Topology.total_cores topo - 1) in
    let n_replicas =
      min topo.Sim.Topology.sockets ((workers + beta - 1) / beta)
    in
    let p_socket = topo.Sim.Topology.sockets - 1 in
    let ctrl_aid = Memory.new_arena mem ~kind:Memory.Dram ~home:0 in
    let ctrl = Memory.addr_of ~aid:ctrl_aid ~offset:0 in
    let mode = cfg.Config.mode in
    let log =
      Log.create mem ~mirror:cfg.Config.log_mirror ~size:cfg.Config.log_size
        ~durable:(mode = Config.Durable)
    in
    Memory.write mem (ctrl + off_log_tail) 0;
    Memory.write mem (ctrl + off_log_min) (cfg.Config.log_size - 1);
    Memory.write mem (ctrl + off_flush_boundary)
      (if mode = Config.Volatile then max_int / 2 else cfg.Config.epsilon);
    (* volatile replicas, one per occupied socket *)
    let master_ds =
      match master with
      | Some ds -> ds
      | None ->
        (* an empty master, built in a scratch volatile heap *)
        let scratch = Alloc.create_volatile mem ~home:0 in
        Context.set_default scratch;
        let ds = Ds.create mem in
        apply_ops ds prefill;
        ds
    in
    let make_replica rid =
      let alloc = Alloc.create_volatile mem ~home:rid in
      Context.set_default alloc;
      let ds = Ds.copy master_ds in
      let lt_addr = Alloc.alloc alloc 8 in
      let combiner = Locks.Trylock.make mem (Alloc.alloc alloc 8) in
      let dist = cfg.Config.dist_rw in
      let rw_words = max Memory.line_words (Locks.Rw.size_words ~dist ~ncores:beta) in
      (* over-allocate one line and round up: the distributed lock's
         per-core padding only isolates lines if its base is line-aligned,
         and the preceding Ds.copy allocations need not leave the bump
         pointer on a line boundary *)
      let rw_raw = Alloc.alloc alloc (rw_words + Memory.line_words) in
      let rw_base =
        (rw_raw + Memory.line_words - 1) / Memory.line_words * Memory.line_words
      in
      let rw = Locks.Rw.make ~dist ~ncores:beta mem rw_base in
      let slots = Alloc.alloc alloc (beta * slot_words) in
      let occ = Alloc.alloc alloc 8 in
      Memory.write mem occ 0;
      Memory.write mem lt_addr 0;
      Memory.write mem (ctrl + off_update_now + rid) 0;
      { rid; socket = rid; ds; alloc; lt_addr; combiner; rw; slots; occ }
    in
    let replicas = Array.init n_replicas make_replica in
    (* persistent side *)
    let p_alloc, p_reps, ct_addr =
      if mode = Config.Volatile then begin
        let ct = ctrl + 40 in
        Memory.write mem ct 0;
        (None, [||], ct)
      end
      else begin
        let pa = Alloc.create_persistent mem ~home:p_socket in
        Context.set_persistent pa;
        let ct_addr =
          if mode = Config.Durable then begin
            let a = Alloc.alloc pa 8 in
            Memory.write mem a 0;
            Memory.clflush ~site:"prep.init" mem a;
            a
          end
          else begin
            let ct = ctrl + 40 in
            Memory.write mem ct 0;
            ct
          end
        in
        let make_prep () =
          Context.with_persistent (fun () ->
              let pds = Ds.copy master_ds in
              let meta = Alloc.alloc pa 8 in
              Memory.write mem meta 0;
              Memory.write mem (meta + 1) (Ds.root_addr pds);
              { meta; pds })
        in
        let p0 = make_prep () and p1 = make_prep () in
        (* checkpoint zero: both replicas durable before any operation *)
        Alloc.persist_heap pa;
        let rb = cfg.Config.root_base in
        Roots.set roots (rb + slot_active) 0;
        Roots.set roots (rb + slot_meta0) p0.meta;
        Roots.set roots (rb + slot_meta1) p1.meta;
        if mode = Config.Durable then begin
          Roots.set roots (rb + slot_ct) ct_addr;
          Roots.set roots (rb + slot_log) log.Log.base
        end;
        (Some pa, [| p0; p1 |], ct_addr)
      end
    in
    (* announce/response table: reattach the pre-crash one through its root
       (recovery must keep the records a crash left behind), create and
       register a fresh one on first build *)
    let n_threads = Sim.Topology.total_cores topo in
    let ann =
      if not cfg.Config.detect then None
      else begin
        let rb = cfg.Config.root_base in
        let existing = Roots.get roots (rb + slot_announce) in
        if existing <> Memory.null then
          Some (Announce.attach mem ~base:existing ~threads:n_threads)
        else begin
          let a = Announce.create (Option.get p_alloc) ~threads:n_threads in
          Roots.set roots (rb + slot_announce) (Announce.base a);
          Some a
        end
      end
    in
    let next_seq =
      match ann with
      | None -> [||]
      | Some a -> Array.init n_threads (Announce.peek_seqno a)
    in
    {
      mem;
      roots;
      cfg;
      beta;
      n_replicas;
      replicas;
      log;
      ctrl;
      ct_addr;
      p_alloc;
      p_reps;
      p_socket;
      trace = Trace.create ();
      prefill;
      ann;
      next_seq;
      stop_flag = false;
      p_thread_running = false;
      bmp_empty_exits = 0;
      bmp_slots_skipped = 0;
      detect_announces = 0;
      detect_responses = 0;
      detect_reconciled = 0;
      txn_gate = None;
      replay_keep = None;
      tel = Phases.make ~tag:cfg.Config.tag ();
    }

  (** Create a UC whose initial object state is [prefill] applied to an
      empty object. Must be called from inside a fiber. *)
  let create ?(prefill = []) mem roots cfg =
    (* give the creating fiber a binding so Context.alloc works *)
    Context.bind ~default:(Alloc.create_volatile mem ~home:0) ();
    build mem roots cfg ~prefill ~master:None

  (* ---- worker-side machinery ---- *)

  (** Bind the calling fiber to its socket's replica. Must be called once
      at the start of every worker fiber. *)
  let register_worker t =
    let socket = Sim.socket () in
    if socket >= t.n_replicas then
      invalid_arg "Prep_uc: worker on a socket with no replica";
    Context.bind ~default:t.replicas.(socket).alloc ()

  let my_replica t = t.replicas.(Sim.socket ())

  (** Apply published log entries [localTail, upto) to replica [r]. Caller
      holds the replica's write lock and has the right allocator bound. *)
  let update_from_log t r ~upto =
    let lt = read_local_tail t r in
    if upto > lt then
      Phases.in_span t.tel (fun pt -> pt.Phases.catchup) (fun () ->
          for idx = lt to upto - 1 do
            let op, args = Log.wait_and_read t.log idx in
            ignore (Ds.execute r.ds ~op ~args)
          done;
          Memory.write t.mem r.lt_addr upto)

  (** Algorithm 3's helping mechanism, worker side: while waiting, a
      combiner checks whether someone asked its replica to catch up. *)
  let help_if_asked t r =
    if Memory.read t.mem (update_now_addr t r.rid) = 1 then begin
      Locks.Rw.write_acquire r.rw;
      update_from_log t r ~upto:(read_ct t);
      Locks.Rw.write_release r.rw;
      Memory.write t.mem (update_now_addr t r.rid) 0
    end

  (** Algorithm 3: advance (or wait on) logMin so the entries we are about
      to write are safe to reuse. [old_tail, new_tail) is our reservation. *)
  let update_or_wait_on_log_min t r ~old_tail ~new_tail =
    let log_size = t.cfg.Config.log_size in
    let low_mark () = read_log_min t - t.beta in
    if new_tail <= low_mark () then ()
    else if old_tail <= low_mark () then begin
      (* we reserved the lowMark entry: we advance logMin *)
      let lm = ref (low_mark ()) in
      while !lm < new_tail do
        (* find the least up-to-date replica *)
        let lowest = ref max_int and low_rid = ref 0 in
        for rid = 0 to t.n_replicas - 1 do
          let lt = read_local_tail t t.replicas.(rid) in
          if lt < !lowest then begin
            lowest := lt;
            low_rid := rid
          end
        done;
        if has_persistence t then
          for p = 0 to 1 do
            let lt = read_p_local_tail t p in
            if lt < !lowest then begin
              lowest := lt;
              low_rid := t.n_replicas + p
            end
          done;
        if !lowest + log_size - 1 = read_log_min t then begin
          (* logMin is pinned by a laggard: ask it to catch up *)
          if !low_rid >= t.n_replicas then begin
            let p = !low_rid - t.n_replicas in
            let active = Roots.get t.roots (rslot t slot_active) in
            if active <> p && read_flush_boundary t >= !lm then
              (* the stable persistent replica is the laggard: force the
                 persistence thread to checkpoint and swap early *)
              write_flush_boundary t (!lm - 1)
          end
          else Memory.write t.mem (update_now_addr t !low_rid) 1;
          let laggard_tail () =
            if !low_rid >= t.n_replicas then
              read_p_local_tail t (!low_rid - t.n_replicas)
            else read_local_tail t t.replicas.(!low_rid)
          in
          while laggard_tail () = !lowest do
            help_if_asked t r;
            (* If the laggard is a volatile replica whose own threads have
               gone quiet (e.g. they finished their work), nobody will ever
               service updateReplicaNow — so help it directly through its
               combiner lock. Without this, a replica with no active
               workers pins logMin and wedges log reuse forever. *)
            if !low_rid < t.n_replicas && !low_rid <> r.rid then begin
              let lag = t.replicas.(!low_rid) in
              if Locks.Trylock.try_acquire lag.combiner then begin
                Locks.Rw.write_acquire lag.rw;
                Context.with_allocator lag.alloc (fun () ->
                    update_from_log t lag ~upto:(read_ct t));
                Locks.Rw.write_release lag.rw;
                Locks.Trylock.release lag.combiner
              end
            end;
            Sim.spin ()
          done;
          if !low_rid < t.n_replicas then
            Memory.write t.mem (update_now_addr t !low_rid) 0
        end
        else write_log_min t (!lowest + log_size - 1);
        lm := low_mark ()
      done
    end
    else
      (* someone else owns the lowMark entry: wait for logMin to advance *)
      while low_mark () < new_tail do
        help_if_asked t r;
        Sim.spin ()
      done

  (** Algorithm 4: reserve [n] log entries, blocking while the persistence
      thread is behind the flush boundary. Returns the start index.

      The gate must be strict: a batch reserved at [tail = boundary] would
      put completed entries at indexes [boundary .. boundary + n - 1],
      i.e. up to ε+β completed ops past the last durable checkpoint — one
      more than the ε+β−1 loss bound PREP-Buffered promises. Reserving
      only while [tail < boundary] caps the straddle at β−1 entries.
      (Found by differential crash-point fuzzing of the flush-elimination
      layer: the faster variant reached a schedule where a full batch
      landed exactly on the boundary.) *)
  let reserve_log_entries t r n =
    let rec attempt () =
      let tail = read_log_tail t in
      if has_persistence t && read_flush_boundary t <= tail then begin
        (* the log has outrun the checkpoint: block until the persistence
           thread swaps, helping our own replica if asked *)
        help_if_asked t r;
        Sim.spin ();
        attempt ()
      end
      else begin
        let new_tail = tail + n in
        if Memory.cas t.mem (t.ctrl + off_log_tail) ~expected:tail ~desired:new_tail
        then begin
          update_or_wait_on_log_min t r ~old_tail:tail ~new_tail;
          tail
        end
        else attempt ()
      end
    in
    attempt ()

  (** CAS completedTail forward to at least [target]; in durable mode the
      CAS (ours or a racing combiner's that overtook [target]) is followed
      by a CLFLUSH (§5.2). The flush is issued even when another combiner
      already advanced past [target]: that combiner's own CLFLUSH may not
      have executed yet, and responding to clients on the strength of a
      completedTail that is only coherently — not durably — advanced would
      lose those completions on a crash. With FliT tracking the extra flush
      is elided whenever the completedTail line is in fact already
      persisted, which is the common case. [Elide_ct_flush] deliberately
      skips the flush altogether so the fuzzer can prove it notices. *)
  let advance_completed_tail t target =
    let rec loop () =
      let ct = read_ct t in
      if ct >= target then ()
      else if Memory.cas t.mem t.ct_addr ~expected:ct ~desired:target then ()
      else loop ()
    in
    loop ();
    if durable t && t.cfg.Config.fault <> Config.Elide_ct_flush then
      Phases.in_span t.tel (fun pt -> pt.Phases.persist) (fun () ->
          Memory.clflush ~site:"prep.completed_tail" t.mem t.ct_addr)

  let slot_addr r core = r.slots + (core * slot_words)

  let collect_slot t r core batch =
    let s = slot_addr r core in
    if Memory.read t.mem (s + sl_full) = 1 then begin
      Memory.write t.mem (s + sl_full) 0;
      let op = Memory.read t.mem (s + sl_op) in
      let argc = Memory.read t.mem (s + sl_argc) in
      let args = Array.init argc (fun i -> Memory.read t.mem (s + sl_args + i)) in
      let seq =
        if t.cfg.Config.detect then Memory.read t.mem (s + sl_seq) else 0
      in
      batch := (core, op, args, seq) :: !batch
    end

  (* The combiner: collect the local batch, append it to the log, bring the
     replica up to date, and apply + answer the batch (paper §3). *)
  let combine t r =
    Phases.in_span t.tel (fun pt -> pt.Phases.combine) @@ fun () ->
    (* collect and claim full slots *)
    let batch = ref [] in
    if t.cfg.Config.slot_bitmap then begin
      (* claim the currently-raised bits with one atomic subtraction, then
         visit only those slots. Claiming before collecting is safe: a bit
         is raised strictly after its slot's [sl_full] store, so every
         claimed bit has a full slot, and the subtraction cannot erase a
         concurrently-raised bit of another core. A publisher whose bit
         lands just after the read is picked up by the next combine round
         (its worker is still spinning, and spinners retry the combiner
         lock). *)
      let bits = Memory.read t.mem r.occ in
      if bits = 0 then t.bmp_empty_exits <- t.bmp_empty_exits + 1
      else begin
        ignore (Memory.faa t.mem r.occ (-bits));
        for core = t.beta - 1 downto 0 do
          if bits land (1 lsl core) <> 0 then collect_slot t r core batch
          else t.bmp_slots_skipped <- t.bmp_slots_skipped + 1
        done
      end
    end
    else
      for core = t.beta - 1 downto 0 do
        collect_slot t r core batch
      done;
    let batch = !batch in
    let n = List.length batch in
    if n > 0 then begin
      let detect = t.cfg.Config.detect in
      (* the planted fence-hoisting fault: leave the log entries' write-backs
         queued (no fence) while responses go straight to media below *)
      let hoist_fences =
        detect && t.cfg.Config.fault = Config.Response_before_log_persist
      in
      let tid_of core = (r.socket * t.beta) + core in
      let tail = reserve_log_entries t r n in
      let new_tail = tail + n in
      let publish_span f = Phases.in_span t.tel (fun pt -> pt.Phases.publish) f
      and persist_span f = Phases.in_span t.tel (fun pt -> pt.Phases.persist) f in
      let log_fence () =
        if not hoist_fences then persist_span (fun () -> Log.fence t.log)
      in
      if not t.cfg.Config.flit then begin
        (* phase 1: payloads (arguments then op), write-backs, one fence *)
        List.iteri
          (fun i (core, op, args, seq) ->
            publish_span (fun () ->
                Log.write_payload t.log (tail + i) ~op ~args;
                if detect then
                  Log.write_tag t.log (tail + i) ~tid:(tid_of core) ~seqno:seq);
            persist_span (fun () -> Log.persist_entry t.log (tail + i));
            Trace.logged ~tid:(tid_of core) ~seqno:seq t.trace (tail + i) ~op
              ~args)
          batch;
        log_fence ();
        (* phase 2: publish emptyBits, write-backs, one fence *)
        List.iteri
          (fun i _ ->
            publish_span (fun () -> Log.publish t.log (tail + i));
            persist_span (fun () -> Log.persist_entry t.log (tail + i)))
          batch;
        log_fence ()
      end
      else begin
        (* Batched persistence: write every payload, sweep the batch's lines
           once, publish every emptyBit, re-sweep (each CLWB coalesces into
           the write-back queued by the first sweep), then a single fence.
           Dropping the intermediate fence is safe in this model because an
           entry is exactly one cache line: a write-back reaching media
           carries payload and emptyBit together, so media can never hold a
           published emptyBit with a torn payload — the invariant the
           two-fence protocol exists to protect. Unfenced publish-then-crash
           only produces holes, which recovery already skips as uncompleted
           operations (§5.2). *)
        publish_span (fun () ->
            List.iteri
              (fun i (core, op, args, seq) ->
                Log.write_payload t.log (tail + i) ~op ~args;
                if detect then
                  Log.write_tag t.log (tail + i) ~tid:(tid_of core) ~seqno:seq;
                Trace.logged ~tid:(tid_of core) ~seqno:seq t.trace (tail + i)
                  ~op ~args)
              batch);
        persist_span (fun () -> Log.persist_range t.log ~first:tail ~n);
        publish_span (fun () ->
            List.iteri (fun i _ -> Log.publish t.log (tail + i)) batch);
        persist_span (fun () ->
            Log.persist_range t.log ~first:tail ~n;
            if not hoist_fences then Log.fence t.log)
      end;
      Locks.Rw.write_acquire r.rw;
      update_from_log t r ~upto:tail;
      Memory.write t.mem r.lt_addr new_tail;
      if not detect then begin
        advance_completed_tail t new_tail;
        (* apply own batch from the collected copies and answer *)
        List.iteri
          (fun i (core, op, args, _) ->
            let resp = Ds.execute r.ds ~op ~args in
            let s = slot_addr r core in
            Memory.write t.mem (s + sl_resp) resp;
            Memory.write t.mem (s + sl_ghost) (tail + i);
            Memory.write t.mem (s + sl_ready) 1)
          batch
      end
      else begin
        (* Detectable execution reorders completion: every response must be
           durable *before* the completedTail may advance past its entry
           (exactly-once R2 — an op the checkpoint or replay recovers must
           have a recoverable response, else the client re-submits it), and
           the log fence above already made every entry durable before any
           response is written (R1 — a durable response must never outrun
           its entry). Only then are the flat-combining slots answered. *)
        let resps =
          List.map
            (fun (core, op, args, seq) ->
              let resp = Ds.execute r.ds ~op ~args in
              (match t.ann with
               | Some ann ->
                 Phases.in_span t.tel (fun pt -> pt.Phases.detect) (fun () ->
                     let tid = tid_of core in
                     Announce.write_response ann ~tid ~seqno:seq ~result:resp;
                     if hoist_fences then Announce.flush_response ann ~tid
                     else Announce.persist_response ann ~tid);
                 t.detect_responses <- t.detect_responses + 1
               | None -> ());
              (core, resp))
            batch
        in
        if not hoist_fences then
          Phases.in_span t.tel (fun pt -> pt.Phases.detect) (fun () ->
              Memory.sfence ~site:"detect.response" t.mem);
        advance_completed_tail t new_tail;
        List.iteri
          (fun i (core, resp) ->
            let s = slot_addr r core in
            Memory.write t.mem (s + sl_resp) resp;
            Memory.write t.mem (s + sl_ghost) (tail + i);
            Memory.write t.mem (s + sl_ready) 1)
          resps
      end;
      Locks.Rw.write_release r.rw
    end

  (** Publish an update into the calling core's flat-combining slot and
      return without waiting for a response. The caller owns exactly one
      slot per replica, so at most one update may be outstanding per
      construction; collect it with [try_collect] (or spin via
      [collect_update]) before submitting the next. Split out of
      [execute_update] so a multi-shard router can keep one update in
      flight per shard from a single worker fiber. *)
  let submit_update t r ~seq ~op ~args =
    let core = (Sim.self ()).Sim.core in
    let s = slot_addr r core in
    Memory.write t.mem (s + sl_op) op;
    Memory.write t.mem (s + sl_argc) (Array.length args);
    Array.iteri (fun i v -> Memory.write t.mem (s + sl_args + i) v) args;
    if t.cfg.Config.detect then Memory.write t.mem (s + sl_seq) seq;
    Memory.write t.mem (s + sl_ready) 0;
    Memory.write t.mem (s + sl_full) 1;
    (* raise the occupancy bit strictly after [sl_full]: the combiner
       claims bits first and then expects every claimed slot to be full *)
    if t.cfg.Config.slot_bitmap then ignore (Memory.faa t.mem r.occ (1 lsl core))

  (** One non-blocking attempt to collect the outstanding update: the
      slot's response if it is ready, otherwise — after lending a hand as
      combiner if the lock is free, exactly like the spinning path of
      [execute_update] — [None]. Never sleeps; the caller decides whether
      to spin or to make progress elsewhere first. *)
  let try_collect t r =
    let core = (Sim.self ()).Sim.core in
    let s = slot_addr r core in
    if Memory.read t.mem (s + sl_ready) = 1 then begin
      let resp = Memory.read t.mem (s + sl_resp) in
      Memory.write t.mem (s + sl_ready) 0;
      Trace.completed t.trace (Memory.read t.mem (s + sl_ghost));
      Some resp
    end
    else if Locks.Trylock.try_acquire r.combiner then begin
      combine t r;
      Locks.Trylock.release r.combiner;
      if Memory.read t.mem (s + sl_ready) = 1 then begin
        let resp = Memory.read t.mem (s + sl_resp) in
        Memory.write t.mem (s + sl_ready) 0;
        Trace.completed t.trace (Memory.read t.mem (s + sl_ghost));
        Some resp
      end
      else None
    end
    else begin
      help_if_asked t r;
      None
    end

  let collect_update t r =
    let rec wait () =
      match try_collect t r with
      | Some resp -> resp
      | None ->
        Sim.spin ();
        wait ()
    in
    wait ()

  let execute_update t r ~seq ~op ~args =
    submit_update t r ~seq ~op ~args;
    collect_update t r

  let execute_readonly t r ~op ~args =
    let rec loop () =
      let ct = read_ct t in
      if read_local_tail t r >= ct then begin
        Locks.Rw.read_acquire r.rw;
        let resp = Ds.execute r.ds ~op ~args in
        Locks.Rw.read_release r.rw;
        resp
      end
      else if Locks.Trylock.try_acquire r.combiner then begin
        (* bring the replica up to date ourselves *)
        Locks.Rw.write_acquire r.rw;
        update_from_log t r ~upto:(read_ct t);
        Locks.Rw.write_release r.rw;
        Locks.Trylock.release r.combiner;
        loop ()
      end
      else begin
        (* Same obligation as [execute_update]'s spin path: while waiting
           for the combiner, service Algorithm 3's updateReplicaNow. A
           reader that only spins here can deadlock the system — if the
           current combiner is stuck in [update_or_wait_on_log_min]
           waiting for *this* replica to catch up, nobody else on the
           socket will ever service the request. *)
        help_if_asked t r;
        Sim.spin ();
        loop ()
      end
    in
    loop ()

  (** The stable global thread id of the calling worker fiber: its socket
      times β plus its core — the index into the announce/response table
      and the tag recovery reconciles against. *)
  let thread_id t =
    let f = Sim.self () in
    (f.Sim.socket * t.beta) + f.Sim.core

  (** ExecuteConcurrent (paper §3/§4.1): run [op] with [args] on the
      concurrent object and return its response. [readonly] defaults to
      the sequential object's own classification.

      Under detectable execution every update is first announced: the op
      descriptor and a client seqno are written to the calling thread's
      persistent announce record and CLFLUSHed before the flat-combining
      slot is published, so the intent is on media before the system can
      act on it. [seqno] must be strictly increasing per thread; when
      omitted, an internal per-thread counter (seeded from the announce
      table itself on recovery) assigns the next one. *)
  let execute ?readonly ?seqno t ~op ~args =
    let r = my_replica t in
    let ro = match readonly with Some b -> b | None -> Ds.is_readonly ~op in
    if ro then execute_readonly t r ~op ~args
    else
      match t.ann with
      | None -> execute_update t r ~seq:0 ~op ~args
      | Some ann ->
        let tid = thread_id t in
        let seq =
          match seqno with Some s -> s | None -> t.next_seq.(tid) + 1
        in
        Phases.in_span t.tel (fun pt -> pt.Phases.detect) (fun () ->
            Announce.announce ann ~tid ~seqno:seq ~op ~args);
        t.next_seq.(tid) <- seq;
        t.detect_announces <- t.detect_announces + 1;
        (match t.tel with
         | Some pt -> Telemetry.Registry.add_to pt.Phases.reg "detect.announce" 1
         | None -> ());
        execute_update t r ~seq ~op ~args

  (* ---- persistence thread (Algorithm 2) ---- *)

  let flush_and_swap t =
    Phases.in_span t.tel (fun pt -> pt.Phases.persist) @@ fun () ->
    (* injected fault: opening the next window before the checkpoint is
       durable lets completed ops race two windows ahead of the stable
       replica, so a crash mid-flush loses up to ~2ε ops *)
    if t.cfg.Config.fault = Config.Early_boundary_advance then
      write_flush_boundary t (read_flush_boundary t + t.cfg.Config.epsilon);
    (match t.cfg.Config.flush with
     | Config.Wbinvd -> Memory.wbinvd ~site:"prep.checkpoint" t.mem
     | Config.Flush_heap ->
       (* walk the persistent heap and write back whatever is dirty; pays
          per line instead of the WBINVD stall — the small-structure
          alternative of §6 *)
       List.iter
         (fun aid -> Memory.flush_arena ~site:"prep.checkpoint" t.mem aid)
         (Alloc.arenas (Option.get t.p_alloc)));
    Memory.sfence ~site:"prep.checkpoint" t.mem;
    (* swap active/stable and persist the switch before opening the next
       window (see module comment on ordering) *)
    let active = Roots.get t.roots (rslot t slot_active) in
    Roots.set t.roots (rslot t slot_active) (1 - active);
    if t.cfg.Config.fault <> Config.Early_boundary_advance then
      write_flush_boundary t (read_flush_boundary t + t.cfg.Config.epsilon)

  let persistence_loop t =
    Context.bind
      ~default:(Alloc.create_volatile t.mem ~home:t.p_socket)
      ?persistent:t.p_alloc ();
    t.p_thread_running <- true;
    let span_name = "persistence" ^ t.cfg.Config.tag in
    (* the whole loop is one root span, so a profile attributes the
       persistence thread's entire lifetime (its self-time is the
       poll/spin overhead left after the catch-up and persist children);
       the [Config.tag] suffix gives each shard's persistence fiber its
       own span and trace track *)
    (match t.tel with
     | Some pt ->
       if t.cfg.Config.tag <> "" then
         Telemetry.Registry.cur_name_track (Sim.self ()).Sim.fid span_name;
       Telemetry.Registry.span_enter pt.Phases.reg
         (Telemetry.Registry.span pt.Phases.reg span_name)
     | None -> ());
    while not t.stop_flag do
      let active = Roots.get t.roots (rslot t slot_active) in
      let rep = t.p_reps.(active) in
      let tail = read_ct t in
      let lt = Memory.read t.mem rep.meta in
      if tail > lt then begin
        (* Bring the active persistent replica up to date. With a
           [txn_gate] installed, stop in front of the first entry whose
           cross-shard commit decision is still pending — keeping the
           progress made so far — and re-poll next cycle; the checkpoint
           below must never contain an effect recovery could roll back. *)
        Phases.in_span t.tel (fun pt -> pt.Phases.catchup) (fun () ->
            let reached = ref lt in
            Context.with_persistent (fun () ->
                try
                  for idx = lt to tail - 1 do
                    let op, args = Log.wait_and_read t.log idx in
                    (match t.txn_gate with
                     | Some gate when not (gate ~op ~args) -> raise Exit
                     | _ -> ());
                    ignore (Ds.execute rep.pds ~op ~args);
                    reached := idx + 1
                  done
                with Exit -> ());
            if !reached > lt then Memory.write t.mem rep.meta !reached)
      end;
      if read_flush_boundary t <= Memory.read t.mem rep.meta then
        flush_and_swap t
      else Sim.spin ()
    done;
    (match t.tel with
     | Some pt ->
       Telemetry.Registry.span_exit pt.Phases.reg
         (Telemetry.Registry.span pt.Phases.reg span_name)
     | None -> ());
    t.p_thread_running <- false

  (** Spawn the persistence thread on its dedicated core. No-op for the
      volatile variant. *)
  let start_persistence t =
    if has_persistence t then
      Sim.spawn_here ~socket:t.p_socket ~core:(t.beta - 1) (fun () ->
          persistence_loop t)

  let stop t = t.stop_flag <- true

  (* ---- observation ---- *)

  let trace t = t.trace
  let prefill_ops t = t.prefill

  (** Harness-side counters for the gated hot-path optimisations (all zero
      when the corresponding flag is off), keyed for the bench JSON. *)
  let counters t =
    let read_acquires = ref 0 and writer_sweeps = ref 0 in
    Array.iter
      (fun r ->
        read_acquires := !read_acquires + Locks.Rw.read_acquires r.rw;
        writer_sweeps := !writer_sweeps + Locks.Rw.writer_sweeps r.rw)
      t.replicas;
    [
      ("rw_read_acquires", !read_acquires);
      ("rw_writer_sweeps", !writer_sweeps);
      ("log_primary_reads", t.log.Log.primary_reads);
      ("log_mirror_reads", t.log.Log.mirror_reads);
      ("log_mirror_stores", t.log.Log.mirror_stores);
      ("bitmap_empty_exits", t.bmp_empty_exits);
      ("bitmap_slots_skipped", t.bmp_slots_skipped);
      ("detect_announces", t.detect_announces);
      ("detect_responses", t.detect_responses);
      ("detect_reconciled", t.detect_reconciled);
    ]

  (** Port the instance's counters onto registry [reg], *adding* to any
      values already there — so sampling several instances into one
      registry sums them. Keys are unchanged from the pre-telemetry bench
      JSON (the counter-key compatibility guarantee). *)
  let sample t reg =
    List.iter
      (fun (k, v) -> Telemetry.Registry.add_to reg k v)
      (counters t)

  (** Bring every volatile replica up to date with the completedTail.
      Convenience for quiescent observation (tests, examples); not part of
      the paper's interface. Must run inside a bound fiber. *)
  let sync t =
    Array.iter
      (fun r ->
        Locks.Rw.write_acquire r.rw;
        Context.with_allocator r.alloc (fun () ->
            update_from_log t r ~upto:(read_ct t));
        Locks.Rw.write_release r.rw)
      t.replicas

  (** Cost-free snapshot of the abstract state (replica 0's view). *)
  let snapshot t = Ds.snapshot t.replicas.(0).ds

  (** Cost-free snapshot of the stable persistent replica's current
      (coherent) view. *)
  let stable_snapshot t =
    let active = Memory.peek t.mem (Roots.addr t.roots (rslot t slot_active)) in
    Ds.snapshot t.p_reps.(1 - active).pds

  (* ---- recovery (paper §5.1 / §5.2) ---- *)

  (** Recover after [Memory.crash]. [old_t] supplies configuration and the
      ghost trace; all simulated-memory state is read back from NVM media
      through the root directory. Returns the rebuilt UC and a report for
      the durability checkers. Must run inside a fiber. *)
  let recover old_t =
    let mem = old_t.mem and roots = old_t.roots and cfg = old_t.cfg in
    if not (has_persistence old_t) then
      invalid_arg "Prep_uc.recover: volatile variant cannot recover";
    Context.bind ~default:(Alloc.create_volatile mem ~home:0) ();
    let rb = cfg.Config.root_base in
    let active = Roots.get roots (rb + slot_active) in
    let stable = 1 - active in
    let stable_meta =
      Roots.get roots (rb + if stable = 0 then slot_meta0 else slot_meta1)
    in
    let stable_lt = Memory.read mem stable_meta in
    let stable_root = Memory.read mem (stable_meta + 1) in
    let stable_ds = Ds.attach mem stable_root in
    (* a fresh persistent allocator: pre-crash NVM arenas are left alone,
       so a crash can leak recovered-heap space but never corrupt it *)
    let p_home = (Sim.topology ()).Sim.Topology.sockets - 1 in
    Context.set_persistent (Alloc.create_persistent mem ~home:p_home);
    (* decide which trace indexes the recovered state contains *)
    let applied_prefix = List.init stable_lt (fun i -> i) in
    let reconciled = ref 0 in
    let replayed =
      if cfg.Config.mode = Config.Durable then begin
        (* replay the recovered log from the stable replica's tail to the
           recovered completedTail, skipping holes (unpersisted entries) *)
        let ct_addr = Roots.get roots (rb + slot_ct) in
        let ct = Memory.read mem ct_addr in
        let log_base = Roots.get roots (rb + slot_log) in
        (* replay must read the NVM media truth, never the (volatile) DRAM
           mirror — the planted [Mirror_read_on_recovery] fault does
           exactly that wrong thing so the fuzzer can prove it notices *)
        let mirror =
          if cfg.Config.fault = Config.Mirror_read_on_recovery then
            Log.mirror_base old_t.log
          else None
        in
        let log =
          Log.attach mem ~base:log_base ~size:cfg.Config.log_size
            ~durable:true ~mirror
        in
        let ann =
          if cfg.Config.detect then
            let base = Roots.get roots (rb + slot_announce) in
            if base <> Memory.null then
              Some
                (Announce.attach mem ~base
                   ~threads:(Sim.Topology.total_cores (Sim.topology ())))
            else None
          else None
        in
        (* Under detectable execution the scan continues past the recovered
           completedTail: a combiner's responses are fenced *before* its
           completedTail CLFLUSH, so a crash in between leaves durable
           responses whose entries sit beyond the media completedTail —
           skipping them would break R1 (resolve would say Completed for an
           op the recovered state lost). One log lap bounds the scan: no
           live entry can sit further ahead, and stale-lap slots read as
           holes (or, for never-reserved slots on odd laps, carry no seqno
           tag and are rejected below). Holes anywhere are uncompleted ops,
           which durable linearizability already permits dropping. *)
        let scan_to =
          if cfg.Config.detect then ct + cfg.Config.log_size else ct
        in
        let replayed = ref [] in
        Context.with_persistent (fun () ->
            for idx = stable_lt to scan_to - 1 do
              if
                Log.is_full log idx
                && (idx < ct || snd (Log.read_tag log idx) > 0)
                && (match old_t.replay_keep with
                    | None -> true
                    | Some keep ->
                      (* sharded transactions: an entry whose cross-shard
                         commit decision is absent from the post-crash
                         media is rolled back — skipped like a log hole *)
                      let op, args = Log.read_payload log idx in
                      keep ~op ~args)
              then begin
                let op, args = Log.read_payload log idx in
                let resp = Ds.execute stable_ds ~op ~args in
                replayed := idx :: !replayed;
                (* replay reconciliation: rewrite the submitting thread's
                   response slot with the replay-computed result so resolve
                   reflects every op the recovered state actually contains
                   (R2 for replayed entries). Monotone: never regress a slot
                   that already covers a later seqno. *)
                match ann with
                | Some a ->
                  let tid, seqno = Log.read_tag log idx in
                  if seqno > 0 && Announce.response_seqno a ~tid < seqno
                  then begin
                    Announce.write_response a ~tid ~seqno ~result:resp;
                    Announce.flush_response a ~tid;
                    incr reconciled
                  end
                | None -> ()
              end
            done);
        List.rev !replayed
      end
      else []
    in
    let applied = applied_prefix @ replayed in
    (* durability accounting against the ghost trace *)
    let applied_set = Hashtbl.create 256 in
    List.iter (fun i -> Hashtbl.replace applied_set i ()) applied;
    let completed = Trace.completed_indexes old_t.trace in
    let lost_completed =
      List.length (List.filter (fun i -> not (Hashtbl.mem applied_set i)) completed)
    in
    let skipped_completed =
      match replayed with
      | [] ->
        List.length
          (List.filter (fun i -> i < stable_lt && not (Hashtbl.mem applied_set i)) completed)
      | _ ->
        (* holes are indexes in [stable_lt, ct) missing from [replayed] *)
        let ct_addr = Roots.get roots (rb + slot_ct) in
        let ct = Memory.read mem ct_addr in
        List.length
          (List.filter
             (fun i -> i >= stable_lt && i < ct && not (Hashtbl.mem applied_set i))
             completed)
    in
    let contiguous_prefix =
      let rec check expect = function
        | [] -> true
        | i :: rest -> i = expect && check (expect + 1) rest
      in
      check 0 applied
    in
    let report =
      { applied; lost_completed; skipped_completed; contiguous_prefix;
        reconciled = !reconciled }
    in
    (* fold the recovered ops into the new instance's prefill so that
       checkers after a subsequent crash keep working *)
    let recovered_ops =
      List.map
        (fun i ->
          let e = Trace.get old_t.trace i in
          (e.Trace.op, e.Trace.args))
        applied
    in
    let prefill = old_t.prefill @ recovered_ops in
    let t = build mem roots cfg ~prefill ~master:(Some stable_ds) in
    t.detect_reconciled <- !reconciled;
    (t, report)

  (* ---- detectability queries ---- *)

  let require_ann t =
    match t.ann with
    | Some a -> a
    | None -> invalid_arg "Prep_uc: detectable execution is not enabled"

  (** Raw view of thread [tid]'s announce and response records. Charged
      simulated reads; coherent view (equals media right after a crash). *)
  let detect_state t ~tid =
    let a = require_ann t in
    (Announce.announced a ~tid, Announce.response a ~tid)

  (** The recovery-side detectability query (run it on the *recovered*
      instance, after [recover] has reconciled response slots from the
      log): what should thread [tid] conclude about its last announced
      operation? Clients re-submit exactly when the verdict is [Lost] —
      or [Unannounced] while they know they had something in flight,
      which can only happen if the very first announce tore before its
      flush returned, i.e. before the op could have been submitted. *)
  let resolve t ~tid =
    let a = require_ann t in
    match (Announce.response a ~tid, Announce.announced a ~tid) with
    | ( Announce.Valid { seqno; payload = result; _ },
        Announce.Valid { seqno = announced; _ } ) ->
      if announced > seqno then
        (* announced a later op than any response covers: it is lost *)
        Lost { seqno = announced }
      else Completed { seqno; result }
    | Announce.Valid { seqno; payload = result; _ },
      (Announce.Torn _ | Announce.Empty) ->
      (* the response is the latest trustworthy word: a torn announce's op
         was never submitted (its flush never returned), so the response
         still names the last op that took effect *)
      Completed { seqno; result }
    | (Announce.Torn _ | Announce.Empty), Announce.Valid { seqno; _ } ->
      (* a durable intent with no durable effect. A torn response slot
         cannot hide a completed op: responses are fenced before the
         completedTail advances and rewritten by replay reconciliation, so
         anything recovered has a valid response *)
      Lost { seqno }
    | (Announce.Torn _ | Announce.Empty), (Announce.Torn _ | Announce.Empty)
      ->
      Unannounced
end
