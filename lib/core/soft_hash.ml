(** SOFT hashtable of Zuriel et al. (paper §6, Fig. 6): the hand-crafted
    persistent hashtable PREP-UC is framed against.

    What matters for the comparison (and what we reproduce):
    - every key lives twice: a volatile node in DRAM for traversal and a
      persistent node in NVM holding (key, value, valid);
    - an update persists *only the modified words* — one line write-back
      plus one fence per update — instead of a whole structure;
    - read-only operations perform no flushes and no fences;
    - the bucket count is fixed (SOFT-1kB / SOFT-10kB in the figure).

    Simplification, documented per DESIGN.md: the original SOFT is
    lock-free; we guard each bucket with a spinlock (still fine-grained,
    still flush-free for readers), which preserves the performance
    asymmetry the figure is about. Recovery scans the persistent-node heap
    for valid nodes, as SOFT's recovery does. *)

open Nvm

let op_insert = Seqds.Hashmap.op_insert
let op_remove = Seqds.Hashmap.op_remove
let op_get = Seqds.Hashmap.op_get
let op_contains = Seqds.Hashmap.op_contains
let op_size = Seqds.Hashmap.op_size

let magic = 0x50F7

(* volatile node: [0] key, [1] value, [2] pnode, [3] next *)
(* persistent node: [0] magic, [1] key, [2] value, [3] valid *)

type t = {
  mem : Memory.t;
  buckets : int; (* DRAM array of vnode list heads *)
  locks : int; (* DRAM array of per-bucket spinlock words *)
  nbuckets : int;
  size_addr : int; (* volatile element count *)
  palloc : Alloc.t;
  valloc : Alloc.t;
}

let hash t key = (key * 0x9E3779B1) land max_int mod t.nbuckets

let create ?(nbuckets = 1000) mem =
  let valloc = Alloc.create_volatile mem ~home:0 in
  Context.bind ~default:valloc ();
  let palloc = Alloc.create_persistent mem ~home:0 in
  let buckets = Alloc.alloc valloc nbuckets in
  let locks = Alloc.alloc valloc nbuckets in
  let size_addr = Alloc.alloc valloc 8 in
  { mem; buckets; locks; nbuckets; size_addr; palloc; valloc }

let register_worker t = Context.bind ~default:t.valloc ()

let lock t b =
  while not (Memory.cas t.mem (t.locks + b) ~expected:0 ~desired:1) do
    Sim.spin ()
  done

let unlock t b = Memory.write t.mem (t.locks + b) 0

(* Find [key] in bucket [b]; returns (vnode, predecessor-or-0). *)
let find t b key =
  let rec walk prev node =
    if node = Memory.null then (Memory.null, prev)
    else if Memory.read t.mem node = key then (node, prev)
    else walk node (Memory.read t.mem (node + 3))
  in
  walk Memory.null (Memory.read t.mem (t.buckets + b))

let insert t key value =
  let b = hash t key in
  lock t b;
  let found, _ = find t b key in
  let result =
    if found <> Memory.null then begin
      (* update: persist only the new value's line *)
      let pnode = Memory.read t.mem (found + 2) in
      Memory.write t.mem (pnode + 2) value;
      Memory.clwb ~site:Persist.Soft_update t.mem (pnode + 2);
      Memory.sfence ~site:Persist.Soft_update t.mem;
      Memory.write t.mem (found + 1) value;
      0
    end
    else begin
      let pnode = Alloc.alloc t.palloc 4 in
      Memory.write t.mem (pnode + 1) key;
      Memory.write t.mem (pnode + 2) value;
      Memory.write t.mem (pnode + 3) 1;
      Memory.write t.mem pnode magic;
      Memory.clwb ~site:Persist.Soft_insert t.mem pnode;
      Memory.sfence ~site:Persist.Soft_insert t.mem;
      let vnode = Alloc.alloc t.valloc 4 in
      Memory.write t.mem vnode key;
      Memory.write t.mem (vnode + 1) value;
      Memory.write t.mem (vnode + 2) pnode;
      Memory.write t.mem (vnode + 3) (Memory.read t.mem (t.buckets + b));
      Memory.write t.mem (t.buckets + b) vnode;
      ignore (Memory.faa t.mem t.size_addr 1);
      1
    end
  in
  unlock t b;
  result

let remove t key =
  let b = hash t key in
  lock t b;
  let found, prev = find t b key in
  let result =
    if found = Memory.null then 0
    else begin
      let pnode = Memory.read t.mem (found + 2) in
      (* persist the invalidation first, then unlink the volatile node *)
      Memory.write t.mem (pnode + 3) 0;
      Memory.write t.mem pnode 0;
      Memory.clwb ~site:Persist.Soft_delete t.mem pnode;
      Memory.sfence ~site:Persist.Soft_delete t.mem;
      let next = Memory.read t.mem (found + 3) in
      if prev = Memory.null then Memory.write t.mem (t.buckets + b) next
      else Memory.write t.mem (prev + 3) next;
      Alloc.free t.valloc found 4;
      Alloc.free t.palloc pnode 4;
      ignore (Memory.faa t.mem t.size_addr (-1));
      1
    end
  in
  unlock t b;
  result

(* Reads: no flush, no fence (SOFT's headline property). *)
let get t key =
  let b = hash t key in
  lock t b;
  let found, _ = find t b key in
  let result = if found = Memory.null then -1 else Memory.read t.mem (found + 1) in
  unlock t b;
  result

let execute ?readonly t ~op ~args =
  ignore readonly;
  if op = op_insert then insert t args.(0) args.(1)
  else if op = op_remove then remove t args.(0)
  else if op = op_get then get t args.(0)
  else if op = op_contains then (if get t args.(0) >= 0 then 1 else 0)
  else if op = op_size then Memory.read t.mem t.size_addr
  else invalid_arg "Soft_hash.execute: unknown op"

(** Rebuild the table after a crash by scanning the persistent-node heap
    for valid nodes, as SOFT recovery does. Returns a fresh table over the
    same memory containing every persisted (key, value). *)
let recover old ~nbuckets =
  let mem = old.mem in
  let t = create ~nbuckets mem in
  List.iter
    (fun aid ->
      let base = Memory.addr_of ~aid ~offset:0 in
      let rec scan off =
        if off + 4 <= Memory.arena_words then begin
          let a = base + off in
          if Memory.read mem a = magic && Memory.read mem (a + 3) = 1 then
            ignore (insert t (Memory.read mem (a + 1)) (Memory.read mem (a + 2)));
          scan (off + 4)
        end
      in
      scan Memory.line_words)
    (Alloc.arenas old.palloc);
  t

(* Cost-free observation: [k1; v1; ...] sorted by key. *)
let snapshot t =
  let pairs = ref [] in
  for b = 0 to t.nbuckets - 1 do
    let rec walk node =
      if node <> Memory.null then begin
        pairs := (Memory.peek t.mem node, Memory.peek t.mem (node + 1)) :: !pairs;
        walk (Memory.peek t.mem (node + 3))
      end
    in
    walk (Memory.peek t.mem (t.buckets + b))
  done;
  List.sort compare !pairs |> List.concat_map (fun (k, v) -> [ k; v ])
