(** Locks over simulated memory (paper §3: each replica is protected by a
    trylock — the combiner lock — and a reader-writer lock). *)

open Nvm

(** Trylock: one word, 0 = free, 1 = held. *)
module Trylock = struct
  type t = { mem : Memory.t; a : int }

  let size_words = 1

  let make mem a =
    Memory.write mem a 0;
    { mem; a }

  let try_acquire t = Memory.cas t.mem t.a ~expected:0 ~desired:1
  let release t = Memory.write t.mem t.a 0
  let held t = Memory.read t.mem t.a = 1
end

(** Reader-writer lock: one word, 0 = free, [n > 0] = n readers,
    [-1] = writer. Writers and readers both spin; this matches the strong
    try reader-writer lock the paper's systems use, with writer acquisition
    via CAS from the free state. *)
module Rwlock = struct
  type t = { mem : Memory.t; a : int }

  let size_words = 1

  let make mem a =
    Memory.write mem a 0;
    { mem; a }

  let try_read_acquire t =
    let v = Memory.read t.mem t.a in
    v >= 0 && Memory.cas t.mem t.a ~expected:v ~desired:(v + 1)

  let read_acquire t =
    while not (try_read_acquire t) do
      Sim.spin ()
    done

  let read_release t = ignore (Memory.faa t.mem t.a (-1))

  let try_write_acquire t = Memory.cas t.mem t.a ~expected:0 ~desired:(-1)

  let write_acquire t =
    while not (try_write_acquire t) do
      Sim.spin ()
    done

  let write_release t = Memory.write t.mem t.a 0
end

(** Distributed reader-writer lock (the NR design this repo's replicas
    call for): one cache-line-padded reader flag per core of the socket,
    plus a writer word. A reader touches only its own core's line — a
    plain store to raise the flag and a load of the writer word, no CAS
    and no shared-line FAA — so concurrent readers on one socket no
    longer serialize on a single cache line. A writer CASes the writer
    word and then sweeps the per-core flags, waiting for each raised flag
    to drop.

    Correctness relies on the store-load ordering the simulator's
    sequentially-consistent memory provides (the same Dekker-style
    argument the real lock makes under an mfence): a reader stores its
    flag *then* loads the writer word; the writer CASes the writer word
    *then* loads the flags. If the reader's load saw the writer word
    free, its flag store precedes the writer's sweep, so the writer
    waits; if the reader saw the writer, it retracts its flag and
    retries.

    The [read_acquires]/[writer_sweeps] fields are harness-side counters
    (no simulated cost), surfaced through [Prep_uc.counters] so the
    bench JSON can show how often each path ran. *)
module Dist_rwlock = struct
  type t = {
    mem : Memory.t;
    a : int; (* writer word; reader flag for core i lives on its own line *)
    ncores : int;
    mutable read_acquires : int;
    mutable writer_sweeps : int;
  }

  let size_words ~ncores = (ncores + 1) * Memory.line_words

  let flag_addr t i = t.a + ((i + 1) * Memory.line_words)

  let make mem a ~ncores =
    Memory.write mem a 0;
    let t = { mem; a; ncores; read_acquires = 0; writer_sweeps = 0 } in
    for i = 0 to ncores - 1 do
      Memory.write mem (flag_addr t i) 0
    done;
    t

  let my_flag t = flag_addr t ((Sim.self ()).Sim.core mod t.ncores)

  let try_read_acquire t =
    let f = my_flag t in
    if Memory.read t.mem t.a <> 0 then false
    else begin
      Memory.write t.mem f 1;
      (* store flag, then re-check the writer word (Dekker) *)
      if Memory.read t.mem t.a = 0 then begin
        t.read_acquires <- t.read_acquires + 1;
        true
      end
      else begin
        Memory.write t.mem f 0;
        false
      end
    end

  let read_acquire t =
    while not (try_read_acquire t) do
      Sim.spin ()
    done

  let read_release t = Memory.write t.mem (my_flag t) 0

  let write_acquire t =
    while not (Memory.cas t.mem t.a ~expected:0 ~desired:(-1)) do
      Sim.spin ()
    done;
    t.writer_sweeps <- t.writer_sweeps + 1;
    for i = 0 to t.ncores - 1 do
      while Memory.read t.mem (flag_addr t i) <> 0 do
        Sim.spin ()
      done
    done

  let write_release t = Memory.write t.mem t.a 0

  (* test/inspection helpers (no simulated cost) *)
  let peek_writer t = Memory.peek t.mem t.a
  let peek_flag t i = Memory.peek t.mem (flag_addr t i)
end

(** Dispatcher over the two reader-writer locks, so the replica code can
    hold either behind one type ([Config.make ~dist_rw] selects which). *)
module Rw = struct
  type t = Single of Rwlock.t | Dist of Dist_rwlock.t

  let size_words ~dist ~ncores =
    if dist then Dist_rwlock.size_words ~ncores else Rwlock.size_words

  let make ~dist ~ncores mem a =
    if dist then Dist (Dist_rwlock.make mem a ~ncores)
    else Single (Rwlock.make mem a)

  let read_acquire = function
    | Single l -> Rwlock.read_acquire l
    | Dist l -> Dist_rwlock.read_acquire l

  let read_release = function
    | Single l -> Rwlock.read_release l
    | Dist l -> Dist_rwlock.read_release l

  let write_acquire = function
    | Single l -> Rwlock.write_acquire l
    | Dist l -> Dist_rwlock.write_acquire l

  let write_release = function
    | Single l -> Rwlock.write_release l
    | Dist l -> Dist_rwlock.write_release l

  let read_acquires = function
    | Single _ -> 0
    | Dist l -> l.Dist_rwlock.read_acquires

  let writer_sweeps = function
    | Single _ -> 0
    | Dist l -> l.Dist_rwlock.writer_sweeps
end
