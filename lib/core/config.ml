(** PREP-UC configuration (paper Algorithm 1 and §6). *)

type mode =
  | Volatile (** PREP-V: node replication with all persistence removed *)
  | Buffered (** PREP-Buffered: buffered durable linearizable *)
  | Durable (** PREP-Durable: durable linearizable *)

let mode_name = function
  | Volatile -> "PREP-V"
  | Buffered -> "PREP-Buffered"
  | Durable -> "PREP-Durable"

(** How the persistence thread writes the active persistent replica back
    to NVM at the end of an update cycle. [Wbinvd] is the paper's default
    (write back and invalidate the whole cache); [Flush_heap] walks the
    persistent heap's address range and writes back dirty lines — the
    alternative the paper suggests for very small structures (§6,
    "Priority Queue"). *)
type flush_strategy = Wbinvd | Flush_heap

(** Deliberate protocol faults, injectable for harness validation only.
    A durability checker that cannot catch a known-broken variant proves
    nothing; the fuzz harness (lib/check/fuzz.ml) runs these to make sure
    its verdicts have teeth. *)
type fault =
  | No_fault
  | Early_boundary_advance
      (** advance the flushBoundary *before* persisting and swapping the
          replicas — the exact ordering bug the module comment of
          [Prep_uc] warns about, which widens the crash-loss window to
          about 2ε and breaks the ε+β−1 bound *)
  | Elide_ct_flush
      (** skip the completedTail CLFLUSH entirely in durable mode — a
          plausibly-wrong version of this repo's flush-elimination layer
          (eliding the flush without checking the line is persisted), which
          leaves the durable completedTail stale on media and breaks the
          zero-loss guarantee of §5.2 *)
  | Mirror_read_on_recovery
      (** serve recovery's log replay from the DRAM log mirror instead of
          the NVM copy — the obvious wrong version of this repo's
          [~log_mirror] optimisation. The mirror is volatile, so after a
          power failure it reads back zeroed; any durably completed
          operations sitting between the stable replica's tail and the
          completedTail are silently dropped from the recovered prefix *)
  | Response_before_log_persist
      (** detectability mode only: persist each response slot (CLFLUSH,
          straight to media) while *hoisting* the log-entry fences to a
          single fence after the responses — the plausible "one fence at
          the end is enough" batching bug. In the window between a
          response reaching media and the final fence draining the
          entries' write-backs, a crash leaves a durable response whose
          log entry never made it: recovery then reports the op completed
          although the recovered state lost it, breaking the exactly-once
          contract the announce/response protocol exists to provide *)
  | Commit_before_prepare_persist
      (** sharded mode only: write and flush the cross-shard commit
          decision record *before* the per-shard prepare entries are
          durably logged — the classic "decide first, log later" 2PC
          ordering bug. A crash between the decision flush and the
          prepares' fences leaves a committed transaction some of whose
          participant shards never logged their sub-op: recovery rolls
          the transaction forward on the shards that did log it and
          silently loses the rest, breaking cross-shard atomicity *)
  | Manifest_before_segment_seal
      (** lsm-ckpt mode only: publish the new manifest record (which
          names the freshly sealed segments and advances [sealed_lt])
          *before* the segment bodies are written back and fenced — the
          plausible "the manifest publish has its own fence, surely that
          orders everything" bug. In the window between the manifest
          reaching media and the segment seal fences, a crash leaves a
          durable manifest pointing at torn segments: recovery mounts the
          manifest, drops the unsealed segments, and silently loses every
          effect the advanced [sealed_lt] claims is covered — completed
          operations disappear below the replay horizon *)

let fault_name = function
  | No_fault -> "none"
  | Early_boundary_advance -> "early-boundary"
  | Elide_ct_flush -> "elide-ct-flush"
  | Mirror_read_on_recovery -> "mirror-read-recovery"
  | Response_before_log_persist -> "response-before-log-persist"
  | Commit_before_prepare_persist -> "commit-before-prepare"
  | Manifest_before_segment_seal -> "manifest-before-seal"

type t = {
  mode : mode;
  log_size : int; (** LOG_SIZE: entries in the circular shared log *)
  epsilon : int; (** flush-boundary advance per persistence cycle *)
  workers : int; (** worker threads; replicas are created only for the
                     sockets these occupy, as in the paper's pinning *)
  flush : flush_strategy;
  flit : bool;
      (** enable the FliT-style flush-elimination layer: per-line flush
          tracking in [Nvm.Memory] plus the batched single-fence log
          persistence path in [Prep_uc]. Off by default so the baseline
          variant stays byte-for-byte the paper's protocol. *)
  dist_rw : bool;
      (** protect each replica with the distributed per-core reader-writer
          lock ([Locks.Dist_rwlock]) instead of the single-word lock:
          readers touch only their own cache line. Semantically invisible;
          off by default to keep the baseline the paper's protocol. *)
  log_mirror : bool;
      (** durable mode only: shadow every log entry into a DRAM mirror and
          serve replica catch-up / persistence-thread reads from it at DRAM
          cost. CLWB and recovery keep using the NVM copy as the sole
          durability source. No effect outside [Durable] mode. *)
  slot_bitmap : bool;
      (** per-replica slot-occupancy summary word: [execute_update] sets
          its core's bit when publishing a slot and the combiner collects
          only set bits, turning the O(β) slot sweep into O(occupied). *)
  detect : bool;
      (** detectable execution (durable mode only): every update is
          announced to a per-thread persistent record (op descriptor +
          monotonic client seqno, flushed before the flat-combining slot
          is published) and its result is persisted to a per-thread
          response slot by the combiner before the completedTail may
          advance past it. After a crash, [Prep_uc.resolve] tells each
          client whether its last announced op survived, so clients
          re-submit exactly the lost ones — exactly-once end to end. *)
  shards : int;
      (** number of independent PREP-UC shards fronting the keyspace
          ([Sharded_uc]); 1 is the classic single-instance construction.
          Each shard owns its own log, replicas and combiner; multi-key
          operations commit across shards through a 2PC-style
          prepare/decision protocol. Sharding requires durable mode: the
          commit decision is only meaningful when prepare entries are
          durably logged before it. *)
  lsm_ckpt : bool;
      (** replace the whole-replica checkpoint (WBINVD / heap walk) with
          the incremental log-structured backend: the persistence thread
          classifies log entries into per-key effects, accumulates them in
          a volatile memtable, and each checkpoint seals only the dirty
          set into immutable NVM segments ([Nvm.Segment]) named by a
          fenced manifest ([Nvm.Manifest]). Recovery mounts the manifest
          and replays only the log suffix past the newest sealed index —
          O(dirty) checkpoints and O(1) recovery-to-first-op instead of
          O(replica). Requires a keyed-map structure (one whose ops
          classify as [Put]/[Del]/[Read]); refused at runtime otherwise. *)
  lsm_fanout : int;
      (** size-tiered compaction trigger: when a level accumulates this
          many segments, the compaction fiber merges them into one segment
          at the next level *)
  lsm_compact : bool;
      (** run the background compaction fiber (lsm-ckpt only); off leaves
          every sealed segment in place, which is correct but lets lookups
          and the manifest grow with the number of seals *)
  root_base : int;
      (** first NVM root slot this instance's six persistent roots are
          registered at (shard [i] of a sharded construction uses
          [i * 8]); 0 is the classic layout *)
  tag : string;
      (** suffix appended to this instance's telemetry track names
          (e.g. ["/shard2"]), so per-shard combiner and persistence
          fibers get separate tracks in the trace export *)
  persist_policy : Nvm.Persist.policy option;
      (** per-site persistency policy installed on the memory at build
          time ([Nvm.Memory.set_policy]); [None] leaves whatever the
          memory already has (the all-[Emit] default). Policies come from
          [optimize-persist]'s proven output ([--persist-policy]) or from
          a deliberately unsafe spec used as a planted fault; the
          construction itself never weakens anything. *)
  fault : fault;
}

(** Validate against the constraint of §5.1: the persistence-cycle length
    must leave room for one full batch plus the lowMark slack,
    ε ≤ LOG_SIZE − β − 1. *)
let validate t ~beta =
  if t.log_size < 2 * beta then
    invalid_arg "Config: log too small for two batches";
  if t.mode <> Volatile && t.epsilon > t.log_size - beta - 1 then
    invalid_arg "Config: epsilon must be at most LOG_SIZE - beta - 1";
  if t.mode <> Volatile && t.epsilon < 1 then
    invalid_arg "Config: epsilon must be positive";
  if t.workers < 1 then invalid_arg "Config: need at least one worker";
  if t.slot_bitmap && beta > 62 then
    invalid_arg "Config: slot bitmap supports at most 62 slots per replica";
  if t.detect && t.mode <> Durable then
    invalid_arg
      "Config: detectable execution requires durable mode (a buffered \
       checkpoint cannot be gated on response persistence)";
  if t.fault = Response_before_log_persist && not t.detect then
    invalid_arg
      "Config: response-before-log-persist fault only exists under --detect";
  if t.shards < 1 then invalid_arg "Config: need at least one shard";
  if t.shards > 1 && t.mode <> Durable then
    invalid_arg
      "Config: sharding requires durable mode (cross-shard commit \
       decisions are only meaningful over durably logged prepares)";
  if t.shards > 1 && t.detect then
    invalid_arg "Config: detectable execution is per-instance; not yet \
                 wired through the shard router";
  if t.fault = Commit_before_prepare_persist && t.shards < 2 then
    invalid_arg
      "Config: commit-before-prepare fault only exists with --shards >= 2";
  if t.lsm_ckpt && t.mode = Volatile then
    invalid_arg "Config: --lsm-ckpt is a checkpoint strategy; the volatile \
                 variant has no checkpoints";
  if t.lsm_fanout < 2 then
    invalid_arg "Config: lsm_fanout must be at least 2";
  if t.fault = Manifest_before_segment_seal && not t.lsm_ckpt then
    invalid_arg
      "Config: manifest-before-seal fault only exists under --lsm-ckpt";
  if t.root_base < 0 then invalid_arg "Config: root_base must be >= 0"

let make ?(mode = Buffered) ?(log_size = 65536) ?(epsilon = 1024)
    ?(flush = Wbinvd) ?(flit = false) ?(dist_rw = false)
    ?(log_mirror = false) ?(slot_bitmap = false) ?(detect = false)
    ?(shards = 1) ?(lsm_ckpt = false) ?(lsm_fanout = 4) ?(lsm_compact = true)
    ?(root_base = 0) ?(tag = "") ?persist_policy ?(fault = No_fault)
    ~workers () =
  { mode; log_size; epsilon; workers; flush; flit; dist_rw; log_mirror;
    slot_bitmap; detect; shards; lsm_ckpt; lsm_fanout; lsm_compact;
    root_base; tag; persist_policy; fault }
