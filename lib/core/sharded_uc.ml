(** Sharded PREP-UC: hash-routed shards with cross-shard durable
    transactions.

    One PREP-UC instance is one object = one combiner = one durable log,
    so its throughput is capped by a single combine pipeline no matter the
    thread count. This module partitions a map-convention keyspace across
    [Config.shards] fully independent PREP-UC instances — each with its
    own log, replicas and persistence thread, registered at its own stride
    of the NVM root directory ([Config.root_base = i * 8]) — and fronts
    them with a router that hash-partitions keys (the multiplicative hash
    of [Soft_hash]) and dispatches single-key operations directly to the
    owning shard. Near-linear scaling falls out: disjoint shards share no
    log, no completedTail, no combiner lock.

    Cross-shard atomicity (multi-key operations: [op_multi_put],
    [op_transfer]) uses a 2PC-style commit protocol over the per-shard
    durable logs plus one persistent *decision table*:

    - the coordinator (the calling worker fiber) draws a fresh txid and
      executes one *prepare* sub-operation per participant through the
      normal per-shard combiner path ([op_txn_put]/[op_txn_add], the txid
      in the entry's first argument). PREP-Durable's combiner persists the
      entry and CLFLUSHes the completedTail *before* responding, so when
      a prepare returns it is durably logged below its shard's durable
      completedTail. Prepares are issued in ascending shard order, which
      keeps the shard-boundary wait graph acyclic (see the gate below);
    - once every prepare has returned, the coordinator writes the txid
      into the decision table slot, CLFLUSHes it and SFENCEs — the single
      fence that commits the transaction. Crash before the fence: no
      durable decision, every shard rolls the prepares back. Crash after:
      the decision is media truth, every shard rolls them forward;
    - volatile replicas apply prepares unconditionally (the runtime never
      aborts — a transaction is undecided only for the instant between
      its last prepare and its decision write). The *persistent* replicas
      must not: each shard's persistence thread carries a
      [Prep_uc.txn_gate] that stops the catch-up in front of any prepare
      whose decision is still pending, so a checkpoint can never bake in
      an effect recovery might have to roll back. When the gate does
      approve a prepare it first CLFLUSHes the decision slot: the
      checkpoint's own fence then drains that write-back, so a checkpoint
      containing the effect implies the decision is on media;
    - recovery attaches the decision table through its root slot and
      replays every shard's log with a [Prep_uc.replay_keep] filter:
      prepares whose txid is absent from the post-crash decision media
      are skipped exactly like log holes (roll-back), committed ones are
      re-executed (roll-forward). Durable linearizability then holds
      across any crash frontier, shard by shard and transaction by
      transaction.

    Deadlock freedom of the gate: a gated persistence thread waits on the
    coordinator of an undecided transaction that already *completed* its
    prepare on this shard. A key-pair whose two keys hash to the same
    shard never enters 2PC at all — it is logged as ONE entry
    ([op_mput_local]/[op_xfer_local], atomic by log-entry granularity) —
    so a cross-shard transaction holds at most one prepare per shard and
    issues them in strictly ascending shard order. A coordinator holding
    an undecided prepare on shard [s] can therefore only be waiting on a
    shard strictly above [s] (or on its own decision write, which never
    blocks): every persistence(s) → coordinator → shard s' wait chain has
    s' > s, chains strictly ascend the shard order, and the top shard's
    blocking transaction is always at its (non-blocking) decision step.
    Without the collapse there is a real deadlock, caught by this repo's
    own harness: a coordinator waiting for log space on shard [s] behind
    its *own* undecided prepare, whose decision it can never reach. *)

open Nvm

(* ---- op-code conventions ---- *)

(* Logged transactional prepare sub-operations (applied through the
   per-shard logs; first argument is the txid). *)
let op_txn_put = 16 (* [txid; k; v] : set k := v *)
let op_txn_add = 17 (* [txid; k; d] : k := (get k) + d, insert d if absent *)

(* Client-facing multi-key operations (router level; never logged as-is). *)
let op_multi_put = 18 (* [k1; k2; v] : atomically set k1 := v and k2 := v *)
let op_transfer = 19 (* [k1; k2; a] : atomically move a from k1 to k2 *)

(* Logged single-entry forms of the multi-key ops for key pairs that hash
   to the SAME shard: both keys fit in one log entry, which is atomic by
   log-entry granularity — no txid, no decision, no gate. Collapsing
   same-shard pairs is also what makes the 2PC wait graph acyclic: it
   guarantees a coordinator never waits on a shard where it already holds
   an undecided prepare (see the deadlock note in the module comment). *)
let op_mput_local = 20 (* [k1; k2; v] : set both keys to v *)
let op_xfer_local = 21 (* [k1; k2; a] : move a from k1 to k2 *)

let is_txn_op op = op = op_txn_put || op = op_txn_add
let is_multi_op op = op = op_multi_put || op = op_transfer

(* Map-convention base op codes (Seqds.Hashmap / Soft_hash). *)
let op_insert = 0
let op_get = 2

(** The router's key hash — the same multiplicative (Fibonacci) hash
    [Soft_hash] buckets with, so a shard count equal to the bucket count
    would align shard and bucket boundaries. *)
let route_key ~nshards key = key * 0x9E3779B1 land max_int mod nshards

(** Shard i owns root-directory slots [i*8 .. i*8+6]; slot 7 of the last
    stride holds the cross-shard decision table, so the 64-slot directory
    caps the shard count. *)
let max_shards = (Roots.max_slots - 7) / 8

(* Absolute root-directory slot of the decision-table directory block.
   Shard [i] occupies slots [i*8 + 1 .. i*8 + 6]; slot 7 is free. *)
let slot_decision = 7

(* ---- the persistent commit decision table ---- *)

module Decision = struct
  (* An open-addressed table of [cap] words in NVM: slot [txid mod cap]
     holds [txid] iff the transaction committed (txids start at 1 and a
     fresh arena reads 0, so an empty slot can never alias a commit; a
     *reused* slot holds a different txid, which also reads as
     not-committed for the old one — capacity just has to exceed the
     number of transactions that can still matter to any recovery scan,
     i.e. one log lap per shard). Chunked because a single allocation is
     capped at half an arena. *)

  let chunk_words = Memory.arena_words / 2

  type t = {
    mem : Memory.t;
    cap : int;
    chunks : int array; (* base address of each chunk *)
  }

  let slot_addr t txid =
    let i = txid mod t.cap in
    t.chunks.(i / chunk_words) + (i mod chunk_words)

  let create mem roots ~cap =
    let cap = max cap 256 in
    let pa = Alloc.create_persistent mem ~home:0 in
    let nchunks = (cap + chunk_words - 1) / chunk_words in
    let chunks = Array.init nchunks (fun _ -> Alloc.alloc pa chunk_words) in
    let dir = Alloc.alloc pa (2 + nchunks) in
    Memory.write mem dir cap;
    Memory.write mem (dir + 1) nchunks;
    Array.iteri (fun i a -> Memory.write mem (dir + 2 + i) a) chunks;
    (* table zero (all-empty) plus its directory durable before any txn *)
    Alloc.persist_heap pa;
    Roots.set roots slot_decision dir;
    { mem; cap; chunks }

  let attach mem roots =
    let dir = Roots.get roots slot_decision in
    if dir = Memory.null then failwith "Decision.attach: no table registered";
    let cap = Memory.read mem dir in
    let nchunks = Memory.read mem (dir + 1) in
    let chunks = Array.init nchunks (fun i -> Memory.read mem (dir + 2 + i)) in
    { mem; cap; chunks }

  (** The commit point: decision slot written, written back, fenced. *)
  let commit t txid =
    let a = slot_addr t txid in
    Memory.write t.mem a txid;
    Memory.clflush ~site:Persist.Txn_decision t.mem a;
    Memory.sfence ~site:Persist.Txn_decision t.mem

  (** Coherent-view commit query (charged read; what the runtime gate and
      recovery replay consult — right after a crash the coherent view IS
      the media view). *)
  let committed t txid = Memory.read t.mem (slot_addr t txid) = txid

  (** Queue the decision slot's write-back without fencing — the
      persistence gate's pre-checkpoint obligation (the checkpoint fence
      drains it). *)
  let flush t txid =
    Memory.clwb ~site:Persist.Txn_gate t.mem (slot_addr t txid)

  (** Cost-free media-truth commit query for the checkers. *)
  let committed_peek t txid = Memory.peek t.mem (slot_addr t txid) = txid
end

module Make (Ds : Seqds.Ds_intf.S) = struct
  (** The transactional wrapper: the same sequential object, extended with
      the two logged prepare op codes. This is what each shard's PREP-UC
      instance actually lifts, so prepares flow through the unmodified
      combiner/log/recovery machinery as ordinary operations. *)
  module Tx = struct
    let name = Ds.name ^ "+txn"

    type handle = Ds.handle

    let create = Ds.create
    let root_addr = Ds.root_addr
    let attach = Ds.attach
    let copy = Ds.copy
    let snapshot = Ds.snapshot

    let execute h ~op ~args =
      let add k d =
        let cur = Ds.execute h ~op:op_get ~args:[| k |] in
        let v = if cur = -1 then d else cur + d in
        Ds.execute h ~op:op_insert ~args:[| k; v |]
      in
      if op = op_txn_put then
        Ds.execute h ~op:op_insert ~args:[| args.(1); args.(2) |]
      else if op = op_txn_add then add args.(1) args.(2)
      else if op = op_mput_local then begin
        ignore (Ds.execute h ~op:op_insert ~args:[| args.(0); args.(2) |]);
        Ds.execute h ~op:op_insert ~args:[| args.(1); args.(2) |]
      end
      else if op = op_xfer_local then begin
        ignore (add args.(0) (-args.(2)));
        add args.(1) args.(2)
      end
      else Ds.execute h ~op ~args

    let is_readonly ~op =
      if is_txn_op op || is_multi_op op || op = op_mput_local
         || op = op_xfer_local
      then false
      else Ds.is_readonly ~op

    (* Key footprints for the incremental-checkpoint dirty tracker. The
       read-modify-write ops ([op_txn_add]/[op_xfer_local]) put their keys
       in [written], per the [key_effect] contract. [op_multi_put] and
       [op_transfer] never reach a shard log (the router splits them), but
       classify like their local forms for totality. *)
    let classify ~op ~args =
      let open Seqds.Ds_intf in
      if op = op_txn_put || op = op_txn_add then
        Keyed { written = [| args.(1) |]; read = [||] }
      else if
        op = op_mput_local || op = op_xfer_local || is_multi_op op
      then Keyed { written = [| args.(0); args.(1) |]; read = [||] }
      else Ds.classify ~op ~args

    let key_get = Ds.key_get
    let key_put = Ds.key_put

    module Model = struct
      type m = Ds.Model.m

      let empty = Ds.Model.empty

      (* mirrors [execute] exactly — the checkers replay prepares through
         this, so the two must agree observation for observation *)
      let apply m ~op ~args =
        let add m k d =
          let m, cur = Ds.Model.apply m ~op:op_get ~args:[| k |] in
          let v = if cur = -1 then d else cur + d in
          Ds.Model.apply m ~op:op_insert ~args:[| k; v |]
        in
        if op = op_txn_put then
          Ds.Model.apply m ~op:op_insert ~args:[| args.(1); args.(2) |]
        else if op = op_txn_add then add m args.(1) args.(2)
        else if op = op_mput_local then begin
          let m, _ =
            Ds.Model.apply m ~op:op_insert ~args:[| args.(0); args.(2) |]
          in
          Ds.Model.apply m ~op:op_insert ~args:[| args.(1); args.(2) |]
        end
        else if op = op_xfer_local then begin
          let m, _ = add m args.(0) (-args.(2)) in
          add m args.(1) args.(2)
        end
        else Ds.Model.apply m ~op ~args

      let snapshot = Ds.Model.snapshot
    end
  end

  module P = Prep_uc.Make (Tx)

  type t = {
    mem : Memory.t;
    roots : Roots.t;
    cfg : Config.t;
    nshards : int;
    shards : P.t array;
    dec : Decision.t;
    txn_intent : (int, int list) Hashtbl.t;
        (* ghost: txid -> intended participant shards (with multiplicity),
           for the atomicity checkers; survives simulated crashes *)
    mutable next_txid : int; (* ghost monotone counter, txids from 1 *)
    (* harness-side counters (no simulated cost) *)
    mutable single_ops : int;
    mutable multi_ops : int;
    mutable cross_shard_txns : int;
    mutable same_shard_txns : int;
    mutable gate_stalls : int;
  }

  let route t key = route_key ~nshards:t.nshards key

  (* Install the persistence-thread commit gate on every shard (fresh
     builds and recoveries both need it). *)
  let install_gates t =
    let gate ~op ~args =
      if not (is_txn_op op) then true
      else begin
        let txid = args.(0) in
        if Decision.committed t.dec txid then begin
          (* decision write-back queued before the checkpoint's fence can
             make the prepare's effect durable *)
          Decision.flush t.dec txid;
          true
        end
        else begin
          t.gate_stalls <- t.gate_stalls + 1;
          false
        end
      end
    in
    Array.iter (fun s -> s.P.txn_gate <- Some gate) t.shards

  (** Create a sharded construction whose initial state is [prefill]
      (map-convention single-key ops, routed to their owning shards)
      applied to empty shards. Must run inside a fiber. *)
  let create ?(prefill = []) mem roots cfg =
    let n = cfg.Config.shards in
    if cfg.Config.mode <> Config.Durable then
      invalid_arg "Sharded_uc: requires durable mode";
    if n > max_shards then
      invalid_arg "Sharded_uc: too many shards for the root directory";
    let dec = Decision.create mem roots ~cap:(n * cfg.Config.log_size) in
    let shard_prefill i =
      List.filter
        (fun (_, args) ->
          Array.length args > 0 && route_key ~nshards:n args.(0) = i)
        prefill
    in
    let shards =
      Array.init n (fun i ->
          let scfg =
            { cfg with
              Config.root_base = i * 8;
              tag = (if n = 1 then "" else "/shard" ^ string_of_int i);
            }
          in
          P.create ~prefill:(shard_prefill i) mem roots scfg)
    in
    let t =
      {
        mem;
        roots;
        cfg;
        nshards = n;
        shards;
        dec;
        txn_intent = Hashtbl.create 256;
        next_txid = 0;
        single_ops = 0;
        multi_ops = 0;
        cross_shard_txns = 0;
        same_shard_txns = 0;
        gate_stalls = 0;
      }
    in
    install_gates t;
    t

  (** Bind the calling worker fiber. Registration goes through shard 0 —
      all shards share the topology, and the volatile replica allocators
      are interchangeable DRAM heaps on the worker's socket. *)
  let register_worker t = P.register_worker t.shards.(0)

  let start_persistence t = Array.iter P.start_persistence t.shards
  let stop t = Array.iter P.stop t.shards
  let sync t = Array.iter P.sync t.shards

  (* ---- the router ---- *)

  let fresh_txid t =
    t.next_txid <- t.next_txid + 1;
    t.next_txid

  (* One multi-key operation. Same-shard pairs collapse to a single
     atomic log entry on the owning shard; cross-shard pairs run the 2PC
     protocol — prepares in ascending shard order, then the decision.
     Returns 0. *)
  let multi t ~op ~args =
    let k1 = args.(0) and k2 = args.(1) and x = args.(2) in
    let s1 = route t k1 and s2 = route t k2 in
    t.multi_ops <- t.multi_ops + 1;
    if s1 = s2 then begin
      t.same_shard_txns <- t.same_shard_txns + 1;
      let local = if op = op_multi_put then op_mput_local else op_xfer_local in
      ignore (P.execute t.shards.(s1) ~op:local ~args)
    end
    else begin
      t.cross_shard_txns <- t.cross_shard_txns + 1;
      let subs =
        if op = op_multi_put then
          [ (s1, op_txn_put, k1, x); (s2, op_txn_put, k2, x) ]
        else [ (s1, op_txn_add, k1, -x); (s2, op_txn_add, k2, x) ]
      in
      let subs =
        List.stable_sort (fun (a, _, _, _) (b, _, _, _) -> compare a b) subs
      in
      let txid = fresh_txid t in
      Hashtbl.replace t.txn_intent txid (List.map (fun (s, _, _, _) -> s) subs);
      let planted_early =
        t.cfg.Config.fault = Config.Commit_before_prepare_persist
      in
      (* the planted 2PC ordering fault: decide (and flush the decision)
         before a single prepare is durably logged *)
      if planted_early then Decision.commit t.dec txid;
      List.iter
        (fun (s, o, k, v) ->
          ignore (P.execute t.shards.(s) ~op:o ~args:[| txid; k; v |]))
        subs;
      if not planted_early then Decision.commit t.dec txid
    end;
    0

  (** ExecuteConcurrent over the sharded construction: single-key ops go
      straight to the owning shard; [op_multi_put]/[op_transfer] run the
      cross-shard commit protocol; whole-map readonly ops (size) fan out
      and sum. *)
  let execute t ~op ~args =
    if is_multi_op op then multi t ~op ~args
    else if Array.length args = 0 then
      (* whole-map readonly (size): sum over every shard *)
      Array.fold_left (fun acc s -> acc + P.execute s ~op ~args) 0 t.shards
    else begin
      t.single_ops <- t.single_ops + 1;
      P.execute t.shards.(route t args.(0)) ~op ~args
    end

  (** Pipelined batch execution: run every op of [ops] and return their
      responses in submission order, keeping up to one update in flight
      on *each* shard at once. A worker owns exactly one flat-combining
      slot per replica per shard, so ops that route to the same shard are
      queued FIFO (per-key program order is preserved — equal keys route
      equally); ops on different shards overlap, which is where the
      scaling comes from: one worker drives [min nshards (batch)]
      combiners concurrently instead of serialising full combining
      passes. Readonly single-key ops run when they reach their shard
      queue's head (they never consume the slot); multi-key and whole-map
      ops act as batch-wide barriers — every pipeline drains, then they
      run synchronously, in order, at the end. With one shard the
      pipeline degenerates to exactly the sequential [execute] loop, so
      1-vs-N comparisons stay apples to apples. Detectable execution
      needs the announce step of the synchronous path, so [detect] falls
      back to it. *)
  let execute_batch t ops =
    let n = Array.length ops in
    let resps = Array.make n 0 in
    if t.cfg.Config.detect then
      Array.iteri
        (fun i (op, args) -> resps.(i) <- execute t ~op ~args)
        ops
    else begin
      let queues = Array.make t.nshards [||] in
      let rev = Array.make t.nshards [] in
      let barriers = ref [] in
      Array.iteri
        (fun i (op, args) ->
          if is_multi_op op || Array.length args = 0 then
            barriers := i :: !barriers
          else begin
            let s = route t args.(0) in
            rev.(s) <- i :: rev.(s)
          end)
        ops;
      Array.iteri (fun s l -> queues.(s) <- Array.of_list (List.rev l)) rev;
      let heads = Array.make t.nshards 0 in
      let outstanding = Array.make t.nshards (-1) in
      let pending = ref (n - List.length !barriers) in
      while !pending > 0 do
        let progress = ref false in
        for s = 0 to t.nshards - 1 do
          let sh = t.shards.(s) in
          (if outstanding.(s) >= 0 then
             match P.try_collect sh (P.my_replica sh) with
             | Some resp ->
               resps.(outstanding.(s)) <- resp;
               outstanding.(s) <- -1;
               decr pending;
               progress := true
             | None -> ());
          if outstanding.(s) < 0 then begin
            let q = queues.(s) in
            (* run any readonly ops at the head of the queue inline *)
            let continue = ref true in
            while !continue && heads.(s) < Array.length q do
              let i = q.(heads.(s)) in
              let op, args = ops.(i) in
              if Tx.is_readonly ~op then begin
                t.single_ops <- t.single_ops + 1;
                resps.(i) <- P.execute sh ~op ~args;
                heads.(s) <- heads.(s) + 1;
                decr pending;
                progress := true
              end
              else continue := false
            done;
            if heads.(s) < Array.length q then begin
              let i = q.(heads.(s)) in
              heads.(s) <- heads.(s) + 1;
              let op, args = ops.(i) in
              t.single_ops <- t.single_ops + 1;
              P.submit_update sh (P.my_replica sh) ~seq:0 ~op ~args;
              outstanding.(s) <- i;
              progress := true
            end
          end
        done;
        if not !progress then Sim.spin ()
      done;
      List.iter
        (fun i ->
          let op, args = ops.(i) in
          resps.(i) <- execute t ~op ~args)
        (List.rev !barriers)
    end;
    resps

  (* ---- observation ---- *)

  let shard t i = t.shards.(i)
  let trace t i = P.trace t.shards.(i)
  let prefill_ops t i = P.prefill_ops t.shards.(i)

  (** Media-truth commit query (cost-free; valid before, at and after a
      crash — the slot is written through CLFLUSH+SFENCE). *)
  let committed t txid = Decision.committed_peek t.dec txid

  (** Merged cost-free snapshot: shards partition the keyspace, so the
      per-shard [k; v; ...] snapshots sort-merge on disjoint keys. *)
  let snapshot t =
    let pairs = ref [] in
    Array.iter
      (fun s ->
        let rec pair = function
          | k :: v :: rest ->
            pairs := (k, v) :: !pairs;
            pair rest
          | _ -> ()
        in
        pair (P.snapshot s))
      t.shards;
    List.sort compare !pairs
    |> List.concat_map (fun (k, v) -> [ k; v ])

  (** Per-shard counters keyed [shard<i>/...] plus the summed totals under
      the classic keys, plus the router's own counters. *)
  let sample t reg =
    Array.iteri
      (fun i s ->
        List.iter
          (fun (k, v) ->
            if t.nshards > 1 then
              Telemetry.Registry.add_to reg
                (Printf.sprintf "shard%d/%s" i k)
                v;
            Telemetry.Registry.add_to reg k v)
          (P.counters s))
      t.shards;
    List.iter
      (fun (k, v) -> Telemetry.Registry.add_to reg k v)
      [
        ("shard.single_ops", t.single_ops);
        ("shard.multi_ops", t.multi_ops);
        ("shard.cross_txns", t.cross_shard_txns);
        ("shard.same_txns", t.same_shard_txns);
        ("shard.gate_stalls", t.gate_stalls);
      ]

  let counters t =
    let acc = Hashtbl.create 32 in
    Array.iter
      (fun s ->
        List.iter
          (fun (k, v) ->
            Hashtbl.replace acc k
              (v + Option.value ~default:0 (Hashtbl.find_opt acc k)))
          (P.counters s))
      t.shards;
    Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
    |> List.sort compare

  (* ---- recovery ---- *)

  (** Recover every shard after [Memory.crash]: attach the decision table
      from its root, roll committed prepares forward and uncommitted ones
      back on every shard (via [replay_keep]), and rebuild the router.
      Returns the new construction plus the per-shard recovery reports.
      Must run inside a fiber. *)
  let recover old_t =
    let mem = old_t.mem and roots = old_t.roots in
    let dec = Decision.attach mem roots in
    let keep ~op ~args =
      if is_txn_op op then Decision.committed dec args.(0) else true
    in
    Array.iter (fun s -> s.P.replay_keep <- Some keep) old_t.shards;
    let pairs = Array.map P.recover old_t.shards in
    let shards = Array.map fst pairs in
    let reports = Array.map snd pairs in
    let t =
      {
        old_t with
        shards;
        dec;
        (* ghost state carries over: txids stay unique, intents keep
           naming every transaction the checkers must audit *)
      }
    in
    install_gates t;
    (t, reports)
end
