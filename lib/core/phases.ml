(** The core phases every PREP-UC variant is profiled by — combine,
    publish, persist, catch-up, plus the detectability announce/response
    work — as telemetry spans, shared by [Prep_uc], [Cx_puc] and [Gl_uc].

    A [t option] is captured once at construction time from the ambient
    registry ([Telemetry.Registry.current ()]); [None] makes every
    [in_span] a single match on the option, so an uninstrumented run pays
    nothing. The span values are created eagerly so a profile always
    shows all phases, even ones a variant never enters. *)

type t = {
  reg : Telemetry.Registry.t;
  combine : Telemetry.Registry.span;
  publish : Telemetry.Registry.span;
  persist : Telemetry.Registry.span;
  catchup : Telemetry.Registry.span;
  detect : Telemetry.Registry.span;
      (** announce writes + flushes (worker side) and response-slot
          persistence (combiner side) under detectable execution *)
  seal : Telemetry.Registry.span;
      (** incremental-checkpoint seal: memtable drain, segment builds and
          the manifest publish ([--lsm-ckpt] only) *)
  compact : Telemetry.Registry.span;
      (** background segment merges on the compaction fiber
          ([--lsm-ckpt] only) *)
}

(** The phase names, in canonical display order. *)
let phase_names =
  [ "combine"; "publish"; "persist"; "catch-up"; "detect"; "seal"; "compact" ]

(** [make ~tag ()] suffixes every span name with [tag] (e.g.
    ["combine/shard2"]), so a multi-instance construction — the sharded
    router — shows one row per shard per phase in the profile and
    per-shard span names in the trace, instead of an indistinguishable
    merge. The empty tag keeps the canonical names. *)
let make ?(tag = "") () =
  match Telemetry.Registry.current () with
  | None -> None
  | Some reg ->
    Some
      {
        reg;
        combine = Telemetry.Registry.span reg ("combine" ^ tag);
        publish = Telemetry.Registry.span reg ("publish" ^ tag);
        persist = Telemetry.Registry.span reg ("persist" ^ tag);
        catchup = Telemetry.Registry.span reg ("catch-up" ^ tag);
        detect = Telemetry.Registry.span reg ("detect" ^ tag);
        seal = Telemetry.Registry.span reg ("seal" ^ tag);
        compact = Telemetry.Registry.span reg ("compact" ^ tag);
      }

(** [in_span tel sel f] runs [f] inside the phase selected by [sel],
    or plainly when no registry was attached. Exception-safe. *)
let in_span tel sel f =
  match tel with
  | None -> f ()
  | Some pt -> Telemetry.Registry.with_span pt.reg (sel pt) f
