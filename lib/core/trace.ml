(** Ghost trace of the linearization order.

    The order in which update operations are written to the shared log *is*
    their linearization order (paper §4.2 "Correctness"). The trace records
    that order on the OCaml side — outside simulated memory, so it survives
    simulated crashes "for free" — and marks which operations completed
    (their invoking thread observed the response). The durability checkers
    compare recovered states against prefixes of this trace.

    The trace is white-box instrumentation only: no algorithm reads it. *)

type entry = {
  op : int;
  args : int array;
  tid : int; (** submitting thread id; 0 when untagged *)
  seqno : int; (** client seqno under detectable execution; 0 when untagged *)
  mutable completed : bool;
}

type t = {
  mutable entries : entry array;
  mutable len : int;
}

(* Never-logged slots need *distinct* sentinel records: [completed] is
   mutable, so a shared sentinel would let [completed] on one unlogged
   index mark every unlogged slot completed. *)
let sentinel () = { op = -1; args = [||]; tid = 0; seqno = 0; completed = false }

let create () = { entries = Array.init 1024 (fun _ -> sentinel ()); len = 0 }

(** Record the op logged at index [idx] (combiner side, at log-write time).
    [tid]/[seqno] carry the detectability tag when that layer is on. *)
let logged ?(tid = 0) ?(seqno = 0) t idx ~op ~args =
  if idx >= Array.length t.entries then begin
    let bigger =
      Array.init
        (max (2 * Array.length t.entries) (idx + 1))
        (fun _ -> sentinel ())
    in
    Array.blit t.entries 0 bigger 0 t.len;
    t.entries <- bigger
  end;
  t.entries.(idx) <- { op; args; tid; seqno; completed = false };
  if idx + 1 > t.len then t.len <- idx + 1

(** Mark the op at log index [idx] completed (worker side, at return). *)
let completed t idx = t.entries.(idx).completed <- true

let length t = t.len
let get t idx = t.entries.(idx)

(** Indexes of completed ops. *)
let completed_indexes t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    if t.entries.(i).completed then acc := i :: !acc
  done;
  !acc

(** Fold a pure model over the first [n] trace entries. *)
let replay_model (type m) (module Model : Seqds.Ds_intf.MODEL with type m = m)
    t n =
  let state = ref Model.empty in
  for i = 0 to n - 1 do
    let e = t.entries.(i) in
    let state', _ = Model.apply !state ~op:e.op ~args:e.args in
    state := state'
  done;
  !state
