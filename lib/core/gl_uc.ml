(** Global-lock universal construction (paper Fig. 1's "GL" baseline):
    a single copy of the sequential object protected by one spinlock. *)

open Nvm

module Make (Ds : Seqds.Ds_intf.S) = struct
  type t = {
    mem : Memory.t;
    lock : Locks.Trylock.t;
    ds : Ds.handle;
    alloc : Alloc.t;
    tel : Phases.t option;
  }

  let create ?(prefill = []) mem =
    let alloc = Alloc.create_volatile mem ~home:0 in
    Context.bind ~default:alloc ();
    let ds = Ds.create mem in
    List.iter (fun (op, args) -> ignore (Ds.execute ds ~op ~args)) prefill;
    let lock = Locks.Trylock.make mem (Alloc.alloc alloc 8) in
    { mem; lock; ds; alloc; tel = Phases.make () }

  let register_worker t = Context.bind ~default:t.alloc ()

  let execute ?readonly t ~op ~args =
    ignore readonly;
    while not (Locks.Trylock.try_acquire t.lock) do
      Sim.spin ()
    done;
    (* the locked section is this construction's (degenerate) combine *)
    let resp =
      Phases.in_span t.tel (fun pt -> pt.Phases.combine) (fun () ->
          Ds.execute t.ds ~op ~args)
    in
    Locks.Trylock.release t.lock;
    resp

  let snapshot t = Ds.snapshot t.ds
end
