(** CX-PUC of Correia et al. (paper §2.3, the PUC the evaluation compares
    against), reimplemented from its description:

    - a shared global queue of update operations establishes the
      linearization order (kept in DRAM: durability comes from the
      replicas, not the queue);
    - 2n replicas of the sequential object, each in its own persistent
      heap, each protected by a strong try reader-writer lock;
    - an updater appends its op to the queue, write-locks *some* replica,
      brings it up to date (applying its own op along the way), then
      **persists the entire replica** — the dominating cost the paper
      highlights — and publishes it as the most up-to-date replica with a
      CAS (+ CLFLUSH);
    - readers read-lock the currently published replica.

    Replicas other than replica 0 are instantiated lazily by copying the
    published replica under its read lock; the copy inherits the source's
    applied index. *)

open Nvm

let slot_cur = 6
(* root slot: packed (applied_count * 64 + rep_id) where applied_count is
   the number of queue entries the published replica reflects; persisted *)

let slot_dir = 7 (* root slot: NVM directory of replica ds roots *)

let pack ~count ~rid = (count * 64) + rid
let unpack v = (v / 64, v land 63)

module Make (Ds : Seqds.Ds_intf.S) = struct
  type rep = {
    rid : int;
    alloc : Alloc.t; (* persistent heap private to this replica *)
    rw : Locks.Rwlock.t;
    mutable ds : Ds.handle option; (* None until lazily instantiated *)
    mutable applied : int; (* next queue index to apply; mirrored in NVM *)
    applied_addr : int;
    dirty_addr : int;
        (* persisted mid-update marker: recovery skips dirty replicas,
           whose heap may contain a partially-flushed update *)
  }

  type t = {
    mem : Memory.t;
    roots : Roots.t;
    queue : Log.t; (* reuse the log machinery as the global op queue *)
    qtail_addr : int;
    reps : rep array; (* 2n *)
    dir : int; (* NVM array: ds root per replica *)
    ctrl_alloc : Alloc.t;
    queue_capacity : int;
    tel : Phases.t option;
  }

  let read_qtail t = Memory.read t.mem t.qtail_addr

  let create ?(prefill = []) ?(queue_capacity = 1 lsl 18) mem roots ~workers =
    let ctrl_alloc = Alloc.create_volatile mem ~home:0 in
    Context.bind ~default:ctrl_alloc ();
    let topo = Sim.topology () in
    let n_reps = 2 * workers in
    if n_reps > 63 then invalid_arg "Cx_puc: too many replicas to pack";
    let queue = Log.create mem ~size:queue_capacity ~durable:false in
    let qtail_addr = Alloc.alloc ctrl_alloc 8 in
    Memory.write mem qtail_addr 0;
    let dir_alloc = Alloc.create_persistent mem ~home:0 in
    (* directory: 4 NVM words per replica: ds root, applied addr, dirty addr *)
    let dir = Alloc.alloc dir_alloc (max 8 (4 * n_reps)) in
    let make_rep rid =
      let home = rid mod topo.Sim.Topology.sockets in
      let alloc = Alloc.create_persistent mem ~home in
      let rw = Locks.Rwlock.make mem (Alloc.alloc ctrl_alloc 8) in
      let applied_addr = Alloc.alloc alloc 8 in
      let dirty_addr = Alloc.alloc alloc 8 in
      { rid; alloc; rw; ds = None; applied = 0; applied_addr; dirty_addr }
    in
    let reps = Array.init n_reps make_rep in
    (* replica 0 is instantiated eagerly with the initial state *)
    let r0 = reps.(0) in
    let ds0 =
      Context.with_allocator r0.alloc (fun () ->
          let ds = Ds.create mem in
          List.iter (fun (op, args) -> ignore (Ds.execute ds ~op ~args)) prefill;
          ds)
    in
    r0.ds <- Some ds0;
    Memory.write mem dir (Ds.root_addr ds0);
    Memory.write mem (dir + 1) r0.applied_addr;
    Memory.write mem (dir + 2) r0.dirty_addr;
    Memory.write mem r0.applied_addr 0;
    Memory.write mem r0.dirty_addr 0;
    Alloc.persist_heap r0.alloc;
    Memory.clflush ~site:Persist.Cx_dir_init mem dir;
    Roots.set roots slot_cur (pack ~count:0 ~rid:0);
    Roots.set roots slot_dir dir;
    { mem; roots; queue; qtail_addr; reps; dir; ctrl_alloc; queue_capacity;
      tel = Phases.make () }

  let register_worker t = Context.bind ~default:t.ctrl_alloc ()

  (* Apply queue entries [rep.applied, upto] to [rep] (write lock held).
     Returns the response of entry [upto]. *)
  let catch_up t rep ~upto =
    Phases.in_span t.tel (fun pt -> pt.Phases.catchup) @@ fun () ->
    let ds = Option.get rep.ds in
    let resp = ref 0 in
    Context.with_allocator rep.alloc (fun () ->
        for idx = rep.applied to upto do
          let op, args = Log.wait_and_read t.queue idx in
          let r = Ds.execute ds ~op ~args in
          if idx = upto then resp := r
        done);
    rep.applied <- upto + 1;
    Memory.write t.mem rep.applied_addr (upto + 1);
    !resp

  (* Lazily instantiate [rep] as a copy of the published replica. *)
  let instantiate t rep =
    let src_count, src_rid = unpack (Roots.get t.roots slot_cur) in
    let src = t.reps.(src_rid) in
    Locks.Rwlock.read_acquire src.rw;
    let ds =
      Context.with_allocator rep.alloc (fun () -> Ds.copy (Option.get src.ds))
    in
    let applied = max src.applied src_count in
    Locks.Rwlock.read_release src.rw;
    rep.ds <- Some ds;
    rep.applied <- applied;
    Memory.write t.mem rep.applied_addr applied;
    let d = t.dir + (4 * rep.rid) in
    Memory.write t.mem d (Ds.root_addr ds);
    Memory.write t.mem (d + 1) rep.applied_addr;
    Memory.write t.mem (d + 2) rep.dirty_addr;
    Memory.clwb ~site:Persist.Cx_replica_dir t.mem d;
    Memory.sfence ~site:Persist.Cx_replica_dir t.mem

  let publish t ~count ~rid =
    Phases.in_span t.tel (fun pt -> pt.Phases.publish) @@ fun () ->
    let rec loop () =
      let cur = Roots.get t.roots slot_cur in
      let cur_count, _ = unpack cur in
      if cur_count >= count then ()
      else if
        Memory.cas t.mem (Roots.addr t.roots slot_cur) ~expected:cur
          ~desired:(pack ~count ~rid)
      then Memory.clflush ~site:Persist.Cx_publish t.mem (Roots.addr t.roots slot_cur)
      else loop ()
    in
    loop ()

  let execute_update t ~op ~args =
    (* append to the global queue *)
    let rec reserve () =
      let tail = read_qtail t in
      if tail >= t.queue_capacity then
        failwith "Cx_puc: op queue exhausted (increase queue_capacity)";
      if Memory.cas t.mem t.qtail_addr ~expected:tail ~desired:(tail + 1) then tail
      else reserve ()
    in
    let idx = reserve () in
    Phases.in_span t.tel (fun pt -> pt.Phases.publish) (fun () ->
        Log.write_payload t.queue idx ~op ~args;
        Log.publish t.queue idx);
    (* lock some replica, scanning from replica 0 so that uncontended runs
       keep reusing (and re-flushing) a small working set of replicas *)
    let n = Array.length t.reps in
    let rec grab k =
      let rep = t.reps.(k mod n) in
      if Locks.Rwlock.try_write_acquire rep.rw then rep
      else begin
        if k + 1 >= n then Sim.spin ();
        grab (k + 1)
      end
    in
    let rep = grab 0 in
    if rep.ds = None then instantiate t rep;
    (* mark the replica mid-update so recovery will not trust it *)
    Memory.write t.mem rep.dirty_addr 1;
    Memory.clflush ~site:Persist.Cx_dirty_flag t.mem rep.dirty_addr;
    let resp = catch_up t rep ~upto:idx in
    (* the CX persistence strategy: write back the whole replica heap *)
    Phases.in_span t.tel (fun pt -> pt.Phases.persist) (fun () ->
        Alloc.persist_heap rep.alloc;
        Memory.write t.mem rep.dirty_addr 0;
        Memory.clflush ~site:Persist.Cx_dirty_flag t.mem rep.dirty_addr);
    publish t ~count:(idx + 1) ~rid:rep.rid;
    Locks.Rwlock.write_release rep.rw;
    resp

  let execute_readonly t ~op ~args =
    let rec loop () =
      let cur_count, cur_rid = unpack (Roots.get t.roots slot_cur) in
      let rep = t.reps.(cur_rid) in
      if Locks.Rwlock.try_read_acquire rep.rw then begin
        if rep.ds <> None && rep.applied >= cur_count then begin
          let resp = Ds.execute (Option.get rep.ds) ~op ~args in
          Locks.Rwlock.read_release rep.rw;
          resp
        end
        else begin
          Locks.Rwlock.read_release rep.rw;
          Sim.spin ();
          loop ()
        end
      end
      else begin
        Sim.spin ();
        loop ()
      end
    in
    loop ()

  let execute ?readonly t ~op ~args =
    let ro = match readonly with Some b -> b | None -> Ds.is_readonly ~op in
    if ro then execute_readonly t ~op ~args else execute_update t ~op ~args

  (** Recover after a crash: among the replicas whose persisted dirty flag
      is clear (i.e. that were not mid-update), pick the one with the
      highest persisted applied index. Returns a handle on the recovered
      sequential object plus its applied index (how many queue entries its
      state reflects). *)
  let recover t =
    let dir = Roots.get t.roots slot_dir in
    let best = ref None in
    for rid = 0 to Array.length t.reps - 1 do
      let d = dir + (4 * rid) in
      let root = Memory.read t.mem d in
      if root <> Memory.null then begin
        let applied_addr = Memory.read t.mem (d + 1) in
        let dirty_addr = Memory.read t.mem (d + 2) in
        if Memory.read t.mem dirty_addr = 0 then begin
          let applied = Memory.read t.mem applied_addr in
          match !best with
          | Some (a, _) when a >= applied -> ()
          | _ -> best := Some (applied, root)
        end
      end
    done;
    match !best with
    | Some (applied, root) -> (Ds.attach t.mem root, applied)
    | None -> failwith "Cx_puc.recover: no clean replica found"

  let snapshot t =
    let _, rid = unpack (Roots.get t.roots slot_cur) in
    match t.reps.(rid).ds with
    | Some ds -> Ds.snapshot ds
    | None -> []
end
