(** The shared circular operation log (paper §3, §4.1, Table 1).

    Each entry occupies one cache line:
    [0] emptyBit | [1] op | [2] argc | [3..5] args | [6] tid | [7] seqno.
    Words 6–7 are zero unless detectable execution is on, in which case the
    combiner tags each entry with the submitting thread and its client
    seqno before publishing, so recovery's replay can reconcile response
    slots from the log itself.

    The various indexes (logTail, localTail, completedTail, logMin) are
    monotonically increasing; the entry for index [i] is [i mod size]. The
    emptyBit's meaning flips parity on every wrap of the log: on even laps
    a full entry holds 1, on odd laps 0 — so a stale entry from the
    previous lap reads as empty and entries can be reused without being
    cleared (§3).

    In durable mode the log lives in NVM and writers persist entries with
    CLWB + SFENCE before publishing responses; in buffered/volatile mode it
    lives in DRAM and a crash destroys it (§5.1, §5.2). *)

open Nvm

let entry_words = 8
let max_args = 3

type t = {
  mem : Memory.t;
  base : int; (* address of entry 0 *)
  size : int; (* entries *)
  durable : bool;
  mirror : int option;
      (* address of entry 0 of the DRAM shadow copy, if the log-mirror
         optimisation is on: every entry store is duplicated there and all
         consumer reads (replica catch-up, persistence thread, readonly
         catch-up) are served from it at DRAM cost. CLWB/SFENCE and
         recovery keep using [base] — the NVM copy stays the sole
         durability source, and the mirror is rebuilt from it after a
         crash. *)
  (* harness-side counters (no simulated cost), surfaced in bench JSON *)
  mutable primary_reads : int;
  mutable mirror_reads : int;
  mutable mirror_stores : int;
}

let alloc_arenas mem ~size ~kind =
  let words = size * entry_words in
  let arenas = (words + Memory.arena_words - 1) / Memory.arena_words in
  let first = Memory.new_arena mem ~kind ~home:0 in
  for i = 1 to arenas - 1 do
    let aid = Memory.new_arena mem ~kind ~home:0 in
    if aid <> first + i then failwith "Log.create: arenas not consecutive"
  done;
  Memory.addr_of ~aid:first ~offset:0

(** Allocate the log as dedicated consecutive arenas homed on socket 0.
    [mirror] additionally allocates a same-sized DRAM shadow (durable
    mode only: in buffered/volatile mode the log itself is already in
    DRAM and a mirror would buy nothing). *)
let create ?(mirror = false) mem ~size ~durable =
  let base = alloc_arenas mem ~size ~kind:(if durable then Memory.Nvm else Memory.Dram) in
  let mirror =
    if mirror && durable then Some (alloc_arenas mem ~size ~kind:Memory.Dram)
    else None
  in
  { mem; base; size; durable; mirror;
    primary_reads = 0; mirror_reads = 0; mirror_stores = 0 }

(** Re-wrap an existing log allocation (recovery): same layout, fresh
    counters. [mirror] is the shadow's base address, if consumer reads
    should be served from one — recovery passes [None] so replay reads
    the NVM media truth (except under the planted
    [Config.Mirror_read_on_recovery] fault). *)
let attach mem ~base ~size ~durable ~mirror =
  { mem; base; size; durable; mirror;
    primary_reads = 0; mirror_reads = 0; mirror_stores = 0 }

let mirror_base t = t.mirror

let entry_addr t idx = t.base + (idx mod t.size * entry_words)

(* Address of entry [idx] for *consumer reads*: the DRAM mirror when one
   is attached, the primary copy otherwise. *)
let read_addr t idx =
  match t.mirror with
  | None ->
      t.primary_reads <- t.primary_reads + 1;
      entry_addr t idx
  | Some mbase ->
      t.mirror_reads <- t.mirror_reads + 1;
      mbase + (idx mod t.size * entry_words)

(* Duplicate a just-written entry word into the mirror, if one is on. *)
let mirror_store t idx ~word v =
  match t.mirror with
  | None -> ()
  | Some mbase ->
      t.mirror_stores <- t.mirror_stores + 1;
      Memory.mirror_write t.mem (mbase + (idx mod t.size * entry_words) + word) v


(** emptyBit value that means "full" for index [idx]'s lap. *)
let full_parity t idx = if idx / t.size mod 2 = 0 then 1 else 0

let is_full t idx =
  Memory.read t.mem (read_addr t idx) = full_parity t idx

(** Write an entry's payload — arguments first, then the operation, exactly
    as §4.1 prescribes — without publishing it. *)
let write_payload t idx ~op ~args =
  if Array.length args > max_args then invalid_arg "Log: too many args";
  let a = entry_addr t idx in
  Memory.write t.mem (a + 2) (Array.length args);
  mirror_store t idx ~word:2 (Array.length args);
  Array.iteri
    (fun i v ->
      Memory.write t.mem (a + 3 + i) v;
      mirror_store t idx ~word:(3 + i) v)
    args;
  Memory.write t.mem (a + 1) op;
  mirror_store t idx ~word:1 op

(** Tag entry [idx] with the submitting thread and its client seqno
    (detectable execution only). Written between payload and publish, so
    the tag is covered by the same line persist as the rest of the entry. *)
let write_tag t idx ~tid ~seqno =
  let a = entry_addr t idx in
  Memory.write t.mem (a + 6) tid;
  mirror_store t idx ~word:6 tid;
  Memory.write t.mem (a + 7) seqno;
  mirror_store t idx ~word:7 seqno

(** Read entry [idx]'s (tid, seqno) tag; (0, 0) when untagged. *)
let read_tag t idx =
  let a = read_addr t idx in
  (Memory.read t.mem (a + 6), Memory.read t.mem (a + 7))

(** Queue the entry's line for write-back (durable mode only). *)
let persist_entry t idx =
  if t.durable then
    Memory.clwb ~site:Persist.Log_persist_entry t.mem (entry_addr t idx)

(** Line-coalesced CLWB sweep over entries [first, first + n): one CLWB per
    distinct cache line covered by the batch, not one per entry (durable
    mode only; with FliT tracking enabled, re-sweeping the same range after
    publishing coalesces into the queued write-backs instead of re-issuing
    them). A wrapping batch is swept as its two contiguous halves. *)
let persist_range t ~first ~n =
  if t.durable && n > 0 then begin
    let sweep first n =
      let lo = entry_addr t first in
      let hi = lo + ((n - 1) * entry_words) in
      let step = Memory.line_words in
      let l = ref (lo - (lo mod step)) in
      while !l <= hi do
        Memory.clwb ~site:Persist.Log_persist_range t.mem !l;
        l := !l + step
      done
    in
    let idx = first mod t.size in
    if idx + n <= t.size then sweep first n
    else begin
      let head = t.size - idx in
      sweep first head;
      sweep (first + head) (n - head)
    end
  end

(** Persistent fence (durable mode only). The combiner's two-phase persist
    passes its own [site] ([Log_fence_payload] / [Log_fence_publish]) so
    the two fences are separately addressable by the persistency policy —
    the payload fence is exactly the one the FliT batched path proved
    droppable, and [optimize-persist] re-derives that as a policy. *)
let fence ?(site = Persist.Log_fence) t =
  if t.durable then Memory.sfence ~site t.mem

(** Flip the emptyBit, making the entry visible to consumers. The payload
    must reach the mirror before the emptyBit does — consumers poll the
    mirror's emptyBit — so the mirror store order repeats the primary's. *)
let publish t idx =
  Memory.write t.mem (entry_addr t idx) (full_parity t idx);
  mirror_store t idx ~word:0 (full_parity t idx)

(** Read a published entry's payload. Callers must have checked [is_full]
    (or otherwise know the entry is published). *)
let read_payload t idx =
  let a = read_addr t idx in
  let op = Memory.read t.mem (a + 1) in
  let argc = Memory.read t.mem (a + 2) in
  let args = Array.init argc (fun i -> Memory.read t.mem (a + 3 + i)) in
  (op, args)

(** Spin until index [idx] is published, then read it. Entries below the
    completedTail are always published, so consumers cannot hang here. *)
let wait_and_read t idx =
  while not (is_full t idx) do
    Sim.spin ()
  done;
  read_payload t idx
