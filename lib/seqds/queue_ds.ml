(** Linked FIFO queue over simulated memory (paper Fig. 1c).

    Layout: header [0] head, [1] tail, [2] size; node [0] value, [1] next. *)

open Nvm

let op_enqueue = 0 (* args [v] -> 1 *)
let op_dequeue = 1 (* args []  -> value or -1 if empty *)
let op_peek = 2 (* args []  -> value or -1 *)
let op_size = 3 (* args []  -> size *)

let name = "queue"

type handle = { mem : Memory.t; h : int }

let hdr_words = 3
let node_words = 2

let root_addr t = t.h
let attach mem h = { mem; h }

let create mem =
  let h = Context.alloc hdr_words in
  Memory.write mem h Memory.null;
  Memory.write mem (h + 1) Memory.null;
  Memory.write mem (h + 2) 0;
  { mem; h }

let is_readonly ~op = op = op_peek || op = op_size

(* no per-key semantics: every op is opaque to key-granular backends *)
let classify ~op:_ ~args:_ = Ds_intf.Opaque
let key_get _ _ = invalid_arg (name ^ ": not a keyed structure")
let key_put _ _ _ = invalid_arg (name ^ ": not a keyed structure")

let enqueue t v =
  let node = Context.alloc node_words in
  Memory.write t.mem node v;
  Memory.write t.mem (node + 1) Memory.null;
  let tail = Memory.read t.mem (t.h + 1) in
  if tail = Memory.null then Memory.write t.mem t.h node
  else Memory.write t.mem (tail + 1) node;
  Memory.write t.mem (t.h + 1) node;
  Memory.write t.mem (t.h + 2) (Memory.read t.mem (t.h + 2) + 1);
  1

let dequeue t =
  let head = Memory.read t.mem t.h in
  if head = Memory.null then -1
  else begin
    let v = Memory.read t.mem head in
    let next = Memory.read t.mem (head + 1) in
    Memory.write t.mem t.h next;
    if next = Memory.null then Memory.write t.mem (t.h + 1) Memory.null;
    Memory.write t.mem (t.h + 2) (Memory.read t.mem (t.h + 2) - 1);
    Context.free head node_words;
    v
  end

let execute t ~op ~args =
  if op = op_enqueue then enqueue t args.(0)
  else if op = op_dequeue then dequeue t
  else if op = op_peek then begin
    let head = Memory.read t.mem t.h in
    if head = Memory.null then -1 else Memory.read t.mem head
  end
  else if op = op_size then Memory.read t.mem (t.h + 2)
  else invalid_arg "Queue_ds.execute: unknown op"

let copy src =
  let dst = create src.mem in
  let rec walk node =
    if node <> Memory.null then begin
      ignore (enqueue dst (Memory.read src.mem node));
      walk (Memory.read src.mem (node + 1))
    end
  in
  walk (Memory.read src.mem src.h);
  dst

(* Observation: values front-to-back. *)
let snapshot t =
  let rec walk acc node =
    if node = Memory.null then List.rev acc
    else walk (Memory.peek t.mem node :: acc) (Memory.peek t.mem (node + 1))
  in
  walk [] (Memory.peek t.mem t.h)

module Model = struct
  type m = int list * int list (* front list, reversed back list *)

  let empty = ([], [])

  let normalize (front, back) =
    match front with [] -> (List.rev back, []) | _ -> (front, back)

  let apply m ~op ~args =
    if op = op_enqueue then
      let front, back = m in
      (normalize (front, args.(0) :: back), 1)
    else if op = op_dequeue then
      match normalize m with
      | [], _ -> (([], []), -1)
      | v :: front, back -> (normalize (front, back), v)
    else if op = op_peek then
      (m, match normalize m with [], _ -> -1 | v :: _, _ -> v)
    else if op = op_size then
      let front, back = m in
      (m, List.length front + List.length back)
    else invalid_arg "Queue_ds.Model.apply: unknown op"

  let snapshot m =
    let front, back = m in
    front @ List.rev back
end
