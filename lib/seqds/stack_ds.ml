(** Linked stack over simulated memory (paper Fig. 5).

    Layout: header [0] top pointer, [1] size; node [0] value, [1] next. *)

open Nvm

let op_push = 0 (* args [v] -> 1 *)
let op_pop = 1 (* args []  -> value or -1 if empty *)
let op_peek = 2 (* args []  -> value or -1 *)
let op_size = 3 (* args []  -> size *)

let name = "stack"

type handle = { mem : Memory.t; h : int }

let hdr_words = 2
let node_words = 2

let root_addr t = t.h
let attach mem h = { mem; h }

let create mem =
  let h = Context.alloc hdr_words in
  Memory.write mem h Memory.null;
  Memory.write mem (h + 1) 0;
  { mem; h }

let is_readonly ~op = op = op_peek || op = op_size

(* no per-key semantics: every op is opaque to key-granular backends *)
let classify ~op:_ ~args:_ = Ds_intf.Opaque
let key_get _ _ = invalid_arg (name ^ ": not a keyed structure")
let key_put _ _ _ = invalid_arg (name ^ ": not a keyed structure")

let push t v =
  let node = Context.alloc node_words in
  Memory.write t.mem node v;
  Memory.write t.mem (node + 1) (Memory.read t.mem t.h);
  Memory.write t.mem t.h node;
  Memory.write t.mem (t.h + 1) (Memory.read t.mem (t.h + 1) + 1);
  1

let pop t =
  let top = Memory.read t.mem t.h in
  if top = Memory.null then -1
  else begin
    let v = Memory.read t.mem top in
    Memory.write t.mem t.h (Memory.read t.mem (top + 1));
    Memory.write t.mem (t.h + 1) (Memory.read t.mem (t.h + 1) - 1);
    Context.free top node_words;
    v
  end

let execute t ~op ~args =
  if op = op_push then push t args.(0)
  else if op = op_pop then pop t
  else if op = op_peek then begin
    let top = Memory.read t.mem t.h in
    if top = Memory.null then -1 else Memory.read t.mem top
  end
  else if op = op_size then Memory.read t.mem (t.h + 1)
  else invalid_arg "Stack_ds.execute: unknown op"

let copy src =
  let dst = create src.mem in
  (* collect then push in reverse so the copy has the same order *)
  let rec collect acc node =
    if node = Memory.null then acc
    else collect (Memory.read src.mem node :: acc) (Memory.read src.mem (node + 1))
  in
  let bottom_first = collect [] (Memory.read src.mem src.h) in
  List.iter (fun v -> ignore (push dst v)) bottom_first;
  dst

(* Observation: values top-to-bottom. *)
let snapshot t =
  let rec walk acc node =
    if node = Memory.null then List.rev acc
    else walk (Memory.peek t.mem node :: acc) (Memory.peek t.mem (node + 1))
  in
  walk [] (Memory.peek t.mem t.h)

module Model = struct
  type m = int list (* top first *)

  let empty = []

  let apply m ~op ~args =
    if op = op_push then (args.(0) :: m, 1)
    else if op = op_pop then
      match m with [] -> ([], -1) | v :: rest -> (rest, v)
    else if op = op_peek then (m, match m with [] -> -1 | v :: _ -> v)
    else if op = op_size then (m, List.length m)
    else invalid_arg "Stack_ds.Model.apply: unknown op"

  let snapshot m = m
end
