(** Binary max-heap priority queue over simulated memory (paper Fig. 4;
    the paper lifts C++ [std::priority_queue], also an array max-heap).

    Layout: header [0] data pointer, [1] capacity, [2] size; data is a
    plain array of keys that doubles when full. *)

open Nvm

let op_enqueue = 0 (* args [v] -> 1 *)
let op_dequeue = 1 (* args []  -> max or -1 if empty *)
let op_peek = 2 (* args []  -> max or -1 *)
let op_size = 3 (* args []  -> size *)

let name = "pqueue"

type handle = { mem : Memory.t; h : int }

let hdr_words = 3
let initial_capacity = 64

let root_addr t = t.h
let attach mem h = { mem; h }

let create mem =
  let h = Context.alloc hdr_words in
  let data = Context.alloc initial_capacity in
  Memory.write mem h data;
  Memory.write mem (h + 1) initial_capacity;
  Memory.write mem (h + 2) 0;
  { mem; h }

let is_readonly ~op = op = op_peek || op = op_size

(* no per-key semantics: every op is opaque to key-granular backends *)
let classify ~op:_ ~args:_ = Ds_intf.Opaque
let key_get _ _ = invalid_arg (name ^ ": not a keyed structure")
let key_put _ _ _ = invalid_arg (name ^ ": not a keyed structure")

let grow t =
  let data = Memory.read t.mem t.h in
  let capacity = Memory.read t.mem (t.h + 1) in
  let size = Memory.read t.mem (t.h + 2) in
  let bigger = Context.alloc (2 * capacity) in
  for i = 0 to size - 1 do
    Memory.write t.mem (bigger + i) (Memory.read t.mem (data + i))
  done;
  Memory.write t.mem t.h bigger;
  Memory.write t.mem (t.h + 1) (2 * capacity);
  Context.free data capacity

let enqueue t v =
  let capacity = Memory.read t.mem (t.h + 1) in
  let size = Memory.read t.mem (t.h + 2) in
  if size = capacity then grow t;
  let data = Memory.read t.mem t.h in
  (* sift up *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      let pv = Memory.read t.mem (data + parent) in
      if pv < v then begin
        Memory.write t.mem (data + i) pv;
        up parent
      end
      else Memory.write t.mem (data + i) v
    end
    else Memory.write t.mem (data + i) v
  in
  up size;
  Memory.write t.mem (t.h + 2) (size + 1);
  1

let dequeue t =
  let size = Memory.read t.mem (t.h + 2) in
  if size = 0 then -1
  else begin
    let data = Memory.read t.mem t.h in
    let top = Memory.read t.mem data in
    let last = Memory.read t.mem (data + size - 1) in
    let size = size - 1 in
    Memory.write t.mem (t.h + 2) size;
    (* sift down the former last element from the root *)
    let rec down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      if l >= size then Memory.write t.mem (data + i) last
      else begin
        let lv = Memory.read t.mem (data + l) in
        let big, bv =
          if r < size then begin
            let rv = Memory.read t.mem (data + r) in
            if rv > lv then (r, rv) else (l, lv)
          end
          else (l, lv)
        in
        if bv > last then begin
          Memory.write t.mem (data + i) bv;
          down big
        end
        else Memory.write t.mem (data + i) last
      end
    in
    if size > 0 then down 0;
    top
  end

let execute t ~op ~args =
  if op = op_enqueue then enqueue t args.(0)
  else if op = op_dequeue then dequeue t
  else if op = op_peek then begin
    let size = Memory.read t.mem (t.h + 2) in
    if size = 0 then -1 else Memory.read t.mem (Memory.read t.mem t.h)
  end
  else if op = op_size then Memory.read t.mem (t.h + 2)
  else invalid_arg "Pqueue.execute: unknown op"

let copy src =
  let dst = create src.mem in
  let data = Memory.read src.mem src.h in
  let size = Memory.read src.mem (src.h + 2) in
  for i = 0 to size - 1 do
    ignore (enqueue dst (Memory.read src.mem (data + i)))
  done;
  dst

(* Observation: the multiset of keys in descending order. *)
let snapshot t =
  let data = Memory.peek t.mem t.h in
  let size = Memory.peek t.mem (t.h + 2) in
  List.init size (fun i -> Memory.peek t.mem (data + i))
  |> List.sort (fun a b -> compare b a)

module Model = struct
  type m = int list (* descending *)

  let empty = []

  let rec insert_desc v = function
    | [] -> [ v ]
    | x :: rest when x >= v -> x :: insert_desc v rest
    | rest -> v :: rest

  let apply m ~op ~args =
    if op = op_enqueue then (insert_desc args.(0) m, 1)
    else if op = op_dequeue then
      match m with [] -> ([], -1) | v :: rest -> (rest, v)
    else if op = op_peek then (m, match m with [] -> -1 | v :: _ -> v)
    else if op = op_size then (m, List.length m)
    else invalid_arg "Pqueue.Model.apply: unknown op"

  let snapshot m = m
end
