(** Resizable chained hashmap over simulated memory (paper §6, Fig. 2a).

    Layout (word offsets from the header address):
    - header: [0] table pointer, [1] capacity, [2] size
    - table:  [capacity] words of bucket-head node pointers
    - node:   [0] key, [1] value, [2] next

    Keys and values are non-negative ints. The map doubles its table when
    the load factor reaches 3/4 — the resize rewrites every chain, which is
    precisely the kind of bulk mutation that makes whole-replica-flush PUCs
    (CX) and background-flush hazards interesting. *)

open Nvm

let op_insert = 0 (* args [k; v] -> 1 if new key, 0 if value replaced *)
let op_remove = 1 (* args [k]    -> 1 if removed, 0 if absent *)
let op_get = 2 (* args [k]    -> value or -1 *)
let op_contains = 3 (* args [k]    -> 0/1 *)
let op_size = 4 (* args []     -> number of keys *)

let name = "hashmap"

type handle = { mem : Memory.t; h : int }

let hdr_words = 3
let node_words = 3
let initial_capacity = 64

let hash key capacity = (key * 0x9E3779B1) land max_int mod capacity

let root_addr t = t.h
let attach mem h = { mem; h }

let create mem =
  let h = Context.alloc hdr_words in
  let table = Context.alloc initial_capacity in
  let t = { mem; h } in
  Memory.write mem h table;
  Memory.write mem (h + 1) initial_capacity;
  Memory.write mem (h + 2) 0;
  t

let is_readonly ~op = op = op_get || op = op_contains || op = op_size

let classify ~op ~args =
  let open Ds_intf in
  if op = op_insert || op = op_remove then
    Keyed { written = [| args.(0) |]; read = [||] }
  else if op = op_get || op = op_contains then
    Keyed { written = [||]; read = [| args.(0) |] }
  else if op = op_size then Read_all
  else Opaque


(* Find [key]'s node in its chain. Returns (node, predecessor-or-0). *)
let find_node t key =
  let table = Memory.read t.mem t.h in
  let capacity = Memory.read t.mem (t.h + 1) in
  let bucket = table + hash key capacity in
  let rec walk prev node =
    if node = Memory.null then (Memory.null, prev)
    else if Memory.read t.mem node = key then (node, prev)
    else walk node (Memory.read t.mem (node + 2))
  in
  let head = Memory.read t.mem bucket in
  let found, prev = walk Memory.null head in
  (found, prev, bucket)

let resize t =
  let old_table = Memory.read t.mem t.h in
  let old_capacity = Memory.read t.mem (t.h + 1) in
  let capacity = 2 * old_capacity in
  let table = Context.alloc capacity in
  (* Move every node into its new chain; nodes are reused, only their
     [next] links are rewritten. *)
  for b = 0 to old_capacity - 1 do
    let rec move node =
      if node <> Memory.null then begin
        let next = Memory.read t.mem (node + 2) in
        let key = Memory.read t.mem node in
        let bucket = table + hash key capacity in
        Memory.write t.mem (node + 2) (Memory.read t.mem bucket);
        Memory.write t.mem bucket node;
        move next
      end
    in
    move (Memory.read t.mem (old_table + b))
  done;
  Memory.write t.mem t.h table;
  Memory.write t.mem (t.h + 1) capacity;
  Context.free old_table old_capacity

let insert t key value =
  let found, _prev, bucket = find_node t key in
  if found <> Memory.null then begin
    Memory.write t.mem (found + 1) value;
    0
  end
  else begin
    let node = Context.alloc node_words in
    Memory.write t.mem node key;
    Memory.write t.mem (node + 1) value;
    Memory.write t.mem (node + 2) (Memory.read t.mem bucket);
    Memory.write t.mem bucket node;
    let size = Memory.read t.mem (t.h + 2) + 1 in
    Memory.write t.mem (t.h + 2) size;
    let capacity = Memory.read t.mem (t.h + 1) in
    if 4 * size > 3 * capacity then resize t;
    1
  end

let remove t key =
  let found, prev, bucket = find_node t key in
  if found = Memory.null then 0
  else begin
    let next = Memory.read t.mem (found + 2) in
    if prev = Memory.null then Memory.write t.mem bucket next
    else Memory.write t.mem (prev + 2) next;
    Context.free found node_words;
    Memory.write t.mem (t.h + 2) (Memory.read t.mem (t.h + 2) - 1);
    1
  end

let get t key =
  let found, _, _ = find_node t key in
  if found = Memory.null then -1 else Memory.read t.mem (found + 1)

let execute t ~op ~args =
  if op = op_insert then insert t args.(0) args.(1)
  else if op = op_remove then remove t args.(0)
  else if op = op_get then get t args.(0)
  else if op = op_contains then (if get t args.(0) >= 0 then 1 else 0)
  else if op = op_size then Memory.read t.mem (t.h + 2)
  else invalid_arg "Hashmap.execute: unknown op"

let copy src =
  let dst = create src.mem in
  let table = Memory.read src.mem src.h in
  let capacity = Memory.read src.mem (src.h + 1) in
  for b = 0 to capacity - 1 do
    let rec walk node =
      if node <> Memory.null then begin
        let key = Memory.read src.mem node in
        let value = Memory.read src.mem (node + 1) in
        ignore (insert dst key value);
        walk (Memory.read src.mem (node + 2))
      end
    in
    walk (Memory.read src.mem (table + b))
  done;
  dst

(* Cost-free observation: [k1; v1; k2; v2; ...] sorted by key. *)
let snapshot t =
  let table = Memory.peek t.mem t.h in
  let capacity = Memory.peek t.mem (t.h + 1) in
  let pairs = ref [] in
  for b = 0 to capacity - 1 do
    let rec walk node =
      if node <> Memory.null then begin
        pairs := (Memory.peek t.mem node, Memory.peek t.mem (node + 1)) :: !pairs;
        walk (Memory.peek t.mem (node + 2))
      end
    in
    walk (Memory.peek t.mem (table + b))
  done;
  List.sort compare !pairs |> List.concat_map (fun (k, v) -> [ k; v ])

module Model = struct
  module IntMap = Map.Make (Int)

  type m = int IntMap.t

  let empty = IntMap.empty

  let apply m ~op ~args =
    if op = op_insert then
      let existed = IntMap.mem args.(0) m in
      (IntMap.add args.(0) args.(1) m, if existed then 0 else 1)
    else if op = op_remove then
      let existed = IntMap.mem args.(0) m in
      (IntMap.remove args.(0) m, if existed then 1 else 0)
    else if op = op_get then
      (m, match IntMap.find_opt args.(0) m with Some v -> v | None -> -1)
    else if op = op_contains then (m, if IntMap.mem args.(0) m then 1 else 0)
    else if op = op_size then (m, IntMap.cardinal m)
    else invalid_arg "Hashmap.Model.apply: unknown op"

  let snapshot m =
    IntMap.bindings m |> List.concat_map (fun (k, v) -> [ k; v ])
end

let key_get t key =
  match execute t ~op:op_get ~args:[| key |] with
  | -1 -> None
  | v -> Some v

let key_put t key value = ignore (execute t ~op:op_insert ~args:[| key; value |])
