(** The black-box sequential object signature.

    This is the contract between a universal construction and the
    sequential data structure it lifts (paper §3, §5.2):

    - operations are invoked through a single [execute] dispatch — the
      paper's [Execute] switch over raw function pointers. An operation is
      an integer op code plus integer arguments, which is exactly what gets
      written into (and recovered from) the shared log;
    - the UC may ask whether an op code is read-only ([is_readonly]), the
      paper's optional boolean argument to [ExecuteConcurrent];
    - the UC may deep-[copy] a structure to instantiate a replica; the copy
      allocates through the *current* fiber allocator ([Nvm.Context]), so
      the same code builds volatile and persistent replicas;
    - [attach] reattaches a handle to a structure recovered from NVM media
      after a crash, given its persisted root address.

    The structure's entire state must live in simulated memory reached from
    the root address: the UC never sees its internals, and a crash must be
    able to take away exactly the unpersisted part. *)

(** Syntactic key-footprint classification of an operation, for backends
    that track state at per-key granularity (the incremental-checkpoint
    layer). The classification must be a pure function of the op
    descriptor — it is evaluated on raw log entries during catch-up and
    recovery, where no structure state is available:

    - [Keyed] lists every key the op may write ([written]) and every key
      it only observes ([read]); a read-modify-write key belongs in
      [written]. The dirty-object tracker marks [written] keys, and lazy
      rematerialisation resolves both sets before the op runs on a
      partially-hydrated replica;
    - [Read_all] observes the whole key space (size, aggregate queries);
    - [Opaque] is anything else — structures without per-key semantics
      (queues, stacks, priority queues) classify every op [Opaque], and
      key-granular backends must refuse to run on them. *)
type key_effect =
  | Keyed of { written : int array; read : int array }
  | Read_all
  | Opaque

module type MODEL = sig
  (** Pure reference model of the same object, for checkers. *)

  type m

  val empty : m
  val apply : m -> op:int -> args:int array -> m * int
  val snapshot : m -> int list
end

module type S = sig
  val name : string

  type handle

  (** Allocate a fresh, empty structure via the current fiber allocator. *)
  val create : Nvm.Memory.t -> handle

  (** Stable root address of the structure (what a PUC persists so it can
      find the structure again after a crash). *)
  val root_addr : handle -> int

  (** Reattach to a structure whose root block is at [addr]. *)
  val attach : Nvm.Memory.t -> int -> handle

  (** Run one operation; returns its integer response. *)
  val execute : handle -> op:int -> args:int array -> int

  val is_readonly : op:int -> bool

  (** Pure per-key footprint of an op descriptor (see [key_effect]). *)
  val classify : op:int -> args:int array -> key_effect

  (** Current value bound to [key], or [None] if absent. Charged like the
      structure's own read path. Only meaningful for structures whose ops
      classify [Keyed]; others raise [Invalid_argument]. *)
  val key_get : handle -> int -> int option

  (** Bind [key := value] (insert-or-replace), charged like the
      structure's own write path — the rematerialisation primitive of the
      incremental-checkpoint layer. Only meaningful for structures whose
      ops classify [Keyed]; others raise [Invalid_argument]. *)
  val key_put : handle -> int -> int -> unit

  (** Deep copy into the current fiber allocator. *)
  val copy : handle -> handle

  (** Cost-free canonical observation of the current (coherent) state, for
      checkers only. *)
  val snapshot : handle -> int list

  module Model : MODEL
end
