(** Red-black tree map over simulated memory (paper §6, Fig. 2b).

    CLRS-style with an allocated sentinel [nil] node (colour black), since
    the fixup procedures temporarily store a parent in the sentinel.

    Layout:
    - header: [0] root, [1] size, [2] nil sentinel pointer
    - node:   [0] key, [1] value, [2] colour (0 red / 1 black),
              [3] left, [4] right, [5] parent *)

open Nvm

let op_insert = 0 (* args [k; v] -> 1 if new key, 0 if value replaced *)
let op_remove = 1 (* args [k]    -> 1 if removed, 0 if absent *)
let op_get = 2 (* args [k]    -> value or -1 *)
let op_contains = 3 (* args [k]    -> 0/1 *)
let op_size = 4 (* args []     -> number of keys *)

let name = "rbtree"

type handle = { mem : Memory.t; h : int }

let hdr_words = 3
let node_words = 6
let red = 0
let black = 1

let root_addr t = t.h
let attach mem h = { mem; h }

(* field accessors *)
let key t n = Memory.read t.mem n
let value t n = Memory.read t.mem (n + 1)
let color t n = Memory.read t.mem (n + 2)
let left t n = Memory.read t.mem (n + 3)
let right t n = Memory.read t.mem (n + 4)
let parent t n = Memory.read t.mem (n + 5)
let set_value t n v = Memory.write t.mem (n + 1) v
let set_color t n c = Memory.write t.mem (n + 2) c
let set_left t n x = Memory.write t.mem (n + 3) x
let set_right t n x = Memory.write t.mem (n + 4) x
let set_parent t n x = Memory.write t.mem (n + 5) x

let root t = Memory.read t.mem t.h
let set_root t n = Memory.write t.mem t.h n
let nil t = Memory.read t.mem (t.h + 2)

let create mem =
  let h = Context.alloc hdr_words in
  let sentinel = Context.alloc node_words in
  let t = { mem; h } in
  Memory.write mem (h + 2) sentinel;
  Memory.write mem (sentinel + 2) black;
  set_root t sentinel;
  Memory.write mem (h + 1) 0;
  t

let is_readonly ~op = op = op_get || op = op_contains || op = op_size

let classify ~op ~args =
  let open Ds_intf in
  if op = op_insert || op = op_remove then
    Keyed { written = [| args.(0) |]; read = [||] }
  else if op = op_get || op = op_contains then
    Keyed { written = [||]; read = [| args.(0) |] }
  else if op = op_size then Read_all
  else Opaque


let left_rotate t x =
  let y = right t x in
  set_right t x (left t y);
  if left t y <> nil t then set_parent t (left t y) x;
  set_parent t y (parent t x);
  if parent t x = nil t then set_root t y
  else if x = left t (parent t x) then set_left t (parent t x) y
  else set_right t (parent t x) y;
  set_left t y x;
  set_parent t x y

let right_rotate t x =
  let y = left t x in
  set_left t x (right t y);
  if right t y <> nil t then set_parent t (right t y) x;
  set_parent t y (parent t x);
  if parent t x = nil t then set_root t y
  else if x = right t (parent t x) then set_right t (parent t x) y
  else set_left t (parent t x) y;
  set_right t y x;
  set_parent t x y

let rec insert_fixup t z =
  if color t (parent t z) = red then begin
    let zp = parent t z in
    let zpp = parent t zp in
    if zp = left t zpp then begin
      let uncle = right t zpp in
      if color t uncle = red then begin
        set_color t zp black;
        set_color t uncle black;
        set_color t zpp red;
        insert_fixup t zpp
      end
      else begin
        let z = if z = right t zp then (left_rotate t zp; zp) else z in
        let zp = parent t z in
        let zpp = parent t zp in
        set_color t zp black;
        set_color t zpp red;
        right_rotate t zpp;
        insert_fixup t z
      end
    end
    else begin
      let uncle = left t zpp in
      if color t uncle = red then begin
        set_color t zp black;
        set_color t uncle black;
        set_color t zpp red;
        insert_fixup t zpp
      end
      else begin
        let z = if z = left t zp then (right_rotate t zp; zp) else z in
        let zp = parent t z in
        let zpp = parent t zp in
        set_color t zp black;
        set_color t zpp red;
        left_rotate t zpp;
        insert_fixup t z
      end
    end
  end;
  set_color t (root t) black

let insert t k v =
  let rec descend y x =
    if x = nil t then `Leaf y
    else
      let xk = key t x in
      if k = xk then `Found x
      else if k < xk then descend x (left t x)
      else descend x (right t x)
  in
  match descend (nil t) (root t) with
  | `Found x ->
    set_value t x v;
    0
  | `Leaf y ->
    let z = Context.alloc node_words in
    Memory.write t.mem z k;
    Memory.write t.mem (z + 1) v;
    set_color t z red;
    set_left t z (nil t);
    set_right t z (nil t);
    set_parent t z y;
    if y = nil t then set_root t z
    else if k < key t y then set_left t y z
    else set_right t y z;
    insert_fixup t z;
    Memory.write t.mem (t.h + 1) (Memory.read t.mem (t.h + 1) + 1);
    1

let rec find t x k =
  if x = nil t then Memory.null
  else
    let xk = key t x in
    if k = xk then x else if k < xk then find t (left t x) k
    else find t (right t x) k

let rec minimum t x = if left t x = nil t then x else minimum t (left t x)

(* Replace subtree rooted at [u] with subtree rooted at [v]. *)
let transplant t u v =
  if parent t u = nil t then set_root t v
  else if u = left t (parent t u) then set_left t (parent t u) v
  else set_right t (parent t u) v;
  set_parent t v (parent t u)

let rec delete_fixup t x =
  if x <> root t && color t x = black then begin
    let xp = parent t x in
    if x = left t xp then begin
      let w = right t xp in
      let w =
        if color t w = red then begin
          set_color t w black;
          set_color t xp red;
          left_rotate t xp;
          right t xp
        end
        else w
      in
      let xp = parent t x in
      if color t (left t w) = black && color t (right t w) = black then begin
        set_color t w red;
        delete_fixup t xp
      end
      else begin
        let w =
          if color t (right t w) = black then begin
            set_color t (left t w) black;
            set_color t w red;
            right_rotate t w;
            right t xp
          end
          else w
        in
        set_color t w (color t xp);
        set_color t xp black;
        set_color t (right t w) black;
        left_rotate t xp;
        delete_fixup t (root t)
      end
    end
    else begin
      let w = left t xp in
      let w =
        if color t w = red then begin
          set_color t w black;
          set_color t xp red;
          right_rotate t xp;
          left t xp
        end
        else w
      in
      let xp = parent t x in
      if color t (right t w) = black && color t (left t w) = black then begin
        set_color t w red;
        delete_fixup t xp
      end
      else begin
        let w =
          if color t (left t w) = black then begin
            set_color t (right t w) black;
            set_color t w red;
            left_rotate t w;
            left t xp
          end
          else w
        in
        set_color t w (color t xp);
        set_color t xp black;
        set_color t (left t w) black;
        right_rotate t xp;
        delete_fixup t (root t)
      end
    end
  end
  else set_color t x black

let remove t k =
  let z = find t (root t) k in
  if z = Memory.null then 0
  else begin
    let y_original_color = ref (color t z) in
    let x =
      if left t z = nil t then begin
        let x = right t z in
        transplant t z x;
        x
      end
      else if right t z = nil t then begin
        let x = left t z in
        transplant t z x;
        x
      end
      else begin
        let y = minimum t (right t z) in
        y_original_color := color t y;
        let x = right t y in
        if parent t y = z then set_parent t x y
        else begin
          transplant t y (right t y);
          set_right t y (right t z);
          set_parent t (right t y) y
        end;
        transplant t z y;
        set_left t y (left t z);
        set_parent t (left t y) y;
        set_color t y (color t z);
        x
      end
    in
    if !y_original_color = black then delete_fixup t x;
    Context.free z node_words;
    Memory.write t.mem (t.h + 1) (Memory.read t.mem (t.h + 1) - 1);
    1
  end

let get t k =
  let n = find t (root t) k in
  if n = Memory.null then -1 else value t n

let execute t ~op ~args =
  if op = op_insert then insert t args.(0) args.(1)
  else if op = op_remove then remove t args.(0)
  else if op = op_get then get t args.(0)
  else if op = op_contains then (if get t args.(0) >= 0 then 1 else 0)
  else if op = op_size then Memory.read t.mem (t.h + 1)
  else invalid_arg "Rbtree.execute: unknown op"

let copy src =
  let dst = create src.mem in
  let rec walk n =
    if n <> nil src then begin
      walk (left src n);
      ignore (insert dst (key src n) (value src n));
      walk (right src n)
    end
  in
  walk (root src);
  dst

(* Observation: [k1; v1; k2; v2; ...] in key order (cost-free). *)
let snapshot t =
  let pk n = Memory.peek t.mem n in
  let sentinel = Memory.peek t.mem (t.h + 2) in
  let rec walk acc n =
    if n = sentinel then acc
    else
      let acc = walk acc (Memory.peek t.mem (n + 4)) in
      let acc = pk n :: Memory.peek t.mem (n + 1) :: [] @ acc in
      walk acc (Memory.peek t.mem (n + 3))
  in
  walk [] (Memory.peek t.mem t.h)

(* ---- structural invariants, used by property tests ---- *)

(** Check the red-black invariants on the coherent view (cost-free):
    root is black, no red node has a red child, every root-to-leaf path
    has the same black height, and keys are in BST order. Raises
    [Failure] describing the first violated invariant. *)
let check_invariants t =
  let sentinel = Memory.peek t.mem (t.h + 2) in
  let pcolor n = Memory.peek t.mem (n + 2) in
  let pkey n = Memory.peek t.mem n in
  let pleft n = Memory.peek t.mem (n + 3) in
  let pright n = Memory.peek t.mem (n + 4) in
  let r = Memory.peek t.mem t.h in
  if r <> sentinel && pcolor r <> black then failwith "rbtree: red root";
  let rec walk n lo hi =
    if n = sentinel then 1
    else begin
      let k = pkey n in
      (match lo with Some l when k <= l -> failwith "rbtree: BST order" | _ -> ());
      (match hi with Some h when k >= h -> failwith "rbtree: BST order" | _ -> ());
      if pcolor n = red
         && (pcolor (pleft n) = red || pcolor (pright n) = red)
      then failwith "rbtree: red node with red child";
      let bl = walk (pleft n) lo (Some k) in
      let br = walk (pright n) (Some k) hi in
      if bl <> br then failwith "rbtree: unequal black heights";
      bl + (if pcolor n = black then 1 else 0)
    end
  in
  ignore (walk r None None)

module Model = struct
  module IntMap = Map.Make (Int)

  type m = int IntMap.t

  let empty = IntMap.empty

  let apply m ~op ~args =
    if op = op_insert then
      let existed = IntMap.mem args.(0) m in
      (IntMap.add args.(0) args.(1) m, if existed then 0 else 1)
    else if op = op_remove then
      let existed = IntMap.mem args.(0) m in
      (IntMap.remove args.(0) m, if existed then 1 else 0)
    else if op = op_get then
      (m, match IntMap.find_opt args.(0) m with Some v -> v | None -> -1)
    else if op = op_contains then (m, if IntMap.mem args.(0) m then 1 else 0)
    else if op = op_size then (m, IntMap.cardinal m)
    else invalid_arg "Rbtree.Model.apply: unknown op"

  let snapshot m =
    IntMap.bindings m |> List.concat_map (fun (k, v) -> [ k; v ])
end

let key_get t key =
  match execute t ~op:op_get ~args:[| key |] with
  | -1 -> None
  | v -> Some v

let key_put t key value = ignore (execute t ~op:op_insert ~args:[| key; value |])
