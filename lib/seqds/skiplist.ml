(** Skiplist map over simulated memory — a sixth sequential structure to
    demonstrate that anything implementing [Ds_intf.S] gets all three
    PREP variants (and the baselines) for free.

    Node heights are derived deterministically from the key's hash rather
    than drawn from a per-instance RNG: a universal construction replays
    the same operation sequence on many replicas, and deterministic
    heights keep the replicas structurally identical, which makes
    [snapshot] comparisons and copy tests exact.

    Layout:
    - header: [0] head pointer, [1] size
    - head:   a full-height node with key slot unused
    - node:   [0] key, [1] value, [2] height, [3..3+height-1] forward
              pointers (so a node occupies 3+height words) *)

open Nvm

let op_insert = Hashmap.op_insert
let op_remove = Hashmap.op_remove
let op_get = Hashmap.op_get
let op_contains = Hashmap.op_contains
let op_size = Hashmap.op_size

let name = "skiplist"
let max_height = 12
let hdr_words = 2

type handle = { mem : Memory.t; h : int }

let root_addr t = t.h
let attach mem h = { mem; h }

(* Deterministic 1..max_height with P(h >= k+1) ~ 2^-k. *)
let height_of_key key =
  let x = (key * 0x9E3779B1) lxor (key lsr 7) in
  let rec count h x =
    if h >= max_height || x land 1 = 0 then h else count (h + 1) (x lsr 1)
  in
  count 1 (x land max_int)

let node_words height = 3 + height

let fwd t node level = Memory.read t.mem (node + 3 + level)
let set_fwd t node level v = Memory.write t.mem (node + 3 + level) v

let create mem =
  let h = Context.alloc hdr_words in
  let head = Context.alloc (node_words max_height) in
  let t = { mem; h } in
  Memory.write mem h head;
  Memory.write mem (h + 1) 0;
  Memory.write mem (head + 2) max_height;
  for level = 0 to max_height - 1 do
    set_fwd t head level Memory.null
  done;
  t

let is_readonly ~op = op = op_get || op = op_contains || op = op_size

let classify ~op ~args =
  let open Ds_intf in
  if op = op_insert || op = op_remove then
    Keyed { written = [| args.(0) |]; read = [||] }
  else if op = op_get || op = op_contains then
    Keyed { written = [||]; read = [| args.(0) |] }
  else if op = op_size then Read_all
  else Opaque


(* Walk down from the top level; [update.(l)] is the rightmost node at
   level [l] whose key is < [key]. *)
let find_predecessors t key update =
  let head = Memory.read t.mem t.h in
  let node = ref head in
  for level = max_height - 1 downto 0 do
    let continue = ref true in
    while !continue do
      let next = fwd t !node level in
      if next <> Memory.null && Memory.read t.mem next < key then node := next
      else continue := false
    done;
    update.(level) <- !node
  done;
  let candidate = fwd t !node 0 in
  if candidate <> Memory.null && Memory.read t.mem candidate = key then candidate
  else Memory.null

let insert t key value =
  let update = Array.make max_height Memory.null in
  let found = find_predecessors t key update in
  if found <> Memory.null then begin
    Memory.write t.mem (found + 1) value;
    0
  end
  else begin
    let height = height_of_key key in
    let node = Context.alloc (node_words height) in
    Memory.write t.mem node key;
    Memory.write t.mem (node + 1) value;
    Memory.write t.mem (node + 2) height;
    for level = 0 to height - 1 do
      set_fwd t node level (fwd t update.(level) level);
      set_fwd t update.(level) level node
    done;
    Memory.write t.mem (t.h + 1) (Memory.read t.mem (t.h + 1) + 1);
    1
  end

let remove t key =
  let update = Array.make max_height Memory.null in
  let found = find_predecessors t key update in
  if found = Memory.null then 0
  else begin
    let height = Memory.read t.mem (found + 2) in
    for level = 0 to height - 1 do
      if fwd t update.(level) level = found then
        set_fwd t update.(level) level (fwd t found level)
    done;
    Context.free found (node_words height);
    Memory.write t.mem (t.h + 1) (Memory.read t.mem (t.h + 1) - 1);
    1
  end

let get t key =
  let update = Array.make max_height Memory.null in
  let found = find_predecessors t key update in
  if found = Memory.null then -1 else Memory.read t.mem (found + 1)

let execute t ~op ~args =
  if op = op_insert then insert t args.(0) args.(1)
  else if op = op_remove then remove t args.(0)
  else if op = op_get then get t args.(0)
  else if op = op_contains then (if get t args.(0) >= 0 then 1 else 0)
  else if op = op_size then Memory.read t.mem (t.h + 1)
  else invalid_arg "Skiplist.execute: unknown op"

let copy src =
  let dst = create src.mem in
  let head = Memory.read src.mem src.h in
  let rec walk node =
    if node <> Memory.null then begin
      ignore (insert dst (Memory.read src.mem node) (Memory.read src.mem (node + 1)));
      walk (fwd src node 0)
    end
  in
  walk (fwd src head 0);
  dst

(* Observation: [k1; v1; ...] in key order (level-0 chain is sorted). *)
let snapshot t =
  let head = Memory.peek t.mem t.h in
  let rec walk acc node =
    if node = Memory.null then List.rev acc
    else
      let acc = Memory.peek t.mem (node + 1) :: Memory.peek t.mem node :: acc in
      walk acc (Memory.peek t.mem (node + 3))
  in
  walk [] (Memory.peek t.mem (head + 3))

(** Structural invariants for property tests: level-0 keys strictly
    ascending; every level-l chain is a subsequence of level 0; node
    heights match [height_of_key]. *)
let check_invariants t =
  let head = Memory.peek t.mem t.h in
  let rec level0 acc node =
    if node = Memory.null then List.rev acc
    else level0 (Memory.peek t.mem node :: acc) (Memory.peek t.mem (node + 3))
  in
  let keys0 = level0 [] (Memory.peek t.mem (head + 3)) in
  let rec ascending = function
    | a :: (b :: _ as rest) ->
      if a >= b then failwith "skiplist: level-0 keys not ascending";
      ascending rest
    | _ -> ()
  in
  ascending keys0;
  for level = 1 to max_height - 1 do
    let rec chain node =
      if node <> Memory.null then begin
        let key = Memory.peek t.mem node in
        let height = Memory.peek t.mem (node + 2) in
        if height <= level then failwith "skiplist: node too short for level";
        if height <> height_of_key key then failwith "skiplist: wrong height";
        if not (List.mem key keys0) then failwith "skiplist: ghost node";
        chain (Memory.peek t.mem (node + 3 + level))
      end
    in
    chain (Memory.peek t.mem (head + 3 + level))
  done

module Model = Hashmap.Model

let key_get t key =
  match execute t ~op:op_get ~args:[| key |] with
  | -1 -> None
  | v -> Some v

let key_put t key value = ignore (execute t ~op:op_insert ~args:[| key; value |])
