(** Wing–Gong linearizability checker for complete histories.

    A history is linearizable w.r.t. a sequential model if there is a
    total order of its operations that (1) respects real-time order (if
    op A's response precedes op B's invocation, A comes first), and
    (2) every response matches what the model returns when the ops are
    applied in that order.

    The checker is a DFS over "linearize next" choices with memoization
    on (set of linearized ops, model state). Exponential in the worst
    case — intended for the small histories the tests generate (tens of
    operations). The linearized-set mask is a byte string, so histories
    are not capped at the 62 ops an int mask would allow. *)

module Make (Model : Seqds.Ds_intf.MODEL) = struct
  type verdict = Linearizable | Not_linearizable

  let check_from initial (history : History.event list) =
    let ops = Array.of_list history in
    let n = Array.length ops in
    let nbytes = (n + 7) / 8 in
    let test mask i =
      Char.code (Bytes.unsafe_get mask (i lsr 3)) land (1 lsl (i land 7)) <> 0
    in
    let with_bit mask i =
      let m = Bytes.copy mask in
      Bytes.unsafe_set m (i lsr 3)
        (Char.chr (Char.code (Bytes.unsafe_get m (i lsr 3)) lor (1 lsl (i land 7))));
      m
    in
    let empty_mask = Bytes.make nbytes '\000' in
    let full_mask =
      let m = ref empty_mask in
      for i = 0 to n - 1 do
        m := with_bit !m i
      done;
      !m
    in
    (* memo of explored-and-failed states *)
    let failed : (Bytes.t * int list, unit) Hashtbl.t = Hashtbl.create 1024 in
    let rec dfs mask model =
      if Bytes.equal mask full_mask then true
      else begin
        let key = (mask, Model.snapshot model) in
        if Hashtbl.mem failed key then false
        else begin
          (* the earliest response among unlinearized ops bounds which ops
             may be linearized next: anything invoked after it must wait *)
          let t_bound = ref max_int in
          for i = 0 to n - 1 do
            if (not (test mask i)) && ops.(i).History.t_resp < !t_bound then
              t_bound := ops.(i).History.t_resp
          done;
          let ok = ref false in
          let i = ref 0 in
          while (not !ok) && !i < n do
            let idx = !i in
            incr i;
            if not (test mask idx) then begin
              let e = ops.(idx) in
              if e.History.t_inv <= !t_bound then begin
                let model', resp =
                  Model.apply model ~op:e.History.op ~args:e.History.args
                in
                if resp = e.History.resp then
                  if dfs (with_bit mask idx) model' then ok := true
              end
            end
          done;
          if not !ok then Hashtbl.replace failed key ();
          !ok
        end
      end
    in
    if dfs empty_mask initial then Linearizable else Not_linearizable

  let check history = check_from Model.empty history

  (** Like [check] but with the model state that [prefill] produces. *)
  let check_with_prefill ~prefill history =
    let initial =
      List.fold_left
        (fun m (op, args) -> fst (Model.apply m ~op ~args))
        Model.empty prefill
    in
    check_from initial history
end
