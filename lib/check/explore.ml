(** Bounded exhaustive schedule-and-crash exploration.

    The fuzzer (lib/check/fuzz.ml) samples random schedules and random
    crash points; this module *enumerates* them for a small-scope workload
    (2–3 threads, a handful of ops, tiny ε), the way model-checking-based
    persistency tools do:

    - [Sim] runs in controlled-scheduler mode: every fiber-facing memory
      operation is a scheduling choice point, and the explorer drives a
      depth-first search over the choice tree, re-executing the workload
      from scratch along each schedule (stateless search). A schedule is
      identified by its decision trace — the fid chosen at every branching
      point — which makes any run replayable bit-for-bit.
    - At every explored step it enumerates *every reachable crash
      frontier*: the current media image plus each subset of the dirty NVM
      lines the cache could have written back first (the write-pending
      queue is volatile, exactly as in [Memory.crash]). Each new frontier
      is realised against a memory snapshot, recovered, and judged with
      [Durable_lin]; the snapshot is then restored and the run continues.
    - Pruning makes this tractable: (a) an await transformation — a fiber
      entering a [Sim.spin] wait iteration is parked out of the branching
      set until some write or ghost-state change could alter what its
      re-check observes, so busy-wait loops contribute no interleavings of
      their own; (b) sleep-set/DPOR-style reduction keyed on the
      cache-line footprint of each step — after a branch is fully
      explored, its first step sleeps in sibling branches until a
      conflicting access wakes it; (c) state-hash deduplication over the
      incremental fingerprints [Memory] maintains (values, media, dirty
      map, WPQ) plus the ghost state and per-fiber control state.

    Soundness notes. Controlled mode explores *all* sequentially
    consistent interleavings — a superset of what timed dispatch can emit
    — so every violation found corresponds to a real protocol bug, and
    every decision trace replays deterministically. Per-fiber control
    state is tracked exactly: a hash chain over the fiber's entire
    observation history (address, kind and value of every access), which
    determines its continuation because fiber code is deterministic over
    its observations. Parking is versioned from the *start* of a wait
    iteration, so a write landing between a wait round's condition reads
    and its spin still wakes the fiber (no lost wakeups), and wakes are
    otherwise conservative. State caching honours sleep sets the
    Godefroid way: a revisit is pruned only when the state was previously
    explored under a subset of the current sleep set. Crash-state dedup
    is exact for the oracle's verdict, which is a function of
    (media, ghost trace, config) only. Exhaustion is reported only when
    no budget, depth or frontier cap was hit. *)

type budget = {
  max_schedules : int;  (** schedules (complete or pruned) to execute *)
  max_states : int;  (** distinct deduplicated states to visit *)
  max_steps : int;  (** runtime scheduler steps per schedule (depth) *)
  max_frontier_lines : int;
      (** dirty-line cap per crash point: k lines -> 2^k subsets *)
}

let default_budget =
  {
    max_schedules = 50_000;
    max_states = 200_000;
    max_steps = 50_000;
    max_frontier_lines = 8;
  }

(** Small-scope workload under exploration. [prune] disables the sleep-set
    and state-dedup reductions (naive enumeration, for the reduction-factor
    comparison); crash-state dedup stays on either way — it is exact. *)
type scope = {
  seed : int;  (** seeds the per-worker operation lists *)
  threads : int;
  ops_per_worker : int;
  epsilon : int;
  log_size : int;
  sockets : int;
  cores_per_socket : int;
  prune : bool;
  persistence : bool;
      (** spawn the background persistence (checkpoint) fibers. [false]
          keeps the checkpoint loop out of the interleaving space — sound
          whenever the scope's total op count stays below [epsilon] and
          the log cannot wrap, because the flush boundary starts a full
          [epsilon] ahead (no combiner ever blocks on it) and recovery
          replays the whole log over the empty initial checkpoint. *)
}

let default_scope =
  {
    seed = 1;
    threads = 2;
    ops_per_worker = 3;
    epsilon = 2;
    log_size = 16;
    sockets = 2;
    cores_per_socket = 2;
    prune = true;
    persistence = true;
  }

type stats = {
  mutable schedules : int;  (** executions started (complete or pruned) *)
  mutable steps : int;  (** runtime scheduler steps, summed over runs *)
  mutable states : int;  (** distinct states (pruned) / visited (naive) *)
  mutable dedup_hits : int;  (** schedules cut by state-hash dedup *)
  mutable sleep_skips : int;  (** branch alternatives skipped by sleep sets *)
  mutable terminals : int;  (** schedules that ran to quiescence *)
  mutable crash_points : int;  (** steps at which frontiers were enumerated *)
  mutable frontiers : int;  (** crash frontiers (subsets) fingerprinted *)
  mutable recoveries : int;  (** distinct crash states recovered+checked *)
  mutable frontier_truncations : int;  (** points where the line cap bit *)
  mutable depth_cutoffs : int;  (** schedules cut by [max_steps] *)
  mutable stutter_cuts : int;
      (** schedules cut at quiescent points where no runnable fiber could
          observe anything new (unfair infinite-stutter suffixes) *)
  mutable max_completed_loss : int;
      (** worst completed-op loss over every checked crash state *)
}

let new_stats () =
  {
    schedules = 0;
    steps = 0;
    states = 0;
    dedup_hits = 0;
    sleep_skips = 0;
    terminals = 0;
    crash_points = 0;
    frontiers = 0;
    recoveries = 0;
    frontier_truncations = 0;
    depth_cutoffs = 0;
    stutter_cuts = 0;
    max_completed_loss = 0;
  }

(** A durable-linearizability violation plus everything needed to replay
    it: the decision trace and, for crash violations, the runtime step at
    which to crash and the frontier mask over the sorted dirty-line list
    at that step. *)
type violation = {
  v_decisions : int list;  (** fid chosen at each branching point *)
  v_crash : (int * int) option;  (** (runtime step, frontier mask) *)
  v_violations : Durable_lin.violation list;
  v_logged : int;
  v_completed : int;
  v_applied : int;
}

type result = {
  stats : stats;
  violation : violation option;
  terminal_states : int list list;
      (** distinct terminal snapshots, sorted — the flag-equivalence tests
          compare these across gated-optimisation configurations *)
  exhausted : bool;
      (** the bounded space was fully explored: no budget, depth or
          frontier cap was hit and no violation cut the search short *)
}

(* inverse gray code: the enumeration index whose gray code is [g] *)
let ungray g =
  let i = ref g and s = ref (g lsr 1) in
  while !s <> 0 do
    i := !i lxor !s;
    s := !s lsr 1
  done;
  !i

(* Position of a shard's violation in the serial check order: checks run in
   increasing (schedule, step, frontier-enumeration index); the terminal
   model-replay of a schedule runs after all of its crash checks. A shard
   stops at its first violation, so its [stats.schedules] at that moment is
   the schedule ordinal. *)
let violation_ordinal (r : result) =
  match r.violation with
  | None -> None
  | Some v ->
    (match v.v_crash with
     | Some (step, mask) -> Some (r.stats.schedules, step, ungray mask)
     | None -> Some (r.stats.schedules, max_int, max_int))

(** Merge the results of running [explore ~shard:(i, n)] for every
    [i < n] (any order — shards are independent). Every shard replays the
    identical DFS and differs only in which oracle checks it performs, so
    when no shard found a violation all scheduling statistics must be
    bit-identical — verified here as a determinism audit; [recoveries]
    (the sharded work) sums and [max_completed_loss] maxes. The merged
    violation, if any, is the one the unsharded serial search would have
    hit first: minimal [violation_ordinal] across shards. *)
let merge_shards (shards : result array) : result =
  if Array.length shards = 0 then invalid_arg "Explore.merge_shards: empty";
  if Array.length shards = 1 then shards.(0)
  else begin
    let winner =
      Array.to_list shards
      |> List.filter_map (fun r ->
             Option.map (fun o -> (o, r)) (violation_ordinal r))
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> function
      | [] -> None
      | (_, r) :: _ -> Some r
    in
    let base = match winner with Some r -> r | None -> shards.(0) in
    if winner = None then
      (* no shard stopped early: the replicated DFS bookkeeping must agree *)
      Array.iteri
        (fun i r ->
          let s = r.stats and s0 = base.stats in
          let same =
            s.schedules = s0.schedules
            && s.steps = s0.steps && s.states = s0.states
            && s.dedup_hits = s0.dedup_hits
            && s.sleep_skips = s0.sleep_skips
            && s.terminals = s0.terminals
            && s.crash_points = s0.crash_points
            && s.frontiers = s0.frontiers
            && s.frontier_truncations = s0.frontier_truncations
            && s.depth_cutoffs = s0.depth_cutoffs
            && s.stutter_cuts = s0.stutter_cuts
            && r.terminal_states = base.terminal_states
            && r.exhausted = base.exhausted
          in
          if not same then
            failwith
              (Printf.sprintf
                 "Explore.merge_shards: shard %d diverged from shard 0 \
                  (exploration is not deterministic)"
                 i))
        shards;
    let recoveries =
      Array.fold_left (fun a r -> a + r.stats.recoveries) 0 shards
    in
    let max_completed_loss =
      Array.fold_left (fun a r -> max a r.stats.max_completed_loss) 0 shards
    in
    {
      stats = { base.stats with recoveries; max_completed_loss };
      violation = base.violation;
      terminal_states = base.terminal_states;
      exhausted =
        base.violation = None
        && Array.for_all (fun r -> r.exhausted) shards;
    }
  end

(* run-length encoding of decision traces: "0*12,2,1*3" *)
let decisions_to_string ds =
  let buf = Buffer.create 64 in
  let flush fid n =
    if Buffer.length buf > 0 then Buffer.add_char buf ',';
    if n = 1 then Buffer.add_string buf (string_of_int fid)
    else Buffer.add_string buf (Printf.sprintf "%d*%d" fid n)
  in
  let rec go = function
    | [] -> ()
    | fid :: rest ->
      let rec count n = function
        | f :: r when f = fid -> count (n + 1) r
        | r -> (n, r)
      in
      let n, rest = count 1 rest in
      flush fid n;
      go rest
  in
  go ds;
  Buffer.contents buf

let decisions_of_string s =
  if String.trim s = "" then []
  else
    String.split_on_char ',' s
    |> List.concat_map (fun tok ->
           match String.index_opt tok '*' with
           | None -> [ int_of_string (String.trim tok) ]
           | Some i ->
             let fid = int_of_string (String.trim (String.sub tok 0 i)) in
             let n =
               int_of_string
                 (String.trim (String.sub tok (i + 1) (String.length tok - i - 1)))
             in
             List.init n (fun _ -> fid))

(* local hash mixing, same construction as Memory's fingerprints *)
let mix x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x1B03738712FAD5C9 in
  let x = x lxor (x lsr 27) in
  let x = x * 0x2545F4914F6CDD1D in
  x lxor (x lsr 31)

let h2 a b = mix (a + (mix b * 0x27D4EB2F165667C5))

(* step footprints: (dirty_key | -1 global, is_write) *)
type fp = (int * bool) list

let fp_conflict (f1 : fp) (f2 : fp) =
  List.exists
    (fun (k1, w1) ->
      List.exists
        (fun (k2, w2) -> (w1 || w2) && (k1 = -1 || k2 = -1 || k1 = k2))
        f2)
    f1

(* One branching point of the DFS. [nd_sleep] holds fids whose subtree is
   covered elsewhere, with the footprint their next step had when it was
   explored; a conflicting access on the way down wakes (drops) them. *)
type node = {
  nd_enabled : int array;
  mutable nd_sleep : (int * fp) list;
  mutable nd_tried : int list;
  mutable nd_choice : int;
  mutable nd_fp : fp;  (** footprint of [nd_choice]'s step, once executed *)
}


exception Pruned
exception Budget_exhausted
exception Violation_found of violation
exception Crash_now

module Make (Ds : Seqds.Ds_intf.S) = struct
  module Uc = Prep.Prep_uc.Make (Ds)
  module Dl = Durable_lin.Make (Ds.Model)
  open Nvm

  let topology (s : scope) =
    { Sim.Topology.sockets = s.sockets; cores_per_socket = s.cores_per_socket }

  let max_threads scope = (scope.sockets * scope.cores_per_socket) - 1

  (* The per-worker op lists are drawn once, outside the simulation, so
     workers perform no rng draws at runtime: a fiber's behaviour is then a
     pure function of the values it reads, which is what the control-state
     fingerprint assumes. *)
  let gen_workload ~gen_op ~scope =
    let rng = Sim.Rng.create (Int64.of_int ((scope.seed * 1_000_003) + 11)) in
    Array.init scope.threads (fun _ ->
        List.init scope.ops_per_worker (fun _ -> gen_op rng))

  let trace_hash trace =
    let n = Prep.Trace.length trace in
    let h = ref (mix n) in
    for i = 0 to n - 1 do
      let e = Prep.Trace.get trace i in
      h :=
        h2 !h
          (h2 e.Prep.Trace.op
             (h2
                (Array.fold_left h2 0 e.Prep.Trace.args)
                (h2
                   (if e.Prep.Trace.completed then 1 else 0)
                   (h2 e.Prep.Trace.tid e.Prep.Trace.seqno))))
    done;
    !h

  (* latest applied client seqno per thread, from the tagged ghost trace *)
  let applied_seqno_fn trace applied =
    let tbl : (int, int) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun i ->
        let e = Prep.Trace.get trace i in
        if e.Prep.Trace.seqno > 0 then
          let cur =
            Option.value ~default:0 (Hashtbl.find_opt tbl e.Prep.Trace.tid)
          in
          if e.Prep.Trace.seqno > cur then
            Hashtbl.replace tbl e.Prep.Trace.tid e.Prep.Trace.seqno)
      applied;
    fun tid -> Option.value ~default:0 (Hashtbl.find_opt tbl tid)

  (* Run recovery for [uc] on the memory's *current* (post-crash) state in
     a fresh nested timed simulation, preserving and restoring the global
     allocator-context table around it. Returns
     (report, snapshot, resolutions) — resolutions is the per-thread
     [Uc.resolve] verdict list, empty unless [detect]. *)
  let run_recovery ~scope ~detect uc =
    let saved_ctx = Context.save () in
    Context.reset ();
    let topo = topology scope in
    let sim2 = Sim.create ~seed:97L topo in
    let out = ref None in
    ignore
      (Sim.spawn sim2 ~socket:0 (fun () ->
           let uc', report = Uc.recover uc in
           let resolutions =
             if not detect then []
             else
               List.init scope.threads (fun w ->
                   let socket, core = Sim.Topology.place topo w in
                   let tid =
                     (socket * topo.Sim.Topology.cores_per_socket) + core
                   in
                   (tid, Uc.resolve uc' ~tid))
           in
           out := Some (report, Uc.snapshot uc', resolutions)));
    (match Sim.run sim2 () with
     | `Done -> ()
     | `Cut _ -> failwith "Explore: recovery did not finish");
    Context.restore saved_ctx;
    Option.get !out

  (** Explore every interleaving and every reachable crash frontier of the
      small-scope workload. Stops at the first violation (it carries a
      replayable decision trace) or when the space/budget is exhausted.

      [shard = (i, n)] splits the oracle work for a parallel campaign:
      every shard replays the *identical* schedule DFS (all sleep-set and
      state-dedup bookkeeping included — scheduling cost is replicated,
      not divided), but performs only the crash recoveries and terminal
      model-replays whose dedup hash falls in its residue class. A skipped
      check is state-neutral (the memory snapshot would have been restored
      anyway), so shards stay in lockstep; [merge_shards] reassembles the
      full result and audits that lockstep. The default [(0, 1)] is the
      exact unsharded search. *)
  let explore ?(flit = false) ?(dist_rw = false) ?(log_mirror = false)
      ?(slot_bitmap = false) ?(detect = false) ?(lsm_ckpt = false)
      ?(lsm_fanout = 4) ?persist_policy ?(budget = default_budget)
      ?(shard = (0, 1)) ~mode ~fault ~gen_op ~scope () =
    if scope.threads < 1 || scope.threads > max_threads scope then
      invalid_arg "Explore: thread count out of range";
    let shard_ix, shard_n = shard in
    if shard_n < 1 || shard_ix < 0 || shard_ix >= shard_n then
      invalid_arg "Explore: shard index out of range";
    let mine h = shard_n = 1 || (h land max_int) mod shard_n = shard_ix in
    let topo = topology scope in
    let beta = topo.Sim.Topology.cores_per_socket in
    let loss_bound =
      match mode with
      | Prep.Config.Durable -> 0
      | _ -> scope.epsilon + beta - 1
    in
    let workload = gen_workload ~gen_op ~scope in
    let stats = new_stats () in
    (* state key -> sleep-set signatures it was explored under. Plain
       state caching is unsound combined with sleep sets (Godefroid): a
       state first visited under sleep set C only explores transitions
       outside C, so a revisit under sleep set S may be pruned only when
       some cached C ⊆ S — otherwise transitions in C \ S were never
       covered and the revisit must re-explore. *)
    let seen_states : (int, (int * int) list list) Hashtbl.t =
      Hashtbl.create 4096
    in
    let seen_crash : (int, unit) Hashtbl.t = Hashtbl.create 4096 in
    let seen_frontier_base : (int, unit) Hashtbl.t = Hashtbl.create 4096 in
    let terminal_states : (int list, unit) Hashtbl.t = Hashtbl.create 64 in
    let path : node list ref = ref [] in
    let budget_hit = ref false in
    let depth_cut = ref false in
    let truncated = ref false in

    (* ---- one schedule execution (stateless re-execution) ---- *)
    let run_once () =
      let prefix_nodes = Array.of_list (List.rev !path) in
      let process_from = Array.length prefix_nodes - 1 in
      let sim = Sim.create topo in
      let mem =
        Memory.make
          ~seed:(Int64.of_int (scope.seed + 7919))
          ~sockets:scope.sockets ~bg_period:0 ()
      in
      let uc_ref = ref None in
      let runtime = ref false in
      let done_count = ref 0 in
      (* Per-fiber control state, tracked *exactly*: a hash chain over the
         fiber's entire observation history — every access it performed,
         with address, kind and the value read or written. The fibers run
         deterministic code whose only inputs are these observations (plus
         the ghost state hashed separately), so equal chains imply equal
         continuations, which is what makes state-hash dedup sound. *)
      let chains : (int, int) Hashtbl.t = Hashtbl.create 16 in
      (* a freshly spawned fiber parks at its first op_point having touched
         nothing: without this bit its start-step would hash like a no-op
         and be dedup-pruned, losing every schedule where its first access
         happens early *)
      let started : (int, unit) Hashtbl.t = Hashtbl.create 16 in
      (* The await transformation (the spin-loop treatment of stateless
         model checkers): a fiber entering a [Sim.spin] wait iteration is
         *parked* — removed from the branching set — until some write (or
         ghost-state change) occurs, recorded as a version counter. Every
         wait loop in the codebase re-checks its condition from scratch
         after each spin and its body has no effect when nothing changed,
         so re-running a parked fiber before any write is a global no-op;
         skipping those no-op steps loses no reachable state and removes
         spin-loop unrolling from the search space entirely. Wakes are
         conservative (any write wakes every parked fiber). *)
      let parked : (int, int) Hashtbl.t = Hashtbl.create 16 in
      (* Version current when the fiber last *resumed* from a spin — the
         start of its current wait-loop iteration. Parking must use this,
         not the version at spin time: every memory access is its own
         scheduling step, so a wait round's condition reads span several
         steps, and a write interleaved between those reads and the spin
         would otherwise be counted as already-seen — a lost wakeup that
         leaves the fiber parked forever in a livelocked branch. Fibers
         with no recorded iteration start (first spin ever) park stale and
         re-poll once, which is the conservative direction. *)
      let iter_start : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let write_version = ref 0 in
      let last_ghost = ref 0 in
      let cur_fp : fp ref = ref [] in
      let hook key addr write value =
        let fid = (Sim.self ()).Sim.fid in
        cur_fp := (key, write) :: !cur_fp;
        if write then incr write_version;
        let av = h2 addr (h2 key (h2 (if write then 1 else 0) value)) in
        Hashtbl.replace chains fid
          (h2 (Option.value ~default:0 (Hashtbl.find_opt chains fid)) av)
      in
      Memory.set_access_hook mem hook;
      Sim.set_spin_hook sim (fun fid ->
          Hashtbl.replace parked fid
            (Option.value ~default:(-1) (Hashtbl.find_opt iter_start fid)));
      let decision_idx = ref 0 in
      let step_idx = ref 0 in
      let decisions_rev = ref [] in
      let pending_sleep : (int * fp) list ref = ref [] in
      let attr_node : node option ref = ref None in

      let ghost_hash () =
        let uc_ghost =
          match !uc_ref with
          | Some uc ->
            h2
              (if uc.Uc.stop_flag then 1 else 0)
              (h2 (trace_hash uc.Uc.trace)
                 (h2 (Uc.lsm_ghost uc)
                    (Array.fold_left h2 0 uc.Uc.next_seq)))
          | None -> 0
        in
        h2 !done_count uc_ghost
      in
      let state_key enabled =
        let h =
          ref
            (h2 (Memory.value_hash mem)
               (h2 (Memory.media_hash mem)
                  (h2 (Memory.dirty_hash mem) (Memory.wpq_hash mem))))
        in
        h := h2 !h (ghost_hash ());
        Array.iter
          (fun fid ->
            let chain = Option.value ~default:0 (Hashtbl.find_opt chains fid) in
            let fextra =
              match Sim.find_fiber sim fid with
              | Some f ->
                h2
                  ((if f.Sim.palloc then 2 else 0)
                  + (if Hashtbl.mem started fid then 1 else 0))
                  (Int64.to_int f.Sim.frng.Sim.Rng.state)
              | None -> 0
            in
            h := h2 !h (h2 fid (h2 chain fextra)))
          enabled;
        !h
      in

      (* crash a memory snapshot into every not-yet-seen frontier image *)
      let check_crash uc ~snap ~lines ~mask ~this_step =
        stats.recoveries <- stats.recoveries + 1;
        Memory.clear_access_hook mem;
        Array.iteri
          (fun b key -> if mask land (1 lsl b) <> 0 then Memory.commit_line mem key)
          lines;
        Memory.crash mem;
        let trace = Uc.trace uc in
        let completed = Prep.Trace.completed_indexes trace in
        let report, recovered_snapshot, resolutions =
          run_recovery ~scope ~detect uc
        in
        let violations =
          Dl.check ~trace ~prefill:(Uc.prefill_ops uc)
            ~applied:report.Prep.Prep_uc.applied ~completed ~recovered_snapshot
            ~loss_bound ()
          @ Durable_lin.check_resolutions ~resolutions
              ~applied_seqno:
                (applied_seqno_fn trace report.Prep.Prep_uc.applied)
        in
        let lost = report.Prep.Prep_uc.lost_completed in
        if lost > stats.max_completed_loss then stats.max_completed_loss <- lost;
        Memory.restore mem snap;
        Memory.set_access_hook mem hook;
        if violations <> [] then
          raise
            (Violation_found
               {
                 v_decisions = List.rev !decisions_rev;
                 v_crash = Some (this_step, mask);
                 v_violations = violations;
                 v_logged = Prep.Trace.length trace;
                 v_completed = List.length completed;
                 v_applied = List.length report.Prep.Prep_uc.applied;
               })
      in

      let enumerate_crash_frontiers uc this_step =
        let dirty = Memory.dirty_nvm_line_keys mem in
        let k_all = List.length dirty in
        let k = min k_all budget.max_frontier_lines in
        if k_all > k then begin
          truncated := true;
          stats.frontier_truncations <- stats.frontier_truncations + 1
        end;
        let lines = Array.of_list dirty in
        let lines = Array.sub lines 0 k in
        let deltas = Array.map (Memory.line_commit_delta mem) lines in
        let base_media = Memory.media_hash mem in
        let th = trace_hash (Uc.trace uc) in
        (* the reachable frontier images are fully determined by
           (media, per-line deltas, ghost trace): skip the whole point if
           that combination was already enumerated *)
        let base_key =
          h2 base_media (h2 th (Array.fold_left h2 (mix k) deltas))
        in
        if not (Hashtbl.mem seen_frontier_base base_key) then begin
          Hashtbl.add seen_frontier_base base_key ();
          stats.crash_points <- stats.crash_points + 1;
          let snap = ref None in
          let cur = ref 0 in
          let prev_gray = ref 0 in
          for i = 0 to (1 lsl k) - 1 do
            let gray = i lxor (i lsr 1) in
            let changed = gray lxor !prev_gray in
            if changed <> 0 then begin
              let b = ref 0 in
              while changed land (1 lsl !b) = 0 do incr b done;
              cur := !cur lxor deltas.(!b)
            end;
            prev_gray := gray;
            stats.frontiers <- stats.frontiers + 1;
            let sg = h2 (base_media lxor !cur) th in
            if not (Hashtbl.mem seen_crash sg) then begin
              Hashtbl.add seen_crash sg ();
              if mine sg then begin
                let snap =
                  match !snap with
                  | Some s -> s
                  | None ->
                    let s = Memory.snapshot mem in
                    snap := Some s;
                    s
                in
                check_crash uc ~snap ~lines ~mask:gray ~this_step
              end
            end
          done
        end
      in

      let chooser (enabled : int array) : int =
        let pick fid =
          if Hashtbl.mem parked fid then begin
            Hashtbl.replace iter_start fid !write_version;
            Hashtbl.remove parked fid
          end;
          Hashtbl.replace started fid ();
          fid
        in
        if not !runtime then pick enabled.(0)
        else begin
          (* a step just finished: attribute and consume its footprint *)
          let fp = !cur_fp in
          cur_fp := [];
          (match !attr_node with
           | Some n ->
             n.nd_fp <- fp;
             attr_node := None
           | None -> ());
          if fp <> [] && !pending_sleep <> [] then
            pending_sleep :=
              List.filter (fun (_, f) -> not (fp_conflict f fp)) !pending_sleep;
          let this_step = !step_idx in
          incr step_idx;
          stats.steps <- stats.steps + 1;
          if !step_idx > budget.max_steps then begin
            depth_cut := true;
            stats.depth_cutoffs <- stats.depth_cutoffs + 1;
            raise Pruned
          end;
          let processing = !decision_idx > process_from in
          (* ghost progress (done/stop flags, trace growth) also wakes
             parked fibers: those waits read no memory *)
          let gh = ghost_hash () in
          if gh <> !last_ghost then begin
            last_ghost := gh;
            incr write_version
          end;
          let eligible =
            Array.to_list enabled
            |> List.filter (fun fid ->
                   match Hashtbl.find_opt parked fid with
                   | Some v when v = !write_version -> false
                   | _ -> true)
          in
          (* Every runnable fiber is parked at the current version: no
             fiber's wait condition can ever change again along this
             schedule (the re-checks are memoryless), so its only
             continuations are unfair infinite stutters. Cut it. *)
          if eligible = [] then begin
            stats.stutter_cuts <- stats.stutter_cuts + 1;
            raise Pruned
          end;
          let eligible = Array.of_list eligible in
          if processing then begin
            (match !uc_ref with
             | Some uc when mode <> Prep.Config.Volatile ->
               enumerate_crash_frontiers uc this_step
             | _ -> ());
            if Array.length eligible > 1 then begin
              let fresh_state = ref true in
              if scope.prune then begin
                let key = state_key enabled in
                let sig_of_sleep sl =
                  List.map
                    (fun (fid, f) ->
                      ( fid,
                        List.fold_left
                          (fun acc (k, w) -> acc lxor h2 k (if w then 1 else 0))
                          0 f ))
                    sl
                  |> List.sort_uniq compare
                in
                let s = sig_of_sleep !pending_sleep in
                let subset c = List.for_all (fun x -> List.mem x s) c in
                (match Hashtbl.find_opt seen_states key with
                 | Some cached when List.exists subset cached ->
                   stats.dedup_hits <- stats.dedup_hits + 1;
                   raise Pruned
                 | Some cached ->
                   fresh_state := false;
                   (* drop cached supersets of [s]: [s] subsumes them *)
                   let cached =
                     List.filter
                       (fun c -> not (List.for_all (fun x -> List.mem x c) s))
                       cached
                   in
                   Hashtbl.replace seen_states key (s :: cached)
                 | None -> Hashtbl.add seen_states key [ s ])
              end;
              if !fresh_state then stats.states <- stats.states + 1;
              if stats.states >= budget.max_states then begin
                budget_hit := true;
                raise Budget_exhausted
              end
            end
          end;
          if Array.length eligible = 1 then pick eligible.(0)
          else if not processing then begin
            (* replay the DFS prefix *)
            let n = prefix_nodes.(!decision_idx) in
            if n.nd_enabled <> eligible then
              failwith "Explore: replay divergence (internal invariant)";
            incr decision_idx;
            decisions_rev := n.nd_choice :: !decisions_rev;
            pending_sleep := n.nd_sleep;
            attr_node := Some n;
            pick n.nd_choice
          end
          else begin
            (* extend: open a new branching point *)
            let sleep = !pending_sleep in
            let asleep fid = List.exists (fun (q, _) -> q = fid) sleep in
            match
              Array.to_list eligible |> List.filter (fun f -> not (asleep f))
            with
            | [] ->
              (* every eligible move sleeps: all successors covered elsewhere *)
              stats.sleep_skips <- stats.sleep_skips + Array.length eligible;
              raise Pruned
            | c :: _ ->
              let n =
                {
                  nd_enabled = eligible;
                  nd_sleep = sleep;
                  nd_tried = [];
                  nd_choice = c;
                  nd_fp = [];
                }
              in
              path := n :: !path;
              incr decision_idx;
              decisions_rev := c :: !decisions_rev;
              attr_node := Some n;
              pick c
          end
        end
      in
      Sim.set_chooser sim chooser;
      ignore
        (Sim.spawn sim ~socket:0 (fun () ->
             let roots = Roots.make mem in
             let cfg =
               Prep.Config.make ~mode ~log_size:scope.log_size
                 ~epsilon:scope.epsilon ~flit ~dist_rw ~log_mirror ~slot_bitmap
                 ~detect ~lsm_ckpt ~lsm_fanout ?persist_policy ~fault
                 ~workers:scope.threads ()
             in
             let uc = Uc.create mem roots cfg in
             uc_ref := Some uc;
             if scope.persistence then Uc.start_persistence uc;
             for w = 0 to scope.threads - 1 do
               let socket, core = Sim.Topology.place topo w in
               let ops = workload.(w) in
               Sim.spawn_here ~socket ~core (fun () ->
                   Uc.register_worker uc;
                   List.iter (fun (op, args) -> ignore (Uc.execute uc ~op ~args)) ops;
                   incr done_count)
             done;
             runtime := true;
             while !done_count < scope.threads do
               Sim.spin ()
             done;
             Uc.stop uc;
             Uc.sync uc));
      (match Sim.run sim () with
       | `Done -> ()
       | `Cut _ -> assert false);
      (* terminal: quiescent state must equal the full-trace model replay *)
      let uc = Option.get !uc_ref in
      stats.terminals <- stats.terminals + 1;
      let trace = Uc.trace uc in
      let logged = Prep.Trace.length trace in
      let completed = Prep.Trace.completed_indexes trace in
      let applied = List.init logged (fun i -> i) in
      let snapshot = Uc.snapshot uc in
      Hashtbl.replace terminal_states snapshot ();
      (* terminal model-replay is sharded by decision-trace hash; snapshot
         collection above is not (every shard sees every terminal) *)
      let dh =
        List.fold_left h2 (mix (List.length !decisions_rev)) !decisions_rev
      in
      if mine dh then begin
        let violations =
          Dl.check ~trace ~prefill:(Uc.prefill_ops uc) ~applied ~completed
            ~recovered_snapshot:snapshot ~loss_bound:0 ()
        in
        if violations <> [] then
          raise
            (Violation_found
               {
                 v_decisions = List.rev !decisions_rev;
                 v_crash = None;
                 v_violations = violations;
                 v_logged = logged;
                 v_completed = List.length completed;
                 v_applied = logged;
               })
      end
    in

    (* ---- DFS driver ---- *)
    let rec backtrack () =
      match !path with
      | [] -> false
      | n :: rest ->
        (* a step with no memory footprint (spin-wait, ghost-only progress)
           must not sleep forever — it may behave differently once ghost
           state moves on; give it a wildcard footprint so any subsequent
           access wakes it, leaving only pure stutters pruned *)
        if scope.prune then begin
          let fp = if n.nd_fp = [] then [ (-1, true) ] else n.nd_fp in
          n.nd_sleep <- (n.nd_choice, fp) :: n.nd_sleep
        end;
        n.nd_tried <- n.nd_choice :: n.nd_tried;
        let asleep fid = List.exists (fun (q, _) -> q = fid) n.nd_sleep in
        let tried fid = List.mem fid n.nd_tried in
        (match
           Array.to_list n.nd_enabled
           |> List.filter (fun f -> not (tried f) && not (asleep f))
         with
         | c :: _ ->
           n.nd_choice <- c;
           n.nd_fp <- [];
           true
         | [] ->
           stats.sleep_skips <-
             stats.sleep_skips
             + (Array.length n.nd_enabled - List.length n.nd_tried);
           path := rest;
           backtrack ())
    in
    let violation = ref None in
    (try
       let continue = ref true in
       while !continue do
         if stats.schedules >= budget.max_schedules then begin
           budget_hit := true;
           continue := false
         end
         else begin
           stats.schedules <- stats.schedules + 1;
           (try run_once () with Pruned -> ());
           continue := backtrack ()
         end
       done
     with
    | Violation_found v -> violation := Some v
    | Budget_exhausted -> budget_hit := true);
    {
      stats;
      violation = !violation;
      terminal_states =
        List.sort compare
          (Hashtbl.fold (fun s () acc -> s :: acc) terminal_states []);
      exhausted =
        !violation = None && (not !budget_hit) && (not !depth_cut)
        && not !truncated;
    }

  (** Re-execute exactly one schedule from its decision trace; optionally
      crash at [crash = (step, frontier_mask)] — the mask selects, bit [b],
      the [b]-th dirty NVM line (sorted) at that step — then recover and
      check. Everything is deterministic: replaying a violation's trace
      reproduces its violation. *)
  let replay ?(flit = false) ?(dist_rw = false) ?(log_mirror = false)
      ?(slot_bitmap = false) ?(detect = false) ?(lsm_ckpt = false)
      ?(lsm_fanout = 4) ?persist_policy ~mode ~fault ~gen_op ~scope ~decisions
      ?crash () =
    let topo = topology scope in
    let beta = topo.Sim.Topology.cores_per_socket in
    let loss_bound =
      match mode with
      | Prep.Config.Durable -> 0
      | _ -> scope.epsilon + beta - 1
    in
    let workload = gen_workload ~gen_op ~scope in
    let decisions = Array.of_list decisions in
    let sim = Sim.create topo in
    let mem =
      Memory.make
        ~seed:(Int64.of_int (scope.seed + 7919))
        ~sockets:scope.sockets ~bg_period:0 ()
    in
    let uc_ref = ref None in
    let runtime = ref false in
    let done_count = ref 0 in
    let decision_idx = ref 0 in
    let step_idx = ref 0 in
    (* the same await-parking as [explore]: decision traces only record
       choices at branching points, so replay must reconstruct the same
       eligible sets to consume them at the same steps *)
    let parked : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let iter_start : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let write_version = ref 0 in
    let last_ghost = ref 0 in
    Memory.set_access_hook mem (fun _ _ write _ ->
        if write then incr write_version);
    Sim.set_spin_hook sim (fun fid ->
        Hashtbl.replace parked fid
          (Option.value ~default:(-1) (Hashtbl.find_opt iter_start fid)));
    let ghost_hash () =
      let uc_ghost =
        match !uc_ref with
        | Some uc ->
          h2
            (if uc.Uc.stop_flag then 1 else 0)
            (h2 (trace_hash uc.Uc.trace)
               (h2 (Uc.lsm_ghost uc)
                  (Array.fold_left h2 0 uc.Uc.next_seq)))
        | None -> 0
      in
      h2 !done_count uc_ghost
    in
    let chooser (enabled : int array) : int =
      if not !runtime then enabled.(0)
      else begin
        let this_step = !step_idx in
        incr step_idx;
        (match crash with
         | Some (s, mask) when this_step = s ->
           let lines = Array.of_list (Memory.dirty_nvm_line_keys mem) in
           Array.iteri
             (fun b key ->
               if mask land (1 lsl b) <> 0 then Memory.commit_line mem key)
             lines;
           raise Crash_now
         | _ -> ());
        let gh = ghost_hash () in
        if gh <> !last_ghost then begin
          last_ghost := gh;
          incr write_version
        end;
        let eligible =
          Array.to_list enabled
          |> List.filter (fun fid ->
                 match Hashtbl.find_opt parked fid with
                 | Some v when v = !write_version -> false
                 | _ -> true)
        in
        let eligible =
          if eligible = [] then enabled else Array.of_list eligible
        in
        let pick fid =
          if Hashtbl.mem parked fid then begin
            Hashtbl.replace iter_start fid !write_version;
            Hashtbl.remove parked fid
          end;
          fid
        in
        if Array.length eligible = 1 then pick eligible.(0)
        else if !decision_idx < Array.length decisions then begin
          let c = decisions.(!decision_idx) in
          incr decision_idx;
          if not (Array.exists (fun f -> f = c) eligible) then
            failwith "Explore.replay: decision trace does not match execution";
          pick c
        end
        else pick eligible.(0)
      end
    in
    Sim.set_chooser sim chooser;
    ignore
      (Sim.spawn sim ~socket:0 (fun () ->
           let roots = Roots.make mem in
           let cfg =
             Prep.Config.make ~mode ~log_size:scope.log_size
               ~epsilon:scope.epsilon ~flit ~dist_rw ~log_mirror ~slot_bitmap
               ~detect ~lsm_ckpt ~lsm_fanout ?persist_policy ~fault
               ~workers:scope.threads ()
           in
           let uc = Uc.create mem roots cfg in
           uc_ref := Some uc;
           if scope.persistence then Uc.start_persistence uc;
           for w = 0 to scope.threads - 1 do
             let socket, core = Sim.Topology.place topo w in
             let ops = workload.(w) in
             Sim.spawn_here ~socket ~core (fun () ->
                 Uc.register_worker uc;
                 List.iter (fun (op, args) -> ignore (Uc.execute uc ~op ~args)) ops;
                 incr done_count)
           done;
           runtime := true;
           while !done_count < scope.threads do
             Sim.spin ()
           done;
           Uc.stop uc;
           Uc.sync uc));
    let crashed =
      try
        (match Sim.run sim () with `Done -> () | `Cut _ -> assert false);
        false
      with Crash_now -> true
    in
    let uc = Option.get !uc_ref in
    let trace = Uc.trace uc in
    let logged = Prep.Trace.length trace in
    let completed = Prep.Trace.completed_indexes trace in
    if crashed then begin
      Memory.clear_access_hook mem;
      Memory.crash mem;
      Context.reset ();
      let sim2 = Sim.create ~seed:97L topo in
      let out = ref None in
      ignore
        (Sim.spawn sim2 ~socket:0 (fun () ->
             let uc', report = Uc.recover uc in
             let resolutions =
               if not detect then []
               else
                 List.init scope.threads (fun w ->
                     let socket, core = Sim.Topology.place topo w in
                     let tid = (socket * beta) + core in
                     (tid, Uc.resolve uc' ~tid))
             in
             out := Some (report, Uc.snapshot uc', resolutions)));
      (match Sim.run sim2 () with
       | `Done -> ()
       | `Cut _ -> failwith "Explore.replay: recovery did not finish");
      let report, recovered_snapshot, resolutions = Option.get !out in
      let violations =
        Dl.check ~trace ~prefill:(Uc.prefill_ops uc)
          ~applied:report.Prep.Prep_uc.applied ~completed ~recovered_snapshot
          ~loss_bound ()
        @ Durable_lin.check_resolutions ~resolutions
            ~applied_seqno:(applied_seqno_fn trace report.Prep.Prep_uc.applied)
      in
      ( violations,
        true,
        logged,
        List.length completed,
        List.length report.Prep.Prep_uc.applied )
    end
    else begin
      let applied = List.init logged (fun i -> i) in
      let violations =
        Dl.check ~trace ~prefill:(Uc.prefill_ops uc) ~applied ~completed
          ~recovered_snapshot:(Uc.snapshot uc) ~loss_bound:0 ()
      in
      (violations, false, logged, List.length completed, logged)
    end
end
