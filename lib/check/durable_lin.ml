(** Durable-linearizability checker for crash/recovery episodes.

    The ghost trace (lib/core/trace.ml) records the linearization order of
    every update — the order operations were written to the shared log —
    and which of them completed (their invoking thread saw the response).
    After a crash, recovery reports which trace indexes the rebuilt state
    contains. This module judges that report against the paper's
    guarantees (§5.1, §5.2):

    - **loss bound**: at most [loss_bound] *completed* operations may be
      missing from the recovered state — ε+β−1 for PREP-Buffered, 0 for
      PREP-Durable;
    - **prefix consistency**: the surviving operations must form a prefix
      of the linearization restricted to completed ops — a lost completed
      op must never precede a surviving op in linearization order
      (uncompleted ops may be skipped as log holes in durable mode);
    - **order**: recovery must apply survivors in linearization order;
    - **state**: the recovered structure must equal the pure model's
      replay of prefill + surviving ops — this is what catches a
      background cache write-back persisting a mid-update replica. *)

type violation =
  | Loss_bound_exceeded of { lost : int; bound : int }
  | Prefix_violation of { lost_index : int; applied_later : int }
      (** completed op [lost_index] is missing although the later op
          [applied_later] survived *)
  | Out_of_order of { before : int; after : int }
      (** recovery applied [after] then [before] *)
  | State_mismatch of { expected : int list; recovered : int list }
  | Duplicate_application of { tid : int; seqno : int }
      (** exactly-once violation: client op (tid, seqno) took effect more
          than once across the resubmission-closed history *)
  | Lost_client_op of { tid : int; seqno : int }
      (** exactly-once violation: a scripted client op never took effect
          even though detectability let the client re-submit losses *)
  | Resolve_mismatch of { tid : int; resolved : int; applied : int }
      (** the recovery-side resolve verdict disagrees with ghost truth:
          the response covers seqno [resolved] but the recovered state's
          latest applied op for [tid] is [applied]. [resolved] ahead means
          a false Completed (the client would skip a lost op); [resolved]
          behind means the client would re-submit an op that survived
          (duplicate on resubmission). *)
  | Atomicity_violation of { txid : int; committed : bool; shard : int }
      (** cross-shard atomicity ([Prep.Sharded_uc]): transaction [txid]
          has a durable commit decision but shard [shard] lost one of its
          prepare sub-ops (a committed transaction applied partially), or
          has no decision yet shard [shard] rolled a prepare of it
          *forward* (an aborted transaction left effects behind) *)

let pp_violation ppf = function
  | Loss_bound_exceeded { lost; bound } ->
    Fmt.pf ppf "loss bound exceeded: %d completed ops lost, bound %d" lost
      bound
  | Prefix_violation { lost_index; applied_later } ->
    Fmt.pf ppf
      "prefix violation: completed op %d lost but later op %d survived"
      lost_index applied_later
  | Out_of_order { before; after } ->
    Fmt.pf ppf "recovery order violation: op %d applied after op %d" before
      after
  | State_mismatch { expected; recovered } ->
    Fmt.pf ppf "recovered state mismatch:@ expected [%a]@ got [%a]"
      Fmt.(list ~sep:semi int)
      expected
      Fmt.(list ~sep:semi int)
      recovered
  | Duplicate_application { tid; seqno } ->
    Fmt.pf ppf "exactly-once violation: op (tid %d, seq %d) applied twice"
      tid seqno
  | Lost_client_op { tid; seqno } ->
    Fmt.pf ppf "exactly-once violation: client op (tid %d, seq %d) lost" tid
      seqno
  | Resolve_mismatch { tid; resolved; applied } ->
    Fmt.pf ppf
      "resolve mismatch for tid %d: response covers seq %d but latest \
       applied seq is %d"
      tid resolved applied

  | Atomicity_violation { txid; committed; shard } ->
    if committed then
      Fmt.pf ppf
        "cross-shard atomicity violation: txn %d committed but shard %d \
         lost a prepare"
        txid shard
    else
      Fmt.pf ppf
        "cross-shard atomicity violation: txn %d never committed but \
         shard %d applied a prepare"
        txid shard

let violation_to_string v = Fmt.str "%a" pp_violation v

(** Cross-shard all-or-nothing audit over one recovered sharded history.

    [intents] names every transaction the run started, as
    [(txid, participant shards)] with multiplicity (a same-shard multi-key
    op lists its shard twice); [committed txid] is the post-crash media
    truth of the decision table; [applied_count shard txid] counts the
    prepare sub-ops of [txid] the recovery kept on [shard]. Committed ⇒
    every intended prepare survived (PREP-Durable's loss bound is 0, and
    the decision is only written after every prepare completed); not
    committed ⇒ no shard kept any. *)
let check_atomicity ~nshards ~intents ~committed ~applied_count =
  List.concat_map
    (fun (txid, parts) ->
      if committed txid then
        let want = Hashtbl.create 4 in
        List.iter
          (fun s ->
            Hashtbl.replace want s
              (1 + Option.value ~default:0 (Hashtbl.find_opt want s)))
          parts;
        Hashtbl.fold
          (fun s n acc ->
            if applied_count s txid < n then
              Atomicity_violation { txid; committed = true; shard = s } :: acc
            else acc)
          want []
      else
        List.filter_map
          (fun s ->
            if applied_count s txid > 0 then
              Some (Atomicity_violation { txid; committed = false; shard = s })
            else None)
          (List.init nshards Fun.id))
    intents

(** Judge each thread's post-recovery [Prep_uc.resolve] verdict against
    ghost truth. [resolutions] pairs thread ids with their verdicts;
    [applied_seqno tid] is the latest client seqno of [tid] present in the
    recovered state (0 if none), which the caller computes from the tagged
    ghost trace. The invariant (clean protocol, loss bound 0): the verdict
    names exactly the frontier of what survived — [Completed s] iff [s] is
    the latest applied, [Lost a] iff everything before [a] but not [a]
    survived, [Unannounced] iff nothing of the thread's survived. *)
let check_resolutions ~resolutions ~applied_seqno =
  List.filter_map
    (fun (tid, r) ->
      let m = applied_seqno tid in
      match (r : Prep.Prep_uc.resolution) with
      | Prep.Prep_uc.Completed { seqno; _ } when seqno <> m ->
        Some (Resolve_mismatch { tid; resolved = seqno; applied = m })
      | Prep.Prep_uc.Lost { seqno } when m >= seqno ->
        (* the op resolve told the client to re-submit actually survived:
           resubmission would apply it twice *)
        Some (Resolve_mismatch { tid; resolved = seqno - 1; applied = m })
      | Prep.Prep_uc.Unannounced when m > 0 ->
        Some (Resolve_mismatch { tid; resolved = 0; applied = m })
      | _ -> None)
    resolutions

module Make (Model : Seqds.Ds_intf.MODEL) = struct
  (** Check one recovery. [applied] is the recovery report's list of trace
      indexes (in application order); [completed] the trace's completed
      indexes; [recovered_snapshot] the canonical observation of the
      rebuilt structure. Returns every violation found (empty = pass). *)
  let check ~trace ~prefill ~applied ~completed ~recovered_snapshot
      ~loss_bound () =
    let violations = ref [] in
    let add v = violations := v :: !violations in
    (* order: survivors must be applied in linearization order *)
    ignore
      (List.fold_left
         (fun prev i ->
           (match prev with
            | Some p when i <= p -> add (Out_of_order { before = i; after = p })
            | _ -> ());
           Some i)
         None applied);
    let applied_set = Hashtbl.create 256 in
    List.iter (fun i -> Hashtbl.replace applied_set i ()) applied;
    let max_applied = List.fold_left max (-1) applied in
    (* loss bound + prefix consistency over completed ops *)
    let lost = List.filter (fun i -> not (Hashtbl.mem applied_set i)) completed in
    if List.length lost > loss_bound then
      add (Loss_bound_exceeded { lost = List.length lost; bound = loss_bound });
    List.iter
      (fun i ->
        if i < max_applied then
          (* some survivor is later in linearization order than this lost
             completed op; find one for the report *)
          let later =
            List.find (fun j -> Hashtbl.mem applied_set j)
              (List.init (max_applied - i) (fun k -> max_applied - k))
          in
          add (Prefix_violation { lost_index = i; applied_later = later }))
      lost;
    (* state: recovered structure = model replay of prefill + survivors *)
    let state =
      List.fold_left
        (fun m (op, args) -> fst (Model.apply m ~op ~args))
        Model.empty prefill
    in
    let state =
      List.fold_left
        (fun m i ->
          let e = Prep.Trace.get trace i in
          fst (Model.apply m ~op:e.Prep.Trace.op ~args:e.Prep.Trace.args))
        state applied
    in
    let expected = Model.snapshot state in
    if expected <> recovered_snapshot then
      add (State_mismatch { expected; recovered = recovered_snapshot });
    List.rev !violations

  (** Exactly-once check over a resubmission-closed cumulative history.

      [history] is every application across every incarnation of a
      crash-restart-continue session, in application order, as
      [(tid, seqno, op, args)]; seqno 0 marks untagged (prefill) entries,
      exempt from the tagging checks. [scripted] is every [(tid, seqno)]
      the clients were scripted to apply. With detectability on, clients
      re-submit exactly what [resolve] reports lost, so the closed history
      must contain each scripted op exactly once — loss bound 0 — and the
      final structure must equal the model's replay of the history. *)
  let check_exactly_once ~history ~scripted ~recovered_snapshot () =
    let violations = ref [] in
    let add v = violations := v :: !violations in
    let seen = Hashtbl.create 256 in
    List.iter
      (fun (tid, seqno, _, _) ->
        if seqno > 0 then
          if Hashtbl.mem seen (tid, seqno) then
            add (Duplicate_application { tid; seqno })
          else Hashtbl.replace seen (tid, seqno) ())
      history;
    List.iter
      (fun (tid, seqno) ->
        if not (Hashtbl.mem seen (tid, seqno)) then
          add (Lost_client_op { tid; seqno }))
      scripted;
    let state =
      List.fold_left
        (fun m (_, _, op, args) -> fst (Model.apply m ~op ~args))
        Model.empty history
    in
    let expected = Model.snapshot state in
    if expected <> recovered_snapshot then
      add (State_mismatch { expected; recovered = recovered_snapshot });
    List.rev !violations
end
