(** Greedy counterexample minimization.

    Given a failing configuration and a way to enumerate strictly-smaller
    candidate configurations, repeatedly move to the first smaller
    candidate that still fails, until none does. This is the classic
    delta-debugging descent: it finds a *local* minimum, which is what a
    human wants to stare at — the smallest thread count and earliest crash
    point that still reproduce the bug.

    [smaller] must only return configurations strictly smaller under some
    well-founded measure, or the descent may not terminate. Candidates are
    tried in the order given, so put the most aggressive reductions first
    (e.g. "1 thread" before "n−1 threads"). *)

let minimize ~(smaller : 'c -> 'c list) ~(fails : 'c -> bool) (c0 : 'c) : 'c =
  let rec descend c steps =
    (* hard cap: a [smaller] that is accidentally non-decreasing must not
       spin forever *)
    if steps > 10_000 then c
    else
      match List.find_opt fails (smaller c) with
      | Some c' -> descend c' (steps + 1)
      | None -> c
  in
  descend c0 0
