(** Explorer-checked minimal-flush inference — the engine behind the CLI's
    [optimize-persist] subcommand.

    The persistency-policy layer ([Nvm.Persist]) can weaken any flush or
    fence site: elide it, downgrade a CLFLUSH to a CLWB, or defer a fence.
    Most weakenings are unsound — the whole point of the seed's protocol is
    that every one of those instructions is load-bearing. But a few are
    provably not: the combiner's phase-1 payload fence is subsumed by the
    phase-2 fence (the same argument that justifies the FliT batched path),
    and the build-time zero-initialisation flushes write values the media
    already holds. This module *derives* that set instead of trusting a
    human: it measures which sites are hot, proposes one-site weakenings
    hottest-first, and admits a weakening only when two independent oracles
    agree it is invisible:

    - the bounded-exhaustive explorer ([Explore]) must finish its scope
      {e exhausted} — every interleaving, every crash frontier — with zero
      durable-linearizability violations under the candidate policy; and
    - a differential fuzz soak must (a) reproduce the baseline's crash-free
      run exactly (same logged/completed/applied counts — the policy may
      remove persistence work, never change execution semantics) and
      (b) survive a plan of randomized crash points violation-free.

    Rejected candidates are kept in the report with a replayable repro
    command: each one is a machine-found planted fault, and CI replays the
    canonical rejection (the completedTail elision, the same bug as
    [Config.Elide_ct_flush]) to prove the oracles keep their teeth.

    The search is greedy and monotone: admitted weakenings stay in the
    policy while later candidates are tried on top, so the final policy as
    a whole — not just each step in isolation — is exactly what the last
    admitted trial verified. *)

open Nvm

(* ---- verdicts ---- *)

type verdict =
  | Admitted
  | Rejected_explorer of string
      (** the explorer found a durable-linearizability violation; payload
          is its description *)
  | Rejected_fuzz of string
      (** the fuzz soak found a violating episode; payload describes it *)
  | Rejected_differential
      (** the crash-free run diverged from the baseline — the weakening
          perturbed execution itself, not just persistence *)
  | Unproven
      (** the explorer hit a budget/depth/frontier cap before exhausting
          the scope: no violation seen, but nothing proven either *)

let verdict_name = function
  | Admitted -> "admitted"
  | Rejected_explorer _ -> "rejected-explorer"
  | Rejected_fuzz _ -> "rejected-fuzz"
  | Rejected_differential -> "rejected-differential"
  | Unproven -> "unproven"

let verdict_detail = function
  | Admitted | Rejected_differential | Unproven -> None
  | Rejected_explorer s | Rejected_fuzz s -> Some s

(** One candidate weakening and what the oracles said about it. *)
type decision = {
  d_site : Persist.site;
  d_action : Persist.action;
  d_weight : int;  (** measured emitted instructions at the site *)
  d_verdict : verdict;
  d_repro : string option;
      (** for rejections: a copy-pasteable command that replays the
          violation under the offending one-site policy *)
}

type report = {
  r_policy : Persist.policy;  (** the proven minimal policy *)
  r_decisions : decision list;  (** trial order: hottest site first *)
  r_measured : (Persist.site * string * int) list;
      (** per-(site, primitive) emitted counts from the baseline
          measurement run, descending *)
  r_baseline_flushes : int;  (** emitted CLWB+CLFLUSH, baseline measure run *)
  r_policy_flushes : int;  (** same workload under the proven policy *)
  r_baseline_fences : int;
  r_policy_fences : int;
  r_exhausted : bool;
      (** the final admitted policy's explorer run was exhausted (always
          true when any site was admitted; true for the trivial empty
          policy only if the baseline scope itself exhausts) *)
}

let flush_metrics = [ "clwb"; "clflush" ]
let fence_metrics = [ "sfence" ]
let measured_metrics = flush_metrics @ fence_metrics @ [ "wbinvd"; "flush_arena" ]

(* ---- report JSON (emitted next to the policy JSON artifact) ---- *)

let report_to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"prep.persist-report/1\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"baseline\": { \"flushes\": %d, \"fences\": %d },\n"
       r.r_baseline_flushes r.r_baseline_fences);
  Buffer.add_string b
    (Printf.sprintf "  \"policy\": { \"flushes\": %d, \"fences\": %d },\n"
       r.r_policy_flushes r.r_policy_fences);
  Buffer.add_string b
    (Printf.sprintf "  \"exhausted\": %b,\n" r.r_exhausted);
  Buffer.add_string b "  \"admitted\": {";
  let ws = Persist.weakenings r.r_policy in
  List.iteri
    (fun i (s, a) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n    %S: %S" (Persist.to_string s)
           (Persist.action_to_string a)))
    ws;
  if ws <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "},\n";
  Buffer.add_string b "  \"decisions\": [";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n    { \"site\": %S, \"action\": %S, \"weight\": %d, \
            \"verdict\": %S%s%s }"
           (Persist.to_string d.d_site)
           (Persist.action_to_string d.d_action)
           d.d_weight (verdict_name d.d_verdict)
           (match verdict_detail d.d_verdict with
            | None -> ""
            | Some det -> Printf.sprintf ", \"detail\": %S" det)
           (match d.d_repro with
            | None -> ""
            | Some rc -> Printf.sprintf ", \"repro\": %S" rc)))
    r.r_decisions;
  if r.r_decisions <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "],\n";
  Buffer.add_string b "  \"measured\": [";
  List.iteri
    (fun i (s, prim, n) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n    { \"site\": %S, \"prim\": %S, \"count\": %d }"
           (Persist.to_string s) prim n))
    r.r_measured;
  if r.r_measured <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "]\n}\n";
  Buffer.contents b

module Make (Ds : Seqds.Ds_intf.S) = struct
  module F = Fuzz.Make (Ds)
  module E = Explore.Make (Ds)

  (* Per-(site, primitive) emitted counts from one instrumented run.
     Telemetry recording is cost- and schedule-neutral, so the measured run
     is the same run the fuzz soak replays. *)
  let measure ?persist_policy ~flags ~mode ~gen_op template =
    let reg = Telemetry.Registry.create () in
    let out =
      Telemetry.Registry.with_current reg (fun () ->
          let flit, dist_rw, log_mirror, slot_bitmap, detect, lsm_ckpt =
            flags
          in
          F.run_episode ~flit ~dist_rw ~log_mirror ~slot_bitmap ~detect
            ~lsm_ckpt ?persist_policy ~mode ~fault:Prep.Config.No_fault
            ~gen_op
            { template with Fuzz.crash = Fuzz.No_crash })
    in
    let snap = Telemetry.Registry.snapshot reg in
    let table =
      List.filter_map
        (fun (name, v) ->
          match Persist.split_counter name with
          | Some (metric, site) when List.mem metric measured_metrics ->
            Some (site, metric, v)
          | Some _ | None -> None)
        snap.Telemetry.Registry.sn_counters
    in
    (out, List.sort (fun (_, _, a) (_, _, b) -> compare b a) table)

  let total metrics table =
    List.fold_left
      (fun acc (_, m, v) -> if List.mem m metrics then acc + v else acc)
      0 table

  (* Weakening ladder for one site, strongest first, from the primitives it
     actually emitted. WBINVD / arena walks are the checkpoint write-back
     mechanism itself — nothing to weaken below a whole-replica flush — so
     they generate no candidates. *)
  let ladder prims =
    let has p = List.mem p prims in
    if has "clflush" then [ Persist.Elide; Persist.Downgrade_to_clwb ]
    else if has "clwb" && has "sfence" then
      [ Persist.Elide; Persist.Defer_to_next_fence ]
    else if has "clwb" then [ Persist.Elide ]
    else if has "sfence" then [ Persist.Defer_to_next_fence ]
    else []

  (* Candidate sites, hottest first (site index breaks ties, for
     determinism), each with its action ladder and total weight. *)
  let candidates table =
    let by_site = Hashtbl.create 16 in
    List.iter
      (fun (site, prim, v) ->
        let prims, w =
          match Hashtbl.find_opt by_site site with
          | Some (ps, w) -> (ps, w)
          | None -> ([], 0)
        in
        Hashtbl.replace by_site site (prim :: prims, w + v))
      table;
    Hashtbl.fold
      (fun site (prims, w) acc ->
        match ladder prims with [] -> acc | l -> (site, w, l) :: acc)
      by_site []
    |> List.sort (fun (s1, w1, _) (s2, w2, _) ->
           if w1 <> w2 then compare w2 w1
           else compare (Persist.index s1) (Persist.index s2))

  let spec_of_trial trial = Persist.to_spec trial

  (* Repro command for an explorer rejection: replay the violating decision
     trace under the one-site policy that produced it. *)
  let explore_repro ~ds ~mode ~scope ~spec decisions crash =
    Printf.sprintf
      "dune exec bin/prep_cli.exe -- explore --variant %s --ds %s --threads \
       %d --ops %d --epsilon %d --log-size %d --seed %d --sockets %d --cores \
       %d%s --persist-policy \"%s\" --replay '%s'%s"
      (Fuzz.variant_name mode) ds scope.Explore.threads
      scope.Explore.ops_per_worker scope.Explore.epsilon
      scope.Explore.log_size scope.Explore.seed scope.Explore.sockets
      scope.Explore.cores_per_socket
      (if scope.Explore.persistence then "" else " --no-persistence")
      spec
      (Explore.decisions_to_string decisions)
      (match crash with
       | None -> ""
       | Some (step, mask) ->
         Printf.sprintf " --crash-step %d --frontier %d" step mask)

  (* Both oracles on one candidate policy. The explorer must exhaust its
     scope clean; the fuzz soak must match the baseline crash-free run and
     survive its crash plan. *)
  let check ~flags ~mode ~gen_op ~scope ~budget ~template ~fuzz_iters ~ds
      ~baseline trial =
    let flit, dist_rw, log_mirror, slot_bitmap, detect, lsm_ckpt = flags in
    let spec = spec_of_trial trial in
    let eres =
      E.explore ~flit ~dist_rw ~log_mirror ~slot_bitmap ~detect ~lsm_ckpt
        ~persist_policy:trial ~budget ~mode ~fault:Prep.Config.No_fault
        ~gen_op ~scope ()
    in
    match eres.Explore.violation with
    | Some v ->
      let desc =
        String.concat "; "
          (List.map Durable_lin.violation_to_string v.Explore.v_violations)
      in
      ( Rejected_explorer desc,
        Some
          (explore_repro ~ds ~mode ~scope ~spec v.Explore.v_decisions
             v.Explore.v_crash) )
    | None when not eres.Explore.exhausted -> (Unproven, None)
    | None ->
      (* differential: crash-free semantics must be byte-identical *)
      let out =
        F.run_episode ~flit ~dist_rw ~log_mirror ~slot_bitmap ~detect
          ~lsm_ckpt ~persist_policy:trial ~mode ~fault:Prep.Config.No_fault
          ~gen_op
          { template with Fuzz.crash = Fuzz.No_crash }
      in
      let same (a : Fuzz.outcome) (b : Fuzz.outcome) =
        a.Fuzz.logged = b.Fuzz.logged
        && a.Fuzz.completed = b.Fuzz.completed
        && a.Fuzz.applied = b.Fuzz.applied
        && a.Fuzz.violations = [] && b.Fuzz.violations = []
      in
      if not (same out baseline) then (Rejected_differential, None)
      else begin
        let fres =
          F.fuzz ~flit ~dist_rw ~log_mirror ~slot_bitmap ~detect ~lsm_ckpt
            ~persist_policy:trial ~mode ~fault:Prep.Config.No_fault ~gen_op
            ~template ~iters:fuzz_iters ()
        in
        match fres.Fuzz.failures with
        | [] -> (Admitted, None)
        | f :: _ ->
          let repro =
            Fuzz.repro_command ~flit ~dist_rw ~log_mirror ~slot_bitmap
              ~detect ~lsm_ckpt ~persist_policy:trial ~mode
              ~fault:Prep.Config.No_fault ~ds f.Fuzz.episode
          in
          ( Rejected_fuzz (Format.asprintf "%a" Fuzz.pp_episode f.Fuzz.episode),
            Some repro )
      end

  (** Run the full inference: measure, rank, greedily weaken, prove.
      [scope]/[budget] bound the explorer oracle; [template]/[fuzz_iters]
      drive the measurement run and the fuzz soak; [ds] names the data
      structure in emitted repro commands. Returns the proven policy and
      the full decision log. *)
  let infer ?(flit = false) ?(dist_rw = false) ?(log_mirror = false)
      ?(slot_bitmap = false) ?(detect = false) ?(lsm_ckpt = false)
      ?(log = fun (_ : string) -> ()) ~mode ~gen_op ~scope ~budget ~template
      ~fuzz_iters ~ds () =
    let flags = (flit, dist_rw, log_mirror, slot_bitmap, detect, lsm_ckpt) in
    let baseline, table = measure ~flags ~mode ~gen_op template in
    if baseline.Fuzz.violations <> [] then
      invalid_arg
        "Persist_infer: baseline run violates durable linearizability — \
         nothing to optimize";
    let base_flush = total flush_metrics table in
    let base_fence = total fence_metrics table in
    log
      (Printf.sprintf
         "measured baseline: %d flushes, %d fences across %d (site, prim) \
          pairs"
         base_flush base_fence (List.length table));
    let cands = candidates table in
    log
      (Printf.sprintf "candidate sites (hottest first): %s"
         (String.concat ", "
            (List.map
               (fun (s, w, _) ->
                 Printf.sprintf "%s(%d)" (Persist.to_string s) w)
               cands)));
    let policy = Persist.default () in
    let decisions = ref [] in
    let exhausted_final = ref false in
    let record d = decisions := d :: !decisions in
    List.iter
      (fun (site, weight, actions) ->
        let rec attempt = function
          | [] -> ()
          | action :: rest ->
            let trial = Persist.copy policy in
            Persist.set trial site action;
            log
              (Printf.sprintf "trying %s=%s (weight %d)..."
                 (Persist.to_string site)
                 (Persist.action_to_string action)
                 weight);
            let verdict, repro =
              check ~flags ~mode ~gen_op ~scope ~budget ~template ~fuzz_iters
                ~ds ~baseline trial
            in
            record
              { d_site = site; d_action = action; d_weight = weight;
                d_verdict = verdict; d_repro = repro };
            (match verdict with
             | Admitted ->
               Persist.set policy site action;
               exhausted_final := true;
               log
                 (Printf.sprintf "  ADMITTED %s=%s (explorer exhausted, \
                                  fuzz clean)"
                    (Persist.to_string site)
                    (Persist.action_to_string action))
             | v ->
               log
                 (Printf.sprintf "  rejected %s=%s: %s"
                    (Persist.to_string site)
                    (Persist.action_to_string action)
                    (verdict_name v));
               attempt rest)
        in
        attempt actions)
      cands;
    (* re-measure the same workload under the proven policy *)
    let _, ptable =
      measure ~persist_policy:policy ~flags ~mode ~gen_op template
    in
    let pol_flush = total flush_metrics ptable in
    let pol_fence = total fence_metrics ptable in
    log
      (Printf.sprintf
         "proven policy: %d weakenings; flushes %d -> %d, fences %d -> %d"
         (List.length (Persist.weakenings policy))
         base_flush pol_flush base_fence pol_fence);
    {
      r_policy = policy;
      r_decisions = List.rev !decisions;
      r_measured = table;
      r_baseline_flushes = base_flush;
      r_policy_flushes = pol_flush;
      r_baseline_fences = base_fence;
      r_policy_fences = pol_fence;
      r_exhausted = !exhausted_final;
    }
end
