(** Bounded exhaustive schedule-and-crash exploration of the sharded
    construction ([Prep.Sharded_uc]).

    The DFS machinery is [Explore]'s — controlled-scheduler choice points,
    await-transformation parking, cache-line sleep sets, state-hash dedup,
    Gray-coded crash-frontier enumeration — specialised to a multi-shard
    system under test:

    - the ghost state spans every shard (all stop flags, traces and
      next-seq tables) plus the router's transaction ghost (the intent
      registry and txid counter), so state dedup distinguishes runs that
      differ only in transaction progress;
    - every crash frontier is judged as ONE history: per-shard
      [Durable_lin] checks at loss bound 0 with rolled-back prepares
      excused, plus the cross-shard [Durable_lin.check_atomicity] audit —
      the same oracle as [Fuzz_shard], here applied exhaustively;
    - the planted [Config.Commit_before_prepare_persist] fault is found
      deterministically, with a decision trace + (step, frontier mask)
      that [replay] reproduces bit-for-bit.

    Oracle verdicts are a function of (media image, per-shard ghost
    traces, intent registry, config), so crash-state dedup keys on
    exactly that. Volatile/buffered modes don't exist here: sharding is
    durable-only. *)

open Explore

module Make (Ds : Seqds.Ds_intf.S) = struct
  (* Sharing [Fuzz_shard]'s instantiation makes its oracle directly
     applicable (applicative functors: the [S.t]s are equal). *)
  module FS = Fuzz_shard.Make (Ds)
  module S = FS.S
  open Nvm

  let topology (s : scope) =
    { Sim.Topology.sockets = s.sockets; cores_per_socket = s.cores_per_socket }

  let max_threads scope = (scope.sockets * scope.cores_per_socket) - 1

  let gen_workload ~gen_op ~scope =
    let rng = Sim.Rng.create (Int64.of_int ((scope.seed * 1_000_003) + 11)) in
    Array.init scope.threads (fun _ ->
        List.init scope.ops_per_worker (fun _ -> gen_op rng))

  let trace_hash trace =
    let n = Prep.Trace.length trace in
    let h = ref (mix n) in
    for i = 0 to n - 1 do
      let e = Prep.Trace.get trace i in
      h :=
        h2 !h
          (h2 e.Prep.Trace.op
             (h2
                (Array.fold_left h2 0 e.Prep.Trace.args)
                (h2
                   (if e.Prep.Trace.completed then 1 else 0)
                   (h2 e.Prep.Trace.tid e.Prep.Trace.seqno))))
    done;
    !h

  (* order-independent hash of the transaction ghost (Hashtbl iteration
     order must not leak into state keys) *)
  let txn_ghost_hash (uc : S.t) =
    let acc = ref (mix uc.S.next_txid) in
    Hashtbl.iter
      (fun txid parts ->
        acc := !acc lxor h2 txid (List.fold_left h2 0 parts))
      uc.S.txn_intent;
    !acc

  let shards_ghost_hash ~nshards (uc : S.t) =
    let h = ref (txn_ghost_hash uc) in
    for i = 0 to nshards - 1 do
      let sh = S.shard uc i in
      h :=
        h2 !h
          (h2
             (if sh.S.P.stop_flag then 1 else 0)
             (h2 (trace_hash sh.S.P.trace)
                (Array.fold_left h2 0 sh.S.P.next_seq)))
    done;
    !h

  (* Recover the whole sharded system on the current (post-crash) memory in
     a fresh nested simulation. *)
  let run_recovery ~scope uc =
    let saved_ctx = Context.save () in
    Context.reset ();
    let sim2 = Sim.create ~seed:97L (topology scope) in
    let out = ref None in
    ignore (Sim.spawn sim2 ~socket:0 (fun () -> out := Some (S.recover uc)));
    (match Sim.run sim2 () with
     | `Done -> ()
     | `Cut _ -> failwith "Explore_shard: recovery did not finish");
    Context.restore saved_ctx;
    Option.get !out

  let sum_over n f = List.init n f |> List.fold_left ( + ) 0

  (** Explore every interleaving and every reachable crash frontier of a
      small-scope sharded workload (mode is always [Durable]; [fault] is
      [No_fault] or [Commit_before_prepare_persist]). Stops at the first
      violation or when the bounded space is exhausted. *)
  let explore ?(budget = default_budget) ~nshards ~fault ~gen_op ~scope () =
    if scope.threads < 1 || scope.threads > max_threads scope then
      invalid_arg "Explore_shard: thread count out of range";
    let workload = gen_workload ~gen_op ~scope in
    let stats = new_stats () in
    let seen_states : (int, (int * int) list list) Hashtbl.t =
      Hashtbl.create 4096
    in
    let seen_crash : (int, unit) Hashtbl.t = Hashtbl.create 4096 in
    let seen_frontier_base : (int, unit) Hashtbl.t = Hashtbl.create 4096 in
    let terminal_states : (int list, unit) Hashtbl.t = Hashtbl.create 64 in
    let path : node list ref = ref [] in
    let budget_hit = ref false in
    let depth_cut = ref false in
    let truncated = ref false in

    let run_once () =
      let prefix_nodes = Array.of_list (List.rev !path) in
      let process_from = Array.length prefix_nodes - 1 in
      let sim = Sim.create (topology scope) in
      let mem =
        Memory.make
          ~seed:(Int64.of_int (scope.seed + 7919))
          ~sockets:scope.sockets ~bg_period:0 ()
      in
      let uc_ref = ref None in
      let runtime = ref false in
      let done_count = ref 0 in
      let chains : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let started : (int, unit) Hashtbl.t = Hashtbl.create 16 in
      let parked : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let iter_start : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let write_version = ref 0 in
      let last_ghost = ref 0 in
      let cur_fp : fp ref = ref [] in
      let hook key addr write value =
        let fid = (Sim.self ()).Sim.fid in
        cur_fp := (key, write) :: !cur_fp;
        if write then incr write_version;
        let av = h2 addr (h2 key (h2 (if write then 1 else 0) value)) in
        Hashtbl.replace chains fid
          (h2 (Option.value ~default:0 (Hashtbl.find_opt chains fid)) av)
      in
      Memory.set_access_hook mem hook;
      Sim.set_spin_hook sim (fun fid ->
          Hashtbl.replace parked fid
            (Option.value ~default:(-1) (Hashtbl.find_opt iter_start fid)));
      let decision_idx = ref 0 in
      let step_idx = ref 0 in
      let decisions_rev = ref [] in
      let pending_sleep : (int * fp) list ref = ref [] in
      let attr_node : node option ref = ref None in

      let ghost_hash () =
        let uc_ghost =
          match !uc_ref with
          | Some uc -> shards_ghost_hash ~nshards uc
          | None -> 0
        in
        h2 !done_count uc_ghost
      in
      let state_key enabled =
        let h =
          ref
            (h2 (Memory.value_hash mem)
               (h2 (Memory.media_hash mem)
                  (h2 (Memory.dirty_hash mem) (Memory.wpq_hash mem))))
        in
        h := h2 !h (ghost_hash ());
        Array.iter
          (fun fid ->
            let chain = Option.value ~default:0 (Hashtbl.find_opt chains fid) in
            let fextra =
              match Sim.find_fiber sim fid with
              | Some f ->
                h2
                  ((if f.Sim.palloc then 2 else 0)
                  + (if Hashtbl.mem started fid then 1 else 0))
                  (Int64.to_int f.Sim.frng.Sim.Rng.state)
              | None -> 0
            in
            h := h2 !h (h2 fid (h2 chain fextra)))
          enabled;
        !h
      in

      let check_crash uc ~snap ~lines ~mask ~this_step =
        stats.recoveries <- stats.recoveries + 1;
        Memory.clear_access_hook mem;
        Array.iteri
          (fun b key ->
            if mask land (1 lsl b) <> 0 then Memory.commit_line mem key)
          lines;
        Memory.crash mem;
        let uc', reports = run_recovery ~scope uc in
        let violations = FS.crash_checks ~nshards uc uc' reports in
        (* adjusted completed-op loss for the stats: rolled-back prepares
           are excused, everything else in durable mode must survive *)
        let lost =
          sum_over nshards (fun i ->
              let trace = S.trace uc i in
              let applied = Hashtbl.create 64 in
              List.iter
                (fun x -> Hashtbl.replace applied x ())
                reports.(i).Prep.Prep_uc.applied;
              List.length
                (List.filter
                   (fun idx ->
                     (not (Hashtbl.mem applied idx))
                     &&
                     let e = Prep.Trace.get trace idx in
                     (not (Prep.Sharded_uc.is_txn_op e.Prep.Trace.op))
                     || S.committed uc' e.Prep.Trace.args.(0))
                   (Prep.Trace.completed_indexes trace)))
        in
        if lost > stats.max_completed_loss then stats.max_completed_loss <- lost;
        Memory.restore mem snap;
        Memory.set_access_hook mem hook;
        if violations <> [] then
          raise
            (Violation_found
               {
                 v_decisions = List.rev !decisions_rev;
                 v_crash = Some (this_step, mask);
                 v_violations = violations;
                 v_logged =
                   sum_over nshards (fun i -> Prep.Trace.length (S.trace uc i));
                 v_completed =
                   sum_over nshards (fun i ->
                       List.length
                         (Prep.Trace.completed_indexes (S.trace uc i)));
                 v_applied =
                   Array.fold_left
                     (fun acc r -> acc + List.length r.Prep.Prep_uc.applied)
                     0 reports;
               })
      in

      let enumerate_crash_frontiers uc this_step =
        let dirty = Memory.dirty_nvm_line_keys mem in
        let k_all = List.length dirty in
        let k = min k_all budget.max_frontier_lines in
        if k_all > k then begin
          truncated := true;
          stats.frontier_truncations <- stats.frontier_truncations + 1
        end;
        let lines = Array.of_list dirty in
        let lines = Array.sub lines 0 k in
        let deltas = Array.map (Memory.line_commit_delta mem) lines in
        let base_media = Memory.media_hash mem in
        let th =
          h2
            (sum_over nshards (fun i -> trace_hash (S.trace uc i) lxor mix i))
            (txn_ghost_hash uc)
        in
        let base_key =
          h2 base_media (h2 th (Array.fold_left h2 (mix k) deltas))
        in
        if not (Hashtbl.mem seen_frontier_base base_key) then begin
          Hashtbl.add seen_frontier_base base_key ();
          stats.crash_points <- stats.crash_points + 1;
          let snap = ref None in
          let cur = ref 0 in
          let prev_gray = ref 0 in
          for i = 0 to (1 lsl k) - 1 do
            let gray = i lxor (i lsr 1) in
            let changed = gray lxor !prev_gray in
            if changed <> 0 then begin
              let b = ref 0 in
              while changed land (1 lsl !b) = 0 do
                incr b
              done;
              cur := !cur lxor deltas.(!b)
            end;
            prev_gray := gray;
            stats.frontiers <- stats.frontiers + 1;
            let sg = h2 (base_media lxor !cur) th in
            if not (Hashtbl.mem seen_crash sg) then begin
              Hashtbl.add seen_crash sg ();
              let snap =
                match !snap with
                | Some s -> s
                | None ->
                  let s = Memory.snapshot mem in
                  snap := Some s;
                  s
              in
              check_crash uc ~snap ~lines ~mask:gray ~this_step
            end
          done
        end
      in

      let chooser (enabled : int array) : int =
        let pick fid =
          if Hashtbl.mem parked fid then begin
            Hashtbl.replace iter_start fid !write_version;
            Hashtbl.remove parked fid
          end;
          Hashtbl.replace started fid ();
          fid
        in
        if not !runtime then pick enabled.(0)
        else begin
          let fp = !cur_fp in
          cur_fp := [];
          (match !attr_node with
           | Some n ->
             n.nd_fp <- fp;
             attr_node := None
           | None -> ());
          if fp <> [] && !pending_sleep <> [] then
            pending_sleep :=
              List.filter (fun (_, f) -> not (fp_conflict f fp)) !pending_sleep;
          let this_step = !step_idx in
          incr step_idx;
          stats.steps <- stats.steps + 1;
          if !step_idx > budget.max_steps then begin
            depth_cut := true;
            stats.depth_cutoffs <- stats.depth_cutoffs + 1;
            raise Pruned
          end;
          let processing = !decision_idx > process_from in
          let gh = ghost_hash () in
          if gh <> !last_ghost then begin
            last_ghost := gh;
            incr write_version
          end;
          let eligible =
            Array.to_list enabled
            |> List.filter (fun fid ->
                   match Hashtbl.find_opt parked fid with
                   | Some v when v = !write_version -> false
                   | _ -> true)
          in
          if eligible = [] then begin
            stats.stutter_cuts <- stats.stutter_cuts + 1;
            raise Pruned
          end;
          let eligible = Array.of_list eligible in
          if processing then begin
            (match !uc_ref with
             | Some uc -> enumerate_crash_frontiers uc this_step
             | None -> ());
            if Array.length eligible > 1 then begin
              let fresh_state = ref true in
              if scope.prune then begin
                let key = state_key enabled in
                let sig_of_sleep sl =
                  List.map
                    (fun (fid, f) ->
                      ( fid,
                        List.fold_left
                          (fun acc (k, w) -> acc lxor h2 k (if w then 1 else 0))
                          0 f ))
                    sl
                  |> List.sort_uniq compare
                in
                let s = sig_of_sleep !pending_sleep in
                let subset c = List.for_all (fun x -> List.mem x s) c in
                (match Hashtbl.find_opt seen_states key with
                 | Some cached when List.exists subset cached ->
                   stats.dedup_hits <- stats.dedup_hits + 1;
                   raise Pruned
                 | Some cached ->
                   fresh_state := false;
                   let cached =
                     List.filter
                       (fun c -> not (List.for_all (fun x -> List.mem x c) s))
                       cached
                   in
                   Hashtbl.replace seen_states key (s :: cached)
                 | None -> Hashtbl.add seen_states key [ s ])
              end;
              if !fresh_state then stats.states <- stats.states + 1;
              if stats.states >= budget.max_states then begin
                budget_hit := true;
                raise Budget_exhausted
              end
            end
          end;
          if Array.length eligible = 1 then pick eligible.(0)
          else if not processing then begin
            let n = prefix_nodes.(!decision_idx) in
            if n.nd_enabled <> eligible then
              failwith "Explore_shard: replay divergence (internal invariant)";
            incr decision_idx;
            decisions_rev := n.nd_choice :: !decisions_rev;
            pending_sleep := n.nd_sleep;
            attr_node := Some n;
            pick n.nd_choice
          end
          else begin
            let sleep = !pending_sleep in
            let asleep fid = List.exists (fun (q, _) -> q = fid) sleep in
            match
              Array.to_list eligible |> List.filter (fun f -> not (asleep f))
            with
            | [] ->
              stats.sleep_skips <- stats.sleep_skips + Array.length eligible;
              raise Pruned
            | c :: _ ->
              let n =
                {
                  nd_enabled = eligible;
                  nd_sleep = sleep;
                  nd_tried = [];
                  nd_choice = c;
                  nd_fp = [];
                }
              in
              path := n :: !path;
              incr decision_idx;
              decisions_rev := c :: !decisions_rev;
              attr_node := Some n;
              pick c
          end
        end
      in
      Sim.set_chooser sim chooser;
      ignore
        (Sim.spawn sim ~socket:0 (fun () ->
             let roots = Roots.make mem in
             let cfg =
               Prep.Config.make ~mode:Prep.Config.Durable
                 ~log_size:scope.log_size ~epsilon:scope.epsilon
                 ~shards:nshards ~fault ~workers:scope.threads ()
             in
             let uc = S.create mem roots cfg in
             uc_ref := Some uc;
             if scope.persistence then S.start_persistence uc;
             for w = 0 to scope.threads - 1 do
               let socket, core = Sim.Topology.place (topology scope) w in
               let ops = workload.(w) in
               Sim.spawn_here ~socket ~core (fun () ->
                   S.register_worker uc;
                   List.iter
                     (fun (op, args) -> ignore (S.execute uc ~op ~args))
                     ops;
                   incr done_count)
             done;
             runtime := true;
             while !done_count < scope.threads do
               Sim.spin ()
             done;
             S.stop uc;
             S.sync uc));
      (match Sim.run sim () with `Done -> () | `Cut _ -> assert false);
      let uc = Option.get !uc_ref in
      stats.terminals <- stats.terminals + 1;
      let snapshot = S.snapshot uc in
      Hashtbl.replace terminal_states snapshot ();
      let violations = ref [] in
      for i = 0 to nshards - 1 do
        let trace = S.trace uc i in
        let n = Prep.Trace.length trace in
        violations :=
          !violations
          @ FS.Dl.check ~trace ~prefill:(S.prefill_ops uc i)
              ~applied:(List.init n Fun.id)
              ~completed:(Prep.Trace.completed_indexes trace)
              ~recovered_snapshot:(S.P.snapshot (S.shard uc i)) ~loss_bound:0
              ()
      done;
      Hashtbl.iter
        (fun txid parts ->
          if not (S.committed uc txid) then
            violations :=
              Durable_lin.Atomicity_violation
                { txid; committed = false; shard = List.hd parts }
              :: !violations)
        uc.S.txn_intent;
      if !violations <> [] then
        raise
          (Violation_found
             {
               v_decisions = List.rev !decisions_rev;
               v_crash = None;
               v_violations = !violations;
               v_logged =
                 sum_over nshards (fun i -> Prep.Trace.length (S.trace uc i));
               v_completed =
                 sum_over nshards (fun i ->
                     List.length (Prep.Trace.completed_indexes (S.trace uc i)));
               v_applied =
                 sum_over nshards (fun i -> Prep.Trace.length (S.trace uc i));
             })
    in

    let rec backtrack () =
      match !path with
      | [] -> false
      | n :: rest ->
        if scope.prune then begin
          let fp = if n.nd_fp = [] then [ (-1, true) ] else n.nd_fp in
          n.nd_sleep <- (n.nd_choice, fp) :: n.nd_sleep
        end;
        n.nd_tried <- n.nd_choice :: n.nd_tried;
        let asleep fid = List.exists (fun (q, _) -> q = fid) n.nd_sleep in
        let tried fid = List.mem fid n.nd_tried in
        (match
           Array.to_list n.nd_enabled
           |> List.filter (fun f -> not (tried f) && not (asleep f))
         with
         | c :: _ ->
           n.nd_choice <- c;
           n.nd_fp <- [];
           true
         | [] ->
           stats.sleep_skips <-
             stats.sleep_skips
             + (Array.length n.nd_enabled - List.length n.nd_tried);
           path := rest;
           backtrack ())
    in
    let violation = ref None in
    (try
       let continue = ref true in
       while !continue do
         if stats.schedules >= budget.max_schedules then begin
           budget_hit := true;
           continue := false
         end
         else begin
           stats.schedules <- stats.schedules + 1;
           (try run_once () with Pruned -> ());
           continue := backtrack ()
         end
       done
     with
    | Violation_found v -> violation := Some v
    | Budget_exhausted -> budget_hit := true);
    {
      stats;
      violation = !violation;
      terminal_states =
        List.sort compare
          (Hashtbl.fold (fun s () acc -> s :: acc) terminal_states []);
      exhausted =
        !violation = None && (not !budget_hit) && (not !depth_cut)
        && not !truncated;
    }

  (** Re-execute exactly one sharded schedule from its decision trace;
      optionally crash at [crash = (step, frontier_mask)], recover the
      whole system and re-judge. Deterministic: replaying a violation's
      trace reproduces its violation. *)
  let replay ~nshards ~fault ~gen_op ~scope ~decisions ?crash () =
    let workload = gen_workload ~gen_op ~scope in
    let decisions = Array.of_list decisions in
    let sim = Sim.create (topology scope) in
    let mem =
      Memory.make
        ~seed:(Int64.of_int (scope.seed + 7919))
        ~sockets:scope.sockets ~bg_period:0 ()
    in
    let uc_ref = ref None in
    let runtime = ref false in
    let done_count = ref 0 in
    let decision_idx = ref 0 in
    let step_idx = ref 0 in
    let parked : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let iter_start : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let write_version = ref 0 in
    let last_ghost = ref 0 in
    Memory.set_access_hook mem (fun _ _ write _ ->
        if write then incr write_version);
    Sim.set_spin_hook sim (fun fid ->
        Hashtbl.replace parked fid
          (Option.value ~default:(-1) (Hashtbl.find_opt iter_start fid)));
    let ghost_hash () =
      let uc_ghost =
        match !uc_ref with
        | Some uc -> shards_ghost_hash ~nshards uc
        | None -> 0
      in
      h2 !done_count uc_ghost
    in
    let chooser (enabled : int array) : int =
      if not !runtime then enabled.(0)
      else begin
        let this_step = !step_idx in
        incr step_idx;
        (match crash with
         | Some (s, mask) when this_step = s ->
           let lines = Array.of_list (Memory.dirty_nvm_line_keys mem) in
           Array.iteri
             (fun b key ->
               if mask land (1 lsl b) <> 0 then Memory.commit_line mem key)
             lines;
           raise Crash_now
         | _ -> ());
        let gh = ghost_hash () in
        if gh <> !last_ghost then begin
          last_ghost := gh;
          incr write_version
        end;
        let eligible =
          Array.to_list enabled
          |> List.filter (fun fid ->
                 match Hashtbl.find_opt parked fid with
                 | Some v when v = !write_version -> false
                 | _ -> true)
        in
        let eligible =
          if eligible = [] then enabled else Array.of_list eligible
        in
        let pick fid =
          if Hashtbl.mem parked fid then begin
            Hashtbl.replace iter_start fid !write_version;
            Hashtbl.remove parked fid
          end;
          fid
        in
        if Array.length eligible = 1 then pick eligible.(0)
        else if !decision_idx < Array.length decisions then begin
          let c = decisions.(!decision_idx) in
          incr decision_idx;
          if not (Array.exists (fun f -> f = c) eligible) then
            failwith
              "Explore_shard.replay: decision trace does not match execution";
          pick c
        end
        else pick eligible.(0)
      end
    in
    Sim.set_chooser sim chooser;
    ignore
      (Sim.spawn sim ~socket:0 (fun () ->
           let roots = Roots.make mem in
           let cfg =
             Prep.Config.make ~mode:Prep.Config.Durable
               ~log_size:scope.log_size ~epsilon:scope.epsilon ~shards:nshards
               ~fault ~workers:scope.threads ()
           in
           let uc = S.create mem roots cfg in
           uc_ref := Some uc;
           if scope.persistence then S.start_persistence uc;
           for w = 0 to scope.threads - 1 do
             let socket, core = Sim.Topology.place (topology scope) w in
             let ops = workload.(w) in
             Sim.spawn_here ~socket ~core (fun () ->
                 S.register_worker uc;
                 List.iter
                   (fun (op, args) -> ignore (S.execute uc ~op ~args))
                   ops;
                 incr done_count)
           done;
           runtime := true;
           while !done_count < scope.threads do
             Sim.spin ()
           done;
           S.stop uc;
           S.sync uc));
    let crashed =
      try
        (match Sim.run sim () with `Done -> () | `Cut _ -> assert false);
        false
      with Crash_now -> true
    in
    let uc = Option.get !uc_ref in
    let sum f = List.init nshards f |> List.fold_left ( + ) 0 in
    let logged = sum (fun i -> Prep.Trace.length (S.trace uc i)) in
    let completed =
      sum (fun i -> List.length (Prep.Trace.completed_indexes (S.trace uc i)))
    in
    if crashed then begin
      Memory.clear_access_hook mem;
      Memory.crash mem;
      Context.reset ();
      let sim2 = Sim.create ~seed:97L (topology scope) in
      let out = ref None in
      ignore (Sim.spawn sim2 ~socket:0 (fun () -> out := Some (S.recover uc)));
      (match Sim.run sim2 () with
       | `Done -> ()
       | `Cut _ -> failwith "Explore_shard.replay: recovery did not finish");
      let uc', reports = Option.get !out in
      let violations = FS.crash_checks ~nshards uc uc' reports in
      ( violations,
        true,
        logged,
        completed,
        Array.fold_left
          (fun acc r -> acc + List.length r.Prep.Prep_uc.applied)
          0 reports )
    end
    else begin
      let violations = ref [] in
      for i = 0 to nshards - 1 do
        let trace = S.trace uc i in
        let n = Prep.Trace.length trace in
        violations :=
          !violations
          @ FS.Dl.check ~trace ~prefill:(S.prefill_ops uc i)
              ~applied:(List.init n Fun.id)
              ~completed:(Prep.Trace.completed_indexes trace)
              ~recovered_snapshot:(S.P.snapshot (S.shard uc i)) ~loss_bound:0
              ()
      done;
      (!violations, false, logged, completed, logged)
    end
end
