(** Crash-point fuzzing for the PREP-UC durability guarantees.

    The seed tests crash at a handful of hand-picked simulated times; the
    hazards the paper warns about (a background cache write-back
    persisting a mid-update replica, §2.2/§4.1) can strike at *any* memory
    operation. This driver explores that space systematically:

    - run a seeded workload in the simulator with randomized preemption
      ([Sim.create ~preempt_prob]);
    - inject a full-system power failure at a randomly chosen point —
      either a simulated time ([Sim.run ~until]) or an exact memory-
      operation index (the crash hook of [Nvm.Memory]);
    - recover, and judge the recovered state with [Durable_lin]: loss
      bound (ε+β−1 buffered, 0 durable), prefix consistency, application
      order, and state-vs-model replay;
    - on failure, [shrink] minimizes (threads, crash point, work) to the
      smallest episode that still reproduces, and [repro_command] prints a
      replayable CLI invocation.

    Everything is a deterministic function of the episode parameters, so a
    CI budget of episodes explores fresh crash points per seed without
    flakiness, and every failure is replayable from its printed command. *)

exception Crash_injected

type crash_point =
  | At_op of int
      (** power failure immediately before the [n]-th memory operation
          issued after construction finished *)
  | At_time of int  (** power failure at this simulated time, ns *)
  | No_crash  (** run to quiescence; check the final state instead *)

type episode = {
  workload_seed : int;  (** seeds the scheduler, workload and bg flushes *)
  threads : int;
  epsilon : int;
  log_size : int;
  ops_per_worker : int;
  bg_period : int;  (** mean ops between background cache write-backs *)
  preempt_prob : float;  (** forced-preemption chance per tick *)
  crash : crash_point;
}

type outcome = {
  crashed : bool;
  vacuous : bool;
      (** the crash hit before construction finished: nothing to check *)
  violations : Durable_lin.violation list;
  logged : int;  (** trace length at the crash/end *)
  completed : int;
  applied : int;  (** ops present in the recovered (or final) state *)
  runtime_ops : int;  (** memory operations issued after construction *)
  end_time : int;  (** simulated ns at quiescence (0 if crashed) *)
}

type failure = { episode : episode; violations : Durable_lin.violation list }

type result = { episodes : int; crashes : int; failures : failure list }

let crash_flag = function
  | At_op n -> Printf.sprintf "--crash-op %d" n
  | At_time ns -> Printf.sprintf "--crash-at %d" ns
  | No_crash -> "--no-crash"

let variant_name = function
  | Prep.Config.Volatile -> "volatile"
  | Prep.Config.Buffered -> "buffered"
  | Prep.Config.Durable -> "durable"

(** A copy-pasteable replay of [ep]: runs exactly one episode. *)
let repro_command ?(flit = false) ?(dist_rw = false) ?(log_mirror = false)
    ?(slot_bitmap = false) ?(detect = false) ?(lsm_ckpt = false)
    ?persist_policy ~mode ~fault ~ds ep =
  Printf.sprintf
    "dune exec bin/prep_cli.exe -- fuzz --variant %s --ds %s --threads %d \
     --epsilon %d --log-size %d --ops %d --seed %d --fault %s%s%s%s%s%s%s%s %s"
    (variant_name mode) ds ep.threads ep.epsilon ep.log_size ep.ops_per_worker
    ep.workload_seed (Prep.Config.fault_name fault)
    (if flit then " --flit" else "")
    (if dist_rw then " --dist-rw" else "")
    (if log_mirror then " --log-mirror" else "")
    (if slot_bitmap then " --slot-bitmap" else "")
    (if detect then " --detect" else "")
    (if lsm_ckpt then " --lsm-ckpt" else "")
    (match persist_policy with
     | Some p when not (Nvm.Persist.is_default p) ->
         Printf.sprintf " --persist-policy \"%s\"" (Nvm.Persist.to_spec p)
     | Some _ | None -> "")
    (crash_flag ep.crash)

let pp_episode ppf ep =
  Fmt.pf ppf "seed=%d threads=%d epsilon=%d ops=%d %s" ep.workload_seed
    ep.threads ep.epsilon ep.ops_per_worker (crash_flag ep.crash)

module Make (Ds : Seqds.Ds_intf.S) = struct
  module Uc = Prep.Prep_uc.Make (Ds)
  module Dl = Durable_lin.Make (Ds.Model)
  open Nvm

  (* Small fixed machine: plenty of cross-socket traffic, fast episodes.
     Worker count is capped at total cores − 1 (persistence thread). *)
  let topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 }
  let beta = topology.Sim.Topology.cores_per_socket
  let max_threads = Sim.Topology.total_cores topology - 1

  (** Run one episode: workload, optional crash, recovery, checks.
      [gen_op] draws one (op, args) pair from the fiber's rng. [flit],
      [dist_rw], [log_mirror], [slot_bitmap] and [lsm_ckpt] fuzz the
      corresponding gated layer instead of the baseline; [detect] additionally
      drives the announce/response protocol and, after a crash, judges
      every thread's [resolve] verdict against ghost truth. *)
  let run_episode ?(flit = false) ?(dist_rw = false) ?(log_mirror = false)
      ?(slot_bitmap = false) ?(detect = false) ?(lsm_ckpt = false)
      ?persist_policy ~mode ~fault ~gen_op ep =
    if ep.threads < 1 || ep.threads > max_threads then
      invalid_arg "Fuzz: thread count out of range";
    let sim =
      Sim.create
        ~seed:(Int64.of_int ep.workload_seed)
        ~preempt_prob:ep.preempt_prob topology
    in
    let mem =
      Memory.make
        ~seed:(Int64.of_int (ep.workload_seed + 7919))
        ~sockets:topology.Sim.Topology.sockets ~bg_period:ep.bg_period ()
    in
    let uc_ref = ref None in
    let setup_ops = ref 0 in
    let end_time = ref 0 in
    ignore
      (Sim.spawn sim ~socket:0 (fun () ->
           let roots = Roots.make mem in
           let cfg =
             Prep.Config.make ~mode ~log_size:ep.log_size ~epsilon:ep.epsilon
               ~flit ~dist_rw ~log_mirror ~slot_bitmap ~detect ~lsm_ckpt
               ?persist_policy ~fault ~workers:ep.threads ()
           in
           let uc = Uc.create mem roots cfg in
           uc_ref := Some uc;
           setup_ops := Memory.op_index mem;
           (* only now is there a recoverable checkpoint: crash points are
              relative to the end of construction *)
           (match ep.crash with
            | At_op n ->
              let base = !setup_ops in
              Memory.set_crash_hook mem (fun i ->
                  if i - base >= n then raise Crash_injected)
            | At_time _ | No_crash -> ());
           Uc.start_persistence uc;
           let done_count = ref 0 in
           for w = 0 to ep.threads - 1 do
             let socket, core = Sim.Topology.place topology w in
             Sim.spawn_here ~socket ~core (fun () ->
                 Uc.register_worker uc;
                 let rng = Sim.fiber_rng () in
                 for _ = 1 to ep.ops_per_worker do
                   let op, args = gen_op rng in
                   ignore (Uc.execute uc ~op ~args)
                 done;
                 incr done_count)
           done;
           while !done_count < ep.threads do
             Sim.tick 10_000
           done;
           Uc.stop uc;
           Uc.sync uc;
           end_time := Sim.now ()));
    let crashed =
      match ep.crash with
      | No_crash -> (
        match Sim.run sim () with
        | `Done -> false
        | `Cut _ -> assert false)
      | At_time ns -> (
        match Sim.run ~until:ns sim () with `Cut _ -> true | `Done -> false)
      | At_op _ ->
        let r =
          try
            ignore (Sim.run sim ());
            false
          with Crash_injected -> true
        in
        r
    in
    Memory.clear_crash_hook mem;
    match !uc_ref with
    | None ->
      (* power failed during construction: no checkpoint existed yet *)
      {
        crashed;
        vacuous = true;
        violations = [];
        logged = 0;
        completed = 0;
        applied = 0;
        runtime_ops = 0;
        end_time = 0;
      }
    | Some uc ->
      let trace = Uc.trace uc in
      let completed = Prep.Trace.completed_indexes trace in
      let logged = Prep.Trace.length trace in
      let runtime_ops = Memory.op_index mem - !setup_ops in
      if crashed then begin
        if mode = Prep.Config.Volatile then
          invalid_arg "Fuzz: volatile episodes cannot crash";
        Memory.crash mem;
        Context.reset ();
        let sim2 =
          Sim.create ~seed:(Int64.of_int (ep.workload_seed + 1)) topology
        in
        let out = ref None in
        ignore
          (Sim.spawn sim2 ~socket:0 (fun () ->
               let uc', report = Uc.recover uc in
               let resolutions =
                 if not detect then []
                 else
                   List.init ep.threads (fun w ->
                       let socket, core = Sim.Topology.place topology w in
                       let tid = (socket * beta) + core in
                       (tid, Uc.resolve uc' ~tid))
               in
               out := Some (report, Uc.snapshot uc', resolutions)));
        (match Sim.run sim2 () with
         | `Done -> ()
         | `Cut _ -> failwith "Fuzz: recovery did not finish");
        let report, snap, resolutions = Option.get !out in
        let loss_bound =
          if mode = Prep.Config.Durable then 0 else ep.epsilon + beta - 1
        in
        let violations =
          Dl.check ~trace ~prefill:(Uc.prefill_ops uc)
            ~applied:report.Prep.Prep_uc.applied
            ~completed ~recovered_snapshot:snap ~loss_bound ()
        in
        let violations =
          if not detect then violations
          else
            (* resolve-consistency: each thread's verdict must name exactly
               the frontier of what the recovered state contains *)
            let applied_seqno =
              let tbl = Hashtbl.create 16 in
              List.iter
                (fun i ->
                  let e = Prep.Trace.get trace i in
                  if e.Prep.Trace.seqno > 0 then
                    let cur =
                      Option.value ~default:0
                        (Hashtbl.find_opt tbl e.Prep.Trace.tid)
                    in
                    if e.Prep.Trace.seqno > cur then
                      Hashtbl.replace tbl e.Prep.Trace.tid e.Prep.Trace.seqno)
                report.Prep.Prep_uc.applied;
              fun tid -> Option.value ~default:0 (Hashtbl.find_opt tbl tid)
            in
            violations
            @ Durable_lin.check_resolutions ~resolutions ~applied_seqno
        in
        {
          crashed = true;
          vacuous = false;
          violations;
          logged;
          completed = List.length completed;
          applied = List.length report.Prep.Prep_uc.applied;
          runtime_ops;
          end_time = 0;
        }
      end
      else begin
        (* quiescent run: every logged op completed and the final state
           must equal the full-trace replay *)
        let applied = List.init logged (fun i -> i) in
        let violations =
          Dl.check ~trace ~prefill:(Uc.prefill_ops uc) ~applied ~completed
            ~recovered_snapshot:(Uc.snapshot uc) ~loss_bound:0 ()
        in
        {
          crashed = false;
          vacuous = false;
          violations;
          logged;
          completed = List.length completed;
          applied = logged;
          runtime_ops;
          end_time = !end_time;
        }
      end

  (** Fuzz [iters] episodes derived from [template] (whose [crash] field is
      ignored): one calibration run sizes the crash-point space, then each
      episode gets a fresh workload seed and a random crash point —
      alternating between memory-operation-index and simulated-time
      injection. Deterministic in [template].

      [runner] evaluates the episode task array (default: in order on the
      calling domain; the CLI injects [Harness.Campaign.run ~j]). The
      whole plan — every seed and crash point — is drawn serially *before*
      any episode runs, each episode is a self-contained sim, and the
      results are merged in episode order, so the result and the log are
      byte-identical whatever the runner's parallelism. *)
  let fuzz ?(flit = false) ?(dist_rw = false) ?(log_mirror = false)
      ?(slot_bitmap = false) ?(detect = false) ?(lsm_ckpt = false)
      ?persist_policy ~mode ~fault ~gen_op ~template ~iters
      ?(log = fun _ -> ())
      ?(runner = fun tasks -> Array.map (fun task -> task ()) tasks) () =
    let run_episode =
      run_episode ~flit ~dist_rw ~log_mirror ~slot_bitmap ~detect ~lsm_ckpt
        ?persist_policy
    in
    let calib =
      run_episode ~mode ~fault ~gen_op { template with crash = No_crash }
    in
    log
      (Fmt.str "calibration: %d ops logged, %d mem-ops, %d ns"
         calib.logged calib.runtime_ops calib.end_time);
    let rng =
      Sim.Rng.create (Int64.of_int ((template.workload_seed * 1_000_003) + 17))
    in
    let plan =
      Array.init iters (fun idx ->
          let i = idx + 1 in
          let crash =
            if mode = Prep.Config.Volatile then No_crash
            else if Sim.Rng.bool rng then
              At_op (1 + Sim.Rng.int rng (max 1 calib.runtime_ops))
            else At_time (1 + Sim.Rng.int rng (max 1 calib.end_time))
          in
          { template with workload_seed = template.workload_seed + i; crash })
    in
    let outs =
      runner (Array.map (fun ep () -> run_episode ~mode ~fault ~gen_op ep) plan)
    in
    let failures = ref [] in
    let crashes = ref 0 in
    Array.iteri
      (fun idx out ->
        let ep = plan.(idx) in
        if out.crashed then incr crashes;
        if out.violations <> [] then begin
          failures := { episode = ep; violations = out.violations } :: !failures;
          log
            (Fmt.str "episode %d/%d FAILED (%a): %a" (idx + 1) iters pp_episode
               ep
               Fmt.(list ~sep:comma Durable_lin.pp_violation)
               out.violations)
        end)
      outs;
    { episodes = iters; crashes = !crashes; failures = List.rev !failures }

  (** Minimize a failing episode: fewest threads first (re-probing several
      crash points, since fewer threads shift the schedule), then an
      earlier crash point, then less work per worker. *)
  let shrink ?(flit = false) ?(dist_rw = false) ?(log_mirror = false)
      ?(slot_bitmap = false) ?(detect = false) ?(lsm_ckpt = false)
      ?persist_policy ~mode ~fault ~gen_op ep =
    let fails ep =
      (run_episode ~flit ~dist_rw ~log_mirror ~slot_bitmap ~detect ~lsm_ckpt
         ?persist_policy ~mode ~fault ~gen_op ep).violations
      <> []
    in
    let scale_crash ep num den =
      match ep.crash with
      | At_op c -> { ep with crash = At_op (max 1 (c * num / den)) }
      | At_time c -> { ep with crash = At_time (max 1 (c * num / den)) }
      | No_crash -> ep
    in
    let smaller ep =
      let threads =
        List.sort_uniq compare [ 1; 2; ep.threads / 2; ep.threads - 1 ]
        |> List.filter (fun t -> t >= 1 && t < ep.threads)
        |> List.concat_map (fun t ->
               let ep = { ep with threads = t } in
               [ ep; scale_crash ep 3 4; scale_crash ep 1 2; scale_crash ep 1 4 ])
      in
      let crash_only =
        match ep.crash with
        | At_op c | At_time c ->
          if c > 1 then [ scale_crash ep 1 2; scale_crash ep 7 8 ] else []
        | No_crash -> []
      in
      let work =
        if ep.ops_per_worker > 40 then
          [ { ep with ops_per_worker = ep.ops_per_worker / 2 } ]
        else []
      in
      threads @ crash_only @ work
    in
    Shrink.minimize ~smaller ~fails ep
end
