(** Crash-point fuzzing for the sharded construction ([Prep.Sharded_uc]).

    Same driver shape as [Fuzz] — seeded episodes, randomized preemption,
    a crash injected at a random memory-operation index or simulated time,
    recovery, judgment — but the system under test is N hash-routed
    PREP-UC shards with the cross-shard 2PC commit path, and the judgment
    treats the multi-shard run as ONE history:

    - every shard's trace is checked with [Durable_lin] at loss bound 0
      (sharding is durable-only), with the completed set adjusted for
      transaction prepares whose decision never reached media — those are
      *rolled back by design*, not lost: the coordinator only reports a
      multi-key op complete after the decision's fence, so an undecided
      prepare can only belong to an op no client saw finish;
    - cross-shard atomicity is audited with [Durable_lin.check_atomicity]:
      a committed transaction must have kept every prepare on every
      participant shard, an uncommitted one must have kept none.

    The planted [Config.Commit_before_prepare_persist] fault (decision
    flushed before the prepares are durably logged) is caught here: a
    crash in the decide-early window recovers a committed transaction
    with missing prepares. *)

open Fuzz

(** A copy-pasteable replay of a sharded episode. *)
let repro_command ~nshards ~multi_pct ~cross_pct ~fault ~ds ep =
  Printf.sprintf
    "dune exec bin/prep_cli.exe -- fuzz --variant durable --ds %s --shards \
     %d --multi-pct %d --cross-pct %d --threads %d --epsilon %d --log-size \
     %d --ops %d --seed %d --fault %s %s"
    ds nshards multi_pct cross_pct ep.threads ep.epsilon ep.log_size
    ep.ops_per_worker ep.workload_seed
    (Prep.Config.fault_name fault)
    (crash_flag ep.crash)

module Make (Ds : Seqds.Ds_intf.S) = struct
  module S = Prep.Sharded_uc.Make (Ds)
  module Dl = Durable_lin.Make (S.Tx.Model)
  open Nvm

  let topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 }
  let beta = topology.Sim.Topology.cores_per_socket
  let max_threads = Sim.Topology.total_cores topology - 1

  (* Judge one crashed-and-recovered sharded run as a single history. *)
  let crash_checks ~nshards uc uc' (reports : Prep.Prep_uc.recovery_report array)
      =
    let committed txid = S.committed uc' txid in
    let violations = ref [] in
    (* per-shard applied-prepare tallies, for the atomicity audit *)
    let tally = Array.init nshards (fun _ -> Hashtbl.create 64) in
    for i = 0 to nshards - 1 do
      let trace = S.trace uc i in
      List.iter
        (fun idx ->
          let e = Prep.Trace.get trace idx in
          if Prep.Sharded_uc.is_txn_op e.Prep.Trace.op then begin
            let txid = e.Prep.Trace.args.(0) in
            Hashtbl.replace tally.(i) txid
              (1 + Option.value ~default:0 (Hashtbl.find_opt tally.(i) txid))
          end)
        reports.(i).Prep.Prep_uc.applied;
      let completed =
        List.filter
          (fun idx ->
            let e = Prep.Trace.get trace idx in
            (not (Prep.Sharded_uc.is_txn_op e.Prep.Trace.op))
            || committed e.Prep.Trace.args.(0))
          (Prep.Trace.completed_indexes trace)
      in
      violations :=
        !violations
        @ Dl.check ~trace ~prefill:(S.prefill_ops uc i)
            ~applied:reports.(i).Prep.Prep_uc.applied ~completed
            ~recovered_snapshot:(S.P.snapshot (S.shard uc' i)) ~loss_bound:0
            ()
    done;
    let intents =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) uc.S.txn_intent []
      |> List.sort compare
    in
    let applied_count s txid =
      Option.value ~default:0 (Hashtbl.find_opt tally.(s) txid)
    in
    !violations
    @ Durable_lin.check_atomicity ~nshards ~intents ~committed ~applied_count

  (** Run one sharded episode. [fault] is [No_fault] or
      [Commit_before_prepare_persist]; [gen_op] draws (op, args) pairs —
      multi-key ops included (see [Harness.Workload.map_workload_sharded]
      for the standard generator). *)
  let run_episode ~nshards ~fault ~gen_op ep =
    if ep.threads < 1 || ep.threads > max_threads then
      invalid_arg "Fuzz_shard: thread count out of range";
    let sim =
      Sim.create
        ~seed:(Int64.of_int ep.workload_seed)
        ~preempt_prob:ep.preempt_prob topology
    in
    let mem =
      Memory.make
        ~seed:(Int64.of_int (ep.workload_seed + 7919))
        ~sockets:topology.Sim.Topology.sockets ~bg_period:ep.bg_period ()
    in
    let uc_ref = ref None in
    let setup_ops = ref 0 in
    let end_time = ref 0 in
    ignore
      (Sim.spawn sim ~socket:0 (fun () ->
           let roots = Roots.make mem in
           let cfg =
             Prep.Config.make ~mode:Prep.Config.Durable
               ~log_size:ep.log_size ~epsilon:ep.epsilon ~shards:nshards
               ~fault ~workers:ep.threads ()
           in
           let uc = S.create mem roots cfg in
           uc_ref := Some uc;
           setup_ops := Memory.op_index mem;
           (match ep.crash with
            | At_op n ->
              let base = !setup_ops in
              Memory.set_crash_hook mem (fun i ->
                  if i - base >= n then raise Crash_injected)
            | At_time _ | No_crash -> ());
           S.start_persistence uc;
           let done_count = ref 0 in
           for w = 0 to ep.threads - 1 do
             let socket, core = Sim.Topology.place topology w in
             Sim.spawn_here ~socket ~core (fun () ->
                 S.register_worker uc;
                 let rng = Sim.fiber_rng () in
                 for _ = 1 to ep.ops_per_worker do
                   let op, args = gen_op rng in
                   ignore (S.execute uc ~op ~args)
                 done;
                 incr done_count)
           done;
           while !done_count < ep.threads do
             Sim.tick 10_000
           done;
           S.stop uc;
           S.sync uc;
           end_time := Sim.now ()));
    let crashed =
      match ep.crash with
      | No_crash -> (
        match Sim.run sim () with
        | `Done -> false
        | `Cut _ -> assert false)
      | At_time ns -> (
        match Sim.run ~until:ns sim () with `Cut _ -> true | `Done -> false)
      | At_op _ -> (
        try
          ignore (Sim.run sim ());
          false
        with Crash_injected -> true)
    in
    Memory.clear_crash_hook mem;
    match !uc_ref with
    | None ->
      {
        crashed;
        vacuous = true;
        violations = [];
        logged = 0;
        completed = 0;
        applied = 0;
        runtime_ops = 0;
        end_time = 0;
      }
    | Some uc ->
      let sum f = Array.init nshards f |> Array.fold_left ( + ) 0 in
      let logged = sum (fun i -> Prep.Trace.length (S.trace uc i)) in
      let completed =
        sum (fun i ->
            List.length (Prep.Trace.completed_indexes (S.trace uc i)))
      in
      let runtime_ops = Memory.op_index mem - !setup_ops in
      if crashed then begin
        Memory.crash mem;
        Context.reset ();
        let sim2 =
          Sim.create ~seed:(Int64.of_int (ep.workload_seed + 1)) topology
        in
        let out = ref None in
        ignore
          (Sim.spawn sim2 ~socket:0 (fun () -> out := Some (S.recover uc)));
        (match Sim.run sim2 () with
         | `Done -> ()
         | `Cut _ -> failwith "Fuzz_shard: recovery did not finish");
        let uc', reports = Option.get !out in
        let violations = crash_checks ~nshards uc uc' reports in
        {
          crashed = true;
          vacuous = false;
          violations;
          logged;
          completed;
          applied =
            Array.fold_left
              (fun acc r -> acc + List.length r.Prep.Prep_uc.applied)
              0 reports;
          runtime_ops;
          end_time = 0;
        }
      end
      else begin
        (* quiescent: every shard's full trace must replay to its final
           state, and every transaction must have a durable decision *)
        let violations = ref [] in
        for i = 0 to nshards - 1 do
          let trace = S.trace uc i in
          let n = Prep.Trace.length trace in
          violations :=
            !violations
            @ Dl.check ~trace ~prefill:(S.prefill_ops uc i)
                ~applied:(List.init n Fun.id)
                ~completed:(Prep.Trace.completed_indexes trace)
                ~recovered_snapshot:(S.P.snapshot (S.shard uc i))
                ~loss_bound:0 ()
        done;
        Hashtbl.iter
          (fun txid parts ->
            if not (S.committed uc txid) then
              violations :=
                Durable_lin.Atomicity_violation
                  { txid; committed = false; shard = List.hd parts }
                :: !violations)
          uc.S.txn_intent;
        {
          crashed = false;
          vacuous = false;
          violations = !violations;
          logged;
          completed;
          applied = logged;
          runtime_ops;
          end_time = !end_time;
        }
      end

  (** Fuzz [iters] sharded episodes from [template] (crash field ignored),
      same deterministic calibrate-plan-run shape as [Fuzz.fuzz]. *)
  let fuzz ~nshards ~fault ~gen_op ~template ~iters ?(log = fun _ -> ())
      ?(runner = fun tasks -> Array.map (fun task -> task ()) tasks) () =
    let calib =
      run_episode ~nshards ~fault ~gen_op { template with crash = No_crash }
    in
    log
      (Fmt.str "calibration: %d ops logged, %d mem-ops, %d ns" calib.logged
         calib.runtime_ops calib.end_time);
    let rng =
      Sim.Rng.create (Int64.of_int ((template.workload_seed * 1_000_003) + 17))
    in
    let plan =
      Array.init iters (fun idx ->
          let i = idx + 1 in
          let crash =
            if Sim.Rng.bool rng then
              At_op (1 + Sim.Rng.int rng (max 1 calib.runtime_ops))
            else At_time (1 + Sim.Rng.int rng (max 1 calib.end_time))
          in
          { template with workload_seed = template.workload_seed + i; crash })
    in
    let outs =
      runner
        (Array.map (fun ep () -> run_episode ~nshards ~fault ~gen_op ep) plan)
    in
    let failures = ref [] in
    let crashes = ref 0 in
    Array.iteri
      (fun idx out ->
        let ep = plan.(idx) in
        if out.crashed then incr crashes;
        if out.violations <> [] then begin
          failures :=
            { episode = ep; violations = out.violations } :: !failures;
          log
            (Fmt.str "episode %d/%d FAILED (%a): %a" (idx + 1) iters
               pp_episode ep
               Fmt.(list ~sep:comma Durable_lin.pp_violation)
               out.violations)
        end)
      outs;
    { episodes = iters; crashes = !crashes; failures = List.rev !failures }

  (** Minimize a failing sharded episode (same strategy as [Fuzz.shrink]). *)
  let shrink ~nshards ~fault ~gen_op ep =
    let fails ep = (run_episode ~nshards ~fault ~gen_op ep).violations <> [] in
    let scale_crash ep num den =
      match ep.crash with
      | At_op c -> { ep with crash = At_op (max 1 (c * num / den)) }
      | At_time c -> { ep with crash = At_time (max 1 (c * num / den)) }
      | No_crash -> ep
    in
    let smaller ep =
      let threads =
        List.sort_uniq compare [ 1; 2; ep.threads / 2; ep.threads - 1 ]
        |> List.filter (fun t -> t >= 1 && t < ep.threads)
        |> List.concat_map (fun t ->
               let ep = { ep with threads = t } in
               [ ep; scale_crash ep 3 4; scale_crash ep 1 2; scale_crash ep 1 4 ])
      in
      let crash_only =
        match ep.crash with
        | At_op c | At_time c ->
          if c > 1 then [ scale_crash ep 1 2; scale_crash ep 7 8 ] else []
        | No_crash -> []
      in
      let work =
        if ep.ops_per_worker > 40 then
          [ { ep with ops_per_worker = ep.ops_per_worker / 2 } ]
        else []
      in
      threads @ crash_only @ work
    in
    Shrink.minimize ~smaller ~fails ep
end
