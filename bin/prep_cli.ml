(* prep-cli: drive the PREP-UC reproduction from the command line.

   Subcommands:
     bench     run one figure (or all) of the paper's evaluation
     run       run a single throughput point with explicit parameters
     profile   run one point with telemetry and print the phase breakdown
     validate  check a bench-JSON or trace-JSON artifact against its schema
     crash     run a crash/recovery episode and print the loss accounting
     fuzz      crash-point fuzzing with durable-linearizability checking
     explore   bounded exhaustive schedule-and-crash exploration
     session   crash-restart-continue client sessions (exactly-once check)
     sweep     closed-loop threads x read-pct grid, bench-schema JSON
     serve-sim open-loop arrival-process points (offered load vs sojourn)
     ckptscale checkpoint cost vs dirty set, recovery vs object size

   The harness subcommands take [-j N] to fan independent simulations
   across N domains (Harness.Campaign); results are deterministic — byte
   identical at any -j.

   Examples:
     dune exec bin/prep_cli.exe -- bench --figure fig3
     dune exec bin/prep_cli.exe -- run --system prep-buffered --threads 8 \
       --epsilon 1024 --read-pct 90
     dune exec bin/prep_cli.exe -- run --system prep-durable --uc-shards 4 \
       --threads 12                      # hash-routed sharded construction
     dune exec bin/prep_cli.exe -- profile --system prep-durable --threads 4 \
       --trace trace.json               # open trace.json in ui.perfetto.dev
     dune exec bin/prep_cli.exe -- profile --system prep-durable \
       --uc-shards 4 --threads 8        # shard<i>/ counters, per-shard spans
     dune exec bin/prep_cli.exe -- validate --kind trace trace.json
     dune exec bin/prep_cli.exe -- crash --mode buffered --epsilon 128
     dune exec bin/prep_cli.exe -- fuzz --iters 200 --variant buffered -j 4
     dune exec bin/prep_cli.exe -- fuzz --variant durable --ds rbtree \
       --seed 57 --crash-op 81000        # replay one exact episode
     dune exec bin/prep_cli.exe -- fuzz --variant durable --shards 4 \
       --multi-pct 40 --cross-pct 100 -j 4   # cross-shard 2PC atomicity
     dune exec bin/prep_cli.exe -- explore --threads 2 --ops 2 --shards 8 -j 4
     dune exec bin/prep_cli.exe -- explore --variant durable --uc-shards 2 \
       --no-persistence --ops 1          # exhaustive cross-shard crashes
     dune exec bin/prep_cli.exe -- sweep --threads-list 2,8,16 \
       --read-pcts 50,90 -j 4 --json sweep.json
     dune exec bin/prep_cli.exe -- serve-sim --arrival bursty \
       --rates 5e5,1e6,2e6 --theta 0.99 --shed 64 --json curve.json
     dune exec bin/prep_cli.exe -- run --system prep-durable --lsm-ckpt \
       --ds rbtree --threads 8          # incremental checkpoint backend
     dune exec bin/prep_cli.exe -- ckptscale --sizes 10000,100000 \
       --json ckpt.json                 # O(dirty) + flat-recovery gates *)

open Cmdliner
open Harness

(* ---- bench ---- *)

let figure_arg =
  let doc = "Figure to regenerate: all, table1, fig1..fig6, flushstats." in
  Arg.(value & opt string "all" & info [ "figure"; "f" ] ~docv:"FIG" ~doc)

let full_arg =
  let doc = "Use paper-scale parameters (much slower)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let bench figure full =
  let scale = if full then Figures.full else Figures.quick in
  match figure with
  | "all" -> `Ok (Figures.all scale)
  | "table1" -> `Ok (Figures.table1 ())
  | "fig1" -> `Ok (Figures.fig1 scale)
  | "fig2" -> `Ok (Figures.fig2 scale)
  | "fig3" -> `Ok (Figures.fig3 scale)
  | "fig4" -> `Ok (Figures.fig4 scale)
  | "fig5" -> `Ok (Figures.fig5 scale)
  | "fig6" -> `Ok (Figures.fig6 scale)
  | "ablation" -> `Ok (Figures.ablation scale)
  | "flushstats" -> `Ok (Figures.flushstats scale)
  | other -> `Error (true, Printf.sprintf "unknown figure %S" other)

let bench_cmd =
  Cmd.v
    (Cmd.info "bench" ~doc:"Regenerate the paper's tables and figures")
    Term.(ret (const bench $ figure_arg $ full_arg))

(* ---- run ---- *)

let system_arg =
  let doc =
    "System: gl, prep-v, prep-buffered, prep-durable, cx, soft-1k, soft-10k."
  in
  Arg.(
    value
    & opt string "prep-buffered"
    & info [ "system"; "s" ] ~docv:"SYSTEM" ~doc)

let ds_arg =
  let doc = "Data structure: hashmap, rbtree, skiplist, queue, pqueue, stack." in
  Arg.(value & opt string "hashmap" & info [ "ds" ] ~docv:"DS" ~doc)

let threads_arg =
  Arg.(value & opt int 8 & info [ "threads"; "t" ] ~docv:"N" ~doc:"Worker threads.")

let epsilon_arg =
  Arg.(value & opt int 1024 & info [ "epsilon"; "e" ] ~docv:"EPS" ~doc:"Flush boundary step.")

let read_pct_arg =
  Arg.(value & opt int 90 & info [ "read-pct" ] ~docv:"PCT" ~doc:"Read-only percentage (maps only).")

let keys_arg =
  Arg.(value & opt int 4096 & info [ "keys" ] ~docv:"N" ~doc:"Key range (maps) or prefill size (pairs).")

let duration_arg =
  Arg.(value & opt int 2_000_000 & info [ "duration" ] ~docv:"NS" ~doc:"Measured simulated time, ns.")

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let log_size = 16384

module type SYSTEMS = sig
  val prep :
    ?log_size:int ->
    ?flush:Prep.Config.flush_strategy ->
    ?flit:bool ->
    ?dist_rw:bool ->
    ?log_mirror:bool ->
    ?slot_bitmap:bool ->
    ?detect:bool ->
    ?lsm_ckpt:bool ->
    ?lsm_fanout:int ->
    ?lsm_compact:bool ->
    ?persist_policy:Nvm.Persist.policy ->
    ?name:string ->
    mode:Prep.Config.mode ->
    epsilon:int ->
    unit ->
    Experiment.system

  val prep_sharded :
    ?log_size:int ->
    ?flush:Prep.Config.flush_strategy ->
    ?flit:bool ->
    ?slot_bitmap:bool ->
    ?lsm_ckpt:bool ->
    ?lsm_fanout:int ->
    ?lsm_compact:bool ->
    ?persist_policy:Nvm.Persist.policy ->
    ?name:string ->
    shards:int ->
    epsilon:int ->
    unit ->
    Experiment.system

  val global_lock : Experiment.system
  val cx : ?queue_capacity:int -> unit -> Experiment.system
end

let flit_arg =
  let doc =
    "Enable the FliT flush-elimination layer (PREP systems only): per-line \
     flush tracking plus batched single-fence log persistence."
  in
  Arg.(value & flag & info [ "flit" ] ~doc)

let dist_rw_arg =
  let doc =
    "Protect each replica with the distributed per-core reader-writer lock \
     (PREP systems only): readers touch only their own cache line."
  in
  Arg.(value & flag & info [ "dist-rw" ] ~doc)

let log_mirror_arg =
  let doc =
    "Shadow the durable log into a DRAM mirror and serve replica catch-up \
     reads from it (PREP-Durable only; recovery still reads NVM)."
  in
  Arg.(value & flag & info [ "log-mirror" ] ~doc)

let slot_bitmap_arg =
  let doc =
    "Maintain a per-replica slot-occupancy bitmap so the combiner scans \
     only occupied flat-combining slots (PREP systems only)."
  in
  Arg.(value & flag & info [ "slot-bitmap" ] ~doc)

let detect_arg =
  let doc =
    "Enable detectable execution (PREP-Durable only): per-thread persistent \
     announce/response records, so after a crash every client can resolve \
     whether its in-flight op took effect and re-submit exactly the lost \
     ones."
  in
  Arg.(value & flag & info [ "detect" ] ~doc)

let lsm_ckpt_arg =
  let doc =
    "Replace the whole-replica checkpoint with the incremental \
     log-structured backend (PREP-Buffered/Durable maps only): dirty keys \
     accumulate in a volatile memtable sealed into immutable sorted NVM \
     segments behind a fenced manifest; recovery mounts the manifest and \
     replays only the log suffix past the last seal."
  in
  Arg.(value & flag & info [ "lsm-ckpt" ] ~doc)

let lsm_fanout_arg =
  let doc =
    "With --lsm-ckpt: size-tiered compaction fanout — the background \
     fiber merges every run of $(docv) same-level segments into one \
     segment a level up."
  in
  Arg.(value & opt int 4 & info [ "lsm-fanout" ] ~docv:"K" ~doc)

let no_lsm_compact_arg =
  let doc = "With --lsm-ckpt: disable the background compaction fiber." in
  Arg.(value & flag & info [ "no-lsm-compact" ] ~doc)

let uc_shards_arg =
  let doc =
    "Run $(docv) hash-routed PREP-Durable shards behind the cross-shard \
     router (prep-durable maps only): each shard is an independent log + \
     replica set + combiner, single-key ops route by key hash. Telemetry \
     is reported per shard (shard<i>/ counters, per-shard phase spans and \
     persistence tracks)."
  in
  Arg.(value & opt int 1 & info [ "uc-shards" ] ~docv:"N" ~doc)

let persist_policy_arg =
  let doc =
    "Per-site persistency policy: a JSON file emitted by optimize-persist \
     or an inline spec like \
     'log.fence_payload=defer-to-next-fence,prep.init=elide'. Sites not \
     named stay at emit. PREP systems only."
  in
  Arg.(value
       & opt (some string) None
       & info [ "persist-policy" ] ~docv:"SPEC|FILE" ~doc)

let parse_policy = function
  | None -> Ok None
  | Some arg ->
    (match Nvm.Persist.load arg with
     | Ok p -> Ok (Some p)
     | Error e -> Error e)

let trace_arg =
  let doc =
    "Write a Chrome trace-event JSON file of the run (one track per fiber, \
     phase spans, crash/flush instants). Open it in ui.perfetto.dev."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Run independent simulations on $(docv) domains. Deterministic: the \
     output is byte-identical at any -j."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* Map a --system name to an [Experiment.system] under a data structure's
   [SYSTEMS] instantiation; shared by run/profile/sweep/serve-sim. *)
let select_system ?(uc_shards = 1) ?(lsm_ckpt = false) ?(lsm_fanout = 4)
    ?(lsm_compact = true) ?persist_policy ~system ~epsilon ~flit ~dist_rw
    ~log_mirror ~slot_bitmap ~detect (module Sy : SYSTEMS) =
  if detect && system <> "prep-durable" then
    Error "--detect requires --system prep-durable"
  else if
    persist_policy <> None
    && not (List.mem system [ "prep-v"; "prep-buffered"; "prep-durable" ])
  then Error "--persist-policy requires a PREP system"
  else if
    lsm_ckpt && not (List.mem system [ "prep-buffered"; "prep-durable" ])
  then Error "--lsm-ckpt requires --system prep-buffered or prep-durable"
  else if lsm_fanout < 2 then Error "--lsm-fanout must be at least 2"
  else if uc_shards < 1 then Error "--uc-shards must be at least 1"
  else if uc_shards > 1 && system <> "prep-durable" then
    Error "--uc-shards requires --system prep-durable (sharding is durable-only)"
  else if uc_shards > 1 && detect then
    Error "--detect is not supported with --uc-shards"
  else if uc_shards > 1 && (dist_rw || log_mirror) then
    Error "--dist-rw/--log-mirror are not supported with --uc-shards"
  else if uc_shards > Prep.Sharded_uc.max_shards then
    Error
      (Printf.sprintf
         "--uc-shards is capped at %d (64-slot root directory, 8 slots per \
          shard)"
         Prep.Sharded_uc.max_shards)
  else if uc_shards > 1 then
    Ok
      (Sy.prep_sharded ~log_size ~flit ~slot_bitmap ~lsm_ckpt ~lsm_fanout
         ~lsm_compact ?persist_policy ~shards:uc_shards ~epsilon ())
  else
    match system with
    | "gl" -> Ok Sy.global_lock
    | "prep-v" -> Ok (Sy.prep ~log_size ~mode:Prep.Config.Volatile ~epsilon:1 ())
    | "prep-buffered" ->
      Ok
        (Sy.prep ~log_size ~flit ~dist_rw ~log_mirror ~slot_bitmap ~lsm_ckpt
           ~lsm_fanout ~lsm_compact ?persist_policy
           ~mode:Prep.Config.Buffered ~epsilon ())
    | "prep-durable" ->
      Ok
        (Sy.prep ~log_size ~flit ~dist_rw ~log_mirror ~slot_bitmap ~detect
           ~lsm_ckpt ~lsm_fanout ~lsm_compact ?persist_policy
           ~mode:Prep.Config.Durable ~epsilon ())
    | "cx" -> Ok (Sy.cx ())
    | "soft-1k" -> Ok (Experiment.soft ~nbuckets:1000)
    | "soft-10k" -> Ok (Experiment.soft ~nbuckets:10_000)
    | other -> Error (Printf.sprintf "unknown system %S" other)

let run_point ~profile system ds threads epsilon read_pct keys duration seed
    flit dist_rw log_mirror slot_bitmap detect lsm_ckpt lsm_fanout
    no_lsm_compact uc_shards persist_policy trace =
  match parse_policy persist_policy with
  | Error m -> `Error (true, m)
  | Ok persist_policy ->
  let workload_map, workload_pairs =
    ( (fun () -> Workload.map_workload ~read_pct ~key_range:keys ~prefill_n:(keys / 2)),
      fun pairs -> pairs ~prefill_n:(keys / 2) )
  in
  let fail msg = `Error (true, msg) in
  let go sys workload =
    (* profiling and tracing both need a live ambient registry; the plain
       [run] subcommand keeps the registry-free default path *)
    let tel =
      if profile || trace <> None then
        Some (Telemetry.Registry.create ~tracing:(trace <> None) ())
      else None
    in
    let r =
      Experiment.run ?telemetry:tel ~seed:(Int64.of_int seed)
        ~duration_ns:duration ~warmup_ns:(duration / 5) ~system:sys ~workload
        ~workers:threads ()
    in
    Printf.printf "%s | %s | %d threads: %.0f ops/sec (%d ops)\n"
      r.Experiment.system r.Experiment.workload r.Experiment.workers
      r.Experiment.throughput r.Experiment.ops;
    Printf.printf "memory: %d wbinvd, %d clwb, %d clflush, %d fences, %d bg-flushes\n"
      r.Experiment.wbinvd r.Experiment.clwb r.Experiment.clflush
      r.Experiment.sfence r.Experiment.bg_flushes;
    if
      r.Experiment.clwb_elided + r.Experiment.clwb_coalesced
      + r.Experiment.clflush_elided + r.Experiment.sfence_elided > 0
    then
      Printf.printf
        "flit:   %d clwb elided, %d clwb coalesced, %d clflush elided, %d \
         fences elided\n"
        r.Experiment.clwb_elided r.Experiment.clwb_coalesced
        r.Experiment.clflush_elided r.Experiment.sfence_elided;
    if profile then begin
      print_newline ();
      print_string (Profile.render r.Experiment.telemetry)
    end
    else begin
      let nonzero =
        List.filter (fun (_, v) -> v <> 0) (Experiment.counters r)
      in
      if nonzero <> [] then begin
        print_string "counters:";
        List.iter (fun (k, v) -> Printf.printf " %s=%d" k v) nonzero;
        print_newline ()
      end
    end;
    match (trace, tel) with
    | Some path, Some reg -> (
      match Telemetry.Trace_export.write reg path with
      | Ok () ->
        Printf.printf "trace: %d events written to %s (%d dropped)\n"
          (Telemetry.Registry.n_events reg)
          path
          (Telemetry.Registry.dropped_events reg);
        `Ok ()
      | Error errs ->
        `Error
          ( false,
            "trace failed self-validation:\n  " ^ String.concat "\n  " errs ))
    | _ -> `Ok ()
  in
  let prep_sys =
    select_system ~uc_shards ~lsm_ckpt ~lsm_fanout
      ~lsm_compact:(not no_lsm_compact) ?persist_policy ~system ~epsilon
      ~flit ~dist_rw ~log_mirror ~slot_bitmap ~detect
  in
  if lsm_ckpt && not (List.mem ds [ "hashmap"; "rbtree"; "skiplist" ]) then
    fail "--lsm-ckpt needs a map data structure (per-key dirty tracking)"
  else
  match ds with
  | "hashmap" ->
    let module Sy = Experiment.Systems (Seqds.Hashmap) in
    (match prep_sys (module Sy) with
     | Ok sys -> go sys (workload_map ())
     | Error m -> fail m)
  | "rbtree" ->
    let module Sy = Experiment.Systems (Seqds.Rbtree) in
    (match prep_sys (module Sy) with
     | Ok sys -> go sys (workload_map ())
     | Error m -> fail m)
  | "skiplist" ->
    let module Sy = Experiment.Systems (Seqds.Skiplist) in
    (match prep_sys (module Sy) with
     | Ok sys -> go sys (workload_map ())
     | Error m -> fail m)
  | ("queue" | "pqueue" | "stack") when uc_shards > 1 ->
    fail "--uc-shards needs a map data structure (ops route by key)"
  | "queue" ->
    let module Sy = Experiment.Systems (Seqds.Queue_ds) in
    (match prep_sys (module Sy) with
     | Ok sys -> go sys (workload_pairs Workload.queue_pairs)
     | Error m -> fail m)
  | "pqueue" ->
    let module Sy = Experiment.Systems (Seqds.Pqueue) in
    (match prep_sys (module Sy) with
     | Ok sys -> go sys (workload_pairs Workload.pqueue_pairs)
     | Error m -> fail m)
  | "stack" ->
    let module Sy = Experiment.Systems (Seqds.Stack_ds) in
    (match prep_sys (module Sy) with
     | Ok sys -> go sys (workload_pairs Workload.stack_pairs)
     | Error m -> fail m)
  | other -> fail (Printf.sprintf "unknown data structure %S" other)

let point_term ~profile =
  Term.(
    ret
      (const (run_point ~profile) $ system_arg $ ds_arg $ threads_arg
     $ epsilon_arg $ read_pct_arg $ keys_arg $ duration_arg $ seed_arg
     $ flit_arg $ dist_rw_arg $ log_mirror_arg $ slot_bitmap_arg $ detect_arg
     $ lsm_ckpt_arg $ lsm_fanout_arg $ no_lsm_compact_arg $ uc_shards_arg
     $ persist_policy_arg $ trace_arg))

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run a single throughput point")
    (point_term ~profile:false)

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a single throughput point with telemetry enabled and print \
          the simulated-time phase breakdown (combine/publish/persist/\
          catch-up spans, latency percentiles, per-primitive NVM counters)")
    (point_term ~profile:true)

(* ---- validate ---- *)

let validate_kind_arg =
  let doc =
    "Artifact kind: trace (Chrome trace-event JSON), bench, policy \
     (optimize-persist persistency-policy JSON), or report \
     (optimize-persist decision-report JSON)."
  in
  Arg.(
    required
    & opt (some string) None
    & info [ "kind"; "k" ] ~docv:"KIND" ~doc)

let validate_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"JSON artifact to validate.")

let validate kind file =
  let contents () =
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if kind = "report" then (
    (* the optimize-persist decision report: check the schema tag and
       the presence/shape of every section *)
    let module J = Telemetry.Json in
    match J.parse_result (contents ()) with
    | Error e ->
      Printf.printf "%s: %s\n" file e;
      `Error (false, "validation failed")
    | Ok v -> (
      let bad m =
        Printf.printf "%s: %s\n" file m;
        `Error (false, "validation failed")
      in
      match J.member "schema" v with
      | Some (J.Str "prep.persist-report/1") -> (
        match
          ( J.member "baseline" v, J.member "policy" v,
            J.member "admitted" v, J.member "decisions" v,
            J.member "measured" v )
        with
        | Some (J.Obj _), Some (J.Obj _), Some (J.Obj adm),
          Some (J.List ds), Some (J.List _) ->
          Printf.printf
            "%s: valid persist-report (%d weakenings, %d decisions)\n" file
            (List.length adm) (List.length ds);
          `Ok ()
        | _ -> bad "persist-report: missing or malformed section")
      | _ ->
        bad "persist-report: missing or wrong \"schema\" (want \
             \"prep.persist-report/1\")"))
  else if kind = "policy" then (
    match Nvm.Persist.of_json (contents ()) with
    | Ok p ->
      Printf.printf "%s: valid persist-policy (%s; %d weakenings)\n" file
        Nvm.Persist.schema
        (List.length (Nvm.Persist.weakenings p));
      `Ok ()
    | Error e ->
      Printf.printf "%s: %s\n" file e;
      `Error (false, "validation failed"))
  else
  let validator =
    match kind with
    | "trace" -> Ok Telemetry.Json.validate_trace
    | "bench" -> Ok Telemetry.Json.validate_bench
    | other -> Error (Printf.sprintf "unknown artifact kind %S" other)
  in
  match validator with
  | Error m -> `Error (true, m)
  | Ok validator -> (
    match Telemetry.Json.validate_string validator (contents ()) with
    | Ok () ->
      Printf.printf "%s: valid %s artifact (schema_version %d)\n" file kind
        Telemetry.Json.schema_version;
      `Ok ()
    | Error errs ->
      List.iter (fun e -> Printf.printf "%s: %s\n" file e) errs;
      `Error (false, "validation failed"))

let validate_cmd =
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Validate a machine-readable artifact (bench result JSON or Chrome \
          trace JSON) against its schema; exits nonzero when malformed")
    Term.(ret (const validate $ validate_kind_arg $ validate_file_arg))

(* ---- crash ---- *)

let mode_arg =
  let doc = "PREP mode: buffered or durable." in
  Arg.(value & opt string "buffered" & info [ "mode"; "m" ] ~docv:"MODE" ~doc)

let crash_at_arg =
  Arg.(value & opt int 2_000_000 & info [ "crash-at" ] ~docv:"NS" ~doc:"Crash time, simulated ns.")

let crash mode epsilon threads crash_at seed =
  let module Uc = Prep.Prep_uc.Make (Seqds.Hashmap) in
  let module H = Seqds.Hashmap in
  let mode_v =
    match mode with
    | "buffered" -> Ok Prep.Config.Buffered
    | "durable" -> Ok Prep.Config.Durable
    | other -> Error (Printf.sprintf "unknown mode %S" other)
  in
  match mode_v with
  | Error m -> `Error (true, m)
  | Ok mode_v ->
    let topology = Sim.Topology.default in
    let beta = topology.Sim.Topology.cores_per_socket in
    let sim = Sim.create ~seed:(Int64.of_int seed) topology in
    let mem = Nvm.Memory.make ~sockets:topology.Sim.Topology.sockets ~bg_period:5000 () in
    let uc_ref = ref None in
    ignore
      (Sim.spawn sim ~socket:0 (fun () ->
           let roots = Nvm.Roots.make mem in
           let cfg =
             Prep.Config.make ~mode:mode_v ~log_size:16384 ~epsilon
               ~workers:threads ()
           in
           let uc = Uc.create mem roots cfg in
           uc_ref := Some uc;
           Uc.start_persistence uc;
           for w = 0 to threads - 1 do
             let socket, core = Sim.Topology.place topology w in
             Sim.spawn_here ~socket ~core (fun () ->
                 Uc.register_worker uc;
                 let rng = Sim.fiber_rng () in
                 while true do
                   let k = Sim.Rng.int rng 256 in
                   ignore (Uc.execute uc ~op:H.op_insert ~args:[| k; Sim.Rng.int rng 1000 |])
                 done)
           done));
    (match Sim.run ~until:crash_at sim () with
     | `Cut t -> Printf.printf "power failure at %d ns\n" t
     | `Done -> ());
    Nvm.Memory.crash mem;
    Nvm.Context.reset ();
    let uc = Option.get !uc_ref in
    let completed =
      List.length (Prep.Trace.completed_indexes (Uc.trace uc))
    in
    let sim2 = Sim.create ~seed:(Int64.of_int (seed + 1)) topology in
    ignore
      (Sim.spawn sim2 ~socket:0 (fun () ->
           let _, report = Uc.recover uc in
           Printf.printf
             "completed before crash: %d\nrecovered: %d ops\nlost completed: %d (bound epsilon+beta-1 = %d)\ncontiguous prefix: %b\nskipped completed (must be 0): %d\n"
             completed
             (List.length report.Prep.Prep_uc.applied)
             report.Prep.Prep_uc.lost_completed
             (epsilon + beta - 1)
             report.Prep.Prep_uc.contiguous_prefix
             report.Prep.Prep_uc.skipped_completed));
    (match Sim.run sim2 () with
     | `Done -> `Ok ()
     | `Cut _ -> `Error (false, "recovery did not finish"))

let crash_cmd =
  Cmd.v
    (Cmd.info "crash" ~doc:"Run a crash/recovery episode and print loss accounting")
    Term.(
      ret (const crash $ mode_arg $ epsilon_arg $ threads_arg $ crash_at_arg $ seed_arg))

(* ---- fuzz ---- *)

let iters_arg =
  Arg.(value & opt int 100 & info [ "iters"; "n" ] ~docv:"N" ~doc:"Fuzzing episodes.")

let variant_arg =
  let doc = "Variant under test: volatile, buffered or durable." in
  Arg.(value & opt string "buffered" & info [ "variant" ] ~docv:"VARIANT" ~doc)

let fault_arg =
  let doc =
    "Injected protocol fault: none, early-boundary, elide-ct-flush, \
     mirror-read-recovery, response-before-log-persist (requires --detect), \
     commit-before-prepare (requires sharding: the cross-shard commit \
     decision is flushed before any prepare is durably logged) or \
     manifest-before-seal (requires --lsm-ckpt: the checkpoint manifest is \
     published before the segment bodies it points at are fenced)."
  in
  Arg.(value & opt string "none" & info [ "fault" ] ~docv:"FAULT" ~doc)

let parse_fault = function
  | "none" -> Ok Prep.Config.No_fault
  | "early-boundary" -> Ok Prep.Config.Early_boundary_advance
  | "elide-ct-flush" -> Ok Prep.Config.Elide_ct_flush
  | "mirror-read-recovery" -> Ok Prep.Config.Mirror_read_on_recovery
  | "response-before-log-persist" -> Ok Prep.Config.Response_before_log_persist
  | "commit-before-prepare" -> Ok Prep.Config.Commit_before_prepare_persist
  | "manifest-before-seal" -> Ok Prep.Config.Manifest_before_segment_seal
  | other -> Error (Printf.sprintf "unknown fault %S" other)

let fuzz_threads_arg =
  Arg.(value & opt int 6 & info [ "threads"; "t" ] ~docv:"N" ~doc:"Worker threads (1-7).")

let fuzz_epsilon_arg =
  Arg.(value & opt int 16 & info [ "epsilon"; "e" ] ~docv:"EPS" ~doc:"Flush boundary step.")

let fuzz_log_size_arg =
  Arg.(value & opt int 256 & info [ "log-size" ] ~docv:"N" ~doc:"Shared log entries.")

let fuzz_ops_arg =
  Arg.(value & opt int 300 & info [ "ops" ] ~docv:"N" ~doc:"Operations per worker.")

let fuzz_seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Base seed.")

let crash_op_arg =
  let doc = "Replay one episode crashing before the Nth memory operation." in
  Arg.(value & opt (some int) None & info [ "crash-op" ] ~docv:"N" ~doc)

let crash_time_arg =
  let doc = "Replay one episode crashing at the given simulated time (ns)." in
  Arg.(value & opt (some int) None & info [ "crash-at" ] ~docv:"NS" ~doc)

let no_crash_arg =
  let doc = "Replay one crash-free episode (quiescent-state check only)." in
  Arg.(value & flag & info [ "no-crash" ] ~doc)

let bg_period_arg =
  Arg.(value & opt int 2000 & info [ "bg-period" ] ~docv:"N"
         ~doc:"Mean memory ops between background cache write-backs.")

let fuzz_shards_arg =
  let doc =
    "Fuzz the sharded construction with $(docv) PREP-Durable shards and \
     cross-shard transactions in the mix (map structures only; implies \
     --variant durable)."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let multi_pct_arg =
  let doc = "With --shards: percent of ops that are multi-key transactions." in
  Arg.(value & opt int 25 & info [ "multi-pct" ] ~docv:"PCT" ~doc)

let cross_pct_arg =
  let doc =
    "With --shards: percent of multi-key transactions whose keys land on \
     different shards (the rest collapse to single-shard commits)."
  in
  Arg.(value & opt int 75 & info [ "cross-pct" ] ~docv:"PCT" ~doc)

(* Op mixes for the fuzz workloads. The map structures share op codes. *)
let map_gen rng =
  let k = Sim.Rng.int rng 64 in
  match Sim.Rng.int rng 10 with
  | 0 | 1 | 2 | 3 -> (Seqds.Hashmap.op_insert, [| k; Sim.Rng.int rng 1000 |])
  | 4 | 5 -> (Seqds.Hashmap.op_remove, [| k |])
  | 6 | 7 | 8 -> (Seqds.Hashmap.op_get, [| k |])
  | _ -> (Seqds.Hashmap.op_size, [||])

let pair_gen ~push ~pop rng =
  if Sim.Rng.int rng 2 = 0 then (push, [| Sim.Rng.int rng 1000 |])
  else (pop, [||])

let fuzz_ds ds =
  match ds with
  | "hashmap" -> Ok ((module Seqds.Hashmap : Seqds.Ds_intf.S), map_gen)
  | "rbtree" -> Ok ((module Seqds.Rbtree : Seqds.Ds_intf.S), map_gen)
  | "skiplist" -> Ok ((module Seqds.Skiplist : Seqds.Ds_intf.S), map_gen)
  | "queue" ->
    Ok
      ( (module Seqds.Queue_ds : Seqds.Ds_intf.S),
        pair_gen ~push:Seqds.Queue_ds.op_enqueue ~pop:Seqds.Queue_ds.op_dequeue )
  | "pqueue" ->
    Ok
      ( (module Seqds.Pqueue : Seqds.Ds_intf.S),
        pair_gen ~push:Seqds.Pqueue.op_enqueue ~pop:Seqds.Pqueue.op_dequeue )
  | "stack" ->
    Ok
      ( (module Seqds.Stack_ds : Seqds.Ds_intf.S),
        pair_gen ~push:Seqds.Stack_ds.op_push ~pop:Seqds.Stack_ds.op_pop )
  | other -> Error (Printf.sprintf "unknown data structure %S" other)

(* Sharded fuzzing drives [Prep.Sharded_uc] (hash-routed shards + 2PC), so
   the workload must be a map (single-key ops route on their key) and the
   mode is necessarily Durable. The per-shard protocol knobs of the flat
   fuzzer (flit, dist-rw, ...) are not plumbed through the sharded checker. *)
let fuzz_sharded ~iters ~ds ~threads ~epsilon ~log_size ~ops ~seed ~fault
    ~crash_op ~crash_time ~no_crash ~bg_period ~nshards ~multi_pct ~cross_pct
    ~jobs =
  match (parse_fault fault, fuzz_ds ds) with
  | Error m, _ | _, Error m -> `Error (true, m)
  | Ok fault_v, Ok ((module Ds), _) ->
    if not (List.mem ds [ "hashmap"; "rbtree"; "skiplist" ]) then
      `Error (true, "--shards needs a map data structure (ops route by key)")
    else if multi_pct < 0 || multi_pct > 100 || cross_pct < 0 || cross_pct > 100
    then `Error (true, "--multi-pct/--cross-pct must be in 0..100")
    else begin
      let module FS = Check.Fuzz_shard.Make (Ds) in
      if threads < 1 || threads > FS.max_threads then
        `Error
          ( true,
            Printf.sprintf "--threads must be between 1 and %d (got %d)"
              FS.max_threads threads )
      else begin
        let gen_op =
          let w =
            Workload.map_workload_sharded ~read_pct:20 ~multi_pct ~cross_pct
              ~nshards ~key_range:128 ~prefill_n:0
          in
          fun rng -> w.Workload.next rng ~phase:0
        in
        let template =
          {
            Check.Fuzz.workload_seed = seed;
            threads;
            epsilon;
            log_size;
            ops_per_worker = ops;
            bg_period;
            preempt_prob = 0.02;
            crash = Check.Fuzz.No_crash;
          }
        in
        let replay =
          match (crash_op, crash_time, no_crash) with
          | Some n, _, _ -> Some (Check.Fuzz.At_op n)
          | None, Some ns, _ -> Some (Check.Fuzz.At_time ns)
          | None, None, true -> Some Check.Fuzz.No_crash
          | None, None, false -> None
        in
        match replay with
        | Some crash ->
          let ep = { template with crash } in
          let out = FS.run_episode ~nshards ~fault:fault_v ~gen_op ep in
          Printf.printf
            "episode %s: crashed=%b logged=%d completed=%d applied=%d\n"
            (Fmt.str "%a" Check.Fuzz.pp_episode ep)
            out.Check.Fuzz.crashed out.Check.Fuzz.logged
            out.Check.Fuzz.completed out.Check.Fuzz.applied;
          if out.Check.Fuzz.violations = [] then begin
            print_endline "no violations";
            `Ok ()
          end
          else begin
            List.iter
              (fun v ->
                Printf.printf "VIOLATION: %s\n"
                  (Check.Durable_lin.violation_to_string v))
              out.Check.Fuzz.violations;
            `Error (false, "durable-linearizability violations found")
          end
        | None ->
          let res =
            FS.fuzz ~nshards ~fault:fault_v ~gen_op ~template ~iters
              ~log:print_endline
              ~runner:(Campaign.run ~j:jobs)
              ()
          in
          Printf.printf "%d episodes (%d crashed), %d failing\n"
            res.Check.Fuzz.episodes res.Check.Fuzz.crashes
            (List.length res.Check.Fuzz.failures);
          (match res.Check.Fuzz.failures with
           | [] -> `Ok ()
           | first :: _ ->
             print_endline "shrinking first failure...";
             let small =
               FS.shrink ~nshards ~fault:fault_v ~gen_op
                 first.Check.Fuzz.episode
             in
             Printf.printf "shrunk to: %s\nreplay with:\n  %s\n"
               (Fmt.str "%a" Check.Fuzz.pp_episode small)
               (Check.Fuzz_shard.repro_command ~nshards ~multi_pct ~cross_pct
                  ~fault:fault_v ~ds small);
             `Error (false, "durable-linearizability violations found"))
      end
    end

let fuzz iters variant ds threads epsilon log_size ops seed fault crash_op
    crash_time no_crash bg_period flit dist_rw log_mirror slot_bitmap detect
    lsm_ckpt nshards multi_pct cross_pct persist_policy jobs =
  if nshards > 1 then begin
    if persist_policy <> None then
      `Error (true, "--persist-policy is not supported with --shards")
    else if variant <> "durable" then
      `Error (true, "--shards requires --variant durable (sharding is durable-only)")
    else if flit || dist_rw || log_mirror || slot_bitmap || detect || lsm_ckpt
    then
      `Error
        ( true,
          "--flit/--dist-rw/--log-mirror/--slot-bitmap/--detect/--lsm-ckpt \
           are not supported with --shards" )
    else
      fuzz_sharded ~iters ~ds ~threads ~epsilon ~log_size ~ops ~seed ~fault
        ~crash_op ~crash_time ~no_crash ~bg_period ~nshards ~multi_pct
        ~cross_pct ~jobs
  end
  else if nshards < 1 then `Error (true, "--shards must be at least 1")
  else
  match parse_policy persist_policy with
  | Error m -> `Error (true, m)
  | Ok persist_policy ->
  let variant_v =
    match variant with
    | "volatile" -> Ok Prep.Config.Volatile
    | "buffered" -> Ok Prep.Config.Buffered
    | "durable" -> Ok Prep.Config.Durable
    | other -> Error (Printf.sprintf "unknown variant %S" other)
  in
  match (variant_v, parse_fault fault, fuzz_ds ds) with
  | Error m, _, _ | _, Error m, _ | _, _, Error m -> `Error (true, m)
  | Ok mode, Ok fault, Ok ((module Ds), gen_op) ->
    let module F = Check.Fuzz.Make (Ds) in
    if threads < 1 || threads > F.max_threads then
      `Error
        ( true,
          Printf.sprintf "--threads must be between 1 and %d (got %d)"
            F.max_threads threads )
    else if
      mode = Prep.Config.Volatile && (crash_op <> None || crash_time <> None)
    then
      `Error (true, "volatile episodes cannot crash: drop the crash flag")
    else if detect && mode <> Prep.Config.Durable then
      `Error (true, "--detect requires --variant durable")
    else if fault = Prep.Config.Response_before_log_persist && not detect then
      `Error (true, "--fault response-before-log-persist requires --detect")
    else if lsm_ckpt && mode = Prep.Config.Volatile then
      `Error (true, "--lsm-ckpt requires --variant buffered or durable")
    else if lsm_ckpt && not (List.mem ds [ "hashmap"; "rbtree"; "skiplist" ])
    then
      `Error
        (true, "--lsm-ckpt needs a map data structure (per-key dirty tracking)")
    else if fault = Prep.Config.Manifest_before_segment_seal && not lsm_ckpt
    then `Error (true, "--fault manifest-before-seal requires --lsm-ckpt")
    else
    let template =
      {
        Check.Fuzz.workload_seed = seed;
        threads;
        epsilon;
        log_size;
        ops_per_worker = ops;
        bg_period;
        preempt_prob = 0.02;
        crash = Check.Fuzz.No_crash;
      }
    in
    let replay =
      match (crash_op, crash_time, no_crash) with
      | Some n, _, _ -> Some (Check.Fuzz.At_op n)
      | None, Some ns, _ -> Some (Check.Fuzz.At_time ns)
      | None, None, true -> Some Check.Fuzz.No_crash
      | None, None, false -> None
    in
    (match replay with
     | Some crash ->
       (* replay a single, fully specified episode (shrunk repro) *)
       let ep = { template with crash } in
       let out =
         F.run_episode ~flit ~dist_rw ~log_mirror ~slot_bitmap ~detect
           ~lsm_ckpt ?persist_policy ~mode ~fault ~gen_op ep
       in
       Printf.printf
         "episode %s: crashed=%b logged=%d completed=%d applied=%d\n"
         (Fmt.str "%a" Check.Fuzz.pp_episode ep)
         out.Check.Fuzz.crashed out.Check.Fuzz.logged out.Check.Fuzz.completed
         out.Check.Fuzz.applied;
       if out.Check.Fuzz.violations = [] then begin
         print_endline "no violations";
         `Ok ()
       end
       else begin
         List.iter
           (fun v ->
             Printf.printf "VIOLATION: %s\n"
               (Check.Durable_lin.violation_to_string v))
           out.Check.Fuzz.violations;
         `Error (false, "durable-linearizability violations found")
       end
     | None ->
       let res =
         F.fuzz ~flit ~dist_rw ~log_mirror ~slot_bitmap ~detect ~lsm_ckpt
           ?persist_policy ~mode ~fault ~gen_op ~template ~iters
           ~log:print_endline ~runner:(Campaign.run ~j:jobs) ()
       in
       Printf.printf "%d episodes (%d crashed), %d failing\n"
         res.Check.Fuzz.episodes res.Check.Fuzz.crashes
         (List.length res.Check.Fuzz.failures);
       (match res.Check.Fuzz.failures with
        | [] -> `Ok ()
        | first :: _ ->
          print_endline "shrinking first failure...";
          let small =
            F.shrink ~flit ~dist_rw ~log_mirror ~slot_bitmap ~detect
              ~lsm_ckpt ?persist_policy ~mode ~fault ~gen_op
              first.Check.Fuzz.episode
          in
          Printf.printf "shrunk to: %s\nreplay with:\n  %s\n"
            (Fmt.str "%a" Check.Fuzz.pp_episode small)
            (Check.Fuzz.repro_command ~flit ~dist_rw ~log_mirror ~slot_bitmap
               ~detect ~lsm_ckpt ?persist_policy ~mode ~fault ~ds small);
          `Error (false, "durable-linearizability violations found")))

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Crash-point fuzzing: random crash injection, durable-linearizability \
          checking, counterexample shrinking")
    Term.(
      ret
        (const fuzz $ iters_arg $ variant_arg $ ds_arg $ fuzz_threads_arg
       $ fuzz_epsilon_arg $ fuzz_log_size_arg $ fuzz_ops_arg $ fuzz_seed_arg
       $ fault_arg $ crash_op_arg $ crash_time_arg $ no_crash_arg
       $ bg_period_arg $ flit_arg $ dist_rw_arg $ log_mirror_arg
       $ slot_bitmap_arg $ detect_arg $ lsm_ckpt_arg $ fuzz_shards_arg
       $ multi_pct_arg $ cross_pct_arg $ persist_policy_arg $ jobs_arg))

(* ---- explore ---- *)

let exp_threads_arg =
  Arg.(value & opt int 2 & info [ "threads"; "t" ] ~docv:"N"
         ~doc:"Worker threads (small scope: 2-3).")

let exp_ops_arg =
  Arg.(value & opt int 3 & info [ "ops" ] ~docv:"N" ~doc:"Operations per worker.")

let exp_epsilon_arg =
  Arg.(value & opt int 2 & info [ "epsilon"; "e" ] ~docv:"EPS" ~doc:"Flush boundary step.")

let exp_log_size_arg =
  Arg.(value & opt int 16 & info [ "log-size" ] ~docv:"N" ~doc:"Shared log entries.")

let exp_seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let exp_sockets_arg =
  Arg.(value & opt int 2 & info [ "sockets" ] ~docv:"N" ~doc:"NUMA sockets.")

let exp_cores_arg =
  Arg.(value & opt int 2 & info [ "cores" ] ~docv:"N" ~doc:"Cores per socket (= beta).")

let max_schedules_arg =
  Arg.(value & opt int Check.Explore.default_budget.Check.Explore.max_schedules
       & info [ "max-schedules" ] ~docv:"N" ~doc:"Schedule budget.")

let max_states_arg =
  Arg.(value & opt int Check.Explore.default_budget.Check.Explore.max_states
       & info [ "max-states" ] ~docv:"N" ~doc:"Distinct-state budget.")

let max_steps_arg =
  Arg.(value & opt int Check.Explore.default_budget.Check.Explore.max_steps
       & info [ "max-steps" ] ~docv:"N" ~doc:"Scheduler steps per schedule (depth).")

let frontier_lines_arg =
  Arg.(value
       & opt int Check.Explore.default_budget.Check.Explore.max_frontier_lines
       & info [ "frontier-lines" ] ~docv:"K"
           ~doc:"Dirty-line cap per crash point (2^K subsets).")

let no_prune_arg =
  let doc =
    "Disable sleep-set and state-hash pruning (naive enumeration, for \
     measuring the reduction factor)."
  in
  Arg.(value & flag & info [ "no-prune" ] ~doc)

let shards_arg =
  let doc =
    "Split the oracle work (crash recoveries, terminal model-replays) into \
     $(docv) independent shards run as a campaign; the merged result is \
     audited against the replicated schedule DFS. Keep $(docv) fixed while \
     varying -j: the merge is a function of the shard set, not of how many \
     domains ran it."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"K" ~doc)

let replay_arg =
  let doc =
    "Replay a single schedule from a run-length-encoded decision trace \
     (e.g. '3*12,5,4*7') instead of exploring."
  in
  Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"TRACE" ~doc)

let crash_step_arg =
  let doc = "With --replay: crash at the given runtime scheduler step." in
  Arg.(value & opt (some int) None & info [ "crash-step" ] ~docv:"N" ~doc)

let frontier_arg =
  let doc =
    "With --crash-step: frontier mask — bit $(i) commits the $(i)-th dirty \
     NVM line (sorted) to media before the crash."
  in
  Arg.(value & opt int 0 & info [ "frontier" ] ~docv:"MASK" ~doc)

let no_persistence_arg =
  let doc =
    "Exclude the checkpoint (persistence) fibers from the explored schedule \
     space. Sound when the scope's total op count stays below --epsilon and \
     the log cannot wrap: combiners never reach a flush boundary, and \
     recovery replays the whole log over the empty checkpoint. Required in \
     practice for --uc-shards, whose per-shard checkpoint fibers never \
     quiesce and make the space unbounded."
  in
  Arg.(value & flag & info [ "no-persistence" ] ~doc)

(* Shared result reporting for the flat and sharded explorers (both return
   [Check.Explore.result]). *)
let report_explore_result ~repro_command res =
  let s = res.Check.Explore.stats in
  Printf.printf
    "schedules %d (terminals %d)  steps %d  states %d  dedup-hits %d  \
     sleep-skips %d\n\
     crash points %d  frontiers %d  recoveries %d  truncations %d  \
     depth cutoffs %d  stutter cuts %d\n\
     max completed-op loss %d  distinct terminal states %d  exhausted %b\n"
    s.Check.Explore.schedules s.Check.Explore.terminals s.Check.Explore.steps
    s.Check.Explore.states s.Check.Explore.dedup_hits
    s.Check.Explore.sleep_skips s.Check.Explore.crash_points
    s.Check.Explore.frontiers s.Check.Explore.recoveries
    s.Check.Explore.frontier_truncations s.Check.Explore.depth_cutoffs
    s.Check.Explore.stutter_cuts s.Check.Explore.max_completed_loss
    (List.length res.Check.Explore.terminal_states)
    res.Check.Explore.exhausted;
  match res.Check.Explore.violation with
  | None ->
    print_endline "no violations";
    `Ok ()
  | Some v ->
    List.iter
      (fun vi ->
        Printf.printf "VIOLATION: %s\n"
          (Check.Durable_lin.violation_to_string vi))
      v.Check.Explore.v_violations;
    Printf.printf "logged=%d completed=%d applied=%d\n"
      v.Check.Explore.v_logged v.Check.Explore.v_completed
      v.Check.Explore.v_applied;
    Printf.printf "decision trace: %s\n"
      (Check.Explore.decisions_to_string v.Check.Explore.v_decisions);
    (match v.Check.Explore.v_crash with
     | Some (step, mask) ->
       Printf.printf "crash: step %d, frontier mask %d\n" step mask
     | None -> print_endline "crash: none (terminal-state violation)");
    Printf.printf "replay with:\n  %s\n"
      (repro_command v.Check.Explore.v_decisions v.Check.Explore.v_crash);
    `Error (false, "durable-linearizability violations found")

let report_explore_replay (violations, crashed, logged, completed, applied) =
  Printf.printf "replay: crashed=%b logged=%d completed=%d applied=%d\n"
    crashed logged completed applied;
  if violations = [] then begin
    print_endline "no violations";
    `Ok ()
  end
  else begin
    List.iter
      (fun v ->
        Printf.printf "VIOLATION: %s\n"
          (Check.Durable_lin.violation_to_string v))
      violations;
    `Error (false, "durable-linearizability violations found")
  end

(* Op mix for sharded exploration: single-key inserts/gets plus cross-shard
   multi-puts and transfers over a small key range, so the 2PC paths are in
   the explored space. The map structures share op codes. *)
let sharded_explore_gen rng =
  let k = Sim.Rng.int rng 8 in
  match Sim.Rng.int rng 4 with
  | 0 -> (Prep.Sharded_uc.op_multi_put, [| k; k + 1; 1 + Sim.Rng.int rng 9 |])
  | 1 -> (Seqds.Hashmap.op_insert, [| k; Sim.Rng.int rng 100 |])
  | 2 -> (Seqds.Hashmap.op_get, [| k |])
  | _ -> (Prep.Sharded_uc.op_transfer, [| k; k + 3; 1 |])

let explore variant ds threads ops epsilon log_size seed sockets cores fault
    flit dist_rw log_mirror slot_bitmap detect lsm_ckpt lsm_fanout
    max_schedules max_states max_steps frontier_lines no_prune no_persistence
    shards uc_shards persist_policy jobs replay crash_step frontier =
  match parse_policy persist_policy with
  | Error m -> `Error (true, m)
  | Ok persist_policy ->
  let variant_v =
    match variant with
    | "volatile" -> Ok Prep.Config.Volatile
    | "buffered" -> Ok Prep.Config.Buffered
    | "durable" -> Ok Prep.Config.Durable
    | other -> Error (Printf.sprintf "unknown variant %S" other)
  in
  match (variant_v, parse_fault fault, fuzz_ds ds) with
  | Error m, _, _ | _, Error m, _ | _, _, Error m -> `Error (true, m)
  | _, _, _ when detect && variant <> "durable" ->
    `Error (true, "--detect requires --variant durable")
  | _, Ok f, _ when f = Prep.Config.Response_before_log_persist && not detect
    ->
    `Error (true, "--fault response-before-log-persist requires --detect")
  | _, Ok f, _
    when f = Prep.Config.Manifest_before_segment_seal && not lsm_ckpt ->
    `Error (true, "--fault manifest-before-seal requires --lsm-ckpt")
  | _, _, _ when lsm_ckpt && variant = "volatile" ->
    `Error (true, "--lsm-ckpt requires --variant buffered or durable")
  | _, _, _
    when lsm_ckpt && not (List.mem ds [ "hashmap"; "rbtree"; "skiplist" ]) ->
    `Error
      (true, "--lsm-ckpt needs a map data structure (per-key dirty tracking)")
  | _, _, _ when lsm_fanout < 2 ->
    `Error (true, "--lsm-fanout must be at least 2")
  | Ok mode, Ok fault_v, Ok ((module Ds), gen_op) ->
    let scope =
      {
        Check.Explore.seed;
        threads;
        ops_per_worker = ops;
        epsilon;
        log_size;
        sockets;
        cores_per_socket = cores;
        prune = not no_prune;
        persistence = not no_persistence;
      }
    in
    let budget =
      {
        Check.Explore.max_schedules;
        max_states;
        max_steps;
        max_frontier_lines = frontier_lines;
      }
    in
    if uc_shards > 1 then begin
      let _ = mode in
      if persist_policy <> None then
        `Error (true, "--persist-policy is not supported with --uc-shards")
      else if variant <> "durable" then
        `Error
          (true, "--uc-shards requires --variant durable (sharding is durable-only)")
      else if flit || dist_rw || log_mirror || slot_bitmap || detect || lsm_ckpt
      then
        `Error
          ( true,
            "--flit/--dist-rw/--log-mirror/--slot-bitmap/--detect/--lsm-ckpt \
             are not supported with --uc-shards" )
      else if shards > 1 then
        `Error
          ( true,
            "--shards (oracle campaign split) is not supported with \
             --uc-shards" )
      else if not (List.mem ds [ "hashmap"; "rbtree"; "skiplist" ]) then
        `Error (true, "--uc-shards needs a map data structure (ops route by key)")
      else begin
        let module ES = Check.Explore_shard.Make (Ds) in
        if threads < 1 || threads > ES.max_threads scope then
          `Error
            ( true,
              Printf.sprintf "--threads must be between 1 and %d (got %d)"
                (ES.max_threads scope) threads )
        else begin
          let repro_command decisions crash =
            Printf.sprintf
              "dune exec bin/prep_cli.exe -- explore --variant durable --ds \
               %s --uc-shards %d --threads %d --ops %d --epsilon %d \
               --log-size %d --seed %d --sockets %d --cores %d --fault %s%s \
               --replay '%s'%s"
              ds uc_shards threads ops epsilon log_size seed sockets cores
              fault
              (if no_persistence then " --no-persistence" else "")
              (Check.Explore.decisions_to_string decisions)
              (match crash with
               | None -> ""
               | Some (st, m) ->
                 Printf.sprintf " --crash-step %d --frontier %d" st m)
          in
          match replay with
          | Some trace_str ->
            let decisions = Check.Explore.decisions_of_string trace_str in
            let crash = Option.map (fun st -> (st, frontier)) crash_step in
            report_explore_replay
              (ES.replay ~nshards:uc_shards ~fault:fault_v
                 ~gen_op:sharded_explore_gen ~scope ~decisions ?crash ())
          | None ->
            report_explore_result ~repro_command
              (ES.explore ~budget ~nshards:uc_shards ~fault:fault_v
                 ~gen_op:sharded_explore_gen ~scope ())
        end
      end
    end
    else if uc_shards < 1 then `Error (true, "--uc-shards must be at least 1")
    else begin
      let module E = Check.Explore.Make (Ds) in
      if threads < 1 || threads > E.max_threads scope then
        `Error
          ( true,
            Printf.sprintf "--threads must be between 1 and %d (got %d)"
              (E.max_threads scope) threads )
      else if shards < 1 then `Error (true, "--shards must be at least 1")
      else begin
        let flag_str =
          String.concat ""
            [
              (if flit then " --flit" else "");
              (if dist_rw then " --dist-rw" else "");
              (if log_mirror then " --log-mirror" else "");
              (if slot_bitmap then " --slot-bitmap" else "");
              (if detect then " --detect" else "");
              (if lsm_ckpt then " --lsm-ckpt" else "");
              (if lsm_ckpt && lsm_fanout <> 4 then
                 Printf.sprintf " --lsm-fanout %d" lsm_fanout
               else "");
              (if no_persistence then " --no-persistence" else "");
              (match persist_policy with
               | Some p when not (Nvm.Persist.is_default p) ->
                 Printf.sprintf " --persist-policy \"%s\""
                   (Nvm.Persist.to_spec p)
               | Some _ | None -> "");
            ]
        in
        let repro_command decisions crash =
          Printf.sprintf
            "dune exec bin/prep_cli.exe -- explore --variant %s --ds %s \
             --threads %d --ops %d --epsilon %d --log-size %d --seed %d \
             --sockets %d --cores %d --fault %s%s --replay '%s'%s"
            variant ds threads ops epsilon log_size seed sockets cores fault
            flag_str
            (Check.Explore.decisions_to_string decisions)
            (match crash with
             | None -> ""
             | Some (s, m) -> Printf.sprintf " --crash-step %d --frontier %d" s m)
        in
        match replay with
        | Some trace_str ->
          let decisions = Check.Explore.decisions_of_string trace_str in
          let crash = Option.map (fun s -> (s, frontier)) crash_step in
          report_explore_replay
            (E.replay ~flit ~dist_rw ~log_mirror ~slot_bitmap ~detect
               ~lsm_ckpt ~lsm_fanout ?persist_policy ~mode ~fault:fault_v
               ~gen_op ~scope ~decisions ?crash ())
        | None ->
          let res =
            if shards = 1 then
              E.explore ~flit ~dist_rw ~log_mirror ~slot_bitmap ~detect
                ~lsm_ckpt ~lsm_fanout ?persist_policy ~budget ~mode
                ~fault:fault_v ~gen_op ~scope ()
            else
              Check.Explore.merge_shards
                (Campaign.run ~j:jobs
                   (Array.init shards (fun i () ->
                        E.explore ~flit ~dist_rw ~log_mirror ~slot_bitmap
                          ~detect ~lsm_ckpt ~lsm_fanout ?persist_policy
                          ~budget ~shard:(i, shards) ~mode ~fault:fault_v
                          ~gen_op ~scope ())))
          in
          report_explore_result ~repro_command res
      end
    end

let explore_cmd =
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Bounded exhaustive schedule-and-crash exploration: every \
          interleaving of a small-scope workload, every reachable crash \
          frontier, DPOR-style pruning, replayable decision traces")
    Term.(
      ret
        (const explore $ variant_arg $ ds_arg $ exp_threads_arg $ exp_ops_arg
       $ exp_epsilon_arg $ exp_log_size_arg $ exp_seed_arg $ exp_sockets_arg
       $ exp_cores_arg $ fault_arg $ flit_arg $ dist_rw_arg $ log_mirror_arg
       $ slot_bitmap_arg $ detect_arg $ lsm_ckpt_arg $ lsm_fanout_arg
       $ max_schedules_arg $ max_states_arg $ max_steps_arg
       $ frontier_lines_arg $ no_prune_arg $ no_persistence_arg $ shards_arg
       $ uc_shards_arg $ persist_policy_arg $ jobs_arg $ replay_arg
       $ crash_step_arg $ frontier_arg))

(* ---- optimize-persist ---- *)

let op_out_arg =
  Arg.(value
       & opt string "persist-policy.json"
       & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Write the proven policy JSON here (--persist-policy input).")

let op_report_arg =
  Arg.(value
       & opt (some string) None
       & info [ "report" ] ~docv:"FILE"
           ~doc:"Also write the full decision report JSON (admitted and \
                 rejected candidates, measurements, repro commands).")

let op_fuzz_threads_arg =
  Arg.(value & opt int 4
       & info [ "fuzz-threads" ] ~docv:"N"
           ~doc:"Worker threads in the measurement run and fuzz soak.")

let op_fuzz_ops_arg =
  Arg.(value & opt int 150
       & info [ "fuzz-ops" ] ~docv:"N"
           ~doc:"Ops per worker in the measurement run and fuzz soak.")

let op_fuzz_iters_arg =
  Arg.(value & opt int 30
       & info [ "fuzz-iters" ] ~docv:"N"
           ~doc:"Crash episodes in the per-candidate differential fuzz soak.")

let optimize_persist variant ds threads ops epsilon log_size seed sockets
    cores flit dist_rw log_mirror slot_bitmap detect lsm_ckpt max_schedules
    max_states max_steps frontier_lines no_persistence fuzz_threads fuzz_ops
    fuzz_iters bg_period out report_file =
  let variant_v =
    match variant with
    | "buffered" -> Ok Prep.Config.Buffered
    | "durable" -> Ok Prep.Config.Durable
    | "volatile" ->
      Error "optimize-persist needs a persistent variant (buffered/durable)"
    | other -> Error (Printf.sprintf "unknown variant %S" other)
  in
  match (variant_v, fuzz_ds ds) with
  | Error m, _ | _, Error m -> `Error (true, m)
  | Ok mode, Ok ((module Ds), gen_op) ->
    if detect && mode <> Prep.Config.Durable then
      `Error (true, "--detect requires --variant durable")
    else if lsm_ckpt && not (List.mem ds [ "hashmap"; "rbtree"; "skiplist" ])
    then
      `Error
        (true, "--lsm-ckpt needs a map data structure (per-key dirty tracking)")
    else begin
      let module PI = Check.Persist_infer.Make (Ds) in
      let scope =
        {
          Check.Explore.seed;
          threads;
          ops_per_worker = ops;
          epsilon;
          log_size;
          sockets;
          cores_per_socket = cores;
          prune = true;
          persistence = not no_persistence;
        }
      in
      let budget =
        {
          Check.Explore.max_schedules;
          max_states;
          max_steps;
          max_frontier_lines = frontier_lines;
        }
      in
      let template =
        {
          Check.Fuzz.workload_seed = seed;
          threads = fuzz_threads;
          epsilon = 16;
          log_size = 256;
          ops_per_worker = fuzz_ops;
          bg_period;
          preempt_prob = 0.02;
          crash = Check.Fuzz.No_crash;
        }
      in
      let report =
        PI.infer ~flit ~dist_rw ~log_mirror ~slot_bitmap ~detect ~lsm_ckpt
          ~log:print_endline ~mode ~gen_op ~scope ~budget ~template
          ~fuzz_iters ~ds ()
      in
      let write path contents =
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc contents)
      in
      write out (Nvm.Persist.to_json report.Check.Persist_infer.r_policy);
      Printf.printf "policy written to %s\n" out;
      (match report_file with
       | Some f ->
         write f (Check.Persist_infer.report_to_json report);
         Printf.printf "report written to %s\n" f
       | None -> ());
      let admitted =
        Nvm.Persist.weakenings report.Check.Persist_infer.r_policy
      in
      Printf.printf
        "admitted %d weakenings (explorer exhausted %b); flushes %d -> %d, \
         fences %d -> %d\n"
        (List.length admitted) report.Check.Persist_infer.r_exhausted
        report.Check.Persist_infer.r_baseline_flushes
        report.Check.Persist_infer.r_policy_flushes
        report.Check.Persist_infer.r_baseline_fences
        report.Check.Persist_infer.r_policy_fences;
      `Ok ()
    end

let optimize_persist_cmd =
  Cmd.v
    (Cmd.info "optimize-persist"
       ~doc:
         "Infer a minimal per-site persistency policy: measure which \
          flush/fence sites are hot, greedily propose one-site weakenings \
          (elide, downgrade, defer) hottest-first, and admit each only if \
          the bounded-exhaustive explorer exhausts its scope with zero \
          violations AND a differential crash-fuzz soak stays clean. Emits \
          the proven policy as JSON for --persist-policy; rejected \
          candidates are recorded with replayable repro commands")
    Term.(
      ret
        (const optimize_persist $ variant_arg $ ds_arg $ exp_threads_arg
       $ exp_ops_arg $ exp_epsilon_arg $ exp_log_size_arg $ exp_seed_arg
       $ exp_sockets_arg $ exp_cores_arg $ flit_arg $ dist_rw_arg
       $ log_mirror_arg $ slot_bitmap_arg $ detect_arg $ lsm_ckpt_arg
       $ max_schedules_arg $ max_states_arg $ max_steps_arg
       $ frontier_lines_arg $ no_persistence_arg $ op_fuzz_threads_arg
       $ op_fuzz_ops_arg $ op_fuzz_iters_arg $ bg_period_arg $ op_out_arg
       $ op_report_arg))

(* ---- session ---- *)

let session_threads_arg =
  Arg.(value & opt int 4 & info [ "threads"; "t" ] ~docv:"N"
         ~doc:"Client threads (1-7).")

let session_ops_arg =
  Arg.(value & opt int 40 & info [ "ops" ] ~docv:"N"
         ~doc:"Scripted update operations per client.")

let session_epsilon_arg =
  Arg.(value & opt int 8 & info [ "epsilon"; "e" ] ~docv:"EPS"
         ~doc:"Flush boundary step.")

let session_log_size_arg =
  Arg.(value & opt int 1024 & info [ "log-size" ] ~docv:"N"
         ~doc:"Shared log entries.")

let session_crashes_arg =
  Arg.(value & opt int 3 & info [ "crashes" ] ~docv:"N"
         ~doc:"Power failures to inject per session.")

let session_seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Base seed.")

let sessions_arg =
  Arg.(value & opt int 1 & info [ "sessions" ] ~docv:"N"
         ~doc:"Independent sessions on consecutive seeds.")

let session_json_arg =
  let doc = "Write a bench-schema JSON artifact of the campaign to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let json_of_outcome ~ds ~threads (o : Session.outcome) =
  let st = o.Session.mem_stats in
  let counters =
    [ ("seed", 0); ("epochs", List.length o.Session.epochs);
      ("crashes", o.Session.crashes_injected);
      ("submitted", o.Session.submitted);
      ("resubmitted", o.Session.resubmitted);
      ("completed", o.Session.completed); ("lost", o.Session.lost);
      ("duplicated", o.Session.duplicated);
      ("violations", List.length o.Session.violations) ]
  in
  let json_counters =
    "{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "%S: %d" k v) counters)
    ^ "}"
  in
  Printf.sprintf
    {|{"system": %S, "workload": %S, "workers": %d, "ops": %d, "duration_ns": %d, "throughput": %.1f, "wbinvd": %d, "clwb": %d, "clwb_elided": %d, "clwb_coalesced": %d, "clflush": %d, "clflush_elided": %d, "sfence": %d, "sfence_elided": %d, "bg_flushes": %d, "counters": %s}|}
    "PREP-Durable/det" ("session " ^ ds) threads o.Session.history_len
    o.Session.duration_ns
    (float_of_int o.Session.history_len
    *. 1e9
    /. float_of_int o.Session.duration_ns)
    st.Nvm.Memory.wbinvd st.Nvm.Memory.clwb st.Nvm.Memory.clwb_elided
    st.Nvm.Memory.clwb_coalesced st.Nvm.Memory.clflush
    st.Nvm.Memory.clflush_elided st.Nvm.Memory.sfence
    st.Nvm.Memory.sfence_elided st.Nvm.Memory.bg_flushes json_counters

let session ds threads ops epsilon log_size crashes seed sessions bg_period
    detect jobs json =
  match fuzz_ds ds with
  | Error m -> `Error (true, m)
  | Ok ((module Ds), gen_op) ->
    let module S = Session.Make (Ds) in
    if threads < 1 || threads > S.max_threads then
      `Error
        ( true,
          Printf.sprintf "--threads must be between 1 and %d (got %d)"
            S.max_threads threads )
    else begin
      let cfg =
        {
          Session.default_config with
          Session.seed;
          threads;
          ops_per_client = ops;
          epsilon;
          log_size;
          crashes;
          detect;
          bg_period;
        }
      in
      let outcomes = S.campaign ~j:jobs cfg ~gen_op ~sessions in
      List.iteri
        (fun i (o : Session.outcome) ->
          Printf.printf "session %d (seed %d):\n" i (seed + i);
          List.iter
            (fun (e : Session.epoch_info) ->
              Printf.printf
                "  epoch %d: %s, %d re-submitted\n" e.Session.epoch
                (if e.Session.crashed then "crashed" else "quiescent")
                e.Session.resubmitted)
            o.Session.epochs;
          Printf.printf
            "  submitted %d  applied %d  completed %d/%d  lost %d  \
             duplicated %d  violations %d\n"
            o.Session.submitted o.Session.history_len o.Session.completed
            (threads * ops) o.Session.lost o.Session.duplicated
            (List.length o.Session.violations);
          List.iter
            (fun v ->
              Printf.printf "  VIOLATION: %s\n"
                (Check.Durable_lin.violation_to_string v))
            o.Session.violations)
        outcomes;
      let total f = List.fold_left (fun a o -> a + f o) 0 outcomes in
      let crashes_tot = total (fun o -> o.Session.crashes_injected) in
      let resub = total (fun o -> o.Session.resubmitted) in
      let lost = total (fun o -> o.Session.lost) in
      let dup = total (fun o -> o.Session.duplicated) in
      let viol = total (fun o -> List.length o.Session.violations) in
      (match json with
       | None -> ()
       | Some path ->
         let contents =
           Printf.sprintf
             "{\n  \"schema_version\": %d,\n\
             \  \"config\": {\"ds\": %S, \"threads\": %d, \"ops\": %d, \
              \"epsilon\": %d, \"log_size\": %d, \"crashes\": %d, \"seed\": \
              %d, \"detect\": %b},\n\
             \  \"sessions\": [\n    %s\n  ]\n}\n"
             Telemetry.Json.schema_version ds threads ops epsilon log_size
             crashes seed detect
             (String.concat ",\n    "
                (List.map (json_of_outcome ~ds ~threads) outcomes));
         in
         let oc = open_out path in
         output_string oc contents;
         close_out oc;
         (match Telemetry.Json.(validate_string validate_bench contents) with
          | Ok () -> Printf.printf "artifact: %s\n" path
          | Error errs ->
            List.iter (fun e -> Printf.eprintf "%s: %s\n" path e) errs;
            Printf.eprintf
              "session FAILED: %s does not validate against the bench schema\n"
              path;
            exit 1));
      if detect then
        if lost = 0 && dup = 0 && viol = 0 then begin
          Printf.printf
            "exactly-once: PASS (%d clients, %d crashes, %d resubmitted, 0 \
             lost, 0 duplicated)\n"
            (threads * sessions) crashes_tot resub;
          `Ok ()
        end
        else begin
          Printf.printf
            "exactly-once: FAIL (%d lost, %d duplicated, %d violations)\n"
            lost dup viol;
          `Error (false, "exactly-once contract violated")
        end
      else if dup = 0 && viol = 0 then begin
        Printf.printf
          "baseline (no --detect): %d crashes, %d lost, 0 duplicated — \
           losses are the gap --detect closes\n"
          crashes_tot lost;
        `Ok ()
      end
      else begin
        Printf.printf
          "baseline (no --detect): FAIL (%d duplicated, %d violations)\n" dup
          viol;
        `Error (false, "durable-linearizability violations found")
      end
    end

let session_cmd =
  Cmd.v
    (Cmd.info "session"
       ~doc:
         "Crash-restart-continue sessions: scripted clients survive injected \
          power failures, resume via resolve under --detect, and the \
          cumulative history is checked for exactly-once application")
    Term.(
      ret
        (const session $ ds_arg $ session_threads_arg $ session_ops_arg
       $ session_epsilon_arg $ session_log_size_arg $ session_crashes_arg
       $ session_seed_arg $ sessions_arg $ bg_period_arg $ detect_arg
       $ jobs_arg $ session_json_arg))

(* ---- sweep: closed-loop threads x read-pct grid, campaign-parallel ---- *)

let json_of_result (r : Experiment.result) =
  let counters =
    "{"
    ^ String.concat ", "
        (List.map
           (fun (k, v) -> Printf.sprintf "%S: %d" k v)
           (Experiment.counters r))
    ^ "}"
  in
  Printf.sprintf
    {|{"system": %S, "workload": %S, "workers": %d, "ops": %d, "duration_ns": %d, "throughput": %.1f, "wbinvd": %d, "clwb": %d, "clwb_elided": %d, "clwb_coalesced": %d, "clflush": %d, "clflush_elided": %d, "sfence": %d, "sfence_elided": %d, "bg_flushes": %d, "counters": %s}|}
    r.Experiment.system r.Experiment.workload r.Experiment.workers
    r.Experiment.ops r.Experiment.duration_ns r.Experiment.throughput
    r.Experiment.wbinvd r.Experiment.clwb r.Experiment.clwb_elided
    r.Experiment.clwb_coalesced r.Experiment.clflush
    r.Experiment.clflush_elided r.Experiment.sfence r.Experiment.sfence_elided
    r.Experiment.bg_flushes counters

let write_bench_json path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  match Telemetry.Json.(validate_string validate_bench contents) with
  | Ok () ->
    Printf.printf "artifact: %s\n" path;
    Ok ()
  | Error errs ->
    List.iter (fun e -> Printf.eprintf "%s: %s\n" path e) errs;
    Error
      (Printf.sprintf "%s does not validate against the bench schema" path)

let int_list_of_string s =
  try
    Ok
      (String.split_on_char ',' s
      |> List.filter (fun t -> String.trim t <> "")
      |> List.map (fun t -> int_of_string (String.trim t)))
  with _ -> Error (Printf.sprintf "bad integer list %S" s)

let float_list_of_string s =
  try
    Ok
      (String.split_on_char ',' s
      |> List.filter (fun t -> String.trim t <> "")
      |> List.map (fun t -> float_of_string (String.trim t)))
  with _ -> Error (Printf.sprintf "bad number list %S" s)

let map_systems ds : ((module SYSTEMS), string) result =
  match ds with
  | "hashmap" -> Ok (module Experiment.Systems (Seqds.Hashmap) : SYSTEMS)
  | "rbtree" -> Ok (module Experiment.Systems (Seqds.Rbtree) : SYSTEMS)
  | "skiplist" -> Ok (module Experiment.Systems (Seqds.Skiplist) : SYSTEMS)
  | other ->
    Error
      (Printf.sprintf
         "data structure %S is not a map (sweep/serve-sim need --read-pct \
          workloads: hashmap, rbtree or skiplist)"
         other)

let threads_list_arg =
  let doc = "Comma-separated worker-thread counts to sweep." in
  Arg.(value & opt string "2,8,16" & info [ "threads-list" ] ~docv:"LIST" ~doc)

let read_pcts_arg =
  let doc = "Comma-separated read percentages to sweep." in
  Arg.(value & opt string "50,90" & info [ "read-pcts" ] ~docv:"LIST" ~doc)

let sweep_json_arg =
  let doc = "Write a bench-schema JSON artifact of the grid to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let sweep system ds threads_list read_pcts epsilon keys duration seed flit
    dist_rw log_mirror slot_bitmap detect uc_shards jobs json =
  let fail msg = `Error (true, msg) in
  match
    (int_list_of_string threads_list, int_list_of_string read_pcts,
     map_systems ds)
  with
  | Error m, _, _ | _, Error m, _ | _, _, Error m -> fail m
  | Ok threads_l, Ok pcts, Ok (module Sy) -> (
    let max_workers = Sim.Topology.total_cores Sim.Topology.default - 1 in
    if threads_l = [] || pcts = [] then fail "empty sweep grid"
    else if
      List.exists (fun t -> t < 1 || t > max_workers) threads_l
      || List.exists (fun p -> p < 0 || p > 100) pcts
    then
      fail
        (Printf.sprintf "grid out of range (threads 1-%d, read-pct 0-100)"
           max_workers)
    else
      match
        select_system ~uc_shards ~system ~epsilon ~flit ~dist_rw ~log_mirror
          ~slot_bitmap ~detect (module Sy)
      with
      | Error m -> fail m
      | Ok sys ->
        let grid =
          Array.of_list
            (List.concat_map
               (fun t -> List.map (fun p -> (t, p)) pcts)
               threads_l)
        in
        let results =
          Campaign.map ~j:jobs
            (fun (t, p) ->
              Experiment.run ~seed:(Int64.of_int seed) ~duration_ns:duration
                ~warmup_ns:(duration / 5) ~system:sys
                ~workload:
                  (Workload.map_workload ~read_pct:p ~key_range:keys
                     ~prefill_n:(keys / 2))
                ~workers:t ())
            grid
        in
        Array.iter
          (fun (r : Experiment.result) ->
            Printf.printf "%s | %s | %2d threads: %.0f ops/sec (%d ops)\n"
              r.Experiment.system r.Experiment.workload r.Experiment.workers
              r.Experiment.throughput r.Experiment.ops)
          results;
        (match json with
         | None -> `Ok ()
         | Some path -> (
           let contents =
             Printf.sprintf
               "{\n  \"schema_version\": %d,\n\
               \  \"config\": {\"system_name\": %S, \"ds\": %S, \"epsilon\": %d, \
                \"key_range\": %d, \"duration_ns\": %d, \"seed\": %d},\n\
               \  \"results\": [\n    %s\n  ]\n}\n"
               Telemetry.Json.schema_version system ds epsilon keys duration
               seed
               (String.concat ",\n    "
                  (Array.to_list (Array.map json_of_result results)))
           in
           match write_bench_json path contents with
           | Ok () -> `Ok ()
           | Error m -> `Error (false, m))))

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Closed-loop throughput grid over worker threads x read percentage, \
          fanned across domains with -j; emits a bench-schema JSON artifact")
    Term.(
      ret
        (const sweep $ system_arg $ ds_arg $ threads_list_arg $ read_pcts_arg
       $ epsilon_arg $ keys_arg $ duration_arg $ seed_arg $ flit_arg
       $ dist_rw_arg $ log_mirror_arg $ slot_bitmap_arg $ detect_arg
       $ uc_shards_arg $ jobs_arg $ sweep_json_arg))

(* ---- serve-sim: open-loop arrival-process points ---- *)

let arrival_arg =
  let doc = "Arrival process: poisson, bursty (MMPP-2) or diurnal." in
  Arg.(value & opt string "poisson" & info [ "arrival" ] ~docv:"PROC" ~doc)

let rates_arg =
  let doc = "Comma-separated mean offered loads, simulated ops/s." in
  Arg.(value & opt string "1e6" & info [ "rates" ] ~docv:"LIST" ~doc)

let theta_arg =
  let doc = "Zipfian key-popularity skew in (0,1); 0 means uniform keys." in
  Arg.(value & opt float 0.0 & info [ "theta" ] ~docv:"THETA" ~doc)

let burst_ratio_arg =
  let doc = "Bursty arrivals: high-phase rate over low-phase rate." in
  Arg.(value & opt float 4.0 & info [ "burst-ratio" ] ~docv:"R" ~doc)

let dwell_arg =
  let doc = "Bursty arrivals: mean phase dwell time, simulated ns." in
  Arg.(value & opt int 200_000 & info [ "dwell" ] ~docv:"NS" ~doc)

let period_arg =
  let doc = "Diurnal arrivals: modulation period, simulated ns." in
  Arg.(value & opt int 2_000_000 & info [ "period" ] ~docv:"NS" ~doc)

(* An arrival process with the requested mean rate. Bursty splits the mean
   across the two phases at [burst_ratio]; diurnal inverts the 0.55-of-peak
   mean of the thinned cosine profile. *)
let arrival_of ~arrival ~burst_ratio ~dwell ~period rate =
  match arrival with
  | "poisson" -> Ok (Workload.Arrival.Poisson { rate })
  | "bursty" ->
    let rate_low = 2.0 *. rate /. (1.0 +. burst_ratio) in
    Ok
      (Workload.Arrival.Bursty
         {
           rate_low;
           rate_high = burst_ratio *. rate_low;
           dwell_ns = float_of_int dwell;
         })
  | "diurnal" ->
    Ok
      (Workload.Arrival.Diurnal
         { rate_peak = rate /. 0.55; period_ns = float_of_int period })
  | other -> Error (Printf.sprintf "unknown arrival process %S" other)

let shed_arg =
  let doc =
    "Drop-tail admission control: arrivals beyond a backlog of $(docv) \
     queued requests are shed at arrival time instead of queued; shed \
     counts and shed rate are reported per point and in the JSON."
  in
  Arg.(value & opt (some int) None & info [ "shed" ] ~docv:"DEPTH" ~doc)

let serve_sim system ds threads epsilon read_pct keys duration seed flit
    dist_rw log_mirror slot_bitmap detect uc_shards arrival rates theta
    burst_ratio dwell period shed jobs json =
  let fail msg = `Error (true, msg) in
  match (float_list_of_string rates, map_systems ds) with
  | Error m, _ | _, Error m -> fail m
  | Ok rates_l, Ok (module Sy) -> (
    if rates_l = [] then fail "empty --rates list"
    else if List.exists (fun r -> r <= 0.0) rates_l then
      fail "--rates must be positive"
    else if theta < 0.0 || theta >= 1.0 then
      fail "--theta must be 0 (uniform) or in (0,1)"
    else
      match
        ( select_system ~uc_shards ~system ~epsilon ~flit ~dist_rw
            ~log_mirror ~slot_bitmap ~detect (module Sy),
          arrival_of ~arrival ~burst_ratio ~dwell ~period 1.0 )
      with
      | Error m, _ | _, Error m -> fail m
      | Ok sys, Ok _ ->
        let workload =
          if theta = 0.0 then
            Workload.map_workload ~read_pct ~key_range:keys
              ~prefill_n:(keys / 2)
          else
            Workload.map_workload_zipf ~theta ~read_pct ~key_range:keys
              ~prefill_n:(keys / 2)
        in
        let points =
          Campaign.map ~j:jobs
            (fun rate ->
              let arr =
                match arrival_of ~arrival ~burst_ratio ~dwell ~period rate with
                | Ok a -> a
                | Error m -> failwith m
              in
              Openloop.run ~seed:(Int64.of_int seed) ~duration_ns:duration
                ?shed ~system:sys ~workload ~arrival:arr ~workers:threads ())
            (Array.of_list rates_l)
          |> Array.to_list
        in
        List.iter
          (fun (p : Openloop.point) ->
            Printf.printf
              "%s | %s | offered %.0f/s: completed %d/%d (backlog %d, qpeak \
               %d%s)  sojourn p50 %d p95 %d p99 %d ns\n"
              p.Openloop.ol_system p.Openloop.ol_workload
              p.Openloop.ol_offered p.Openloop.ol_completed
              p.Openloop.ol_arrivals p.Openloop.ol_backlogged
              p.Openloop.ol_qmax
              (if p.Openloop.ol_shed > 0 then
                 Printf.sprintf ", shed %d" p.Openloop.ol_shed
               else "")
              p.Openloop.ol_sojourn.Telemetry.Registry.hs_p50
              p.Openloop.ol_sojourn.Telemetry.Registry.hs_p95
              p.Openloop.ol_sojourn.Telemetry.Registry.hs_p99)
          points;
        (match Openloop.knee points with
         | Some k -> Printf.printf "saturation knee: %.0f ops/s\n" k
         | None -> print_endline "saturation knee: not reached");
        (match json with
         | None -> `Ok ()
         | Some path -> (
           let contents =
             Printf.sprintf
               "{\n  \"schema_version\": %d,\n\
               \  \"config\": {\"system_name\": %S, \"ds\": %S, \"arrival\": %S, \
                \"read_pct\": %d, \"zipf_theta\": %.2f, \"epsilon\": %d, \
                \"duration_ns\": %d, \"seed\": %d},\n\
               \  \"curves\": [\n%s\n  ]\n}\n"
               Telemetry.Json.schema_version system ds arrival read_pct theta
               epsilon duration seed
               (Openloop.curve_to_json ~indent:4 points)
           in
           match write_bench_json path contents with
           | Ok () -> `Ok ()
           | Error m -> `Error (false, m))))

let serve_sim_cmd =
  Cmd.v
    (Cmd.info "serve-sim"
       ~doc:
         "Open-loop service simulation: a Poisson/bursty/diurnal arrival \
          process feeds an admission queue in front of the flat-combining \
          slots; reports arrival-to-response sojourn percentiles per \
          offered load and the saturation knee")
    Term.(
      ret
        (const serve_sim $ system_arg $ ds_arg $ threads_arg $ epsilon_arg
       $ read_pct_arg $ keys_arg $ duration_arg $ seed_arg $ flit_arg
       $ dist_rw_arg $ log_mirror_arg $ slot_bitmap_arg $ detect_arg
       $ uc_shards_arg $ arrival_arg $ rates_arg $ theta_arg
       $ burst_ratio_arg $ dwell_arg $ period_arg $ shed_arg $ jobs_arg
       $ sweep_json_arg))


(* ---- ckptscale: checkpoint cost vs dirty set, recovery vs object size ---- *)

(* One measured point of the incremental-checkpoint scaling study: prefill
   an rbtree with [n] keys under PREP-Durable, hammer a ~[dirty_pct]% key
   range so checkpoints see a small dirty set, read the per-checkpoint
   simulated cost counters, then crash and time recovery up to the first
   executed operation. [lsm] selects the backend under test; the baseline
   is the whole-replica flush checkpoint. *)
type ck_point = {
  ck_system : string;
  ck_keys : int;
  ck_ops : int;
  ck_duration_ns : int;
  ck_ckpts : int;
  ck_cost_avg : int;
  ck_cost_last : int;
  ck_recovery_ns : int;
  ck_segments : int;
  ck_compactions : int;
  ck_stats : Nvm.Memory.stats;
}

let ckpt_episode ~lsm ~lsm_fanout ~n ~dirty_pct ~epsilon ~threads
    ~ops_per_worker ~seed =
  let module Uc = Prep.Prep_uc.Make (Seqds.Rbtree) in
  let module R = Seqds.Rbtree in
  let topology = Sim.Topology.default in
  let sim = Sim.create ~seed:(Int64.of_int seed) topology in
  let mem =
    Nvm.Memory.make ~sockets:topology.Sim.Topology.sockets ~bg_period:5000 ()
  in
  let uc_ref = ref None in
  let work_ns = ref 0 in
  let done_count = ref 0 in
  let dirty_range = max 64 (n * dirty_pct / 100) in
  (* The crash lands after a closing phase over a small FIXED window, so
     the log suffix recovery must replay describes the same workload at
     every object size — isolating the recovery-vs-size measurement from
     the dirty set (which scales with n by design). *)
  let tail_range = 512 in
  let tail_per_worker = max 1 (3 * epsilon / 2 / threads) in
  ignore
    (Sim.spawn sim ~socket:0 (fun () ->
         let roots = Nvm.Roots.make mem in
         let cfg =
           (* the baseline checkpoints with the practical whole-replica
              heap walk (O(n) lines), not the flat-cost WBINVD stall —
              that is the curve the O(dirty) claim is measured against *)
           Prep.Config.make ~mode:Prep.Config.Durable ~log_size:16384
             ~epsilon ~workers:threads ~flush:Prep.Config.Flush_heap
             ~lsm_ckpt:lsm ~lsm_fanout ()
         in
         let prefill = List.init n (fun k -> (R.op_insert, [| k; k |])) in
         let uc = Uc.create ~prefill mem roots cfg in
         uc_ref := Some uc;
         Uc.start_persistence uc;
         for w = 0 to threads - 1 do
           let socket, core = Sim.Topology.place topology w in
           Sim.spawn_here ~socket ~core (fun () ->
               Uc.register_worker uc;
               let rng = Sim.fiber_rng () in
               for _ = 1 to ops_per_worker do
                 let k = Sim.Rng.int rng dirty_range in
                 ignore
                   (Uc.execute uc ~op:R.op_insert
                      ~args:[| k; 1 + Sim.Rng.int rng 1000 |])
               done;
               for _ = 1 to tail_per_worker do
                 let k = Sim.Rng.int rng tail_range in
                 ignore
                   (Uc.execute uc ~op:R.op_insert
                      ~args:[| k; 1 + Sim.Rng.int rng 1000 |])
               done;
               incr done_count)
         done;
         while !done_count < threads do
           Sim.tick 50_000
         done;
         work_ns := Sim.now ();
         Uc.stop uc));
  (match Sim.run sim () with
   | `Done -> ()
   | `Cut _ -> failwith "ckptscale: workload wedged");
  let uc = Option.get !uc_ref in
  let counter name =
    match List.assoc_opt name (Uc.counters uc) with Some v -> v | None -> 0
  in
  let ckpts = counter "ckpt_count" in
  let cost_total = counter "ckpt_cost_total" in
  let cost_last = counter "ckpt_cost_last" in
  let segments = counter "lsm_segments_live" in
  let compactions = counter "lsm_compactions" in
  (* power failure, then time recovery through the first executed op *)
  Nvm.Memory.crash mem;
  Nvm.Context.reset ();
  let recovery_ns = ref 0 in
  let sim2 = Sim.create ~seed:(Int64.of_int (seed + 1)) topology in
  ignore
    (Sim.spawn sim2 ~socket:0 (fun () ->
         let uc2, _report = Uc.recover uc in
         Uc.register_worker uc2;
         ignore (Uc.execute uc2 ~op:R.op_get ~args:[| 0 |]);
         recovery_ns := Sim.now ()));
  (match Sim.run sim2 () with
   | `Done -> ()
   | `Cut _ -> failwith "ckptscale: recovery wedged");
  Nvm.Context.reset ();
  {
    ck_system = (if lsm then "PREP-Durable/lsm" else "PREP-Durable");
    ck_keys = n;
    ck_ops = threads * (ops_per_worker + tail_per_worker);
    ck_duration_ns = !work_ns;
    ck_ckpts = ckpts;
    ck_cost_avg = (if ckpts = 0 then 0 else cost_total / ckpts);
    ck_cost_last = cost_last;
    ck_recovery_ns = !recovery_ns;
    ck_segments = segments;
    ck_compactions = compactions;
    ck_stats = Nvm.Memory.stats mem;
  }

let json_of_ck_point p =
  let counters =
    [ ("keys", p.ck_keys); ("ckpts", p.ck_ckpts);
      ("ckpt_cost_avg_ns", p.ck_cost_avg);
      ("ckpt_cost_last_ns", p.ck_cost_last);
      ("recovery_first_op_ns", p.ck_recovery_ns);
      ("lsm_segments_live", p.ck_segments);
      ("lsm_compactions", p.ck_compactions) ]
  in
  let st = p.ck_stats in
  Printf.sprintf
    {|{"system": %S, "workload": %S, "workers": 0, "ops": %d, "duration_ns": %d, "throughput": %.1f, "wbinvd": %d, "clwb": %d, "clwb_elided": %d, "clwb_coalesced": %d, "clflush": %d, "clflush_elided": %d, "sfence": %d, "sfence_elided": %d, "bg_flushes": %d, "counters": {%s}}|}
    p.ck_system
    (Printf.sprintf "ckptscale keys=%d" p.ck_keys)
    p.ck_ops p.ck_duration_ns
    (float_of_int p.ck_ops *. 1e9 /. float_of_int (max 1 p.ck_duration_ns))
    st.Nvm.Memory.wbinvd st.Nvm.Memory.clwb st.Nvm.Memory.clwb_elided
    st.Nvm.Memory.clwb_coalesced st.Nvm.Memory.clflush
    st.Nvm.Memory.clflush_elided st.Nvm.Memory.sfence
    st.Nvm.Memory.sfence_elided st.Nvm.Memory.bg_flushes
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%S: %d" k v) counters))

let sizes_arg =
  let doc = "Comma-separated object sizes (prefill key counts) to sweep." in
  Arg.(value & opt string "10000,100000" & info [ "sizes" ] ~docv:"LIST" ~doc)

let dirty_pct_arg =
  let doc =
    "Percent of the key space the workload dirties between checkpoints."
  in
  Arg.(value & opt int 1 & info [ "dirty-pct" ] ~docv:"PCT" ~doc)

let ckpt_ratio_arg =
  let doc =
    "Gate: at the largest size the baseline checkpoint must cost at least \
     $(docv) times the incremental one."
  in
  Arg.(value & opt float 10.0 & info [ "min-ratio" ] ~docv:"R" ~doc)

let recovery_flat_arg =
  let doc =
    "Gate: incremental recovery-to-first-op across sizes must stay within \
     a factor $(docv) of its minimum."
  in
  Arg.(value & opt float 2.0 & info [ "max-recovery-spread" ] ~docv:"R" ~doc)

let no_gate_arg =
  let doc = "Report the table without enforcing the scaling gates." in
  Arg.(value & flag & info [ "no-gate" ] ~doc)

let ckptscale sizes dirty_pct epsilon threads seed lsm_fanout min_ratio
    max_spread no_gate json =
  match int_list_of_string sizes with
  | Error m -> `Error (true, m)
  | Ok [] -> `Error (true, "empty --sizes list")
  | Ok sizes_l ->
    if List.exists (fun n -> n < 1000) sizes_l then
      `Error (true, "--sizes entries must be at least 1000")
    else if dirty_pct < 1 || dirty_pct > 100 then
      `Error (true, "--dirty-pct must be in 1..100")
    else if lsm_fanout < 2 then
      `Error (true, "--lsm-fanout must be at least 2")
    else begin
      (* enough update traffic for several seals past the prefill *)
      let ops_per_worker = max 1 (3 * epsilon / max 1 threads) in
      let points =
        List.concat_map
          (fun n ->
            List.map
              (fun lsm ->
                ckpt_episode ~lsm ~lsm_fanout ~n ~dirty_pct ~epsilon
                  ~threads ~ops_per_worker ~seed)
              [ false; true ])
          sizes_l
      in
      Printf.printf
        "%-18s %9s %6s %14s %16s %9s %6s\n"
        "system" "keys" "ckpts" "ckpt-avg-ns" "recovery-ns" "segs" "cmpct";
      List.iter
        (fun p ->
          Printf.printf "%-18s %9d %6d %14d %16d %9d %6d\n" p.ck_system
            p.ck_keys p.ck_ckpts p.ck_cost_avg p.ck_recovery_ns
            p.ck_segments p.ck_compactions)
        points;
      let lsm_points =
        List.filter (fun p -> p.ck_system = "PREP-Durable/lsm") points
      in
      let base_points =
        List.filter (fun p -> p.ck_system = "PREP-Durable") points
      in
      let n_max = List.fold_left (fun a n -> max a n) 0 sizes_l in
      let at sys_points n = List.find (fun p -> p.ck_keys = n) sys_points in
      let ratio =
        let b = at base_points n_max and l = at lsm_points n_max in
        if l.ck_cost_avg = 0 then infinity
        else float_of_int b.ck_cost_avg /. float_of_int l.ck_cost_avg
      in
      let rec_min, rec_max =
        List.fold_left
          (fun (lo, hi) p -> (min lo p.ck_recovery_ns, max hi p.ck_recovery_ns))
          (max_int, 0) lsm_points
      in
      let spread =
        if rec_min = 0 then infinity
        else float_of_int rec_max /. float_of_int rec_min
      in
      Printf.printf
        "checkpoint cost ratio at %d keys (baseline/lsm): %.1fx (gate >= \
         %.1fx)\n"
        n_max ratio min_ratio;
      Printf.printf
        "lsm recovery-to-first-op spread across sizes: %.2fx (gate <= %.2fx)\n"
        spread max_spread;
      let json_status =
        match json with
        | None -> Ok ()
        | Some path ->
          let contents =
            Printf.sprintf
              "{\n  \"schema_version\": %d,\n\
              \  \"config\": {\"ds\": \"rbtree\", \"dirty_pct\": %d, \"epsilon\": \
               %d, \"threads\": %d, \"seed\": %d, \"lsm_fanout\": %d},\n\
              \  \"results\": [\n    %s\n  ]\n}\n"
              Telemetry.Json.schema_version dirty_pct epsilon threads seed
              lsm_fanout
              (String.concat ",\n    " (List.map json_of_ck_point points))
          in
          write_bench_json path contents
      in
      match json_status with
      | Error m -> `Error (false, m)
      | Ok () ->
        if no_gate then `Ok ()
        else if ratio < min_ratio then
          `Error
            ( false,
              Printf.sprintf
                "ckptscale gate FAILED: baseline/lsm checkpoint cost ratio \
                 %.1fx < %.1fx at %d keys"
                ratio min_ratio n_max )
        else if List.length sizes_l > 1 && spread > max_spread then
          `Error
            ( false,
              Printf.sprintf
                "ckptscale gate FAILED: lsm recovery spread %.2fx > %.2fx"
                spread max_spread )
        else begin
          print_endline "ckptscale gates: PASS";
          `Ok ()
        end
    end

let ckpt_threads_arg =
  Arg.(value & opt int 4 & info [ "threads"; "t" ] ~docv:"N" ~doc:"Worker threads.")

let ckpt_epsilon_arg =
  Arg.(value & opt int 4096 & info [ "epsilon"; "e" ] ~docv:"EPS" ~doc:"Flush boundary step.")

let ckptscale_cmd =
  Cmd.v
    (Cmd.info "ckptscale"
       ~doc:
         "Incremental-checkpoint scaling study: checkpoint cost vs dirty-set \
          size and recovery-to-first-op vs object size, baseline \
          whole-replica flush against --lsm-ckpt, with CI gates on the \
          O(dirty) cost ratio and recovery flatness")
    Term.(
      ret
        (const ckptscale $ sizes_arg $ dirty_pct_arg $ ckpt_epsilon_arg
       $ ckpt_threads_arg $ seed_arg $ lsm_fanout_arg $ ckpt_ratio_arg
       $ recovery_flat_arg $ no_gate_arg $ sweep_json_arg))

let () =
  let info =
    Cmd.info "prep-cli" ~version:"1.0.0"
      ~doc:"PREP-UC (SPAA 2022) reproduction driver"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ bench_cmd; run_cmd; profile_cmd; validate_cmd; crash_cmd;
            fuzz_cmd; explore_cmd; optimize_persist_cmd; session_cmd;
            sweep_cmd; serve_sim_cmd; ckptscale_cmd ]))
