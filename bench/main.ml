(* Benchmark harness.

   Default mode regenerates every table and figure of the paper's
   evaluation (printed as text tables; see EXPERIMENTS.md for the
   paper-vs-measured comparison). `micro` runs one Bechamel Test.make per
   table/figure: each test executes a small representative point of that
   experiment, so Bechamel measures the real-time cost of regenerating a
   data point.

     dune exec bench/main.exe             # all figures, quick scale
     FULL=1 dune exec bench/main.exe      # paper-scale parameters
     dune exec bench/main.exe fig2        # a single figure
     dune exec bench/main.exe micro       # Bechamel micro-benchmarks *)

open Bechamel
open Harness

(* A reduced scale so each Bechamel sample stays ~tens of milliseconds. *)
let micro_scale =
  {
    Figures.quick with
    Figures.label = "micro";
    threads = [ 4 ];
    key_range = 1024;
    log_size = 4096;
    eps_small = 64;
    eps_large = 1024;
    duration_ns = 300_000;
    warmup_ns = 60_000;
  }

let micro_point ~system ~workload =
  ignore (Figures.point micro_scale ~system ~workload ~threads:4)

let map_workload read_pct =
  Workload.map_workload ~read_pct ~key_range:micro_scale.Figures.key_range
    ~prefill_n:(micro_scale.Figures.key_range / 2)

module Hm = Experiment.Systems (Seqds.Hashmap)
module Rb = Experiment.Systems (Seqds.Rbtree)
module Qu = Experiment.Systems (Seqds.Queue_ds)
module Pq = Experiment.Systems (Seqds.Pqueue)
module St = Experiment.Systems (Seqds.Stack_ds)

let prep mk mode eps =
  mk
    ?log_size:(Some micro_scale.Figures.log_size)
    ?flush:None ?flit:None ?dist_rw:None ?log_mirror:None ?slot_bitmap:None
    ?detect:None ?lsm_ckpt:None ?lsm_fanout:None ?lsm_compact:None
    ?persist_policy:None ?name:None ~mode ~epsilon:eps ()

(* One Bechamel test per table/figure of the paper. *)
let bechamel_tests =
  [
    Test.make ~name:"table1.log-indexes"
      (Staged.stage (fun () ->
           (* the index machinery Table 1 summarises: reserve, write,
              publish and consume one log entry *)
           Sim.run_one (fun () ->
               let mem = Nvm.Memory.make ~bg_period:0 () in
               let log = Prep.Log.create mem ~size:64 ~durable:false in
               for i = 0 to 63 do
                 Prep.Log.write_payload log i ~op:0 ~args:[| i |];
                 Prep.Log.publish log i
               done;
               for i = 0 to 63 do
                 ignore (Prep.Log.wait_and_read log i)
               done)));
    Test.make ~name:"fig1.volatile-ucs"
      (Staged.stage (fun () ->
           micro_point
             ~system:(prep Hm.prep Prep.Config.Volatile 1)
             ~workload:(map_workload 90)));
    Test.make ~name:"fig2.pucs-hashmap"
      (Staged.stage (fun () ->
           micro_point
             ~system:(prep Hm.prep Prep.Config.Buffered 1024)
             ~workload:(map_workload 90)));
    Test.make ~name:"fig3.epsilon-effect"
      (Staged.stage (fun () ->
           micro_point
             ~system:(prep Hm.prep Prep.Config.Durable 64)
             ~workload:(map_workload 90)));
    Test.make ~name:"fig4.pqueue"
      (Staged.stage (fun () ->
           micro_point
             ~system:(prep Pq.prep Prep.Config.Buffered 1024)
             ~workload:(Workload.pqueue_pairs ~prefill_n:1000)));
    Test.make ~name:"fig5.stack"
      (Staged.stage (fun () ->
           micro_point
             ~system:(prep St.prep Prep.Config.Buffered 1024)
             ~workload:(Workload.stack_pairs ~prefill_n:500)));
    Test.make ~name:"fig6.soft-hashtable"
      (Staged.stage (fun () ->
           micro_point
             ~system:(Experiment.soft ~nbuckets:1000)
             ~workload:(map_workload 90)));
  ]

let run_micro () =
  print_endline "Bechamel micro-benchmarks: real-time cost per figure point";
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) ~kde:None
      ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg Toolkit.Instance.[ monotonic_clock ] elt in
          let est = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          let nanos =
            match Analyze.OLS.estimates est with
            | Some (e :: _) -> e
            | _ -> nan
          in
          Printf.printf "%-28s %12.3f ms/run\n%!" (Test.Elt.name elt)
            (nanos /. 1e6))
        (Test.elements test))
    bechamel_tests

(* ---- bench smoke: baseline vs FliT PREP-Durable, JSON artifact ----

   A small fixed config runs the same update-heavy hashmap point with the
   flush-elimination layer off and on, writes both results (with the full
   flush-traffic counters) as JSON, and fails if the optimized variant's
   simulated throughput regresses below the baseline's or its elision
   counters are zero — the CI guard for this repo's first performance
   optimization. *)

let smoke_scale =
  {
    Figures.quick with
    Figures.label = "smoke";
    threads = [ 12 ];
    key_range = 2048;
    log_size = 16384;
    eps_large = 4096;
    duration_ns = 1_500_000;
    warmup_ns = 300_000;
  }

let json_of_counters counters =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "%S: %d" k v) counters)
  ^ "}"

let json_of_result (r : Experiment.result) =
  Printf.sprintf
    {|{"system": %S, "workload": %S, "workers": %d, "ops": %d, "duration_ns": %d, "throughput": %.1f, "wbinvd": %d, "clwb": %d, "clwb_elided": %d, "clwb_coalesced": %d, "clflush": %d, "clflush_elided": %d, "sfence": %d, "sfence_elided": %d, "bg_flushes": %d, "counters": %s}|}
    r.Experiment.system r.Experiment.workload r.Experiment.workers
    r.Experiment.ops r.Experiment.duration_ns r.Experiment.throughput
    r.Experiment.wbinvd r.Experiment.clwb r.Experiment.clwb_elided
    r.Experiment.clwb_coalesced r.Experiment.clflush
    r.Experiment.clflush_elided r.Experiment.sfence r.Experiment.sfence_elided
    r.Experiment.bg_flushes
    (json_of_counters (Experiment.counters r))

(* Write a bench artifact, then check the exact bytes written against the
   bench schema — a malformed artifact fails the producing job, not some
   downstream consumer. *)
let write_validated path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  match Telemetry.Json.(validate_string validate_bench contents) with
  | Ok () -> ()
  | Error errs ->
    List.iter (fun e -> Printf.eprintf "%s: %s\n" path e) errs;
    Printf.eprintf "bench FAILED: %s does not validate against the bench schema\n" path;
    exit 1

let run_smoke path =
  let scale = smoke_scale in
  let threads = 12 in
  let workload =
    Workload.map_workload ~read_pct:50 ~key_range:scale.Figures.key_range
      ~prefill_n:(scale.Figures.key_range / 2)
  in
  let run_variant flit =
    Experiment.run ~topology:scale.Figures.topology
      ~duration_ns:scale.Figures.duration_ns
      ~warmup_ns:scale.Figures.warmup_ns
      ~system:
        (Hm.prep ~log_size:scale.Figures.log_size ~flit
           ~mode:Prep.Config.Durable ~epsilon:scale.Figures.eps_large ())
      ~workload ~workers:threads ()
  in
  let base = run_variant false in
  let flit = run_variant true in
  let speedup = flit.Experiment.throughput /. base.Experiment.throughput in
  (* second guard: the NUMA hot-path package (distributed reader lock +
     DRAM log mirror + slot bitmap) must not regress a 90%-read point at
     the top quick-scale thread count, on top of flit *)
  let threads90 = 23 in
  let workload90 =
    Workload.map_workload ~read_pct:90 ~key_range:scale.Figures.key_range
      ~prefill_n:(scale.Figures.key_range / 2)
  in
  let run_variant90 opt =
    Experiment.run ~topology:scale.Figures.topology
      ~duration_ns:scale.Figures.duration_ns
      ~warmup_ns:scale.Figures.warmup_ns
      ~system:
        (Hm.prep ~log_size:scale.Figures.log_size ~flit:true ~dist_rw:opt
           ~log_mirror:opt ~slot_bitmap:opt ~mode:Prep.Config.Durable
           ~epsilon:scale.Figures.eps_large ())
      ~workload:workload90 ~workers:threads90 ()
  in
  let base90 = run_variant90 false in
  let numa90 = run_variant90 true in
  let speedup90 = numa90.Experiment.throughput /. base90.Experiment.throughput in
  write_validated path
    (Printf.sprintf
       "{\n  \"schema_version\": %d,\n\
       \  \"config\": {\"threads\": %d, \"key_range\": %d, \"log_size\": %d, \
        \"epsilon\": %d, \"read_pct\": 50, \"duration_ns\": %d},\n\
       \  \"baseline\": %s,\n  \"flit\": %s,\n  \"speedup\": %.4f,\n\
       \  \"read90\": {\"threads\": %d, \"read_pct\": 90,\n\
       \    \"baseline\": %s,\n    \"numa\": %s,\n    \"speedup\": %.4f\n  }\n}\n"
       Telemetry.Json.schema_version threads scale.Figures.key_range
       scale.Figures.log_size scale.Figures.eps_large
       scale.Figures.duration_ns (json_of_result base) (json_of_result flit)
       speedup threads90 (json_of_result base90) (json_of_result numa90)
       speedup90);
  Printf.printf
    "bench smoke: baseline %.0f ops/s, flit %.0f ops/s (%.1f%% %s); \
     elided+coalesced = %d; artifact: %s\n%!"
    base.Experiment.throughput flit.Experiment.throughput
    (abs_float (speedup -. 1.0) *. 100.)
    (if speedup >= 1.0 then "faster" else "SLOWER")
    (flit.Experiment.clwb_elided + flit.Experiment.clwb_coalesced
     + flit.Experiment.clflush_elided + flit.Experiment.sfence_elided)
    path;
  Printf.printf
    "bench smoke (90%% read, %d threads): flit %.0f ops/s, \
     flit+dist+mir+bmp %.0f ops/s (%.1f%% %s)\n%!"
    threads90 base90.Experiment.throughput numa90.Experiment.throughput
    (abs_float (speedup90 -. 1.0) *. 100.)
    (if speedup90 >= 1.0 then "faster" else "SLOWER");
  if flit.Experiment.throughput < base.Experiment.throughput then begin
    prerr_endline "bench smoke FAILED: flit variant slower than baseline";
    exit 1
  end;
  if
    flit.Experiment.clwb_elided + flit.Experiment.clwb_coalesced
    + flit.Experiment.clflush_elided + flit.Experiment.sfence_elided = 0
  then begin
    prerr_endline "bench smoke FAILED: no flushes elided or coalesced";
    exit 1
  end;
  if numa90.Experiment.throughput < base90.Experiment.throughput then begin
    prerr_endline
      "bench smoke FAILED: dist-rw+log-mirror+slot-bitmap slower than flit \
       alone at the 90%-read point";
    exit 1
  end

(* ---- bench persistgain: proven persistency policy vs FliT ----

   Runs the same update-heavy durable hashmap point four ways — baseline,
   the optimize-persist proven policy alone, FliT alone, and FliT stacked
   with the policy — and writes all four (with full flush-traffic
   counters) as JSON. The policy defaults to the canonical proven set
   (payload-fence defer, checkpoint-fence defer, init-flush elide; CI's
   persist-smoke job re-derives and re-proves exactly this set) and can be
   overridden with a spec/file argument.

   The point of comparison is FliT: FliT elides flushes and fences
   *dynamically* (per-access clean-line tracking), the policy elides them
   *statically* (sites the explorer proved removable). Every site the
   policy can drop, FliT's tracking also drops at runtime — the batched
   log path skips the payload fence and clean-tracking skips the
   post-checkpoint fence — so FliT+policy is expected to equal FliT on
   traffic; the policy's win over FliT is reaching the same fence floor
   with zero per-access bookkeeping. Gates, all on per-op traffic so
   faster variants aren't penalized for completing more ops:

   - the policy alone must cut fence traffic AND combined flush+fence
     traffic vs the baseline (the static win is measurable);
   - the policy alone must reach FliT's per-op fence floor (within 10%)
     without FliT's tracking, and must not regress FliT's simulated
     throughput (it typically beats it: no tracking overhead);
   - stacking must never hurt: FliT+policy traffic and throughput must
     be no worse than FliT alone. *)

let proven_policy_spec =
  "log.fence_payload=defer-to-next-fence,\
   prep.checkpoint=defer-to-next-fence,prep.init=elide"

let run_persistgain path policy_arg =
  let policy =
    let arg = Option.value policy_arg ~default:proven_policy_spec in
    match Nvm.Persist.load arg with
    | Ok p -> p
    | Error e ->
      Printf.eprintf "persistgain: bad policy %S: %s\n" arg e;
      exit 1
  in
  let scale = smoke_scale in
  let threads = 12 in
  (* a short persistence cycle keeps the checkpoint path hot, so the
     deferred checkpoint fence is visible even under FliT (whose batched
     log path already skips the payload fence the policy drops) *)
  let epsilon = 64 in
  let workload =
    Workload.map_workload ~read_pct:50 ~key_range:scale.Figures.key_range
      ~prefill_n:(scale.Figures.key_range / 2)
  in
  let run_variant ~flit ~pol =
    Experiment.run ~topology:scale.Figures.topology
      ~duration_ns:scale.Figures.duration_ns
      ~warmup_ns:scale.Figures.warmup_ns
      ~system:
        (Hm.prep ~log_size:scale.Figures.log_size ~flit
           ?persist_policy:(if pol then Some policy else None)
           ~mode:Prep.Config.Durable ~epsilon ())
      ~workload ~workers:threads ()
  in
  let base = run_variant ~flit:false ~pol:false in
  let pol = run_variant ~flit:false ~pol:true in
  let flit = run_variant ~flit:true ~pol:false in
  let both = run_variant ~flit:true ~pol:true in
  let flushes (r : Experiment.result) =
    r.Experiment.clwb + r.Experiment.clflush + r.Experiment.wbinvd
  in
  let fences (r : Experiment.result) = r.Experiment.sfence in
  let per_op n (r : Experiment.result) =
    float_of_int n /. float_of_int (max 1 r.Experiment.ops)
  in
  let traffic r = per_op (flushes r + fences r) r in
  let report tag (r : Experiment.result) =
    Printf.printf
      "%-12s %10.0f ops/s  %6d flushes  %6d fences  (%.3f traffic/op)\n%!"
      tag r.Experiment.throughput (flushes r) (fences r) (traffic r)
  in
  report "baseline" base;
  report "policy" pol;
  report "flit" flit;
  report "flit+policy" both;
  let speedup = pol.Experiment.throughput /. flit.Experiment.throughput in
  write_validated path
    (Printf.sprintf
       "{\n  \"schema_version\": %d,\n\
       \  \"config\": {\"threads\": %d, \"key_range\": %d, \"log_size\": %d, \
        \"epsilon\": %d, \"read_pct\": 50, \"duration_ns\": %d, \
        \"policy\": %S},\n\
       \  \"baseline\": %s,\n  \"policy\": %s,\n  \"flit\": %s,\n\
       \  \"flit_policy\": %s,\n  \"speedup\": %.4f\n}\n"
       Telemetry.Json.schema_version threads scale.Figures.key_range
       scale.Figures.log_size epsilon scale.Figures.duration_ns
       (Nvm.Persist.to_spec policy)
       (json_of_result base) (json_of_result pol) (json_of_result flit)
       (json_of_result both) speedup);
  Printf.printf
    "bench persistgain: policy fences/op %.3f vs baseline %.3f (flit %.3f); \
     policy traffic/op %.3f vs baseline %.3f; policy vs flit throughput \
     %.1f%% %s; artifact: %s\n%!"
    (per_op (fences pol) pol)
    (per_op (fences base) base)
    (per_op (fences flit) flit)
    (traffic pol) (traffic base)
    (abs_float (speedup -. 1.0) *. 100.)
    (if speedup >= 1.0 then "faster" else "SLOWER")
    path;
  if per_op (fences pol) pol >= per_op (fences base) base then begin
    prerr_endline
      "bench persistgain FAILED: proven policy does not cut fence traffic \
       vs baseline";
    exit 1
  end;
  if traffic pol >= traffic base then begin
    prerr_endline
      "bench persistgain FAILED: proven policy does not cut flush+fence \
       traffic vs baseline";
    exit 1
  end;
  if per_op (fences pol) pol > 1.1 *. per_op (fences flit) flit then begin
    prerr_endline
      "bench persistgain FAILED: proven policy misses FliT's fence floor";
    exit 1
  end;
  if speedup < 0.99 then begin
    prerr_endline
      "bench persistgain FAILED: proven policy regresses throughput vs flit";
    exit 1
  end;
  if
    traffic both > traffic flit
    || both.Experiment.throughput < 0.99 *. flit.Experiment.throughput
  then begin
    prerr_endline
      "bench persistgain FAILED: stacking the policy on FliT made it worse";
    exit 1
  end

(* ---- bench readscale: read-ratio sweep, flags off vs on ----

   Sweeps read ratio {0, 50, 90, 99}% x the quick-scale thread counts on
   the PREP-Durable hashmap, comparing `--flit` alone against
   `--flit --dist-rw --log-mirror --slot-bitmap`, and writes every point
   (with the lock/mirror/bitmap counters) in the same JSON schema as
   `smoke`. *)

let run_readscale path =
  let scale = Figures.quick in
  let workload read_pct =
    Workload.map_workload ~read_pct ~key_range:scale.Figures.key_range
      ~prefill_n:(scale.Figures.key_range / 2)
  in
  let system opt =
    Hm.prep ~log_size:scale.Figures.log_size ~flit:true ~dist_rw:opt
      ~log_mirror:opt ~slot_bitmap:opt ~mode:Prep.Config.Durable
      ~epsilon:scale.Figures.eps_large ()
  in
  let points = ref [] in
  Printf.printf "%8s %8s %14s %14s %9s\n%!" "read%" "threads" "flit"
    "flit+numa" "speedup";
  List.iter
    (fun read_pct ->
      List.iter
        (fun threads ->
          let run opt =
            try
              Some
                (Experiment.run ~topology:scale.Figures.topology
                   ~duration_ns:scale.Figures.duration_ns
                   ~warmup_ns:scale.Figures.warmup_ns ~system:(system opt)
                   ~workload:(workload read_pct) ~workers:threads ())
            with Failure msg ->
              Printf.eprintf "[point failed: %s]\n%!" msg;
              None
          in
          match (run false, run true) with
          | Some base, Some numa ->
            let speedup =
              numa.Experiment.throughput /. base.Experiment.throughput
            in
            Printf.printf "%8d %8d %14.0f %14.0f %8.2fx\n%!" read_pct threads
              base.Experiment.throughput numa.Experiment.throughput speedup;
            points :=
              Printf.sprintf
                "    {\"read_pct\": %d, \"threads\": %d,\n\
                \     \"baseline\": %s,\n     \"numa\": %s,\n\
                \     \"speedup\": %.4f}"
                read_pct threads (json_of_result base) (json_of_result numa)
                speedup
              :: !points
          | _ -> ())
        scale.Figures.threads)
    [ 0; 50; 90; 99 ];
  write_validated path
    (Printf.sprintf
       "{\n  \"schema_version\": %d,\n\
       \  \"config\": {\"key_range\": %d, \"log_size\": %d, \"epsilon\": %d, \
        \"duration_ns\": %d},\n  \"points\": [\n%s\n  ]\n}\n"
       Telemetry.Json.schema_version scale.Figures.key_range
       scale.Figures.log_size scale.Figures.eps_large
       scale.Figures.duration_ns
       (String.concat ",\n" (List.rev !points)));
  Printf.printf "artifact: %s\n%!" path

(* ---- bench loadcurve: open-loop latency-vs-offered-load sweep ----

   For each system variant (PREP-Durable baseline, --flit, the full NUMA
   package, --detect), calibrate closed-loop capacity at the same scale,
   then sweep a Poisson arrival ladder from 25% to 150% of that capacity
   through the open-loop runner. Past capacity the admission queue grows
   without bound, censored sojourns blow up the p99, and the knee locator
   marks the first saturated rate — the JSON artifact is the repo's first
   offered-load (rather than closed-loop) result. *)

let loadcurve_ladder = [ 0.25; 0.5; 0.75; 0.9; 1.1; 1.5 ]

let run_loadcurve path =
  let scale = smoke_scale in
  let workers = 8 in
  let theta = 0.99 in
  let workload =
    Workload.map_workload_zipf ~theta ~read_pct:50
      ~key_range:scale.Figures.key_range
      ~prefill_n:(scale.Figures.key_range / 2)
  in
  let ls = scale.Figures.log_size and eps = scale.Figures.eps_large in
  let variants =
    [
      Hm.prep ~log_size:ls ~mode:Prep.Config.Durable ~epsilon:eps ();
      Hm.prep ~log_size:ls ~flit:true ~mode:Prep.Config.Durable ~epsilon:eps ();
      Hm.prep ~log_size:ls ~flit:true ~dist_rw:true ~log_mirror:true
        ~slot_bitmap:true ~mode:Prep.Config.Durable ~epsilon:eps ();
      Hm.prep ~log_size:ls ~detect:true ~mode:Prep.Config.Durable ~epsilon:eps
        ();
    ]
  in
  let curve system =
    let closed =
      Experiment.run ~topology:scale.Figures.topology
        ~duration_ns:scale.Figures.duration_ns
        ~warmup_ns:scale.Figures.warmup_ns ~system ~workload ~workers ()
    in
    let capacity = closed.Experiment.throughput in
    let points =
      List.map
        (fun frac ->
          Openloop.run ~topology:scale.Figures.topology
            ~duration_ns:scale.Figures.duration_ns
            ~warmup_ns:scale.Figures.warmup_ns ~system ~workload
            ~arrival:(Workload.Arrival.Poisson { rate = frac *. capacity })
            ~workers ())
        loadcurve_ladder
    in
    Printf.printf "%-24s capacity %9.0f ops/s  knee %s\n%!"
      system.Experiment.sys_name capacity
      (match Openloop.knee points with
       | Some k -> Printf.sprintf "%9.0f ops/s" k
       | None -> "not reached");
    List.iter
      (fun (p : Openloop.point) ->
        Printf.printf
          "  offered %9.0f  completed %6d/%-6d  p50 %8d  p99 %10d  qpeak %d\n%!"
          p.Openloop.ol_offered p.Openloop.ol_completed p.Openloop.ol_arrivals
          p.Openloop.ol_sojourn.Telemetry.Registry.hs_p50
          p.Openloop.ol_sojourn.Telemetry.Registry.hs_p99 p.Openloop.ol_qmax)
      points;
    points
  in
  let curves = List.map curve variants in
  write_validated path
    (Printf.sprintf
       "{\n  \"schema_version\": %d,\n\
       \  \"config\": {\"workers\": %d, \"read_pct\": 50, \"zipf_theta\": \
        %.2f, \"key_range\": %d, \"log_size\": %d, \"epsilon\": %d, \
        \"duration_ns\": %d},\n\
       \  \"curves\": [\n%s\n  ]\n}\n"
       Telemetry.Json.schema_version workers theta scale.Figures.key_range
       scale.Figures.log_size scale.Figures.eps_large
       scale.Figures.duration_ns
       (String.concat ",\n"
          (List.map (Openloop.curve_to_json ~indent:4) curves)));
  Printf.printf "artifact: %s\n%!" path;
  (* the sweep must actually reach saturation on every curve *)
  if List.exists (fun pts -> Openloop.knee pts = None) curves then begin
    prerr_endline "bench loadcurve FAILED: a curve never saturated";
    exit 1
  end

(* ---- bench shardscale: hash-routed shards, scaling + cross-shard cost ----

   Two sweeps at a fixed total worker count on a >=64k-key hashmap:

   - scaling: shard count in {1, 2, 4, 6} on a pure single-key workload
     (the 64-slot root directory caps the shard count at 7).
     Each shard is an independent PREP-Durable instance (own log, replicas,
     combiner) behind the hash router. Workers submit through the router's
     pipelined batch path (op_batch ops drawn at once, one update in
     flight per shard), since a strictly closed per-op loop caps the
     ratio at the combining *latency* ratio no matter how many combiners
     exist; with one shard the pipeline degenerates to the sequential
     loop, so the baseline is not handicapped. The workload is
     update-heavy (20% reads): reads bypass combining on both sides and
     only dilute what sharding can show. The 4-shard point must clear 3x
     the 1-shard point — the CI guard for this repo's sharding
     optimization.

   - cross-shard ablation: 4 shards, 20% multi-key operations, cross-shard
     fraction in {0, 25, 50, 100}%. A same-shard pair costs one log entry;
     a cross-shard pair costs a 2PC round (one prepare per participant
     log plus a fenced decision write), so throughput degrades smoothly
     with the cross fraction — the measured price of distributed atomicity. *)

let shardscale_scale =
  {
    Figures.quick with
    Figures.label = "shardscale";
    threads = [ 12 ];
    key_range = 65536;
    log_size = 16384;
    eps_large = 4096;
    duration_ns = 3_000_000;
    warmup_ns = 300_000;
  }

let shardscale_read_pct = 20
let shardscale_op_batch = 32

let run_shardscale path =
  let scale = shardscale_scale in
  let workers = 12 in
  let keys = scale.Figures.key_range in
  let workload ~nshards ~multi_pct ~cross_pct =
    Workload.map_workload_sharded ~read_pct:shardscale_read_pct ~multi_pct
      ~cross_pct ~nshards ~key_range:keys ~prefill_n:(keys / 4)
  in
  let point ~shards ~multi_pct ~cross_pct =
    Experiment.run ~topology:scale.Figures.topology
      ~duration_ns:scale.Figures.duration_ns
      ~warmup_ns:scale.Figures.warmup_ns ~op_batch:shardscale_op_batch
      ~system:
        (Hm.prep_sharded ~log_size:scale.Figures.log_size ~slot_bitmap:true
           ~shards ~epsilon:scale.Figures.eps_large ())
      ~workload:(workload ~nshards:shards ~multi_pct ~cross_pct)
      ~workers ()
  in
  Printf.printf "%8s %14s %9s   (single-key, %d workers, %d keys)\n%!"
    "shards" "ops/s" "speedup" workers keys;
  let scaling =
    List.map
      (fun shards ->
        let r = point ~shards ~multi_pct:0 ~cross_pct:0 in
        (shards, r))
      [ 1; 2; 4; 6 ]
  in
  let base_tp =
    match scaling with
    | (_, r) :: _ -> r.Experiment.throughput
    | [] -> assert false
  in
  List.iter
    (fun (shards, r) ->
      Printf.printf "%8d %14.0f %8.2fx\n%!" shards r.Experiment.throughput
        (r.Experiment.throughput /. base_tp))
    scaling;
  Printf.printf "%8s %14s %9s   (4 shards, 20%% multi-key)\n%!" "cross%"
    "ops/s" "vs 0%";
  let ablation =
    List.map
      (fun cross_pct ->
        let r = point ~shards:4 ~multi_pct:20 ~cross_pct in
        (cross_pct, r))
      [ 0; 25; 50; 100 ]
  in
  let abl_base =
    match ablation with
    | (_, r) :: _ -> r.Experiment.throughput
    | [] -> assert false
  in
  List.iter
    (fun (cross_pct, r) ->
      Printf.printf "%8d %14.0f %8.2fx\n%!" cross_pct
        r.Experiment.throughput
        (r.Experiment.throughput /. abl_base))
    ablation;
  let scaling_json =
    List.map
      (fun (shards, r) ->
        Printf.sprintf
          "    {\"shards\": %d, \"speedup\": %.4f,\n     \"result\": %s}"
          shards
          (r.Experiment.throughput /. base_tp)
          (json_of_result r))
      scaling
  in
  let ablation_json =
    List.map
      (fun (cross_pct, r) ->
        Printf.sprintf
          "    {\"shards\": 4, \"multi_pct\": 20, \"cross_pct\": %d, \
           \"relative\": %.4f,\n     \"result\": %s}"
          cross_pct
          (r.Experiment.throughput /. abl_base)
          (json_of_result r))
      ablation
  in
  write_validated path
    (Printf.sprintf
       "{\n  \"schema_version\": %d,\n\
       \  \"config\": {\"workers\": %d, \"read_pct\": %d, \"op_batch\": %d, \
        \"key_range\": %d, \"log_size\": %d, \"epsilon\": %d, \
        \"duration_ns\": %d},\n\
       \  \"scaling\": [\n%s\n  ],\n\
       \  \"cross_shard\": [\n%s\n  ]\n}\n"
       Telemetry.Json.schema_version workers shardscale_read_pct
       shardscale_op_batch keys scale.Figures.log_size
       scale.Figures.eps_large scale.Figures.duration_ns
       (String.concat ",\n" scaling_json)
       (String.concat ",\n" ablation_json));
  Printf.printf "artifact: %s\n%!" path;
  let speedup4 =
    match List.assoc_opt 4 scaling with
    | Some r -> r.Experiment.throughput /. base_tp
    | None -> 0.0
  in
  if speedup4 < 3.0 then begin
    Printf.eprintf
      "bench shardscale FAILED: 4 shards only %.2fx over 1 shard (need 3x)\n"
      speedup4;
    exit 1
  end

let () =
  let scale = Figures.scale_of_env () in
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" with
  | "all" -> Figures.all scale
  | "table1" -> Figures.table1 ()
  | "fig1" -> Figures.fig1 scale
  | "fig2" -> Figures.fig2 scale
  | "fig3" -> Figures.fig3 scale
  | "fig4" -> Figures.fig4 scale
  | "fig5" -> Figures.fig5 scale
  | "fig6" -> Figures.fig6 scale
  | "ablation" -> Figures.ablation scale
  | "flushstats" -> Figures.flushstats scale
  | "micro" -> run_micro ()
  | "smoke" ->
    run_smoke (if Array.length Sys.argv > 2 then Sys.argv.(2) else "bench-smoke.json")
  | "persistgain" ->
    run_persistgain
      (if Array.length Sys.argv > 2 then Sys.argv.(2) else "bench-persistgain.json")
      (if Array.length Sys.argv > 3 then Some Sys.argv.(3) else None)
  | "readscale" ->
    run_readscale
      (if Array.length Sys.argv > 2 then Sys.argv.(2) else "bench-readscale.json")
  | "loadcurve" ->
    run_loadcurve
      (if Array.length Sys.argv > 2 then Sys.argv.(2) else "bench-loadcurve.json")
  | "shardscale" ->
    run_shardscale
      (if Array.length Sys.argv > 2 then Sys.argv.(2) else "bench-shardscale.json")
  | other ->
    Printf.eprintf
      "unknown command %S (expected \
       all|table1|fig1..fig6|ablation|flushstats|micro|smoke|persistgain|readscale|loadcurve|shardscale)\n"
      other;
    exit 1
