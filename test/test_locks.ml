(* Tests for the trylock and reader-writer lock over simulated memory. *)

open Nvm
open Prep

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 }

let with_mem f =
  Sim.run_one (fun () ->
      let mem = Memory.make ~bg_period:0 () in
      let aid = Memory.new_arena mem ~kind:Memory.Dram ~home:0 in
      f mem (Memory.addr_of ~aid ~offset:8))

let test_trylock_basic () =
  with_mem (fun mem a ->
      let l = Locks.Trylock.make mem a in
      check_bool "acquire" true (Locks.Trylock.try_acquire l);
      check_bool "held" true (Locks.Trylock.held l);
      check_bool "second acquire fails" false (Locks.Trylock.try_acquire l);
      Locks.Trylock.release l;
      check_bool "released" false (Locks.Trylock.held l);
      check_bool "reacquire" true (Locks.Trylock.try_acquire l))

let test_rwlock_readers_share () =
  with_mem (fun mem a ->
      let l = Locks.Rwlock.make mem a in
      check_bool "reader 1" true (Locks.Rwlock.try_read_acquire l);
      check_bool "reader 2" true (Locks.Rwlock.try_read_acquire l);
      check_bool "writer blocked by readers" false
        (Locks.Rwlock.try_write_acquire l);
      Locks.Rwlock.read_release l;
      check_bool "writer still blocked" false (Locks.Rwlock.try_write_acquire l);
      Locks.Rwlock.read_release l;
      check_bool "writer now ok" true (Locks.Rwlock.try_write_acquire l);
      check_bool "reader blocked by writer" false
        (Locks.Rwlock.try_read_acquire l);
      Locks.Rwlock.write_release l;
      check_bool "reader ok again" true (Locks.Rwlock.try_read_acquire l))

(* Writers are mutually exclusive with everyone in simulated time, and a
   shared counter incremented non-atomically under the write lock must not
   lose updates. *)
let test_rwlock_writer_exclusion () =
  let sim = Sim.create ~seed:3L topology in
  let mem = Memory.make ~bg_period:0 ~sockets:2 () in
  let aid = Memory.new_arena mem ~kind:Memory.Dram ~home:0 in
  let lock_addr = Memory.addr_of ~aid ~offset:8 in
  let counter = Memory.addr_of ~aid ~offset:16 in
  let l = ref None in
  ignore (Sim.spawn sim ~socket:0 (fun () ->
      l := Some (Locks.Rwlock.make mem lock_addr)));
  (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  let sim = Sim.create ~seed:4L topology in
  let l = Option.get !l in
  for w = 0 to 7 do
    let socket, core = Sim.Topology.place topology w in
    ignore
      (Sim.spawn sim ~socket ~core (fun () ->
           for _ = 1 to 50 do
             Locks.Rwlock.write_acquire l;
             (* non-atomic read-modify-write: only safe under the lock *)
             let v = Memory.read mem counter in
             Sim.tick 30;
             Memory.write mem counter (v + 1);
             Locks.Rwlock.write_release l
           done))
  done;
  (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  check "no lost updates" 400 (Memory.peek mem counter)

(* Readers must never observe a writer's half-done update. *)
let test_rwlock_readers_see_consistent_pairs () =
  let sim = Sim.create ~seed:5L topology in
  let mem = Memory.make ~bg_period:0 ~sockets:2 () in
  let aid = Memory.new_arena mem ~kind:Memory.Dram ~home:0 in
  let lock_addr = Memory.addr_of ~aid ~offset:8 in
  let x = Memory.addr_of ~aid ~offset:16 in
  let y = Memory.addr_of ~aid ~offset:24 in
  let violations = ref 0 in
  let l = ref None in
  ignore (Sim.spawn sim ~socket:0 (fun () ->
      l := Some (Locks.Rwlock.make mem lock_addr)));
  (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  let l = Option.get !l in
  let sim = Sim.create ~seed:6L topology in
  (* writer keeps x = y, with a deliberate torn window inside the lock *)
  ignore
    (Sim.spawn sim ~socket:0 ~core:0 (fun () ->
         for i = 1 to 100 do
           Locks.Rwlock.write_acquire l;
           Memory.write mem x i;
           Sim.tick 100;
           Memory.write mem y i;
           Locks.Rwlock.write_release l
         done));
  for w = 1 to 6 do
    let socket, core = Sim.Topology.place topology w in
    ignore
      (Sim.spawn sim ~socket ~core (fun () ->
           for _ = 1 to 100 do
             Locks.Rwlock.read_acquire l;
             let xv = Memory.read mem x in
             let yv = Memory.read mem y in
             if xv <> yv then incr violations;
             Locks.Rwlock.read_release l
           done))
  done;
  (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  check "no torn reads" 0 !violations

(* The combiner trylock pattern: many contenders, exactly one combiner at
   a time, everyone eventually becomes one. *)
let test_trylock_combiner_pattern () =
  let sim = Sim.create ~seed:8L topology in
  let mem = Memory.make ~bg_period:0 ~sockets:2 () in
  let aid = Memory.new_arena mem ~kind:Memory.Dram ~home:0 in
  let l = ref None in
  ignore (Sim.spawn sim ~socket:0 (fun () ->
      l := Some (Locks.Trylock.make mem (Memory.addr_of ~aid ~offset:8))));
  (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  let l = Option.get !l in
  let sim = Sim.create ~seed:9L topology in
  let combines = Array.make 8 0 in
  for w = 0 to 7 do
    let socket, core = Sim.Topology.place topology w in
    ignore
      (Sim.spawn sim ~socket ~core (fun () ->
           let remaining = ref 20 in
           while !remaining > 0 do
             if Locks.Trylock.try_acquire l then begin
               Sim.tick 200;
               combines.(w) <- combines.(w) + 1;
               decr remaining;
               Locks.Trylock.release l
             end
             else Sim.spin ()
           done))
  done;
  (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  Array.iteri
    (fun w n -> check (Printf.sprintf "worker %d combined" w) 20 n)
    combines

(* ---- distributed reader-writer lock ---- *)

module D = Locks.Dist_rwlock

let test_dist_basic () =
  with_mem (fun mem a ->
      (* [with_mem] hands out offset 8 = exactly one cache line in, so the
         per-core flag lines are naturally aligned *)
      let l = D.make mem a ~ncores:4 in
      check "writer word clear" 0 (D.peek_writer l);
      check_bool "reader acquires" true (D.try_read_acquire l);
      check "flag raised" 1 (D.peek_flag l 0);
      D.read_release l;
      check "flag lowered" 0 (D.peek_flag l 0);
      D.write_acquire l;
      check "writer word taken" (-1) (D.peek_writer l);
      check_bool "reader blocked by writer" false (D.try_read_acquire l);
      check "failed reader left no flag" 0 (D.peek_flag l 0);
      D.write_release l;
      check "writer word released" 0 (D.peek_writer l);
      check_bool "reader ok again" true (D.try_read_acquire l);
      check "both successful read acquires counted" 2 l.D.read_acquires;
      check "one writer sweep counted" 1 l.D.writer_sweeps)

(* One simulated machine per property sample: 1 socket x 8 cores so every
   reader fiber owns a distinct per-core flag line (as in PREP, where only
   same-socket threads read-acquire their replica's lock). *)
let dist_topology = Sim.Topology.{ sockets = 1; cores_per_socket = 8 }

let make_dist_lock mem ~ncores =
  let sim = Sim.create ~seed:77L dist_topology in
  let aid = Memory.new_arena mem ~kind:Memory.Dram ~home:0 in
  let a = Memory.addr_of ~aid ~offset:Memory.line_words in
  let l = ref None in
  ignore (Sim.spawn sim ~socket:0 (fun () -> l := Some (D.make mem a ~ncores)));
  (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  Option.get !l

(* Property: under randomized preemption, writers exclude both readers and
   other writers, readers never see a torn write, and no update is lost. *)
let prop_dist_exclusion seed =
  let mem = Memory.make ~bg_period:0 ~sockets:1 () in
  let l = make_dist_lock mem ~ncores:8 in
  let aid = Memory.new_arena mem ~kind:Memory.Dram ~home:0 in
  let x = Memory.addr_of ~aid ~offset:16 in
  let y = Memory.addr_of ~aid ~offset:24 in
  let sim =
    Sim.create ~seed:(Int64.of_int (seed + 1)) ~preempt_prob:0.05 dist_topology
  in
  let writers_in = ref 0 and readers_in = ref 0 and violations = ref 0 in
  let writer_iters = 15 and reader_iters = 25 in
  (* writers on cores 0-3 *)
  for core = 0 to 3 do
    ignore
      (Sim.spawn sim ~socket:0 ~core (fun () ->
           for _ = 1 to writer_iters do
             D.write_acquire l;
             if !writers_in > 0 || !readers_in > 0 then incr violations;
             incr writers_in;
             (* torn, non-atomic x = y increment: only safe when exclusive *)
             let v = Memory.read mem x in
             Sim.tick 60;
             Memory.write mem x (v + 1);
             Sim.tick 60;
             Memory.write mem y (v + 1);
             decr writers_in;
             D.write_release l
           done))
  done;
  (* readers on cores 4-7 *)
  for core = 4 to 7 do
    ignore
      (Sim.spawn sim ~socket:0 ~core (fun () ->
           for _ = 1 to reader_iters do
             D.read_acquire l;
             if !writers_in > 0 then incr violations;
             incr readers_in;
             let xv = Memory.read mem x in
             Sim.tick 40;
             let yv = Memory.read mem y in
             if xv <> yv then incr violations;
             decr readers_in;
             D.read_release l
           done))
  done;
  (match Sim.run sim () with
   | `Done -> ()
   | `Cut _ -> QCheck.Test.fail_report "dist lock wedged");
  !violations = 0
  && Memory.peek mem x = 4 * writer_iters
  && Memory.peek mem y = 4 * writer_iters

(* Property: when every critical section has exited, no reader flag is left
   raised and the writer word is free — a lost flag would wedge the next
   writer's sweep forever. Also checks the acquisition counters are exact:
   every read_acquire accounts for exactly one successful flag-raise. *)
let prop_dist_no_lost_flags seed =
  let mem = Memory.make ~bg_period:0 ~sockets:1 () in
  let l = make_dist_lock mem ~ncores:8 in
  let sim =
    Sim.create ~seed:(Int64.of_int (seed + 1)) ~preempt_prob:0.08 dist_topology
  in
  let reader_iters = 10 + (seed mod 20) in
  let writer_iters = 1 + (seed mod 5) in
  (* readers on cores 0-6; the writer shares core 7 (writers never touch a
     per-core flag, so core sharing is safe for them) *)
  for core = 0 to 6 do
    ignore
      (Sim.spawn sim ~socket:0 ~core (fun () ->
           for _ = 1 to reader_iters do
             D.read_acquire l;
             Sim.tick 25;
             D.read_release l
           done))
  done;
  ignore
    (Sim.spawn sim ~socket:0 ~core:7 (fun () ->
         for _ = 1 to writer_iters do
           D.write_acquire l;
           Sim.tick 80;
           D.write_release l
         done));
  (match Sim.run sim () with
   | `Done -> ()
   | `Cut _ -> QCheck.Test.fail_report "dist lock wedged");
  let flags_clear = ref true in
  for i = 0 to 7 do
    if D.peek_flag l i <> 0 then flags_clear := false
  done;
  !flags_clear && D.peek_writer l = 0
  && l.D.read_acquires = 7 * reader_iters
  && l.D.writer_sweeps = writer_iters

let qtest name count prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count QCheck.(int_range 0 10_000) prop)

let () =
  Alcotest.run "locks"
    [
      ( "trylock",
        [
          Alcotest.test_case "basic" `Quick test_trylock_basic;
          Alcotest.test_case "combiner pattern" `Quick test_trylock_combiner_pattern;
        ] );
      ( "rwlock",
        [
          Alcotest.test_case "readers share" `Quick test_rwlock_readers_share;
          Alcotest.test_case "writer exclusion" `Quick test_rwlock_writer_exclusion;
          Alcotest.test_case "consistent reads" `Quick
            test_rwlock_readers_see_consistent_pairs;
        ] );
      ( "dist-rwlock",
        [
          Alcotest.test_case "basic" `Quick test_dist_basic;
          qtest "writer exclusion under preemption" 20 prop_dist_exclusion;
          qtest "no lost reader flags" 20 prop_dist_no_lost_flags;
        ] );
    ]
