(* Tests for the telemetry layer: registry semantics (counters,
   histograms, span nesting and self-time), the JSON parser and artifact
   validators, Chrome-trace export round-trips, and — most importantly —
   the zero-divergence invariant: enabling telemetry must not change the
   behaviour of a run, down to crash-point-fuzzing outcomes. *)

open Telemetry
module R = Registry

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ---- registry: counters and gauges ---- *)

let test_counters () =
  let reg = R.create () in
  R.add_to reg "a" 3;
  R.add_to reg "a" 4;
  R.add_to reg "b" 1;
  let snap = R.snapshot reg in
  check "a sums" 7 (R.find_counter snap "a");
  check "b" 1 (R.find_counter snap "b");
  check "absent is 0" 0 (R.find_counter snap "zzz");
  check_bool "sorted by name" true
    (snap.R.sn_counters = List.sort compare snap.R.sn_counters)

let test_disabled_registry_records_nothing () =
  let reg = R.create ~enabled:false () in
  R.add_to reg "a" 3;
  R.instant reg "boom";
  let snap = R.snapshot reg in
  check "no counters" 0 (List.length snap.R.sn_counters);
  check "no events" 0 (R.n_events reg)

let test_cur_add_without_ambient_registry () =
  (* must be a silent no-op, not a crash: this is the default path *)
  R.set_current None;
  R.cur_add "x" 1;
  R.cur_instant "y";
  check_bool "no ambient registry" true (R.current () = None)

let test_with_current_restores () =
  let reg = R.create () in
  R.set_current None;
  let r =
    R.with_current reg (fun () ->
        R.cur_add "inside" 5;
        17)
  in
  check "result threaded" 17 r;
  check_bool "restored" true (R.current () = None);
  check "recorded while installed" 5 (R.find_counter (R.snapshot reg) "inside")

(* ---- registry: histograms ---- *)

let test_histogram_stats () =
  let reg = R.create () in
  let h = R.histogram reg "lat" in
  for v = 1 to 100 do
    R.observe h v
  done;
  let snap = R.snapshot reg in
  let st = List.assoc "lat" snap.R.sn_hists in
  check "n" 100 st.R.hs_n;
  check "sum" 5050 st.R.hs_sum;
  check "min" 1 st.R.hs_min;
  check "max" 100 st.R.hs_max;
  (* log2 buckets: 1..63 fill buckets 1..6 (63 values), so the 50th
     value lands in bucket 6, whose geometric representative is 48; the
     95th and 99th land in bucket 7 (rep 96) *)
  check "p50" 48 st.R.hs_p50;
  check "p95" 96 st.R.hs_p95;
  check "p99" 96 st.R.hs_p99;
  check_bool "ordered" true (st.R.hs_p50 <= st.R.hs_p95 && st.R.hs_p95 <= st.R.hs_p99)

let test_histogram_single_value_is_exact () =
  let reg = R.create () in
  let h = R.histogram reg "one" in
  R.observe h 100;
  let st = List.assoc "one" (R.snapshot reg).R.sn_hists in
  check "p50 clamped to the one value" 100 st.R.hs_p50;
  check "p99 clamped to the one value" 100 st.R.hs_p99

(* ---- registry: spans on the simulated clock ---- *)

let span_roundtrip () =
  Sim.run_one (fun () ->
      let reg = R.create () in
      let outer = R.span reg "outer" and inner = R.span reg "inner" in
      R.span_enter reg outer;
      Sim.tick 100;
      R.span_enter reg inner;
      Sim.tick 50;
      R.span_exit reg inner;
      Sim.tick 25;
      R.span_exit reg outer;
      R.snapshot reg)

let test_span_nesting_self_time () =
  let snap = span_roundtrip () in
  let outer = List.assoc "outer" snap.R.sn_spans in
  let inner = List.assoc "inner" snap.R.sn_spans in
  check "outer inclusive" 175 outer.R.ss_stats.R.hs_sum;
  check "outer self excludes inner" 125 outer.R.ss_self;
  check "inner inclusive" 50 inner.R.ss_stats.R.hs_sum;
  check "inner self" 50 inner.R.ss_self;
  (* every covered nanosecond is attributed to exactly one span *)
  check "self times sum to covered time" snap.R.sn_covered
    (outer.R.ss_self + inner.R.ss_self);
  check "track extent equals outer span" 175 snap.R.sn_track_extent;
  check "one track" 1 snap.R.sn_tracks

let test_with_span_exception_safe () =
  Sim.run_one (fun () ->
      let reg = R.create () in
      let sp = R.span reg "risky" in
      (try R.with_span reg sp (fun () -> Sim.tick 10; failwith "boom")
       with Failure _ -> ());
      (* the frame must have been popped: a fresh span still nests cleanly *)
      R.with_span reg sp (fun () -> Sim.tick 5);
      let st = (List.assoc "risky" (R.snapshot reg).R.sn_spans).R.ss_stats in
      check "both entries recorded" 2 st.R.hs_n;
      check "durations recorded" 15 st.R.hs_sum)

let test_unbalanced_exit_ignored () =
  Sim.run_one (fun () ->
      let reg = R.create () in
      let sp = R.span reg "never-entered" in
      R.span_exit reg sp; (* must not raise or corrupt the stack *)
      let other = R.span reg "real" in
      R.with_span reg other (fun () -> Sim.tick 7);
      check "real span intact" 7
        (List.assoc "real" (R.snapshot reg).R.sn_spans).R.ss_stats.R.hs_sum)

(* ---- JSON parser ---- *)

let test_json_parse_basics () =
  match Json.parse {|{"a": [1, 2.5, "x\ny"], "b": true, "c": null}|} with
  | Json.Obj kvs ->
    (match List.assoc "a" kvs with
     | Json.List [ Json.Num one; Json.Num _; Json.Str s ] ->
       check "int" 1 (int_of_float one);
       check_str "escape" "x\ny" s
     | _ -> Alcotest.fail "list shape");
    check_bool "bool" true (List.assoc "b" kvs = Json.Bool true);
    check_bool "null" true (List.assoc "c" kvs = Json.Null)
  | _ -> Alcotest.fail "object expected"

let test_json_parse_errors () =
  let bad s =
    match Json.parse_result s with Ok _ -> false | Error _ -> true
  in
  check_bool "trailing garbage" true (bad "{} x");
  check_bool "unterminated string" true (bad {|{"a": "bc|});
  check_bool "missing colon" true (bad {|{"a" 1}|});
  check_bool "empty input" true (bad "");
  check_bool "empty containers fine" true
    (Json.parse_result {|{"a": [], "b": {}}|} = Ok (Json.Obj [ ("a", Json.List []); ("b", Json.Obj []) ]))

let test_validate_trace () =
  let ok =
    {|{"schema_version": 2, "traceEvents": [
        {"ph": "M", "name": "thread_name", "pid": 0, "tid": 1, "args": {"name": "w"}},
        {"ph": "X", "name": "combine", "pid": 0, "tid": 1, "ts": 1.5, "dur": 2.0},
        {"ph": "i", "name": "crash", "pid": 0, "tid": 1, "ts": 4.0, "s": "t"}]}|}
  in
  check_bool "valid trace accepted" true
    (Json.validate_string Json.validate_trace ok = Ok ());
  let invalid s = Json.validate_string Json.validate_trace s <> Ok () in
  check_bool "missing schema_version" true
    (invalid {|{"traceEvents": [{"ph": "M", "name": "n"}]}|});
  check_bool "empty traceEvents" true
    (invalid {|{"schema_version": 2, "traceEvents": []}|});
  check_bool "X without dur" true
    (invalid
       {|{"schema_version": 2, "traceEvents": [
           {"ph": "X", "name": "n", "pid": 0, "tid": 1, "ts": 1.0}]}|});
  check_bool "unknown ph" true
    (invalid {|{"schema_version": 2, "traceEvents": [{"ph": "Q", "name": "n"}]}|})

let test_validate_bench () =
  let result =
    {|{"system": "S", "workload": "w", "workers": 1, "ops": 2,
       "duration_ns": 3, "throughput": 4.0, "wbinvd": 0, "clwb": 0,
       "clwb_elided": 0, "clwb_coalesced": 0, "clflush": 0,
       "clflush_elided": 0, "sfence": 0, "sfence_elided": 0,
       "bg_flushes": 0, "counters": {"k": 1}}|}
  in
  let doc =
    Printf.sprintf
      {|{"schema_version": 2, "nested": {"points": [{"baseline": %s}]}}|}
      result
  in
  check_bool "valid bench accepted" true
    (Json.validate_string Json.validate_bench doc = Ok ());
  (* a result object lacking required keys must be rejected, even nested *)
  let broken =
    Printf.sprintf
      {|{"schema_version": 2, "points": [{"system": "S", "counters": {}}]}|}
  in
  check_bool "result missing keys rejected" true
    (Json.validate_string Json.validate_bench broken <> Ok ());
  check_bool "wrong schema_version rejected" true
    (Json.validate_string Json.validate_bench {|{"schema_version": 99}|}
     <> Ok ())

(* ---- trace export ---- *)

let tracing_registry_with_activity () =
  Sim.run_one (fun () ->
      let reg = R.create ~tracing:true () in
      R.name_track reg 0 "main-fiber";
      let a = R.span reg "combine" and b = R.span reg "persist" in
      R.with_span reg a (fun () ->
          Sim.tick 120;
          R.with_span reg b (fun () -> Sim.tick 80));
      R.instant reg "crash";
      reg)

let test_trace_export_roundtrip () =
  let reg = tracing_registry_with_activity () in
  check_bool "events captured" true (R.n_events reg >= 3);
  let s = Trace_export.to_string reg in
  (match Json.validate_string Json.validate_trace s with
   | Ok () -> ()
   | Error errs -> Alcotest.fail (String.concat "; " errs));
  (* the span and instant names survive the round-trip *)
  let v = Json.parse s in
  match Json.member "traceEvents" v with
  | Some (Json.List evs) ->
    let names =
      List.filter_map
        (fun e ->
          match Json.member "name" e with Some (Json.Str n) -> Some n | _ -> None)
        evs
    in
    check_bool "combine exported" true (List.mem "combine" names);
    check_bool "persist exported" true (List.mem "persist" names);
    check_bool "instant exported" true (List.mem "crash" names);
    check_bool "track name exported" true (List.mem "thread_name" names)
  | _ -> Alcotest.fail "no traceEvents"

let test_trace_write_validates () =
  let reg = tracing_registry_with_activity () in
  let path = Filename.temp_file "prep-trace" ".json" in
  (match Trace_export.write reg path with
   | Ok () -> ()
   | Error errs -> Alcotest.fail (String.concat "; " errs));
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  check_bool "file content validates" true
    (Json.validate_string Json.validate_trace s = Ok ())

let test_untraced_registry_has_no_events () =
  let reg =
    Sim.run_one (fun () ->
        let reg = R.create () in
        let a = R.span reg "combine" in
        R.with_span reg a (fun () -> Sim.tick 10);
        reg)
  in
  check "no events without tracing" 0 (R.n_events reg)

(* ---- zero-divergence: telemetry on vs off ---- *)

open Harness
module Hm = Experiment.Systems (Seqds.Hashmap)

let small_topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 }

let run_point ?telemetry () =
  Experiment.run ?telemetry ~seed:90L ~topology:small_topology
    ~duration_ns:400_000 ~warmup_ns:50_000
    ~system:
      (Hm.prep ~log_size:4096 ~flit:true ~dist_rw:true ~log_mirror:true
         ~slot_bitmap:true ~mode:Prep.Config.Durable ~epsilon:256 ())
    ~workload:(Workload.map_workload ~read_pct:50 ~key_range:512 ~prefill_n:128)
    ~workers:5 ()

let test_experiment_same_with_telemetry () =
  let off = run_point () in
  let on = run_point ~telemetry:(R.create ~tracing:true ()) () in
  check "same ops" off.Experiment.ops on.Experiment.ops;
  check "same clwb" off.Experiment.clwb on.Experiment.clwb;
  check "same clflush" off.Experiment.clflush on.Experiment.clflush;
  check "same sfence" off.Experiment.sfence on.Experiment.sfence;
  check "same elisions" off.Experiment.clwb_elided on.Experiment.clwb_elided;
  Alcotest.(check (list (pair string int)))
    "same legacy counters"
    (Experiment.counters off) (Experiment.counters on)

let test_experiment_phase_coverage () =
  (* acceptance: the phase breakdown's total must be within 5% of the
     wall fiber time — no simulated time escapes the instrumentation *)
  let r = run_point ~telemetry:(R.create ()) () in
  let snap = r.Experiment.telemetry in
  let total = Profile.phase_total snap in
  let wall = snap.R.sn_track_extent in
  check_bool "spans recorded" true (total > 0);
  check_bool
    (Printf.sprintf "phase total %d within 5%% of wall %d" total wall)
    true
    (float_of_int (abs (total - wall)) <= 0.05 *. float_of_int wall);
  (* and the rendering mentions all four core phases *)
  let contains s sub =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  let rendered = Profile.render snap in
  List.iter
    (fun phase -> check_bool (phase ^ " in profile") true (contains rendered phase))
    Prep.Phases.phase_names

(* ---- zero-divergence: differential crash-point fuzzing ---- *)

module F = Check.Fuzz.Make (Seqds.Hashmap)

let gen_op rng =
  let k = Sim.Rng.int rng 64 in
  match Sim.Rng.int rng 10 with
  | 0 | 1 | 2 | 3 -> (Seqds.Hashmap.op_insert, [| k; Sim.Rng.int rng 1000 |])
  | 4 | 5 -> (Seqds.Hashmap.op_remove, [| k |])
  | 6 | 7 | 8 -> (Seqds.Hashmap.op_get, [| k |])
  | _ -> (Seqds.Hashmap.op_size, [||])

let episode crash =
  {
    Check.Fuzz.workload_seed = 7;
    threads = 4;
    epsilon = 16;
    log_size = 256;
    ops_per_worker = 60;
    bg_period = 2000;
    preempt_prob = 0.02;
    crash;
  }

let outcome_tuple (o : Check.Fuzz.outcome) =
  ( o.Check.Fuzz.crashed,
    o.Check.Fuzz.vacuous,
    o.Check.Fuzz.logged,
    o.Check.Fuzz.completed,
    o.Check.Fuzz.applied,
    o.Check.Fuzz.runtime_ops,
    o.Check.Fuzz.end_time,
    List.length o.Check.Fuzz.violations )

let test_fuzz_differential_telemetry_on_off () =
  let crash_points =
    [ Check.Fuzz.No_crash; Check.Fuzz.At_op 500; Check.Fuzz.At_op 2500;
      Check.Fuzz.At_time 300_000 ]
  in
  List.iter
    (fun crash ->
      let ep = episode crash in
      let run () =
        outcome_tuple
          (F.run_episode ~mode:Prep.Config.Durable ~fault:Prep.Config.No_fault
             ~gen_op ep)
      in
      R.set_current None;
      let off = run () in
      let reg = R.create ~tracing:true () in
      let on = R.with_current reg run in
      check_bool
        (Fmt.str "identical outcome for %a" Check.Fuzz.pp_episode ep)
        true (off = on);
      (* the instrumented run actually recorded something *)
      check_bool "telemetry saw the episode" true
        ((R.snapshot reg).R.sn_counters <> []))
    crash_points

let () =
  Alcotest.run "telemetry"
    [
      ( "registry",
        [
          Alcotest.test_case "counters sum" `Quick test_counters;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_registry_records_nothing;
          Alcotest.test_case "no ambient registry" `Quick
            test_cur_add_without_ambient_registry;
          Alcotest.test_case "with_current restores" `Quick
            test_with_current_restores;
          Alcotest.test_case "histogram stats" `Quick test_histogram_stats;
          Alcotest.test_case "single-value percentiles" `Quick
            test_histogram_single_value_is_exact;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and self-time" `Quick
            test_span_nesting_self_time;
          Alcotest.test_case "with_span exception-safe" `Quick
            test_with_span_exception_safe;
          Alcotest.test_case "unbalanced exit ignored" `Quick
            test_unbalanced_exit_ignored;
        ] );
      ( "json",
        [
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "validate trace" `Quick test_validate_trace;
          Alcotest.test_case "validate bench" `Quick test_validate_bench;
        ] );
      ( "trace-export",
        [
          Alcotest.test_case "roundtrip validates" `Quick
            test_trace_export_roundtrip;
          Alcotest.test_case "write self-validates" `Quick
            test_trace_write_validates;
          Alcotest.test_case "no events untraced" `Quick
            test_untraced_registry_has_no_events;
        ] );
      ( "zero-divergence",
        [
          Alcotest.test_case "experiment on/off identical" `Quick
            test_experiment_same_with_telemetry;
          Alcotest.test_case "phase coverage within 5%" `Quick
            test_experiment_phase_coverage;
          Alcotest.test_case "fuzz differential on/off" `Quick
            test_fuzz_differential_telemetry_on_off;
        ] );
    ]
