(* Bounded exhaustive schedule-and-crash exploration: the explorer must
   find every planted protocol fault deterministically inside a fixed
   budget, produce decision traces that replay to the same violation,
   exhaust the no-fault small scopes with zero violations, show the
   epsilon+beta-1 loss bound tight, and beat naive enumeration by a wide
   margin. Every budget below is a schedule/state/step count — nothing
   here is wall-clock — so the suite cannot flake under load. *)

open Prep

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

module E = Check.Explore.Make (Seqds.Hashmap)
module H = Seqds.Hashmap

(* Same op mix as the CLI explore workload; the seeds below were picked
   for their draw under exactly this generator (seed 6 draws updates
   only, so every op is logged and loss-visible). *)
let gen_op rng =
  let k = Sim.Rng.int rng 64 in
  match Sim.Rng.int rng 10 with
  | 0 | 1 | 2 | 3 -> (H.op_insert, [| k; Sim.Rng.int rng 1000 |])
  | 4 | 5 -> (H.op_remove, [| k |])
  | 6 | 7 | 8 -> (H.op_get, [| k |])
  | _ -> (H.op_size, [||])

(* The minimal fault-detection scope: one worker plus the persistence
   thread on its own socket (beta = 1), two update ops, epsilon 1 — the
   smallest workload on which each planted fault is observable at all. *)
let scope_1w =
  {
    Check.Explore.seed = 6;
    threads = 1;
    ops_per_worker = 2;
    epsilon = 1;
    log_size = 16;
    sockets = 2;
    cores_per_socket = 1;
    prune = true;
    persistence = true;
  }

let budget =
  { Check.Explore.default_budget with Check.Explore.max_schedules = 20_000 }

let explore ?flit ?dist_rw ?log_mirror ?slot_bitmap ?detect ?lsm_ckpt
    ?lsm_fanout ?(budget = budget) ?(scope = scope_1w) mode fault =
  E.explore ?flit ?dist_rw ?log_mirror ?slot_bitmap ?detect ?lsm_ckpt
    ?lsm_fanout ~budget ~mode ~fault ~gen_op ~scope ()

let exhausted_clean label (res : Check.Explore.result) =
  check_bool (label ^ ": no violation") true
    (res.Check.Explore.violation = None);
  check_bool (label ^ ": exhausted") true res.Check.Explore.exhausted;
  check_bool (label ^ ": reached terminals") true
    (res.Check.Explore.stats.Check.Explore.terminals > 0)

(* A violation's decision trace must replay to the same violation — the
   round-trip through the textual run-length encoding included, because
   that is what the CLI repro command ships. *)
let replay_reproduces ?flit ?dist_rw ?log_mirror ?slot_bitmap ?detect
    ?lsm_ckpt ?lsm_fanout label mode fault scope
    (v : Check.Explore.violation) =
  let decisions =
    Check.Explore.decisions_of_string
      (Check.Explore.decisions_to_string v.Check.Explore.v_decisions)
  in
  let violations, crashed, logged, completed, applied =
    E.replay ?flit ?dist_rw ?log_mirror ?slot_bitmap ?detect ?lsm_ckpt
      ?lsm_fanout ~mode ~fault ~gen_op ~scope ~decisions
      ?crash:v.Check.Explore.v_crash ()
  in
  check_bool (label ^ ": replay violates") true (violations <> []);
  check_bool (label ^ ": replay crashed") true
    (crashed = (v.Check.Explore.v_crash <> None));
  check (label ^ ": replay logged") v.Check.Explore.v_logged logged;
  check (label ^ ": replay completed") v.Check.Explore.v_completed completed;
  check (label ^ ": replay applied") v.Check.Explore.v_applied applied

let is_loss_bound = function
  | Check.Durable_lin.Loss_bound_exceeded _ -> true
  | _ -> false

(* ---- planted faults: found deterministically, traces replay ---- *)

let test_early_boundary_found () =
  (* boundary advanced before the flush+swap: completed ops race a full
     window ahead of the stable checkpoint, so a crash can lose 2 ops
     against the epsilon+beta-1 = 1 bound *)
  let res = explore Config.Buffered Config.Early_boundary_advance in
  match res.Check.Explore.violation with
  | None -> Alcotest.fail "early-boundary fault not found within budget"
  | Some v ->
    check_bool "found as loss-bound violation" true
      (List.exists is_loss_bound v.Check.Explore.v_violations);
    check_bool "found at a crash frontier" true
      (v.Check.Explore.v_crash <> None);
    replay_reproduces "early-boundary" Config.Buffered
      Config.Early_boundary_advance scope_1w v

let test_elide_ct_flush_found () =
  (* durable mode promises zero loss; eliding the completedTail flush
     loses the tail on crash and recovery drops a completed op *)
  let res = explore Config.Durable Config.Elide_ct_flush in
  match res.Check.Explore.violation with
  | None -> Alcotest.fail "elide-ct-flush fault not found within budget"
  | Some v ->
    check_bool "found as loss-bound violation" true
      (List.exists is_loss_bound v.Check.Explore.v_violations);
    replay_reproduces "elide-ct-flush" Config.Durable Config.Elide_ct_flush
      scope_1w v

let test_mirror_read_found () =
  (* recovery served from the DRAM log mirror, which the crash zeroed:
     durably completed ops read as holes and are dropped *)
  let res =
    explore ~log_mirror:true Config.Durable Config.Mirror_read_on_recovery
  in
  match res.Check.Explore.violation with
  | None -> Alcotest.fail "mirror-read fault not found within budget"
  | Some v ->
    replay_reproduces ~log_mirror:true "mirror-read" Config.Durable
      Config.Mirror_read_on_recovery scope_1w v

(* ---- determinism: same scope, same budget => identical outcome ---- *)

let test_exploration_deterministic () =
  let run () = explore Config.Durable Config.Elide_ct_flush in
  let a = run () and b = run () in
  match (a.Check.Explore.violation, b.Check.Explore.violation) with
  | Some va, Some vb ->
    check_bool "same decision trace" true
      (va.Check.Explore.v_decisions = vb.Check.Explore.v_decisions);
    check_bool "same crash point" true
      (va.Check.Explore.v_crash = vb.Check.Explore.v_crash);
    check "same schedules to find"
      a.Check.Explore.stats.Check.Explore.schedules
      b.Check.Explore.stats.Check.Explore.schedules
  | _ -> Alcotest.fail "fault not found on one of two identical runs"

(* ---- no-fault scopes explore clean ---- *)

let buffered_clean =
  lazy (explore Config.Buffered Config.No_fault)

let test_no_fault_buffered_exhausts () =
  let res = Lazy.force buffered_clean in
  exhausted_clean "buffered" res;
  (* epsilon + beta - 1 = 1: crashes may lose at most one completed op,
     and some crash does lose one *)
  check "max completed-op loss at the bound" 1
    res.Check.Explore.stats.Check.Explore.max_completed_loss;
  check "single quiescent state" 1
    (List.length res.Check.Explore.terminal_states)

let test_no_fault_flit_exhausts () =
  let res = explore ~flit:true Config.Buffered Config.No_fault in
  exhausted_clean "flit" res

(* Full NUMA hot-path package (distributed reader locks, DRAM log
   mirror, slot-occupancy bitmaps) plus flush elimination, in durable
   mode — shared between the exhaustion test and the combined
   flag-equivalence test below. *)
let package_clean =
  lazy
    (explore ~flit:true ~dist_rw:true ~log_mirror:true ~slot_bitmap:true
       Config.Durable Config.No_fault)

let test_no_fault_package_exhausts () =
  let res = Lazy.force package_clean in
  exhausted_clean "numa package" res;
  check "durable: no completed op ever lost" 0
    res.Check.Explore.stats.Check.Explore.max_completed_loss

(* ---- epsilon+beta-1 tightness (epsilon = 2, beta = 1) ---- *)

let test_loss_bound_tight () =
  (* three update ops against a bound of 2: exhaustive search must
     exhibit a crash losing exactly 2 completed ops (the bound is
     attained) and none losing more (the bound holds) *)
  let scope = { scope_1w with Check.Explore.ops_per_worker = 3; epsilon = 2 } in
  let res = explore ~scope Config.Buffered Config.No_fault in
  exhausted_clean "tightness" res;
  check "worst crash loses exactly epsilon+beta-1 = 2" 2
    res.Check.Explore.stats.Check.Explore.max_completed_loss

(* ---- DPOR-style pruning vs naive enumeration ---- *)

let test_pruning_reduction () =
  (* The pruned explorer finishes the whole space of the one-op scope in
     S schedules; naive enumeration given the same S cannot. The full
     >=10x factor is too slow for runtest, so it lives in the CI explore
     smoke job and EXPERIMENTS.md: naive given 10x S (38,970 schedules)
     still does not exhaust — measured at >10x on schedules and >20x on
     distinct states for both the one-op and two-op scopes. *)
  let scope = { scope_1w with Check.Explore.ops_per_worker = 1 } in
  let pruned = explore ~scope Config.Buffered Config.No_fault in
  exhausted_clean "pruned one-op scope" pruned;
  let ps = pruned.Check.Explore.stats in
  check_bool "sleep sets fired" true (ps.Check.Explore.sleep_skips > 0);
  check_bool "state dedup fired" true (ps.Check.Explore.dedup_hits > 0);
  let naive =
    explore
      ~budget:
        { budget with Check.Explore.max_schedules = ps.Check.Explore.schedules }
      ~scope:{ scope with Check.Explore.prune = false }
      Config.Buffered Config.No_fault
  in
  check_bool "naive finds no violation either" true
    (naive.Check.Explore.violation = None);
  check_bool
    (Printf.sprintf
       "naive has not exhausted the space pruned finished in %d schedules"
       ps.Check.Explore.schedules)
    true
    (not naive.Check.Explore.exhausted)

(* ---- flag equivalence on exhaustively explored small scopes ----

   The gated optimisations must be observationally equivalent to the
   baseline: over the fully explored schedule space of the same workload
   the set of distinct quiescent states must coincide (here the scope is
   confluent: a single terminal state, equal across configurations, and
   zero violations on every side). *)

let equivalent label base opt =
  check_bool (label ^ ": baseline clean") true
    (base.Check.Explore.violation = None && base.Check.Explore.exhausted);
  check_bool (label ^ ": optimised clean") true
    (opt.Check.Explore.violation = None && opt.Check.Explore.exhausted);
  check_bool (label ^ ": same terminal states") true
    (base.Check.Explore.terminal_states = opt.Check.Explore.terminal_states)

let durable_base = lazy (explore Config.Durable Config.No_fault)

let test_equiv_dist_rw () =
  equivalent "dist-rw" (Lazy.force durable_base)
    (explore ~dist_rw:true Config.Durable Config.No_fault)

let test_equiv_log_mirror () =
  equivalent "log-mirror" (Lazy.force durable_base)
    (explore ~log_mirror:true Config.Durable Config.No_fault)

let test_equiv_slot_bitmap () =
  equivalent "slot-bitmap" (Lazy.force durable_base)
    (explore ~slot_bitmap:true Config.Durable Config.No_fault)

let test_equiv_combined () =
  equivalent "combined" (Lazy.force durable_base) (Lazy.force package_clean)

(* Two workers, three ops each (six ops total): the interleaving space
   is too large to exhaust in runtest, so each flag configuration gets
   the same fixed schedule budget and must stay violation-free across
   every explored interleaving and crash frontier. Durable mode makes
   the check sharp — any completed-op loss at any explored crash point
   is a violation. *)
let test_equiv_two_thread_budgeted () =
  let scope =
    {
      Check.Explore.seed = 1;
      threads = 2;
      ops_per_worker = 3;
      epsilon = 2;
      log_size = 16;
      sockets = 2;
      cores_per_socket = 2;
      prune = true;
    persistence = true;
    }
  in
  let budget =
    { Check.Explore.default_budget with Check.Explore.max_schedules = 1_500 }
  in
  List.iter
    (fun (label, dist_rw, log_mirror, slot_bitmap) ->
      let res =
        explore ~dist_rw ~log_mirror ~slot_bitmap ~budget ~scope Config.Durable
          Config.No_fault
      in
      check_bool (label ^ ": no violation in budget") true
        (res.Check.Explore.violation = None);
      check (label ^ ": durable, no loss at any explored crash") 0
        res.Check.Explore.stats.Check.Explore.max_completed_loss;
      check_bool (label ^ ": crash frontiers were checked") true
        (res.Check.Explore.stats.Check.Explore.recoveries > 0))
    [
      ("baseline", false, false, false);
      ("dist-rw", true, false, false);
      ("log-mirror", false, true, false);
      ("slot-bitmap", false, false, true);
      ("combined", true, true, true);
    ]

(* ---- detectability layer ----

   Durable mode with persistent announces and combiner-persisted
   responses: every explored crash frontier runs recovery *and* the
   resolve consistency check (a response claiming seqno s with s not
   applied, or a Lost/Unannounced verdict contradicting the replayed
   log, is a violation). Exhausting a scope therefore proves that no
   reachable crash point can make a client lose or duplicate an op it
   resolves on. *)

let test_detect_scope_exhausts () =
  let res = explore ~detect:true Config.Durable Config.No_fault in
  exhausted_clean "detect" res;
  check "durable+detect: no completed op ever lost" 0
    res.Check.Explore.stats.Check.Explore.max_completed_loss;
  check_bool "crash frontiers ran resolve checks" true
    (res.Check.Explore.stats.Check.Explore.recoveries > 0);
  check "single quiescent state" 1
    (List.length res.Check.Explore.terminal_states)

let test_detect_two_thread_budgeted () =
  (* two announcing clients racing the combiner and the crash frontier:
     the interleaving space is too large to exhaust in runtest, so the
     scope gets a fixed schedule budget (the CI explore smoke job runs
     the exhaustive version) and must stay free of resolve and
     exactly-once violations across every explored frontier *)
  let scope =
    {
      Check.Explore.seed = 1;
      threads = 2;
      ops_per_worker = 2;
      epsilon = 2;
      log_size = 16;
      sockets = 2;
      cores_per_socket = 2;
      prune = true;
    persistence = true;
    }
  in
  let budget =
    { Check.Explore.default_budget with Check.Explore.max_schedules = 1_500 }
  in
  let res = explore ~detect:true ~budget ~scope Config.Durable Config.No_fault in
  check_bool "no violation in budget" true
    (res.Check.Explore.violation = None);
  check "durable+detect: no loss at any explored crash" 0
    res.Check.Explore.stats.Check.Explore.max_completed_loss;
  check_bool "crash frontiers were checked" true
    (res.Check.Explore.stats.Check.Explore.recoveries > 0)

let test_detect_response_fault_found () =
  (* responses flushed to media while the log write-backs stay unfenced:
     the explorer must find a frontier where a response promises an op
     the replayed log cannot back, deterministically, and the decision
     trace must replay to the same violation *)
  let res =
    explore ~detect:true Config.Durable Config.Response_before_log_persist
  in
  match res.Check.Explore.violation with
  | None ->
    Alcotest.fail "response-before-log-persist fault not found within budget"
  | Some v ->
    check_bool "found at a crash frontier" true
      (v.Check.Explore.v_crash <> None);
    check_bool "found as resolve mismatch or durable loss" true
      (List.exists
         (function
           | Check.Durable_lin.Resolve_mismatch _
           | Check.Durable_lin.Loss_bound_exceeded _
           | Check.Durable_lin.Prefix_violation _ -> true
           | _ -> false)
         v.Check.Explore.v_violations);
    replay_reproduces ~detect:true "response-before-log-persist"
      Config.Durable Config.Response_before_log_persist scope_1w v

(* ---- incremental (lsm) checkpointing ----

   The seal/compact/crash interleaving space of the [--lsm-ckpt] backend:
   memtable seals into segments, background compaction sharing the
   persistence core, manifest publishes, and crash frontiers through all
   of it. Fanout 2 keeps compaction reachable inside the tiny scope. *)

let lsm_budget =
  (* the extra persistence-core fiber (compaction) and the seal-watermark
     stable tail roughly double the interleavings of the classic scope;
     measured exhaustion is ~66k schedules, the budget leaves headroom
     without masking a blow-up *)
  { Check.Explore.default_budget with Check.Explore.max_schedules = 100_000 }

let test_lsm_scope_exhausts () =
  let res =
    explore ~lsm_ckpt:true ~lsm_fanout:2 ~budget:lsm_budget Config.Durable
      Config.No_fault
  in
  exhausted_clean "lsm" res;
  check "durable: no completed op ever lost" 0
    res.Check.Explore.stats.Check.Explore.max_completed_loss

let test_manifest_before_seal_found () =
  (* the manifest record goes durable naming segments whose bodies are
     still dirty: the explorer must find a crash frontier that keeps the
     record and drops the segments, losing sealed effects recovery no
     longer replays (sealed_lt already skips their log entries) *)
  let res =
    explore ~lsm_ckpt:true ~lsm_fanout:2 ~budget:lsm_budget Config.Durable
      Config.Manifest_before_segment_seal
  in
  match res.Check.Explore.violation with
  | None -> Alcotest.fail "manifest-before-seal fault not found within budget"
  | Some v ->
    check_bool "found at a crash frontier" true
      (v.Check.Explore.v_crash <> None);
    check_bool "found as durable loss or state mismatch" true
      (List.exists
         (function
           | Check.Durable_lin.Loss_bound_exceeded _
           | Check.Durable_lin.Prefix_violation _
           | Check.Durable_lin.State_mismatch _ -> true
           | _ -> false)
         v.Check.Explore.v_violations);
    replay_reproduces ~lsm_ckpt:true ~lsm_fanout:2 "manifest-before-seal"
      Config.Durable Config.Manifest_before_segment_seal scope_1w v

(* ---- decision-trace encoding ---- *)

let test_rle_roundtrip () =
  let cases =
    [ []; [ 0 ]; [ 1; 1; 1 ]; [ 0; 2; 2; 1; 0; 0; 0; 2 ]; List.init 40 (fun i -> i mod 3) ]
  in
  List.iter
    (fun ds ->
      let s = Check.Explore.decisions_to_string ds in
      check_bool (Printf.sprintf "roundtrip %S" s) true
        (Check.Explore.decisions_of_string s = ds))
    cases

let () =
  Alcotest.run "explore"
    [
      ( "encoding",
        [ Alcotest.test_case "decision-trace RLE roundtrip" `Quick test_rle_roundtrip ] );
      ( "faults",
        [
          Alcotest.test_case "early-boundary found and replays" `Slow
            test_early_boundary_found;
          Alcotest.test_case "elide-ct-flush found and replays" `Slow
            test_elide_ct_flush_found;
          Alcotest.test_case "mirror-read found and replays" `Slow
            test_mirror_read_found;
          Alcotest.test_case "exploration deterministic" `Slow
            test_exploration_deterministic;
        ] );
      ( "no-fault",
        [
          Alcotest.test_case "buffered scope exhausts clean" `Slow
            test_no_fault_buffered_exhausts;
          Alcotest.test_case "flit scope exhausts clean" `Slow
            test_no_fault_flit_exhausts;
          Alcotest.test_case "numa package scope exhausts clean" `Slow
            test_no_fault_package_exhausts;
          Alcotest.test_case "loss bound tight at eps=2 beta=1" `Slow
            test_loss_bound_tight;
        ] );
      ( "reduction",
        [ Alcotest.test_case "pruning beats naive 10x" `Slow test_pruning_reduction ] );
      ( "equivalence",
        [
          Alcotest.test_case "dist-rw terminal states" `Slow test_equiv_dist_rw;
          Alcotest.test_case "log-mirror terminal states" `Slow
            test_equiv_log_mirror;
          Alcotest.test_case "slot-bitmap terminal states" `Slow
            test_equiv_slot_bitmap;
          Alcotest.test_case "full package terminal states" `Slow
            test_equiv_combined;
          Alcotest.test_case "two threads, six ops, budgeted sweep" `Slow
            test_equiv_two_thread_budgeted;
        ] );
      ( "lsm",
        [
          Alcotest.test_case "lsm scope exhausts clean" `Slow
            test_lsm_scope_exhausts;
          Alcotest.test_case "manifest-before-seal found and replays" `Slow
            test_manifest_before_seal_found;
        ] );
      ( "detect",
        [
          Alcotest.test_case "detect scope exhausts clean" `Slow
            test_detect_scope_exhausts;
          Alcotest.test_case "two announcing clients, budgeted sweep" `Slow
            test_detect_two_thread_budgeted;
          Alcotest.test_case "response-before-log-persist found and replays"
            `Slow test_detect_response_fault_found;
        ] );
    ]
