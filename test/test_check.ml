(* Tests for the linearizability checker, and linearizability tests of
   every concurrent system in the repository (including their read-only
   operations, which the log-trace checks cannot see). *)

open Nvm
open Prep

module H = Seqds.Hashmap
module Lin = Check.Linearizability.Make (H.Model)

let check_bool = Alcotest.(check bool)

let ev ~thread ~t_inv ~t_resp ~op ~args ~resp =
  { Check.History.thread; t_inv; t_resp; op; args; resp }

(* ---- checker unit tests on hand-written histories ---- *)

let test_sequential_history_linearizable () =
  let h =
    [
      ev ~thread:0 ~t_inv:0 ~t_resp:10 ~op:H.op_insert ~args:[| 1; 5 |] ~resp:1;
      ev ~thread:0 ~t_inv:20 ~t_resp:30 ~op:H.op_get ~args:[| 1 |] ~resp:5;
    ]
  in
  check_bool "linearizable" true (Lin.check h = Lin.Linearizable)

let test_stale_read_not_linearizable () =
  (* insert completes strictly before the get begins, yet the get misses
     the key: not linearizable *)
  let h =
    [
      ev ~thread:0 ~t_inv:0 ~t_resp:10 ~op:H.op_insert ~args:[| 1; 5 |] ~resp:1;
      ev ~thread:1 ~t_inv:20 ~t_resp:30 ~op:H.op_get ~args:[| 1 |] ~resp:(-1);
    ]
  in
  check_bool "not linearizable" true (Lin.check h = Lin.Not_linearizable)

let test_concurrent_read_either_value_ok () =
  (* the get overlaps the insert, so both -1 and 5 are legal *)
  List.iter
    (fun resp ->
      let h =
        [
          ev ~thread:0 ~t_inv:0 ~t_resp:100 ~op:H.op_insert ~args:[| 1; 5 |] ~resp:1;
          ev ~thread:1 ~t_inv:50 ~t_resp:60 ~op:H.op_get ~args:[| 1 |] ~resp;
        ]
      in
      check_bool
        (Printf.sprintf "resp %d accepted" resp)
        true
        (Lin.check h = Lin.Linearizable))
    [ -1; 5 ]

let test_double_insert_responses () =
  (* two concurrent inserts of the same fresh key: exactly one may return
     "new" twice? No — one must see the other: (1,0) or (0,1) in some
     order, but (1,1) only if ... both claim new: impossible. *)
  let h resp_a resp_b =
    [
      ev ~thread:0 ~t_inv:0 ~t_resp:100 ~op:H.op_insert ~args:[| 7; 1 |] ~resp:resp_a;
      ev ~thread:1 ~t_inv:10 ~t_resp:90 ~op:H.op_insert ~args:[| 7; 2 |] ~resp:resp_b;
    ]
  in
  check_bool "1/0 fine" true (Lin.check (h 1 0) = Lin.Linearizable);
  check_bool "0/1 fine" true (Lin.check (h 0 1) = Lin.Linearizable);
  check_bool "1/1 impossible" true (Lin.check (h 1 1) = Lin.Not_linearizable);
  check_bool "0/0 impossible" true (Lin.check (h 0 0) = Lin.Not_linearizable)

let test_prefill_respected () =
  let h =
    [ ev ~thread:0 ~t_inv:0 ~t_resp:10 ~op:H.op_get ~args:[| 3 |] ~resp:33 ]
  in
  check_bool "without prefill: not linearizable" true
    (Lin.check h = Lin.Not_linearizable);
  check_bool "with prefill: linearizable" true
    (Lin.check_with_prefill ~prefill:[ (H.op_insert, [| 3; 33 |]) ] h
     = Lin.Linearizable)

let test_large_history_beyond_int_mask () =
  (* regression: the checker used to cap histories at 62 ops (int-mask
     limit). 70 sequential ops must now pass, and the same history with a
     stale read appended must still be rejected. *)
  let n = 70 in
  let ops =
    List.init n (fun i ->
        ev ~thread:0 ~t_inv:(i * 10)
          ~t_resp:((i * 10) + 5)
          ~op:H.op_insert ~args:[| i; i |] ~resp:1)
  in
  check_bool "70-op history linearizable" true (Lin.check ops = Lin.Linearizable);
  let stale =
    ops
    @ [
        ev ~thread:1
          ~t_inv:(n * 10)
          ~t_resp:((n * 10) + 5)
          ~op:H.op_get ~args:[| 0 |] ~resp:(-1);
      ]
  in
  check_bool "stale read at index 70 rejected" true
    (Lin.check stale = Lin.Not_linearizable)

(* ---- recorded histories from the real systems ---- *)

let topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 }

(* Run [workers] fibers doing [ops_each] mixed ops over a tiny key space
   (to force conflicts), recording a history; returns the history. *)
let record_history ~seed ~workers ~ops_each ~make_exec =
  let sim = Sim.create ~seed topology in
  let mem = Memory.make ~sockets:2 ~bg_period:10_000 () in
  let history = Check.History.create () in
  let done_count = ref 0 in
  ignore
    (Sim.spawn sim ~socket:0 (fun () ->
         let roots = Roots.make mem in
         let exec_for, teardown = make_exec mem roots in
         for w = 0 to workers - 1 do
           let socket, core = Sim.Topology.place topology w in
           ignore
             (Sim.spawn sim ~socket ~core (fun () ->
                  let exec = exec_for () in
                  let rng = Sim.fiber_rng () in
                  for _ = 1 to ops_each do
                    let k = Sim.Rng.int rng 3 in
                    let op, args =
                      match Sim.Rng.int rng 4 with
                      | 0 -> (H.op_insert, [| k; Sim.Rng.int rng 100 |])
                      | 1 -> (H.op_remove, [| k |])
                      | _ -> (H.op_get, [| k |])
                    in
                    ignore (Check.History.wrap history ~thread:w exec ~op ~args)
                  done;
                  incr done_count))
         done;
         while !done_count < workers do
           Sim.tick 10_000
         done;
         teardown ()));
  (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  Check.History.events history

module Uc = Prep_uc.Make (Seqds.Hashmap)

let prep_exec mode mem roots =
  let cfg = Config.make ~mode ~log_size:256 ~epsilon:64 ~workers:6 () in
  let uc = Uc.create mem roots cfg in
  Uc.start_persistence uc;
  ( (fun () ->
      Uc.register_worker uc;
      fun ~op ~args -> Uc.execute uc ~op ~args),
    fun () -> Uc.stop uc )

let linearizable_under mode ~seeds =
  List.iter
    (fun seed ->
      let h =
        record_history ~seed ~workers:6 ~ops_each:8
          ~make_exec:(prep_exec mode)
      in
      check_bool
        (Printf.sprintf "history (seed %Ld) linearizable" seed)
        true
        (Lin.check h = Lin.Linearizable))
    seeds

let test_prep_v_linearizable () =
  linearizable_under Config.Volatile ~seeds:[ 1L; 2L; 3L; 4L; 5L ]

let test_prep_buffered_linearizable () =
  linearizable_under Config.Buffered ~seeds:[ 6L; 7L; 8L ]

let test_prep_durable_linearizable () =
  linearizable_under Config.Durable ~seeds:[ 9L; 10L; 11L ]

module Gl = Gl_uc.Make (Seqds.Hashmap)

let test_gl_linearizable () =
  List.iter
    (fun seed ->
      let h =
        record_history ~seed ~workers:6 ~ops_each:8 ~make_exec:(fun mem _roots ->
            let gl = Gl.create mem in
            ( (fun () ->
                Gl.register_worker gl;
                fun ~op ~args -> Gl.execute gl ~op ~args),
              ignore ))
      in
      check_bool "gl history linearizable" true (Lin.check h = Lin.Linearizable))
    [ 21L; 22L; 23L ]

module Cx = Cx_puc.Make (Seqds.Hashmap)

let test_cx_linearizable () =
  List.iter
    (fun seed ->
      let h =
        record_history ~seed ~workers:4 ~ops_each:6 ~make_exec:(fun mem roots ->
            let cx = Cx.create mem roots ~workers:4 in
            ( (fun () ->
                Cx.register_worker cx;
                fun ~op ~args -> Cx.execute cx ~op ~args),
              ignore ))
      in
      check_bool "cx history linearizable" true (Lin.check h = Lin.Linearizable))
    [ 31L; 32L; 33L ]

let test_soft_linearizable () =
  List.iter
    (fun seed ->
      let h =
        record_history ~seed ~workers:6 ~ops_each:8 ~make_exec:(fun mem _roots ->
            let s = Soft_hash.create ~nbuckets:8 mem in
            ( (fun () ->
                Soft_hash.register_worker s;
                fun ~op ~args -> Soft_hash.execute s ~op ~args),
              ignore ))
      in
      check_bool "soft history linearizable" true
        (Lin.check h = Lin.Linearizable))
    [ 41L; 42L; 43L ]

let () =
  Alcotest.run "check"
    [
      ( "checker",
        [
          Alcotest.test_case "sequential history" `Quick
            test_sequential_history_linearizable;
          Alcotest.test_case "stale read rejected" `Quick
            test_stale_read_not_linearizable;
          Alcotest.test_case "concurrent read flexible" `Quick
            test_concurrent_read_either_value_ok;
          Alcotest.test_case "double insert responses" `Quick
            test_double_insert_responses;
          Alcotest.test_case "prefill respected" `Quick test_prefill_respected;
          Alcotest.test_case "history beyond 62 ops" `Quick
            test_large_history_beyond_int_mask;
        ] );
      ( "systems",
        [
          Alcotest.test_case "PREP-V linearizable" `Quick test_prep_v_linearizable;
          Alcotest.test_case "PREP-Buffered linearizable" `Quick
            test_prep_buffered_linearizable;
          Alcotest.test_case "PREP-Durable linearizable" `Quick
            test_prep_durable_linearizable;
          Alcotest.test_case "GL linearizable" `Quick test_gl_linearizable;
          Alcotest.test_case "CX linearizable" `Quick test_cx_linearizable;
          Alcotest.test_case "SOFT linearizable" `Quick test_soft_linearizable;
        ] );
    ]
