(* Tests for the workload generators and the experiment runner, plus
   liveness tests (tiny log, cross-socket laggards) and crash-recovery of
   every lifted data structure (the functor must be DS-agnostic). *)

open Nvm
open Harness

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_list = Alcotest.(check (list int))

(* ---- workloads ---- *)

let test_map_workload_mix () =
  let w = Workload.map_workload ~read_pct:90 ~key_range:1000 ~prefill_n:10 in
  let rng = Sim.Rng.create 1L in
  let reads = ref 0 and total = 10_000 in
  for i = 1 to total do
    let op, _ = w.Workload.next rng ~phase:i in
    if op = Seqds.Hashmap.op_get then incr reads
  done;
  let pct = 100 * !reads / total in
  check_bool (Printf.sprintf "read pct about 90 (got %d)" pct) true
    (pct >= 87 && pct <= 93)

let test_map_workload_prefill_distinct () =
  let w = Workload.map_workload ~read_pct:50 ~key_range:10_000 ~prefill_n:500 in
  let keys =
    List.filter_map
      (fun (op, args) ->
        if op = Seqds.Hashmap.op_insert then Some args.(0) else None)
      w.Workload.prefill
  in
  check "prefill count" 500 (List.length keys);
  check "distinct keys" 500 (List.length (List.sort_uniq compare keys))

let test_pair_workload_alternates () =
  let w = Workload.queue_pairs ~prefill_n:4 in
  let rng = Sim.Rng.create 2L in
  let op0, _ = w.Workload.next rng ~phase:0 in
  let op1, _ = w.Workload.next rng ~phase:1 in
  check "even phase enqueues" Seqds.Queue_ds.op_enqueue op0;
  check "odd phase dequeues" Seqds.Queue_ds.op_dequeue op1

(* ---- experiment runner ---- *)

module Hm = Experiment.Systems (Seqds.Hashmap)

let small_topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 }

let test_experiment_produces_throughput () =
  let r =
    Experiment.run ~topology:small_topology ~duration_ns:500_000
      ~warmup_ns:100_000
      ~system:(Hm.prep ~log_size:4096 ~mode:Prep.Config.Buffered ~epsilon:512 ())
      ~workload:(Workload.map_workload ~read_pct:90 ~key_range:512 ~prefill_n:256)
      ~workers:4 ()
  in
  check_bool "nonzero ops" true (r.Experiment.ops > 0);
  check_bool "throughput consistent" true
    (abs_float
       (r.Experiment.throughput
       -. (float_of_int r.Experiment.ops *. 1e9 /. float_of_int r.Experiment.duration_ns))
    < 1.0)

let test_experiment_deterministic () =
  let go () =
    Experiment.run ~seed:42L ~topology:small_topology ~duration_ns:400_000
      ~warmup_ns:50_000
      ~system:(Hm.prep ~log_size:4096 ~mode:Prep.Config.Durable ~epsilon:256 ())
      ~workload:(Workload.map_workload ~read_pct:50 ~key_range:512 ~prefill_n:256)
      ~workers:6 ()
  in
  check "same ops both runs" (go ()).Experiment.ops (go ()).Experiment.ops

(* Regression for the counter-sampling bug: with several instances the
   runner used to *overwrite* the sampled counters (last writer wins)
   instead of summing them. A stub system whose every instance samples a
   known constant makes the difference unmissable: overwrite yields 7,
   summing yields instances * 7. *)
let test_multi_instance_counters_sum () =
  let built = ref 0 in
  let stub =
    {
      Experiment.sys_name = "stub";
      duration_factor = 1;
      make =
        (fun _mem _roots ~workers:_ ~prefill:_ ->
          incr built;
          {
            Experiment.register = (fun () -> ());
            exec =
              (fun ~op:_ ~args:_ ->
                Sim.tick 200;
                0);
            exec_batch = None;
            teardown = (fun () -> ());
            sample = (fun reg -> Telemetry.Registry.add_to reg "stub_samples" 7);
          });
    }
  in
  let r =
    Experiment.run ~topology:small_topology ~duration_ns:100_000
      ~warmup_ns:10_000 ~instances:3 ~system:stub
      ~workload:(Workload.map_workload ~read_pct:90 ~key_range:64 ~prefill_n:8)
      ~workers:3 ()
  in
  check "three instances built" 3 !built;
  check "samples summed across instances" 21
    (Telemetry.Registry.find_counter r.Experiment.telemetry "stub_samples")

let test_multi_instance_real_system () =
  (* two real PREP instances: the run completes and the legacy counters
     (sampled per instance) are present and positive after summing *)
  let r =
    Experiment.run ~seed:13L ~topology:small_topology ~duration_ns:400_000
      ~warmup_ns:50_000 ~instances:2
      ~system:
        (Hm.prep ~log_size:4096 ~dist_rw:true ~log_mirror:true
           ~slot_bitmap:true ~mode:Prep.Config.Durable ~epsilon:256 ())
      ~workload:(Workload.map_workload ~read_pct:90 ~key_range:512 ~prefill_n:64)
      ~workers:4 ()
  in
  check_bool "ops on both instances" true (r.Experiment.ops > 0);
  let counters = Experiment.counters r in
  check_bool "legacy counters present" true
    (List.mem_assoc "rw_read_acquires" counters);
  check_bool "read acquires accumulated" true
    (List.assoc "rw_read_acquires" counters > 0)

let test_experiment_rejects_last_core () =
  Alcotest.check_raises "last core reserved"
    (Invalid_argument "Experiment.run: last core is reserved") (fun () ->
      ignore
        (Experiment.run ~topology:small_topology
           ~system:Hm.global_lock
           ~workload:(Workload.map_workload ~read_pct:90 ~key_range:64 ~prefill_n:8)
           ~workers:8 ()))

(* ---- liveness: tiny log forces wraps and cross-socket helping ---- *)

module Uc = Prep.Prep_uc.Make (Seqds.Hashmap)
module H = Seqds.Hashmap

let run_liveness ~mode ~socket1_readonly =
  let sim = Sim.create ~seed:77L small_topology in
  let mem = Memory.make ~sockets:2 ~bg_period:10_000 () in
  let finished = ref 0 in
  let workers = 8 in
  ignore
    (Sim.spawn sim ~socket:0 (fun () ->
         let roots = Roots.make mem in
         (* log of 64 entries with beta = 4: wraps constantly *)
         let cfg =
           Prep.Config.make ~mode ~log_size:64 ~epsilon:16 ~workers ()
         in
         let uc = Uc.create ~prefill:[ (H.op_insert, [| 1; 1 |]) ] mem roots cfg in
         Uc.start_persistence uc;
         for w = 0 to workers - 1 do
           let socket, core = Sim.Topology.place small_topology w in
           Sim.spawn_here ~socket ~core (fun () ->
               Uc.register_worker uc;
               let rng = Sim.fiber_rng () in
               for _ = 1 to 150 do
                 let k = Sim.Rng.int rng 32 in
                 if socket = 1 && socket1_readonly then
                   ignore (Uc.execute uc ~op:H.op_get ~args:[| k |])
                 else
                   ignore (Uc.execute uc ~op:H.op_insert ~args:[| k; 1 |])
               done;
               incr finished)
         done;
         while !finished < workers do
           Sim.tick 50_000
         done;
         Uc.stop uc));
  (* A wedged system would hit the horizon; completion proves liveness. *)
  match Sim.run ~until:2_000_000_000 sim () with
  | `Done -> check "all workers finished" workers !finished
  | `Cut _ -> Alcotest.fail "system wedged (liveness violation)"

let test_liveness_tiny_log_all_updates () =
  run_liveness ~mode:Prep.Config.Buffered ~socket1_readonly:false

let test_liveness_readonly_socket () =
  (* socket 1 only reads: its replica advances via the reader-combiner
     path, so log reuse (logMin) must still make progress *)
  run_liveness ~mode:Prep.Config.Buffered ~socket1_readonly:true

let test_liveness_durable_tiny_log () =
  run_liveness ~mode:Prep.Config.Durable ~socket1_readonly:false

(* ---- crash-recovery across every lifted data structure ---- *)

let recovery_roundtrip (type h)
    (module Ds : Seqds.Ds_intf.S with type handle = h) ~gen_op ~seed () =
  let module U = Prep.Prep_uc.Make (Ds) in
  let sim = Sim.create ~seed small_topology in
  let mem = Memory.make ~sockets:2 ~bg_period:3000 () in
  let uc_ref = ref None in
  ignore
    (Sim.spawn sim ~socket:0 (fun () ->
         let roots = Roots.make mem in
         let cfg =
           Prep.Config.make ~mode:Prep.Config.Durable ~log_size:256 ~epsilon:64
             ~workers:6 ()
         in
         let uc = U.create mem roots cfg in
         uc_ref := Some uc;
         U.start_persistence uc;
         for w = 0 to 5 do
           let socket, core = Sim.Topology.place small_topology w in
           Sim.spawn_here ~socket ~core (fun () ->
               U.register_worker uc;
               let rng = Sim.fiber_rng () in
               let phase = ref 0 in
               while true do
                 let op, args = gen_op rng ~phase:!phase in
                 incr phase;
                 ignore (U.execute uc ~op ~args)
               done)
         done));
  (match Sim.run ~until:1_500_000 sim () with
   | `Cut _ -> ()
   | `Done -> Alcotest.fail "ended before crash");
  let uc = Option.get !uc_ref in
  Memory.crash mem;
  Context.reset ();
  let sim2 = Sim.create ~seed:(Int64.add seed 1L) small_topology in
  let checked = ref false in
  ignore
    (Sim.spawn sim2 ~socket:0 (fun () ->
         let uc', report = U.recover uc in
         check (Ds.name ^ ": no completed op lost") 0
           report.Prep.Prep_uc.lost_completed;
         (* recovered state equals the model replay of the applied ops *)
         let model = ref Ds.Model.empty in
         List.iter
           (fun i ->
             let e = Prep.Trace.get (U.trace uc) i in
             model := fst (Ds.Model.apply !model ~op:e.Prep.Trace.op ~args:e.Prep.Trace.args))
           report.Prep.Prep_uc.applied;
         check_list
           (Ds.name ^ ": recovered state replays")
           (Ds.Model.snapshot !model) (U.snapshot uc');
         checked := true));
  (match Sim.run sim2 () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  check_bool "recovery ran" true !checked

let test_recovery_rbtree () =
  recovery_roundtrip
    (module Seqds.Rbtree)
    ~gen_op:(fun rng ~phase ->
      ignore phase;
      let k = Sim.Rng.int rng 64 in
      if Sim.Rng.bool rng then (Seqds.Rbtree.op_insert, [| k; Sim.Rng.int rng 100 |])
      else (Seqds.Rbtree.op_remove, [| k |]))
    ~seed:301L ()

let test_recovery_stack () =
  recovery_roundtrip
    (module Seqds.Stack_ds)
    ~gen_op:(fun rng ~phase ->
      if phase land 1 = 0 then (Seqds.Stack_ds.op_push, [| Sim.Rng.int rng 1000 |])
      else (Seqds.Stack_ds.op_pop, [||]))
    ~seed:302L ()

let test_recovery_queue () =
  recovery_roundtrip
    (module Seqds.Queue_ds)
    ~gen_op:(fun rng ~phase ->
      if phase land 1 = 0 then (Seqds.Queue_ds.op_enqueue, [| Sim.Rng.int rng 1000 |])
      else (Seqds.Queue_ds.op_dequeue, [||]))
    ~seed:303L ()

let test_recovery_pqueue () =
  recovery_roundtrip
    (module Seqds.Pqueue)
    ~gen_op:(fun rng ~phase ->
      if phase land 1 = 0 then (Seqds.Pqueue.op_enqueue, [| Sim.Rng.int rng 1000 |])
      else (Seqds.Pqueue.op_dequeue, [||]))
    ~seed:304L ()

let test_recovery_skiplist () =
  recovery_roundtrip
    (module Seqds.Skiplist)
    ~gen_op:(fun rng ~phase ->
      ignore phase;
      let k = Sim.Rng.int rng 64 in
      if Sim.Rng.bool rng then
        (Seqds.Skiplist.op_insert, [| k; Sim.Rng.int rng 100 |])
      else (Seqds.Skiplist.op_remove, [| k |]))
    ~seed:305L ()

(* ---- flush-strategy ablation correctness ---- *)

let test_flush_heap_strategy_recovers () =
  let sim = Sim.create ~seed:401L small_topology in
  let mem = Memory.make ~sockets:2 ~bg_period:3000 () in
  let uc_ref = ref None in
  ignore
    (Sim.spawn sim ~socket:0 (fun () ->
         let roots = Roots.make mem in
         let cfg =
           Prep.Config.make ~mode:Prep.Config.Buffered ~log_size:256
             ~epsilon:32 ~flush:Prep.Config.Flush_heap ~workers:4 ()
         in
         let uc = Uc.create mem roots cfg in
         uc_ref := Some uc;
         Uc.start_persistence uc;
         for w = 0 to 3 do
           let socket, core = Sim.Topology.place small_topology w in
           Sim.spawn_here ~socket ~core (fun () ->
               Uc.register_worker uc;
               let rng = Sim.fiber_rng () in
               while true do
                 ignore
                   (Uc.execute uc ~op:H.op_insert
                      ~args:[| Sim.Rng.int rng 64; 1 |])
               done)
         done));
  (match Sim.run ~until:1_500_000 sim () with
   | `Cut _ -> ()
   | `Done -> Alcotest.fail "ended early");
  let uc = Option.get !uc_ref in
  Memory.crash mem;
  Context.reset ();
  let sim2 = Sim.create ~seed:402L small_topology in
  ignore
    (Sim.spawn sim2 ~socket:0 (fun () ->
         let _, report = Uc.recover uc in
         check_bool "prefix" true report.Prep.Prep_uc.contiguous_prefix;
         check_bool "bounded loss" true
           (report.Prep.Prep_uc.lost_completed <= 32 + 4 - 1)));
  match Sim.run sim2 () with
  | `Done -> ()
  | `Cut _ -> Alcotest.fail "cut"

let () =
  Alcotest.run "harness"
    [
      ( "workloads",
        [
          Alcotest.test_case "map mix ratio" `Quick test_map_workload_mix;
          Alcotest.test_case "prefill distinct" `Quick
            test_map_workload_prefill_distinct;
          Alcotest.test_case "pairs alternate" `Quick test_pair_workload_alternates;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "produces throughput" `Quick
            test_experiment_produces_throughput;
          Alcotest.test_case "deterministic" `Quick test_experiment_deterministic;
          Alcotest.test_case "multi-instance counters sum" `Quick
            test_multi_instance_counters_sum;
          Alcotest.test_case "multi-instance real system" `Quick
            test_multi_instance_real_system;
          Alcotest.test_case "rejects last core" `Quick
            test_experiment_rejects_last_core;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "tiny log, all updates" `Quick
            test_liveness_tiny_log_all_updates;
          Alcotest.test_case "read-only socket" `Quick test_liveness_readonly_socket;
          Alcotest.test_case "durable tiny log" `Quick test_liveness_durable_tiny_log;
        ] );
      ( "recovery-per-ds",
        [
          Alcotest.test_case "rbtree" `Quick test_recovery_rbtree;
          Alcotest.test_case "stack" `Quick test_recovery_stack;
          Alcotest.test_case "queue" `Quick test_recovery_queue;
          Alcotest.test_case "pqueue" `Quick test_recovery_pqueue;
          Alcotest.test_case "skiplist" `Quick test_recovery_skiplist;
        ] );
      ( "flush-strategy",
        [
          Alcotest.test_case "heap flush recovers" `Quick
            test_flush_heap_strategy_recovers;
        ] );
    ]
