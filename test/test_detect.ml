(* The detectability layer, bottom-up: the announce/response records'
   crash atomicity and seqno discipline (unit + property tests), the
   recovery-side resolve verdict after log replay, the invisibility of
   the layer when nothing crashes (differential fuzz), and the
   end-to-end exactly-once contract through crash-restart-continue
   sessions. The crash-point fuzz and exhaustive-exploration campaigns
   for the layer live in test_fuzz.ml and test_explore.ml. *)

open Nvm
open Prep

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

module H = Seqds.Hashmap
module Uc = Prep_uc.Make (H)
module F = Check.Fuzz.Make (H)
module S = Harness.Session.Make (H)

let gen_op rng =
  let k = Sim.Rng.int rng 64 in
  match Sim.Rng.int rng 10 with
  | 0 | 1 | 2 | 3 -> (H.op_insert, [| k; Sim.Rng.int rng 1000 |])
  | 4 | 5 -> (H.op_remove, [| k |])
  | 6 | 7 | 8 -> (H.op_get, [| k |])
  | _ -> (H.op_size, [||])

(* ---- announce/response record unit tests ---- *)

let with_table ~threads f =
  Sim.run_one (fun () ->
      let m = Memory.make ~bg_period:0 () in
      let al = Alloc.create_persistent m ~home:0 in
      let a = Announce.create al ~threads in
      f a m)

let test_announce_lifecycle () =
  with_table ~threads:2 (fun a m ->
      check "fresh table: seqno 0" 0 (Announce.peek_seqno a 0);
      check_bool "fresh announce empty" true
        (Announce.announced a ~tid:0 = Announce.Empty);
      check_bool "fresh response empty" true
        (Announce.response a ~tid:0 = Announce.Empty);
      Announce.announce a ~tid:0 ~seqno:1 ~op:7 ~args:[| 3; 4 |];
      (match Announce.announced a ~tid:0 with
       | Announce.Valid { seqno; payload; args } ->
         check "announced seqno" 1 seqno;
         check "announced op" 7 payload;
         Alcotest.(check (array int)) "announced args" [| 3; 4 |] args
       | _ -> Alcotest.fail "announce did not read back Valid");
      check_bool "other thread untouched" true
        (Announce.announced a ~tid:1 = Announce.Empty);
      Announce.write_response a ~tid:0 ~seqno:1 ~result:42;
      Announce.flush_response a ~tid:0;
      (match Announce.response a ~tid:0 with
       | Announce.Valid { seqno; payload; args } ->
         check "response seqno" 1 seqno;
         check "response result" 42 payload;
         check "responses carry no args" 0 (Array.length args)
       | _ -> Alcotest.fail "response did not read back Valid");
      check "response_seqno" 1 (Announce.response_seqno a ~tid:0);
      (* the announce was CLFLUSHed, the response explicitly flushed:
         both survive a power failure bit-exactly *)
      Memory.crash m;
      check_bool "announce survives crash" true
        (match Announce.announced a ~tid:0 with
         | Announce.Valid { seqno = 1; payload = 7; _ } -> true
         | _ -> false);
      check_bool "response survives crash" true
        (match Announce.response a ~tid:0 with
         | Announce.Valid { seqno = 1; payload = 42; _ } -> true
         | _ -> false))

let test_announce_seqno_discipline () =
  with_table ~threads:1 (fun a _m ->
      Announce.announce a ~tid:0 ~seqno:2 ~op:1 ~args:[||];
      (* equal seqno is a resubmission and must be accepted *)
      Announce.announce a ~tid:0 ~seqno:2 ~op:1 ~args:[||];
      (* gaps forward are fine (client counts privately) *)
      Announce.announce a ~tid:0 ~seqno:5 ~op:1 ~args:[||];
      Alcotest.check_raises "regression rejected"
        (Invalid_argument "Announce.announce: seqno regressed") (fun () ->
          Announce.announce a ~tid:0 ~seqno:4 ~op:1 ~args:[||]);
      Alcotest.check_raises "seqno 0 rejected"
        (Invalid_argument "Announce.announce: seqno must be positive")
        (fun () -> Announce.announce a ~tid:0 ~seqno:0 ~op:1 ~args:[||]);
      Alcotest.check_raises "too many args rejected"
        (Invalid_argument "Announce.announce: too many args") (fun () ->
          Announce.announce a ~tid:0 ~seqno:6 ~op:1 ~args:[| 1; 2; 3; 4 |]))

let test_torn_announce_never_trusted () =
  (* A background flush may capture the announce line between the seqno
     write and the commit write; if the crash lands before the final
     CLFLUSH drains, media holds a half-rewritten record. Reproduce that
     exact media state by hand (the partial writes plus a flush standing
     in for the background capture) and check the reader reports Torn
     rather than trusting the payload. *)
  with_table ~threads:1 (fun a m ->
      Announce.announce a ~tid:0 ~seqno:1 ~op:7 ~args:[| 3 |];
      let base = Announce.base a in
      (* the rewrite for seqno 2, interrupted after the seqno word: commit
         retracted, payload replaced, seqno written, commit still 0 *)
      Memory.write m (base + 6) 0 (* an_commit *);
      Memory.write m (base + 1) 9 (* an_op *);
      Memory.write m base 2 (* an_seq *);
      Memory.clflush ~site:Persist.Test m base (* the background flush capturing mid-write *);
      Memory.crash m;
      match Announce.announced a ~tid:0 with
      | Announce.Torn { seqno; commit } ->
        check "torn seqno" 2 seqno;
        check "torn commit" 0 commit
      | Announce.Valid _ -> Alcotest.fail "torn record trusted as Valid"
      | Announce.Empty -> Alcotest.fail "torn record read as Empty")

let prop_announce_roundtrip_survives_crash =
  QCheck.Test.make ~count:80
    ~name:"any announce sequence: last record survives crash bit-exactly"
    QCheck.(
      pair (int_bound 30)
        (small_list (triple (int_bound 50) (small_list (int_bound 100)) (int_bound 3))))
    (fun (gap0, steps) ->
      steps = []
      || with_table ~threads:1 (fun a m ->
             let seq = ref gap0 in
             let last = ref (0, [||]) in
             List.iter
               (fun (op, args, gap) ->
                 let args =
                   Array.of_list (List.filteri (fun i _ -> i < 3) args)
                 in
                 seq := !seq + 1 + gap;
                 Announce.announce a ~tid:0 ~seqno:!seq ~op ~args;
                 last := (op, args))
               steps;
             Memory.crash m;
             let op, args = !last in
             match Announce.announced a ~tid:0 with
             | Announce.Valid { seqno; payload; args = got } ->
               seqno = !seq && payload = op && got = args
             | Announce.Torn _ | Announce.Empty -> false))

(* ---- resolve after recovery's log replay ---- *)

let topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 }
let beta = topology.Sim.Topology.cores_per_socket

let test_resolve_completed_after_quiescent_crash () =
  (* one client, three announced inserts, clean shutdown, power failure:
     recovery must replay everything and resolve must name the frontier *)
  let mem = Memory.make ~bg_period:0 ~sockets:2 () in
  let sim = Sim.create ~seed:3L topology in
  let uc_ref = ref None in
  ignore
    (Sim.spawn sim ~socket:0 (fun () ->
         let roots = Roots.make mem in
         let cfg =
           Config.make ~mode:Config.Durable ~log_size:64 ~epsilon:4
             ~detect:true ~workers:1 ()
         in
         let uc = Uc.create mem roots cfg in
         uc_ref := Some uc;
         Uc.start_persistence uc;
         Uc.register_worker uc;
         for k = 1 to 3 do
           check "insert fresh" 1
             (Uc.execute uc ~op:H.op_insert ~args:[| k; k * 10 |])
         done;
         Uc.stop uc;
         Uc.sync uc));
  (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  let uc = Option.get !uc_ref in
  Memory.crash mem;
  Context.reset ();
  let sim2 = Sim.create ~seed:4L topology in
  let out = ref None in
  ignore
    (Sim.spawn sim2 ~socket:0 (fun () ->
         let uc', report = Uc.recover uc in
         out := Some (report, Uc.resolve uc' ~tid:0, Uc.resolve uc' ~tid:1)));
  (match Sim.run sim2 () with `Done -> () | `Cut _ -> Alcotest.fail "cut2");
  let report, r0, r1 = Option.get !out in
  check "all three ops recovered" 3 (List.length report.Prep_uc.applied);
  (match r0 with
   | Prep_uc.Completed { seqno; result } ->
     check "resolve names the last seqno" 3 seqno;
     check "resolve carries the durable result" 1 result
   | Prep_uc.Lost _ -> Alcotest.fail "quiescent op resolved Lost"
   | Prep_uc.Unannounced -> Alcotest.fail "quiescent op resolved Unannounced");
  (* threads that never announced resolve Unannounced *)
  check_bool "idle thread unannounced" true (r1 = Prep_uc.Unannounced)

let test_resolve_consistent_after_midrun_crash () =
  (* four clients cut mid-run by a power failure: after recovery every
     verdict must agree with the ghost trace — Completed s iff s is the
     thread's latest applied seqno, Lost a only if a never applied *)
  List.iter
    (fun seed ->
      let mem = Memory.make ~bg_period:2000 ~sockets:2 () in
      let sim = Sim.create ~seed ~preempt_prob:0.02 topology in
      let workers = 4 in
      let uc_ref = ref None in
      ignore
        (Sim.spawn sim ~socket:0 (fun () ->
             let roots = Roots.make mem in
             let cfg =
               Config.make ~mode:Config.Durable ~log_size:128 ~epsilon:8
                 ~detect:true ~workers ()
             in
             let uc = Uc.create mem roots cfg in
             uc_ref := Some uc;
             Uc.start_persistence uc;
             for w = 0 to workers - 1 do
               let socket, core = Sim.Topology.place topology w in
               Sim.spawn_here ~socket ~core (fun () ->
                   Uc.register_worker uc;
                   let rng = Sim.fiber_rng () in
                   while true do
                     let k = Sim.Rng.int rng 50 in
                     ignore
                       (Uc.execute uc ~op:H.op_insert
                          ~args:[| k; Sim.Rng.int rng 1000 |])
                   done)
             done));
      (match Sim.run ~until:2_000_000 sim () with
       | `Cut _ -> ()
       | `Done -> Alcotest.fail "workload finished before the crash point");
      let uc = Option.get !uc_ref in
      let trace = Uc.trace uc in
      Memory.crash mem;
      Context.reset ();
      let sim2 = Sim.create ~seed:(Int64.add seed 1L) topology in
      let out = ref None in
      ignore
        (Sim.spawn sim2 ~socket:0 (fun () ->
             let uc', report = Uc.recover uc in
             let resolutions =
               List.init workers (fun w ->
                   let socket, core = Sim.Topology.place topology w in
                   let tid = (socket * beta) + core in
                   (tid, Uc.resolve uc' ~tid))
             in
             out := Some (report, resolutions)));
      (match Sim.run sim2 () with
       | `Done -> ()
       | `Cut _ -> Alcotest.fail "cut2");
      let report, resolutions = Option.get !out in
      let applied_seqno =
        let tbl : (int, int) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun i ->
            let e = Trace.get trace i in
            if e.Trace.seqno > 0 then
              let cur =
                Option.value ~default:0 (Hashtbl.find_opt tbl e.Trace.tid)
              in
              if e.Trace.seqno > cur then
                Hashtbl.replace tbl e.Trace.tid e.Trace.seqno)
          report.Prep_uc.applied;
        fun tid -> Option.value ~default:0 (Hashtbl.find_opt tbl tid)
      in
      let vs =
        Check.Durable_lin.check_resolutions ~resolutions ~applied_seqno
      in
      if vs <> [] then
        Alcotest.failf "seed %Ld: %s" seed
          (String.concat "; "
             (List.map Check.Durable_lin.violation_to_string vs)))
    [ 51L; 52L; 53L ]

(* ---- differential: detect invisible without crashes ---- *)

let template ~seed ~ops =
  {
    Check.Fuzz.workload_seed = seed;
    threads = 4;
    epsilon = 16;
    log_size = 256;
    ops_per_worker = ops;
    bg_period = 2000;
    preempt_prob = 0.02;
    crash = Check.Fuzz.No_crash;
  }

let test_detect_invisible_without_crash () =
  (* crash-free episodes with the layer off and on must both be clean,
     and in the single-worker preemption-free calibration (where the op
     stream is a pure function of the seed) the layer must not change
     which ops are logged, completed or applied — announces and
     responses only add memory traffic, never semantics *)
  let base =
    F.run_episode ~mode:Config.Durable ~fault:Config.No_fault ~gen_op
      (template ~seed:31 ~ops:120)
  in
  let det =
    F.run_episode ~detect:true ~mode:Config.Durable ~fault:Config.No_fault
      ~gen_op (template ~seed:31 ~ops:120)
  in
  check "no-crash base clean" 0 (List.length base.Check.Fuzz.violations);
  check "no-crash detect clean" 0 (List.length det.Check.Fuzz.violations);
  let calib =
    { (template ~seed:31 ~ops:80) with
      Check.Fuzz.threads = 1;
      preempt_prob = 0.0 }
  in
  let a = F.run_episode ~mode:Config.Durable ~fault:Config.No_fault ~gen_op calib in
  let b =
    F.run_episode ~detect:true ~mode:Config.Durable ~fault:Config.No_fault
      ~gen_op calib
  in
  check "calibration: same logged" a.Check.Fuzz.logged b.Check.Fuzz.logged;
  check "calibration: same completed" a.Check.Fuzz.completed
    b.Check.Fuzz.completed;
  check "calibration: same applied" a.Check.Fuzz.applied b.Check.Fuzz.applied

(* ---- crash-restart-continue sessions: the exactly-once contract ---- *)

let session_cfg ~seed ~crashes ~detect =
  {
    Harness.Session.default_config with
    Harness.Session.seed;
    threads = 3;
    ops_per_client = 12;
    epsilon = 4;
    log_size = 256;
    crashes;
    detect;
  }

let test_session_exactly_once_with_detect () =
  let outcomes =
    S.campaign (session_cfg ~seed:3 ~crashes:2 ~detect:true) ~gen_op
      ~sessions:2
  in
  List.iteri
    (fun i (o : Harness.Session.outcome) ->
      let label f = Printf.sprintf "session %d: %s" i f in
      if o.Harness.Session.violations <> [] then
        Alcotest.failf "session %d: %s" i
          (String.concat "; "
             (List.map Check.Durable_lin.violation_to_string
                o.Harness.Session.violations));
      check (label "every scripted op applied exactly once") (3 * 12)
        o.Harness.Session.completed;
      check (label "zero lost") 0 o.Harness.Session.lost;
      check (label "zero duplicated") 0 o.Harness.Session.duplicated;
      check_bool (label "crashes were injected") true
        (o.Harness.Session.crashes_injected > 0);
      check (label "one epoch per crash plus the final run")
        (o.Harness.Session.crashes_injected + 1)
        (List.length o.Harness.Session.epochs))
    outcomes

let test_session_baseline_documents_the_gap () =
  (* without detectability the honest client skips its uncertain
     in-flight op instead of risking a duplicate: the session must stay
     duplicate- and violation-free, and any losses are precisely the gap
     the detect layer closes (the campaign seeds here do lose ops; a
     zero would mean the harness stopped exercising the window) *)
  let outcomes =
    S.campaign (session_cfg ~seed:3 ~crashes:2 ~detect:false) ~gen_op
      ~sessions:2
  in
  let lost = ref 0 in
  List.iteri
    (fun i (o : Harness.Session.outcome) ->
      if o.Harness.Session.violations <> [] then
        Alcotest.failf "session %d: %s" i
          (String.concat "; "
             (List.map Check.Durable_lin.violation_to_string
                o.Harness.Session.violations));
      check
        (Printf.sprintf "session %d: no duplicates without resubmission" i)
        0 o.Harness.Session.duplicated;
      check
        (Printf.sprintf "session %d: no resubmission without detect" i)
        0 o.Harness.Session.resubmitted;
      lost := !lost + o.Harness.Session.lost)
    outcomes;
  check_bool "the baseline loses ops the detect campaign kept" true (!lost > 0)

let test_session_deterministic () =
  let run () = S.run (session_cfg ~seed:5 ~crashes:1 ~detect:true) ~gen_op in
  let a = run () and b = run () in
  check "same submitted" a.Harness.Session.submitted b.Harness.Session.submitted;
  check "same resubmitted" a.Harness.Session.resubmitted
    b.Harness.Session.resubmitted;
  check "same history" a.Harness.Session.history_len
    b.Harness.Session.history_len;
  check "same crashes" a.Harness.Session.crashes_injected
    b.Harness.Session.crashes_injected

let () =
  Alcotest.run "detect"
    [
      ( "announce",
        [
          Alcotest.test_case "record lifecycle" `Quick test_announce_lifecycle;
          Alcotest.test_case "seqno discipline" `Quick
            test_announce_seqno_discipline;
          Alcotest.test_case "torn record never trusted" `Quick
            test_torn_announce_never_trusted;
          QCheck_alcotest.to_alcotest prop_announce_roundtrip_survives_crash;
        ] );
      ( "resolve",
        [
          Alcotest.test_case "completed after quiescent crash" `Quick
            test_resolve_completed_after_quiescent_crash;
          Alcotest.test_case "consistent after mid-run crash" `Slow
            test_resolve_consistent_after_midrun_crash;
        ] );
      ( "differential",
        [
          Alcotest.test_case "invisible without crashes" `Slow
            test_detect_invisible_without_crash;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "exactly-once with detect" `Slow
            test_session_exactly_once_with_detect;
          Alcotest.test_case "baseline documents the gap" `Slow
            test_session_baseline_documents_the_gap;
          Alcotest.test_case "session deterministic" `Slow
            test_session_deterministic;
        ] );
    ]
