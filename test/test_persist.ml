(* Tests for the per-site persistency-policy layer and the
   optimize-persist inference pass:

   - policy action semantics against the simulated cache/media model
     (elide removes durability, downgrade trades blocking for deferred,
     defer leaves the write-pending queue for the next emitted fence);
   - spec and JSON round-trips for every site;
   - the explorer oracle: known-unsafe one-site weakenings produce a
     durable-linearizability violation, the proven set exhausts clean;
   - differential fuzz of the proven policy on all three map structures;
   - the full greedy inference loop end-to-end on the smallest scope. *)

open Nvm

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let in_sim f = Sim.run_one f
let fresh () = Memory.make ~bg_period:0 ()

let policy_of_spec spec =
  match Persist.of_spec spec with
  | Ok p -> p
  | Error m -> Alcotest.failf "bad spec %S: %s" spec m

(* The canonical proven set (bench persistgain's default; CI's
   persist-smoke job re-derives it). *)
let proven =
  "log.fence_payload=defer-to-next-fence,\
   prep.checkpoint=defer-to-next-fence,prep.init=elide"

(* ---- action semantics against the memory model ---- *)

(* one NVM word, written but not yet persisted *)
let dirty_word m =
  let aid = Memory.new_arena m ~kind:Memory.Nvm ~home:0 in
  let a = Memory.addr_of ~aid ~offset:8 in
  Memory.write m a 77;
  a

let test_default_policy_emits () =
  in_sim (fun () ->
      let m = fresh () in
      check_bool "fresh memory runs the default policy" true
        (Persist.is_default (Memory.policy m));
      let a = dirty_word m in
      Memory.clflush ~site:Persist.Test m a;
      Memory.crash m;
      check "clflush under Emit is durable" 77 (Memory.peek m a);
      let st = Memory.stats m in
      check "no policy accounting" 0
        (st.Memory.policy_elided + st.Memory.policy_downgraded
       + st.Memory.policy_deferred))

let test_elide_clflush () =
  in_sim (fun () ->
      let m = fresh () in
      let p = Persist.default () in
      Persist.set p Persist.Test Persist.Elide;
      Memory.set_policy m p;
      let a = dirty_word m in
      Memory.clflush ~site:Persist.Test m a;
      let st = Memory.stats m in
      check "instruction removed" 0 st.Memory.clflush;
      check "accounted as policy-elided" 1 st.Memory.policy_elided;
      Memory.crash m;
      check "write lost: elision removed durability" 0 (Memory.peek m a))

let test_downgrade_clflush () =
  (* downgraded CLFLUSH = CLWB: not durable alone, durable after a fence *)
  in_sim (fun () ->
      let m = fresh () in
      let p = Persist.default () in
      Persist.set p Persist.Test Persist.Downgrade_to_clwb;
      Memory.set_policy m p;
      let a = dirty_word m in
      Memory.clflush ~site:Persist.Test m a;
      let st = Memory.stats m in
      check "no blocking flush" 0 st.Memory.clflush;
      check "downgrade accounted" 1 st.Memory.policy_downgraded;
      Memory.sfence ~site:Persist.Log_fence m;
      Memory.crash m;
      check "downgraded write durable after fence" 77 (Memory.peek m a));
  in_sim (fun () ->
      let m = fresh () in
      let p = Persist.default () in
      Persist.set p Persist.Test Persist.Downgrade_to_clwb;
      Memory.set_policy m p;
      let a = dirty_word m in
      Memory.clflush ~site:Persist.Test m a;
      Memory.crash m;
      check "but not durable without one" 0 (Memory.peek m a))

let test_defer_sfence () =
  (* deferred SFENCE: the write-pending queue survives to the next
     emitted fence — exactly the crash window the oracle must clear *)
  in_sim (fun () ->
      let m = fresh () in
      let p = Persist.default () in
      Persist.set p Persist.Test Persist.Defer_to_next_fence;
      Memory.set_policy m p;
      let a = dirty_word m in
      Memory.clwb ~site:Persist.Log_fence m a;
      Memory.sfence ~site:Persist.Test m;
      let st = Memory.stats m in
      check "fence skipped" 0 st.Memory.sfence;
      check "defer accounted" 1 st.Memory.policy_deferred;
      Memory.crash m;
      check "write lost in the deferral window" 0 (Memory.peek m a));
  in_sim (fun () ->
      let m = fresh () in
      let p = Persist.default () in
      Persist.set p Persist.Test Persist.Defer_to_next_fence;
      Memory.set_policy m p;
      let a = dirty_word m in
      Memory.clwb ~site:Persist.Log_fence m a;
      Memory.sfence ~site:Persist.Test m;
      Memory.sfence ~site:Persist.Log_fence m;
      Memory.crash m;
      check "next emitted fence drains the queue" 77 (Memory.peek m a))

let test_elide_clwb () =
  in_sim (fun () ->
      let m = fresh () in
      let p = Persist.default () in
      Persist.set p Persist.Test Persist.Elide;
      Memory.set_policy m p;
      let a = dirty_word m in
      Memory.clwb ~site:Persist.Test m a;
      let st = Memory.stats m in
      check "clwb removed" 0 st.Memory.clwb;
      check "accounted" 1 st.Memory.policy_elided;
      Memory.sfence ~site:Persist.Log_fence m;
      Memory.crash m;
      check "nothing queued, so the fence saves nothing" 0 (Memory.peek m a))

let test_policy_scoped_to_site () =
  (* the same primitive at a different site is untouched *)
  in_sim (fun () ->
      let m = fresh () in
      let p = Persist.default () in
      Persist.set p Persist.Test Persist.Elide;
      Memory.set_policy m p;
      let a = dirty_word m in
      Memory.clflush ~site:Persist.Roots_set m a;
      Memory.crash m;
      check "other sites still emit" 77 (Memory.peek m a))

(* ---- spec / JSON round-trips ---- *)

let test_every_site_roundtrips () =
  Array.iteri
    (fun i s ->
      check ("index of " ^ Persist.to_string s) i (Persist.index s);
      match Persist.of_string (Persist.to_string s) with
      | Some s' ->
        check_bool ("of_string (to_string) " ^ Persist.to_string s) true
          (s = s')
      | None -> Alcotest.failf "site %s does not parse back" (Persist.to_string s))
    Persist.all

let test_spec_roundtrip () =
  let p = policy_of_spec proven in
  check "three weakenings" 3 (List.length (Persist.weakenings p));
  check_bool "not default" false (Persist.is_default p);
  let p' = policy_of_spec (Persist.to_spec p) in
  check_bool "spec round-trip" true (Persist.equal p p');
  check_str "empty policy spec" "none" (Persist.to_spec (Persist.default ()));
  check_bool "\"none\" parses to the default" true
    (Persist.is_default (policy_of_spec "none"))

let test_json_roundtrip () =
  let p = policy_of_spec proven in
  match Persist.of_json (Persist.to_json p) with
  | Ok p' -> check_bool "json round-trip" true (Persist.equal p p')
  | Error m -> Alcotest.failf "round-trip failed: %s" m

let test_bad_inputs_rejected () =
  let is_err = function Error _ -> true | Ok _ -> false in
  check_bool "unknown site" true
    (is_err (Persist.of_spec "log.no_such_site=elide"));
  check_bool "unknown action" true
    (is_err (Persist.of_spec "prep.init=vaporize"));
  check_bool "missing =" true (is_err (Persist.of_spec "prep.init"));
  check_bool "not json" true (is_err (Persist.of_json "{"));
  check_bool "wrong schema" true
    (is_err (Persist.of_json "{\"schema\": \"nope/9\", \"sites\": {}}"));
  check_bool "non-string action" true
    (is_err
       (Persist.of_json
          ("{\"schema\": \"" ^ Persist.schema
         ^ "\", \"sites\": {\"prep.init\": 3}}")))

let test_load_inline () =
  match Persist.load "prep.init=elide" with
  | Ok p -> check "inline load" 1 (List.length (Persist.weakenings p))
  | Error m -> Alcotest.failf "inline load failed: %s" m

let test_split_counter () =
  (match Persist.split_counter "nvm.clwb@log.persist_range" with
   | Some ("clwb", Persist.Log_persist_range) -> ()
   | _ -> Alcotest.fail "emitted counter did not split");
  (match Persist.split_counter "nvm.sfence_deferred@prep.checkpoint" with
   | Some ("sfence_deferred", Persist.Prep_checkpoint) -> ()
   | _ -> Alcotest.fail "deferral counter did not split");
  check_bool "non-site counters pass through" true
    (Persist.split_counter "prep.combines" = None
    && Persist.split_counter "nvm.clwb@no.such.site" = None)

(* ---- explorer oracle: unsafe weakenings violate, the proven set
   exhausts.  Scope and generator match test_explore's minimal
   fault-detection scope (seed 6 draws updates only). ---- *)

module H = Seqds.Hashmap
module E = Check.Explore.Make (H)
module F = Check.Fuzz.Make (H)

let gen_op rng =
  let k = Sim.Rng.int rng 64 in
  match Sim.Rng.int rng 10 with
  | 0 | 1 | 2 | 3 -> (H.op_insert, [| k; Sim.Rng.int rng 1000 |])
  | 4 | 5 -> (H.op_remove, [| k |])
  | 6 | 7 | 8 -> (H.op_get, [| k |])
  | _ -> (H.op_size, [||])

let scope_1w =
  {
    Check.Explore.seed = 6;
    threads = 1;
    ops_per_worker = 2;
    epsilon = 1;
    log_size = 16;
    sockets = 2;
    cores_per_socket = 1;
    prune = true;
    persistence = true;
  }

let budget =
  { Check.Explore.default_budget with Check.Explore.max_schedules = 20_000 }

let explore_policy spec =
  E.explore
    ~persist_policy:(policy_of_spec spec)
    ~budget ~mode:Prep.Config.Durable ~fault:Prep.Config.No_fault ~gen_op
    ~scope:scope_1w ()

let rejected label (res : Check.Explore.result) =
  match res.Check.Explore.violation with
  | Some _ -> ()
  | None -> Alcotest.failf "%s: unsafe weakening not caught by explorer" label

let test_unsafe_ct_elide_rejected () =
  (* dropping the completedTail CLFLUSH of §5.2 un-persists completions:
     a crash loses more than the epsilon+beta-1 bound *)
  rejected "prep.completed_tail=elide"
    (explore_policy "prep.completed_tail=elide")

let test_unsafe_ct_downgrade_rejected () =
  (* even the gentler downgrade leaves completions in the WPQ *)
  rejected "prep.completed_tail=downgrade-to-clwb"
    (explore_policy "prep.completed_tail=downgrade-to-clwb")

let test_unsafe_publish_defer_rejected () =
  (* the publish fence is the combine commit point *)
  rejected "log.fence_publish=defer-to-next-fence"
    (explore_policy "log.fence_publish=defer-to-next-fence")

let test_proven_set_exhausts_clean () =
  let res = explore_policy proven in
  check_bool "no violation" true (res.Check.Explore.violation = None);
  check_bool "exhausted" true res.Check.Explore.exhausted;
  check_bool "reached terminals" true
    (res.Check.Explore.stats.Check.Explore.terminals > 0)

(* ---- differential fuzz: the proven policy on all three maps ---- *)

let template ~seed =
  {
    Check.Fuzz.workload_seed = seed;
    threads = 4;
    epsilon = 8;
    log_size = 128;
    ops_per_worker = 80;
    bg_period = 2000;
    preempt_prob = 0.02;
    crash = Check.Fuzz.No_crash;
  }

(* all three map structures share the hashmap's op codes, so one
   generator drives each functor instantiation *)
let fuzz_clean run label seed =
  let res = run (policy_of_spec proven) (template ~seed) in
  check (label ^ ": episodes run") 10 res.Check.Fuzz.episodes;
  List.iter
    (fun { Check.Fuzz.episode; violations } ->
      Alcotest.failf "%s: %s -> %d violations" label
        (Fmt.str "%a" Check.Fuzz.pp_episode episode)
        (List.length violations))
    res.Check.Fuzz.failures

module Frb = Check.Fuzz.Make (Seqds.Rbtree)
module Fsl = Check.Fuzz.Make (Seqds.Skiplist)

let test_fuzz_hashmap () =
  fuzz_clean
    (fun p t ->
      F.fuzz ~persist_policy:p ~mode:Prep.Config.Durable
        ~fault:Prep.Config.No_fault ~gen_op ~template:t ~iters:10 ())
    "hashmap" 7100

let test_fuzz_rbtree () =
  fuzz_clean
    (fun p t ->
      Frb.fuzz ~persist_policy:p ~mode:Prep.Config.Durable
        ~fault:Prep.Config.No_fault ~gen_op ~template:t ~iters:10 ())
    "rbtree" 7200

let test_fuzz_skiplist () =
  fuzz_clean
    (fun p t ->
      Fsl.fuzz ~persist_policy:p ~mode:Prep.Config.Durable
        ~fault:Prep.Config.No_fault ~gen_op ~template:t ~iters:10 ())
    "skiplist" 7300

let test_differential_crash_free () =
  (* a policy that only removes redundant persistency must not change
     crash-free results: same logged/completed/applied as the baseline *)
  let run policy =
    F.run_episode ?persist_policy:policy ~mode:Prep.Config.Durable
      ~fault:Prep.Config.No_fault ~gen_op (template ~seed:7400)
  in
  let a = run None and b = run (Some (policy_of_spec proven)) in
  check_bool "baseline clean" true (a.Check.Fuzz.violations = []);
  check_bool "policy clean" true (b.Check.Fuzz.violations = []);
  check "same logged" a.Check.Fuzz.logged b.Check.Fuzz.logged;
  check "same completed" a.Check.Fuzz.completed b.Check.Fuzz.completed;
  check "same applied" a.Check.Fuzz.applied b.Check.Fuzz.applied

(* ---- the inference loop end-to-end on the smallest scope ---- *)

module PI = Check.Persist_infer.Make (H)

let test_infer_end_to_end () =
  let report =
    PI.infer ~mode:Prep.Config.Durable ~gen_op ~scope:scope_1w ~budget
      ~template:{ (template ~seed:6) with Check.Fuzz.threads = 1;
                  ops_per_worker = 60 }
      ~fuzz_iters:6 ~ds:"hashmap" ()
  in
  let ws = Persist.weakenings report.Check.Persist_infer.r_policy in
  check_bool "at least one weakening admitted" true (ws <> []);
  check_bool "final policy explorer-exhausted" true
    report.Check.Persist_infer.r_exhausted;
  check_bool "fence count reduced" true
    (report.Check.Persist_infer.r_policy_fences
    < report.Check.Persist_infer.r_baseline_fences);
  (* the greedy log and the final policy must agree *)
  List.iter
    (fun (d : Check.Persist_infer.decision) ->
      let in_policy =
        List.mem_assoc d.Check.Persist_infer.d_site ws
      in
      match d.Check.Persist_infer.d_verdict with
      | Check.Persist_infer.Admitted ->
        check_bool
          ("admitted site in policy: "
          ^ Persist.to_string d.Check.Persist_infer.d_site)
          true in_policy
      | Check.Persist_infer.Rejected_explorer _
      | Check.Persist_infer.Rejected_fuzz _ -> (
        (* every rejection ships a copy-pasteable repro *)
        match d.Check.Persist_infer.d_repro with
        | Some cmd ->
          check_bool "repro is a CLI command" true
            (String.length cmd > 9 && String.sub cmd 0 9 = "dune exec")
        | None ->
          Alcotest.failf "rejection of %s has no repro"
            (Persist.to_string d.Check.Persist_infer.d_site))
      | Check.Persist_infer.Rejected_differential
      | Check.Persist_infer.Unproven -> ())
    report.Check.Persist_infer.r_decisions;
  (* the known-unsafe completedTail site must never be admitted *)
  check_bool "completed_tail never weakened" false
    (List.mem_assoc Persist.Prep_completed_tail ws)

let () =
  Alcotest.run "persist"
    [
      ( "semantics",
        [
          Alcotest.test_case "default policy emits" `Quick
            test_default_policy_emits;
          Alcotest.test_case "elide clflush" `Quick test_elide_clflush;
          Alcotest.test_case "downgrade clflush" `Quick test_downgrade_clflush;
          Alcotest.test_case "defer sfence" `Quick test_defer_sfence;
          Alcotest.test_case "elide clwb" `Quick test_elide_clwb;
          Alcotest.test_case "policy is per-site" `Quick
            test_policy_scoped_to_site;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "every site round-trips" `Quick
            test_every_site_roundtrips;
          Alcotest.test_case "spec round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "bad inputs rejected" `Quick
            test_bad_inputs_rejected;
          Alcotest.test_case "load inline spec" `Quick test_load_inline;
          Alcotest.test_case "split_counter" `Quick test_split_counter;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "completed-tail elide rejected" `Slow
            test_unsafe_ct_elide_rejected;
          Alcotest.test_case "completed-tail downgrade rejected" `Slow
            test_unsafe_ct_downgrade_rejected;
          Alcotest.test_case "publish-fence defer rejected" `Slow
            test_unsafe_publish_defer_rejected;
          Alcotest.test_case "proven set exhausts clean" `Slow
            test_proven_set_exhausts_clean;
        ] );
      ( "differential",
        [
          Alcotest.test_case "hashmap fuzz clean" `Slow test_fuzz_hashmap;
          Alcotest.test_case "rbtree fuzz clean" `Slow test_fuzz_rbtree;
          Alcotest.test_case "skiplist fuzz clean" `Slow test_fuzz_skiplist;
          Alcotest.test_case "crash-free runs identical" `Quick
            test_differential_crash_free;
        ] );
      ( "inference",
        [ Alcotest.test_case "greedy loop end-to-end" `Slow
            test_infer_end_to_end ] );
    ]
