(* Tests for the sequential data structures: each is checked against its
   pure model on random operation sequences, plus structure-specific
   invariants, copy, and crash-recovery attach. *)

open Nvm
open Seqds

let check = Alcotest.(check int)
let _check_bool = Alcotest.(check bool)
let check_list = Alcotest.(check (list int))

(* Run [f handle mem] with a fresh DS instance bound to a fresh memory. *)
let with_ds (type h) (module Ds : Seqds.Ds_intf.S with type handle = h)
    ?(bg_period = 0) f =
  Sim.run_one (fun () ->
      let m = Memory.make ~bg_period () in
      let al = Alloc.create_volatile m ~home:0 in
      Context.bind ~default:al ();
      let ds = Ds.create m in
      let r = f ds m in
      Context.reset ();
      r)

(* Drive the DS and its model with the same random ops; fail on divergence. *)
let agree_with_model (type h)
    (module Ds : Seqds.Ds_intf.S with type handle = h) ~gen_op ~steps seed =
  with_ds (module Ds) (fun ds _m ->
      let rng = Sim.Rng.create seed in
      let model = ref Ds.Model.empty in
      for step = 1 to steps do
        let op, args = gen_op rng in
        let got = Ds.execute ds ~op ~args in
        let model', expected = Ds.Model.apply !model ~op ~args in
        model := model';
        if got <> expected then
          Alcotest.failf "%s: step %d op %d: got %d, model says %d" Ds.name
            step op got expected
      done;
      check_list (Ds.name ^ " snapshot agrees") (Ds.Model.snapshot !model)
        (Ds.snapshot ds))

(* op generators *)
let map_op keyspace rng =
  let k = Sim.Rng.int rng keyspace in
  match Sim.Rng.int rng 10 with
  | 0 | 1 | 2 -> (Hashmap.op_insert, [| k; Sim.Rng.int rng 1000 |])
  | 3 | 4 -> (Hashmap.op_remove, [| k |])
  | 5 | 6 | 7 -> (Hashmap.op_get, [| k |])
  | 8 -> (Hashmap.op_contains, [| k |])
  | _ -> (Hashmap.op_size, [||])

let stack_op rng =
  match Sim.Rng.int rng 4 with
  | 0 | 1 -> (Stack_ds.op_push, [| Sim.Rng.int rng 1000 |])
  | 2 -> (Stack_ds.op_pop, [||])
  | _ -> (Stack_ds.op_peek, [||])

let queue_op rng =
  match Sim.Rng.int rng 4 with
  | 0 | 1 -> (Queue_ds.op_enqueue, [| Sim.Rng.int rng 1000 |])
  | 2 -> (Queue_ds.op_dequeue, [||])
  | _ -> (Queue_ds.op_peek, [||])

let pq_op rng =
  match Sim.Rng.int rng 4 with
  | 0 | 1 -> (Pqueue.op_enqueue, [| Sim.Rng.int rng 1000 |])
  | 2 -> (Pqueue.op_dequeue, [||])
  | _ -> (Pqueue.op_peek, [||])

(* ---- model agreement ---- *)

let test_hashmap_model () =
  List.iter
    (fun seed -> agree_with_model (module Hashmap) ~gen_op:(map_op 200) ~steps:3000 seed)
    [ 1L; 2L; 3L ]

let test_rbtree_model () =
  List.iter
    (fun seed -> agree_with_model (module Rbtree) ~gen_op:(map_op 200) ~steps:3000 seed)
    [ 4L; 5L; 6L ]

let test_stack_model () =
  agree_with_model (module Stack_ds) ~gen_op:stack_op ~steps:3000 7L

let test_queue_model () =
  agree_with_model (module Queue_ds) ~gen_op:queue_op ~steps:3000 8L

let test_pqueue_model () =
  agree_with_model (module Pqueue) ~gen_op:pq_op ~steps:3000 9L

let test_skiplist_model () =
  List.iter
    (fun seed ->
      agree_with_model (module Skiplist) ~gen_op:(map_op 200) ~steps:3000 seed)
    [ 10L; 11L; 12L ]

let test_skiplist_invariants () =
  with_ds (module Skiplist) (fun ds _m ->
      let rng = Sim.Rng.create 99L in
      for _ = 1 to 1500 do
        let k = Sim.Rng.int rng 300 in
        (if Sim.Rng.bool rng then
           ignore (Skiplist.execute ds ~op:Skiplist.op_insert ~args:[| k; k |])
         else ignore (Skiplist.execute ds ~op:Skiplist.op_remove ~args:[| k |]));
        Skiplist.check_invariants ds
      done)

(* ---- hashmap specifics ---- *)

let test_hashmap_resize () =
  with_ds (module Hashmap) (fun ds _m ->
      for k = 0 to 999 do
        check "insert fresh" 1 (Hashmap.execute ds ~op:Hashmap.op_insert ~args:[| k; k * 2 |])
      done;
      check "size" 1000 (Hashmap.execute ds ~op:Hashmap.op_size ~args:[||]);
      for k = 0 to 999 do
        check "get after resize" (k * 2)
          (Hashmap.execute ds ~op:Hashmap.op_get ~args:[| k |])
      done)

let test_hashmap_update_in_place () =
  with_ds (module Hashmap) (fun ds _m ->
      check "new" 1 (Hashmap.execute ds ~op:Hashmap.op_insert ~args:[| 5; 10 |]);
      check "replace" 0 (Hashmap.execute ds ~op:Hashmap.op_insert ~args:[| 5; 20 |]);
      check "value" 20 (Hashmap.execute ds ~op:Hashmap.op_get ~args:[| 5 |]);
      check "size stays 1" 1 (Hashmap.execute ds ~op:Hashmap.op_size ~args:[||]))

(* ---- rbtree specifics ---- *)

let test_rbtree_invariants_random () =
  with_ds (module Rbtree) (fun ds _m ->
      let rng = Sim.Rng.create 77L in
      for _ = 1 to 2000 do
        let k = Sim.Rng.int rng 300 in
        (if Sim.Rng.bool rng then
           ignore (Rbtree.execute ds ~op:Rbtree.op_insert ~args:[| k; k |])
         else ignore (Rbtree.execute ds ~op:Rbtree.op_remove ~args:[| k |]));
        Rbtree.check_invariants ds
      done)

let test_rbtree_sorted_snapshot () =
  with_ds (module Rbtree) (fun ds _m ->
      List.iter
        (fun k -> ignore (Rbtree.execute ds ~op:Rbtree.op_insert ~args:[| k; k |]))
        [ 5; 3; 9; 1; 7 ];
      check_list "sorted" [ 1; 1; 3; 3; 5; 5; 7; 7; 9; 9 ] (Rbtree.snapshot ds))

(* ---- copy ---- *)

let copy_preserves (type h) (module Ds : Seqds.Ds_intf.S with type handle = h)
    ~gen_op () =
  with_ds (module Ds) (fun ds _m ->
      let rng = Sim.Rng.create 123L in
      for _ = 1 to 500 do
        let op, args = gen_op rng in
        ignore (Ds.execute ds ~op ~args)
      done;
      let dup = Ds.copy ds in
      check_list (Ds.name ^ " copy equal") (Ds.snapshot ds) (Ds.snapshot dup);
      (* mutating the copy must not disturb the original *)
      let before = Ds.snapshot ds in
      let op, args = gen_op rng in
      ignore (Ds.execute dup ~op ~args);
      check_list (Ds.name ^ " original unchanged") before (Ds.snapshot ds))

let test_copy_hashmap () = copy_preserves (module Hashmap) ~gen_op:(map_op 100) ()
let test_copy_rbtree () = copy_preserves (module Rbtree) ~gen_op:(map_op 100) ()
let test_copy_stack () = copy_preserves (module Stack_ds) ~gen_op:stack_op ()
let test_copy_queue () = copy_preserves (module Queue_ds) ~gen_op:queue_op ()
let test_copy_pqueue () = copy_preserves (module Pqueue) ~gen_op:pq_op ()
let test_copy_skiplist () = copy_preserves (module Skiplist) ~gen_op:(map_op 100) ()

(* ---- persistence through the DS: flushed structure recovers ---- *)

let test_hashmap_in_nvm_recovers_when_flushed () =
  Sim.run_one (fun () ->
      let m = Memory.make ~bg_period:0 () in
      let vol = Alloc.create_volatile m ~home:0 in
      let pers = Alloc.create_persistent m ~home:0 in
      Context.bind ~default:vol ~persistent:pers ();
      let ds =
        Context.with_persistent (fun () ->
            let ds = Hashmap.create m in
            for k = 0 to 99 do
              ignore (Hashmap.execute ds ~op:Hashmap.op_insert ~args:[| k; k + 1 |])
            done;
            ds)
      in
      (* persist the whole NVM heap, as a PUC would for a checkpoint *)
      Alloc.persist_heap pers;
      let root = Hashmap.root_addr ds in
      Memory.crash m;
      let recovered = Hashmap.attach m root in
      for k = 0 to 99 do
        check "recovered get"
          (k + 1)
          (Hashmap.execute recovered ~op:Hashmap.op_get ~args:[| k |])
      done;
      Context.reset ())

let test_unflushed_nvm_structure_corrupts_on_crash () =
  Sim.run_one (fun () ->
      let m = Memory.make ~bg_period:0 () in
      let vol = Alloc.create_volatile m ~home:0 in
      let pers = Alloc.create_persistent m ~home:0 in
      Context.bind ~default:vol ~persistent:pers ();
      let ds =
        Context.with_persistent (fun () ->
            let ds = Hashmap.create m in
            for k = 0 to 99 do
              ignore (Hashmap.execute ds ~op:Hashmap.op_insert ~args:[| k; k |])
            done;
            ds)
      in
      let root = Hashmap.root_addr ds in
      Memory.crash m;
      (* nothing was flushed: the recovered root block is all zeros *)
      check "table pointer lost" 0 (Memory.peek m root);
      Context.reset ())

(* ---- model-based crash paths ----

   The crash-path contract every PUC leans on, checked per structure
   against the pure model: ops up to a checkpoint survive a crash
   bit-exactly, ops after the checkpoint are taken away *exactly* (the
   coherent view loses precisely the unpersisted suffix), and the
   recovered structure keeps agreeing with the model under further
   updates — a recovered heap must be indistinguishable from a fresh
   one. *)

let crash_path_agrees (type h)
    (module Ds : Seqds.Ds_intf.S with type handle = h) ~gen_op ~steps seed =
  Sim.run_one (fun () ->
      let m = Memory.make ~bg_period:0 () in
      let vol = Alloc.create_volatile m ~home:0 in
      let pers = Alloc.create_persistent m ~home:0 in
      Context.bind ~default:vol ~persistent:pers ();
      let rng = Sim.Rng.create seed in
      let model = ref Ds.Model.empty in
      let drive ds n phase =
        for step = 1 to n do
          let op, args = gen_op rng in
          let got = Context.with_persistent (fun () -> Ds.execute ds ~op ~args) in
          let model', expected = Ds.Model.apply !model ~op ~args in
          model := model';
          if got <> expected then
            Alcotest.failf "%s: %s step %d op %d: got %d, model says %d"
              Ds.name phase step op got expected
        done
      in
      let ds = Context.with_persistent (fun () -> Ds.create m) in
      drive ds steps "pre-checkpoint";
      (* checkpoint: persist the whole NVM heap, as a PUC does every
         epsilon ops for its stable replica *)
      Alloc.persist_heap pers;
      let checkpoint = !model in
      let root = Ds.root_addr ds in
      (* unpersisted tail: more ops, nothing flushed, then power failure *)
      drive ds (steps / 2) "post-checkpoint";
      Memory.crash m;
      Context.reset ();
      (* next incarnation: fresh allocators over the surviving media *)
      let vol' = Alloc.create_volatile m ~home:0 in
      let pers' = Alloc.create_persistent m ~home:0 in
      Context.bind ~default:vol' ~persistent:pers' ();
      let recovered = Ds.attach m root in
      check_list
        (Ds.name ^ " crash keeps checkpoint, loses unpersisted tail")
        (Ds.Model.snapshot checkpoint)
        (Ds.snapshot recovered);
      (* the recovered structure must stay model-correct under updates *)
      model := checkpoint;
      drive recovered steps "post-recovery";
      check_list
        (Ds.name ^ " post-recovery snapshot agrees")
        (Ds.Model.snapshot !model)
        (Ds.snapshot recovered);
      Context.reset ())

let test_crash_path_pqueue () =
  crash_path_agrees (module Pqueue) ~gen_op:pq_op ~steps:400 21L

let test_crash_path_rbtree () =
  crash_path_agrees (module Rbtree) ~gen_op:(map_op 100) ~steps:400 22L

let test_crash_path_skiplist () =
  crash_path_agrees (module Skiplist) ~gen_op:(map_op 100) ~steps:400 23L

(* ---- qcheck properties ---- *)

let ops_arbitrary =
  (* encoded map ops: (kind, key, value) triples *)
  QCheck.(small_list (triple (int_bound 4) (int_bound 50) (int_bound 100)))

let run_encoded (type h) (module Ds : Seqds.Ds_intf.S with type handle = h)
    ~insert ~remove ~get encoded =
  with_ds (module Ds) (fun ds _m ->
      let model = ref Ds.Model.empty in
      List.for_all
        (fun (kind, k, v) ->
          let op, args =
            if kind <= 1 then (insert, [| k; v |])
            else if kind = 2 then (remove, [| k |])
            else (get, [| k |])
          in
          let got = Ds.execute ds ~op ~args in
          let model', expected = Ds.Model.apply !model ~op ~args in
          model := model';
          got = expected)
        encoded)

let prop_hashmap_model =
  QCheck.Test.make ~count:100 ~name:"hashmap agrees with map model"
    ops_arbitrary
    (run_encoded (module Hashmap) ~insert:Hashmap.op_insert
       ~remove:Hashmap.op_remove ~get:Hashmap.op_get)

let prop_rbtree_model =
  QCheck.Test.make ~count:100 ~name:"rbtree agrees with map model"
    ops_arbitrary
    (run_encoded (module Rbtree) ~insert:Rbtree.op_insert
       ~remove:Rbtree.op_remove ~get:Rbtree.op_get)

let prop_skiplist_model =
  QCheck.Test.make ~count:100 ~name:"skiplist agrees with map model"
    ops_arbitrary
    (run_encoded (module Skiplist) ~insert:Skiplist.op_insert
       ~remove:Skiplist.op_remove ~get:Skiplist.op_get)

let prop_rbtree_invariants =
  QCheck.Test.make ~count:100 ~name:"rbtree invariants hold"
    ops_arbitrary
    (fun encoded ->
      with_ds (module Rbtree) (fun ds _m ->
          List.iter
            (fun (kind, k, v) ->
              if kind <= 2 then
                ignore (Rbtree.execute ds ~op:Rbtree.op_insert ~args:[| k; v |])
              else ignore (Rbtree.execute ds ~op:Rbtree.op_remove ~args:[| k |]);
              Rbtree.check_invariants ds)
            encoded;
          true))

let prop_pqueue_dequeues_descending =
  QCheck.Test.make ~count:100 ~name:"pqueue dequeues in descending order"
    QCheck.(small_list (int_bound 10_000))
    (fun keys ->
      with_ds (module Pqueue) (fun ds _m ->
          List.iter
            (fun k -> ignore (Pqueue.execute ds ~op:Pqueue.op_enqueue ~args:[| k |]))
            keys;
          let rec drain acc =
            let v = Pqueue.execute ds ~op:Pqueue.op_dequeue ~args:[||] in
            if v = -1 then List.rev acc else drain (v :: acc)
          in
          let drained = drain [] in
          drained = List.sort (fun a b -> compare b a) keys))

let prop_stack_lifo =
  QCheck.Test.make ~count:100 ~name:"stack is LIFO"
    QCheck.(small_list (int_bound 10_000))
    (fun keys ->
      with_ds (module Stack_ds) (fun ds _m ->
          List.iter
            (fun k -> ignore (Stack_ds.execute ds ~op:Stack_ds.op_push ~args:[| k |]))
            keys;
          let rec drain acc =
            let v = Stack_ds.execute ds ~op:Stack_ds.op_pop ~args:[||] in
            if v = -1 then List.rev acc else drain (v :: acc)
          in
          drain [] = List.rev keys))

let prop_queue_fifo =
  QCheck.Test.make ~count:100 ~name:"queue is FIFO"
    QCheck.(small_list (int_bound 10_000))
    (fun keys ->
      with_ds (module Queue_ds) (fun ds _m ->
          List.iter
            (fun k ->
              ignore (Queue_ds.execute ds ~op:Queue_ds.op_enqueue ~args:[| k |]))
            keys;
          let rec drain acc =
            let v = Queue_ds.execute ds ~op:Queue_ds.op_dequeue ~args:[||] in
            if v = -1 then List.rev acc else drain (v :: acc)
          in
          drain [] = keys))

let () =
  Alcotest.run "seqds"
    [
      ( "model-agreement",
        [
          Alcotest.test_case "hashmap" `Quick test_hashmap_model;
          Alcotest.test_case "rbtree" `Quick test_rbtree_model;
          Alcotest.test_case "stack" `Quick test_stack_model;
          Alcotest.test_case "queue" `Quick test_queue_model;
          Alcotest.test_case "pqueue" `Quick test_pqueue_model;
          Alcotest.test_case "skiplist" `Quick test_skiplist_model;
        ] );
      ( "skiplist",
        [ Alcotest.test_case "invariants random" `Quick test_skiplist_invariants ] );
      ( "hashmap",
        [
          Alcotest.test_case "resize" `Quick test_hashmap_resize;
          Alcotest.test_case "update in place" `Quick test_hashmap_update_in_place;
        ] );
      ( "rbtree",
        [
          Alcotest.test_case "invariants random" `Quick test_rbtree_invariants_random;
          Alcotest.test_case "sorted snapshot" `Quick test_rbtree_sorted_snapshot;
        ] );
      ( "copy",
        [
          Alcotest.test_case "hashmap" `Quick test_copy_hashmap;
          Alcotest.test_case "rbtree" `Quick test_copy_rbtree;
          Alcotest.test_case "stack" `Quick test_copy_stack;
          Alcotest.test_case "queue" `Quick test_copy_queue;
          Alcotest.test_case "pqueue" `Quick test_copy_pqueue;
          Alcotest.test_case "skiplist" `Quick test_copy_skiplist;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "flushed structure recovers" `Quick
            test_hashmap_in_nvm_recovers_when_flushed;
          Alcotest.test_case "unflushed structure lost" `Quick
            test_unflushed_nvm_structure_corrupts_on_crash;
          Alcotest.test_case "crash path: pqueue" `Quick test_crash_path_pqueue;
          Alcotest.test_case "crash path: rbtree" `Quick test_crash_path_rbtree;
          Alcotest.test_case "crash path: skiplist" `Quick
            test_crash_path_skiplist;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_hashmap_model;
          QCheck_alcotest.to_alcotest prop_rbtree_model;
          QCheck_alcotest.to_alcotest prop_skiplist_model;
          QCheck_alcotest.to_alcotest prop_rbtree_invariants;
          QCheck_alcotest.to_alcotest prop_pqueue_dequeues_descending;
          QCheck_alcotest.to_alcotest prop_stack_lifo;
          QCheck_alcotest.to_alcotest prop_queue_fifo;
        ] );
    ]
