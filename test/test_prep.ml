(* Tests for the PREP-UC universal construction: all three modes, the
   baselines, crash/recovery, and the paper's loss bounds. *)

open Nvm
open Prep

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_list = Alcotest.(check (list int))

module Uc = Prep_uc.Make (Seqds.Hashmap)
module H = Seqds.Hashmap

let ins k v = (H.op_insert, [| k; v |])

(* Build a simulation, a memory with roots, and run [body] as a fiber. *)
let with_world ?(seed = 1L) ?(bg_period = 0)
    ?(topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 }) body =
  let sim = Sim.create ~seed topology in
  let mem = Memory.make ~bg_period ~sockets:topology.Sim.Topology.sockets () in
  let result = ref None in
  ignore (Sim.spawn sim ~socket:0 (fun () ->
      let roots = Roots.make mem in
      result := Some (body sim mem roots)));
  (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  Option.get !result

(* Spawn [workers] fibers that each run [ops_per_worker] random hashmap
   ops through [uc], then return. Returns when all are spawned (they run
   within the same Sim.run). *)
let spawn_workers sim uc ~topology ~workers ~ops_per_worker ~keyspace
    ~update_pct ~done_count =
  for w = 0 to workers - 1 do
    let socket, core = Sim.Topology.place topology w in
    ignore
      (Sim.spawn sim ~socket ~core (fun () ->
           Uc.register_worker uc;
           let rng = Sim.fiber_rng () in
           for _ = 1 to ops_per_worker do
             let k = Sim.Rng.int rng keyspace in
             if Sim.Rng.int rng 100 < update_pct then
               if Sim.Rng.bool rng then
                 ignore (Uc.execute uc ~op:H.op_insert ~args:[| k; Sim.Rng.int rng 1000 |])
               else ignore (Uc.execute uc ~op:H.op_remove ~args:[| k |])
             else ignore (Uc.execute uc ~op:H.op_get ~args:[| k |])
           done;
           incr done_count))
  done

(* Replay the UC's prefill + trace prefix through the pure model. *)
let model_of_ops ops =
  List.fold_left
    (fun m (op, args) -> fst (H.Model.apply m ~op ~args))
    H.Model.empty ops

let trace_ops trace idxs =
  List.map
    (fun i ->
      let e = Trace.get trace i in
      (e.Trace.op, e.Trace.args))
    idxs

(* ---- volatile (PREP-V / NR-UC) ---- *)

let test_volatile_single_worker () =
  with_world (fun _sim mem roots ->
      let cfg = Config.make ~mode:Config.Volatile ~workers:1 () in
      let uc = Uc.create mem roots cfg in
      Uc.register_worker uc;
      check "insert" 1 (Uc.execute uc ~op:H.op_insert ~args:[| 1; 10 |]);
      check "insert2" 1 (Uc.execute uc ~op:H.op_insert ~args:[| 2; 20 |]);
      check "get" 10 (Uc.execute uc ~op:H.op_get ~args:[| 1 |]);
      check "replace" 0 (Uc.execute uc ~op:H.op_insert ~args:[| 1; 11 |]);
      check "get2" 11 (Uc.execute uc ~op:H.op_get ~args:[| 1 |]);
      check "remove" 1 (Uc.execute uc ~op:H.op_remove ~args:[| 2 |]);
      check "gone" (-1) (Uc.execute uc ~op:H.op_get ~args:[| 2 |]);
      check "size" 1 (Uc.execute uc ~op:H.op_size ~args:[||]))

let test_volatile_prefill () =
  with_world (fun _sim mem roots ->
      let cfg = Config.make ~mode:Config.Volatile ~workers:1 () in
      let uc = Uc.create ~prefill:[ ins 7 70; ins 8 80 ] mem roots cfg in
      Uc.register_worker uc;
      check "prefilled" 70 (Uc.execute uc ~op:H.op_get ~args:[| 7 |]);
      check "prefilled2" 80 (Uc.execute uc ~op:H.op_get ~args:[| 8 |]))

let concurrent_final_state_matches_trace mode =
  let topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 } in
  with_world ~topology (fun sim mem roots ->
      let workers = 6 in
      let cfg =
        Config.make ~mode ~log_size:256 ~epsilon:64 ~workers ()
      in
      let uc = Uc.create ~prefill:[ ins 0 1 ] mem roots cfg in
      Uc.start_persistence uc;
      let done_count = ref 0 in
      spawn_workers sim uc ~topology ~workers ~ops_per_worker:120 ~keyspace:40
        ~update_pct:60 ~done_count;
      (* wait for the workers inside this orchestration fiber *)
      while !done_count < workers do
        Sim.tick 10_000
      done;
      Uc.stop uc;
      Uc.sync uc;
      (* final state must equal the model replay of the linearization *)
      let trace = Uc.trace uc in
      let all = List.init (Trace.length trace) (fun i -> i) in
      let expected =
        model_of_ops (Uc.prefill_ops uc @ trace_ops trace all)
      in
      check_list "final state = trace replay" (H.Model.snapshot expected)
        (Uc.snapshot uc);
      (* every logged update completed (quiescent run) *)
      check "all ops completed" (Trace.length trace)
        (List.length (Trace.completed_indexes trace)))

let test_volatile_concurrent () = concurrent_final_state_matches_trace Config.Volatile
let test_buffered_concurrent () = concurrent_final_state_matches_trace Config.Buffered
let test_durable_concurrent () = concurrent_final_state_matches_trace Config.Durable

let test_log_wraps () =
  (* run enough ops through a tiny log to wrap it several times *)
  with_world (fun _sim mem roots ->
      let cfg = Config.make ~mode:Config.Volatile ~log_size:16 ~workers:1 () in
      let uc = Uc.create mem roots cfg in
      Uc.register_worker uc;
      for i = 0 to 99 do
        ignore (Uc.execute uc ~op:H.op_insert ~args:[| i mod 10; i |])
      done;
      for i = 0 to 9 do
        check "wrapped state" (90 + i) (Uc.execute uc ~op:H.op_get ~args:[| i |])
      done)

(* ---- crash & recovery ---- *)

(* Run a workload, cut the simulation at [crash_at] ns (a power failure),
   crash the memory, then recover in a fresh simulation and return
   (uc', report, old trace, old prefill, epsilon, beta). *)
let crash_and_recover ~mode ~seed ~crash_at ~workers ~epsilon ~log_size
    ?(bg_period = 2000) ?(flit = false) ?(dist_rw = false)
    ?(log_mirror = false) ?(slot_bitmap = false) () =
  let topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 } in
  let sim = Sim.create ~seed topology in
  let mem = Memory.make ~bg_period ~sockets:2 () in
  let uc_ref = ref None in
  ignore (Sim.spawn sim ~socket:0 (fun () ->
      let roots = Roots.make mem in
      let cfg =
        Config.make ~mode ~log_size ~epsilon ~workers ~flit ~dist_rw
          ~log_mirror ~slot_bitmap ()
      in
      let uc = Uc.create ~prefill:[ ins 1000 1 ] mem roots cfg in
      Uc.start_persistence uc;
      uc_ref := Some uc;
      let done_count = ref 0 in
      spawn_workers sim uc ~topology ~workers ~ops_per_worker:100_000
        ~keyspace:50 ~update_pct:100 ~done_count));
  (* the cut is the power failure: fibers are abandoned mid-operation *)
  (match Sim.run ~until:crash_at sim () with
   | `Cut _ -> ()
   | `Done -> Alcotest.fail "workload finished before the crash point");
  let uc = Option.get !uc_ref in
  Memory.crash mem;
  Context.reset ();
  (* recover in a fresh simulation (fresh threads, same memory) *)
  let sim2 = Sim.create ~seed:(Int64.add seed 1L) topology in
  let out = ref None in
  ignore (Sim.spawn sim2 ~socket:0 (fun () ->
      out := Some (Uc.recover uc)));
  (match Sim.run sim2 () with `Done -> () | `Cut _ -> Alcotest.fail "cut2");
  let uc', report = Option.get !out in
  (uc', report, Uc.trace uc, Uc.prefill_ops uc, epsilon)

let beta = 4 (* cores per socket in these tests *)

let test_buffered_crash_prefix_and_bound () =
  List.iter
    (fun seed ->
      let uc', report, trace, prefill, epsilon =
        crash_and_recover ~mode:Config.Buffered ~seed ~crash_at:3_000_000
          ~workers:6 ~epsilon:32 ~log_size:128 ()
      in
      check_bool "recovered a contiguous prefix" true
        report.Prep_uc.contiguous_prefix;
      check_bool
        (Printf.sprintf "loss %d within epsilon+beta-1 = %d"
           report.Prep_uc.lost_completed (epsilon + beta - 1))
        true
        (report.Prep_uc.lost_completed <= epsilon + beta - 1);
      (* the recovered state must be exactly the replay of the prefix *)
      let expected =
        model_of_ops (prefill @ trace_ops trace report.Prep_uc.applied)
      in
      check_list "recovered state = prefix replay" (H.Model.snapshot expected)
        (Uc.snapshot uc'))
    [ 11L; 12L; 13L; 14L ]

let test_durable_crash_no_completed_loss () =
  List.iter
    (fun seed ->
      let uc', report, trace, prefill, _ =
        crash_and_recover ~mode:Config.Durable ~seed ~crash_at:3_000_000
          ~workers:6 ~epsilon:32 ~log_size:128 ()
      in
      check "no completed op lost" 0 report.Prep_uc.lost_completed;
      check "no completed op skipped as hole" 0 report.Prep_uc.skipped_completed;
      let expected =
        model_of_ops (prefill @ trace_ops trace report.Prep_uc.applied)
      in
      check_list "recovered state = applied replay" (H.Model.snapshot expected)
        (Uc.snapshot uc'))
    [ 21L; 22L; 23L; 24L ]

(* ---- FliT flush-elimination equivalence ---- *)

(* The flush-elimination layer must be semantically invisible: with a
   single worker the op stream is a deterministic function of the seed
   (fiber RNG streams do not depend on simulated time), so a baseline and
   a flit run of the same seed must produce bit-identical linearizations,
   responses and final states. Run the comparison over all three
   sequential maps (they share op codes) to exercise different replica
   write patterns under the optimized combiner. *)
module Flit_equiv (D : Seqds.Ds_intf.S) = struct
  module U = Prep_uc.Make (D)

  let run ?(dist_rw = false) ?(log_mirror = false) ?(slot_bitmap = false)
      ~flit () =
    with_world ~seed:17L ~bg_period:2000 (fun _sim mem roots ->
        let cfg =
          Config.make ~mode:Config.Durable ~log_size:128 ~epsilon:32
            ~workers:1 ~flit ~dist_rw ~log_mirror ~slot_bitmap ()
        in
        let uc = U.create mem roots cfg in
        U.start_persistence uc;
        U.register_worker uc;
        let rng = Sim.fiber_rng () in
        let responses = ref [] in
        for _ = 1 to 400 do
          let k = Sim.Rng.int rng 40 in
          let op, args =
            (* op codes shared by hashmap / rbtree / skiplist *)
            match Sim.Rng.int rng 10 with
            | 0 | 1 | 2 | 3 -> (H.op_insert, [| k; Sim.Rng.int rng 1000 |])
            | 4 | 5 -> (H.op_remove, [| k |])
            | 6 | 7 | 8 -> (H.op_get, [| k |])
            | _ -> (H.op_size, [||])
          in
          responses := U.execute uc ~op ~args :: !responses
        done;
        U.stop uc;
        U.sync uc;
        let trace = U.trace uc in
        let lin =
          List.init (Trace.length trace) (fun i ->
              let e = Trace.get trace i in
              (e.Trace.op, Array.to_list e.Trace.args))
        in
        (List.rev !responses, lin, U.snapshot uc))

  let equal_runs (resp_b, lin_b, snap_b) (resp_o, lin_o, snap_o) =
    check_bool "identical linearization" true (lin_b = lin_o);
    check_list "identical responses" resp_b resp_o;
    check_list "identical final state" snap_b snap_o;
    check_bool "nonempty run" true (List.length lin_b > 0)

  let test () = equal_runs (run ~flit:false ()) (run ~flit:true ())
end

module Eq_hm = Flit_equiv (Seqds.Hashmap)
module Eq_rb = Flit_equiv (Seqds.Rbtree)
module Eq_sl = Flit_equiv (Seqds.Skiplist)

let test_flit_equiv_hashmap () = Eq_hm.test ()
let test_flit_equiv_rbtree () = Eq_rb.test ()
let test_flit_equiv_skiplist () = Eq_sl.test ()

(* ---- NUMA hot-path package equivalence ----

   The distributed reader lock, the DRAM log mirror and the slot bitmap
   must each be as semantically invisible as flit: same seed, same
   linearization, responses and final state whether the flag is on or
   off. The last case turns everything on at once (the shipping
   configuration). *)

let test_dist_rw_equiv_hashmap () =
  Eq_hm.equal_runs (Eq_hm.run ~flit:false ())
    (Eq_hm.run ~dist_rw:true ~flit:false ())

let test_log_mirror_equiv_hashmap () =
  Eq_hm.equal_runs (Eq_hm.run ~flit:false ())
    (Eq_hm.run ~log_mirror:true ~flit:false ())

let test_slot_bitmap_equiv_hashmap () =
  Eq_hm.equal_runs (Eq_hm.run ~flit:false ())
    (Eq_hm.run ~slot_bitmap:true ~flit:false ())

let test_numa_package_equiv_hashmap () =
  Eq_hm.equal_runs
    (Eq_hm.run ~flit:false ())
    (Eq_hm.run ~dist_rw:true ~log_mirror:true ~slot_bitmap:true ~flit:true ())

let test_numa_package_equiv_rbtree () =
  Eq_rb.equal_runs
    (Eq_rb.run ~flit:false ())
    (Eq_rb.run ~dist_rw:true ~log_mirror:true ~slot_bitmap:true ~flit:true ())

let test_durable_flit_crash_no_completed_loss () =
  (* durable guarantees are mode properties, not flush-layer properties:
     with flit on, a crash must still lose no completed operation *)
  List.iter
    (fun seed ->
      let uc', report, trace, prefill, _ =
        crash_and_recover ~mode:Config.Durable ~flit:true ~seed
          ~crash_at:3_000_000 ~workers:6 ~epsilon:32 ~log_size:128 ()
      in
      check "no completed op lost" 0 report.Prep_uc.lost_completed;
      check "no completed op skipped as hole" 0 report.Prep_uc.skipped_completed;
      let expected =
        model_of_ops (prefill @ trace_ops trace report.Prep_uc.applied)
      in
      check_list "recovered state = applied replay" (H.Model.snapshot expected)
        (Uc.snapshot uc'))
    [ 21L; 22L; 23L; 24L ]

let test_durable_numa_crash_no_completed_loss () =
  (* durable guarantees must survive the whole hot-path package: the DRAM
     mirror is never consulted by recovery, the distributed lock protects
     the same sections, the bitmap drops no slot *)
  List.iter
    (fun seed ->
      let uc', report, trace, prefill, _ =
        crash_and_recover ~mode:Config.Durable ~flit:true ~dist_rw:true
          ~log_mirror:true ~slot_bitmap:true ~seed ~crash_at:3_000_000
          ~workers:6 ~epsilon:32 ~log_size:128 ()
      in
      check "no completed op lost" 0 report.Prep_uc.lost_completed;
      check "no completed op skipped as hole" 0 report.Prep_uc.skipped_completed;
      let expected =
        model_of_ops (prefill @ trace_ops trace report.Prep_uc.applied)
      in
      check_list "recovered state = applied replay" (H.Model.snapshot expected)
        (Uc.snapshot uc'))
    [ 25L; 26L; 27L; 28L ]

(* ---- readers must help (Algorithm 3) ----

   Regression for a deadlock in [execute_readonly]'s spin path: a reader
   waiting for its replica's combiner lock must service updateReplicaNow.
   Construction: worker 0 on replica 0 wraps a tiny log while replica 1
   never advances; once logMin is pinned, worker 0 sets updateReplicaNow(1)
   and spins. Its direct-help fallback is defeated by a fiber that sits on
   replica 1's combiner lock, so the only thread able to catch replica 1 up
   is the reader spinning in [execute_readonly] — exactly the path that
   used to omit [help_if_asked] and wedged this schedule forever. *)
let test_readonly_spin_helps () =
  let topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 } in
  let sim = Sim.create ~seed:91L topology in
  let mem = Memory.make ~bg_period:0 ~sockets:2 () in
  let reader_done = ref false in
  ignore (Sim.spawn sim ~socket:0 (fun () ->
      let roots = Roots.make mem in
      let cfg =
        (* workers:5 > beta so that two replicas exist (one per socket) *)
        Config.make ~mode:Config.Volatile ~log_size:16 ~workers:5 ()
      in
      let uc = Uc.create ~prefill:[ ins 1000 10 ] mem roots cfg in
      (* blocker: camp on replica 1's combiner lock until the reader is
         through, defeating the combiner's direct-help fallback *)
      ignore (Sim.spawn sim ~socket:1 ~core:0 (fun () ->
          let r1 = uc.Uc.replicas.(1) in
          while not (Locks.Trylock.try_acquire r1.Uc.combiner) do
            Sim.spin ()
          done;
          while not !reader_done do Sim.spin () done;
          Locks.Trylock.release r1.Uc.combiner));
      (* writer: wraps the 16-entry log several times over; wedges in
         update_or_wait_on_log_min once replica 1 pins logMin *)
      ignore (Sim.spawn sim ~socket:0 ~core:0 (fun () ->
          Uc.register_worker uc;
          for i = 1 to 60 do
            ignore (Uc.execute uc ~op:H.op_insert ~args:[| i mod 8; i |])
          done));
      (* reader on replica 1, arriving after the writer is stuck *)
      ignore (Sim.spawn sim ~socket:1 ~core:1 (fun () ->
          Uc.register_worker uc;
          Sim.tick 300_000;
          check "reader sees prefill" 10
            (Uc.execute uc ~op:H.op_get ~args:[| 1000 |]);
          reader_done := true))));
  (match Sim.run ~until:50_000_000 sim () with
   | `Done -> ()
   | `Cut _ -> Alcotest.fail "system wedged: reader never helped its replica");
  check_bool "reader completed" true !reader_done

let test_recovered_uc_still_works () =
  let uc', _, _, _, _ =
    crash_and_recover ~mode:Config.Durable ~seed:31L ~crash_at:2_000_000
      ~workers:6 ~epsilon:32 ~log_size:128 ()
  in
  (* run more operations on the recovered instance *)
  let topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 } in
  let sim = Sim.create ~seed:32L topology in
  let passed = ref false in
  ignore (Sim.spawn sim ~socket:0 (fun () ->
      Uc.register_worker uc';
      Uc.start_persistence uc';
      check "insert after recovery" 1
        (Uc.execute uc' ~op:H.op_insert ~args:[| 77777; 1 |]);
      check "get after recovery" 1
        (Uc.execute uc' ~op:H.op_get ~args:[| 77777 |]);
      Uc.stop uc';
      passed := true));
  (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  check_bool "ran" true !passed

let test_double_crash () =
  (* crash, recover, run more, crash again, recover again *)
  let uc1, _, _, _, _ =
    crash_and_recover ~mode:Config.Buffered ~seed:41L ~crash_at:2_000_000
      ~workers:6 ~epsilon:32 ~log_size:128 ()
  in
  let topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 } in
  let sim = Sim.create ~seed:42L topology in
  ignore (Sim.spawn sim ~socket:0 (fun () ->
      Uc.start_persistence uc1;
      let done_count = ref 0 in
      spawn_workers sim uc1 ~topology ~workers:4 ~ops_per_worker:100_000
        ~keyspace:50 ~update_pct:100 ~done_count));
  (match Sim.run ~until:2_000_000 sim () with
   | `Cut _ -> ()
   | `Done -> Alcotest.fail "finished before second crash");
  let mem = (fun (u : Uc.t) -> u.Uc.mem) uc1 in
  Memory.crash mem;
  Context.reset ();
  let sim2 = Sim.create ~seed:43L topology in
  let out = ref None in
  ignore (Sim.spawn sim2 ~socket:0 (fun () -> out := Some (Uc.recover uc1)));
  (match Sim.run sim2 () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  let uc2, report = Option.get !out in
  check_bool "second recovery is a prefix" true report.Prep_uc.contiguous_prefix;
  check_bool "loss bound holds again" true
    (report.Prep_uc.lost_completed <= 32 + beta - 1);
  let expected =
    model_of_ops
      (Uc.prefill_ops uc1 @ trace_ops (Uc.trace uc1) report.Prep_uc.applied)
  in
  check_list "second recovery state" (H.Model.snapshot expected) (Uc.snapshot uc2)

(* Crash-time fuzzing: random crash points and seeds; the §5.1/§5.2
   guarantees must hold at every cut. *)
let test_crash_fuzz_buffered () =
  let rng = Sim.Rng.create 777L in
  for episode = 1 to 12 do
    let seed = Int64.of_int (1000 + episode) in
    let crash_at = 400_000 + Sim.Rng.int rng 4_000_000 in
    let epsilon = 8 + Sim.Rng.int rng 56 in
    let uc', report, trace, prefill, _ =
      crash_and_recover ~mode:Config.Buffered ~seed ~crash_at ~workers:6
        ~epsilon ~log_size:256 ()
    in
    check_bool
      (Printf.sprintf "ep%d: prefix (crash %d, eps %d)" episode crash_at epsilon)
      true report.Prep_uc.contiguous_prefix;
    check_bool
      (Printf.sprintf "ep%d: loss %d <= %d" episode
         report.Prep_uc.lost_completed (epsilon + beta - 1))
      true
      (report.Prep_uc.lost_completed <= epsilon + beta - 1);
    let expected =
      model_of_ops (prefill @ trace_ops trace report.Prep_uc.applied)
    in
    check_list
      (Printf.sprintf "ep%d: state replay" episode)
      (H.Model.snapshot expected) (Uc.snapshot uc')
  done

let test_crash_fuzz_durable () =
  let rng = Sim.Rng.create 888L in
  for episode = 1 to 12 do
    let seed = Int64.of_int (2000 + episode) in
    let crash_at = 400_000 + Sim.Rng.int rng 4_000_000 in
    let epsilon = 8 + Sim.Rng.int rng 56 in
    let uc', report, trace, prefill, _ =
      crash_and_recover ~mode:Config.Durable ~seed ~crash_at ~workers:6
        ~epsilon ~log_size:256 ()
    in
    check (Printf.sprintf "ep%d: zero loss (crash %d)" episode crash_at) 0
      report.Prep_uc.lost_completed;
    check (Printf.sprintf "ep%d: zero skipped" episode) 0
      report.Prep_uc.skipped_completed;
    let expected =
      model_of_ops (prefill @ trace_ops trace report.Prep_uc.applied)
    in
    check_list
      (Printf.sprintf "ep%d: state replay" episode)
      (H.Model.snapshot expected) (Uc.snapshot uc')
  done

(* ---- epsilon validation ---- *)

let test_epsilon_validation () =
  with_world (fun _sim mem roots ->
      let cfg = Config.make ~mode:Config.Buffered ~log_size:64 ~epsilon:64 ~workers:2 () in
      (try
         ignore (Uc.create mem roots cfg);
         Alcotest.fail "expected Invalid_argument"
       with Invalid_argument _ -> ());
      ())

(* ---- GL baseline ---- *)

module Gl = Gl_uc.Make (Seqds.Hashmap)

let test_gl_uc () =
  let topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 } in
  with_world ~topology (fun sim mem _roots ->
      let gl = Gl.create ~prefill:[ ins 1 10 ] mem in
      let done_count = ref 0 in
      let total = Atomic.make 0 in
      for w = 0 to 3 do
        let socket, core = Sim.Topology.place topology w in
        ignore (Sim.spawn sim ~socket ~core (fun () ->
            Gl.register_worker gl;
            for i = 0 to 49 do
              ignore (Gl.execute gl ~op:H.op_insert ~args:[| (w * 100) + i; i |]);
              Atomic.incr total
            done;
            incr done_count))
      done;
      while !done_count < 4 do Sim.tick 10_000 done;
      check "gl size" 200 (Gl.execute gl ~op:H.op_size ~args:[||]);
      check "all ops ran" 200 (Atomic.get total))

(* ---- CX-PUC ---- *)

module Cx = Cx_puc.Make (Seqds.Hashmap)

let test_cx_sequential () =
  with_world (fun _sim mem roots ->
      let cx = Cx.create ~prefill:[ ins 5 50 ] mem roots ~workers:2 in
      Cx.register_worker cx;
      check "prefilled get" 50 (Cx.execute cx ~op:H.op_get ~args:[| 5 |]);
      check "insert" 1 (Cx.execute cx ~op:H.op_insert ~args:[| 6; 60 |]);
      check "get" 60 (Cx.execute cx ~op:H.op_get ~args:[| 6 |]);
      check "remove" 1 (Cx.execute cx ~op:H.op_remove ~args:[| 5 |]);
      check "gone" (-1) (Cx.execute cx ~op:H.op_get ~args:[| 5 |]))

let test_cx_concurrent () =
  let topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 } in
  with_world ~topology (fun sim mem roots ->
      let workers = 4 in
      let cx = Cx.create mem roots ~workers in
      let done_count = ref 0 in
      for w = 0 to workers - 1 do
        let socket, core = Sim.Topology.place topology w in
        ignore (Sim.spawn sim ~socket ~core (fun () ->
            Cx.register_worker cx;
            for i = 0 to 29 do
              ignore (Cx.execute cx ~op:H.op_insert ~args:[| (w * 1000) + i; i |])
            done;
            incr done_count))
      done;
      while !done_count < workers do Sim.tick 10_000 done;
      (* all 120 distinct inserts must be present in the published replica *)
      Cx.register_worker cx;
      let missing = ref 0 in
      for w = 0 to workers - 1 do
        for i = 0 to 29 do
          if Cx.execute cx ~op:H.op_get ~args:[| (w * 1000) + i |] <> i then
            incr missing
        done
      done;
      check "no inserts lost" 0 !missing)

let test_cx_crash_recovery () =
  let topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 } in
  let sim = Sim.create ~seed:55L topology in
  let mem = Memory.make ~bg_period:2000 ~sockets:2 () in
  let cx_ref = ref None in
  ignore (Sim.spawn sim ~socket:0 (fun () ->
      let roots = Roots.make mem in
      let cx = Cx.create mem roots ~workers:4 in
      cx_ref := Some cx;
      for w = 0 to 3 do
        let socket, core = Sim.Topology.place topology w in
        ignore (Sim.spawn sim ~socket ~core (fun () ->
            Cx.register_worker cx;
            for i = 0 to 10_000 do
              ignore (Cx.execute cx ~op:H.op_insert ~args:[| (w * 100_000) + i; i |])
            done))
      done));
  (match Sim.run ~until:5_000_000 sim () with
   | `Cut _ -> ()
   | `Done -> Alcotest.fail "cx finished before crash");
  let cx = Option.get !cx_ref in
  (* read the queue's coherent contents before the crash destroys it *)
  let qtail = Memory.peek mem cx.Cx.qtail_addr in
  let queue_ops =
    List.init qtail (fun i ->
        let a = Log.entry_addr cx.Cx.queue i in
        let argc = Memory.peek mem (a + 2) in
        ( Memory.peek mem (a + 1),
          Array.init argc (fun j -> Memory.peek mem (a + 3 + j)) ))
  in
  Memory.crash mem;
  Context.reset ();
  let sim2 = Sim.create ~seed:56L topology in
  let out = ref None in
  ignore (Sim.spawn sim2 ~socket:0 (fun () ->
      Context.bind ~default:(Alloc.create_volatile mem ~home:0) ();
      out := Some (Cx.recover cx)));
  (match Sim.run sim2 () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  let recovered, applied = Option.get !out in
  (* recovered state must equal the replay of the first [applied] queue ops *)
  let expected =
    List.fold_left
      (fun m (op, args) -> fst (H.Model.apply m ~op ~args))
      H.Model.empty
      (List.filteri (fun i _ -> i < applied) queue_ops)
  in
  check_list "cx recovered = queue prefix replay" (H.Model.snapshot expected)
    (H.snapshot recovered)

(* ---- SOFT hashtable ---- *)

let test_soft_basic () =
  with_world (fun _sim mem _roots ->
      let s = Soft_hash.create ~nbuckets:64 mem in
      check "insert" 1 (Soft_hash.execute s ~op:Soft_hash.op_insert ~args:[| 1; 10 |]);
      check "get" 10 (Soft_hash.execute s ~op:Soft_hash.op_get ~args:[| 1 |]);
      check "replace" 0 (Soft_hash.execute s ~op:Soft_hash.op_insert ~args:[| 1; 20 |]);
      check "get2" 20 (Soft_hash.execute s ~op:Soft_hash.op_get ~args:[| 1 |]);
      check "remove" 1 (Soft_hash.execute s ~op:Soft_hash.op_remove ~args:[| 1 |]);
      check "gone" (-1) (Soft_hash.execute s ~op:Soft_hash.op_get ~args:[| 1 |]);
      check "size" 0 (Soft_hash.execute s ~op:Soft_hash.op_size ~args:[||]))

let test_soft_durability () =
  (* every completed insert must survive a crash *)
  let topology = Sim.Topology.default in
  let sim = Sim.create ~seed:66L topology in
  let mem = Memory.make ~bg_period:2000 ~sockets:2 () in
  let s_ref = ref None in
  let completed = Hashtbl.create 256 in
  ignore (Sim.spawn sim ~socket:0 (fun () ->
      let s = Soft_hash.create ~nbuckets:64 mem in
      s_ref := Some s;
      for w = 0 to 3 do
        let socket, core = Sim.Topology.place topology w in
        ignore (Sim.spawn sim ~socket ~core (fun () ->
            Soft_hash.register_worker s;
            for i = 0 to 100_000 do
              let k = (w * 1_000_000) + i in
              ignore (Soft_hash.execute s ~op:Soft_hash.op_insert ~args:[| k; k + 1 |]);
              Hashtbl.replace completed k (k + 1)
            done))
      done));
  (match Sim.run ~until:3_000_000 sim () with
   | `Cut _ -> ()
   | `Done -> Alcotest.fail "soft finished before crash");
  let s = Option.get !s_ref in
  Memory.crash mem;
  Context.reset ();
  let sim2 = Sim.create ~seed:67L topology in
  let out = ref None in
  ignore (Sim.spawn sim2 ~socket:0 (fun () ->
      out := Some (Soft_hash.recover s ~nbuckets:64)));
  (match Sim.run sim2 () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  let recovered = Option.get !out in
  check_bool "some inserts completed before crash" true (Hashtbl.length completed > 0);
  let lost = ref 0 in
  Hashtbl.iter
    (fun k v ->
      let rec pairs = function
        | a :: b :: rest -> if a = k && b = v then true else pairs rest
        | _ -> false
      in
      if not (pairs (Soft_hash.snapshot recovered)) then incr lost)
    completed;
  check "no completed insert lost" 0 !lost

(* ---- trace ---- *)

let test_trace_sentinels_independent () =
  (* regression: [create]/grow used [Array.make] with one shared sentinel
     record, so marking any never-logged index completed marked them all —
     silently weakening every completed-op durability check *)
  let tr = Trace.create () in
  Trace.logged tr 0 ~op:1 ~args:[| 42 |];
  Trace.completed tr 5;
  check_bool "other unlogged slot not completed" false (Trace.get tr 7).Trace.completed;
  check_bool "logged slot not completed" false (Trace.get tr 0).Trace.completed;
  (* same property across the grow path (capacity doubles to 2048) *)
  Trace.logged tr 2000 ~op:2 ~args:[||];
  Trace.completed tr 2020;
  check_bool "post-grow slots independent" false (Trace.get tr 2021).Trace.completed;
  check_bool "marked slot is completed" true (Trace.get tr 2020).Trace.completed

let () =
  Alcotest.run "prep"
    [
      ( "volatile",
        [
          Alcotest.test_case "single worker" `Quick test_volatile_single_worker;
          Alcotest.test_case "prefill" `Quick test_volatile_prefill;
          Alcotest.test_case "concurrent matches trace" `Quick test_volatile_concurrent;
          Alcotest.test_case "log wraps" `Quick test_log_wraps;
        ] );
      ( "persistent-modes",
        [
          Alcotest.test_case "buffered concurrent" `Quick test_buffered_concurrent;
          Alcotest.test_case "durable concurrent" `Quick test_durable_concurrent;
          Alcotest.test_case "epsilon validation" `Quick test_epsilon_validation;
        ] );
      ( "crash-recovery",
        [
          Alcotest.test_case "buffered: prefix + loss bound" `Quick
            test_buffered_crash_prefix_and_bound;
          Alcotest.test_case "durable: no completed loss" `Quick
            test_durable_crash_no_completed_loss;
          Alcotest.test_case "recovered uc still works" `Quick
            test_recovered_uc_still_works;
          Alcotest.test_case "double crash" `Quick test_double_crash;
          Alcotest.test_case "buffered crash fuzz" `Slow test_crash_fuzz_buffered;
          Alcotest.test_case "durable crash fuzz" `Slow test_crash_fuzz_durable;
        ] );
      ( "flit",
        [
          Alcotest.test_case "hashmap equivalence" `Quick
            test_flit_equiv_hashmap;
          Alcotest.test_case "rbtree equivalence" `Quick test_flit_equiv_rbtree;
          Alcotest.test_case "skiplist equivalence" `Quick
            test_flit_equiv_skiplist;
          Alcotest.test_case "durable crash: no completed loss" `Quick
            test_durable_flit_crash_no_completed_loss;
        ] );
      ( "numa-package",
        [
          Alcotest.test_case "dist-rw equivalence" `Quick
            test_dist_rw_equiv_hashmap;
          Alcotest.test_case "log-mirror equivalence" `Quick
            test_log_mirror_equiv_hashmap;
          Alcotest.test_case "slot-bitmap equivalence" `Quick
            test_slot_bitmap_equiv_hashmap;
          Alcotest.test_case "all-flags equivalence (hashmap)" `Quick
            test_numa_package_equiv_hashmap;
          Alcotest.test_case "all-flags equivalence (rbtree)" `Quick
            test_numa_package_equiv_rbtree;
          Alcotest.test_case "durable crash with package: no completed loss"
            `Quick test_durable_numa_crash_no_completed_loss;
          Alcotest.test_case "readonly spin path helps" `Quick
            test_readonly_spin_helps;
        ] );
      ( "trace",
        [
          Alcotest.test_case "sentinels independent" `Quick
            test_trace_sentinels_independent;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "global lock" `Quick test_gl_uc;
          Alcotest.test_case "cx sequential" `Quick test_cx_sequential;
          Alcotest.test_case "cx concurrent" `Quick test_cx_concurrent;
          Alcotest.test_case "cx crash recovery" `Quick test_cx_crash_recovery;
          Alcotest.test_case "soft basic" `Quick test_soft_basic;
          Alcotest.test_case "soft durability" `Quick test_soft_durability;
        ] );
    ]
