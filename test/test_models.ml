(* Long-horizon property tests: every lib/seqds implementation is driven
   against its pure model for tens of thousands of operations under
   adversarial workload shapes — tiny keyspaces (collision-heavy),
   monotone key streams (worst case for tree balance), churn (interleaved
   fill/drain), and duplicate-heavy input. The fuzzing harness uses these
   models as its durability oracle, so their agreement with the real
   implementations is load-bearing for the whole checker stack.

   The three map implementations share op codes, so they are also run in
   lockstep on identical sequences and must agree pairwise at every step. *)

open Nvm
open Seqds

let check_list = Alcotest.(check (list int))

let with_ds (type h) (module Ds : Seqds.Ds_intf.S with type handle = h) f =
  Sim.run_one (fun () ->
      let m = Memory.make ~bg_period:0 () in
      let al = Alloc.create_volatile m ~home:0 in
      Context.bind ~default:al ();
      let ds = Ds.create m in
      let r = f ds in
      Context.reset ();
      r)

(* Drive the DS and its model in lockstep; also compare full snapshots
   every [snapshot_every] steps, catching divergence that individual
   return values hide (e.g. a phantom key that no later op touches). *)
let agree (type h) (module Ds : Seqds.Ds_intf.S with type handle = h)
    ~label ~gen_op ~steps ?(snapshot_every = 2500) seed =
  with_ds (module Ds) (fun ds ->
      let rng = Sim.Rng.create seed in
      let model = ref Ds.Model.empty in
      for step = 1 to steps do
        let op, args = gen_op rng step in
        let got = Ds.execute ds ~op ~args in
        let model', expected = Ds.Model.apply !model ~op ~args in
        model := model';
        if got <> expected then
          Alcotest.failf "%s/%s: step %d op %d: got %d, model says %d" Ds.name
            label step op got expected;
        if step mod snapshot_every = 0 then
          check_list
            (Printf.sprintf "%s/%s snapshot @%d" Ds.name label step)
            (Ds.Model.snapshot !model) (Ds.snapshot ds)
      done;
      check_list
        (Printf.sprintf "%s/%s final snapshot" Ds.name label)
        (Ds.Model.snapshot !model) (Ds.snapshot ds))

(* ---- workload shapes ---- *)

(* collision-heavy: 8 keys, mostly updates *)
let tiny_keyspace rng _step =
  let k = Sim.Rng.int rng 8 in
  match Sim.Rng.int rng 8 with
  | 0 | 1 | 2 -> (Hashmap.op_insert, [| k; Sim.Rng.int rng 100 |])
  | 3 | 4 -> (Hashmap.op_remove, [| k |])
  | 5 | 6 -> (Hashmap.op_get, [| k |])
  | _ -> (Hashmap.op_size, [||])

(* monotone keys: ascending for the first half, descending after — the
   classic unbalancing input for naive BSTs and skiplists *)
let monotone half rng step =
  let k = if step <= half then step else (2 * half) - step in
  match Sim.Rng.int rng 6 with
  | 0 | 1 | 2 | 3 -> (Hashmap.op_insert, [| k; step |])
  | 4 -> (Hashmap.op_remove, [| k |])
  | _ -> (Hashmap.op_contains, [| k |])

(* churn: phases of pure insertion then pure removal over one keyspace *)
let churn rng step =
  let k = Sim.Rng.int rng 512 in
  if step / 512 mod 2 = 0 then (Hashmap.op_insert, [| k; step |])
  else (Hashmap.op_remove, [| k |])

(* wide uniform mix *)
let uniform rng _step =
  let k = Sim.Rng.int rng 4096 in
  match Sim.Rng.int rng 10 with
  | 0 | 1 | 2 -> (Hashmap.op_insert, [| k; Sim.Rng.int rng 10_000 |])
  | 3 | 4 -> (Hashmap.op_remove, [| k |])
  | 5 | 6 | 7 -> (Hashmap.op_get, [| k |])
  | 8 -> (Hashmap.op_contains, [| k |])
  | _ -> (Hashmap.op_size, [||])

(* duplicate-heavy values for the ordered containers *)
let pq_dups rng _step =
  match Sim.Rng.int rng 8 with
  | 0 | 1 | 2 -> (Pqueue.op_enqueue, [| Sim.Rng.int rng 16 |])
  | 3 | 4 -> (Pqueue.op_dequeue, [||])
  | 5 | 6 -> (Pqueue.op_peek, [||])
  | _ -> (Pqueue.op_size, [||])

(* long runs of pushes then long runs of pops *)
let stack_bursty rng step =
  if step / 64 mod 2 = 0 then
    (Stack_ds.op_push, [| Sim.Rng.int rng 1000 |])
  else if Sim.Rng.int rng 4 = 0 then (Stack_ds.op_peek, [||])
  else (Stack_ds.op_pop, [||])

let queue_bursty rng step =
  if step / 64 mod 2 = 0 then
    (Queue_ds.op_enqueue, [| Sim.Rng.int rng 1000 |])
  else if Sim.Rng.int rng 4 = 0 then (Queue_ds.op_peek, [||])
  else (Queue_ds.op_dequeue, [||])

(* ---- per-implementation long runs ---- *)

let map_impls : (module Seqds.Ds_intf.S) list =
  [ (module Hashmap); (module Rbtree); (module Skiplist) ]

let test_maps_tiny_keyspace () =
  List.iter
    (fun (module Ds : Seqds.Ds_intf.S) ->
      agree (module Ds) ~label:"tiny" ~gen_op:tiny_keyspace ~steps:10_000 101L)
    map_impls

let test_maps_monotone () =
  List.iter
    (fun (module Ds : Seqds.Ds_intf.S) ->
      agree (module Ds) ~label:"monotone" ~gen_op:(monotone 5_000) ~steps:10_000
        102L)
    map_impls

let test_maps_churn () =
  List.iter
    (fun (module Ds : Seqds.Ds_intf.S) ->
      agree (module Ds) ~label:"churn" ~gen_op:churn ~steps:10_000 103L)
    map_impls

let test_maps_uniform () =
  List.iter
    (fun (module Ds : Seqds.Ds_intf.S) ->
      agree (module Ds) ~label:"uniform" ~gen_op:uniform ~steps:10_000 104L)
    map_impls

let test_pqueue_duplicates () =
  agree (module Pqueue) ~label:"dups" ~gen_op:pq_dups ~steps:10_000 105L

let test_stack_bursty () =
  agree (module Stack_ds) ~label:"bursty" ~gen_op:stack_bursty ~steps:10_000 106L

let test_queue_bursty () =
  agree (module Queue_ds) ~label:"bursty" ~gen_op:queue_bursty ~steps:10_000 107L

(* ---- cross-implementation agreement ----

   Hashmap, Rbtree and Skiplist implement the same map contract with the
   same op codes; on identical sequences every return value must match
   pairwise. This catches a bug in any one of the three even if its own
   model shares the mistake. Snapshots are compared sorted: the hashmap
   snapshot is not ordered, the tree/skiplist ones are. *)

let test_cross_map_agreement () =
  Sim.run_one (fun () ->
      let m = Memory.make ~bg_period:0 () in
      let al = Alloc.create_volatile m ~home:0 in
      Context.bind ~default:al ();
      let hm = Hashmap.create m in
      let rb = Rbtree.create m in
      let sl = Skiplist.create m in
      let rng = Sim.Rng.create 108L in
      for step = 1 to 10_000 do
        let op, args = uniform rng step in
        let a = Hashmap.execute hm ~op ~args in
        let b = Rbtree.execute rb ~op ~args in
        let c = Skiplist.execute sl ~op ~args in
        if a <> b || b <> c then
          Alcotest.failf
            "cross-map: step %d op %d: hashmap=%d rbtree=%d skiplist=%d" step op
            a b c
      done;
      let sorted snap = List.sort compare snap in
      check_list "hashmap vs rbtree snapshots"
        (sorted (Hashmap.snapshot hm))
        (sorted (Rbtree.snapshot rb));
      check_list "rbtree vs skiplist snapshots"
        (sorted (Rbtree.snapshot rb))
        (sorted (Skiplist.snapshot sl));
      Context.reset ())

(* pqueue must agree with sorting the surviving multiset even when many
   priorities collide *)
let test_pqueue_vs_sorted_drain () =
  with_ds (module Pqueue) (fun ds ->
      let rng = Sim.Rng.create 109L in
      let live = ref [] in
      for _ = 1 to 5_000 do
        if Sim.Rng.int rng 3 = 0 then begin
          let got = Pqueue.execute ds ~op:Pqueue.op_dequeue ~args:[||] in
          match List.sort (fun a b -> compare b a) !live with
          | [] -> Alcotest.(check int) "dequeue empty" (-1) got
          | best :: _ ->
            Alcotest.(check int) "dequeue max" best got;
            (* remove one instance of [best] *)
            let rec drop = function
              | [] -> []
              | x :: tl -> if x = best then tl else x :: drop tl
            in
            live := drop !live
        end
        else begin
          let v = Sim.Rng.int rng 32 in
          ignore (Pqueue.execute ds ~op:Pqueue.op_enqueue ~args:[| v |]);
          live := v :: !live
        end
      done)

let () =
  Alcotest.run "models"
    [
      ( "long-runs",
        [
          Alcotest.test_case "maps: tiny keyspace" `Quick test_maps_tiny_keyspace;
          Alcotest.test_case "maps: monotone keys" `Quick test_maps_monotone;
          Alcotest.test_case "maps: churn" `Quick test_maps_churn;
          Alcotest.test_case "maps: uniform" `Quick test_maps_uniform;
          Alcotest.test_case "pqueue: duplicate priorities" `Quick
            test_pqueue_duplicates;
          Alcotest.test_case "stack: bursty" `Quick test_stack_bursty;
          Alcotest.test_case "queue: bursty" `Quick test_queue_bursty;
        ] );
      ( "cross-impl",
        [
          Alcotest.test_case "three maps agree pairwise" `Quick
            test_cross_map_agreement;
          Alcotest.test_case "pqueue vs sorted drain" `Quick
            test_pqueue_vs_sorted_drain;
        ] );
    ]
