(* Model-based tests of the incremental-checkpoint storage engine: the
   sealed-segment format, the per-segment Bloom/occupancy filters, the
   fenced two-slot manifest, and the seal/compact/crash lifecycle driven
   as random scripts against a pure reference map. The full UC-level
   crash battery lives in test_fuzz.ml/test_explore.ml; this file pins
   the storage layer in isolation, including the two crash states the
   fuzzer cannot construct on demand — a torn manifest record and a
   partially-flushed segment body under a durable header. *)

open Nvm

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let in_sim f = Sim.run_one f

(* Fresh memory + a persistent allocator, bound for the simulated cost
   model. Background flushes off: every durability fact in these tests
   must come from the explicit clwb/sfence discipline under test. *)
let with_store f =
  in_sim (fun () ->
      let mem = Memory.make ~bg_period:0 () in
      Context.bind ~default:(Alloc.create_volatile mem ~home:0) ();
      let pa = Alloc.create_persistent mem ~home:0 in
      let r = f mem pa in
      Context.reset ();
      r)

let build_seg mem pa ~level recs =
  let count = Array.length recs in
  let addr = Alloc.alloc_lines pa (Segment.lines_needed ~count) in
  Segment.build mem ~addr ~level recs

(* ---- segment roundtrip ---- *)

let test_segment_roundtrip () =
  with_store (fun mem pa ->
      let recs = [| (2, 20); (5, Segment.tombstone); (9, 90); (14, 7) |] in
      let m = build_seg mem pa ~level:0 recs in
      (* [build] fences body before header: durable the moment it returns *)
      Memory.crash mem;
      match Segment.mount mem m.Segment.addr with
      | None -> Alcotest.fail "sealed segment failed to mount after crash"
      | Some m' ->
        check "count" m.Segment.count m'.Segment.count;
        check "level" m.Segment.level m'.Segment.level;
        check "min" 2 m'.Segment.min_key;
        check "max" 14 m'.Segment.max_key;
        check_bool "records survive" true (Segment.to_array mem m' = recs);
        check_bool "checksum audit passes" true (Segment.verify mem m');
        check_bool "find hits" true (Segment.find mem m' 9 = Some 90);
        check_bool "find carries tombstone" true
          (Segment.find mem m' 5 = Some Segment.tombstone);
        check_bool "find misses" true (Segment.find mem m' 3 = None))

let test_mount_rejects_unsealed () =
  with_store (fun mem pa ->
      (* an allocated-but-never-built block: all-zero media, no magic *)
      let addr = Alloc.alloc_lines pa (Segment.lines_needed ~count:4) in
      Memory.crash mem;
      check_bool "zeroed block does not mount" true
        (Segment.mount mem addr = None);
      (* a header with the magic but insane fields must not mount either *)
      let addr2 = Alloc.alloc_lines (Alloc.create_persistent mem ~home:0) 4 in
      Memory.write mem addr2 Segment.magic;
      Memory.write mem (addr2 + 1) 0 (* count = 0 *);
      Memory.clwb ~site:Persist.Test mem addr2;
      Memory.sfence ~site:Persist.Test mem;
      Memory.crash mem;
      check_bool "insane header does not mount" true
        (Segment.mount mem addr2 = None))

(* The crash state the seal discipline exists to rule out: a durable
   header over a body that never reached media. Only a build that fences
   the header *before* the body (the planted manifest-before-seal
   ordering, or a buggy port) can produce it; [mount]'s O(1) header check
   accepts it by design, and the O(records) [verify] audit is the tool
   that condemns it. *)
let test_verify_condemns_partially_flushed_body () =
  with_store (fun mem pa ->
      let recs = [| (1, 10); (4, 40); (6, 60) |] in
      let count = Array.length recs in
      let addr = Alloc.alloc_lines pa (Segment.lines_needed ~count) in
      let good = Segment.build mem ~addr ~level:0 recs in
      (* forge the torn state on a second block: copy the sealed header
         (it is self-consistent) but flush only the header line, leaving
         every body word dirty for the crash to drop *)
      let addr2 = Alloc.alloc_lines pa (Segment.lines_needed ~count) in
      for i = 0 to Segment.header_words - 1 do
        Memory.write mem (addr2 + i) (Memory.read mem (addr + i))
      done;
      let body_words = good.Segment.bloom_words + (2 * count) in
      for i = 0 to body_words - 1 do
        Memory.write mem
          (addr2 + Segment.header_words + i)
          (Memory.read mem (addr + Segment.header_words + i))
      done;
      Memory.clwb ~site:Persist.Test mem addr2;
      Memory.sfence ~site:Persist.Test mem;
      Memory.crash mem;
      (match Segment.mount mem addr2 with
       | None -> Alcotest.fail "torn segment should mount (header is sane)"
       | Some torn ->
         check_bool "audit condemns the torn body" false
           (Segment.verify mem torn));
      (* the properly built twin passes the same audit *)
      match Segment.mount mem addr with
      | None -> Alcotest.fail "sealed twin failed to mount"
      | Some m -> check_bool "audit passes sealed twin" true
                    (Segment.verify mem m))

(* ---- Bloom + occupancy filters ---- *)

let test_bloom_no_false_negatives () =
  with_store (fun mem pa ->
      let n = 500 in
      let recs = Array.init n (fun i -> ((i * 13) + 2, i)) in
      let m = build_seg mem pa ~level:0 recs in
      Array.iter
        (fun (k, v) ->
          check_bool "range filter admits present key" true
            (Segment.range_hit m k);
          check_bool "bloom admits present key" true
            (Segment.bloom_hit mem m k);
          check_bool "lookup returns the value" true
            (Segment.lookup mem m k = Some v))
        recs;
      (* the occupancy filter is exact: anything outside [min,max] is
         rejected before a single memory read *)
      check_bool "below range" false (Segment.range_hit m 1);
      check_bool "above range" false (Segment.range_hit m ((n * 13) + 3)))

let test_bloom_fpr_within_analytic_bound () =
  with_store (fun mem pa ->
      (* keys on one residue class; probe absent keys from the other
         classes inside the same [min,max] range so only the Bloom filter
         can reject them. The filter is sized for an analytic fp rate of
         (1 - e^{-probes/bits_per_key})^probes ~ 1.2%; the measured rate
         on this fixed key set must stay within 2x of it. *)
      let n = 2000 in
      let recs = Array.init n (fun i -> (i * 13, i)) in
      let m = build_seg mem pa ~level:0 recs in
      let probes = ref 0 and fp = ref 0 in
      for k = 0 to (n * 13) - 1 do
        if k mod 13 <> 0 then begin
          incr probes;
          if Segment.bloom_hit mem m k then incr fp
        end
      done;
      let rate = float_of_int !fp /. float_of_int !probes in
      let analytic =
        let kf = float_of_int Segment.Bloom.probes in
        let cf = float_of_int Segment.Bloom.bits_per_key in
        (1. -. exp (-.kf /. cf)) ** kf
      in
      if rate > 2. *. analytic then
        Alcotest.failf "bloom fp rate %.4f exceeds 2x analytic %.4f" rate
          analytic;
      (* and the filter is not degenerate (all-ones would also pass the
         no-false-negative property) *)
      check_bool "bloom rejects most absent keys" true (rate < 0.5))

(* ---- memtable model ---- *)

let prop_memtable_matches_reference =
  QCheck.Test.make ~count:200
    ~name:"memtable: drain_sorted equals reference latest-effect map"
    QCheck.(small_list (triple bool (int_bound 30) (int_bound 1000)))
    (fun script ->
      let mt = Segment.Memtable.create () in
      let reference = Hashtbl.create 16 in
      List.iter
        (fun (is_put, k, v) ->
          if is_put then begin
            Segment.Memtable.put mt k v;
            Hashtbl.replace reference k v
          end
          else begin
            Segment.Memtable.del mt k;
            Hashtbl.replace reference k Segment.tombstone
          end)
        script;
      let drained = Array.to_list (Segment.Memtable.drain_sorted mt) in
      let expected =
        List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) reference [])
      in
      drained = expected
      && Segment.Memtable.size mt = 0
      && Segment.Memtable.drain_sorted mt = [||])

(* ---- manifest ---- *)

let with_manifest f =
  with_store (fun mem pa -> f mem pa (Manifest.create pa))

let test_manifest_roundtrip_alternates_slots () =
  with_manifest (fun mem _pa man ->
      check_bool "empty manifest loads nothing" true (Manifest.load man = None);
      Manifest.publish man ~epoch:1 ~sealed_lt:3 ~segs:[ 100 ];
      Manifest.publish man ~epoch:2 ~sealed_lt:7 ~segs:[ 200; 100 ];
      Memory.crash mem;
      (match Manifest.load man with
       | Some r ->
         check "epoch" 2 r.Manifest.epoch;
         check "sealed_lt" 7 r.Manifest.sealed_lt;
         check_bool "segs newest-first" true (r.Manifest.segs = [ 200; 100 ])
       | None -> Alcotest.fail "manifest lost after crash");
      (* a third publish overwrites epoch 1's slot, never epoch 2's *)
      Manifest.publish man ~epoch:3 ~sealed_lt:9 ~segs:[ 300; 200; 100 ];
      Memory.crash mem;
      match Manifest.load man with
      | Some r -> check "epoch after reuse" 3 r.Manifest.epoch
      | None -> Alcotest.fail "manifest lost after slot reuse")

let test_torn_manifest_falls_back () =
  with_manifest (fun mem _pa man ->
      Manifest.publish man ~epoch:1 ~sealed_lt:3 ~segs:[ 100 ];
      Manifest.publish man ~epoch:2 ~sealed_lt:7 ~segs:[ 200; 100 ];
      (* forge a crash mid-publish of epoch 3: the new record's fields
         reach media but its checksum write never does (epoch 3 goes to
         slot 1 — the slot epoch 1 occupies, so only the superseded
         record is torn) *)
      let s = Manifest.slot_addr man (3 land 1) in
      Memory.write mem s 3;
      Memory.write mem (s + 1) 11;
      Memory.write mem (s + 2) 1;
      Memory.write mem (s + 3) 999;
      Memory.clwb ~site:Persist.Test mem s;
      Memory.clwb ~site:Persist.Test mem (s + 3);
      Memory.sfence ~site:Persist.Test mem;
      Memory.crash mem;
      match Manifest.load man with
      | Some r ->
        check "fell back to previous epoch" 2 r.Manifest.epoch;
        check "previous sealed_lt" 7 r.Manifest.sealed_lt;
        check_bool "previous segs" true (r.Manifest.segs = [ 200; 100 ])
      | None -> Alcotest.fail "torn slot must not take the valid one down")

(* ---- random write/seal/compact/crash scripts ----

   A miniature of the engine's storage lifecycle, driven against a pure
   reference: puts and deletes accumulate in a memtable (reference map
   [all]); SEAL drains it into a sealed level-0 segment and publishes the
   manifest (promoting the drained effects into the durable reference
   [sealed]); COMPACT merges the oldest same-level run into one
   next-level segment, newest shadow winning, and republishes; CRASH
   wipes coherent state, remounts from the manifest, and the remounted
   live view must equal [sealed] exactly — nothing sealed may be lost,
   nothing unsealed may survive. *)

type script_op =
  | Put of int * int
  | Del of int
  | Seal
  | Compact
  | Crash

let script_gen =
  QCheck.(
    small_list
      (map
         (fun (c, k, v) ->
           match c with
           | 0 | 1 | 2 -> Put (k, v)
           | 3 -> Del k
           | 4 -> Seal
           | 5 -> Compact
           | _ -> Crash)
         (triple (int_bound 6) (int_bound 40) (int_bound 1000))))

let live_view mem segs =
  let seen = Hashtbl.create 64 and acc = ref [] in
  List.iter
    (fun m ->
      Array.iter
        (fun (k, v) ->
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.replace seen k ();
            if v <> Segment.tombstone then acc := (k, v) :: !acc
          end)
        (Segment.peek_array mem m))
    segs;
  List.sort compare !acc

let sorted_of_tbl tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let fanout = 3

let run_script script =
  with_store (fun mem pa0 ->
      let pa = ref pa0 in
      let man = Manifest.create !pa in
      let mt = Segment.Memtable.create () in
      let segs = ref [] (* newest first *) and epoch = ref 0 in
      let all = Hashtbl.create 64 (* coherent reference *) in
      let sealed = Hashtbl.create 64 (* durable reference *) in
      let publish () =
        incr epoch;
        Manifest.publish man ~epoch:!epoch ~sealed_lt:0
          ~segs:(List.map (fun m -> m.Segment.addr) !segs)
      in
      publish ();
      let seal () =
        let recs = Segment.Memtable.drain_sorted mt in
        if Array.length recs > 0 then begin
          segs := build_seg mem !pa ~level:0 recs :: !segs;
          publish ();
          Array.iter
            (fun (k, v) ->
              if v = Segment.tombstone then Hashtbl.remove sealed k
              else Hashtbl.replace sealed k v)
            recs
        end
      in
      let compact () =
        (* merge the oldest [fanout] segments when they sit on one level:
           the tail of the list, so tombstones can be dropped *)
        let n = List.length !segs in
        if n >= fanout then begin
          let keep, run =
            List.filteri (fun i _ -> i < n - fanout) !segs,
            List.filteri (fun i _ -> i >= n - fanout) !segs
          in
          let lv = (List.hd run).Segment.level in
          if List.for_all (fun m -> m.Segment.level = lv) run then begin
            let seen = Hashtbl.create 64 and acc = ref [] in
            List.iter
              (fun m ->
                Array.iter
                  (fun (k, v) ->
                    if not (Hashtbl.mem seen k) then begin
                      Hashtbl.replace seen k ();
                      if v <> Segment.tombstone then acc := (k, v) :: !acc
                    end)
                  (Segment.to_array mem m))
              run;
            let recs =
              Array.of_list (List.sort compare !acc)
            in
            let merged =
              if Array.length recs = 0 then []
              else [ build_seg mem !pa ~level:(lv + 1) recs ]
            in
            segs := keep @ merged;
            publish ()
          end
        end
      in
      let crash () =
        Memory.crash mem;
        (* allocator bookkeeping is volatile: recovered heaps never reuse
           pre-crash addresses *)
        pa := Alloc.create_persistent mem ~home:0;
        let r =
          match Manifest.load man with
          | Some r -> r
          | None -> Alcotest.fail "manifest lost by crash"
        in
        check "no published epoch lost" !epoch r.Manifest.epoch;
        let mounted = List.filter_map (Segment.mount mem) r.Manifest.segs in
        check "every published segment mounts"
          (List.length r.Manifest.segs)
          (List.length mounted);
        List.iter
          (fun m ->
            check_bool "mounted segment passes audit" true
              (Segment.verify mem m))
          mounted;
        if live_view mem mounted <> sorted_of_tbl sealed then
          Alcotest.fail "recovered live view diverged from sealed reference";
        segs := mounted;
        (* the memtable is volatile: its contents die with the crash *)
        ignore (Segment.Memtable.drain_sorted mt);
        Hashtbl.reset all;
        Hashtbl.iter (Hashtbl.replace all) sealed
      in
      List.iter
        (function
          | Put (k, v) ->
            Segment.Memtable.put mt k v;
            Hashtbl.replace all k v
          | Del k ->
            Segment.Memtable.del mt k;
            Hashtbl.remove all k
          | Seal -> seal ()
          | Compact -> compact ()
          | Crash -> crash ())
        script;
      (* closing crash: whatever was sealed must be exactly recoverable *)
      crash ();
      true)

let prop_scripts_recover_sealed_state =
  QCheck.Test.make ~count:150
    ~name:"random write/seal/compact/crash scripts recover the sealed state"
    script_gen run_script

(* a fixed script that provably exercises every arm, so a regression
   cannot hide behind generator luck *)
let test_scripted_lifecycle () =
  let script =
    [ Put (1, 10); Put (2, 20); Seal; Put (2, 21); Del 1; Seal;
      Put (3, 30); Seal; Compact; Crash; Put (4, 40); Seal; Crash ]
  in
  check_bool "lifecycle script passes" true (run_script script)

let () =
  Alcotest.run "lsm"
    [
      ( "segment",
        [
          Alcotest.test_case "build/mount/find roundtrip survives crash"
            `Quick test_segment_roundtrip;
          Alcotest.test_case "mount rejects unsealed and insane headers"
            `Quick test_mount_rejects_unsealed;
          Alcotest.test_case "verify condemns partially-flushed body" `Quick
            test_verify_condemns_partially_flushed_body;
        ] );
      ( "filters",
        [
          Alcotest.test_case "no false negatives" `Quick
            test_bloom_no_false_negatives;
          Alcotest.test_case "fp rate within 2x analytic" `Quick
            test_bloom_fpr_within_analytic_bound;
        ] );
      ( "memtable",
        [ QCheck_alcotest.to_alcotest prop_memtable_matches_reference ] );
      ( "manifest",
        [
          Alcotest.test_case "publish/load alternates slots" `Quick
            test_manifest_roundtrip_alternates_slots;
          Alcotest.test_case "torn record falls back to previous epoch"
            `Quick test_torn_manifest_falls_back;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "fixed script covers every arm" `Quick
            test_scripted_lifecycle;
          QCheck_alcotest.to_alcotest prop_scripts_recover_sealed_state;
        ] );
    ]
