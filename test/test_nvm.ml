(* Tests for the simulated NVM: cache model, persistence instructions,
   crash semantics, allocators, allocator-swap context, roots. *)

open Nvm

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Fresh memory with background flushes disabled unless a test wants them. *)
let fresh ?(bg_period = 0) () = Memory.make ~bg_period ()

let in_sim f = Sim.run_one f

(* ---- basic load/store ---- *)

let test_read_write () =
  in_sim (fun () ->
      let m = fresh () in
      let aid = Memory.new_arena m ~kind:Memory.Dram ~home:0 in
      let a = Memory.addr_of ~aid ~offset:8 in
      Memory.write m a 123;
      check "read back" 123 (Memory.read m a);
      check "uninitialised is zero" 0 (Memory.read m (a + 1)))

let test_cas_semantics () =
  in_sim (fun () ->
      let m = fresh () in
      let aid = Memory.new_arena m ~kind:Memory.Dram ~home:0 in
      let a = Memory.addr_of ~aid ~offset:8 in
      Memory.write m a 5;
      check_bool "cas succeeds" true (Memory.cas m a ~expected:5 ~desired:9);
      check "new value" 9 (Memory.read m a);
      check_bool "cas fails" false (Memory.cas m a ~expected:5 ~desired:11);
      check "unchanged" 9 (Memory.read m a))

let test_faa () =
  in_sim (fun () ->
      let m = fresh () in
      let aid = Memory.new_arena m ~kind:Memory.Dram ~home:0 in
      let a = Memory.addr_of ~aid ~offset:8 in
      check "faa returns old" 0 (Memory.faa m a 3);
      check "faa returns old 2" 3 (Memory.faa m a 4);
      check "value" 7 (Memory.read m a))

(* ---- persistence semantics ---- *)

let test_unflushed_write_lost_on_crash () =
  in_sim (fun () ->
      let m = fresh () in
      let aid = Memory.new_arena m ~kind:Memory.Nvm ~home:0 in
      let a = Memory.addr_of ~aid ~offset:8 in
      Memory.write m a 77;
      Memory.crash m;
      check "lost" 0 (Memory.peek m a))

let test_clwb_alone_not_durable () =
  in_sim (fun () ->
      let m = fresh () in
      let aid = Memory.new_arena m ~kind:Memory.Nvm ~home:0 in
      let a = Memory.addr_of ~aid ~offset:8 in
      Memory.write m a 77;
      Memory.clwb ~site:Persist.Test m a;
      (* no fence: the write-back is still pending *)
      Memory.crash m;
      check "clwb without sfence lost" 0 (Memory.peek m a))

let test_clwb_sfence_durable () =
  in_sim (fun () ->
      let m = fresh () in
      let aid = Memory.new_arena m ~kind:Memory.Nvm ~home:0 in
      let a = Memory.addr_of ~aid ~offset:8 in
      Memory.write m a 77;
      Memory.clwb ~site:Persist.Test m a;
      Memory.sfence ~site:Persist.Test m;
      Memory.crash m;
      check "durable" 77 (Memory.peek m a))

let test_clflush_durable_immediately () =
  in_sim (fun () ->
      let m = fresh () in
      let aid = Memory.new_arena m ~kind:Memory.Nvm ~home:0 in
      let a = Memory.addr_of ~aid ~offset:8 in
      Memory.write m a 42;
      Memory.clflush ~site:Persist.Test m a;
      Memory.crash m;
      check "durable" 42 (Memory.peek m a))

let test_clwb_captures_at_call_time () =
  in_sim (fun () ->
      let m = fresh () in
      let aid = Memory.new_arena m ~kind:Memory.Nvm ~home:0 in
      let a = Memory.addr_of ~aid ~offset:8 in
      Memory.write m a 1;
      Memory.clwb ~site:Persist.Test m a;
      Memory.write m a 2;
      (* second write re-dirties the line after the clwb captured value 1 *)
      Memory.sfence ~site:Persist.Test m;
      Memory.crash m;
      check "fence persists captured value" 1 (Memory.peek m a))

let test_whole_line_flushed () =
  in_sim (fun () ->
      let m = fresh () in
      let aid = Memory.new_arena m ~kind:Memory.Nvm ~home:0 in
      let base = Memory.addr_of ~aid ~offset:16 in
      (* two words on the same 8-word line *)
      Memory.write m base 5;
      Memory.write m (base + 3) 6;
      Memory.clflush ~site:Persist.Test m base;
      Memory.crash m;
      check "word 0" 5 (Memory.peek m base);
      check "word 3 same line" 6 (Memory.peek m (base + 3)))

let test_wbinvd_flushes_own_socket_only () =
  let m = fresh () in
  let sim = Sim.create Sim.Topology.default in
  let aid = Memory.new_arena m ~kind:Memory.Nvm ~home:0 in
  let a0 = Memory.addr_of ~aid ~offset:8 in
  let a1 = Memory.addr_of ~aid ~offset:1024 in
  (* socket 0 dirties a0; socket 1 dirties a1 and runs WBINVD *)
  ignore (Sim.spawn sim ~socket:0 (fun () -> Memory.write m a0 10));
  ignore
    (Sim.spawn sim ~socket:1 (fun () ->
         Memory.write m a1 20;
         Sim.tick 10_000 (* let socket 0's write land first *);
         Memory.wbinvd ~site:Persist.Test m));
  (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  Memory.crash m;
  check "other socket's line not flushed" 0 (Memory.peek m a0);
  check "own line flushed" 20 (Memory.peek m a1)

let test_dram_gone_after_crash () =
  in_sim (fun () ->
      let m = fresh () in
      let aid = Memory.new_arena m ~kind:Memory.Dram ~home:0 in
      let a = Memory.addr_of ~aid ~offset:8 in
      Memory.write m a 99;
      Memory.crash m;
      check "dram zeroed" 0 (Memory.peek m a))

let test_background_flush_persists_sometimes () =
  in_sim (fun () ->
      let m = fresh ~bg_period:10 () in
      let aid = Memory.new_arena m ~kind:Memory.Nvm ~home:0 in
      (* hammer many distinct lines; with mean period 10 some must land *)
      for i = 0 to 499 do
        Memory.write m (Memory.addr_of ~aid ~offset:(8 * (i + 1))) (i + 1)
      done;
      let stats = Memory.stats m in
      check_bool "some background flushes happened" true
        (stats.Memory.bg_flushes > 0);
      Memory.crash m;
      let survived = ref 0 in
      for i = 0 to 499 do
        if Memory.peek m (Memory.addr_of ~aid ~offset:(8 * (i + 1))) = i + 1
        then incr survived
      done;
      check_bool "a strict subset survived" true
        (!survived > 0 && !survived < 500))

let test_crash_resets_coherent_view_to_media () =
  in_sim (fun () ->
      let m = fresh () in
      let aid = Memory.new_arena m ~kind:Memory.Nvm ~home:0 in
      let a = Memory.addr_of ~aid ~offset:8 in
      Memory.write m a 1;
      Memory.clflush ~site:Persist.Test m a;
      Memory.write m a 2 (* newer, unflushed *);
      check "coherent view sees 2" 2 (Memory.read m a);
      Memory.crash m;
      check "recovered view sees persisted 1" 1 (Memory.read m a))

let test_flush_arena () =
  in_sim (fun () ->
      let m = fresh () in
      let aid = Memory.new_arena m ~kind:Memory.Nvm ~home:0 in
      for i = 1 to 100 do
        Memory.write m (Memory.addr_of ~aid ~offset:(8 * i)) i
      done;
      Memory.flush_arena ~site:Persist.Test m aid;
      Memory.sfence ~site:Persist.Test m;
      Memory.crash m;
      let ok = ref true in
      for i = 1 to 100 do
        if Memory.peek m (Memory.addr_of ~aid ~offset:(8 * i)) <> i then
          ok := false
      done;
      check_bool "all persisted" true !ok)

(* ---- allocator ---- *)

let test_alloc_zeroed_and_disjoint () =
  in_sim (fun () ->
      let m = fresh () in
      let al = Alloc.create_volatile m ~home:0 in
      let a = Alloc.alloc al 10 and b = Alloc.alloc al 10 in
      check_bool "disjoint" true (abs (a - b) >= 10);
      for i = 0 to 9 do
        Memory.write m (a + i) (i + 1)
      done;
      check "b untouched" 0 (Memory.peek m b);
      check_bool "never null" true (a <> Memory.null && b <> Memory.null))

let test_alloc_free_reuse_scrubbed () =
  in_sim (fun () ->
      let m = fresh () in
      let al = Alloc.create_volatile m ~home:0 in
      let a = Alloc.alloc al 4 in
      Memory.write m a 999;
      Alloc.free al a 4;
      let b = Alloc.alloc al 4 in
      check "same block reused" a b;
      check "scrubbed" 0 (Memory.peek m b))

let test_alloc_grows_arenas () =
  in_sim (fun () ->
      let m = fresh () in
      let al = Alloc.create_volatile m ~home:0 in
      let before = Memory.arena_count m in
      (* allocate more than one arena's worth *)
      for _ = 1 to (2 * Memory.arena_words / 128) + 2 do
        ignore (Alloc.alloc al 128)
      done;
      check_bool "new arenas created" true (Memory.arena_count m > before))

let test_persistent_alloc_addresses_survive () =
  in_sim (fun () ->
      let m = fresh () in
      let al = Alloc.create_persistent m ~home:0 in
      let a = Alloc.alloc al 4 in
      Memory.write m a 31337;
      Memory.clflush ~site:Persist.Test m a;
      Memory.crash m;
      check "persistent data still at same address" 31337 (Memory.peek m a))

(* ---- context / allocator swap ---- *)

let test_context_swap () =
  in_sim (fun () ->
      let m = fresh () in
      let vol = Alloc.create_volatile m ~home:0 in
      let pers = Alloc.create_persistent m ~home:0 in
      Context.bind ~default:vol ~persistent:pers ();
      let a = Context.alloc 4 in
      check_bool "default allocation is DRAM" false (Memory.is_nvm m a);
      let b = Context.with_persistent (fun () -> Context.alloc 4) in
      check_bool "swapped allocation is NVM" true (Memory.is_nvm m b);
      let c = Context.alloc 4 in
      check_bool "flag restored" false (Memory.is_nvm m c);
      Context.reset ())

let test_context_nested_restore () =
  in_sim (fun () ->
      let m = fresh () in
      let vol = Alloc.create_volatile m ~home:0 in
      let pers = Alloc.create_persistent m ~home:0 in
      Context.bind ~default:vol ~persistent:pers ();
      Context.with_persistent (fun () ->
          Context.with_persistent (fun () -> ());
          let a = Context.alloc 4 in
          check_bool "still persistent after inner exit" true
            (Memory.is_nvm m a));
      Context.reset ())

(* ---- roots ---- *)

let test_roots_survive_crash () =
  in_sim (fun () ->
      let m = fresh () in
      let roots = Roots.make m in
      Roots.set roots 1 4242;
      Roots.set_unflushed roots 2 17;
      Memory.crash m;
      check "flushed root recovered" 4242 (Roots.get roots 1);
      check "unflushed root lost" 0 (Roots.get roots 2))

(* A CAS-based lock must provide mutual exclusion *in simulated time*:
   critical-section intervals of different fibers never overlap. This
   guards the scheduler's causality rule (a fiber only executes while it
   is the earliest runnable one). *)
let test_cas_mutual_exclusion_in_sim_time () =
  let m = fresh () in
  let topo = Sim.Topology.{ sockets = 2; cores_per_socket = 4 } in
  let sim = Sim.create ~seed:9L topo in
  let aid = Memory.new_arena m ~kind:Memory.Dram ~home:0 in
  let lock = Memory.addr_of ~aid ~offset:8 in
  let intervals = ref [] in
  for w = 0 to 7 do
    let socket, core = Sim.Topology.place topo w in
    ignore
      (Sim.spawn sim ~socket ~core (fun () ->
           let rng = Sim.fiber_rng () in
           for _ = 1 to 30 do
             while not (Memory.cas m lock ~expected:0 ~desired:1) do
               Sim.spin ()
             done;
             let enter = Sim.now () in
             Sim.tick (50 + Sim.Rng.int rng 300);
             let exit_ = Sim.now () in
             Memory.write m lock 0;
             intervals := (enter, exit_, w) :: !intervals
           done))
  done;
  (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  let sorted = List.sort compare !intervals in
  let rec no_overlap = function
    | (_, e1, _) :: ((s2, _, _) :: _ as rest) ->
      if s2 < e1 then
        Alcotest.failf "critical sections overlap: exit %d vs enter %d" e1 s2;
      no_overlap rest
    | _ -> ()
  in
  no_overlap sorted;
  check "all critical sections recorded" 240 (List.length sorted)

(* ---- FliT flush elimination ---- *)

let fresh_flit ?(bg_period = 0) () = Memory.make ~bg_period ~flit:true ()

let test_flit_clean_clwb_elided () =
  in_sim (fun () ->
      let m = fresh_flit () in
      let aid = Memory.new_arena m ~kind:Memory.Nvm ~home:0 in
      let a = Memory.addr_of ~aid ~offset:8 in
      Memory.write m a 42;
      Memory.clwb ~site:Persist.Test m a;
      Memory.sfence ~site:Persist.Test m;
      let s = Memory.stats m in
      check "first clwb issued" 1 s.Memory.clwb;
      let media_before = Array.init 8 (fun i -> Memory.peek_media m (a - (a mod 8) + i)) in
      let t0 = Sim.now () in
      Memory.clwb ~site:Persist.Test m a;
      let dt = Sim.now () - t0 in
      let media_after = Array.init 8 (fun i -> Memory.peek_media m (a - (a mod 8) + i)) in
      check "clwb on clean line elided" 1 s.Memory.clwb_elided;
      check "no new write-back issued" 1 s.Memory.clwb;
      check_bool "media unchanged" true (media_before = media_after);
      check "tag check is cheap" (Sim.costs ()).Sim.Costs.flush_tag_check dt;
      Memory.crash m;
      check "still durable" 42 (Memory.peek m a))

let test_flit_clwb_coalesces () =
  in_sim (fun () ->
      let m = fresh_flit () in
      let aid = Memory.new_arena m ~kind:Memory.Nvm ~home:0 in
      let a = Memory.addr_of ~aid ~offset:8 in
      Memory.write m a 1;
      Memory.clwb ~site:Persist.Test m a;
      Memory.write m a 2;
      Memory.clwb ~site:Persist.Test m a;
      let s = Memory.stats m in
      check "one real write-back" 1 s.Memory.clwb;
      check "second coalesced into WPQ entry" 1 s.Memory.clwb_coalesced;
      Memory.sfence ~site:Persist.Test m;
      Memory.crash m;
      check "newest capture wins" 2 (Memory.peek m a))

let test_flit_empty_sfence_free () =
  in_sim (fun () ->
      let m = fresh_flit () in
      let aid = Memory.new_arena m ~kind:Memory.Nvm ~home:0 in
      let a = Memory.addr_of ~aid ~offset:8 in
      let t0 = Sim.now () in
      Memory.sfence ~site:Persist.Test m;
      check "empty WPQ: no drain cost" 0 (Sim.now () - t0);
      check "counted as elided" 1 (Memory.stats m).Memory.sfence_elided;
      (* a fence with work still pays *)
      Memory.write m a 9;
      Memory.clwb ~site:Persist.Test m a;
      let t1 = Sim.now () in
      Memory.sfence ~site:Persist.Test m;
      check_bool "non-empty WPQ charges" true (Sim.now () - t1 > 0);
      check "real fence counted" 1 (Memory.stats m).Memory.sfence)

let test_flit_clflush_elided_when_persisted () =
  in_sim (fun () ->
      let m = fresh_flit () in
      let aid = Memory.new_arena m ~kind:Memory.Nvm ~home:0 in
      let a = Memory.addr_of ~aid ~offset:8 in
      Memory.write m a 5;
      Memory.clflush ~site:Persist.Test m a;
      Memory.clflush ~site:Persist.Test m a;
      let s = Memory.stats m in
      check "one real clflush" 1 s.Memory.clflush;
      check "second elided" 1 s.Memory.clflush_elided;
      Memory.crash m;
      check "durable" 5 (Memory.peek m a))

let test_flit_no_stale_writeback_regression () =
  (* clwb captures v1; the line is then rewritten and clflushed (v2 on
     media). The stale queued capture must NOT be replayed by the fence —
     flit prunes a line's WPQ entry when the line is committed. *)
  in_sim (fun () ->
      let m = fresh_flit () in
      let aid = Memory.new_arena m ~kind:Memory.Nvm ~home:0 in
      let a = Memory.addr_of ~aid ~offset:8 in
      Memory.write m a 1;
      Memory.clwb ~site:Persist.Test m a;
      Memory.write m a 2;
      Memory.clflush ~site:Persist.Test m a;
      Memory.sfence ~site:Persist.Test m;
      Memory.crash m;
      check "media not regressed to stale capture" 2 (Memory.peek m a))

(* Differential property: the same write/flush/fence sequence on a flit
   memory and a baseline memory must persist identical media, and every
   flush instruction must be accounted exactly once (issued, elided or
   coalesced). Rounds write a few words, write back touched lines (with
   duplicates, exercising elision) and fence only sometimes (leaving
   pending write-backs for the next round's clwb to coalesce with). *)
let prop_flit_media_matches_baseline =
  QCheck.Test.make ~count:100
    ~name:"flit: media and accounting match baseline across random rounds"
    QCheck.(
      small_list
        (triple (small_list (pair (int_bound 63) (int_bound 1000))) bool bool))
    (fun rounds ->
      Sim.run_one (fun () ->
          let run flit =
            let m = Memory.make ~bg_period:0 ~flit () in
            let aid = Memory.new_arena m ~kind:Memory.Nvm ~home:0 in
            let addr off = Memory.addr_of ~aid ~offset:(8 + off) in
            List.iter
              (fun (writes, dup_clwb, fence) ->
                List.iter (fun (off, v) -> Memory.write m (addr off) v) writes;
                let reps = if dup_clwb then 2 else 1 in
                for _ = 1 to reps do
                  List.iter (fun (off, _) -> Memory.clwb ~site:Persist.Test m (addr off)) writes
                done;
                if fence then Memory.sfence ~site:Persist.Test m)
              rounds;
            Memory.crash m;
            let media =
              List.concat_map
                (fun (writes, _, _) ->
                  List.map (fun (off, _) -> Memory.peek m (addr off)) writes)
                rounds
            in
            (media, Memory.stats m)
          in
          let media_b, sb = run false in
          let media_f, sf = run true in
          media_b = media_f
          && sf.Memory.clwb + sf.Memory.clwb_elided + sf.Memory.clwb_coalesced
             = sb.Memory.clwb
          && sf.Memory.sfence + sf.Memory.sfence_elided = sb.Memory.sfence
          && sb.Memory.clwb_elided = 0
          && sb.Memory.clwb_coalesced = 0
          && sb.Memory.sfence_elided = 0))

(* ---- property tests ---- *)

let prop_flushed_equals_peek =
  QCheck.Test.make ~count:50 ~name:"flush then crash preserves all writes"
    QCheck.(small_list (pair (int_bound 500) (int_bound 10_000)))
    (fun writes ->
      Sim.run_one (fun () ->
          let m = fresh () in
          let aid = Memory.new_arena m ~kind:Memory.Nvm ~home:0 in
          List.iter
            (fun (off, v) ->
              Memory.write m (Memory.addr_of ~aid ~offset:(off + 8)) v)
            writes;
          List.iter
            (fun (off, _) ->
              Memory.clwb ~site:Persist.Test m (Memory.addr_of ~aid ~offset:(off + 8)))
            writes;
          Memory.sfence ~site:Persist.Test m;
          let expected =
            List.map
              (fun (off, _) -> Memory.peek m (Memory.addr_of ~aid ~offset:(off + 8)))
              writes
          in
          Memory.crash m;
          let got =
            List.map
              (fun (off, _) -> Memory.peek m (Memory.addr_of ~aid ~offset:(off + 8)))
              writes
          in
          expected = got))

let prop_alloc_blocks_disjoint =
  QCheck.Test.make ~count:50 ~name:"allocated blocks never overlap"
    QCheck.(small_list (int_range 1 64))
    (fun sizes ->
      Sim.run_one (fun () ->
          let m = fresh () in
          let al = Alloc.create_volatile m ~home:0 in
          let blocks = List.map (fun s -> (Alloc.alloc al s, s)) sizes in
          let rec disjoint = function
            | [] -> true
            | (a, sa) :: rest ->
              List.for_all (fun (b, sb) -> a + sa <= b || b + sb <= a) rest
              && disjoint rest
          in
          disjoint blocks))

let () =
  Alcotest.run "nvm"
    [
      ( "memory",
        [
          Alcotest.test_case "read/write" `Quick test_read_write;
          Alcotest.test_case "cas" `Quick test_cas_semantics;
          Alcotest.test_case "faa" `Quick test_faa;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "unflushed write lost" `Quick
            test_unflushed_write_lost_on_crash;
          Alcotest.test_case "clwb alone not durable" `Quick
            test_clwb_alone_not_durable;
          Alcotest.test_case "clwb+sfence durable" `Quick test_clwb_sfence_durable;
          Alcotest.test_case "clflush durable" `Quick
            test_clflush_durable_immediately;
          Alcotest.test_case "clwb captures at call time" `Quick
            test_clwb_captures_at_call_time;
          Alcotest.test_case "whole line flushed" `Quick test_whole_line_flushed;
          Alcotest.test_case "wbinvd own socket only" `Quick
            test_wbinvd_flushes_own_socket_only;
          Alcotest.test_case "dram gone after crash" `Quick
            test_dram_gone_after_crash;
          Alcotest.test_case "background flushes" `Quick
            test_background_flush_persists_sometimes;
          Alcotest.test_case "crash resets to media" `Quick
            test_crash_resets_coherent_view_to_media;
          Alcotest.test_case "flush arena" `Quick test_flush_arena;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "zeroed and disjoint" `Quick
            test_alloc_zeroed_and_disjoint;
          Alcotest.test_case "free/reuse scrubbed" `Quick
            test_alloc_free_reuse_scrubbed;
          Alcotest.test_case "grows arenas" `Quick test_alloc_grows_arenas;
          Alcotest.test_case "persistent addresses survive" `Quick
            test_persistent_alloc_addresses_survive;
        ] );
      ( "causality",
        [
          Alcotest.test_case "cas mutual exclusion in sim time" `Quick
            test_cas_mutual_exclusion_in_sim_time;
        ] );
      ( "context",
        [
          Alcotest.test_case "swap" `Quick test_context_swap;
          Alcotest.test_case "nested restore" `Quick test_context_nested_restore;
        ] );
      ( "roots", [ Alcotest.test_case "survive crash" `Quick test_roots_survive_crash ] );
      ( "flit",
        [
          Alcotest.test_case "clean clwb elided, media invariant" `Quick
            test_flit_clean_clwb_elided;
          Alcotest.test_case "clwb coalesces into pending entry" `Quick
            test_flit_clwb_coalesces;
          Alcotest.test_case "empty sfence free" `Quick
            test_flit_empty_sfence_free;
          Alcotest.test_case "clflush elided when persisted" `Quick
            test_flit_clflush_elided_when_persisted;
          Alcotest.test_case "no stale write-back after clflush" `Quick
            test_flit_no_stale_writeback_regression;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_flushed_equals_peek;
          QCheck_alcotest.to_alcotest prop_alloc_blocks_disjoint;
          QCheck_alcotest.to_alcotest prop_flit_media_matches_baseline;
        ] );
    ]
