(* Sharded PREP-UC: router correctness, cross-shard transaction
   atomicity, and the crash-fuzz campaigns of the sharded construction.
   All budgets are deterministic counts under fixed seeds. *)

open Prep

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

module H = Seqds.Hashmap
module S = Sharded_uc.Make (Seqds.Hashmap)
module FS = Check.Fuzz_shard.Make (Seqds.Hashmap)
module ES = Check.Explore_shard.Make (Seqds.Hashmap)

let topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 }

(* Run [ops] (a per-worker list of (op, args)) over [nshards] shards with
   [workers] workers; return the merged final snapshot. *)
let run_sharded ?(fault = Config.No_fault) ~nshards ~workers ops =
  let sim = Sim.create ~seed:11L topology in
  let mem = Nvm.Memory.make ~seed:12L ~sockets:2 () in
  let snap = ref [] in
  let uc_out = ref None in
  ignore
    (Sim.spawn sim ~socket:0 (fun () ->
         let roots = Nvm.Roots.make mem in
         let cfg =
           Config.make ~mode:Config.Durable ~log_size:256 ~epsilon:16
             ~shards:nshards ~fault ~workers ()
         in
         let uc = S.create mem roots cfg in
         uc_out := Some uc;
         S.start_persistence uc;
         let done_count = ref 0 in
         for w = 0 to workers - 1 do
           let socket, core = Sim.Topology.place topology w in
           Sim.spawn_here ~socket ~core (fun () ->
               S.register_worker uc;
               List.iter
                 (fun (op, args) -> ignore (S.execute uc ~op ~args))
                 ops;
               incr done_count)
         done;
         while !done_count < workers do
           Sim.tick 10_000
         done;
         S.stop uc;
         S.sync uc;
         snap := S.snapshot uc));
  (match Sim.run sim () with `Done -> () | `Cut _ -> assert false);
  (Option.get !uc_out, !snap)

(* ---- router ---- *)

let test_route_partition () =
  (* every key owned by exactly one shard, all shards populated *)
  let nshards = 4 in
  let seen = Array.make nshards 0 in
  for k = 0 to 9999 do
    let s = Sharded_uc.route_key ~nshards k in
    check_bool "shard in range" true (s >= 0 && s < nshards);
    seen.(s) <- seen.(s) + 1
  done;
  Array.iteri
    (fun i n ->
      check_bool (Printf.sprintf "shard %d gets a fair share" i) true
        (n > 1500))
    seen

(* ---- sequential equivalence across shard counts ---- *)

let test_shard_count_invariance () =
  (* one worker = a sequential history: the merged final state must be
     identical whatever the shard count *)
  let rng = Sim.Rng.create 77L in
  let ops =
    List.init 300 (fun _ ->
        let k = Sim.Rng.int rng 512 in
        match Sim.Rng.int rng 10 with
        | 0 | 1 | 2 ->
          (Sharded_uc.op_multi_put, [| k; Sim.Rng.int rng 512; k + 1 |])
        | 3 | 4 ->
          (Sharded_uc.op_transfer, [| k; Sim.Rng.int rng 512; 3 |])
        | 5 | 6 | 7 -> (H.op_insert, [| k; k * 2 |])
        | 8 -> (H.op_remove, [| k |])
        | _ -> (H.op_get, [| k |]))
  in
  let _, s1 = run_sharded ~nshards:1 ~workers:1 ops in
  let _, s2 = run_sharded ~nshards:2 ~workers:1 ops in
  let _, s4 = run_sharded ~nshards:4 ~workers:1 ops in
  check_bool "snapshot non-trivial" true (List.length s1 > 10);
  Alcotest.(check (list int)) "1 shard = 2 shards" s1 s2;
  Alcotest.(check (list int)) "1 shard = 4 shards" s1 s4

let test_multi_put_and_transfer () =
  let ops =
    [
      (H.op_insert, [| 1; 100 |]);
      (H.op_insert, [| 2; 50 |]);
      (Sharded_uc.op_transfer, [| 1; 2; 30 |]);
      (* both keys set to one value, across whatever shards own them *)
      (Sharded_uc.op_multi_put, [| 10; 11; 7 |]);
      (* transfer with an absent destination: delta lands as the value *)
      (Sharded_uc.op_transfer, [| 2; 20; 5 |]);
    ]
  in
  let uc, snap = run_sharded ~nshards:4 ~workers:1 ops in
  let assoc k = List.assoc k (List.combine (List.filteri (fun i _ -> i mod 2 = 0) snap) (List.filteri (fun i _ -> i mod 2 = 1) snap)) in
  check "transfer debits" 70 (assoc 1);
  check "transfer credits then debits" 75 (assoc 2);
  check "multi_put first key" 7 (assoc 10);
  check "multi_put second key" 7 (assoc 11);
  check "transfer into absent key" 5 (assoc 20);
  (* every transaction decided at quiescence *)
  Hashtbl.iter
    (fun txid _ ->
      check_bool "txn committed" true (S.committed uc txid))
    uc.S.txn_intent

(* ---- decision table ---- *)

let test_decision_table_chunks () =
  (* capacity spanning several chunks: slots land in the right chunk and
     survive a crash *)
  let sim = Sim.create ~seed:5L topology in
  let mem = Nvm.Memory.make ~seed:6L ~sockets:2 () in
  ignore
    (Sim.spawn sim ~socket:0 (fun () ->
         let roots = Nvm.Roots.make mem in
         let d = Sharded_uc.Decision.create mem roots ~cap:100_000 in
         let probes = [ 1; 2; 32767; 32768; 32769; 99_999; 100_007 ] in
         List.iter (fun txid -> Sharded_uc.Decision.commit d txid) probes;
         List.iter
           (fun txid ->
             check_bool "committed" true (Sharded_uc.Decision.committed d txid))
           probes;
         check_bool "uncommitted stays uncommitted" false
           (Sharded_uc.Decision.committed d 12345);
         Nvm.Memory.crash mem;
         let d' = Sharded_uc.Decision.attach mem roots in
         List.iter
           (fun txid ->
             check_bool "survives crash" true
               (Sharded_uc.Decision.committed_peek d' txid))
           probes;
         check_bool "uncommitted survives as uncommitted" false
           (Sharded_uc.Decision.committed_peek d' 12345)));
  match Sim.run sim () with `Done -> () | `Cut _ -> assert false

(* ---- crash fuzz campaigns ---- *)

let gen_sharded ~nshards ~multi_pct ~cross_pct =
  let w =
    Harness.Workload.map_workload_sharded ~read_pct:20 ~multi_pct ~cross_pct
      ~nshards ~key_range:128 ~prefill_n:0
  in
  fun rng -> w.Harness.Workload.next rng ~phase:0

let template ~seed ~ops =
  {
    Check.Fuzz.workload_seed = seed;
    threads = 6;
    epsilon = 16;
    log_size = 256;
    ops_per_worker = ops;
    bg_period = 2000;
    preempt_prob = 0.02;
    crash = Check.Fuzz.No_crash;
  }

let no_failures label (res : Check.Fuzz.result) =
  List.iter
    (fun { Check.Fuzz.episode; violations } ->
      Alcotest.failf "%s: %s failed: %s" label
        (Fmt.str "%a" Check.Fuzz.pp_episode episode)
        (String.concat "; "
           (List.map Check.Durable_lin.violation_to_string violations)))
    res.Check.Fuzz.failures

let campaign ~seed ~nshards ~multi_pct ~cross_pct ~iters =
  FS.fuzz ~nshards ~fault:Config.No_fault
    ~gen_op:(gen_sharded ~nshards ~multi_pct ~cross_pct)
    ~template:(template ~seed ~ops:100) ~iters ()

let test_fuzz_single_key () =
  let res = campaign ~seed:8100 ~nshards:4 ~multi_pct:0 ~cross_pct:0 ~iters:8 in
  no_failures "0% multi" res;
  check_bool "crash points explored" true (res.Check.Fuzz.crashes > 0)

let test_fuzz_cross_10 () =
  let res =
    campaign ~seed:8200 ~nshards:4 ~multi_pct:10 ~cross_pct:100 ~iters:8
  in
  no_failures "10% multi, all cross" res;
  check_bool "crash points explored" true (res.Check.Fuzz.crashes > 0)

let test_fuzz_cross_50 () =
  let res =
    campaign ~seed:8300 ~nshards:2 ~multi_pct:50 ~cross_pct:50 ~iters:8
  in
  no_failures "50% multi on 2 shards" res;
  check_bool "crash points explored" true (res.Check.Fuzz.crashes > 0)

(* ---- the planted commit-ordering fault ---- *)

let test_fuzz_catches_planted_fault () =
  let nshards = 4 in
  let gen_op = gen_sharded ~nshards ~multi_pct:40 ~cross_pct:100 in
  let res =
    FS.fuzz ~nshards ~fault:Config.Commit_before_prepare_persist ~gen_op
      ~template:(template ~seed:8400 ~ops:100) ~iters:20 ()
  in
  check_bool "planted commit-before-prepare fault caught" true
    (res.Check.Fuzz.failures <> []);
  (* every reported violation is the cross-shard atomicity kind *)
  let f = List.hd res.Check.Fuzz.failures in
  check_bool "violation names a partially-applied committed txn" true
    (List.exists
       (function
         | Check.Durable_lin.Atomicity_violation { committed = true; _ } ->
           true
         | _ -> false)
       f.Check.Fuzz.violations);
  (* and it shrinks to a smaller reproducible episode *)
  let small =
    FS.shrink ~nshards ~fault:Config.Commit_before_prepare_persist ~gen_op
      f.Check.Fuzz.episode
  in
  check_bool "shrunk episode still fails" true
    ((FS.run_episode ~nshards ~fault:Config.Commit_before_prepare_persist
        ~gen_op small)
       .Check.Fuzz.violations
    <> []);
  check_bool "shrunk is no bigger" true
    (small.Check.Fuzz.threads <= f.Check.Fuzz.episode.Check.Fuzz.threads)

let test_fault_inert_without_multis () =
  (* with no multi-key ops there are no transactions, so the planted
     fault has nothing to break *)
  let res =
    FS.fuzz ~nshards:2 ~fault:Config.Commit_before_prepare_persist
      ~gen_op:(gen_sharded ~nshards:2 ~multi_pct:0 ~cross_pct:0)
      ~template:(template ~seed:8500 ~ops:100) ~iters:6 ()
  in
  no_failures "fault inert without transactions" res

(* ---- bounded exhaustive exploration ---- *)

let explore_scope =
  {
    Check.Explore.seed = 3;
    threads = 2;
    ops_per_worker = 1;
    epsilon = 2;
    log_size = 16;
    sockets = 2;
    cores_per_socket = 2;
    prune = true;
    (* the checkpoint fibers never quiesce, so they make this scope
       unbounded; 4 ops < epsilon-window wrap, so skipping them is sound
       (see [Explore.scope]) and the space exhausts *)
    persistence = false;
  }

let gen_explore rng =
  let k = Sim.Rng.int rng 8 in
  match Sim.Rng.int rng 4 with
  | 0 -> (Sharded_uc.op_multi_put, [| k; k + 1; 1 + Sim.Rng.int rng 9 |])
  | 1 -> (H.op_insert, [| k; Sim.Rng.int rng 100 |])
  | 2 -> (H.op_get, [| k |])
  | _ -> (Sharded_uc.op_transfer, [| k; k + 3; 1 |])

let test_explore_2shard_clean () =
  let res =
    ES.explore ~nshards:2 ~fault:Config.No_fault ~gen_op:gen_explore
      ~scope:explore_scope ()
  in
  (match res.Check.Explore.violation with
   | None -> ()
   | Some v ->
     Alcotest.failf "unexpected violation: %s"
       (String.concat "; "
          (List.map Check.Durable_lin.violation_to_string
             v.Check.Explore.v_violations)));
  check_bool "exhausted" true res.Check.Explore.exhausted;
  check_bool "reached terminals" true
    (res.Check.Explore.stats.Check.Explore.terminals > 0);
  check_bool "crash frontiers judged" true
    (res.Check.Explore.stats.Check.Explore.frontiers > 0)

let test_explore_finds_planted_fault () =
  (* one worker issuing two cross-shard multi-puts (keys 0 and 1 hash to
     different shards when nshards = 2): with the decision flushed before
     the prepares persist, the very first crash frontier after the early
     commit shows a committed transaction with missing prepares *)
  let scope =
    { explore_scope with Check.Explore.threads = 1; ops_per_worker = 2 }
  in
  let gen _rng = (Sharded_uc.op_multi_put, [| 0; 1; 5 |]) in
  let res =
    ES.explore ~nshards:2 ~fault:Config.Commit_before_prepare_persist
      ~gen_op:gen ~scope ()
  in
  match res.Check.Explore.violation with
  | None -> Alcotest.fail "planted commit-before-prepare fault not found"
  | Some v ->
    check_bool "violation is a committed-txn atomicity break" true
      (List.exists
         (function
           | Check.Durable_lin.Atomicity_violation { committed = true; _ } ->
             true
           | _ -> false)
         v.Check.Explore.v_violations);
    check_bool "found at a crash frontier" true
      (v.Check.Explore.v_crash <> None);
    (* the decision trace + crash point replays to the same verdict *)
    let violations, crashed, _, _, _ =
      ES.replay ~nshards:2 ~fault:Config.Commit_before_prepare_persist
        ~gen_op:gen ~scope ~decisions:v.Check.Explore.v_decisions
        ?crash:v.Check.Explore.v_crash ()
    in
    check_bool "replay crashed" true crashed;
    check_bool "replay reproduces the violation" true (violations <> [])

(* ---- config gates ---- *)

let test_config_gates () =
  Alcotest.check_raises "sharding requires durable"
    (Invalid_argument
       "Config: sharding requires durable mode (cross-shard commit \
        decisions are only meaningful over durably logged prepares)")
    (fun () ->
      Config.validate
        (Config.make ~mode:Config.Buffered ~shards:2 ~workers:2 ())
        ~beta:4);
  Alcotest.check_raises "fault needs shards"
    (Invalid_argument
       "Config: commit-before-prepare fault only exists with --shards >= 2")
    (fun () ->
      Config.validate
        (Config.make ~mode:Config.Durable
           ~fault:Config.Commit_before_prepare_persist ~workers:2 ())
        ~beta:4)

let () =
  Alcotest.run "shard"
    [
      ( "router",
        [
          Alcotest.test_case "partition" `Quick test_route_partition;
          Alcotest.test_case "shard-count invariance" `Quick
            test_shard_count_invariance;
          Alcotest.test_case "multi_put/transfer semantics" `Quick
            test_multi_put_and_transfer;
        ] );
      ( "decision",
        [ Alcotest.test_case "chunked table" `Quick test_decision_table_chunks ] );
      ( "fuzz",
        [
          Alcotest.test_case "single-key campaign" `Slow test_fuzz_single_key;
          Alcotest.test_case "10% cross campaign" `Slow test_fuzz_cross_10;
          Alcotest.test_case "50% multi campaign" `Slow test_fuzz_cross_50;
          Alcotest.test_case "planted fault caught + shrunk" `Slow
            test_fuzz_catches_planted_fault;
          Alcotest.test_case "fault inert without txns" `Slow
            test_fault_inert_without_multis;
        ] );
      ( "explore",
        [
          Alcotest.test_case "2-shard clean exhaustion" `Slow
            test_explore_2shard_clean;
          Alcotest.test_case "planted fault found + replayed" `Quick
            test_explore_finds_planted_fault;
        ] );
      ( "config",
        [ Alcotest.test_case "gates" `Quick test_config_gates ] );
    ]
