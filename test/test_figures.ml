(* Golden-file tests for the figure renderers.

   The renderers in Harness.Figures are pure string functions over canned
   results, so their exact output is pinned against files in
   test/golden/. A formatting change (column width, alignment, header
   text) shows up as a readable diff instead of silently reshaping every
   table in EXPERIMENTS.md.

   To regenerate after an intentional change:
     dune exec test/test_figures.exe -- --regen && dune runtest *)

open Harness

(* Canned Figure-1-style sweep: throughputs chosen to exercise large and
   small magnitudes plus a failed point (the "-" cell). *)
let canned_sweep () =
  Figures.render_sweep
    ~systems:[ "PREP-V"; "GL" ]
    [
      (1, [ Some 1_517_000.; Some 1_489_333.4 ]);
      (8, [ Some 9_102_500.; Some 2_210_000. ]);
      (16, [ Some 14_800_666.7; None ]);
      (23, [ None; Some 987.6 ]);
    ]

(* Canned Figure-3-style epsilon sweep. *)
let canned_eps () =
  Figures.render_eps_table
    [
      (50, Some 2_000_000., Some 400_000.);
      (1600, Some 5_250_000., Some 4_999_999.6);
      (12000, None, Some 5_100_000.);
    ]

(* Canned open-loop load curve: a healthy point, the last pre-knee point
   and a saturated one (p99 blown up, goodput collapsed), so the JSON
   renderer's knee field is exercised as well as the per-point schema. *)
let canned_loadcurve () =
  let hist ~n ~sum ~min ~max ~p50 ~p95 ~p99 =
    Telemetry.Registry.
      { hs_n = n; hs_sum = sum; hs_min = min; hs_max = max;
        hs_p50 = p50; hs_p95 = p95; hs_p99 = p99 }
  in
  let point ~offered ~arrivals ~completed ~backlogged ~qmax ~sojourn =
    Openloop.
      {
        ol_system = "PREP-Buffered";
        ol_workload = "map 90% read, 1024 keys, uniform";
        ol_workers = 4;
        ol_offered = offered;
        ol_arrivals = arrivals;
        ol_completed = completed;
        ol_backlogged = backlogged;
        ol_shed = 0;
        ol_qmax = qmax;
        ol_sojourn = sojourn;
        ol_duration_ns = 4_000_000;
        ol_throughput = float_of_int completed *. 1e9 /. 4e6;
      }
  in
  Openloop.curve_to_json ~indent:4
    [
      point ~offered:500_000. ~arrivals:2000 ~completed:2000 ~backlogged:0
        ~qmax:2
        ~sojourn:
          (hist ~n:2000 ~sum:24_000_000 ~min:2_048 ~max:65_536 ~p50:8_192
             ~p95:16_384 ~p99:32_768);
      point ~offered:1_000_000. ~arrivals:4000 ~completed:3990 ~backlogged:10
        ~qmax:9
        ~sojourn:
          (hist ~n:4000 ~sum:90_000_000 ~min:2_048 ~max:131_072 ~p50:12_288
             ~p95:49_152 ~p99:98_304);
      point ~offered:2_000_000. ~arrivals:8000 ~completed:5200
        ~backlogged:2800 ~qmax:2805
        ~sojourn:
          (hist ~n:8000 ~sum:4_000_000_000 ~min:2_048 ~max:3_145_728
             ~p50:786_432 ~p95:2_359_296 ~p99:3_145_728);
    ]

let goldens =
  [
    ("golden/table1.txt", Figures.render_table1);
    ("golden/sweep.txt", canned_sweep);
    ("golden/eps_table.txt", canned_eps);
    ("golden/loadcurve.txt", canned_loadcurve);
  ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let check_golden (path, render) () =
  let got = render () in
  let want =
    try read_file path
    with Sys_error _ ->
      Alcotest.fail
        (Printf.sprintf "golden file %s missing; regenerate with --regen" path)
  in
  if got <> want then
    Alcotest.fail
      (Printf.sprintf
         "%s: rendering drifted from golden file\n--- golden ---\n%s--- got ---\n%s"
         path want got)

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--regen" then
    List.iter
      (fun (path, render) ->
        write_file path (render ());
        Printf.printf "wrote %s\n" path)
      goldens
  else
    Alcotest.run "figures"
      [
        ( "golden",
          List.map
            (fun (path, _ as g) ->
              Alcotest.test_case path `Quick (check_golden g))
            goldens );
      ]
