(* Statistical tests for the workload generators (Harness.Workload).

   Every test draws from a fixed-seed [Sim.Rng], so each statistic below
   is one deterministic number: the assertions are regression guards with
   generous tolerances, not flaky hypothesis tests. A broken generator
   (wrong normaliser, inverted phase logic, dropped die face) moves these
   statistics by integer factors, far outside any bound here. *)

open Harness

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let rng_of seed = Sim.Rng.create (Int64.of_int seed)

(* ---- map operation mix ---- *)

(* The 200-sided-die classifier splits exactly for every read_pct: the
   old 100-sided die handed the odd leftover point of [100 - read_pct]
   to remove, skewing insert/remove away from the documented
   half-and-half update split. *)
let test_op_class_exact () =
  for read_pct = 0 to 100 do
    let reads = ref 0 and inserts = ref 0 and removes = ref 0 in
    for die = 0 to 199 do
      match Workload.map_op_class ~read_pct ~die with
      | Workload.Read -> incr reads
      | Workload.Insert -> incr inserts
      | Workload.Remove -> incr removes
    done;
    check (Printf.sprintf "reads at %d%%" read_pct) (2 * read_pct) !reads;
    check (Printf.sprintf "inserts at %d%%" read_pct) (100 - read_pct) !inserts;
    check (Printf.sprintf "removes at %d%%" read_pct) (100 - read_pct) !removes
  done

let test_map_mix_sampled () =
  let w = Workload.map_workload ~read_pct:75 ~key_range:256 ~prefill_n:64 in
  let rng = rng_of 41 in
  let module H = Seqds.Hashmap in
  let n = 20_000 in
  let gets = ref 0 and ins = ref 0 and rem = ref 0 in
  for phase = 0 to n - 1 do
    let op, _ = w.Workload.next rng ~phase in
    if op = H.op_get then incr gets
    else if op = H.op_insert then incr ins
    else if op = H.op_remove then incr rem
    else Alcotest.fail "unexpected op code"
  done;
  check "all ops classified" n (!gets + !ins + !rem);
  let near label expected got tol =
    check_bool
      (Printf.sprintf "%s: %d within %d of %d" label got tol expected)
      true
      (abs (got - expected) <= tol)
  in
  near "gets" (3 * n / 4) !gets (n / 40);
  near "inserts" (n / 8) !ins (n / 40);
  near "removes" (n / 8) !rem (n / 40)

(* ---- Zipfian popularity ---- *)

(* Goodness of fit against the exact Zipf pmf, over log2 rank buckets
   ({0}, {1}, {2,3}, {4..7}, ...) so every cell has a large expected
   count. The YCSB closed-form generator carries a small deterministic
   bias (about +11% on the {2,3} bucket at theta 0.9), so a chi-squared
   statistic grows without bound in the sample size; what is stable is
   the bias itself, so the assertion bounds the total-variation distance
   between the observed and exact bucket distributions (healthy: 0.016;
   a uniform or wrong-exponent generator lands above 0.3) plus each
   bucket's relative error. *)
let test_zipf_goodness_of_fit () =
  let n = 128 and theta = 0.9 in
  let z = Workload.Zipf.make ~n ~theta in
  let rng = rng_of 907 in
  let draws = 200_000 in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let r = Workload.Zipf.next z rng in
    check_bool "rank in range" true (r >= 0 && r < n);
    counts.(r) <- counts.(r) + 1
  done;
  let zetan = Workload.Zipf.zeta n theta in
  let pmf i = 1.0 /. (Float.pow (float_of_int (i + 1)) theta *. zetan) in
  let bucket_of i =
    (* log2 bucket index of rank i: 0 -> 0, 1 -> 1, 2,3 -> 2, ... *)
    if i = 0 then 0
    else
      let rec go b v = if v = 0 then b else go (b + 1) (v lsr 1) in
      go 0 i
  in
  let nbuckets = bucket_of (n - 1) + 1 in
  let obs = Array.make nbuckets 0.0 and exp_ = Array.make nbuckets 0.0 in
  for i = 0 to n - 1 do
    let b = bucket_of i in
    obs.(b) <- obs.(b) +. float_of_int counts.(i);
    exp_.(b) <- exp_.(b) +. (float_of_int draws *. pmf i)
  done;
  let tv = ref 0.0 in
  for b = 0 to nbuckets - 1 do
    check_bool "expected count large enough" true (exp_.(b) > 100.0);
    let rel = Float.abs (obs.(b) -. exp_.(b)) /. exp_.(b) in
    check_bool
      (Printf.sprintf "bucket %d relative error %.3f below 0.2" b rel)
      true (rel < 0.2);
    tv := !tv +. Float.abs (obs.(b) -. exp_.(b))
  done;
  let tv = 0.5 *. !tv /. float_of_int draws in
  check_bool
    (Printf.sprintf "total-variation distance %.4f below 0.03" tv)
    true (tv < 0.03);
  (* head probability directly: rank 0 carries 1/zetan of the mass *)
  let p0 = float_of_int counts.(0) /. float_of_int draws in
  let want = 1.0 /. zetan in
  check_bool
    (Printf.sprintf "head prob %.4f within 5%% of %.4f" p0 want)
    true
    (Float.abs (p0 -. want) /. want < 0.05)

let test_zipf_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "theta 0 rejected" true
    (raises (fun () -> Workload.Zipf.make ~n:10 ~theta:0.0));
  check_bool "theta 1 rejected" true
    (raises (fun () -> Workload.Zipf.make ~n:10 ~theta:1.0));
  check_bool "n 0 rejected" true
    (raises (fun () -> Workload.Zipf.make ~n:0 ~theta:0.5))

(* ---- arrival processes ---- *)

(* Drive an arrival process like Openloop's generator fiber does and
   return the gap list. *)
let sample_gaps proc ~seed ~n =
  let arr = Workload.Arrival.make proc in
  let rng = rng_of seed in
  let now = ref 0 in
  List.init n (fun _ ->
      let g = Workload.Arrival.next_gap arr rng ~now:!now in
      now := !now + g;
      g)

let mean_var gaps =
  let n = float_of_int (List.length gaps) in
  let mean = float_of_int (List.fold_left ( + ) 0 gaps) /. n in
  let var =
    List.fold_left
      (fun a g ->
        let d = float_of_int g -. mean in
        a +. (d *. d))
      0.0 gaps
    /. n
  in
  (mean, var)

(* Poisson at 1e6 ops/s: mean gap 1000 ns, and the squared coefficient of
   variation of an exponential is 1. *)
let test_poisson_gaps () =
  let gaps =
    sample_gaps (Workload.Arrival.Poisson { rate = 1e6 }) ~seed:11 ~n:50_000
  in
  let mean, var = mean_var gaps in
  let cv2 = var /. (mean *. mean) in
  check_bool
    (Printf.sprintf "mean gap %.1f within 5%% of 1000" mean)
    true
    (Float.abs (mean -. 1000.0) < 50.0);
  check_bool
    (Printf.sprintf "cv^2 %.3f in [0.9, 1.1]" cv2)
    true
    (cv2 > 0.9 && cv2 < 1.1)

(* MMPP-2: long-run rate is the average of the phase rates, and mixing a
   slow and a fast phase makes gaps overdispersed relative to any single
   Poisson stream (cv^2 > 1). *)
let test_bursty_gaps () =
  let proc =
    Workload.Arrival.Bursty
      { rate_low = 0.5e6; rate_high = 4.5e6; dwell_ns = 100_000.0 }
  in
  check_bool "mean_rate averages phases" true
    (Float.abs (Workload.Arrival.mean_rate (Workload.Arrival.make proc) -. 2.5e6)
     < 1.0);
  let gaps = sample_gaps proc ~seed:23 ~n:100_000 in
  let mean, var = mean_var gaps in
  let cv2 = var /. (mean *. mean) in
  let want_mean = 1e9 /. 2.5e6 in
  check_bool
    (Printf.sprintf "mean gap %.1f within 10%% of %.1f" mean want_mean)
    true
    (Float.abs (mean -. want_mean) /. want_mean < 0.10);
  check_bool
    (Printf.sprintf "overdispersed: cv^2 %.3f > 1.2" cv2)
    true (cv2 > 1.2)

(* Diurnal: the thinned process realises 0.55 x peak on average, and the
   half-period centred on the rate maximum must collect visibly more
   arrivals than the half centred on the trough. *)
let test_diurnal_gaps () =
  let period = 1_000_000.0 in
  let proc =
    Workload.Arrival.Diurnal { rate_peak = 2e6; period_ns = period }
  in
  let gaps = sample_gaps proc ~seed:37 ~n:100_000 in
  let mean, _ = mean_var gaps in
  let want_mean = 1e9 /. (0.55 *. 2e6) in
  check_bool
    (Printf.sprintf "mean gap %.1f within 10%% of %.1f" mean want_mean)
    true
    (Float.abs (mean -. want_mean) /. want_mean < 0.10);
  let peak_half = ref 0 and trough_half = ref 0 in
  let now = ref 0 in
  List.iter
    (fun g ->
      now := !now + g;
      let x = float_of_int !now /. period in
      let frac = x -. Float.of_int (int_of_float x) in
      (* rate = peak * (0.55 - 0.45 cos 2pi f): maximal at f = 0.5 *)
      if frac > 0.25 && frac <= 0.75 then incr peak_half
      else incr trough_half)
    gaps;
  check_bool
    (Printf.sprintf "seasonality: %d peak-half vs %d trough-half arrivals"
       !peak_half !trough_half)
    true
    (float_of_int !peak_half > 1.5 *. float_of_int !trough_half)

(* ---- pair workloads ---- *)

(* Regression for the phase-alternation contract: even phases push, odd
   phases pop, regardless of what the rng returns. *)
let test_pair_alternation () =
  let cases =
    [
      ( "queue",
        Workload.queue_pairs ~prefill_n:4,
        Seqds.Queue_ds.op_enqueue,
        Seqds.Queue_ds.op_dequeue );
      ( "pqueue",
        Workload.pqueue_pairs ~prefill_n:4,
        Seqds.Pqueue.op_enqueue,
        Seqds.Pqueue.op_dequeue );
      ( "stack",
        Workload.stack_pairs ~prefill_n:4,
        Seqds.Stack_ds.op_push,
        Seqds.Stack_ds.op_pop );
    ]
  in
  List.iter
    (fun (label, w, push, pop) ->
      let rng = rng_of 71 in
      for phase = 0 to 63 do
        let op, _ = w.Workload.next rng ~phase in
        check
          (Printf.sprintf "%s phase %d" label phase)
          (if phase land 1 = 0 then push else pop)
          op
      done;
      check
        (Printf.sprintf "%s prefill size" label)
        4
        (List.length w.Workload.prefill))
    cases

let () =
  Alcotest.run "workload"
    [
      ( "map-mix",
        [
          Alcotest.test_case "op-class exact for all read_pct" `Quick
            test_op_class_exact;
          Alcotest.test_case "sampled mix at 75% read" `Quick
            test_map_mix_sampled;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "goodness of fit vs exact pmf" `Quick
            test_zipf_goodness_of_fit;
          Alcotest.test_case "parameter validation" `Quick
            test_zipf_validation;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "poisson mean and cv^2" `Quick test_poisson_gaps;
          Alcotest.test_case "bursty mean and overdispersion" `Quick
            test_bursty_gaps;
          Alcotest.test_case "diurnal mean and seasonality" `Quick
            test_diurnal_gaps;
        ] );
      ( "pairs",
        [
          Alcotest.test_case "phase alternation" `Quick test_pair_alternation;
        ] );
    ]
