(* The Harness.Campaign contract: a campaign's merged output is
   byte-identical at any [-j]. These tests pin that for the runner itself
   and for each harness that rides on it (fuzz episodes, session
   campaigns), including the property CI leans on hardest — a parallel
   fuzz run finds the *same* counterexample and shrinks it to the *same*
   minimal episode as a serial run. *)

open Prep

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

module H = Seqds.Hashmap
module F = Check.Fuzz.Make (H)
module S = Harness.Session.Make (H)
module Campaign = Harness.Campaign

(* ---- the runner itself ---- *)

(* Results land in task order whatever domain computed them. The tasks
   are deliberately uneven (task i burns i*1000 iterations) so a greedy
   work queue finishes them out of order. *)
let test_run_order_and_equality () =
  let tasks () =
    Array.init 16 (fun i () ->
        let acc = ref (i * 7919) in
        for _ = 1 to i * 1000 do
          acc := (!acc * 1103515245) + 12345
        done;
        (i, !acc))
  in
  let serial = Campaign.run ~j:1 (tasks ()) in
  let parallel = Campaign.run ~j:4 (tasks ()) in
  check_bool "j=1 equals j=4" true (serial = parallel);
  Array.iteri (fun i (idx, _) -> check "slot i holds task i" i idx) parallel

let test_map () =
  let items = Array.init 10 (fun i -> i) in
  check_bool "map squares in order" true
    (Campaign.map ~j:3 (fun x -> x * x) items
    = Array.map (fun x -> x * x) items)

(* Lowest-indexed failure wins, and — in the parallel path — the rest of
   the queue still drains first (a campaign's surviving results must not
   depend on where an unrelated task failed). *)
let test_exception_policy () =
  let ran = Atomic.make 0 in
  let tasks =
    Array.init 8 (fun i () ->
        Atomic.incr ran;
        if i = 2 then failwith "low";
        if i = 5 then failwith "high";
        i)
  in
  (match Campaign.run ~j:4 tasks with
   | _ -> Alcotest.fail "expected the campaign to re-raise"
   | exception Failure msg ->
     Alcotest.(check string) "lowest-indexed failure re-raised" "low" msg);
  check "every task ran despite the failures" 8 (Atomic.get ran)

(* ---- fuzz campaigns through the runner ---- *)

(* Same mix as test_fuzz.ml. *)
let gen_op rng =
  let k = Sim.Rng.int rng 64 in
  match Sim.Rng.int rng 10 with
  | 0 | 1 | 2 | 3 -> (H.op_insert, [| k; Sim.Rng.int rng 1000 |])
  | 4 | 5 -> (H.op_remove, [| k |])
  | 6 | 7 | 8 -> (H.op_get, [| k |])
  | _ -> (H.op_size, [||])

let template ~seed ~epsilon ~ops =
  {
    Check.Fuzz.workload_seed = seed;
    threads = 6;
    epsilon;
    log_size = 256;
    ops_per_worker = ops;
    bg_period = 2000;
    preempt_prob = 0.02;
    crash = Check.Fuzz.No_crash;
  }

let fuzz_at ~j ~mode ~fault ~template ~iters =
  let lines = ref [] in
  let res =
    F.fuzz ~mode ~fault ~gen_op ~template ~iters
      ~log:(fun l -> lines := l :: !lines)
      ~runner:(Campaign.run ~j) ()
  in
  (res, List.rev !lines)

let test_fuzz_parallel_identical () =
  let template = template ~seed:4200 ~epsilon:16 ~ops:120 in
  let mode = Config.Buffered and fault = Config.No_fault in
  let serial, slog = fuzz_at ~j:1 ~mode ~fault ~template ~iters:8 in
  let parallel, plog = fuzz_at ~j:4 ~mode ~fault ~template ~iters:8 in
  check "same episodes" serial.Check.Fuzz.episodes
    parallel.Check.Fuzz.episodes;
  check "same crashes" serial.Check.Fuzz.crashes parallel.Check.Fuzz.crashes;
  check_bool "same failures" true
    (serial.Check.Fuzz.failures = parallel.Check.Fuzz.failures);
  check_bool "clean campaign" true (serial.Check.Fuzz.failures = []);
  check_bool "same log lines in the same order" true (slog = plog)

(* The property CI leans on: a planted fault found under -j 4 is the SAME
   counterexample a serial run finds, and it shrinks to the SAME minimal
   episode — the whole plan is drawn before any episode runs and merged
   in episode order, so parallelism cannot change which failure is
   "first". *)
let test_fuzz_counterexample_equivalence () =
  let mode = Config.Buffered and fault = Config.Early_boundary_advance in
  let template = template ~seed:9000 ~epsilon:8 ~ops:120 in
  let serial, slog = fuzz_at ~j:1 ~mode ~fault ~template ~iters:8 in
  let parallel, plog = fuzz_at ~j:4 ~mode ~fault ~template ~iters:8 in
  check_bool "planted fault caught serially" true
    (serial.Check.Fuzz.failures <> []);
  check_bool "identical failure lists" true
    (serial.Check.Fuzz.failures = parallel.Check.Fuzz.failures);
  check_bool "identical log lines" true (slog = plog);
  let first_serial = (List.hd serial.Check.Fuzz.failures).Check.Fuzz.episode in
  let first_parallel =
    (List.hd parallel.Check.Fuzz.failures).Check.Fuzz.episode
  in
  check_bool "identical first counterexample" true
    (first_serial = first_parallel);
  let shrunk_serial = F.shrink ~mode ~fault ~gen_op first_serial in
  let shrunk_parallel = F.shrink ~mode ~fault ~gen_op first_parallel in
  check_bool
    (Fmt.str "identical shrunk episode (%a)" Check.Fuzz.pp_episode
       shrunk_serial)
    true
    (shrunk_serial = shrunk_parallel);
  let out = F.run_episode ~mode ~fault ~gen_op shrunk_serial in
  check_bool "shrunk repro still fails" true (out.Check.Fuzz.violations <> [])

(* ---- session campaigns through the runner ---- *)

let session_cfg ~seed =
  {
    Harness.Session.default_config with
    Harness.Session.seed;
    threads = 3;
    ops_per_client = 12;
    epsilon = 4;
    log_size = 256;
    crashes = 2;
    detect = true;
  }

let test_session_campaign_parallel_identical () =
  let run j = S.campaign ~j (session_cfg ~seed:3) ~gen_op ~sessions:3 in
  let serial = run 1 and parallel = run 4 in
  check "same session count" (List.length serial) (List.length parallel);
  check_bool "outcome lists structurally identical" true (serial = parallel);
  List.iteri
    (fun i (o : Harness.Session.outcome) ->
      check (Printf.sprintf "session %d clean" i) 0
        (List.length o.Harness.Session.violations))
    serial

let () =
  Alcotest.run "campaign"
    [
      ( "runner",
        [
          Alcotest.test_case "task-order results, j-invariant" `Quick
            test_run_order_and_equality;
          Alcotest.test_case "map" `Quick test_map;
          Alcotest.test_case "exception policy" `Quick test_exception_policy;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "clean campaign identical at -j 4" `Slow
            test_fuzz_parallel_identical;
          Alcotest.test_case "counterexample equivalence at -j 4" `Slow
            test_fuzz_counterexample_equivalence;
        ] );
      ( "session",
        [
          Alcotest.test_case "campaign identical at -j 4" `Slow
            test_session_campaign_parallel_identical;
        ] );
    ]
